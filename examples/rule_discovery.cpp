/// \file rule_discovery.cpp
/// \brief Discovering editing rules from master data (Sect. 7 future
/// work): mine dependencies from a consistent master relation, turn them
/// into editing rules, and use them to batch-repair a dirty table without
/// any hand-written rules.
///
/// Usage: ./build/examples/rule_discovery [dm_size] [dirty_rows]

#include <cstdlib>
#include <iostream>

#include "core/batch_repair.h"
#include "mining/rule_miner.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

using namespace certfix;

int main(int argc, char** argv) {
  size_t dm_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  size_t dirty_rows = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;

  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(19);
  Relation master = HospWorkload::MakeMaster(schema, dm_size, &rng);
  std::cout << "Mining editing rules from " << master.size()
            << " master rows (no hand-written rules used)...\n\n";

  RuleMinerOptions mine_options;
  mine_options.max_lhs = 2;
  mine_options.mine_conditional = false;
  RuleMiner miner(master, mine_options);

  std::vector<MinedDependency> deps = miner.MineDependencies();
  std::cout << "discovered " << deps.size() << " minimal dependencies, "
            << "e.g.:\n";
  for (size_t i = 0; i < deps.size() && i < 8; ++i) {
    std::cout << "  " << deps[i].ToString(schema) << "\n";
  }

  Result<RuleSet> mined = miner.MineRules(schema, schema);
  if (!mined.ok()) {
    std::cerr << "mining failed: " << mined.status() << "\n";
    return 1;
  }
  std::cout << "\n=> " << mined->size() << " editing rules\n\n";

  // Batch-repair a dirty table whose id/mCode keys are trusted.
  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 1.0;  // repairing rows OF this database
  gen_options.noise_rate = 0.3;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 77;
  DirtyGenerator gen(master, master, gen_options);

  Relation dirty(schema);
  std::vector<Tuple> truths;
  size_t injected = 0;
  for (const DirtyPair& pair : gen.Generate(dirty_rows)) {
    Status st = dirty.Append(pair.dirty);
    (void)st;
    truths.push_back(pair.clean);
    injected += static_cast<size_t>(pair.corrupted.Count());
  }

  MasterIndex index(*mined, master);
  Saturator sat(*mined, master, index);
  BatchRepair repair(sat);
  BatchRepairResult result = repair.Repair(dirty, trusted);

  size_t restored = 0;
  for (size_t i = 0; i < truths.size(); ++i) {
    if (result.repaired.at(i) == truths[i]) ++restored;
  }
  std::cout << "batch repair with mined rules:\n"
            << "  injected errors     : " << injected << "\n"
            << "  cells changed       : " << result.cells_changed << "\n"
            << "  rows fully restored : " << restored << "/" << dirty_rows
            << "\n"
            << "  conflicts           : " << result.tuples_conflicting
            << "\n";
  return restored == dirty_rows ? 0 : 1;
}
