/// \file hospital_monitoring.cpp
/// \brief Data-entry monitoring on the HOSP workload (Sect. 6): a stream
/// of dirty hospital records enters the system; each is fixed at the point
/// of entry via the interactive CertainFix+ framework, and the run reports
/// the Sect. 6 quality metrics per interaction round.
///
/// Usage: ./build/examples/hospital_monitoring [num_tuples] [dm_size]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "workload/experiment.h"
#include "workload/hosp.h"

using namespace certfix;

int main(int argc, char** argv) {
  size_t num_tuples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  size_t dm_size = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;

  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  std::cout << "HOSP schema: " << schema->ToString() << "\n\n"
            << "Editing rules (" << rules.size() << "):\n"
            << rules.ToString() << "\n";

  Rng rng(42);
  Relation master = HospWorkload::MakeMaster(schema, dm_size, &rng);
  Rng rng2(4242);
  Relation non_master =
      HospWorkload::MakeMaster(schema, dm_size / 2, &rng2, 1000000);
  std::cout << "Master data: " << master.size() << " rows\n";

  CertainFixOptions options;
  options.use_cache = true;
  CertainFixEngine engine(std::move(rules), master, options);

  std::cout << "Precomputed certain regions (best first):\n";
  for (const RankedRegion& region : engine.regions()) {
    std::cout << "  quality " << std::fixed << std::setprecision(3)
              << region.quality << "  Z = {";
    const auto& z = region.region.z();
    for (size_t i = 0; i < z.size(); ++i) {
      std::cout << (i ? ", " : "") << schema->attr_name(z[i]);
    }
    std::cout << "}\n";
  }

  ExperimentConfig config;
  config.num_tuples = num_tuples;
  config.report_rounds = 5;
  config.gen.duplicate_rate = 0.30;
  config.gen.noise_rate = 0.20;
  config.gen.seed = 7;

  std::cout << "\nMonitoring " << num_tuples
            << " entering tuples (d%=30, n%=20)...\n\n";
  ExperimentResult result =
      RunInteractiveExperiment(&engine, master, non_master, config);

  std::cout << "round  recall_t  recall_a  precision_a  F-measure  avg_ms\n";
  for (size_t k = 0; k < result.per_round.size(); ++k) {
    const RoundMetrics& m = result.per_round[k];
    std::cout << "  " << (k + 1) << "    " << std::fixed
              << std::setprecision(3) << m.recall_t << "     " << m.recall_a
              << "     " << m.precision_a << "        " << m.f_measure
              << "      " << std::setprecision(2) << m.avg_seconds * 1e3
              << "\n";
  }
  std::cout << "\ncompleted tuples : " << result.completed_tuples << "/"
            << num_tuples << "\n"
            << "avg interactions : " << std::setprecision(2)
            << result.avg_rounds << "\n"
            << "cache hits/misses: " << result.cache.hits << "/"
            << result.cache.misses << "\n";

  // The paper's headline (Sect. 6 Exp-1(3)): most tuples reach a certain
  // fix within 2-3 rounds, and every rule-made fix is correct.
  return result.completed_tuples == num_tuples ? 0 : 1;
}
