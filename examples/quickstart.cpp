/// \file quickstart.cpp
/// \brief Reproduces the running example of the paper (Fig. 1 and
/// Examples 1-13): the supplier schema R, the master relation Dm, the
/// editing rules phi1..phi9, and a certain fix for the dirty tuple t1.
///
/// Build & run:  ./build/examples/quickstart

#include <cassert>
#include <iostream>

#include "core/certain_fix.h"
#include "rules/rule_parser.h"

using namespace certfix;

namespace {

// The supplier schema R of Fig. 1a: name, phone, type, address, item.
SchemaPtr MakeInputSchema() {
  return Schema::Make("Supplier",
                      std::vector<std::string>{"fn", "ln", "AC", "phn",
                                               "type", "str", "city", "zip",
                                               "item"});
}

// The master schema Rm of Fig. 1b.
SchemaPtr MakeMasterSchema() {
  return Schema::Make("Master",
                      std::vector<std::string>{"FN", "LN", "AC", "Hphn",
                                               "Mphn", "str", "city", "zip",
                                               "DOB", "gender"});
}

}  // namespace

int main() {
  SchemaPtr r = MakeInputSchema();
  SchemaPtr rm = MakeMasterSchema();

  // Master relation Dm (Fig. 1b).
  Relation dm(rm);
  Status st = dm.AppendStrings({"Robert", "Brady", "131", "6884563",
                                "079172485", "51 Elm Row", "Edi", "EH7 4AH",
                                "11/11/55", "M"});
  assert(st.ok());
  st = dm.AppendStrings({"Mark", "Smith", "020", "6884563", "075568485",
                         "20 Baker St.", "Lnd", "NW1 6XE", "25/12/67", "M"});
  assert(st.ok());

  // The editing rules of Example 11 (phi1..phi9 expand eR1..eR4).
  const char* rule_text = R"(
    rule phi1: (zip | zip) -> (AC | AC)
    rule phi2: (zip | zip) -> (str | str)
    rule phi3: (zip | zip) -> (city | city)
    rule phi4: (phn | Mphn) -> (fn | FN) when type=2
    rule phi5: (phn | Mphn) -> (ln | LN) when type=2
    rule phi6: (AC, phn | AC, Hphn) -> (str | str) when type=1, AC!=0800
    rule phi7: (AC, phn | AC, Hphn) -> (city | city) when type=1, AC!=0800
    rule phi8: (AC, phn | AC, Hphn) -> (zip | zip) when type=1, AC!=0800
    rule phi9: (AC | AC) -> (city | city) when AC=0800
  )";
  Result<RuleSet> parsed = ParseRules(rule_text, r, rm);
  if (!parsed.ok()) {
    std::cerr << "rule parse failed: " << parsed.status() << "\n";
    return 1;
  }
  RuleSet rules = std::move(parsed).ValueOrDie();
  std::cout << "=== Editing rules (Sigma0) ===\n" << rules.ToString();

  // Dependency graph of Fig. 4.
  DependencyGraph graph(rules);
  std::cout << "\n=== Dependency graph (dot) ===\n" << graph.ToDot();

  // The dirty input tuple t1 of Fig. 1a: Bob Brady, AC 020 (wrong), mobile
  // phone, 501 Elm St. (wrong), city Edi, zip EH7 4AH, CDs.
  Result<Tuple> t1 = Tuple::FromStrings(
      r, {"Bob", "Brady", "020", "079172485", "2", "501 Elm St.", "Edi",
          "EH7 4AH", "CDs"});
  assert(t1.ok());
  std::cout << "\nInput tuple t1  = " << t1->ToString() << "\n";

  // The interactive framework (Sect. 5). The oracle "user" holds the
  // ground truth: the corrections indicated by master tuple s1.
  Result<Tuple> truth = Tuple::FromStrings(
      r, {"Robert", "Brady", "131", "079172485", "2", "51 Elm Row", "Edi",
          "EH7 4AH", "CDs"});
  assert(truth.ok());

  CertainFixOptions options;
  options.region.trials = 16;
  CertainFixEngine engine(std::move(rules), dm, options);

  std::cout << "\n=== Precomputed certain regions ===\n";
  for (const RankedRegion& region : engine.regions()) {
    std::cout << "quality " << region.quality << ": Z = {";
    const SchemaPtr& schema = r;
    const auto& z = region.region.z();
    for (size_t i = 0; i < z.size(); ++i) {
      std::cout << (i ? ", " : "") << schema->attr_name(z[i]);
    }
    std::cout << "} with " << region.region.tableau().size() << " patterns\n";
  }

  GroundTruthUser user(*truth);
  FixOutcome outcome = engine.Fix(*t1, &user);

  std::cout << "\n=== Interaction transcript ===\n";
  for (size_t k = 0; k < outcome.rounds.size(); ++k) {
    const RoundRecord& round = outcome.rounds[k];
    std::cout << "round " << (k + 1) << ": suggested {";
    bool first = true;
    for (AttrId a : round.suggested.ToVector()) {
      std::cout << (first ? "" : ", ") << r->attr_name(a);
      first = false;
    }
    std::cout << "}, auto-fixed " << round.auto_fixed << " attribute(s)\n";
  }

  std::cout << "\nFixed tuple     = " << outcome.fixed.ToString() << "\n";
  std::cout << "Ground truth    = " << truth->ToString() << "\n";
  std::cout << "Certain fix     = " << (outcome.completed ? "yes" : "no")
            << " in " << outcome.num_rounds() << " round(s)\n";

  if (!outcome.completed || outcome.fixed != *truth) {
    std::cerr << "unexpected: fix does not match the paper's corrections\n";
    return 1;
  }
  std::cout << "\nt1[AC] 020 -> 131, t1[str] -> 51 Elm Row, t1[fn] Bob -> "
               "Robert: matches Examples 2, 4 and 12 of the paper.\n";
  return 0;
}
