/// \file dblp_enrichment.cpp
/// \brief Record enrichment on the DBLP workload: incomplete citation
/// records (missing homepages, publishers, ISBNs, crossrefs) are completed
/// against master data — the "data enrichment" use of editing rules that
/// Sect. 1 motivates (rules phi1-phi7 of Sect. 6).
///
/// Usage: ./build/examples/dblp_enrichment [num_records]

#include <cstdlib>
#include <iostream>

#include "core/certain_fix.h"
#include "workload/dblp.h"

using namespace certfix;

int main(int argc, char** argv) {
  size_t num_records = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

  SchemaPtr schema = DblpWorkload::MakeSchema();
  Rng rng(11);
  Relation master = DblpWorkload::MakeMaster(schema, 1500, &rng);
  CertainFixEngine engine(DblpWorkload::MakeRules(schema), master,
                          CertainFixOptions{});

  auto attr = [&](const char* n) { return *schema->IndexOf(n); };

  std::cout << "DBLP enrichment demo: " << master.size()
            << " master rows, 16 editing rules.\n\n";

  size_t enriched_cells = 0;
  size_t complete_records = 0;
  Rng pick(97);
  for (size_t k = 0; k < num_records; ++k) {
    // Start from a master paper and blank out the derivable fields, as if
    // a curator had typed in only the core citation.
    const Tuple& truth = master.at(pick.Index(master.size()));
    Tuple partial = truth;
    for (const char* missing :
         {"hp1", "hp2", "publisher", "isbn", "crossref", "btitle"}) {
      partial.Set(attr(missing), Value());
    }

    GroundTruthUser user(truth);
    FixOutcome outcome = engine.Fix(partial, &user);

    size_t filled = 0;
    for (AttrId a : outcome.auto_fixed.ToVector()) {
      if (partial.at(a).is_null() && !outcome.fixed.at(a).is_null()) {
        ++filled;
      }
    }
    enriched_cells += filled;
    if (outcome.completed && outcome.fixed == truth) ++complete_records;

    if (k < 3) {
      std::cout << "record " << (k + 1) << ": \""
                << truth.at(attr("ptitle")).ToString() << "\"\n"
                << "  entered : " << partial.ToString() << "\n"
                << "  enriched: " << outcome.fixed.ToString() << "\n"
                << "  " << filled << " cells filled from master data in "
                << outcome.num_rounds() << " round(s)\n\n";
    }
  }

  std::cout << "enriched " << enriched_cells << " missing cells across "
            << num_records << " records; " << complete_records
            << " records fully certain.\n";
  return complete_records == num_records ? 0 : 1;
}
