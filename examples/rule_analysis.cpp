/// \file rule_analysis.cpp
/// \brief Static analysis walkthrough (Sect. 4): consistency and coverage
/// of regions, the Z-problems, direct-fix checks, and a live 3SAT
/// reduction showing why the general problems are intractable.
///
/// Usage: ./build/examples/rule_analysis

#include <iostream>

#include "core/consistency.h"
#include "core/coverage.h"
#include "core/direct_fix.h"
#include "core/zproblems.h"
#include "rules/rule_parser.h"
#include "solver/reductions.h"

using namespace certfix;

namespace {

SchemaPtr InputSchema() {
  return Schema::Make("Supplier",
                      std::vector<std::string>{"fn", "ln", "AC", "phn",
                                               "type", "str", "city", "zip",
                                               "item"});
}
SchemaPtr MasterSchema() {
  return Schema::Make("Master",
                      std::vector<std::string>{"FN", "LN", "AC", "Hphn",
                                               "Mphn", "str", "city", "zip",
                                               "DOB", "gender"});
}

}  // namespace

int main() {
  SchemaPtr r = InputSchema();
  SchemaPtr rm = MasterSchema();
  Relation dm(rm);
  Status st = dm.AppendStrings({"Robert", "Brady", "131", "6884563",
                                "079172485", "51 Elm Row", "Edi", "EH7 4AH",
                                "11/11/55", "M"});
  st = dm.AppendStrings({"Mark", "Smith", "020", "6884563", "075568485",
                         "20 Baker St.", "Lnd", "NW1 6XE", "25/12/67", "M"});
  (void)st;

  const char* text = R"(
    rule phi1: (zip | zip) -> (AC | AC)
    rule phi2: (zip | zip) -> (str | str)
    rule phi3: (zip | zip) -> (city | city)
    rule phi4: (phn | Mphn) -> (fn | FN) when type=2
    rule phi5: (phn | Mphn) -> (ln | LN) when type=2
    rule phi6: (AC, phn | AC, Hphn) -> (str | str) when type=1, AC!=0800
    rule phi7: (AC, phn | AC, Hphn) -> (city | city) when type=1, AC!=0800
    rule phi8: (AC, phn | AC, Hphn) -> (zip | zip) when type=1, AC!=0800
    rule phi9: (AC | AC) -> (city | city) when AC=0800
  )";
  RuleSet rules = std::move(ParseRules(text, r, rm)).ValueOrDie();
  MasterIndex index(rules, dm);
  Saturator sat(rules, dm, index);

  auto attrs = [&](std::initializer_list<const char*> names) {
    std::vector<AttrId> out;
    for (const char* n : names) out.push_back(*r->IndexOf(n));
    return out;
  };

  // --- Consistency (Example 10) -----------------------------------------
  std::cout << "== Consistency (Thm 1/4) ==\n";
  ConsistencyChecker consistency(sat);
  {
    Region region = Region::Of(r, attrs({"AC", "phn", "type", "zip"}));
    PatternTuple row(r);
    row.SetConst(*r->IndexOf("AC"), Value::Str("020"));
    row.SetConst(*r->IndexOf("phn"), Value::Str("6884563"));
    row.SetConst(*r->IndexOf("type"), Value::Str("1"));
    row.SetConst(*r->IndexOf("zip"), Value::Str("EH7 4AH"));
    st = region.AddRow(row);
    Result<bool> ok = consistency.IsConsistent(region);
    std::cout << "region (AC,phn,type,zip)=(020,...,EH7 4AH): "
              << (*ok ? "consistent" : "INCONSISTENT (t3's conflict)")
              << "\n";
  }

  // --- Coverage (Examples 8/9) -------------------------------------------
  std::cout << "\n== Coverage (Thm 2/4) ==\n";
  CoverageChecker coverage(sat);
  for (bool with_item : {false, true}) {
    std::vector<AttrId> z = attrs({"zip", "phn", "type"});
    if (with_item) z.push_back(*r->IndexOf("item"));
    Region region = Region::Of(r, z);
    PatternTuple row(r);
    row.SetConst(*r->IndexOf("zip"), Value::Str("EH7 4AH"));
    row.SetConst(*r->IndexOf("phn"), Value::Str("079172485"));
    row.SetConst(*r->IndexOf("type"), Value::Str("2"));
    st = region.AddRow(row);
    Result<bool> certain = coverage.IsCertainRegion(region);
    std::cout << (with_item ? "Z_zmi (with item): " : "Z_zm  (no item) : ")
              << (*certain ? "certain region" : "not certain") << "\n";
  }

  // --- Z-problems (Sect. 4.2) ---------------------------------------------
  std::cout << "\n== Z-problems (Thms 6/9/12, Props 8/11/15) ==\n";
  ZProblems z(sat);
  std::cout << "forced attributes: ";
  for (AttrId a : z.ForcedAttrs().ToVector()) {
    std::cout << r->attr_name(a) << " ";
  }
  std::cout << "\nZ-minimum (greedy): ";
  for (AttrId a : z.MinimumGreedy()) std::cout << r->attr_name(a) << " ";
  ZOptions zopts;
  zopts.max_patterns = 2000000;
  zopts.use_negations = false;
  Result<std::optional<std::vector<AttrId>>> zmin = z.MinimumExact(4, zopts);
  std::cout << "\nZ-minimum (exact, K=4): ";
  if (zmin.ok() && zmin->has_value()) {
    for (AttrId a : **zmin) std::cout << r->attr_name(a) << " ";
  }
  Result<size_t> count =
      z.Count(attrs({"zip", "phn", "type", "item"}), zopts);
  std::cout << "\nZ-counting on (zip,phn,type,item): "
            << (count.ok() ? std::to_string(*count) : count.status().ToString())
            << " certain pattern tuples\n";

  // --- Intractability demo (Thm 1 reduction) ------------------------------
  std::cout << "\n== 3SAT reduction (Thm 1) ==\n";
  CnfFormula formula;
  formula.num_vars = 3;
  formula.clauses = {{1, 2, 3}, {-1, -2, -3}};
  ConsistencyInstance inst = Reduce3SatToConsistency(formula);
  MasterIndex rindex(inst.rules, inst.dm);
  Saturator rsat(inst.rules, inst.dm, rindex);
  ConsistencyChecker rcheck(rsat);
  Result<bool> consistent =
      rcheck.IsConsistent(inst.region, /*max_instances=*/2000000);
  DpllSolver solver;
  bool satisfiable = solver.Solve(formula).has_value();
  std::cout << "formula " << formula.ToString() << "\n"
            << "  DPLL: " << (satisfiable ? "SAT" : "UNSAT")
            << "  |  reduced consistency instance: "
            << (*consistent ? "consistent" : "inconsistent")
            << "  (consistent iff UNSAT)\n";
  return (*consistent == !satisfiable) ? 0 : 1;
}
