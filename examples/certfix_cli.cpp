/// \file certfix_cli.cpp
/// \brief The `certfix` command-line tool: mine rules, analyze rule sets,
/// check regions, and batch-repair CSV files against master data. See
/// src/tools/cli.h for the subcommand reference.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return certfix::RunCli(args, std::cout, std::cerr);
}
