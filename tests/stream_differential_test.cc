#include "stream/stream_repair.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/batch_repair.h"
#include "relational/csv.h"
#include "test_util.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

/// WriteCsv rendering of a relation — the byte-level comparison target.
std::string ToCsv(const Relation& rel) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCsv(rel, out).ok());
  return out.str();
}

/// Streams every row of `data` through a fresh engine and returns the
/// collected output plus the sink's CSV bytes.
struct StreamRun {
  std::string csv;
  StreamSnapshot stats;
  std::vector<size_t> conflict_rows;
};

StreamRun RunStream(const Saturator& sat, const Relation& data,
                    AttrSet trusted, StreamOptions options) {
  // Two sinks would race the engine's single sink slot, so run the CSV
  // sink off the collected relation instead: CollectingSink stores the
  // emitted values, and WriteCsv over it is exactly what CsvStreamSink
  // would have produced (same FormatCsvLine path).
  CollectingSink sink(data.schema());
  StreamRepairEngine engine(sat, trusted, &sink, options);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(engine.Push(data.at(i)));
  }
  StreamRun run;
  run.stats = engine.Finish();
  run.csv = ToCsv(sink.repaired());
  run.conflict_rows = sink.conflict_rows();
  return run;
}

void ExpectMatchesBatch(const BatchRepairResult& batch,
                        const StreamRun& stream, const std::string& label) {
  EXPECT_EQ(stream.stats.fully_covered, batch.tuples_fully_covered) << label;
  EXPECT_EQ(stream.stats.partial, batch.tuples_partial) << label;
  EXPECT_EQ(stream.stats.untouched, batch.tuples_untouched) << label;
  EXPECT_EQ(stream.stats.conflicting, batch.tuples_conflicting) << label;
  EXPECT_EQ(stream.stats.cells_changed, batch.cells_changed) << label;
  EXPECT_EQ(stream.conflict_rows, batch.conflict_rows) << label;
  // The headline guarantee: byte-identical CSV output.
  EXPECT_EQ(stream.csv, ToCsv(batch.repaired)) << label;
}

class StreamSupplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(StreamSupplierTest, MatchesBatchAcrossThreadCounts) {
  // 25 rows cycling fixable / conflicting / untouchable, so conflicts and
  // counters cross shard boundaries at every worker count.
  Relation data(r_);
  for (size_t i = 0; i < 25; ++i) {
    switch (i % 3) {
      case 0:
        ASSERT_TRUE(data.Append(T1(r_)).ok());
        break;
      case 1:
        ASSERT_TRUE(data.Append(T3(r_)).ok());
        break;
      default:
        ASSERT_TRUE(data.Append(T4(r_)).ok());
        break;
    }
  }
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  BatchRepairResult batch = BatchRepair(*sat_).Repair(data, trusted);
  ASSERT_GT(batch.tuples_conflicting, 0u);
  for (size_t threads : {1, 2, 8}) {
    StreamOptions options;
    options.num_shards = threads;
    StreamRun run = RunStream(*sat_, data, trusted, options);
    ExpectMatchesBatch(batch, run,
                       "threads=" + std::to_string(threads));
  }
}

TEST_F(StreamSupplierTest, TinyQueueForcesBackpressure) {
  Relation data(r_);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(data.Append(i % 2 == 0 ? T1(r_) : T4(r_)).ok());
  }
  AttrSet trusted = Attrs(r_, {"zip", "phn", "type", "item"});
  BatchRepairResult batch = BatchRepair(*sat_).Repair(data, trusted);
  StreamOptions options;
  options.num_shards = 2;
  options.queue_capacity = 1;  // window of 2: producer must block
  StreamRun run = RunStream(*sat_, data, trusted, options);
  ExpectMatchesBatch(batch, run, "capacity=1");
}

TEST_F(StreamSupplierTest, PoolRecyclingKeepsOutputIdentical) {
  Relation data(r_);
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(data.Append(T1(r_)).ok());
  }
  AttrSet trusted = Attrs(r_, {"zip", "phn", "type", "item"});
  BatchRepairResult batch = BatchRepair(*sat_).Repair(data, trusted);
  StreamOptions options;
  options.num_shards = 2;
  options.pool_recycle_values = 0;  // recycle after every tuple
  StreamRun run = RunStream(*sat_, data, trusted, options);
  ExpectMatchesBatch(batch, run, "recycle=0");
  EXPECT_GT(run.stats.pool_recycles, 0u);
}

TEST_F(StreamSupplierTest, EmptyStream) {
  CollectingSink sink(r_);
  StreamOptions options;
  options.num_shards = 4;
  StreamRepairEngine engine(*sat_, Attrs(r_, {"zip"}), &sink, options);
  StreamSnapshot stats = engine.Finish();
  EXPECT_EQ(stats.tuples_in, 0u);
  EXPECT_EQ(stats.tuples_out, 0u);
  EXPECT_TRUE(sink.repaired().empty());
  // Finish is idempotent and Push after Finish is refused.
  EXPECT_FALSE(engine.Push(T1(r_)));
  stats = engine.Finish();
  EXPECT_EQ(stats.tuples_in, 0u);
}

TEST_F(StreamSupplierTest, PushStringsParsesAndRejectsBadArity) {
  CollectingSink sink(r_);
  StreamRepairEngine engine(*sat_, Attrs(r_, {"zip", "phn", "type", "item"}),
                            &sink);
  EXPECT_FALSE(engine.PushStrings({"too", "short"}).ok());
  Tuple t1 = T1(r_);
  std::vector<std::string> fields;
  for (size_t a = 0; a < r_->num_attrs(); ++a) {
    const Value& v = t1.at(static_cast<AttrId>(a));
    fields.push_back(v.is_null() ? "" : v.ToString());
  }
  ASSERT_TRUE(engine.PushStrings(fields).ok());
  StreamSnapshot stats = engine.Finish();
  EXPECT_EQ(stats.tuples_in, 1u);
  EXPECT_EQ(stats.tuples_out, 1u);
  ASSERT_EQ(sink.repaired().size(), 1u);
  EXPECT_EQ(sink.repaired().at(0), T1Truth(r_));
}

TEST_F(StreamSupplierTest, CsvSinkMatchesBatchWriteCsv) {
  Relation data(r_);
  ASSERT_TRUE(data.Append(T1(r_)).ok());
  ASSERT_TRUE(data.Append(T3(r_)).ok());
  ASSERT_TRUE(data.Append(T4(r_)).ok());
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  BatchRepairResult batch = BatchRepair(*sat_).Repair(data, trusted);

  std::ostringstream stream_csv;
  {
    CsvStreamSink sink(r_, stream_csv);
    StreamOptions options;
    options.num_shards = 3;
    StreamRepairEngine engine(*sat_, trusted, &sink, options);
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(engine.Push(data.at(i)));
    }
    engine.Finish();
  }
  EXPECT_EQ(stream_csv.str(), ToCsv(batch.repaired));
}

TEST(StreamHospTest, MatchesBatchAtScaleAcrossThreadCounts) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(9);
  Relation master = HospWorkload::MakeMaster(schema, 300, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.6;  // mix of fixable and untouchable rows
  gen_options.noise_rate = 0.4;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 31;
  Rng rng2(77);
  Relation non_master = HospWorkload::MakeMaster(schema, 150, &rng2, 500000);
  DirtyGenerator gen(master, non_master, gen_options);

  Relation dirty(schema);
  for (const DirtyPair& pair : gen.Generate(101)) {  // odd row count
    ASSERT_TRUE(dirty.Append(pair.dirty).ok());
  }

  BatchRepairResult batch = BatchRepair(sat).Repair(dirty, trusted);
  std::string batch_csv = ToCsv(batch.repaired);
  for (size_t threads : {1, 2, 8}) {
    StreamOptions options;
    options.num_shards = threads;
    options.queue_capacity = 16;
    StreamRun run = RunStream(sat, dirty, trusted, options);
    ExpectMatchesBatch(batch, run, "threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace certfix
