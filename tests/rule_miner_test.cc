#include "mining/rule_miner.h"

#include <gtest/gtest.h>

#include "core/certain_fix.h"
#include "test_util.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

// A tiny master with clear structure: zip -> {AC, city}; under type = 2,
// phn -> name (mobile numbers are personal); no unconditional phn -> name
// (home numbers are shared).
SchemaPtr MinerSchema() {
  return Schema::Make(
      "M", std::vector<std::string>{"zip", "AC", "city", "phn", "type",
                                    "name"});
}

Relation MinerMaster() {
  Relation rel(MinerSchema());
  // type=1 rows share phn across names (landline); type=2 rows are 1:1.
  EXPECT_TRUE(rel.AppendStrings({"EH7", "131", "Edi", "555", "1", "Ann"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"EH7", "131", "Edi", "555", "1", "Bob"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"NW1", "020", "Lnd", "555", "1", "Cid"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"NW1", "020", "Lnd", "701", "2", "Dee"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"G11", "041", "Gla", "702", "2", "Eve"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"G11", "041", "Gla", "703", "2", "Fay"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"AB1", "012", "Abd", "704", "2", "Gus"}).ok());
  return rel;
}

bool HasDependency(const std::vector<MinedDependency>& deps,
                   const SchemaPtr& schema, const std::string& x,
                   const std::string& b, bool conditional = false) {
  AttrId xa = *schema->IndexOf(x);
  AttrId ba = *schema->IndexOf(b);
  for (const MinedDependency& dep : deps) {
    if (dep.rhs == ba && dep.lhs.size() == 1 && dep.lhs[0] == xa &&
        dep.IsConditional() == conditional) {
      return true;
    }
  }
  return false;
}

TEST(RuleMinerTest, FindsExactFds) {
  Relation master = MinerMaster();
  RuleMiner miner(master);
  std::vector<MinedDependency> deps = miner.MineDependencies();
  EXPECT_TRUE(HasDependency(deps, master.schema(), "zip", "AC"));
  EXPECT_TRUE(HasDependency(deps, master.schema(), "zip", "city"));
  // phn does NOT determine name unconditionally (landline sharing).
  EXPECT_FALSE(HasDependency(deps, master.schema(), "phn", "name"));
}

TEST(RuleMinerTest, FindsConditionalDependency) {
  Relation master = MinerMaster();
  RuleMinerOptions options;
  options.min_condition_rows = 3;
  RuleMiner miner(master, options);
  std::vector<MinedDependency> deps = miner.MineDependencies();
  // Under type = 2, phn -> name holds (4 mobile rows, distinct phns).
  bool found = false;
  AttrId phn = *master.schema()->IndexOf("phn");
  AttrId name = *master.schema()->IndexOf("name");
  AttrId type = *master.schema()->IndexOf("type");
  for (const MinedDependency& dep : deps) {
    if (dep.rhs == name && dep.lhs == std::vector<AttrId>{phn} &&
        dep.IsConditional() && dep.condition_attr == type &&
        dep.condition_value == Value::Str("2")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleMinerTest, MinimalityPrunesSupersets) {
  Relation master = MinerMaster();
  RuleMiner miner(master);
  std::vector<MinedDependency> deps = miner.MineDependencies();
  AttrId zip = *master.schema()->IndexOf("zip");
  AttrId ac = *master.schema()->IndexOf("AC");
  for (const MinedDependency& dep : deps) {
    if (dep.rhs == ac && !dep.IsConditional()) {
      // No lhs strictly containing {zip} may be reported for AC.
      AttrSet lhs = AttrSet::FromVector(dep.lhs);
      if (lhs.Contains(zip)) EXPECT_EQ(dep.lhs.size(), 1u);
    }
  }
}

TEST(RuleMinerTest, SupportThresholdFilters) {
  Relation master = MinerMaster();
  RuleMinerOptions options;
  options.min_support = 100;  // unattainable on 7 rows
  RuleMiner miner(master, options);
  EXPECT_TRUE(miner.MineDependencies().empty());
}

TEST(RuleMinerTest, MineRulesMapsByName) {
  Relation master = MinerMaster();
  RuleMiner miner(master);
  Result<RuleSet> rules =
      miner.MineRules(master.schema(), master.schema());
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_GT(rules->size(), 0u);
  // Every mined rule must be well-formed and applicable to master rows.
  MasterIndex index(*rules, master);
  for (size_t i = 0; i < rules->size(); ++i) {
    const EditingRule& rule = rules->at(i);
    bool fires = false;
    for (const Tuple& tm : master) {
      if (rule.AppliesTo(tm, tm)) fires = true;
    }
    EXPECT_TRUE(fires) << rule.ToString();
  }
}

TEST(RuleMinerTest, MinedRulesAreConsistentWithMaster) {
  // Rules mined FROM consistent master data must yield conflict-free
  // fixes ON that master data.
  Relation master = MinerMaster();
  RuleMiner miner(master);
  RuleSet rules =
      std::move(miner.MineRules(master.schema(), master.schema()))
          .ValueOrDie();
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  for (const Tuple& tm : master) {
    SaturationResult r =
        sat.CheckUniqueFix(tm, AttrSet{0, 3, 4});  // zip, phn, type
    EXPECT_TRUE(r.unique);
    EXPECT_EQ(r.fixed, tm);  // fixes never diverge from the master row
  }
}

TEST(RuleMinerTest, RecoversHospStructure) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(3);
  Relation master = HospWorkload::MakeMaster(schema, 160, &rng);
  RuleMinerOptions options;
  options.mine_conditional = false;  // exact FDs suffice here
  RuleMiner miner(master, options);
  std::vector<MinedDependency> deps = miner.MineDependencies();
  auto has = [&](const std::string& x, const std::string& b) {
    AttrId xa = *schema->IndexOf(x);
    AttrId ba = *schema->IndexOf(b);
    for (const MinedDependency& dep : deps) {
      if (dep.rhs == ba && dep.lhs == std::vector<AttrId>{xa}) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("zip", "ST"));
  EXPECT_TRUE(has("zip", "city"));
  EXPECT_TRUE(has("id", "hName"));
  EXPECT_TRUE(has("mCode", "condition"));
  EXPECT_TRUE(has("provider", "id"));
}

TEST(RuleMinerTest, MinedRulesDriveTheEngine) {
  // End-to-end: mine rules from the supplier master (same-schema view)
  // and fix a dirty tuple with them.
  Relation master = MinerMaster();
  RuleMiner miner(master);
  RuleSet rules =
      std::move(miner.MineRules(master.schema(), master.schema()))
          .ValueOrDie();
  CertainFixEngine engine(std::move(rules), master, CertainFixOptions{});

  Tuple truth = master.at(3);  // (NW1, 020, Lnd, 701, 2, Dee)
  Tuple dirty = truth;
  dirty.Set(*master.schema()->IndexOf("city"), Value::Str("WRONG"));
  dirty.Set(*master.schema()->IndexOf("AC"), Value::Str("999"));
  GroundTruthUser user(truth);
  FixOutcome outcome = engine.Fix(dirty, &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.fixed, truth);
}

TEST(RuleMinerTest, EmptyMasterYieldsNothing) {
  Relation empty(MinerSchema());
  RuleMiner miner(empty);
  EXPECT_TRUE(miner.MineDependencies().empty());
}

TEST(RuleMinerTest, SchemaMismatchRejected) {
  Relation master = MinerMaster();
  RuleMiner miner(master);
  SchemaPtr other = Schema::Make("O", std::vector<std::string>{"x"});
  EXPECT_FALSE(miner.MineRules(other, other).ok());
}

}  // namespace
}  // namespace certfix
