#include "core/batch_repair.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class BatchRepairSupplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(BatchRepairSupplierTest, RepairsTrustedKeyTuples) {
  Relation data(r_);
  ASSERT_TRUE(data.Append(T1(r_)).ok());  // fixable via zip/phn/type
  ASSERT_TRUE(data.Append(T4(r_)).ok());  // untouchable (no master match)

  BatchRepair repair(*sat_);
  BatchRepairResult result =
      repair.Repair(data, Attrs(r_, {"zip", "phn", "type", "item"}));
  EXPECT_EQ(result.tuples_fully_covered, 1u);
  EXPECT_EQ(result.tuples_untouched, 1u);
  EXPECT_EQ(result.tuples_conflicting, 0u);
  EXPECT_EQ(result.repaired.at(0), T1Truth(r_));
  EXPECT_EQ(result.repaired.at(1), T4(r_));
  EXPECT_EQ(result.cells_changed, 3u);  // fn, AC, str of t1
}

TEST_F(BatchRepairSupplierTest, ConflictingTupleLeftAlone) {
  Relation data(r_);
  ASSERT_TRUE(data.Append(T3(r_)).ok());  // AC/zip conflict (Example 5)
  BatchRepair repair(*sat_);
  BatchRepairResult result =
      repair.Repair(data, Attrs(r_, {"AC", "phn", "type", "zip"}));
  EXPECT_EQ(result.tuples_conflicting, 1u);
  EXPECT_EQ(result.conflict_rows, std::vector<size_t>{0});
  EXPECT_EQ(result.repaired.at(0), T3(r_));
  EXPECT_EQ(result.cells_changed, 0u);
}

TEST_F(BatchRepairSupplierTest, PartialCoverageCounted) {
  Relation data(r_);
  ASSERT_TRUE(data.Append(T1(r_)).ok());
  BatchRepair repair(*sat_);
  // Only zip trusted: AC/str/city get fixed, fn/ln/phn/type/item do not.
  BatchRepairResult result = repair.Repair(data, Attrs(r_, {"zip"}));
  EXPECT_EQ(result.tuples_partial, 1u);
  EXPECT_EQ(result.repaired.at(0).at(A(r_, "AC")).as_string(), "131");
  EXPECT_EQ(result.repaired.at(0).at(A(r_, "fn")).as_string(), "Bob");
}

TEST(BatchRepairHospTest, RestoresDuplicatesAtScale) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(9);
  Relation master = HospWorkload::MakeMaster(schema, 400, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  // Corrupt everything except the trusted keys on 100 master-drawn rows.
  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 1.0;
  gen_options.noise_rate = 0.4;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 12;
  DirtyGenerator gen(master, master, gen_options);

  Relation dirty(schema);
  std::vector<Tuple> truths;
  for (const DirtyPair& pair : gen.Generate(100)) {
    ASSERT_TRUE(dirty.Append(pair.dirty).ok());
    truths.push_back(pair.clean);
  }

  BatchRepair repair(sat);
  BatchRepairResult result = repair.Repair(dirty, trusted);
  EXPECT_EQ(result.tuples_conflicting, 0u);
  EXPECT_EQ(result.tuples_fully_covered, 100u);
  for (size_t i = 0; i < truths.size(); ++i) {
    EXPECT_EQ(result.repaired.at(i), truths[i]) << "row " << i;
  }
}

// --- Differential tests: the parallel engine must be bit-identical to
// the sequential num_threads == 1 reference path. ---

void ExpectSameRepair(const BatchRepairResult& expected,
                      const BatchRepairResult& actual,
                      const std::string& label) {
  EXPECT_EQ(actual.tuples_fully_covered, expected.tuples_fully_covered)
      << label;
  EXPECT_EQ(actual.tuples_partial, expected.tuples_partial) << label;
  EXPECT_EQ(actual.tuples_untouched, expected.tuples_untouched) << label;
  EXPECT_EQ(actual.tuples_conflicting, expected.tuples_conflicting) << label;
  EXPECT_EQ(actual.cells_changed, expected.cells_changed) << label;
  EXPECT_EQ(actual.conflict_rows, expected.conflict_rows) << label;
  ASSERT_EQ(actual.repaired.size(), expected.repaired.size()) << label;
  for (size_t i = 0; i < expected.repaired.size(); ++i) {
    EXPECT_EQ(actual.repaired.at(i), expected.repaired.at(i))
        << label << " row " << i;
  }
}

TEST_F(BatchRepairSupplierTest, ParallelMatchesSequentialWithConflicts) {
  // 25 rows (odd, not divisible by any tested thread count) cycling
  // through fixable / conflicting / untouchable tuples, so every counter
  // and the conflict_rows order are exercised across shard boundaries.
  Relation data(r_);
  for (size_t i = 0; i < 25; ++i) {
    switch (i % 3) {
      case 0:
        ASSERT_TRUE(data.Append(T1(r_)).ok());
        break;
      case 1:
        ASSERT_TRUE(data.Append(T3(r_)).ok());
        break;
      default:
        ASSERT_TRUE(data.Append(T4(r_)).ok());
        break;
    }
  }
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  BatchRepairResult sequential = BatchRepair(*sat_).Repair(data, trusted);
  EXPECT_GT(sequential.tuples_conflicting, 0u);
  for (size_t threads : {2, 3, 8}) {
    for (size_t chunk : {0, 1, 4}) {
      RepairOptions options;
      options.num_threads = threads;
      options.chunk_size = chunk;
      BatchRepairResult parallel =
          BatchRepair(*sat_, options).Repair(data, trusted);
      ExpectSameRepair(sequential, parallel,
                       "threads=" + std::to_string(threads) +
                           " chunk=" + std::to_string(chunk));
    }
  }
}

TEST_F(BatchRepairSupplierTest, MoreThreadsThanRows) {
  Relation data(r_);
  ASSERT_TRUE(data.Append(T1(r_)).ok());
  ASSERT_TRUE(data.Append(T3(r_)).ok());
  ASSERT_TRUE(data.Append(T4(r_)).ok());
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  BatchRepairResult sequential = BatchRepair(*sat_).Repair(data, trusted);
  RepairOptions options;
  options.num_threads = 8;
  BatchRepairResult parallel =
      BatchRepair(*sat_, options).Repair(data, trusted);
  ExpectSameRepair(sequential, parallel, "3 rows, 8 threads");
}

TEST(BatchRepairHospTest, ParallelMatchesSequentialAtScale) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(9);
  Relation master = HospWorkload::MakeMaster(schema, 300, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.6;  // mix of fixable and untouchable rows
  gen_options.noise_rate = 0.4;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 31;
  Rng rng2(77);
  Relation non_master = HospWorkload::MakeMaster(schema, 150, &rng2, 500000);
  DirtyGenerator gen(master, non_master, gen_options);

  Relation dirty(schema);
  for (const DirtyPair& pair : gen.Generate(101)) {  // odd row count
    ASSERT_TRUE(dirty.Append(pair.dirty).ok());
  }

  BatchRepairResult sequential = BatchRepair(sat).Repair(dirty, trusted);
  for (size_t threads : {1, 2, 8}) {
    RepairOptions options;
    options.num_threads = threads;
    BatchRepairResult parallel =
        BatchRepair(sat, options).Repair(dirty, trusted);
    ExpectSameRepair(sequential, parallel,
                     "threads=" + std::to_string(threads));
  }
}

TEST(BatchRepairHospTest, EmptyRelation) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(9);
  Relation master = HospWorkload::MakeMaster(schema, 50, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  BatchRepair repair(sat);
  BatchRepairResult result = repair.Repair(Relation(schema), AttrSet{0});
  EXPECT_EQ(result.cells_changed, 0u);
  EXPECT_TRUE(result.repaired.empty());
}

}  // namespace
}  // namespace certfix
