#include "core/direct_fix.h"

#include <gtest/gtest.h>

#include "core/consistency.h"

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

// A direct-fix rule set over the supplier schemas: patterns only on lhs
// attributes (Sect. 4.1 case (5) requires Xp subset of X).
RuleSet DirectRules(const SchemaPtr& r, const SchemaPtr& rm) {
  const char* text = R"(
    rule d1: (zip | zip) -> (AC | AC)
    rule d2: (zip | zip) -> (str | str)
    rule d3: (zip | zip) -> (city | city)
    rule d4: (AC | AC) -> (city | city) when AC!=0800
    rule d5: (phn, type | Mphn, DOB) -> (fn | FN) when type=2
  )";
  Result<RuleSet> rules = ParseRules(text, r, rm);
  EXPECT_TRUE(rules.ok()) << rules.status();
  return std::move(rules).ValueOrDie();
}

class DirectFixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
  }
  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
};

TEST_F(DirectFixTest, ShapeValidation) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker ok_checker(direct, dm_);
  EXPECT_TRUE(ok_checker.ValidateShape().ok());

  RuleSet full = SupplierRules(r_, rm_);  // phi4 has pattern attr type not in X
  DirectFixChecker bad_checker(full, dm_);
  Status st = bad_checker.ValidateShape();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(DirectFixTest, ConsistentRegion) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  // Z = {zip}, tc pins zip to s1's: d1-d3 each have a single master row.
  std::vector<AttrId> z = {A(r_, "zip")};
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  Result<bool> ok = checker.IsConsistent(z, tc);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(DirectFixTest, ConflictingPairDetected) {
  // d3 (zip -> city) and d4 (AC -> city): with Z = {zip, AC} and tc
  // binding zip to s1 but AC to s2's 020, the two queries produce master
  // rows assigning city = Edi vs city = Lnd.
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  std::vector<AttrId> z = {A(r_, "zip"), A(r_, "AC")};
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  tc.SetConst(A(r_, "AC"), Value::Str("020"));
  std::vector<DirectFixWitness> witnesses;
  Result<bool> ok = checker.IsConsistent(z, tc, &witnesses);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(*ok);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_EQ(witnesses[0].attr, A(r_, "city"));
}

TEST_F(DirectFixTest, ConsistentWhenValuesAgree) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  std::vector<AttrId> z = {A(r_, "zip"), A(r_, "AC")};
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  tc.SetConst(A(r_, "AC"), Value::Str("131"));  // s1's own AC
  Result<bool> ok = checker.IsConsistent(z, tc);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DirectFixTest, SameRuleTwoMastersConflict) {
  // Duplicate s1's zip with a different city: Q_phi1,phi1 self-join must
  // catch the disagreement.
  Relation dm2 = dm_;
  Tuple clone = dm_.at(0);
  clone.Set(A(rm_, "city"), Value::Str("Gla"));
  ASSERT_TRUE(dm2.Append(clone).ok());
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm2);
  std::vector<AttrId> z = {A(r_, "zip")};
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  Result<bool> ok = checker.IsConsistent(z, tc);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(DirectFixTest, CertainRegionRequiresFullCoverage) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  // Z = {zip}: fn, ln, phn, type, item are not covered by direct rules
  // from zip alone -> not a certain region.
  std::vector<AttrId> z = {A(r_, "zip")};
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  Result<bool> ok = checker.IsCertainRegion(z, tc);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(*ok);
}

TEST_F(DirectFixTest, CertainRegionWhenAllCovered) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  // Z = everything except the three attributes d1-d3 fix from zip.
  std::vector<AttrId> z =
      Attrs(r_, {"fn", "ln", "phn", "type", "zip", "item"}).ToVector();
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  tc.SetConst(A(r_, "type"), Value::Str("1"));
  tc.SetConst(A(r_, "fn"), Value::Str("Robert"));
  tc.SetConst(A(r_, "ln"), Value::Str("Brady"));
  tc.SetConst(A(r_, "phn"), Value::Str("6884563"));
  tc.SetConst(A(r_, "item"), Value::Str("CDs"));
  Result<bool> ok = checker.IsCertainRegion(z, tc);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(DirectFixTest, CoverageNeedsMatchingMaster) {
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker checker(direct, dm_);
  std::vector<AttrId> z =
      Attrs(r_, {"fn", "ln", "phn", "type", "zip", "item"}).ToVector();
  PatternTuple tc(r_);
  tc.SetConst(A(r_, "zip"), Value::Str("NO SUCH ZIP"));
  tc.SetConst(A(r_, "type"), Value::Str("1"));
  tc.SetConst(A(r_, "fn"), Value::Str("Robert"));
  tc.SetConst(A(r_, "ln"), Value::Str("Brady"));
  tc.SetConst(A(r_, "phn"), Value::Str("6884563"));
  tc.SetConst(A(r_, "item"), Value::Str("CDs"));
  Result<bool> ok = checker.IsCertainRegion(z, tc);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);  // no master tuple with that zip
}

TEST_F(DirectFixTest, AgreesWithGeneralCheckerOnDirectRules) {
  // Cross-validation: for direct rules without region extension effects,
  // the query-based checker and the saturation-based checker must agree
  // on single-round fixability conflicts.
  RuleSet direct = DirectRules(r_, rm_);
  DirectFixChecker query_checker(direct, dm_);
  MasterIndex index(direct, dm_);
  Saturator sat(direct, dm_, index);

  struct Case {
    std::vector<std::string> z;
    std::vector<std::pair<std::string, std::string>> binds;
  };
  std::vector<Case> cases = {
      {{"zip"}, {{"zip", "EH7 4AH"}}},
      {{"zip", "AC"}, {{"zip", "EH7 4AH"}, {"AC", "020"}}},
      {{"zip", "AC"}, {{"zip", "EH7 4AH"}, {"AC", "131"}}},
      {{"zip", "AC"}, {{"zip", "NW1 6XE"}, {"AC", "020"}}},
  };
  for (const Case& c : cases) {
    std::vector<AttrId> z = Attrs(r_, c.z).ToVector();
    PatternTuple tc(r_);
    for (const auto& [name, value] : c.binds) {
      tc.SetConst(A(r_, name), Value::Str(value));
    }
    Result<bool> direct_ok = query_checker.IsConsistent(z, tc);
    ASSERT_TRUE(direct_ok.ok());

    Region region = Region::Of(r_, z);
    ASSERT_TRUE(region.AddRow(tc).ok());
    ConsistencyChecker general(sat);
    Result<bool> general_ok = general.IsConsistent(region);
    ASSERT_TRUE(general_ok.ok());
    EXPECT_EQ(*direct_ok, *general_ok)
        << "divergence on z=" << region.ToString();
  }
}

}  // namespace
}  // namespace certfix
