/// \file columnar_differential_test.cc
/// \brief Differential oracle for the interned columnar storage layer: a
/// naive row-at-a-time reference engine — linear master scans, Value
/// (string) comparisons, no ValuePool / ValueId / MasterIndex machinery —
/// re-implements the saturation semantics of Sect. 3, and BatchRepair's
/// output must be byte-identical to it under WriteCsv on the HOSP
/// workload, sequentially and across thread counts.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "core/batch_repair.h"
#include "relational/csv.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

// --- Reference engine -----------------------------------------------------

struct RefRunResult {
  Tuple fixed;
  AttrSet covered;
  bool unique = true;
  std::vector<Value> excluded_proposals;
};

// One saturation run over plain rows: rules in order, candidate masters by
// linear scan with Value equality on the key, distinct rhs values in master
// row order. Mirrors Saturator::Run's application order exactly.
RefRunResult RefRun(const RuleSet& rules, const Relation& dm, const Tuple& t,
                    AttrSet z0, int excluded) {
  RefRunResult result;
  result.fixed = t;
  result.covered = z0;
  AttrSet z = z0;

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<AttrId, std::vector<Value>> round;
    for (size_t i = 0; i < rules.size(); ++i) {
      const EditingRule& rule = rules.at(i);
      AttrId b = rule.rhs();
      if (z.Contains(b)) continue;
      if (!rule.premise_set().SubsetOf(z)) continue;
      if (!rule.pattern().Matches(result.fixed)) continue;
      // Distinct tm[Bm] over masters agreeing with t on the key, row order.
      std::vector<Value> distinct;
      for (size_t m = 0; m < dm.size(); ++m) {
        const Tuple tm = dm.at(m);
        bool agrees = true;
        for (size_t p = 0; p < rule.lhs().size(); ++p) {
          if (result.fixed.at(rule.lhs()[p]) != tm.at(rule.lhsm()[p])) {
            agrees = false;
            break;
          }
        }
        if (!agrees) continue;
        const Value& v = tm.at(rule.rhsm());
        bool seen = false;
        for (const Value& d : distinct) {
          if (d == v) {
            seen = true;
            break;
          }
        }
        if (!seen) distinct.push_back(v);
      }
      for (const Value& v : distinct) round[b].push_back(v);
    }
    if (excluded >= 0) {
      auto it = round.find(static_cast<AttrId>(excluded));
      if (it != round.end()) {
        for (const Value& v : it->second) {
          bool seen = false;
          for (const Value& d : result.excluded_proposals) {
            if (d == v) {
              seen = true;
              break;
            }
          }
          if (!seen) result.excluded_proposals.push_back(v);
        }
        round.erase(it);
      }
    }
    for (const auto& [attr, values] : round) {
      for (size_t k = 1; k < values.size(); ++k) {
        if (values[k] != values.front()) result.unique = false;
      }
      result.fixed.Set(attr, values.front());
      z.Add(attr);
      result.covered.Add(attr);
      changed = true;
    }
  }
  return result;
}

// The exact unique-fix decision of Theorem 4, naive edition.
RefRunResult RefCheckUniqueFix(const RuleSet& rules, const Relation& dm,
                               const Tuple& t, AttrSet z0) {
  RefRunResult full = RefRun(rules, dm, t, z0, -1);
  if (!full.unique) return full;
  for (AttrId b : full.covered.Minus(z0).ToVector()) {
    RefRunResult excl = RefRun(rules, dm, t, z0, static_cast<int>(b));
    if (!excl.unique || excl.excluded_proposals.size() > 1) {
      full.unique = false;
      return full;
    }
  }
  return full;
}

Relation RefBatchRepair(const RuleSet& rules, const Relation& dm,
                        const Relation& data, AttrSet trusted) {
  Relation out = data;
  for (size_t i = 0; i < data.size(); ++i) {
    RefRunResult fix = RefCheckUniqueFix(rules, dm, data.at(i), trusted);
    if (fix.unique) out.SetRow(i, fix.fixed);
  }
  return out;
}

std::string ToCsvBytes(const Relation& rel) {
  std::ostringstream os;
  Status st = WriteCsv(rel, os);
  EXPECT_TRUE(st.ok());
  return os.str();
}

// --- The differential -----------------------------------------------------

TEST(ColumnarDifferentialTest, BatchRepairMatchesRowReferenceOnHosp) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(123);
  Relation master = HospWorkload::MakeMaster(schema, 200, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));

  // Mixed workload: duplicates (fully repairable), non-duplicates
  // (untouchable), some nulls via the generator's missing-value noise.
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.7;
  gen_options.noise_rate = 0.5;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 97;
  Rng rng2(55);
  Relation non_master = HospWorkload::MakeMaster(schema, 80, &rng2, 700000);
  DirtyGenerator gen(master, non_master, gen_options);

  Relation dirty(schema);
  for (const DirtyPair& pair : gen.Generate(80)) {
    ASSERT_TRUE(dirty.Append(pair.dirty).ok());
  }

  std::string reference =
      ToCsvBytes(RefBatchRepair(rules, master, dirty, trusted));
  ASSERT_NE(reference, ToCsvBytes(dirty)) << "oracle repaired nothing";

  for (size_t threads : {1, 2, 8}) {
    RepairOptions options;
    options.num_threads = threads;
    BatchRepairResult result = BatchRepair(sat, options).Repair(dirty, trusted);
    EXPECT_EQ(ToCsvBytes(result.repaired), reference)
        << "threads=" << threads;
  }
}

// Same oracle on the 10-attribute supplier example of the paper, where
// conflicting tuples (Example 5) must be left untouched by both engines.
TEST(ColumnarDifferentialTest, ConflictRowsLeftIdentical) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(7);
  Relation master = HospWorkload::MakeMaster(schema, 120, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  AttrSet trusted;
  trusted.Add(*schema->IndexOf("zip"));
  trusted.Add(*schema->IndexOf("phn"));

  // Trusting only geographic keys leaves most attributes underivable and
  // exercises the partial/untouched paths of both engines.
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.5;
  gen_options.noise_rate = 0.6;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 13;
  DirtyGenerator gen(master, master, gen_options);

  Relation dirty(schema);
  for (const DirtyPair& pair : gen.Generate(40)) {
    ASSERT_TRUE(dirty.Append(pair.dirty).ok());
  }

  std::string reference =
      ToCsvBytes(RefBatchRepair(rules, master, dirty, trusted));
  BatchRepairResult result = BatchRepair(sat).Repair(dirty, trusted);
  EXPECT_EQ(ToCsvBytes(result.repaired), reference);
}

}  // namespace
}  // namespace certfix
