#include "relational/multi_master.h"

#include <gtest/gtest.h>

#include "core/saturation.h"
#include "rules/rule_set.h"

namespace certfix {
namespace {

Relation AddressMaster() {
  SchemaPtr s = Schema::Make("Addr", std::vector<std::string>{"zip", "city"});
  Relation rel(s);
  EXPECT_TRUE(rel.AppendStrings({"EH7", "Edi"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"NW1", "Lnd"}).ok());
  return rel;
}

Relation PhoneMaster() {
  SchemaPtr s = Schema::Make("Phone", std::vector<std::string>{"phn", "owner"});
  Relation rel(s);
  EXPECT_TRUE(rel.AppendStrings({"555", "Ann"}).ok());
  return rel;
}

TEST(MultiMasterTest, CombinedSchemaShape) {
  Relation addr = AddressMaster();
  Relation phone = PhoneMaster();
  Result<MultiMaster> mm =
      MultiMaster::Combine({{"addr", &addr}, {"phone", &phone}});
  ASSERT_TRUE(mm.ok()) << mm.status();
  // id + 2 + 2 attributes.
  EXPECT_EQ(mm->schema()->num_attrs(), 5u);
  EXPECT_EQ(mm->schema()->attr_name(0), "id");
  EXPECT_TRUE(mm->schema()->Has("addr.zip"));
  EXPECT_TRUE(mm->schema()->Has("phone.owner"));
  EXPECT_EQ(mm->relation().size(), 3u);
}

TEST(MultiMasterTest, SigmaIdSelectsSource) {
  Relation addr = AddressMaster();
  Relation phone = PhoneMaster();
  MultiMaster mm = std::move(MultiMaster::Combine(
                                 {{"addr", &addr}, {"phone", &phone}}))
                       .ValueOrDie();
  size_t addr_rows = 0;
  size_t phone_rows = 0;
  for (const Tuple& t : mm.relation()) {
    if (t.at(mm.id_attr()) == mm.SourceId(0)) {
      ++addr_rows;
      EXPECT_FALSE(t.at(*mm.Resolve("addr", "zip")).is_null());
      EXPECT_TRUE(t.at(*mm.Resolve("phone", "phn")).is_null());
    } else {
      ++phone_rows;
      EXPECT_TRUE(t.at(*mm.Resolve("addr", "zip")).is_null());
    }
  }
  EXPECT_EQ(addr_rows, 2u);
  EXPECT_EQ(phone_rows, 1u);
}

TEST(MultiMasterTest, RulesAgainstCombinedMaster) {
  // An input schema with zip/city/phn/owner; rules pull city from the
  // addr source and owner from the phone source of the combined master.
  Relation addr = AddressMaster();
  Relation phone = PhoneMaster();
  MultiMaster mm = std::move(MultiMaster::Combine(
                                 {{"addr", &addr}, {"phone", &phone}}))
                       .ValueOrDie();
  SchemaPtr r = Schema::Make(
      "R", std::vector<std::string>{"zip", "city", "phn", "owner"});

  RuleSet rules(r, mm.schema());
  Result<EditingRule> city_rule = EditingRule::Make(
      "city", r, mm.schema(), {*r->IndexOf("zip")},
      {*mm.Resolve("addr", "zip")}, *r->IndexOf("city"),
      *mm.Resolve("addr", "city"), PatternTuple(r));
  ASSERT_TRUE(city_rule.ok());
  ASSERT_TRUE(rules.Add(std::move(city_rule).ValueOrDie()).ok());
  Result<EditingRule> owner_rule = EditingRule::Make(
      "owner", r, mm.schema(), {*r->IndexOf("phn")},
      {*mm.Resolve("phone", "phn")}, *r->IndexOf("owner"),
      *mm.Resolve("phone", "owner"), PatternTuple(r));
  ASSERT_TRUE(owner_rule.ok());
  ASSERT_TRUE(rules.Add(std::move(owner_rule).ValueOrDie()).ok());

  MasterIndex index(rules, mm.relation());
  Saturator sat(rules, mm.relation(), index);
  Tuple t = std::move(Tuple::FromStrings(r, {"EH7", "WRONG", "555", ""}))
                .ValueOrDie();
  AttrSet z{*r->IndexOf("zip"), *r->IndexOf("phn")};
  SaturationResult result = sat.CheckUniqueFix(t, z);
  EXPECT_TRUE(result.unique);
  EXPECT_EQ(result.fixed.at(*r->IndexOf("city")).as_string(), "Edi");
  EXPECT_EQ(result.fixed.at(*r->IndexOf("owner")).as_string(), "Ann");
  EXPECT_TRUE(result.CertainOver(r));
}

TEST(MultiMasterTest, RejectsDuplicateNames) {
  Relation addr = AddressMaster();
  EXPECT_FALSE(
      MultiMaster::Combine({{"a", &addr}, {"a", &addr}}).ok());
  EXPECT_FALSE(MultiMaster::Combine({{"", &addr}}).ok());
  EXPECT_FALSE(MultiMaster::Combine({}).ok());
}

}  // namespace
}  // namespace certfix
