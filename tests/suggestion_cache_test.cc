#include "core/suggestion_cache.h"

#include <gtest/gtest.h>

namespace certfix {
namespace {

TEST(SuggestionCacheTest, EmptyLookupMisses) {
  SuggestionCache cache;
  SuggestionCache::Cursor cursor = cache.Root();
  auto hit = cache.Lookup(&cursor, [](const AttrSet&) { return true; });
  EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.num_nodes(), 0u);
}

TEST(SuggestionCacheTest, InsertThenHit) {
  SuggestionCache cache;
  SuggestionCache::Cursor c1 = cache.Root();
  cache.Insert(&c1, AttrSet{1, 2});
  // A new tuple starts at the root and finds the cached suggestion.
  SuggestionCache::Cursor c2 = cache.Root();
  auto hit = cache.Lookup(&c2, [](const AttrSet& s) { return s.Contains(1); });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (AttrSet{1, 2}));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SuggestionCacheTest, FalseChainSearchedInOrder) {
  // Fig. 7: suggestions rejected by the predicate are chained on the
  // false branch; the first acceptable one wins.
  SuggestionCache cache;
  SuggestionCache::Cursor c = cache.Root();
  cache.Insert(&c, AttrSet{1});
  SuggestionCache::Cursor c2 = cache.Root();
  // Reject {1}: miss, insert {2} as its false-sibling.
  auto miss = cache.Lookup(&c2, [](const AttrSet& s) { return s.Contains(2); });
  EXPECT_FALSE(miss.has_value());
  cache.Insert(&c2, AttrSet{2});

  SuggestionCache::Cursor c3 = cache.Root();
  auto hit = cache.Lookup(&c3, [](const AttrSet& s) { return s.Contains(2); });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (AttrSet{2}));
  EXPECT_EQ(cache.stats().checks, 1u + 2u);  // reject; then reject + hit
}

TEST(SuggestionCacheTest, TrueBranchFormsNextLevel) {
  // Fig. 7b: after a hit the next round's suggestions live on the hit
  // node's true branch, independent of the root level.
  SuggestionCache cache;
  SuggestionCache::Cursor c = cache.Root();
  cache.Insert(&c, AttrSet{1});   // round-1 suggestion
  cache.Insert(&c, AttrSet{9});   // round-2 suggestion under {1}

  // Replay: hit {1} at the root, then {9} on its true branch.
  SuggestionCache::Cursor replay = cache.Root();
  auto h1 = cache.Lookup(&replay, [](const AttrSet& s) { return s.Contains(1); });
  ASSERT_TRUE(h1.has_value());
  auto h2 = cache.Lookup(&replay, [](const AttrSet& s) { return s.Contains(9); });
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(*h2, (AttrSet{9}));

  // The root level must NOT contain {9}.
  SuggestionCache::Cursor root_again = cache.Root();
  auto no9 = cache.Lookup(&root_again,
                          [](const AttrSet& s) { return s.Contains(9); });
  EXPECT_FALSE(no9.has_value());
}

TEST(SuggestionCacheTest, StatsAccumulateAndReset) {
  SuggestionCache cache;
  SuggestionCache::Cursor c = cache.Root();
  cache.Insert(&c, AttrSet{1});
  SuggestionCache::Cursor c2 = cache.Root();
  cache.Lookup(&c2, [](const AttrSet&) { return true; });
  cache.Lookup(&c2, [](const AttrSet&) { return true; });  // empty level
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SuggestionCacheTest, ClearDropsNodes) {
  SuggestionCache cache;
  SuggestionCache::Cursor c = cache.Root();
  cache.Insert(&c, AttrSet{1});
  EXPECT_EQ(cache.num_nodes(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.num_nodes(), 0u);
  SuggestionCache::Cursor c2 = cache.Root();
  EXPECT_FALSE(cache.Lookup(&c2, [](const AttrSet&) { return true; })
                   .has_value());
}

TEST(SuggestionCacheTest, DeepChainsAndLevels) {
  SuggestionCache cache;
  // Build 5 levels each with 3 siblings.
  SuggestionCache::Cursor c = cache.Root();
  for (uint32_t level = 0; level < 5; ++level) {
    for (uint32_t sib = 0; sib < 2; ++sib) {
      SuggestionCache::Cursor probe = c;
      cache.Lookup(&probe, [](const AttrSet&) { return false; });
      cache.Insert(&probe, AttrSet{level * 10 + sib});
    }
    // Final sibling is the one we descend through.
    cache.Lookup(&c, [](const AttrSet&) { return false; });
    cache.Insert(&c, AttrSet{level * 10 + 9});
  }
  EXPECT_EQ(cache.num_nodes(), 15u);
  // Replay the winning path.
  SuggestionCache::Cursor replay = cache.Root();
  for (uint32_t level = 0; level < 5; ++level) {
    auto hit = cache.Lookup(&replay, [&](const AttrSet& s) {
      return s.Contains(level * 10 + 9);
    });
    ASSERT_TRUE(hit.has_value()) << "level " << level;
  }
}

}  // namespace
}  // namespace certfix
