/// \file value_roundtrip_test.cc
/// \brief Property tests for Value::Parse / Value::ToString: every int64
/// and every finite double must survive a text round trip exactly, and
/// out-of-range literals must parse to null rather than clamp to
/// plausible-looking extremes. Seeds follow the CERTFIX_PROPERTY_SEED /
/// --gtest_repeat soak idiom.

#include "relational/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>

namespace certfix {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("CERTFIX_PROPERTY_SEED");
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return 20260808;
}

uint64_t NextSeed() {
  static uint64_t iteration = 0;
  return BaseSeed() + 1009 * iteration++;
}

void ExpectIntRoundTrip(int64_t v) {
  Value val = Value::Int(v);
  Value back = Value::Parse(val.ToString(), DataType::kInt);
  ASSERT_TRUE(back.is_int()) << v;
  EXPECT_EQ(back.as_int(), v);
}

void ExpectDoubleRoundTrip(double d) {
  Value val = Value::Double(d);
  std::string text = val.ToString();
  Value back = Value::Parse(text, DataType::kDouble);
  ASSERT_TRUE(back.is_double()) << text;
  // Bitwise identity (covers -0.0 vs 0.0, subnormals, extremes).
  uint64_t want_bits = 0, got_bits = 0;
  double got = back.as_double();
  std::memcpy(&want_bits, &d, sizeof(d));
  std::memcpy(&got_bits, &got, sizeof(got));
  EXPECT_EQ(got_bits, want_bits) << text;
}

TEST(ValueRoundTripTest, IntBoundaries) {
  const int64_t kValues[] = {0,
                             1,
                             -1,
                             42,
                             -42,
                             std::numeric_limits<int64_t>::max(),
                             std::numeric_limits<int64_t>::max() - 1,
                             std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::min() + 1};
  for (int64_t v : kValues) ExpectIntRoundTrip(v);
}

TEST(ValueRoundTripTest, OutOfRangeIntLiteralsParseToNull) {
  // One past INT64_MAX / below INT64_MIN, and absurd magnitudes: these
  // used to clamp to LLONG_MAX/MIN and enter the pool as plausible data.
  const char* kBad[] = {"9223372036854775808", "-9223372036854775809",
                        "99999999999999999999999999",
                        "-99999999999999999999999999"};
  for (const char* text : kBad) {
    EXPECT_TRUE(Value::Parse(text, DataType::kInt).is_null()) << text;
  }
  // The exact boundaries are still accepted.
  EXPECT_EQ(Value::Parse("9223372036854775807", DataType::kInt).as_int(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(Value::Parse("-9223372036854775808", DataType::kInt).as_int(),
            std::numeric_limits<int64_t>::min());
}

TEST(ValueRoundTripTest, DoubleSpecialValues) {
  ExpectDoubleRoundTrip(0.0);
  ExpectDoubleRoundTrip(-0.0);
  ExpectDoubleRoundTrip(1.0 / 3.0);
  ExpectDoubleRoundTrip(0.1);
  ExpectDoubleRoundTrip(std::numeric_limits<double>::max());
  ExpectDoubleRoundTrip(std::numeric_limits<double>::min());        // smallest normal
  ExpectDoubleRoundTrip(std::numeric_limits<double>::denorm_min()); // subnormal
  ExpectDoubleRoundTrip(std::numeric_limits<double>::epsilon());
  ExpectDoubleRoundTrip(1e308);
  ExpectDoubleRoundTrip(-1e308);
  ExpectDoubleRoundTrip(6.02214076e23);
  // The old "%g" (6 digits) lost all of these.
  ExpectDoubleRoundTrip(3.141592653589793);
  ExpectDoubleRoundTrip(1.0000000000000002);  // 1 + 1 ulp
}

TEST(ValueRoundTripTest, OverflowingDoubleLiteralsParseToNull) {
  EXPECT_TRUE(Value::Parse("1e999", DataType::kDouble).is_null());
  EXPECT_TRUE(Value::Parse("-1e999", DataType::kDouble).is_null());
  // Gradual underflow is NOT an error: tiny literals land on zero (or a
  // subnormal), they don't disappear into nulls.
  Value tiny = Value::Parse("1e-999", DataType::kDouble);
  ASSERT_TRUE(tiny.is_double());
  EXPECT_EQ(tiny.as_double(), 0.0);
  Value sub = Value::Parse("4.9e-324", DataType::kDouble);
  ASSERT_TRUE(sub.is_double());
  EXPECT_GT(sub.as_double(), 0.0);
}

TEST(ValueRoundTripTest, RandomInt64sRoundTrip) {
  std::mt19937_64 rng(NextSeed());
  for (int i = 0; i < 5000; ++i) {
    ExpectIntRoundTrip(static_cast<int64_t>(rng()));
  }
}

TEST(ValueRoundTripTest, RandomDoubleBitPatternsRoundTrip) {
  std::mt19937_64 rng(NextSeed());
  int tested = 0;
  while (tested < 5000) {
    uint64_t bits = rng();
    double d = 0;
    std::memcpy(&d, &bits, sizeof(d));
    if (std::isnan(d) || std::isinf(d)) continue;  // not representable in CSV
    ExpectDoubleRoundTrip(d);
    ++tested;
  }
  // Uniform magnitudes too (bit patterns are mostly extreme exponents).
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);
  for (int i = 0; i < 5000; ++i) {
    ExpectDoubleRoundTrip(uniform(rng));
  }
}

}  // namespace
}  // namespace certfix
