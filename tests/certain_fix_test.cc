#include "core/certain_fix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class CertainFixEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
  }

  CertainFixEngine MakeEngine(bool use_cache = true) {
    CertainFixOptions options;
    options.use_cache = use_cache;
    options.region.trials = 16;
    return CertainFixEngine(SupplierRules(r_, rm_), dm_, options);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
};

TEST_F(CertainFixEngineTest, PrecomputesNonEmptyRegions) {
  CertainFixEngine engine = MakeEngine();
  ASSERT_FALSE(engine.regions().empty());
  const RankedRegion& best = engine.initial_region();
  EXPECT_FALSE(best.region.tableau().empty());
  // Best region: the 4-attribute {phn, type, zip, item} (or equivalent).
  EXPECT_LE(best.region.z().size(), 5u);
}

TEST_F(CertainFixEngineTest, FixesT1InOneRound) {
  CertainFixEngine engine = MakeEngine();
  GroundTruthUser user(T1Truth(r_));
  FixOutcome outcome = engine.Fix(T1(r_), &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.conflict);
  EXPECT_EQ(outcome.fixed, T1Truth(r_));
  EXPECT_EQ(outcome.num_rounds(), 1u);
  // fn, AC, str were dirty and rule-fixed; ln/city were already right.
  EXPECT_TRUE(outcome.auto_fixed.Contains(A(r_, "fn")));
  EXPECT_TRUE(outcome.auto_fixed.Contains(A(r_, "AC")));
  EXPECT_TRUE(outcome.auto_fixed.Contains(A(r_, "str")));
}

TEST_F(CertainFixEngineTest, EnrichesT2MissingValues) {
  // t2 has null str/zip; its ground truth is s2's supplier view.
  Result<Tuple> truth = Tuple::FromStrings(
      r_, {"Mark", "Smith", "020", "6884563", "1", "20 Baker St.", "Lnd",
           "NW1 6XE", "Books"});
  ASSERT_TRUE(truth.ok());
  CertainFixEngine engine = MakeEngine();
  GroundTruthUser user(*truth);
  FixOutcome outcome = engine.Fix(T2(r_), &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.fixed, *truth);
  // The engine must have *enriched* (not user-supplied) str and zip...
  // unless the initial region included them; at minimum they are correct.
  EXPECT_EQ(outcome.fixed.at(A(r_, "zip")).as_string(), "NW1 6XE");
}

TEST_F(CertainFixEngineTest, UnmatchableTupleFallsBackToUser) {
  // t4 matches no master tuple: the engine must still terminate with a
  // complete (user-backed) validation.
  Tuple t4 = T4(r_);
  CertainFixEngine engine = MakeEngine();
  GroundTruthUser user(t4);  // t4 is its own truth
  FixOutcome outcome = engine.Fix(t4, &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.fixed, t4);
  EXPECT_TRUE(outcome.auto_fixed.Empty());
  EXPECT_EQ(outcome.user_asserted, r_->AllAttrs());
}

TEST_F(CertainFixEngineTest, EveryRoundSuggestsDisjointFromValidated) {
  CertainFixEngine engine = MakeEngine();
  GroundTruthUser user(T1Truth(r_));
  FixOutcome outcome = engine.Fix(T3(r_), &user);
  AttrSet seen;
  for (const RoundRecord& round : outcome.rounds) {
    EXPECT_FALSE(round.asserted.Intersects(seen.Minus(round.asserted)));
    seen = seen.Union(round.asserted);
  }
}

TEST_F(CertainFixEngineTest, CacheServesRepeatedTuples) {
  CertainFixEngine engine = MakeEngine(/*use_cache=*/true);
  // A tuple stream where round 2+ suggestions repeat: t2-like tuples.
  Result<Tuple> truth = Tuple::FromStrings(
      r_, {"Mark", "Smith", "020", "6884563", "1", "20 Baker St.", "Lnd",
           "NW1 6XE", "Books"});
  ASSERT_TRUE(truth.ok());
  for (int i = 0; i < 5; ++i) {
    GroundTruthUser user(*truth);
    engine.Fix(T2(r_), &user);
  }
  const SuggestionCache::Stats& stats = engine.cache_stats();
  // After warmup, lookups hit.
  EXPECT_GT(stats.hits + stats.misses, 0u);
  if (stats.misses > 0) {
    EXPECT_GE(stats.hits, stats.misses - 1);
  }
}

TEST_F(CertainFixEngineTest, NoCacheModeAlsoCompletes) {
  CertainFixEngine engine = MakeEngine(/*use_cache=*/false);
  GroundTruthUser user(T1Truth(r_));
  FixOutcome outcome = engine.Fix(T1(r_), &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.fixed, T1Truth(r_));
  EXPECT_EQ(engine.cache_stats().hits + engine.cache_stats().misses, 0u);
}

TEST_F(CertainFixEngineTest, ReluctantUserTakesMoreRounds) {
  CertainFixEngine engine = MakeEngine();
  ReluctantUser user(T1Truth(r_), /*cap=*/1);
  FixOutcome outcome = engine.Fix(T1(r_), &user);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.fixed, T1Truth(r_));
  EXPECT_GT(outcome.num_rounds(), 1u);
}

TEST_F(CertainFixEngineTest, InitialPickSelectsRegion) {
  CertainFixEngine engine = MakeEngine();
  if (engine.regions().size() > 1) {
    engine.set_initial_pick(engine.regions().size() / 2);
    GroundTruthUser user(T1Truth(r_));
    FixOutcome outcome = engine.Fix(T1(r_), &user);
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.fixed, T1Truth(r_));
  }
}

TEST_F(CertainFixEngineTest, RoundRecordsCarrySnapshots) {
  CertainFixEngine engine = MakeEngine();
  GroundTruthUser user(T1Truth(r_));
  FixOutcome outcome = engine.Fix(T1(r_), &user);
  ASSERT_FALSE(outcome.rounds.empty());
  EXPECT_EQ(outcome.rounds.back().after, outcome.fixed);
}

}  // namespace
}  // namespace certfix
