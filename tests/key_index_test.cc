#include "relational/key_index.h"

#include <gtest/gtest.h>

namespace certfix {
namespace {

SchemaPtr S() {
  return Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
}

Relation MakeRel() {
  Relation rel(S());
  EXPECT_TRUE(rel.AppendStrings({"x", "1", "p"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"x", "2", "q"}).ok());
  EXPECT_TRUE(rel.AppendStrings({"y", "1", "r"}).ok());
  return rel;
}

TEST(KeyIndexTest, SingleAttrLookup) {
  Relation rel = MakeRel();
  KeyIndex idx(rel, {0});
  EXPECT_EQ(idx.Lookup({Value::Str("x")}).size(), 2u);
  EXPECT_EQ(idx.Lookup({Value::Str("y")}), (std::vector<size_t>{2}));
  EXPECT_TRUE(idx.Lookup({Value::Str("zz")}).empty());
}

TEST(KeyIndexTest, CompositeKey) {
  Relation rel = MakeRel();
  KeyIndex idx(rel, {0, 1});
  EXPECT_EQ(idx.Lookup({Value::Str("x"), Value::Str("1")}),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(idx.Lookup({Value::Str("y"), Value::Str("2")}).empty());
}

TEST(KeyIndexTest, LookupTupleCrossSchema) {
  Relation rel = MakeRel();
  KeyIndex idx(rel, {0});
  // A probing tuple over a different schema whose attr 2 holds "y".
  SchemaPtr probe_schema =
      Schema::Make("Q", std::vector<std::string>{"u", "v", "w"});
  Tuple probe =
      std::move(Tuple::FromStrings(probe_schema, {"a", "b", "y"})).ValueOrDie();
  EXPECT_EQ(idx.LookupTuple(probe, {2}), (std::vector<size_t>{2}));
}

TEST(KeyIndexTest, NumKeys) {
  Relation rel = MakeRel();
  KeyIndex idx(rel, {0});
  EXPECT_EQ(idx.num_keys(), 2u);
  KeyIndex idx2(rel, {0, 1});
  EXPECT_EQ(idx2.num_keys(), 3u);
}

TEST(KeyIndexTest, NullValuesIndexed) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"", "1", "p"}).ok());
  KeyIndex idx(rel, {0});
  EXPECT_EQ(idx.Lookup({Value()}).size(), 1u);
}

TEST(KeyIndexTest, EmptyRelation) {
  Relation rel(S());
  KeyIndex idx(rel, {0});
  EXPECT_TRUE(idx.Lookup({Value::Str("x")}).empty());
  EXPECT_EQ(idx.num_keys(), 0u);
}

}  // namespace
}  // namespace certfix
