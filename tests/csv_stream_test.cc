#include "relational/csv_stream.h"

#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"

namespace certfix {
namespace {

using Fields = std::vector<std::string>;

Fields ReadOne(CsvRecordReader* reader) {
  Fields fields;
  Result<bool> got = reader->Next(&fields);
  EXPECT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got.ok() && *got);
  return fields;
}

TEST(CsvRecordReaderTest, PlainRecords) {
  std::istringstream in("a,b,c\n1,2,3\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a", "b", "c"}));
  EXPECT_EQ(reader.record_line(), 1u);
  EXPECT_EQ(ReadOne(&reader), (Fields{"1", "2", "3"}));
  EXPECT_EQ(reader.record_line(), 2u);
  Fields fields;
  Result<bool> end = reader.Next(&fields);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(CsvRecordReaderTest, MissingTrailingNewline) {
  std::istringstream in("a,b\n1,2");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a", "b"}));
  EXPECT_EQ(ReadOne(&reader), (Fields{"1", "2"}));
}

TEST(CsvRecordReaderTest, CrlfLineEndings) {
  std::istringstream in("a,b\r\n1,2\r\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a", "b"}));
  EXPECT_EQ(ReadOne(&reader), (Fields{"1", "2"}));
  Fields fields;
  Result<bool> end = reader.Next(&fields);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(CsvRecordReaderTest, QuotedDelimiterAndQuote) {
  std::istringstream in("\"a,b\",\"he said \"\"hi\"\"\",c\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a,b", "he said \"hi\"", "c"}));
}

TEST(CsvRecordReaderTest, QuotedFieldSpansLines) {
  std::istringstream in("\"line one\nline two\",x\nnext,y\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"line one\nline two", "x"}));
  EXPECT_EQ(reader.record_line(), 1u);
  // The follow-up record starts after BOTH physical lines of record 1.
  EXPECT_EQ(ReadOne(&reader), (Fields{"next", "y"}));
  EXPECT_EQ(reader.record_line(), 3u);
}

TEST(CsvRecordReaderTest, CrPreservedInsideQuotes) {
  std::istringstream in("\"a\rb\",\"c\r\nd\"\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a\rb", "c\r\nd"}));
}

TEST(CsvRecordReaderTest, BlankLinesSkipped) {
  std::istringstream in("a,b\n\n\n1,2\n\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{"a", "b"}));
  EXPECT_EQ(ReadOne(&reader), (Fields{"1", "2"}));
  EXPECT_EQ(reader.record_line(), 4u);
  Fields fields;
  Result<bool> end = reader.Next(&fields);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(CsvRecordReaderTest, EmptyQuotedFieldIsARecord) {
  std::istringstream in("\"\"\n");
  CsvRecordReader reader(in);
  EXPECT_EQ(ReadOne(&reader), (Fields{""}));
}

TEST(CsvRecordReaderTest, UnterminatedQuoteFails) {
  std::istringstream in("a,\"bc\n");
  CsvRecordReader reader(in);
  Fields fields;
  Result<bool> got = reader.Next(&fields);
  EXPECT_FALSE(got.ok());
}

TEST(CsvRecordReaderTest, MidFieldQuoteFails) {
  std::istringstream in("ab\"c\n");
  CsvRecordReader reader(in);
  Fields fields;
  EXPECT_FALSE(reader.Next(&fields).ok());
}

TEST(CsvTupleSourceTest, ChecksHeaderThenStreams) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x", "y"});
  std::istringstream in("x,y\r\n1,\"a,b\"\r\n2,c\r\n");
  CsvTupleSource source(schema, in);
  Fields fields;
  Result<bool> got = source.Next(&fields);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(fields, (Fields{"1", "a,b"}));
  got = source.Next(&fields);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(fields, (Fields{"2", "c"}));
  got = source.Next(&fields);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(CsvTupleSourceTest, HeaderMismatchFails) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x", "y"});
  std::istringstream in("x,z\n1,2\n");
  CsvTupleSource source(schema, in);
  Fields fields;
  EXPECT_FALSE(source.Next(&fields).ok());
}

TEST(CsvTupleSourceTest, ArityMismatchReportsLine) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x", "y"});
  std::istringstream in("x,y\n1,2\n1,2,3\n");
  CsvTupleSource source(schema, in);
  Fields fields;
  Result<bool> got = source.Next(&fields);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  got = source.Next(&fields);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("line 3"), std::string::npos)
      << got.status();
}

TEST(CsvTupleSourceTest, EmptyInputFails) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x"});
  std::istringstream in("");
  CsvTupleSource source(schema, in);
  Fields fields;
  EXPECT_FALSE(source.Next(&fields).ok());
}

// --- The batch loaders are built on the record reader: hardened inputs
// must round-trip through ReadCsv/WriteCsv. ---

TEST(CsvHardeningTest, ReadCsvAcceptsEmbeddedNewlines) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x", "y"});
  std::istringstream in("x,y\n\"a\nb\",c\n");
  Result<Relation> rel = ReadCsv(schema, in);
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->at(0).at(0).as_string(), "a\nb");
  EXPECT_EQ(rel->at(0).at(1).as_string(), "c");
}

TEST(CsvHardeningTest, WriteReadRoundTripWithHardValues) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"x", "y"});
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendStrings({"multi\nline", "com,ma"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"quo\"te", "cr\rchar"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(rel, out).ok());
  std::istringstream in(out.str());
  Result<Relation> back = ReadCsv(schema, in);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(back->at(i), rel.at(i)) << "row " << i;
  }
}

TEST(CsvHardeningTest, ReadCsvInferSchemaHandlesCrlf) {
  std::istringstream in("x,y\r\n1,2\r\n");
  Result<Relation> rel = ReadCsvInferSchema("R", in);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->schema()->attr_name(1), "y");
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->at(0).at(1).as_string(), "2");
}

}  // namespace
}  // namespace certfix
