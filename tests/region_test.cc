#include "core/region.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class RegionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    rules_ = SupplierRules(r_, rm_);
  }
  SchemaPtr r_;
  SchemaPtr rm_;
  RuleSet rules_;
};

TEST_F(RegionTest, MarksViaTableau) {
  // (Z_AH, T_AH) of Example 6 (with the non-toll-free reading AC != 0800).
  Region region = Region::Of(r_, Attrs(r_, {"AC", "phn", "type"}).ToVector());
  PatternTuple row(r_);
  row.SetNeg(A(r_, "AC"), Value::Str("0800"));
  row.SetConst(A(r_, "type"), Value::Str("1"));
  ASSERT_TRUE(region.AddRow(row).ok());

  EXPECT_TRUE(region.Marks(T3(r_)));   // type 1, AC 020
  EXPECT_FALSE(region.Marks(T1(r_)));  // type 2
}

TEST_F(RegionTest, AddRowPadsWildcards) {
  Region region = Region::Of(r_, Attrs(r_, {"AC", "phn"}).ToVector());
  PatternTuple row(r_);
  row.SetConst(A(r_, "AC"), Value::Str("131"));
  ASSERT_TRUE(region.AddRow(row).ok());
  // The row now mentions exactly Z.
  EXPECT_TRUE(region.tableau().at(0).Has(A(r_, "phn")));
  EXPECT_TRUE(region.tableau().at(0).Get(A(r_, "phn")).is_wildcard());
}

TEST_F(RegionTest, AddRowRejectsCellsOutsideZ) {
  Region region = Region::Of(r_, Attrs(r_, {"AC"}).ToVector());
  PatternTuple row(r_);
  row.SetConst(A(r_, "city"), Value::Str("Edi"));
  EXPECT_FALSE(region.AddRow(row).ok());
}

TEST_F(RegionTest, ExtendAddsRhsWithWildcard) {
  // Example 7: ext(Z_AH, T_AH, phi3) adds str/city/zip with wildcards; here
  // one step with phi6 (str).
  Region region = Region::Of(r_, Attrs(r_, {"AC", "phn", "type"}).ToVector());
  PatternTuple row(r_);
  row.SetNeg(A(r_, "AC"), Value::Str("0800"));
  row.SetConst(A(r_, "type"), Value::Str("1"));
  ASSERT_TRUE(region.AddRow(row).ok());

  const EditingRule& phi6 = rules_.at(5);
  Region extended = region.Extend(phi6);
  EXPECT_TRUE(extended.z_set().Contains(A(r_, "str")));
  EXPECT_EQ(extended.z().size(), 4u);
  EXPECT_TRUE(extended.tableau().at(0).Get(A(r_, "str")).is_wildcard());
  // Original pattern cells survive.
  EXPECT_TRUE(
      extended.tableau().at(0).Get(A(r_, "AC")).is_neg_const());
}

TEST_F(RegionTest, ExtendIdempotentOnExistingAttr) {
  Region region = Region::Of(r_, Attrs(r_, {"zip", "AC"}).ToVector());
  PatternTuple row(r_);
  ASSERT_TRUE(region.AddRow(row).ok());
  const EditingRule& phi1 = rules_.at(0);  // rhs = AC, already in Z
  Region extended = region.Extend(phi1);
  EXPECT_EQ(extended.z().size(), 2u);
}

TEST_F(RegionTest, ToStringMentionsZAndPatterns) {
  Region region = Region::Of(r_, Attrs(r_, {"zip"}).ToVector());
  PatternTuple row(r_);
  row.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  ASSERT_TRUE(region.AddRow(row).ok());
  std::string s = region.ToString();
  EXPECT_NE(s.find("zip"), std::string::npos);
  EXPECT_NE(s.find("EH7 4AH"), std::string::npos);
}

}  // namespace
}  // namespace certfix
