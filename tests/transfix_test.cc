#include "core/transfix.h"

#include <gtest/gtest.h>

#include <set>

#include "core/saturation.h"

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class TransFixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    graph_ = std::make_unique<DependencyGraph>(rules_);
    transfix_ = std::make_unique<TransFix>(rules_, dm_, *graph_, *index_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<DependencyGraph> graph_;
  std::unique_ptr<TransFix> transfix_;
};

TEST_F(TransFixTest, Example12Trace) {
  // Example 12: Z = {zip}; TransFix fixes AC, str, city on t1 via phi1-3
  // and s1, and extends Z' accordingly.
  Tuple t1 = T1(r_);
  TransFixResult result = transfix_->Run(t1, Attrs(r_, {"zip"}));
  EXPECT_EQ(result.tuple.at(A(r_, "AC")).as_string(), "131");
  EXPECT_EQ(result.tuple.at(A(r_, "str")).as_string(), "51 Elm Row");
  EXPECT_EQ(result.tuple.at(A(r_, "city")).as_string(), "Edi");
  EXPECT_EQ(result.validated, Attrs(r_, {"zip", "AC", "str", "city"}));
  EXPECT_EQ(result.steps.size(), 3u);
}

TEST_F(TransFixTest, EachRuleUsedAtMostOnce) {
  Tuple t1 = T1(r_);
  TransFixResult result =
      transfix_->Run(t1, Attrs(r_, {"zip", "phn", "type", "item"}));
  std::set<size_t> used;
  for (const FixMove& step : result.steps) {
    EXPECT_TRUE(used.insert(step.rule_idx).second)
        << "rule fired twice: " << rules_.at(step.rule_idx).name();
  }
}

TEST_F(TransFixTest, FullValidationOfT1) {
  // From the certain region Z_zmi, TransFix reaches every attribute and
  // produces the Example 9 certain fix.
  Tuple t1 = T1(r_);
  TransFixResult result =
      transfix_->Run(t1, Attrs(r_, {"zip", "phn", "type", "item"}));
  EXPECT_EQ(result.validated, r_->AllAttrs());
  EXPECT_EQ(result.tuple, T1Truth(r_));
}

TEST_F(TransFixTest, ProtectedAttributesUntouched) {
  Tuple t1 = T1(r_);
  t1.Set(A(r_, "AC"), Value::Str("999"));
  TransFixResult result = transfix_->Run(t1, Attrs(r_, {"zip", "AC"}));
  EXPECT_EQ(result.tuple.at(A(r_, "AC")).as_string(), "999");
}

TEST_F(TransFixTest, NoRulesApplyLeavesTupleAlone) {
  Tuple t4 = T4(r_);
  TransFixResult result = transfix_->Run(t4, Attrs(r_, {"zip", "AC"}));
  EXPECT_EQ(result.tuple, t4);
  EXPECT_EQ(result.validated, Attrs(r_, {"zip", "AC"}));
  EXPECT_TRUE(result.steps.empty());
}

TEST_F(TransFixTest, UsetPromotion) {
  // t2 with Z = {type, AC, phn}: phi6-8 fire first; phi1-3 enter via the
  // dependency edges from phi8 (rhs zip) once zip is validated. Their
  // targets are already validated, so no extra steps, but the chain is
  // exercised end to end.
  Tuple t2 = T2(r_);
  TransFixResult result =
      transfix_->Run(t2, Attrs(r_, {"type", "AC", "phn"}));
  EXPECT_TRUE(result.validated.Contains(A(r_, "zip")));
  EXPECT_TRUE(result.validated.Contains(A(r_, "str")));
  EXPECT_TRUE(result.validated.Contains(A(r_, "city")));
  EXPECT_EQ(result.tuple.at(A(r_, "zip")).as_string(), "NW1 6XE");
}

TEST_F(TransFixTest, DisagreeingMastersSkippedDefensively) {
  Relation dm2 = dm_;
  Tuple clone = dm_.at(0);
  clone.Set(A(rm_, "city"), Value::Str("Gla"));
  ASSERT_TRUE(dm2.Append(clone).ok());
  MasterIndex index2(rules_, dm2);
  TransFix tf2(rules_, dm2, *graph_, index2);
  Tuple t1 = T1(r_);
  TransFixResult result = tf2.Run(t1, Attrs(r_, {"zip"}));
  // city candidates disagree (Edi vs Gla) -> skipped; AC/str still agree.
  EXPECT_TRUE(result.skipped_conflicts.Contains(A(r_, "city")));
  EXPECT_FALSE(result.validated.Contains(A(r_, "city")));
  EXPECT_TRUE(result.validated.Contains(A(r_, "AC")));
}

TEST_F(TransFixTest, AgreesWithSaturatorOnCoveredSet) {
  Saturator sat(rules_, dm_, *index_);
  for (const Tuple& t : {T1(r_), T2(r_), T3(r_), T4(r_)}) {
    for (const auto& names :
         {std::vector<std::string>{"zip"},
          std::vector<std::string>{"type", "AC", "phn"},
          std::vector<std::string>{"zip", "phn", "type", "item"}}) {
      AttrSet z = Attrs(r_, names);
      SaturationResult s = sat.Saturate(t, z);
      TransFixResult tf = transfix_->Run(t, z);
      if (s.unique) {
        EXPECT_EQ(tf.validated, s.covered);
        EXPECT_EQ(tf.tuple, s.fixed);
      }
    }
  }
}

}  // namespace
}  // namespace certfix
