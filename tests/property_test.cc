/// \file property_test.cc
/// \brief Parameterized property tests over randomly generated
/// (R, Rm, Sigma, Dm) instances: the saturation-based unique-fix decision
/// must agree with a brute-force exploration of ALL maximal application
/// orders, and the named engines (TransFix, normalization) must agree with
/// the saturator.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/saturation.h"
#include "core/transfix.h"
#include "util/random.h"

namespace certfix {
namespace {

struct RandomInstance {
  SchemaPtr r;
  SchemaPtr rm;
  Relation dm;
  RuleSet rules;
  Tuple input;
  AttrSet z0;
};

// Small alphabet keeps collision (and thus rule firing) probability high.
Value V(int64_t x) { return Value::Int(x); }

RandomInstance MakeRandomInstance(uint64_t seed) {
  Rng rng(seed);
  size_t r_arity = 4 + rng.Index(3);   // 4..6
  size_t rm_arity = 3 + rng.Index(3);  // 3..5

  std::vector<Attribute> r_attrs;
  for (size_t i = 0; i < r_arity; ++i) {
    r_attrs.push_back({"a" + std::to_string(i), DataType::kInt});
  }
  std::vector<Attribute> rm_attrs;
  for (size_t i = 0; i < rm_arity; ++i) {
    rm_attrs.push_back({"m" + std::to_string(i), DataType::kInt});
  }
  RandomInstance inst;
  inst.r = Schema::Make("R", r_attrs);
  inst.rm = Schema::Make("Rm", rm_attrs);

  inst.dm = Relation(inst.rm);
  size_t dm_rows = 2 + rng.Index(5);
  for (size_t i = 0; i < dm_rows; ++i) {
    Tuple tm(inst.rm);
    for (AttrId a = 0; a < rm_arity; ++a) tm.Set(a, V(rng.Uniform(0, 3)));
    Status st = inst.dm.Append(std::move(tm));
    EXPECT_TRUE(st.ok());
  }

  inst.rules = RuleSet(inst.r, inst.rm);
  size_t num_rules = 3 + rng.Index(5);
  for (size_t i = 0; i < num_rules; ++i) {
    size_t x_len = 1 + rng.Index(2);
    std::vector<AttrId> x;
    while (x.size() < x_len) {
      AttrId cand = static_cast<AttrId>(rng.Index(r_arity));
      bool dup = false;
      for (AttrId e : x) dup |= (e == cand);
      if (!dup) x.push_back(cand);
    }
    AttrId b = static_cast<AttrId>(rng.Index(r_arity));
    bool b_in_x = false;
    for (AttrId e : x) b_in_x |= (e == b);
    if (b_in_x) continue;
    std::vector<AttrId> xm;
    for (size_t k = 0; k < x_len; ++k) {
      xm.push_back(static_cast<AttrId>(rng.Index(rm_arity)));
    }
    AttrId bm = static_cast<AttrId>(rng.Index(rm_arity));
    PatternTuple tp(inst.r);
    if (rng.Bernoulli(0.4)) {
      AttrId pa = static_cast<AttrId>(rng.Index(r_arity));
      if (pa != b) {
        if (rng.Bernoulli(0.3)) {
          tp.SetNeg(pa, V(rng.Uniform(0, 3)));
        } else {
          tp.SetConst(pa, V(rng.Uniform(0, 3)));
        }
      }
    }
    Result<EditingRule> rule =
        EditingRule::Make("r" + std::to_string(i), inst.r, inst.rm, x, xm,
                          b, bm, std::move(tp));
    if (rule.ok()) {
      Status st = inst.rules.Add(std::move(rule).ValueOrDie());
      EXPECT_TRUE(st.ok());
    }
  }

  inst.input = Tuple(inst.r);
  for (AttrId a = 0; a < r_arity; ++a) inst.input.Set(a, V(rng.Uniform(0, 3)));
  for (AttrId a = 0; a < r_arity; ++a) {
    if (rng.Bernoulli(0.5)) inst.z0.Add(a);
  }
  return inst;
}

// Brute force: explore every maximal application order; collect all
// fixpoint tuples. Memoizes on (Z, values of Z).
struct BruteForce {
  const RuleSet& rules;
  const Relation& dm;
  const MasterIndex& index;
  std::set<std::string> visited;
  std::set<std::string> fixpoints;
  std::vector<Tuple> fixpoint_tuples;
  size_t budget = 20000;

  std::string StateKey(const FixState& state) {
    std::string key = std::to_string(state.validated().bits()) + "|";
    for (AttrId a : state.validated().ToVector()) {
      key += state.tuple().at(a).ToString() + ";";
    }
    return key;
  }

  void Explore(FixState state) {
    if (budget == 0) return;
    --budget;
    std::string key = StateKey(state);
    if (!visited.insert(key).second) return;
    std::vector<FixMove> moves = state.EnabledMoves(rules, index);
    if (moves.empty()) {
      // Fixpoint: record the tuple restricted to validated attributes
      // (unvalidated values never changed, so the full tuple works too).
      if (fixpoints.insert(state.tuple().ToString()).second) {
        fixpoint_tuples.push_back(state.tuple());
      }
      return;
    }
    for (const FixMove& m : moves) {
      FixState next = state;
      next.Apply(rules, m);
      Explore(std::move(next));
    }
  }
};

class UniqueFixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniqueFixPropertyTest, SaturatorAgreesWithBruteForce) {
  RandomInstance inst = MakeRandomInstance(GetParam() * 9176 + 3);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  SaturationResult result = sat.CheckUniqueFix(inst.input, inst.z0);

  BruteForce brute{inst.rules, inst.dm, index, {}, {}, {}, 20000};
  brute.Explore(FixState(inst.input, inst.z0));
  if (brute.budget == 0) GTEST_SKIP() << "state space too large";

  bool brute_unique = brute.fixpoints.size() <= 1;
  EXPECT_EQ(result.unique, brute_unique)
      << "saturator=" << result.unique << " brute fixpoints="
      << brute.fixpoints.size() << " seed=" << GetParam();
  if (result.unique && brute_unique && !brute.fixpoint_tuples.empty()) {
    EXPECT_EQ(result.fixed, brute.fixpoint_tuples.front());
  }
}

TEST_P(UniqueFixPropertyTest, SaturationIsIdempotent) {
  RandomInstance inst = MakeRandomInstance(GetParam() * 31337 + 11);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  SaturationResult first = sat.Saturate(inst.input, inst.z0);
  SaturationResult second = sat.Saturate(first.fixed, first.covered);
  EXPECT_TRUE(second.steps.empty());
  EXPECT_EQ(second.fixed, first.fixed);
  EXPECT_EQ(second.covered, first.covered);
}

TEST_P(UniqueFixPropertyTest, NormalizationPreservesSemantics) {
  RandomInstance inst = MakeRandomInstance(GetParam() * 77777 + 29);
  RuleSet normalized = inst.rules.Normalized();
  MasterIndex i1(inst.rules, inst.dm);
  MasterIndex i2(normalized, inst.dm);
  Saturator s1(inst.rules, inst.dm, i1);
  Saturator s2(normalized, inst.dm, i2);
  SaturationResult r1 = s1.CheckUniqueFix(inst.input, inst.z0);
  SaturationResult r2 = s2.CheckUniqueFix(inst.input, inst.z0);
  EXPECT_EQ(r1.unique, r2.unique);
  EXPECT_EQ(r1.covered, r2.covered);
  if (r1.unique) EXPECT_EQ(r1.fixed, r2.fixed);
}

TEST_P(UniqueFixPropertyTest, TransFixMatchesSaturatorWhenUnique) {
  RandomInstance inst = MakeRandomInstance(GetParam() * 1234577 + 41);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  SaturationResult expected = sat.CheckUniqueFix(inst.input, inst.z0);
  if (!expected.unique) return;
  DependencyGraph graph(inst.rules);
  TransFix transfix(inst.rules, inst.dm, graph, index);
  TransFixResult tf = transfix.Run(inst.input, inst.z0);
  EXPECT_EQ(tf.tuple, expected.fixed);
  EXPECT_EQ(tf.validated, expected.covered);
}

TEST_P(UniqueFixPropertyTest, CoveredSetMonotoneInZ) {
  RandomInstance inst = MakeRandomInstance(GetParam() * 424243 + 55);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  SaturationResult small = sat.Saturate(inst.input, inst.z0);
  // Adding one more validated attribute never shrinks the covered set...
  // as long as the added attribute was not previously *fixed* to a
  // different value (we validate with the input's original value, which
  // may disable downstream rules). Use an attribute from the fixed result
  // to keep values consistent.
  AttrSet all = inst.r->AllAttrs();
  for (AttrId extra : all.Minus(inst.z0).ToVector()) {
    AttrSet z2 = inst.z0;
    z2.Add(extra);
    Tuple t2 = inst.input;
    t2.Set(extra, small.fixed.at(extra));
    SaturationResult bigger = sat.Saturate(t2, z2);
    EXPECT_TRUE(small.covered.SubsetOf(bigger.covered.Union(z2)))
        << "covered set shrank when validating attribute " << extra;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, UniqueFixPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace certfix
