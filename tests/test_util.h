/// \file test_util.h
/// \brief Shared fixtures: the paper's running supplier example (Fig. 1,
/// Examples 1-15) and small helpers used across the test suite.

#ifndef CERTFIX_TESTS_TEST_UTIL_H_
#define CERTFIX_TESTS_TEST_UTIL_H_

#include <cassert>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "rules/rule_parser.h"
#include "rules/rule_set.h"

namespace certfix {
namespace testing_fixtures {

/// The supplier schema R of Fig. 1a.
inline SchemaPtr SupplierSchema() {
  return Schema::Make("Supplier",
                      std::vector<std::string>{"fn", "ln", "AC", "phn",
                                               "type", "str", "city", "zip",
                                               "item"});
}

/// The master schema Rm of Fig. 1b.
inline SchemaPtr SupplierMasterSchema() {
  return Schema::Make("Master",
                      std::vector<std::string>{"FN", "LN", "AC", "Hphn",
                                               "Mphn", "str", "city", "zip",
                                               "DOB", "gender"});
}

/// The master relation Dm of Fig. 1b (s1, s2).
inline Relation SupplierMaster(const SchemaPtr& rm) {
  Relation dm(rm);
  Status st = dm.AppendStrings({"Robert", "Brady", "131", "6884563",
                                "079172485", "51 Elm Row", "Edi",
                                "EH7 4AH", "11/11/55", "M"});
  assert(st.ok());
  st = dm.AppendStrings({"Mark", "Smith", "020", "6884563", "075568485",
                         "20 Baker St.", "Lnd", "NW1 6XE", "25/12/67",
                         "M"});
  assert(st.ok());
  (void)st;
  return dm;
}

/// Sigma0 = {phi1..phi9} of Example 11.
inline RuleSet SupplierRules(const SchemaPtr& r, const SchemaPtr& rm) {
  const char* text = R"(
    rule phi1: (zip | zip) -> (AC | AC)
    rule phi2: (zip | zip) -> (str | str)
    rule phi3: (zip | zip) -> (city | city)
    rule phi4: (phn | Mphn) -> (fn | FN) when type=2
    rule phi5: (phn | Mphn) -> (ln | LN) when type=2
    rule phi6: (AC, phn | AC, Hphn) -> (str | str) when type=1, AC!=0800
    rule phi7: (AC, phn | AC, Hphn) -> (city | city) when type=1, AC!=0800
    rule phi8: (AC, phn | AC, Hphn) -> (zip | zip) when type=1, AC!=0800
    rule phi9: (AC | AC) -> (city | city) when AC=0800
  )";
  Result<RuleSet> rules = ParseRules(text, r, rm);
  assert(rules.ok());
  return std::move(rules).ValueOrDie();
}

/// Input tuples t1..t4 of Fig. 1a. t2's missing str/zip are nulls.
inline Tuple T1(const SchemaPtr& r) {
  Result<Tuple> t = Tuple::FromStrings(
      r, {"Bob", "Brady", "020", "079172485", "2", "501 Elm St.", "Edi",
          "EH7 4AH", "CDs"});
  assert(t.ok());
  return std::move(t).ValueOrDie();
}
inline Tuple T1Truth(const SchemaPtr& r) {
  Result<Tuple> t = Tuple::FromStrings(
      r, {"Robert", "Brady", "131", "079172485", "2", "51 Elm Row", "Edi",
          "EH7 4AH", "CDs"});
  assert(t.ok());
  return std::move(t).ValueOrDie();
}
inline Tuple T2(const SchemaPtr& r) {
  Result<Tuple> t = Tuple::FromStrings(
      r, {"Mark", "Smith", "020", "6884563", "1", "", "Edi", "", "Books"});
  assert(t.ok());
  return std::move(t).ValueOrDie();
}
/// t3: AC and zip inconsistent (AC 020 belongs to s2, zip EH7 4AH to s1).
inline Tuple T3(const SchemaPtr& r) {
  Result<Tuple> t = Tuple::FromStrings(
      r, {"Mark", "Smith", "020", "6884563", "1", "20 Baker St.", "Lnd",
          "EH7 4AH", "DVDs"});
  assert(t.ok());
  return std::move(t).ValueOrDie();
}
/// t4: no rule/master combination applies.
inline Tuple T4(const SchemaPtr& r) {
  Result<Tuple> t = Tuple::FromStrings(
      r, {"Eva", "Jones", "0131", "9999999", "1", "5 Oak Ln", "Gla",
          "G1 1AA", "Pens"});
  assert(t.ok());
  return std::move(t).ValueOrDie();
}

/// AttrSet from attribute names.
inline AttrSet Attrs(const SchemaPtr& schema,
                     const std::vector<std::string>& names) {
  AttrSet s;
  for (const auto& n : names) {
    Result<AttrId> id = schema->IndexOf(n);
    assert(id.ok());
    s.Add(*id);
  }
  return s;
}

/// Attr id by name (asserting existence).
inline AttrId A(const SchemaPtr& schema, const std::string& name) {
  Result<AttrId> id = schema->IndexOf(name);
  assert(id.ok());
  return *id;
}

}  // namespace testing_fixtures
}  // namespace certfix

#endif  // CERTFIX_TESTS_TEST_UTIL_H_
