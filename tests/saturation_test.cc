#include "core/saturation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class SaturationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(SaturationTest, T1FromZipFixesGeoAttributes) {
  // Example 12: validating zip alone lets phi1/phi2/phi3 fix AC, str, city.
  Tuple t1 = T1(r_);
  SaturationResult result = sat_->Saturate(t1, Attrs(r_, {"zip"}));
  EXPECT_TRUE(result.unique);
  EXPECT_EQ(result.fixed.at(A(r_, "AC")).as_string(), "131");
  EXPECT_EQ(result.fixed.at(A(r_, "str")).as_string(), "51 Elm Row");
  EXPECT_EQ(result.fixed.at(A(r_, "city")).as_string(), "Edi");
  EXPECT_EQ(result.covered, Attrs(r_, {"zip", "AC", "str", "city"}));
}

TEST_F(SaturationTest, T1FromZipPhnTypeIsUniqueNotCertain) {
  // Example 8: (Zzm = {zip, phn, type}) gives a unique fix for t1 but the
  // covered set misses item (master data has no item information).
  Tuple t1 = T1(r_);
  SaturationResult result =
      sat_->CheckUniqueFix(t1, Attrs(r_, {"zip", "phn", "type"}));
  EXPECT_TRUE(result.unique);
  EXPECT_EQ(result.fixed.at(A(r_, "fn")).as_string(), "Robert");
  EXPECT_FALSE(result.covered.Contains(A(r_, "item")));
  EXPECT_FALSE(result.CertainOver(r_));
}

TEST_F(SaturationTest, T1FullRegionIsCertain) {
  // Example 9: adding item gives the certain region Zzmi.
  Tuple t1 = T1(r_);
  SaturationResult result =
      sat_->CheckUniqueFix(t1, Attrs(r_, {"zip", "phn", "type", "item"}));
  EXPECT_TRUE(result.unique);
  EXPECT_TRUE(result.CertainOver(r_));
  EXPECT_EQ(result.fixed, T1Truth(r_));
}

TEST_F(SaturationTest, T3ConflictDetected) {
  // Example 5/10: t3's AC (belonging to s2's home phone) and zip (s1)
  // suggest different cities -> no unique fix when both are validated.
  Tuple t3 = T3(r_);
  SaturationResult result = sat_->CheckUniqueFix(
      t3, Attrs(r_, {"AC", "phn", "type", "zip"}));
  EXPECT_FALSE(result.unique);
  ASSERT_FALSE(result.conflicts.empty());
  bool city_conflict = false;
  for (const FixConflict& c : result.conflicts) {
    if (c.attr == A(r_, "city")) city_conflict = true;
  }
  EXPECT_TRUE(city_conflict);
}

TEST_F(SaturationTest, T3WithoutZipIsUnique) {
  // Example 6: validating only (AC, phn, type) gives the unique fix via
  // (phi6-8, s2).
  Tuple t3 = T3(r_);
  SaturationResult result =
      sat_->CheckUniqueFix(t3, Attrs(r_, {"AC", "phn", "type"}));
  EXPECT_TRUE(result.unique);
  EXPECT_EQ(result.fixed.at(A(r_, "city")).as_string(), "Lnd");
  EXPECT_EQ(result.fixed.at(A(r_, "zip")).as_string(), "NW1 6XE");
}

TEST_F(SaturationTest, T4NothingApplies) {
  // Example 5: no rules/master tuples apply to t4 at all.
  Tuple t4 = T4(r_);
  SaturationResult result = sat_->Saturate(t4, Attrs(r_, {"zip", "AC"}));
  EXPECT_TRUE(result.unique);
  EXPECT_TRUE(result.steps.empty());
  EXPECT_EQ(result.covered, Attrs(r_, {"zip", "AC"}));
}

TEST_F(SaturationTest, ValidatedAttrsAreProtected) {
  // t1[AC] = 020 validated: phi1 must NOT overwrite it (B in Z), and the
  // cross-round analysis must not flag it either (the only proposer needs
  // AC unset... which the exclusion run provides, detecting the 131-vs-020
  // difference as a potential conflict only if 020 could also be derived).
  Tuple t1 = T1(r_);
  SaturationResult result =
      sat_->Saturate(t1, Attrs(r_, {"zip", "AC"}));
  EXPECT_EQ(result.fixed.at(A(r_, "AC")).as_string(), "020");
}

TEST_F(SaturationTest, ChainedFiring) {
  // t2 (Example 2): validating (type, AC, phn) lets phi6-8 fire. In this
  // fixture t2[AC, phn] = (020, 6884563) matches s2's (AC, Hphn), so the
  // repair enriches t2[str, zip] and corrects the inconsistent t2[city]
  // (AC 020 implies Lnd, not Edi) with s2's values. The newly validated
  // zip then enables phi1-3, whose targets are already protected.
  Tuple t2 = T2(r_);
  SaturationResult result =
      sat_->CheckUniqueFix(t2, Attrs(r_, {"type", "AC", "phn"}));
  EXPECT_TRUE(result.unique);
  EXPECT_EQ(result.fixed.at(A(r_, "str")).as_string(), "20 Baker St.");
  EXPECT_EQ(result.fixed.at(A(r_, "city")).as_string(), "Lnd");
  EXPECT_EQ(result.fixed.at(A(r_, "zip")).as_string(), "NW1 6XE");
}

TEST_F(SaturationTest, ExcludedSaturationCollectsProposals) {
  Tuple t1 = T1(r_);
  std::vector<Value> proposals;
  sat_->SaturateExcluding(t1, Attrs(r_, {"zip"}), A(r_, "city"),
                          &proposals);
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0].as_string(), "Edi");
}

TEST_F(SaturationTest, MasterDisagreementIsConflict) {
  // Two master tuples with the same key but different fix values must be
  // reported as non-unique.
  Relation dm2 = dm_;
  Tuple extra = dm_.at(0);
  extra.Set(A(rm_, "city"), Value::Str("Gla"));
  ASSERT_TRUE(dm2.Append(extra).ok());
  MasterIndex index2(rules_, dm2);
  Saturator sat2(rules_, dm2, index2);
  SaturationResult result = sat2.CheckUniqueFix(T1(r_), Attrs(r_, {"zip"}));
  EXPECT_FALSE(result.unique);
}

}  // namespace
}  // namespace certfix
