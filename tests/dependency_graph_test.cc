#include "core/dependency_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class DependencyGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    rules_ = SupplierRules(r_, rm_);
  }
  SchemaPtr r_;
  SchemaPtr rm_;
  RuleSet rules_;
};

// Indices in Sigma0: phi1..phi9 are 0..8.
TEST_F(DependencyGraphTest, Fig4Edges) {
  DependencyGraph graph(rules_);
  // Fig. 4: phi1 (rhs AC) feeds phi6, phi7, phi8 (AC in lhs) and phi9
  // (AC in lhs and pattern).
  EXPECT_TRUE(graph.HasEdge(0, 5));
  EXPECT_TRUE(graph.HasEdge(0, 6));
  EXPECT_TRUE(graph.HasEdge(0, 7));
  EXPECT_TRUE(graph.HasEdge(0, 8));
  // phi8 (rhs zip) feeds phi1, phi2, phi3.
  EXPECT_TRUE(graph.HasEdge(7, 0));
  EXPECT_TRUE(graph.HasEdge(7, 1));
  EXPECT_TRUE(graph.HasEdge(7, 2));
}

TEST_F(DependencyGraphTest, NoSpuriousEdges) {
  DependencyGraph graph(rules_);
  // phi2 (rhs str): str appears in no lhs or pattern.
  EXPECT_TRUE(graph.Successors(1).empty());
  // phi4 (rhs fn): likewise.
  EXPECT_TRUE(graph.Successors(3).empty());
  // No self loops by construction.
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    EXPECT_FALSE(graph.HasEdge(u, u));
  }
}

// Region-invalidation API (incremental engine).
TEST_F(DependencyGraphTest, RulesReadingMasterAttrs) {
  DependencyGraph graph(rules_);
  // Master-side zip is read by phi1..phi3 (Xm) and phi8 (Bm).
  AttrSet zip;
  zip.Add(A(rm_, "zip"));
  EXPECT_EQ(graph.RulesReadingMasterAttrs(zip),
            (std::vector<size_t>{0, 1, 2, 7}));
  // DOB and gender feed no rule: a master delta there invalidates nothing.
  AttrSet irrelevant;
  irrelevant.Add(A(rm_, "DOB"));
  irrelevant.Add(A(rm_, "gender"));
  EXPECT_TRUE(graph.RulesReadingMasterAttrs(irrelevant).empty());
}

TEST_F(DependencyGraphTest, ReachableFromFollowsEdges) {
  DependencyGraph graph(rules_);
  // phi2 (rhs str) has no successors: closure is itself.
  EXPECT_EQ(graph.ReachableFrom({1}), (std::vector<size_t>{1}));
  // phi8 (rhs zip) enables phi1..phi3, and phi1 (rhs AC) re-enables
  // phi6..phi9; the closure runs through the AC/zip cycle.
  std::vector<size_t> closure = graph.ReachableFrom({7});
  for (size_t expect : {0u, 1u, 2u, 5u, 6u, 7u, 8u}) {
    EXPECT_NE(std::find(closure.begin(), closure.end(), expect),
              closure.end())
        << "rule " << expect;
  }
  // phi4/phi5 (type=2 phone rules) are not fed by zip/AC.
  EXPECT_EQ(std::find(closure.begin(), closure.end(), 3u), closure.end());
  EXPECT_TRUE(graph.ReachableFrom({}).empty());
}

TEST_F(DependencyGraphTest, InvalidatedRegionBoundsMasterDeltas) {
  DependencyGraph graph(rules_);
  // A master delta on Mphn can rewrite fn and ln (phi4, phi5) and nothing
  // else — those rules have no successors.
  AttrSet mphn;
  mphn.Add(A(rm_, "Mphn"));
  AttrSet region = graph.InvalidatedRegion(mphn);
  EXPECT_EQ(region, Attrs(r_, {"fn", "ln"}));
  // A delta on master zip reaches everything in the AC/zip cycle.
  AttrSet zip;
  zip.Add(A(rm_, "zip"));
  EXPECT_EQ(graph.InvalidatedRegion(zip),
            Attrs(r_, {"AC", "str", "city", "zip"}));
  EXPECT_TRUE(graph.InvalidatedRegion(AttrSet{}).Empty());
}

TEST_F(DependencyGraphTest, PredecessorsMirrorSuccessors) {
  DependencyGraph graph(rules_);
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    for (size_t v : graph.Successors(u)) {
      const auto& preds = graph.Predecessors(v);
      EXPECT_NE(std::find(preds.begin(), preds.end(), u), preds.end());
    }
  }
}

TEST_F(DependencyGraphTest, CycleDetection) {
  DependencyGraph graph(rules_);
  // phi1 -> phi8 -> phi1 is a cycle (AC -> zip -> AC).
  EXPECT_TRUE(graph.HasCycle());

  // An acyclic chain: a -> b -> c via two rules.
  SchemaPtr r = Schema::Make("L", std::vector<std::string>{"a", "b", "c"});
  SchemaPtr rm = Schema::Make("Lm", std::vector<std::string>{"a", "b", "c"});
  RuleSet chain(r, rm);
  Result<EditingRule> r1 = EditingRule::MakeByName(
      "r1", r, rm, {"a"}, {"a"}, "b", "b", PatternTuple(r));
  Result<EditingRule> r2 = EditingRule::MakeByName(
      "r2", r, rm, {"b"}, {"b"}, "c", "c", PatternTuple(r));
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(chain.Add(std::move(r1).ValueOrDie()).ok());
  ASSERT_TRUE(chain.Add(std::move(r2).ValueOrDie()).ok());
  DependencyGraph acyclic(chain);
  EXPECT_TRUE(acyclic.HasEdge(0, 1));
  EXPECT_FALSE(acyclic.HasCycle());
}

TEST_F(DependencyGraphTest, DotOutputContainsRuleNames) {
  DependencyGraph graph(rules_);
  std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("phi1"), std::string::npos);
  EXPECT_NE(dot.find("phi9"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace certfix
