#include "pattern/pattern_tuple.h"

#include <gtest/gtest.h>

#include "pattern/tableau.h"

namespace certfix {
namespace {

SchemaPtr S() {
  return Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
}

Tuple T(const std::vector<std::string>& fields) {
  return std::move(Tuple::FromStrings(S(), fields)).ValueOrDie();
}

TEST(PatternValueTest, WildcardMatchesEverything) {
  PatternValue pv = PatternValue::Wildcard();
  EXPECT_TRUE(pv.Matches(Value::Str("x")));
  EXPECT_TRUE(pv.Matches(Value()));
  EXPECT_TRUE(pv.is_wildcard());
}

TEST(PatternValueTest, ConstMatchesEqual) {
  PatternValue pv = PatternValue::Const(Value::Str("a"));
  EXPECT_TRUE(pv.Matches(Value::Str("a")));
  EXPECT_FALSE(pv.Matches(Value::Str("b")));
  EXPECT_FALSE(pv.Matches(Value()));
}

TEST(PatternValueTest, NegConstMatchesDifferent) {
  // The paper's a-bar: x != a. Used e.g. for AC != 0800 in phi6-phi8.
  PatternValue pv = PatternValue::NegConst(Value::Str("0800"));
  EXPECT_FALSE(pv.Matches(Value::Str("0800")));
  EXPECT_TRUE(pv.Matches(Value::Str("131")));
  EXPECT_TRUE(pv.Matches(Value()));  // null != "0800"
}

TEST(PatternValueTest, NegNullMeansNotNull) {
  PatternValue pv = PatternValue::NegConst(Value());
  EXPECT_FALSE(pv.Matches(Value()));
  EXPECT_TRUE(pv.Matches(Value::Str("x")));
}

TEST(PatternValueTest, ToString) {
  EXPECT_EQ(PatternValue::Wildcard().ToString(), "_");
  EXPECT_EQ(PatternValue::Const(Value::Str("a")).ToString(), "a");
  EXPECT_EQ(PatternValue::NegConst(Value::Str("a")).ToString(), "!a");
}

TEST(PatternTupleTest, EmptyMatchesAll) {
  PatternTuple tp(S());
  EXPECT_TRUE(tp.Matches(T({"x", "y", "z"})));
  EXPECT_TRUE(tp.empty());
}

TEST(PatternTupleTest, ConstCell) {
  PatternTuple tp(S());
  tp.SetConst(0, Value::Str("x"));
  EXPECT_TRUE(tp.Matches(T({"x", "y", "z"})));
  EXPECT_FALSE(tp.Matches(T({"q", "y", "z"})));
}

TEST(PatternTupleTest, MixedCells) {
  PatternTuple tp(S());
  tp.SetConst(0, Value::Str("x"));
  tp.SetNeg(1, Value::Str("bad"));
  tp.SetWildcard(2);
  EXPECT_TRUE(tp.Matches(T({"x", "ok", "anything"})));
  EXPECT_FALSE(tp.Matches(T({"x", "bad", "anything"})));
}

TEST(PatternTupleTest, MatchesOnSubset) {
  PatternTuple tp(S());
  tp.SetConst(0, Value::Str("x"));
  tp.SetConst(1, Value::Str("y"));
  Tuple t = T({"x", "WRONG", "z"});
  AttrSet only_a{0};
  EXPECT_TRUE(tp.MatchesOn(t, only_a));  // cell on b ignored
  EXPECT_FALSE(tp.Matches(t));
}

TEST(PatternTupleTest, GetOutsideXpIsWildcard) {
  PatternTuple tp(S());
  tp.SetConst(0, Value::Str("x"));
  EXPECT_TRUE(tp.Get(2).is_wildcard());
  EXPECT_FALSE(tp.Has(2));
  EXPECT_TRUE(tp.Has(0));
}

TEST(PatternTupleTest, NormalizedDropsWildcards) {
  // Sect. 2, Notations (3): normalization removes wildcard cells without
  // changing the matching semantics.
  PatternTuple tp(S());
  tp.SetConst(0, Value::Str("x"));
  tp.SetWildcard(1);
  PatternTuple norm = tp.Normalized();
  EXPECT_EQ(norm.size(), 1u);
  EXPECT_FALSE(norm.Has(1));
  for (const auto& fields : {std::vector<std::string>{"x", "y", "z"},
                             std::vector<std::string>{"q", "y", "z"}}) {
    EXPECT_EQ(tp.Matches(T(fields)), norm.Matches(T(fields)));
  }
}

TEST(PatternTupleTest, PositiveConcreteClassification) {
  PatternTuple constant(S());
  constant.SetConst(0, Value::Str("x"));
  EXPECT_TRUE(constant.IsPositive());
  EXPECT_TRUE(constant.IsConcrete());

  PatternTuple with_wild = constant;
  with_wild.SetWildcard(1);
  EXPECT_TRUE(with_wild.IsPositive());
  EXPECT_FALSE(with_wild.IsConcrete());

  PatternTuple with_neg = constant;
  with_neg.SetNeg(1, Value::Str("q"));
  EXPECT_FALSE(with_neg.IsPositive());
  EXPECT_FALSE(with_neg.IsConcrete());
}

TEST(PatternTupleTest, MergeCompatible) {
  PatternTuple a(S());
  a.SetConst(0, Value::Str("x"));
  PatternTuple b(S());
  b.SetConst(1, Value::Str("y"));
  EXPECT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.Get(1).value().as_string(), "y");
}

TEST(PatternTupleTest, MergeConflictingConstants) {
  PatternTuple a(S());
  a.SetConst(0, Value::Str("x"));
  PatternTuple b(S());
  b.SetConst(0, Value::Str("q"));
  EXPECT_FALSE(a.MergeFrom(b));
}

TEST(PatternTupleTest, MergeConstOverNeg) {
  // const "131" refines neg "0800" (as in region rows built from phi6-8).
  PatternTuple a(S());
  a.SetNeg(0, Value::Str("0800"));
  PatternTuple b(S());
  b.SetConst(0, Value::Str("131"));
  EXPECT_TRUE(a.MergeFrom(b));
  EXPECT_TRUE(a.Get(0).is_const());
  EXPECT_EQ(a.Get(0).value().as_string(), "131");
}

TEST(PatternTupleTest, MergeConstAgainstItsNegationFails) {
  PatternTuple a(S());
  a.SetConst(0, Value::Str("0800"));
  PatternTuple b(S());
  b.SetNeg(0, Value::Str("0800"));
  EXPECT_FALSE(a.MergeFrom(b));
}

TEST(PatternTupleTest, MergeSameCellIdempotent) {
  PatternTuple a(S());
  a.SetConst(0, Value::Str("x"));
  PatternTuple b = a;
  EXPECT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.size(), 1u);
}

TEST(TableauTest, MarksAnyRow) {
  Tableau tc(S());
  PatternTuple r1(S());
  r1.SetConst(0, Value::Str("x"));
  PatternTuple r2(S());
  r2.SetConst(0, Value::Str("y"));
  tc.Add(r1);
  tc.Add(r2);
  EXPECT_TRUE(tc.Marks(T({"x", "_", "_"})));
  EXPECT_TRUE(tc.Marks(T({"y", "_", "_"})));
  EXPECT_FALSE(tc.Marks(T({"z", "_", "_"})));
  EXPECT_EQ(tc.FirstMatch(T({"y", "_", "_"})), 1);
  EXPECT_EQ(tc.FirstMatch(T({"z", "_", "_"})), -1);
}

TEST(TableauTest, EmptyMarksNothing) {
  Tableau tc(S());
  EXPECT_FALSE(tc.Marks(T({"x", "y", "z"})));
}

TEST(TableauTest, Classification) {
  Tableau tc(S());
  PatternTuple r(S());
  r.SetConst(0, Value::Str("x"));
  tc.Add(r);
  EXPECT_TRUE(tc.IsPositive());
  EXPECT_TRUE(tc.IsConcrete());
  PatternTuple neg(S());
  neg.SetNeg(1, Value::Str("q"));
  tc.Add(neg);
  EXPECT_FALSE(tc.IsPositive());
  EXPECT_FALSE(tc.IsConcrete());
}

}  // namespace
}  // namespace certfix
