#include <gtest/gtest.h>

#include <map>

#include "cfd/violation.h"
#include "core/certain_fix.h"
#include "workload/dblp.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"
#include "workload/metrics.h"

namespace certfix {
namespace {

// Verifies that a relation satisfies the FD X -> B (master consistency
// precondition of Sect. 2: Dm "can be assumed consistent and complete").
void ExpectFunctional(const Relation& rel, const std::vector<AttrId>& x,
                      AttrId b, const std::string& label) {
  std::map<std::string, Value> seen;
  for (const Tuple& t : rel) {
    std::string key = ProjectKey(t, x);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(key, t.at(b));
    } else {
      ASSERT_EQ(it->second, t.at(b)) << "FD violated: " << label;
    }
  }
}

TEST(HospWorkloadTest, SchemaHas19Attributes) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  EXPECT_EQ(schema->num_attrs(), 19u);
  EXPECT_TRUE(schema->Has("zip"));
  EXPECT_TRUE(schema->Has("sAvg"));
  EXPECT_TRUE(schema->Has("addr3"));
}

TEST(HospWorkloadTest, Has21Rules) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  EXPECT_EQ(rules.size(), 21u);
  // Every attribute is mentioned (no unmentioned attrs in HOSP).
  EXPECT_EQ(rules.MentionedAttrs(), schema->AllAttrs());
}

TEST(HospWorkloadTest, MasterRespectsRuleFds) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 300, &rng);
  EXPECT_EQ(master.size(), 300u);
  auto a = [&](const std::string& n) {
    return *schema->IndexOf(n);
  };
  ExpectFunctional(master, {a("zip")}, a("ST"), "zip->ST");
  ExpectFunctional(master, {a("zip")}, a("city"), "zip->city");
  ExpectFunctional(master, {a("phn")}, a("zip"), "phn->zip");
  ExpectFunctional(master, {a("id")}, a("hName"), "id->hName");
  ExpectFunctional(master, {a("id"), a("mCode")}, a("Score"),
                   "(id,mCode)->Score");
  ExpectFunctional(master, {a("mCode"), a("ST")}, a("sAvg"),
                   "(mCode,ST)->sAvg");
  ExpectFunctional(master, {a("provider")}, a("id"), "provider->id");
  ExpectFunctional(master, {a("hName"), a("city")}, a("id"),
                   "(hName,city)->id");
}

TEST(HospWorkloadTest, MasterConsistentForEngine) {
  // The master must yield conflict-free unique fixes from {id, mCode}.
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 200, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  for (size_t i = 0; i < master.size(); i += 37) {
    AttrSet z;
    z.Add(*schema->IndexOf("id"));
    z.Add(*schema->IndexOf("mCode"));
    SaturationResult result = sat.CheckUniqueFix(master.at(i), z);
    EXPECT_TRUE(result.unique);
    EXPECT_TRUE(result.CertainOver(schema));
    EXPECT_EQ(result.fixed, master.at(i));
  }
}

TEST(HospWorkloadTest, CfdsMirrorMaster) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 100, &rng);
  CfdSet cfds = HospWorkload::MakeCfdsFromMaster(schema, master, 20);
  EXPECT_GT(cfds.size(), 0u);
  // The master itself must satisfy all derived CFDs.
  EXPECT_EQ(CountViolations(cfds, master), 0u);
}

TEST(DblpWorkloadTest, SchemaHas12Attributes) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  EXPECT_EQ(schema->num_attrs(), 12u);
}

TEST(DblpWorkloadTest, Has16Rules) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  RuleSet rules = DblpWorkload::MakeRules(schema);
  EXPECT_EQ(rules.size(), 16u);
}

TEST(DblpWorkloadTest, CrossAttributeHomepageConsistency) {
  // phi2/phi4 map a2 to the master's a1 (and vice versa); the master must
  // therefore assign each author one homepage regardless of position.
  SchemaPtr schema = DblpWorkload::MakeSchema();
  Rng rng(5);
  Relation master = DblpWorkload::MakeMaster(schema, 300, &rng);
  auto a = [&](const std::string& n) { return *schema->IndexOf(n); };
  std::map<std::string, std::string> homepage;
  for (const Tuple& t : master) {
    for (auto [author, hp] :
         {std::pair{a("a1"), a("hp1")}, std::pair{a("a2"), a("hp2")}}) {
      std::string name = t.at(author).as_string();
      auto it = homepage.find(name);
      if (it == homepage.end()) {
        homepage.emplace(name, t.at(hp).as_string());
      } else {
        ASSERT_EQ(it->second, t.at(hp).as_string())
            << "author " << name << " has two homepages";
      }
    }
  }
}

TEST(DblpWorkloadTest, MasterRespectsVenueFds) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  Rng rng(5);
  Relation master = DblpWorkload::MakeMaster(schema, 300, &rng);
  auto a = [&](const std::string& n) { return *schema->IndexOf(n); };
  ExpectFunctional(master, {a("type"), a("crossref")}, a("btitle"),
                   "crossref->btitle");
  ExpectFunctional(master, {a("type"), a("crossref")}, a("year"),
                   "crossref->year");
  ExpectFunctional(master, {a("type"), a("btitle"), a("year")}, a("isbn"),
                   "venue->isbn");
  ExpectFunctional(
      master,
      {a("type"), a("a1"), a("a2"), a("ptitle"), a("pages")}, a("crossref"),
      "paper->crossref");
}

TEST(DblpWorkloadTest, MasterConsistentForEngine) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  RuleSet rules = DblpWorkload::MakeRules(schema);
  Rng rng(5);
  Relation master = DblpWorkload::MakeMaster(schema, 150, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  AttrSet z;
  for (const char* n : {"type", "a1", "a2", "ptitle", "pages"}) {
    z.Add(*schema->IndexOf(n));
  }
  for (size_t i = 0; i < master.size(); i += 31) {
    SaturationResult result = sat.CheckUniqueFix(master.at(i), z);
    EXPECT_TRUE(result.unique);
    EXPECT_TRUE(result.CertainOver(schema));
    EXPECT_EQ(result.fixed, master.at(i));
  }
}

TEST(DirtyGenTest, DuplicateRateRespected) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 100, &rng);
  Rng rng2(77);
  Relation non_master =
      HospWorkload::MakeMaster(schema, 100, &rng2, 1000000);
  DirtyGenOptions options;
  options.duplicate_rate = 0.3;
  options.noise_rate = 0.2;
  DirtyGenerator gen(master, non_master, options);
  std::vector<DirtyPair> pairs = gen.Generate(2000);
  size_t dup = 0;
  for (const DirtyPair& p : pairs) dup += p.from_master ? 1 : 0;
  double rate = static_cast<double>(dup) / pairs.size();
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(DirtyGenTest, NoiseRateRespected) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 100, &rng);
  DirtyGenOptions options;
  options.noise_rate = 0.25;
  DirtyGenerator gen(master, master, options);
  std::vector<DirtyPair> pairs = gen.Generate(500);
  size_t corrupted = 0;
  size_t total = 0;
  for (const DirtyPair& p : pairs) {
    corrupted += static_cast<size_t>(p.corrupted.Count());
    total += p.clean.size();
    // corrupted set is exactly the diff.
    AttrSet diff;
    for (AttrId a : p.dirty.DiffAttrs(p.clean)) diff.Add(a);
    EXPECT_EQ(diff, p.corrupted);
  }
  double rate = static_cast<double>(corrupted) / total;
  EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(DirtyGenTest, ProtectedAttrsNeverCorrupted) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(5);
  Relation master = HospWorkload::MakeMaster(schema, 50, &rng);
  DirtyGenOptions options;
  options.noise_rate = 0.9;
  options.protected_attrs.Add(*schema->IndexOf("id"));
  DirtyGenerator gen(master, master, options);
  for (const DirtyPair& p : gen.Generate(200)) {
    EXPECT_FALSE(p.corrupted.Contains(*schema->IndexOf("id")));
  }
}

TEST(DirtyGenTest, Deterministic) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  Rng rng(5);
  Relation master = DblpWorkload::MakeMaster(schema, 50, &rng);
  DirtyGenOptions options;
  options.seed = 99;
  DirtyGenerator g1(master, master, options);
  DirtyGenerator g2(master, master, options);
  for (int i = 0; i < 50; ++i) {
    DirtyPair p1 = g1.Next();
    DirtyPair p2 = g2.Next();
    EXPECT_EQ(p1.dirty, p2.dirty);
    EXPECT_EQ(p1.clean, p2.clean);
  }
}

TEST(MetricsTest, Definitions) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
  auto t = [&](const std::vector<std::string>& f) {
    return std::move(Tuple::FromStrings(schema, f)).ValueOrDie();
  };
  MetricsAccumulator acc;
  // Tuple 1: two errors (a, b); rules fixed a correctly, changed c wrongly
  // ... c was clean so changing it breaks precision only if it leaves the
  // value wrong. Here: rules changed a (fixed) and b stayed wrong.
  AttrSet changed1{0};
  acc.Record(t({"x", "y", "z"}),   // dirty
             t({"X", "Y", "z"}),   // clean
             t({"X", "y", "z"}),   // result: a fixed, b still wrong
             changed1);
  EXPECT_EQ(acc.erroneous_tuples(), 1u);
  EXPECT_EQ(acc.corrected_tuples(), 0u);
  EXPECT_EQ(acc.erroneous_attrs(), 2u);
  EXPECT_EQ(acc.corrected_attrs(), 1u);
  EXPECT_EQ(acc.changed_attrs(), 1u);
  EXPECT_DOUBLE_EQ(acc.recall_a(), 0.5);
  EXPECT_DOUBLE_EQ(acc.precision_a(), 1.0);
  EXPECT_DOUBLE_EQ(acc.recall_t(), 0.0);

  // Tuple 2: one error fully fixed by rules -> corrected tuple.
  AttrSet changed2{1};
  acc.Record(t({"x", "q", "z"}), t({"x", "Q", "z"}), t({"x", "Q", "z"}),
             changed2);
  EXPECT_EQ(acc.corrected_tuples(), 1u);
  EXPECT_DOUBLE_EQ(acc.recall_t(), 0.5);
  double f = acc.f_measure();
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(MetricsTest, UserFixedAttrsNotCounted) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b"});
  auto t = [&](const std::vector<std::string>& f) {
    return std::move(Tuple::FromStrings(schema, f)).ValueOrDie();
  };
  MetricsAccumulator acc;
  // Both errors fixed, but by the user (auto_changed empty): recall_a = 0,
  // recall_t = 1 (tuple clean by any means; Sect. 6 footnote).
  acc.Record(t({"x", "y"}), t({"X", "Y"}), t({"X", "Y"}), AttrSet());
  EXPECT_DOUBLE_EQ(acc.recall_a(), 0.0);
  EXPECT_DOUBLE_EQ(acc.recall_t(), 1.0);
}

TEST(MetricsTest, WrongAutoChangeHurtsPrecision) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b"});
  auto t = [&](const std::vector<std::string>& f) {
    return std::move(Tuple::FromStrings(schema, f)).ValueOrDie();
  };
  MetricsAccumulator acc;
  AttrSet changed{0, 1};
  // Rules changed both attrs; only a landed on the truth.
  acc.Record(t({"x", "y"}), t({"X", "Y"}), t({"X", "WRONG"}), changed);
  EXPECT_DOUBLE_EQ(acc.precision_a(), 0.5);
}

TEST(MetricsTest, CleanInputsAreNeutral) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a"});
  auto t = [&](const std::vector<std::string>& f) {
    return std::move(Tuple::FromStrings(schema, f)).ValueOrDie();
  };
  MetricsAccumulator acc;
  acc.Record(t({"x"}), t({"x"}), t({"x"}), AttrSet());
  EXPECT_EQ(acc.erroneous_tuples(), 0u);
  EXPECT_DOUBLE_EQ(acc.recall_t(), 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(acc.recall_a(), 1.0);  // vacuous
}

}  // namespace
}  // namespace certfix
