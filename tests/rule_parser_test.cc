#include "rules/rule_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using testing_fixtures::A;
using testing_fixtures::SupplierMasterSchema;
using testing_fixtures::SupplierSchema;

class RuleParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
  }
  SchemaPtr r_;
  SchemaPtr rm_;
};

TEST_F(RuleParserTest, MinimalRule) {
  Result<EditingRule> rule =
      ParseRule("rule phi1: (zip | zip) -> (AC | AC)", r_, rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->name(), "phi1");
  EXPECT_TRUE(rule->pattern().empty());
}

TEST_F(RuleParserTest, MultiAttrLists) {
  Result<EditingRule> rule = ParseRule(
      "rule phi6: (AC, phn | AC, Hphn) -> (str | str)", r_, rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->lhs().size(), 2u);
  EXPECT_EQ(rule->lhsm()[1], A(rm_, "Hphn"));
}

TEST_F(RuleParserTest, PatternConstAndNeg) {
  Result<EditingRule> rule = ParseRule(
      "rule phi6: (AC, phn | AC, Hphn) -> (str | str) when type=1, AC!=0800",
      r_, rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  PatternValue type_cell = rule->pattern().Get(A(r_, "type"));
  EXPECT_TRUE(type_cell.is_const());
  EXPECT_EQ(type_cell.value().as_string(), "1");
  PatternValue ac_cell = rule->pattern().Get(A(r_, "AC"));
  EXPECT_TRUE(ac_cell.is_neg_const());
  EXPECT_EQ(ac_cell.value().as_string(), "0800");
}

TEST_F(RuleParserTest, ExplicitWildcard) {
  Result<EditingRule> rule =
      ParseRule("rule p: (zip | zip) -> (AC | AC) when type=_", r_, rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_TRUE(rule->pattern().Get(A(r_, "type")).is_wildcard());
  EXPECT_TRUE(rule->pattern().Has(A(r_, "type")));
}

TEST_F(RuleParserTest, QuotedValueWithComma) {
  Result<EditingRule> rule = ParseRule(
      "rule p: (zip | zip) -> (AC | AC) when city=\"Edinburgh, UK\"", r_,
      rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->pattern().Get(A(r_, "city")).value().as_string(),
            "Edinburgh, UK");
}

TEST_F(RuleParserTest, NegatedEmptyStringIsNotNull) {
  // attr!="" parses as "attr != null" (empty parses to null), the idiom
  // used for the paper's zip != nil patterns.
  Result<EditingRule> rule =
      ParseRule("rule p: (zip | zip) -> (AC | AC) when zip!=\"\"", r_, rm_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  PatternValue pv = rule->pattern().Get(A(r_, "zip"));
  EXPECT_TRUE(pv.is_neg_const());
  EXPECT_TRUE(pv.value().is_null());
}

TEST_F(RuleParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseRule("phi1: (zip|zip) -> (AC|AC)", r_, rm_).ok());
  EXPECT_FALSE(ParseRule("rule : (zip|zip) -> (AC|AC)", r_, rm_).ok());
  EXPECT_FALSE(ParseRule("rule p: (zip|zip) (AC|AC)", r_, rm_).ok());
  EXPECT_FALSE(ParseRule("rule p: zip|zip -> (AC|AC)", r_, rm_).ok());
  EXPECT_FALSE(ParseRule("rule p: (zip|zip) -> (AC)", r_, rm_).ok());
  EXPECT_FALSE(ParseRule("rule p: (zip|zip) -> (AC|AC) extra", r_, rm_).ok());
  EXPECT_FALSE(
      ParseRule("rule p: (zip|zip) -> (AC|AC) when type~1", r_, rm_).ok());
  EXPECT_FALSE(
      ParseRule("rule p: (nope|zip) -> (AC|AC)", r_, rm_).ok());
}

TEST_F(RuleParserTest, FileWithCommentsAndBlanks) {
  const char* text = R"(
    # a comment
    rule a: (zip | zip) -> (AC | AC)

    rule b: (zip | zip) -> (str | str)
  )";
  Result<RuleSet> rules = ParseRules(text, r_, rm_);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(rules->size(), 2u);
  EXPECT_EQ(rules->at(1).name(), "b");
}

TEST_F(RuleParserTest, FileReportsLineNumber) {
  const char* text = "rule a: (zip | zip) -> (AC | AC)\nrule broken\n";
  Result<RuleSet> rules = ParseRules(text, r_, rm_);
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("line 2"), std::string::npos);
}

TEST_F(RuleParserTest, GroupRuleExpansion) {
  // The paper's "eR1 is expressed as three editing rules of the form
  // phi1, for B1 ranging over {AC, str, city}".
  Result<std::vector<EditingRule>> rules = ParseRuleGroup(
      "rule eR1*: (zip | zip) -> (AC, str, city | AC, str, city)", r_, rm_);
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->size(), 3u);
  EXPECT_EQ((*rules)[0].name(), "eR1_1");
  EXPECT_EQ((*rules)[0].rhs(), A(r_, "AC"));
  EXPECT_EQ((*rules)[1].rhs(), A(r_, "str"));
  EXPECT_EQ((*rules)[2].rhs(), A(r_, "city"));
  // All members share lhs and pattern.
  for (const EditingRule& rule : *rules) {
    EXPECT_EQ(rule.lhs(), std::vector<AttrId>{A(r_, "zip")});
  }
}

TEST_F(RuleParserTest, GroupRuleWithPatternAndCrossMap) {
  // eR3 of the paper: str/city/zip from (AC, Hphn) under type=1.
  Result<std::vector<EditingRule>> rules = ParseRuleGroup(
      "rule eR3*: (AC, phn | AC, Hphn) -> (str, city, zip | str, city, "
      "zip) when type=1, AC!=0800",
      r_, rm_);
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->size(), 3u);
  for (const EditingRule& rule : *rules) {
    EXPECT_TRUE(rule.pattern().Get(A(r_, "AC")).is_neg_const());
  }
}

TEST_F(RuleParserTest, GroupInRuleFile) {
  const char* text = R"(
    rule eR1*: (zip | zip) -> (AC, str, city | AC, str, city)
    rule eR2*: (phn | Mphn) -> (fn, ln | FN, LN) when type=2
  )";
  Result<RuleSet> rules = ParseRules(text, r_, rm_);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(rules->size(), 5u);
}

TEST_F(RuleParserTest, GroupErrors) {
  // Multi-attribute rhs without a starred name.
  EXPECT_FALSE(
      ParseRuleGroup("rule p: (zip | zip) -> (AC, str | AC, str)", r_, rm_)
          .ok());
  // Mismatched rhs arity.
  EXPECT_FALSE(
      ParseRuleGroup("rule p*: (zip | zip) -> (AC, str | AC)", r_, rm_)
          .ok());
  // Star with empty base name.
  EXPECT_FALSE(ParseRuleGroup("rule *: (zip | zip) -> (AC | AC)", r_, rm_)
                   .ok());
  // Starred line through the singleton API.
  EXPECT_FALSE(
      ParseRule("rule p*: (zip | zip) -> (AC | AC)", r_, rm_).ok());
}

TEST_F(RuleParserTest, GroupSemanticsMatchManualExpansion) {
  RuleSet manual = testing_fixtures::SupplierRules(r_, rm_);
  const char* text = R"(
    rule g1*: (zip | zip) -> (AC, str, city | AC, str, city)
    rule g2*: (phn | Mphn) -> (fn, ln | FN, LN) when type=2
    rule g3*: (AC, phn | AC, Hphn) -> (str, city, zip | str, city, zip) when type=1, AC!=0800
    rule g4: (AC | AC) -> (city | city) when AC=0800
  )";
  Result<RuleSet> grouped = ParseRules(text, r_, rm_);
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  ASSERT_EQ(grouped->size(), manual.size());
  for (size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(grouped->at(i).lhs(), manual.at(i).lhs());
    EXPECT_EQ(grouped->at(i).rhs(), manual.at(i).rhs());
    EXPECT_EQ(grouped->at(i).rhsm(), manual.at(i).rhsm());
    EXPECT_EQ(grouped->at(i).pattern(), manual.at(i).pattern());
  }
}

TEST_F(RuleParserTest, RoundTripWithSupplierFixture) {
  RuleSet rules =
      testing_fixtures::SupplierRules(r_, rm_);
  EXPECT_EQ(rules.size(), 9u);
  // Spot-check phi9's constant pattern survived parsing.
  const EditingRule& phi9 = rules.at(8);
  EXPECT_EQ(phi9.pattern().Get(A(r_, "AC")).value().as_string(), "0800");
}

}  // namespace
}  // namespace certfix
