#include "relational/value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace certfix {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_double());
  EXPECT_FALSE(v.is_string());
}

TEST(ValueTest, IntAccessors) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleAccessors) {
  Value v = Value::Double(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  EXPECT_EQ(v.ToString(), "2.5");
}

TEST(ValueTest, StringAccessors) {
  Value v = Value::Str("Edi");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "Edi");
  EXPECT_EQ(v.ToString(), "Edi");
}

TEST(ValueTest, NullToString) { EXPECT_EQ(Value().ToString(), "<null>"); }

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_NE(Value::Int(7), Value::Int(8));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
}

TEST(ValueTest, EqualityAcrossTypes) {
  // int 1 != string "1" != double 1.0: type-tagged equality.
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value(), Value::Int(0));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value::Str(""));
}

TEST(ValueTest, OrderingIsStrictWeak) {
  std::set<Value> s;
  s.insert(Value());
  s.insert(Value::Int(2));
  s.insert(Value::Int(1));
  s.insert(Value::Str("b"));
  s.insert(Value::Str("a"));
  s.insert(Value::Double(0.5));
  EXPECT_EQ(s.size(), 6u);
  // null < int < double < string per variant index.
  auto it = s.begin();
  EXPECT_TRUE(it->is_null());
  ++it;
  EXPECT_EQ(it->as_int(), 1);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  // Different types with "same" content should (overwhelmingly) differ.
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
}

TEST(ValueTest, HashUsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> s;
  s.insert(Value::Str("a"));
  s.insert(Value::Str("a"));
  s.insert(Value::Int(1));
  s.insert(Value());
  EXPECT_EQ(s.size(), 3u);
}

TEST(ValueTest, ParseInt) {
  Value v = Value::Parse("123", DataType::kInt);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 123);
}

TEST(ValueTest, ParseNegativeInt) {
  Value v = Value::Parse("-9", DataType::kInt);
  EXPECT_EQ(v.as_int(), -9);
}

TEST(ValueTest, ParseBadIntYieldsNull) {
  EXPECT_TRUE(Value::Parse("12x", DataType::kInt).is_null());
}

TEST(ValueTest, ParseDouble) {
  Value v = Value::Parse("2.75", DataType::kDouble);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.75);
}

TEST(ValueTest, ParseString) {
  EXPECT_EQ(Value::Parse("EH7 4AH", DataType::kString).as_string(),
            "EH7 4AH");
}

TEST(ValueTest, ParseEmptyIsNull) {
  EXPECT_TRUE(Value::Parse("", DataType::kString).is_null());
  EXPECT_TRUE(Value::Parse("", DataType::kInt).is_null());
  EXPECT_TRUE(Value::Parse("<null>", DataType::kString).is_null());
}

}  // namespace
}  // namespace certfix
