/// \file analyze_test.cc
/// \brief Ruleset static analyzer: golden diagnostic fixtures
/// (tests/golden/analyze/), RuleSetSummary <-> DependencyGraph
/// equivalence, the analyze_first gate on all three engines, and the
/// soundness property "analyze-clean rulesets never conflict mid-repair".

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/rule_summary.h"
#include "core/batch_repair.h"
#include "incremental/delta_repair.h"
#include "stream/stream_repair.h"
#include "test_util.h"
#include "tools/cli.h"
#include "util/random.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string Chomp(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

// ---------------------------------------------------------------------------
// Golden fixtures: each directory under tests/golden/analyze/ holds a
// seeded bad ruleset; `cli analyze --json` must reproduce expected.json
// byte-for-byte (the JSON layout is a stable interface).

struct GoldenCase {
  const char* dir;
  int exit_plain;   // exit without --strict
  int exit_strict;  // exit with --strict
};

class AnalyzeGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(AnalyzeGoldenTest, JsonMatchesGolden) {
  const GoldenCase& c = GetParam();
  std::string dir = std::string(CERTFIX_GOLDEN_DIR) + "/analyze/" + c.dir;
  std::string trusted = Chomp(ReadFile(dir + "/trusted"));
  std::vector<std::string> args = {
      "analyze",   "--master", dir + "/master.csv", "--rules",
      dir + "/rules.rules", "--trusted", trusted,   "--json"};

  std::ostringstream out, err;
  EXPECT_EQ(RunCli(args, out, err), c.exit_plain) << err.str();
  EXPECT_EQ(out.str(), ReadFile(dir + "/expected.json"));

  args.push_back("--strict");
  std::ostringstream out2, err2;
  EXPECT_EQ(RunCli(args, out2, err2), c.exit_strict) << err2.str();
  EXPECT_EQ(out2.str(), out.str()) << "--strict must not change the report";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, AnalyzeGoldenTest,
    ::testing::Values(
        // conflict: error diagnostic, but plain analyze still exits 0.
        GoldenCase{"conflict", 0, 2},
        // dead / cycle / gap: warnings only; strict passes.
        GoldenCase{"dead", 0, 0}, GoldenCase{"cycle", 0, 0},
        GoldenCase{"gap", 0, 0},
        // missing-attr: the ruleset cannot parse; always exit 2.
        GoldenCase{"missing-attr", 2, 2}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.dir;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Analyzer unit tests on the paper's supplier fixture.

class AnalyzerSupplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
};

TEST_F(AnalyzerSupplierTest, CleanRulesetHasNoErrors) {
  RulesetAnalyzer analyzer(rules_);
  RulesetReport report =
      analyzer.Analyze(&dm_, Attrs(r_, {"zip", "phn", "type"}));
  EXPECT_EQ(report.errors(), 0u) << report.ToText();
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.probes, 0u);
  ASSERT_EQ(report.summary.size(), rules_.size());
  // phi1 (zip -> AC) is reachable and feeds phi6-phi9 via AC.
  EXPECT_TRUE(report.summary[0].reachable);
  EXPECT_GT(report.summary[0].fanout, 0u);
}

TEST_F(AnalyzerSupplierTest, ConflictFoundWithWitness) {
  // Example 5 (t3): AC/phn and zip both trusted lets phi2 (zip -> str)
  // and phi6 (AC, phn -> str) disagree across the two master tuples.
  RulesetAnalyzer analyzer(rules_);
  RulesetReport report =
      analyzer.Analyze(&dm_, Attrs(r_, {"AC", "phn", "type", "zip"}));
  ASSERT_GT(report.errors(), 0u) << report.ToText();
  const Diagnostic* first = report.FirstError();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->kind, DiagnosticKind::kRuleConflict);
  EXPECT_EQ(first->rules.size(), 2u);
  EXPECT_FALSE(first->witness.empty());
  EXPECT_NE(first->message.find("conflicting fixes"), std::string::npos);
}

TEST_F(AnalyzerSupplierTest, DeadRuleWhenTargetTrusted) {
  // zip trusted makes phi8 (AC, phn -> zip) pointless.
  RulesetAnalyzer analyzer(rules_);
  RulesetReport report =
      analyzer.Analyze(&dm_, Attrs(r_, {"zip", "phn", "type"}));
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == DiagnosticKind::kDeadRule &&
        !d.rules.empty() && d.rules[0] == "phi8") {
      found = true;
      EXPECT_NE(d.message.find("already trusted"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << report.ToText();
}

TEST_F(AnalyzerSupplierTest, ShadowedRuleFlagged) {
  // s2 is s1 restricted by a pattern: every move s2 makes, s1 makes.
  RuleSet rules(r_, rm_);
  Result<RuleSet> parsed = ParseRules(
      "rule s1: (zip | zip) -> (AC | AC)\n"
      "rule s2: (zip | zip) -> (AC | AC) when type=1\n",
      r_, rm_);
  ASSERT_TRUE(parsed.ok());
  RulesetAnalyzer analyzer(*parsed);
  RulesetReport report = analyzer.Analyze(&dm_, Attrs(r_, {"zip", "type"}));
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == DiagnosticKind::kShadowedRule) {
      found = true;
      ASSERT_EQ(d.rules.size(), 2u);
      EXPECT_EQ(d.rules[0], "s2");  // the redundant rule leads
      EXPECT_EQ(d.rules[1], "s1");
    }
  }
  EXPECT_TRUE(found) << report.ToText();
}

TEST_F(AnalyzerSupplierTest, BudgetTruncationWarns) {
  AnalyzeOptions options;
  options.max_probes = 1;
  RulesetAnalyzer analyzer(rules_);
  RulesetReport report =
      analyzer.Analyze(&dm_, Attrs(r_, {"AC", "phn", "type", "zip"}), options);
  bool budget = false;
  for (const Diagnostic& d : report.diagnostics) {
    budget |= d.kind == DiagnosticKind::kAnalysisBudget;
  }
  EXPECT_TRUE(budget) << report.ToText();
  EXPECT_LE(report.probes, 1u);
}

TEST(AnalyzerTypeTest, PositionalTypeMismatchFlagged) {
  // R.phn is an int but the master key it compares against is a string:
  // the key can never match, and the fix copy is equally ill-typed.
  SchemaPtr r = Schema::Make(
      "R", std::vector<Attribute>{{"phn", DataType::kInt},
                                  {"zip", DataType::kString}});
  SchemaPtr rm = Schema::Make(
      "Master", std::vector<Attribute>{{"phn", DataType::kString},
                                       {"zip", DataType::kString}});
  Result<RuleSet> rules =
      ParseRules("rule t1: (phn | phn) -> (zip | zip)\n", r, rm);
  ASSERT_TRUE(rules.ok()) << rules.status();
  RulesetAnalyzer analyzer(*rules);
  Relation dm(rm);
  ASSERT_TRUE(dm.AppendStrings({"6884563", "EH7"}).ok());
  RulesetReport report = analyzer.Analyze(&dm, AttrSet{});
  ASSERT_GT(report.errors(), 0u);
  EXPECT_EQ(report.FirstError()->kind, DiagnosticKind::kTypeMismatch);
  EXPECT_NE(report.FirstError()->message.find("can never match"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// RuleSetSummary must answer exactly like the DependencyGraph it fronts
// (the incremental engine swaps one for the other on the invalidation
// path).

TEST(RuleSummaryTest, MatchesDependencyGraphOnSupplierRules) {
  SchemaPtr r = SupplierSchema();
  SchemaPtr rm = SupplierMasterSchema();
  RuleSet rules = SupplierRules(r, rm);
  DependencyGraph graph(rules);
  RuleSetSummary summary(graph, Attrs(r, {"zip", "phn", "type"}));

  ASSERT_EQ(summary.num_rules(), rules.size());
  // Every master attribute singleton and every pair.
  for (AttrId a = 0; a < rm->num_attrs(); ++a) {
    AttrSet sa;
    sa.Add(a);
    EXPECT_EQ(summary.RulesReadingMasterAttrs(sa),
              graph.RulesReadingMasterAttrs(sa))
        << "attr " << rm->attr_name(a);
    EXPECT_EQ(summary.InvalidatedRegion(sa), graph.InvalidatedRegion(sa));
    for (AttrId b = a + 1; b < rm->num_attrs(); ++b) {
      AttrSet sab = sa;
      sab.Add(b);
      EXPECT_EQ(summary.RulesReadingMasterAttrs(sab),
                graph.RulesReadingMasterAttrs(sab));
      EXPECT_EQ(summary.InvalidatedRegion(sab), graph.InvalidatedRegion(sab));
    }
  }
  // Every rule singleton seed, plus a few multi-seed queries.
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(summary.ReachableFrom({i}), graph.ReachableFrom({i}))
        << "seed " << i;
  }
  EXPECT_EQ(summary.ReachableFrom({0, 3}), graph.ReachableFrom({0, 3}));
  EXPECT_EQ(summary.ReachableFrom({}), graph.ReachableFrom({}));
}

TEST(RuleSummaryTest, MatchesDependencyGraphOnHospRules) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  DependencyGraph graph(rules);
  AttrSet trusted = AttrSet::FromVector(
      {*schema->IndexOf("id"), *schema->IndexOf("mCode")});
  RuleSetSummary summary(graph, trusted);
  for (AttrId a = 0; a < schema->num_attrs(); ++a) {
    AttrSet sa;
    sa.Add(a);
    EXPECT_EQ(summary.RulesReadingMasterAttrs(sa),
              graph.RulesReadingMasterAttrs(sa));
    EXPECT_EQ(summary.InvalidatedRegion(sa), graph.InvalidatedRegion(sa));
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(summary.ReachableFrom({i}), graph.ReachableFrom({i}));
  }
}

// ---------------------------------------------------------------------------
// analyze_first gate on the three engines. The conflicting fixture: two
// key attributes each backed by a rule targeting AC, with master rows
// that disagree on AC.

class StrictGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make(
        "R", std::vector<std::string>{"zip", "AC", "city", "name"});
    master_ = Relation(schema_);
    ASSERT_TRUE(master_.AppendStrings({"EH7", "131", "Edi", "Ann"}).ok());
    ASSERT_TRUE(master_.AppendStrings({"NW1", "020", "Lnd", "Cid"}).ok());
    Result<RuleSet> rules = ParseRules(
        "rule r1: (zip | zip) -> (AC | AC)\n"
        "rule r2: (city | city) -> (AC | AC)\n",
        schema_, schema_);
    ASSERT_TRUE(rules.ok());
    rules_ = std::move(*rules);
    trusted_ = Attrs(schema_, {"zip", "city", "name"});
    index_ = std::make_unique<MasterIndex>(rules_, master_);
    sat_ = std::make_unique<Saturator>(rules_, master_, *index_);
  }

  SchemaPtr schema_;
  Relation master_;
  RuleSet rules_;
  AttrSet trusted_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(StrictGateTest, BatchRejectsWithWitness) {
  RepairOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  BatchRepair repair(*sat_, options);
  Relation data(schema_);
  ASSERT_TRUE(data.AppendStrings({"EH7", "000", "Edi", "Eve"}).ok());
  Result<BatchRepairResult> result = repair.RepairChecked(data, trusted_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistent);
  EXPECT_NE(result.status().message().find("analyze_first=strict"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("conflicting fixes"),
            std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("zip="), std::string::npos)
      << "witness tuple must be in the error";
}

TEST_F(StrictGateTest, BatchWarnAndOffProceed) {
  for (AnalyzeMode mode : {AnalyzeMode::kOff, AnalyzeMode::kWarn}) {
    RepairOptions options;
    options.analyze_first = mode;
    BatchRepair repair(*sat_, options);
    Relation data(schema_);
    ASSERT_TRUE(data.AppendStrings({"EH7", "000", "Edi", "Eve"}).ok());
    Result<BatchRepairResult> result = repair.RepairChecked(data, trusted_);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->repaired.at(0).at(1).as_string(), "131");
  }
}

TEST_F(StrictGateTest, StreamEngineIsInertAfterRejection) {
  StreamOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  CollectingSink sink(schema_);
  StreamRepairEngine engine(*sat_, trusted_, &sink, options);
  ASSERT_FALSE(engine.precheck_status().ok());
  EXPECT_EQ(engine.precheck_status().code(), StatusCode::kInconsistent);
  EXPECT_NE(engine.precheck_status().message().find("conflicting fixes"),
            std::string::npos);

  EXPECT_FALSE(engine.Push(master_.at(0)));
  Status push = engine.PushStrings({"EH7", "000", "Edi", "Eve"});
  EXPECT_EQ(push.code(), StatusCode::kInconsistent);
  EXPECT_THROW(engine.Finish(), std::runtime_error);
  EXPECT_EQ(sink.repaired().size(), 0u);
}

TEST_F(StrictGateTest, DeltaEngineRefusesEveryMutator) {
  DeltaRepairOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  DeltaRepairEngine engine(rules_, master_, trusted_, options);
  ASSERT_FALSE(engine.precheck_status().ok());
  EXPECT_NE(engine.precheck_status().message().find("conflicting fixes"),
            std::string::npos);

  Relation input(schema_);
  ASSERT_TRUE(input.AppendStrings({"EH7", "000", "Edi", "Eve"}).ok());
  Status load = engine.Load(input);
  EXPECT_EQ(load.code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.Insert(input.at(0)).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.Delete(0).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.size(), 0u);
}

TEST_F(StrictGateTest, WarnModeEnginesStillRepair) {
  StreamOptions soptions;
  soptions.analyze_first = AnalyzeMode::kWarn;
  CollectingSink sink(schema_);
  StreamRepairEngine stream(*sat_, trusted_, &sink, soptions);
  ASSERT_TRUE(stream.precheck_status().ok());
  ASSERT_TRUE(stream.PushStrings({"EH7", "000", "Edi", "Eve"}).ok());
  stream.Finish();
  ASSERT_EQ(sink.repaired().size(), 1u);

  DeltaRepairOptions doptions;
  doptions.analyze_first = AnalyzeMode::kWarn;
  DeltaRepairEngine delta(rules_, master_, trusted_, doptions);
  ASSERT_TRUE(delta.precheck_status().ok());
  Relation input(schema_);
  ASSERT_TRUE(input.AppendStrings({"EH7", "000", "Edi", "Eve"}).ok());
  ASSERT_TRUE(delta.Load(input).ok());
  EXPECT_EQ(delta.size(), 1u);
}

// ---------------------------------------------------------------------------
// Soundness property: a ruleset the analyzer passes with zero errors
// never classifies a tuple as conflicting mid-repair — across seeded
// dirty inputs and delta sequences (the analyzer's candidate-domain
// enumeration covers every value combination the trusted attributes can
// take against the master).

TEST(AnalyzeSoundnessTest, CleanVerdictImpliesNoMidRepairConflicts) {
  for (uint64_t seed : {7u, 17u, 27u}) {
    SchemaPtr schema = HospWorkload::MakeSchema();
    RuleSet rules = HospWorkload::MakeRules(schema);
    Rng rng(seed);
    Relation master = HospWorkload::MakeMaster(schema, 60, &rng);
    AttrSet trusted = AttrSet::FromVector(
        {*schema->IndexOf("id"), *schema->IndexOf("mCode")});

    RulesetAnalyzer analyzer(rules);
    RulesetReport report = analyzer.Analyze(&master, trusted);
    ASSERT_EQ(report.errors(), 0u)
        << "seed " << seed << ": " << report.ToText();

    // Dirty pool: master-derived rows with noise outside the trusted
    // key, plus rows from a disjoint entity pool (match no master).
    Rng rng2(seed * 31 + 7);
    Relation non_master = HospWorkload::MakeMaster(schema, 40, &rng2, 500000);
    DirtyGenOptions gen_options;
    gen_options.duplicate_rate = 0.6;
    gen_options.noise_rate = 0.5;
    gen_options.protected_attrs = trusted;
    gen_options.seed = seed * 7 + 1;
    DirtyGenerator gen(master, non_master, gen_options);
    Relation pool(schema);
    for (const DirtyPair& pair : gen.Generate(120)) {
      ASSERT_TRUE(pool.Append(pair.dirty).ok());
    }

    DeltaRepairOptions options;
    options.analyze_first = AnalyzeMode::kStrict;  // must pass the gate
    options.num_shards = 1 + seed % 3;
    DeltaRepairEngine engine(rules, master, trusted, options);
    ASSERT_TRUE(engine.precheck_status().ok()) << engine.precheck_status();

    // Seeded delta sequence: inserts, updates, deletes, and master
    // inserts from a third disjoint entity pool (master stays
    // consistent, so the construction-time verdict keeps holding).
    Rng rng3(seed * 131 + 3);
    Relation master_pool = HospWorkload::MakeMaster(schema, 16, &rng3, 900000);
    size_t next_insert = 0, next_master = 0;
    Rng drive(seed * 997 + 13);
    for (int step = 0; step < 120; ++step) {
      double roll = drive.NextDouble();
      if (roll < 0.45 || engine.size() == 0) {
        ASSERT_TRUE(
            engine.Insert(pool.at(next_insert++ % pool.size())).ok());
      } else if (roll < 0.70) {
        ASSERT_TRUE(engine
                        .Update(drive.Index(engine.size()),
                                pool.at(next_insert++ % pool.size()))
                        .ok());
      } else if (roll < 0.85) {
        ASSERT_TRUE(engine.Delete(drive.Index(engine.size())).ok());
      } else {
        ASSERT_TRUE(
            engine.MasterInsert(master_pool.at(next_master++ % master_pool.size()))
                .ok());
      }
    }
    DeltaRepairStats stats = engine.stats();
    EXPECT_EQ(stats.conflicting, 0u)
        << "seed " << seed
        << ": analyze-clean ruleset produced a conflicting repair";
    EXPECT_GT(stats.tuples_repaired, 0u);
  }
}

}  // namespace
}  // namespace certfix
