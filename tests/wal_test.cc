/// \file wal_test.cc
/// \brief Crash-safety tests for the binary WAL (storage/wal.h): delta
/// round trips with hostile payloads, torn-tail recovery at every byte
/// offset, corrupt-frame handling, append-after-crash, and the codec
/// sniff that keeps the CSV delta-log readable.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "storage/io_util.h"

namespace certfix {
namespace {

/// One delta of every kind, with payloads the CSV codec would choke on:
/// commas, quotes, newlines, NULs, empty fields, long strings.
std::vector<Delta> HostileDeltas() {
  std::vector<Delta> out;
  Delta d;
  d.kind = DeltaKind::kInsert;
  d.fields = {"a,b", "\"quoted\"", ""};
  out.push_back(d);
  d.kind = DeltaKind::kUpdate;
  d.row = 0;
  d.fields = {"line\nbreak", std::string("nul\0byte", 8),
              std::string(3000, 'x')};
  out.push_back(d);
  d.kind = DeltaKind::kDelete;
  d.row = 12345678901234ull;
  d.fields.clear();
  out.push_back(d);
  d.kind = DeltaKind::kMasterInsert;
  d.row = 0;
  d.fields = {"m1", "m2"};
  out.push_back(d);
  d.kind = DeltaKind::kMasterUpdate;
  d.row = 7;
  d.fields = {"", ""};
  out.push_back(d);
  d.kind = DeltaKind::kMasterDelete;
  d.row = 1;
  d.fields.clear();
  out.push_back(d);
  return out;
}

void ExpectDeltasEqual(const Delta& got, const Delta& want,
                       const std::string& label) {
  EXPECT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind))
      << label;
  EXPECT_EQ(got.row, want.row) << label;
  ASSERT_EQ(got.fields.size(), want.fields.size()) << label;
  for (size_t i = 0; i < want.fields.size(); ++i) {
    EXPECT_EQ(got.fields[i], want.fields[i]) << label << " field " << i;
  }
}

std::string WriteWal(const std::string& name,
                     const std::vector<Delta>& deltas) {
  std::string path = ::testing::TempDir() + "/" + name;
  Result<std::unique_ptr<storage::WalWriter>> writer =
      storage::WalWriter::Create(path);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (const Delta& d : deltas) {
    EXPECT_TRUE((*writer)->Append(d).ok());
  }
  EXPECT_EQ((*writer)->records_appended(), deltas.size());
  return path;
}

std::string ReadFileOrDie(const std::string& path) {
  Result<std::string> bytes = storage::ReadFileBytes(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalTest, RoundTripAllKindsWithHostilePayloads) {
  std::vector<Delta> deltas = HostileDeltas();
  std::string path = WriteWal("roundtrip.wal", deltas);

  Result<std::unique_ptr<storage::WalReader>> reader =
      storage::WalReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  Delta got;
  for (size_t i = 0; i < deltas.size(); ++i) {
    Result<bool> more = (*reader)->Next(&got);
    ASSERT_TRUE(more.ok()) << more.status();
    ASSERT_TRUE(*more) << "record " << i;
    ExpectDeltasEqual(got, deltas[i], "record " + std::to_string(i));
  }
  Result<bool> end = (*reader)->Next(&got);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
  EXPECT_EQ((*reader)->records_read(), deltas.size());
  EXPECT_EQ((*reader)->discarded_bytes(), 0u);
}

TEST(WalTest, ScanReportsRecordBoundaries) {
  std::vector<Delta> deltas = HostileDeltas();
  std::string path = WriteWal("scan.wal", deltas);
  Result<storage::WalScan> scan = storage::ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->boundaries.size(), deltas.size() + 1);
  EXPECT_EQ(scan->boundaries.front(), 16u);  // header size
  EXPECT_EQ(scan->boundaries.back(), ReadFileOrDie(path).size());
  for (size_t i = 1; i < scan->boundaries.size(); ++i) {
    EXPECT_GT(scan->boundaries[i], scan->boundaries[i - 1]);
  }
  EXPECT_EQ(scan->discarded_bytes, 0u);
}

TEST(WalTest, TruncationAtEveryByteRecoversTheIntactPrefix) {
  std::vector<Delta> deltas = HostileDeltas();
  std::string path = WriteWal("trunc.wal", deltas);
  std::string bytes = ReadFileOrDie(path);
  Result<storage::WalScan> scan = storage::ScanWal(path);
  ASSERT_TRUE(scan.ok());
  const std::vector<uint64_t>& bounds = scan->boundaries;

  std::string mutant_path = ::testing::TempDir() + "/trunc_mut.wal";
  for (size_t len = bounds.front(); len <= bytes.size(); ++len) {
    WriteRaw(mutant_path, bytes.substr(0, len));
    Result<std::unique_ptr<storage::WalReader>> reader =
        storage::WalReader::Open(mutant_path);
    ASSERT_TRUE(reader.ok()) << "len " << len << ": " << reader.status();
    // Expected intact record count: boundaries at or below len.
    size_t want = 0;
    while (want + 1 < bounds.size() && bounds[want + 1] <= len) ++want;
    Delta got;
    size_t read = 0;
    for (;;) {
      Result<bool> more = (*reader)->Next(&got);
      ASSERT_TRUE(more.ok()) << "len " << len;
      if (!*more) break;
      ExpectDeltasEqual(got, deltas[read],
                        "len " + std::to_string(len) + " record " +
                            std::to_string(read));
      ++read;
    }
    EXPECT_EQ(read, want) << "len " << len;
    EXPECT_EQ((*reader)->discarded_bytes(), len - bounds[want])
        << "len " << len;
  }
}

TEST(WalTest, CorruptPayloadByteDropsTheTail) {
  std::vector<Delta> deltas = HostileDeltas();
  std::string path = WriteWal("flip.wal", deltas);
  std::string bytes = ReadFileOrDie(path);
  Result<storage::WalScan> scan = storage::ScanWal(path);
  ASSERT_TRUE(scan.ok());
  // Flip a byte inside record 2's frame: records 0-1 survive, the rest
  // is a corrupt tail.
  uint64_t target = scan->boundaries[2] + 9;
  std::string mutant = bytes;
  mutant[target] = static_cast<char>(mutant[target] ^ 0xFF);
  std::string mutant_path = ::testing::TempDir() + "/flip_mut.wal";
  WriteRaw(mutant_path, mutant);

  Result<std::unique_ptr<storage::WalReader>> reader =
      storage::WalReader::Open(mutant_path);
  ASSERT_TRUE(reader.ok());
  Delta got;
  size_t read = 0;
  for (;;) {
    Result<bool> more = (*reader)->Next(&got);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++read;
  }
  EXPECT_EQ(read, 2u);
  EXPECT_EQ((*reader)->tail_offset(), scan->boundaries[2]);
  EXPECT_GT((*reader)->discarded_bytes(), 0u);
}

TEST(WalTest, CorruptHeaderFailsLoudly) {
  std::string path = WriteWal("hdr.wal", HostileDeltas());
  std::string bytes = ReadFileOrDie(path);
  bytes[3] = static_cast<char>(bytes[3] ^ 0x01);
  WriteRaw(path, bytes);
  EXPECT_FALSE(storage::WalReader::Open(path).ok());
  EXPECT_FALSE(storage::ScanWal(path).ok());
  uint64_t valid = 0;
  EXPECT_FALSE(storage::WalWriter::OpenForAppend(path, {}, &valid).ok());
}

TEST(WalTest, CrcValidButUnparseablePayloadFailsLoudly) {
  // A frame whose CRC matches but whose payload is garbage is tampering
  // or a format bug, never a crash artifact — it must NOT be treated as
  // a clean tail.
  std::string path = ::testing::TempDir() + "/garbage.wal";
  {
    Result<std::unique_ptr<storage::WalWriter>> writer =
        storage::WalWriter::Create(path);
    ASSERT_TRUE(writer.ok());
  }
  std::string bytes = ReadFileOrDie(path);
  std::string payload = "\xFF\x01\x02";  // kind 255 is no DeltaKind
  storage::PutU32(&bytes, static_cast<uint32_t>(payload.size()));
  storage::PutU32(&bytes, storage::Crc32(payload.data(), payload.size()));
  bytes += payload;
  WriteRaw(path, bytes);

  Result<std::unique_ptr<storage::WalReader>> reader =
      storage::WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Delta got;
  Result<bool> more = (*reader)->Next(&got);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kParseError);
}

TEST(WalTest, OpenForAppendTruncatesTornTailAndContinues) {
  std::vector<Delta> deltas = HostileDeltas();
  std::string path = WriteWal("append.wal", deltas);
  std::string bytes = ReadFileOrDie(path);
  Result<storage::WalScan> scan = storage::ScanWal(path);
  ASSERT_TRUE(scan.ok());
  // Tear the last record in half.
  uint64_t cut =
      (scan->boundaries[deltas.size() - 1] + scan->boundaries.back()) / 2;
  WriteRaw(path, bytes.substr(0, cut));

  uint64_t valid = 0;
  Result<std::unique_ptr<storage::WalWriter>> writer =
      storage::WalWriter::OpenForAppend(path, {}, &valid);
  ASSERT_TRUE(writer.ok()) << writer.status();
  std::unique_ptr<storage::WalWriter> appender =
      std::move(writer).ValueOrDie();
  EXPECT_EQ(valid, deltas.size() - 1);
  EXPECT_EQ(appender->tail_offset(), scan->boundaries[deltas.size() - 1]);

  Delta extra;
  extra.kind = DeltaKind::kDelete;
  extra.row = 99;
  ASSERT_TRUE(appender->Append(extra).ok());
  appender.reset();  // close before reading

  Result<std::unique_ptr<storage::WalReader>> reader =
      storage::WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Delta got;
  std::vector<Delta> want(deltas.begin(), deltas.end() - 1);
  want.push_back(extra);
  for (size_t i = 0; i < want.size(); ++i) {
    Result<bool> more = (*reader)->Next(&got);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    ExpectDeltasEqual(got, want[i], "after append, record " +
                                        std::to_string(i));
  }
  Result<bool> end = (*reader)->Next(&got);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
  EXPECT_EQ((*reader)->discarded_bytes(), 0u);
}

TEST(WalTest, OpenDeltaLogSniffsBothCodecs) {
  SchemaPtr schema = Schema::Make("T", std::vector<std::string>{"a", "b"});

  // Binary WAL codec.
  Delta bin;
  bin.kind = DeltaKind::kUpdate;
  bin.row = 3;
  bin.fields = {"x,y", "line\nbreak"};
  std::string wal_path = WriteWal("sniff.wal", {bin});
  Result<std::unique_ptr<DeltaSource>> wal_src =
      storage::OpenDeltaLog(schema, schema, wal_path);
  ASSERT_TRUE(wal_src.ok()) << wal_src.status();
  Delta got;
  Result<bool> more = (*wal_src)->Next(&got);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  ExpectDeltasEqual(got, bin, "wal codec");

  // CSV text codec (same DeltaSource interface).
  std::string csv_path = ::testing::TempDir() + "/sniff.deltas";
  {
    std::ofstream f(csv_path);
    f << "# comment\nU,3,\"x,y\",plain\nD,0\n";
  }
  Result<std::unique_ptr<DeltaSource>> csv_src =
      storage::OpenDeltaLog(schema, schema, csv_path);
  ASSERT_TRUE(csv_src.ok()) << csv_src.status();
  more = (*csv_src)->Next(&got);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(static_cast<int>(got.kind),
            static_cast<int>(DeltaKind::kUpdate));
  EXPECT_EQ(got.row, 3u);
  ASSERT_EQ(got.fields.size(), 2u);
  EXPECT_EQ(got.fields[0], "x,y");
  more = (*csv_src)->Next(&got);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(static_cast<int>(got.kind),
            static_cast<int>(DeltaKind::kDelete));

  // Missing file is a clean error for either codec.
  EXPECT_FALSE(
      storage::OpenDeltaLog(schema, schema, csv_path + ".nope").ok());
}

}  // namespace
}  // namespace certfix
