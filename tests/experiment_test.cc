#include "workload/experiment.h"

#include <gtest/gtest.h>

#include "workload/dblp.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

struct HospSetup {
  SchemaPtr schema;
  Relation master;
  Relation non_master;
  std::unique_ptr<CertainFixEngine> engine;
};

HospSetup MakeHospSetup(size_t master_size, bool use_cache) {
  HospSetup s;
  s.schema = HospWorkload::MakeSchema();
  Rng rng(17);
  s.master = HospWorkload::MakeMaster(s.schema, master_size, &rng);
  Rng rng2(9090);
  s.non_master =
      HospWorkload::MakeMaster(s.schema, master_size / 2, &rng2, 1000000);
  CertainFixOptions options;
  options.use_cache = use_cache;
  options.region.trials = 12;
  options.region.sample_masters = 24;
  s.engine = std::make_unique<CertainFixEngine>(
      HospWorkload::MakeRules(s.schema), s.master, options);
  return s;
}

TEST(ExperimentTest, HospSmokeRun) {
  HospSetup s = MakeHospSetup(200, /*use_cache=*/true);
  ExperimentConfig config;
  config.num_tuples = 60;
  config.report_rounds = 5;
  config.gen.duplicate_rate = 0.3;
  config.gen.noise_rate = 0.2;
  config.gen.seed = 4;
  ExperimentResult result = RunInteractiveExperiment(
      s.engine.get(), s.master, s.non_master, config);

  // Every tuple reaches a certain fix with the oracle user.
  EXPECT_EQ(result.completed_tuples, config.num_tuples);
  EXPECT_EQ(result.conflict_tuples, 0u);
  ASSERT_EQ(result.per_round.size(), 5u);
  // recall_t is monotone in rounds and reaches 1 (the user eventually
  // validates everything).
  for (size_t k = 1; k < result.per_round.size(); ++k) {
    EXPECT_GE(result.per_round[k].recall_t + 1e-12,
              result.per_round[k - 1].recall_t);
  }
  EXPECT_DOUBLE_EQ(result.per_round.back().recall_t, 1.0);
  // Precision of rule fixes is 1 against consistent master data.
  EXPECT_DOUBLE_EQ(result.per_round.back().precision_a, 1.0);
  // The paper's headline: most tuples fixed within a few rounds.
  EXPECT_LE(result.avg_rounds, 4.0);
}

TEST(ExperimentTest, RecallAtRoundOneTracksDuplicateRate) {
  // Fig. 10b/e observation: at k = 1, recall_t equals d% (only tuples
  // matching master data get fully fixed in the first round).
  HospSetup s = MakeHospSetup(300, /*use_cache=*/true);
  for (double d : {0.1, 0.5}) {
    ExperimentConfig config;
    config.num_tuples = 200;
    config.gen.duplicate_rate = d;
    config.gen.noise_rate = 0.2;
    config.gen.seed = 21;
    ExperimentResult result = RunInteractiveExperiment(
        s.engine.get(), s.master, s.non_master, config);
    EXPECT_NEAR(result.per_round[0].recall_t, d, 0.12)
        << "duplicate rate " << d;
  }
}

TEST(ExperimentTest, CacheReducesSuggestCost) {
  HospSetup cached = MakeHospSetup(200, /*use_cache=*/true);
  ExperimentConfig config;
  config.num_tuples = 80;
  config.gen.seed = 8;
  ExperimentResult with_cache = RunInteractiveExperiment(
      cached.engine.get(), cached.master, cached.non_master, config);
  // The cache must be exercised and mostly hit after warmup.
  EXPECT_GT(with_cache.cache.hits, 0u);
  EXPECT_GT(with_cache.cache.hits, with_cache.cache.misses);
}

TEST(ExperimentTest, DblpSmokeRun) {
  SchemaPtr schema = DblpWorkload::MakeSchema();
  Rng rng(31);
  Relation master = DblpWorkload::MakeMaster(schema, 200, &rng);
  Rng rng2(313);
  Relation non_master =
      DblpWorkload::MakeMaster(schema, 100, &rng2, 1000000);
  CertainFixOptions options;
  options.region.trials = 12;
  options.region.sample_masters = 24;
  CertainFixEngine engine(DblpWorkload::MakeRules(schema), master, options);

  ExperimentConfig config;
  config.num_tuples = 50;
  config.gen.seed = 5;
  ExperimentResult result =
      RunInteractiveExperiment(&engine, master, non_master, config);
  EXPECT_EQ(result.completed_tuples, config.num_tuples);
  EXPECT_DOUBLE_EQ(result.per_round.back().recall_t, 1.0);
  EXPECT_LE(result.avg_rounds, 4.0);
}

TEST(ExperimentTest, IncRepBaselineScores) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(23);
  Relation master = HospWorkload::MakeMaster(schema, 150, &rng);
  Rng rng2(232);
  Relation non_master =
      HospWorkload::MakeMaster(schema, 80, &rng2, 1000000);
  CfdSet cfds = HospWorkload::MakeCfdsFromMaster(schema, master, 150);

  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.5;
  gen_options.noise_rate = 0.2;
  gen_options.seed = 99;
  DirtyGenerator gen(master, non_master, gen_options);
  std::vector<DirtyPair> pairs = gen.Generate(100);

  BaselineResult result = RunIncRepBaseline(cfds, pairs);
  EXPECT_GT(result.cells_changed, 0u);
  EXPECT_GT(result.recall_a, 0.0);
  EXPECT_GT(result.f_measure, 0.0);
  EXPECT_LE(result.f_measure, 1.0);
  // IncRep has no certainty guarantee: precision below 1 is expected once
  // noise touches lhs attributes.
  EXPECT_LE(result.precision_a, 1.0);
}

TEST(ExperimentTest, HighNoiseHurtsIncRepMoreThanCertainFix) {
  // Fig. 11c/f shape: at high n%, IncRep's F-measure degrades while
  // CertainFix stays precise.
  SchemaPtr schema = HospWorkload::MakeSchema();
  Rng rng(29);
  Relation master = HospWorkload::MakeMaster(schema, 150, &rng);
  Rng rng2(291);
  Relation non_master =
      HospWorkload::MakeMaster(schema, 80, &rng2, 1000000);
  CfdSet cfds = HospWorkload::MakeCfdsFromMaster(schema, master, 150);

  auto baseline_at = [&](double noise) {
    DirtyGenOptions gen_options;
    gen_options.duplicate_rate = 0.3;
    gen_options.noise_rate = noise;
    gen_options.seed = 7;
    DirtyGenerator gen(master, non_master, gen_options);
    return RunIncRepBaseline(cfds, gen.Generate(80));
  };
  BaselineResult low = baseline_at(0.1);
  BaselineResult high = baseline_at(0.5);
  EXPECT_LE(high.precision_a, low.precision_a + 0.15);
}

TEST(ExperimentTest, BatchRepairExperimentIsThreadIndependent) {
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(17);
  Relation master = HospWorkload::MakeMaster(schema, 200, &rng);
  Rng rng2(9090);
  Relation non_master = HospWorkload::MakeMaster(schema, 100, &rng2, 1000000);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);

  AttrSet trusted;
  trusted.Add(*schema->IndexOf("id"));
  trusted.Add(*schema->IndexOf("mCode"));
  ExperimentConfig config;
  config.num_tuples = 80;
  config.gen.seed = 5;

  RepairOptions sequential;
  BatchExperimentResult base = RunBatchRepairExperiment(
      sat, master, non_master, trusted, config, sequential);
  EXPECT_EQ(base.num_tuples, 80u);
  EXPECT_GT(base.repair.tuples_fully_covered, 0u);
  // Only corrupted cells get touched, and only with certain fixes.
  EXPECT_EQ(base.precision_a, 1.0);
  EXPECT_GT(base.tuples_per_second, 0.0);

  RepairOptions parallel;
  parallel.num_threads = 4;
  BatchExperimentResult mt = RunBatchRepairExperiment(
      sat, master, non_master, trusted, config, parallel);
  EXPECT_EQ(mt.repair.tuples_fully_covered, base.repair.tuples_fully_covered);
  EXPECT_EQ(mt.repair.cells_changed, base.repair.cells_changed);
  EXPECT_EQ(mt.f_measure, base.f_measure);
  ASSERT_EQ(mt.repair.repaired.size(), base.repair.repaired.size());
  for (size_t i = 0; i < base.repair.repaired.size(); ++i) {
    EXPECT_EQ(mt.repair.repaired.at(i), base.repair.repaired.at(i));
  }
}

}  // namespace
}  // namespace certfix
