#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/timer.h"

namespace certfix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad attribute");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad attribute");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad attribute");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::ParseError("").code());
  codes.insert(Status::Inconsistent("").code());
  codes.insert(Status::NotCovered("").code());
  codes.insert(Status::Unsupported("").code());
  codes.insert(Status::Internal("").code());
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

Status FailIfNegative(int v) {
  CERTFIX_RETURN_NOT_OK(v < 0 ? Status::OutOfRange("negative")
                              : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailIfNegative(1).ok());
  EXPECT_FALSE(FailIfNegative(-1).ok());
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

TEST(ResultTest, ValueAccess) {
  Result<int> r = HalfOf(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOrDie(), 5);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = HalfOf(3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> QuarterOf(int v) {
  CERTFIX_ASSIGN_OR_RETURN(int half, HalfOf(v));
  CERTFIX_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // second step fails
  EXPECT_FALSE(QuarterOf(5).ok());  // first step fails
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r = std::string("abc");
  std::string out;
  ASSERT_TRUE(std::move(r).Value(&out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  Rng c(100);
  bool any_diff = false;
  Rng a2(99);
  for (int i = 0; i < 50; ++i) {
    any_diff |= (a2.Uniform(0, 1000) != c.Uniform(0, 1000));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, StringGenerators) {
  Rng rng(5);
  std::string alpha = rng.AlphaString(12);
  EXPECT_EQ(alpha.size(), 12u);
  for (char c : alpha) EXPECT_TRUE(c >= 'a' && c <= 'z');
  std::string digits = rng.DigitString(6);
  for (char c : digits) EXPECT_TRUE(c >= '0' && c <= '9');
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  double s = timer.Seconds();
  EXPECT_GT(s, 0.0);
  // Monotone: successive reads never decrease; unit conversions agree.
  double ms = timer.Millis();
  EXPECT_GE(ms, s * 1e3);
  EXPECT_GE(timer.Micros(), ms * 1e3);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), s + 1.0);
}

TEST(LoggingTest, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are dropped silently (no crash, no output
  // assertion possible without capturing stderr; exercise the macro).
  CERTFIX_LOG(kDebug) << "dropped";
  CERTFIX_LOG(kError) << "emitted";
  SetLogLevel(old);
}

}  // namespace
}  // namespace certfix
