/// \file telemetry_test.cc
/// \brief Telemetry layer: histogram buckets and percentiles against a
/// brute-force sorted-vector oracle, exact multi-threaded counter
/// folding, span-stream well-formedness, and byte-deterministic
/// registry snapshots.

#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/clock.h"
#include "telemetry/trace.h"

namespace certfix {
namespace telemetry {
namespace {

// Deterministic value stream (tests must not consult the OS RNG).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }

 private:
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Histogram buckets

// The documented contract: the bucket representative (upper bound) is
// never below the value and overshoots by at most a quarter of it
// (exactly representable below 4).
TEST(HistogramBucketTest, UpperBoundWithinQuarterOfValue) {
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int p = 2; p < 63; ++p) {
    uint64_t pow = uint64_t{1} << p;
    values.push_back(pow - 1);
    values.push_back(pow);
    values.push_back(pow + 1);
  }
  Lcg lcg(7);
  for (int i = 0; i < 1000; ++i) values.push_back(lcg.Next());
  for (uint64_t v : values) {
    size_t idx = Histogram::BucketOf(v);
    ASSERT_LT(idx, Histogram::kBuckets) << v;
    uint64_t upper = Histogram::BucketUpper(idx);
    EXPECT_GE(upper, v);
    EXPECT_LE(upper, v + v / 4 + 1) << v;
    if (v < 4) {
      EXPECT_EQ(upper, v);
    }
  }
}

TEST(HistogramBucketTest, BucketIndexIsMonotone) {
  size_t prev = 0;
  for (uint64_t v = 0; v < (1u << 16); ++v) {
    size_t idx = Histogram::BucketOf(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

// Every bucket's upper bound must map back into its own bucket.
TEST(HistogramBucketTest, UpperBoundRoundTrips) {
  for (size_t idx = 0; idx < 252; ++idx) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpper(idx)), idx) << idx;
  }
}

// ---------------------------------------------------------------------------
// Histogram percentiles vs a sorted-vector oracle

// Nearest-rank percentile over the raw samples.
uint64_t OraclePercentile(std::vector<uint64_t> sorted, double q) {
  size_t rank = static_cast<size_t>(
      std::max<double>(1.0, q * static_cast<double>(sorted.size()) + 0.999999));
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

TEST(HistogramTest, PercentilesTrackSortedVectorOracle) {
  Lcg lcg(42);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{10}, size_t{1000},
                   size_t{4097}}) {
    Histogram h;
    std::vector<uint64_t> samples;
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      // Mixed magnitudes: sub-microsecond up to ~seconds in nanoseconds.
      uint64_t v = lcg.Next() % (i % 3 == 0 ? 1000u : 2000000000u);
      samples.push_back(v);
      sum += v;
      h.Record(v);
    }
    std::sort(samples.begin(), samples.end());
    HistogramSnapshot s = h.Snap();
    EXPECT_EQ(s.count, n);
    EXPECT_EQ(s.sum, sum);
    EXPECT_EQ(s.max, samples.back());
    const struct {
      double q;
      uint64_t got;
    } checks[] = {{0.50, s.p50}, {0.90, s.p90}, {0.99, s.p99}};
    for (const auto& c : checks) {
      uint64_t want = OraclePercentile(samples, c.q);
      EXPECT_GE(c.got, want) << "n=" << n << " q=" << c.q;
      EXPECT_LE(c.got, want + want / 4 + 1) << "n=" << n << " q=" << c.q;
    }
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  HistogramSnapshot s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
}

// ---------------------------------------------------------------------------
// Striped counters: folding is exact once writers have joined

TEST(CounterTest, MultiThreadedFoldIsExact) {
  Counter c;
  Gauge g;
  MaxGauge m;
  constexpr int kThreads = 8;
  constexpr uint64_t kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kIters; ++i) {
        c.Increment();
        c.Add(static_cast<uint64_t>(t));
        g.Add(i % 2 == 0 ? 3 : -2);
        m.Note(static_cast<uint64_t>(t) * kIters + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  // Sum over threads of (kIters ones + kIters * t).
  uint64_t want = kThreads * kIters +
                  kIters * (kThreads * (kThreads - 1) / 2);
  EXPECT_EQ(c.Value(), want);
  // Per thread: kIters/2 adds of +3 and kIters/2 adds of -2.
  EXPECT_EQ(g.Value(), kThreads * (static_cast<int64_t>(kIters) / 2));
  EXPECT_EQ(m.Value(), static_cast<uint64_t>(kThreads - 1) * kIters +
                           (kIters - 1));
}

// ---------------------------------------------------------------------------
// Registry + handles

TEST(RegistryTest, SnapshotIsByteDeterministic) {
  ScopedRegistry scoped;
  Registry* r = Registry::Global();
  r->GetCounter("beta")->Add(1);
  r->GetCounter("alpha")->Add(3);
  r->GetGauge("level")->Add(-2);
  Histogram* h = r->GetHistogram("lat");
  h->Record(0);
  h->Record(1);
  h->Record(2);
  r->GetMaxGauge("high")->Note(9);
  std::string first = r->ToJson();
  std::string second = r->ToJson();
  EXPECT_EQ(first, second);
  // The exact bytes are part of the contract (golden metrics fixtures
  // pin them): sorted names, fixed field order, trailing newline.
  EXPECT_EQ(first,
            "{\n"
            "  \"counters\": {\n"
            "    \"alpha\": 3,\n"
            "    \"beta\": 1\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"level\": -2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"lat\": {\"count\": 3, \"max\": 2, \"p50\": 1, "
            "\"p90\": 2, \"p99\": 2, \"sum\": 3}\n"
            "  },\n"
            "  \"max_gauges\": {\n"
            "    \"high\": 9\n"
            "  }\n"
            "}\n");
}

TEST(RegistryTest, EmptyRegistryRendersEmptySections) {
  ScopedRegistry scoped;
  EXPECT_EQ(Registry::Global()->ToJson(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {},\n"
            "  \"max_gauges\": {}\n"
            "}\n");
}

// Thread-local handles must chase registry swaps (the generation
// protocol), not keep feeding a stale registry.
TEST(RegistryTest, ThreadLocalHandlesFollowScopedRegistrySwaps) {
  // One call site (one cached handle) driven under three registries in
  // turn: the cached pointer must be re-resolved on every swap.
  auto add = [](uint64_t n) { CERTFIX_TL_COUNTER("swap.count")->Add(n); };
  ScopedRegistry outer;
  add(1);
  {
    ScopedRegistry inner;
    add(5);
    EXPECT_EQ(Registry::Global()->GetCounter("swap.count")->Value(), 5u);
  }
  add(1);
  EXPECT_EQ(Registry::Global()->GetCounter("swap.count")->Value(), 2u);
}

TEST(ScopedLatencyTest, DisabledRecordsNothing) {
  ScopedRegistry scoped;
  Histogram* h = Registry::Global()->GetHistogram("gated");
  {
    ScopedEnabled off(false);
    ScopedLatency latency(h);
  }
  EXPECT_EQ(h->Snap().count, 0u);
  { ScopedLatency latency(h); }
  EXPECT_EQ(h->Snap().count, 1u);
}

TEST(ScopedLatencyTest, FakeClockZeroesDurations) {
  ScopedRegistry scoped;
  ScopedFakeClock fake(true);
  Histogram* h = Registry::Global()->GetHistogram("fake");
  { ScopedLatency latency(h); }
  HistogramSnapshot s = h->Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

// ---------------------------------------------------------------------------
// Tracer: exported span streams are well-formed

struct ParsedEvent {
  char phase = '?';
  int tid = -1;
  double ts = 0;
};

// Pulls phase/tid/ts out of the one-event-per-line export format.
std::vector<ParsedEvent> ParseTrace(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    size_t ph = line.find("\"ph\": \"");
    if (ph == std::string::npos) continue;
    ParsedEvent e;
    e.phase = line[ph + 7];
    size_t ts = line.find("\"ts\": ");
    size_t tid = line.find("\"tid\": ");
    EXPECT_NE(ts, std::string::npos) << line;
    EXPECT_NE(tid, std::string::npos) << line;
    e.ts = std::stod(line.substr(ts + 6));
    e.tid = std::stoi(line.substr(tid + 7));
    events.push_back(e);
  }
  return events;
}

TEST(TracerTest, ConcurrentSpansExportWellFormed) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        CERTFIX_SPAN("outer");
        CERTFIX_SPAN("middle");
        { CERTFIX_SPAN("inner"); }
        { CERTFIX_SPAN("inner"); }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::string json = tracer.ExportJson();
  tracer.Disable();

  std::vector<ParsedEvent> events = ParseTrace(json);
  EXPECT_EQ(events.size(), kThreads * 50u * 4u * 2u);
  // Per thread: depth never goes negative, ends balanced, timestamps
  // are monotone non-decreasing in buffer order.
  std::set<int> tids;
  for (const ParsedEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  for (int tid : tids) {
    int depth = 0;
    double last_ts = 0;
    for (const ParsedEvent& e : events) {
      if (e.tid != tid) continue;
      depth += e.phase == 'B' ? 1 : -1;
      EXPECT_GE(depth, 0);
      EXPECT_GE(e.ts, last_ts);
      last_ts = e.ts;
    }
    EXPECT_EQ(depth, 0) << "tid " << tid;
  }
}

// A full buffer drops whole spans, never half of one, and the export
// stays balanced.
TEST(TracerTest, FullBufferDropsWholeSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    CERTFIX_SPAN("crowded");
  }
  EXPECT_GT(tracer.dropped(), 0u);
  std::vector<ParsedEvent> events = ParseTrace(tracer.ExportJson());
  tracer.Disable();
  size_t begins = 0;
  size_t ends = 0;
  for (const ParsedEvent& e : events) {
    (e.phase == 'B' ? begins : ends)++;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0u);
}

// Open spans at export time are skipped, keeping the stream balanced.
TEST(TracerTest, OpenSpansAreSkippedAtExport) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  std::string json;
  {
    CERTFIX_SPAN("open");
    { CERTFIX_SPAN("closed"); }
    json = tracer.ExportJson();
  }
  tracer.Disable();
  std::vector<ParsedEvent> events = ParseTrace(json);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_NE(json.find("closed"), std::string::npos);
}

}  // namespace
}  // namespace telemetry
}  // namespace certfix
