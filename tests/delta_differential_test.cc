/// \file delta_differential_test.cc
/// \brief Property-based differential tests of the incremental engine:
/// after any delta sequence, DeltaRepairEngine state must be byte-identical
/// to a from-scratch BatchRepair over the final input and master — at
/// 1/2/8 shards.
///
/// The property test draws a random master, a random rule subset, a random
/// initial relation, and a 500+-step delta sequence (all six DeltaKinds)
/// from one seed, checking the oracle every K steps. The base seed comes
/// from CERTFIX_PROPERTY_SEED (default fixed for PR CI); under
/// --gtest_repeat each iteration shifts the seed, which the Release CI leg
/// uses as a randomized soak.

#include "incremental/delta_repair.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_repair.h"
#include "relational/csv.h"
#include "test_util.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

std::string ToCsv(const Relation& rel) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCsv(rel, out).ok());
  return out.str();
}

/// From-scratch oracle: BatchRepair over the engine's current input and
/// master. Also cross-checks the engine's live counters.
void ExpectMatchesScratch(DeltaRepairEngine* engine, const RuleSet& rules,
                          AttrSet trusted, const std::string& label) {
  Relation final_input = engine->SnapshotInput();
  Relation final_master = engine->master();  // quiescent after the flush
  MasterIndex index(rules, final_master);
  Saturator sat(rules, final_master, index);
  BatchRepairResult batch = BatchRepair(sat).Repair(final_input, trusted);

  ASSERT_EQ(ToCsv(engine->SnapshotRepaired()), ToCsv(batch.repaired))
      << label;
  EXPECT_EQ(engine->ConflictPositions(), batch.conflict_rows) << label;
  DeltaRepairStats stats = engine->stats();
  EXPECT_EQ(stats.rows, final_input.size()) << label;
  EXPECT_EQ(stats.fully_covered, batch.tuples_fully_covered) << label;
  EXPECT_EQ(stats.partial, batch.tuples_partial) << label;
  EXPECT_EQ(stats.untouched, batch.tuples_untouched) << label;
  EXPECT_EQ(stats.conflicting, batch.tuples_conflicting) << label;
  EXPECT_EQ(stats.cells_changed, batch.cells_changed) << label;
}

// ---------------------------------------------------------------------------
// Deterministic supplier-fixture test: every delta kind, scripted.

class DeltaSupplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
};

TEST_F(DeltaSupplierTest, ScriptedDeltasMatchScratchAcrossShardCounts) {
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  for (size_t shards : {1, 2, 8}) {
    DeltaRepairOptions options;
    options.num_shards = shards;
    DeltaRepairEngine engine(rules_, dm_, trusted, options);
    std::string label = "shards=" + std::to_string(shards);

    Relation data(r_);
    ASSERT_TRUE(data.Append(T1(r_)).ok());
    ASSERT_TRUE(data.Append(T3(r_)).ok());
    ASSERT_TRUE(data.Append(T4(r_)).ok());
    ASSERT_TRUE(engine.Load(data).ok());
    ExpectMatchesScratch(&engine, rules_, trusted, label + " after load");

    // Input deltas: insert, self-identical update (must be a no-op),
    // real update, delete.
    ASSERT_TRUE(engine.Insert(T2(r_)).ok());
    ASSERT_TRUE(engine.Update(0, T1(r_)).ok());
    EXPECT_EQ(engine.stats().noop_updates, 1u) << label;
    ASSERT_TRUE(engine.Update(1, T1(r_)).ok());
    ASSERT_TRUE(engine.Delete(2).ok());
    ExpectMatchesScratch(&engine, rules_, trusted,
                         label + " after input deltas");

    // Master upsert changing s1's street: tuples repaired from s1 must be
    // re-repaired; the oracle sees the new value.
    Tuple s1 = dm_.at(0);
    Tuple s1_new(rm_, dm_.pool());
    for (size_t a = 0; a < rm_->num_attrs(); ++a) {
      s1_new.Set(static_cast<AttrId>(a), s1.at(static_cast<AttrId>(a)));
    }
    s1_new.Set(A(rm_, "str"), Value::Str("99 New Row"));
    ASSERT_TRUE(engine.MasterUpdate(0, s1_new).ok());
    ExpectMatchesScratch(&engine, rules_, trusted,
                         label + " after master update");
    EXPECT_GT(engine.stats().tuples_invalidated, 0u) << label;

    // Master insert introducing a brand-new zip, then an input tuple that
    // needs it (the probe-recorded-on-empty-answer case is the update
    // below: T4's zip never matched the master until now).
    Tuple s3(rm_, dm_.pool());
    ASSERT_TRUE(dm_.size() >= 2);
    Tuple s2 = dm_.at(1);
    for (size_t a = 0; a < rm_->num_attrs(); ++a) {
      s3.Set(static_cast<AttrId>(a), s2.at(static_cast<AttrId>(a)));
    }
    s3.Set(A(rm_, "zip"), Value::Str("G1 1AA"));
    s3.Set(A(rm_, "AC"), Value::Str("041"));
    s3.Set(A(rm_, "city"), Value::Str("Gla"));
    s3.Set(A(rm_, "str"), Value::Str("5 Oak Ln"));
    ASSERT_TRUE(engine.MasterInsert(s3).ok());
    ExpectMatchesScratch(&engine, rules_, trusted,
                         label + " after master insert");

    // Master delete: drop s2; tuples that matched it fall back.
    ASSERT_TRUE(engine.MasterDelete(1).ok());
    ExpectMatchesScratch(&engine, rules_, trusted,
                         label + " after master delete");
  }
}

TEST_F(DeltaSupplierTest, MasterInsertRepairsPreviouslyUnmatchedTuple) {
  // T4 matches no master row at load time; the repair must still record
  // its (empty-answer) probes so this master insert invalidates it.
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  DeltaRepairEngine engine(rules_, dm_, trusted);
  ASSERT_TRUE(engine.Insert(T4(r_)).ok());
  Relation before = engine.SnapshotRepaired();
  EXPECT_EQ(before.Cell(0, A(r_, "city")).as_string(), "Gla");

  Tuple s3(rm_, dm_.pool());
  Tuple s1 = dm_.at(0);
  for (size_t a = 0; a < rm_->num_attrs(); ++a) {
    s3.Set(static_cast<AttrId>(a), s1.at(static_cast<AttrId>(a)));
  }
  s3.Set(A(rm_, "zip"), Value::Str("G1 1AA"));
  s3.Set(A(rm_, "AC"), Value::Str("0131"));
  s3.Set(A(rm_, "Hphn"), Value::Str("9999999"));
  s3.Set(A(rm_, "str"), Value::Str("7 Birch Way"));
  s3.Set(A(rm_, "city"), Value::Str("Glasgow"));
  ASSERT_TRUE(engine.MasterInsert(s3).ok());
  EXPECT_EQ(engine.stats().tuples_invalidated, 1u);
  Relation after = engine.SnapshotRepaired();
  EXPECT_EQ(after.Cell(0, A(r_, "str")).as_string(), "7 Birch Way");
  ExpectMatchesScratch(&engine, rules_, trusted, "unmatched-then-insert");
}

TEST_F(DeltaSupplierTest, RejectsBadPositionsAndSchemas) {
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  DeltaRepairEngine engine(rules_, dm_, trusted);
  ASSERT_TRUE(engine.Insert(T1(r_)).ok());
  EXPECT_FALSE(engine.Update(1, T1(r_)).ok());  // out of range
  EXPECT_FALSE(engine.Delete(7).ok());
  EXPECT_FALSE(engine.MasterUpdate(99, dm_.at(0)).ok());
  EXPECT_FALSE(engine.MasterDelete(99).ok());
  // Wrong-schema tuples are refused on every mutation entry point.
  SchemaPtr narrow = Schema::Make("N", std::vector<std::string>{"a"});
  Tuple bad(narrow);
  EXPECT_FALSE(engine.Insert(bad).ok());
  EXPECT_FALSE(engine.Update(0, bad).ok());
  EXPECT_FALSE(engine.MasterInsert(bad).ok());
  EXPECT_FALSE(engine.MasterUpdate(0, bad).ok());
  // The engine is still healthy afterwards.
  ASSERT_TRUE(engine.Update(0, T3(r_)).ok());
  ExpectMatchesScratch(&engine, rules_, trusted, "after rejected deltas");
}

TEST_F(DeltaSupplierTest, SelfIdenticalMasterUpsertSkipsTheBarrier) {
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  DeltaRepairEngine engine(rules_, dm_, trusted);
  ASSERT_TRUE(engine.Insert(T1(r_)).ok());
  ASSERT_TRUE(engine.MasterUpdate(0, dm_.at(0)).ok());
  DeltaRepairStats stats = engine.stats();
  EXPECT_EQ(stats.noop_updates, 1u);
  EXPECT_EQ(stats.master_rebuilds, 0u);
  EXPECT_EQ(stats.tuples_invalidated, 0u);
}

TEST_F(DeltaSupplierTest, IrrelevantMasterUpdateInvalidatesNothing) {
  // DOB/gender appear in no rule's master side: RulesReadingMasterAttrs
  // prunes the delta to zero invalidations and zero rebuilds.
  AttrSet trusted = Attrs(r_, {"AC", "phn", "type", "zip"});
  DeltaRepairEngine engine(rules_, dm_, trusted);
  Relation data(r_);
  ASSERT_TRUE(data.Append(T1(r_)).ok());
  ASSERT_TRUE(data.Append(T3(r_)).ok());
  ASSERT_TRUE(engine.Load(data).ok());
  engine.Flush();

  Tuple s1 = dm_.at(0);
  Tuple s1_new(rm_, dm_.pool());
  for (size_t a = 0; a < rm_->num_attrs(); ++a) {
    s1_new.Set(static_cast<AttrId>(a), s1.at(static_cast<AttrId>(a)));
  }
  s1_new.Set(A(rm_, "DOB"), Value::Str("12/12/55"));
  s1_new.Set(A(rm_, "gender"), Value::Str("F"));
  ASSERT_TRUE(engine.MasterUpdate(0, s1_new).ok());
  DeltaRepairStats stats = engine.stats();
  EXPECT_EQ(stats.tuples_invalidated, 0u);
  EXPECT_EQ(stats.master_rebuilds, 0u);
  EXPECT_EQ(stats.tuples_repaired, 2u);  // only the initial load
  ExpectMatchesScratch(&engine, rules_, trusted, "irrelevant master update");
}

// ---------------------------------------------------------------------------
// Property test: random relations, random rule subsets, 500+-step delta
// sequences, oracle check every K steps, at 1/2/8 shards.

uint64_t BaseSeed() {
  const char* env = std::getenv("CERTFIX_PROPERTY_SEED");
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return 20260729;
}

/// Seed shift per in-process iteration so --gtest_repeat soaks different
/// sequences while a single run stays reproducible.
uint64_t NextSeed() {
  static uint64_t iteration = 0;
  return BaseSeed() + 1009 * iteration++;
}

struct PropertyWorld {
  SchemaPtr schema;
  RuleSet rules;              // random subset of the HOSP rules
  Relation master;
  Relation insert_pool;       // dirty rows to insert/update with
  Relation master_pool;       // fresh master rows to insert
  AttrSet trusted;
};

PropertyWorld MakeWorld(uint64_t seed) {
  PropertyWorld w;
  w.schema = HospWorkload::MakeSchema();
  RuleSet all_rules = HospWorkload::MakeRules(w.schema);
  Rng rng(seed);

  // Random rule subset (>= 6 rules so repairs stay interesting).
  w.rules = RuleSet(w.schema, w.schema);
  std::vector<size_t> picks;
  for (size_t i = 0; i < all_rules.size(); ++i) picks.push_back(i);
  rng.Shuffle(&picks);
  size_t keep = 6 + rng.Index(all_rules.size() - 5);
  picks.resize(keep);
  std::sort(picks.begin(), picks.end());
  for (size_t i : picks) {
    EXPECT_TRUE(w.rules.Add(all_rules.at(i)).ok());
  }

  w.master = HospWorkload::MakeMaster(w.schema, 60 + rng.Index(40), &rng);
  Rng rng2(seed * 31 + 7);
  Relation non_master =
      HospWorkload::MakeMaster(w.schema, 60, &rng2, 500000);
  Rng rng3(seed * 131 + 3);
  w.master_pool = HospWorkload::MakeMaster(w.schema, 64, &rng3, 900000);

  w.trusted.Add(*w.schema->IndexOf("id"));
  w.trusted.Add(*w.schema->IndexOf("mCode"));

  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.6;
  gen_options.noise_rate = 0.4;
  gen_options.protected_attrs = w.trusted;
  gen_options.seed = seed * 7 + 1;
  DirtyGenerator gen(w.master, non_master, gen_options);
  w.insert_pool = Relation(w.schema);
  for (const DirtyPair& pair : gen.Generate(700)) {
    EXPECT_TRUE(w.insert_pool.Append(pair.dirty).ok());
  }
  return w;
}

/// One random delta applied to `engine`. Mirrors nothing — the oracle is
/// the from-scratch BatchRepair, so the generator only needs validity
/// (positions in range, master never emptied).
void ApplyRandomDelta(DeltaRepairEngine* engine, PropertyWorld* w, Rng* rng,
                      size_t* next_insert, size_t* next_master_insert) {
  double roll = rng->NextDouble();
  size_t rows = engine->size();
  if (roll < 0.30 || rows == 0) {  // insert
    const Relation& pool = w->insert_pool;
    ASSERT_TRUE(
        engine->Insert(pool.at(*next_insert % pool.size())).ok());
    ++*next_insert;
  } else if (roll < 0.60) {  // update
    size_t pos = rng->Index(rows);
    if (rng->NextDouble() < 0.15) {
      // Point edit: corrupt one attribute of the current row.
      Relation input = engine->SnapshotInput();
      Tuple t(w->schema, input.pool());
      for (size_t a = 0; a < w->schema->num_attrs(); ++a) {
        t.Set(static_cast<AttrId>(a), input.Cell(pos, static_cast<AttrId>(a)));
      }
      AttrId attr = static_cast<AttrId>(rng->Index(w->schema->num_attrs()));
      t.Set(attr, Value::Str(rng->AlphaString(6)));
      ASSERT_TRUE(engine->Update(pos, t).ok());
    } else {
      const Relation& pool = w->insert_pool;
      ASSERT_TRUE(
          engine->Update(pos, pool.at(*next_insert % pool.size())).ok());
      ++*next_insert;
    }
  } else if (roll < 0.75) {  // delete
    ASSERT_TRUE(engine->Delete(rng->Index(rows)).ok());
  } else if (roll < 0.85) {  // master insert
    const Relation& pool = w->master_pool;
    ASSERT_TRUE(
        engine->MasterInsert(pool.at(*next_master_insert % pool.size()))
            .ok());
    ++*next_master_insert;
  } else if (roll < 0.95) {  // master update
    const Relation& dm = engine->master();
    size_t pos = rng->Index(dm.size());
    // Private pool: interning into dm's live pool would race the shard
    // workers reading it (the master() contract).
    Tuple t(w->schema);
    for (size_t a = 0; a < w->schema->num_attrs(); ++a) {
      t.Set(static_cast<AttrId>(a), dm.Cell(pos, static_cast<AttrId>(a)));
    }
    AttrId attr = static_cast<AttrId>(rng->Index(w->schema->num_attrs()));
    if (rng->NextDouble() < 0.5) {
      t.Set(attr, Value::Str(rng->AlphaString(5)));
    }  // else: self-identical upsert — must be a no-op
    ASSERT_TRUE(engine->MasterUpdate(pos, t).ok());
  } else {  // master delete (keep a handful of rows)
    const Relation& dm = engine->master();
    if (dm.size() > 5) {
      ASSERT_TRUE(engine->MasterDelete(rng->Index(dm.size())).ok());
    }
  }
}

TEST(DeltaPropertyTest, RandomDeltaSequencesMatchScratchAtEveryShardCount) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (set CERTFIX_PROPERTY_SEED to reproduce)");
  PropertyWorld w = MakeWorld(seed);

  constexpr size_t kSteps = 520;
  constexpr size_t kCheckEvery = 65;
  // The memo-off legs replay the identical sequence: byte-equal finals
  // prove memoization (and its master-delta flush chain) is invisible.
  struct RunConfig {
    size_t shards;
    bool memo;
  };
  const std::vector<RunConfig> runs = {
      {1, true}, {2, true}, {8, true}, {1, false}, {8, false}};
  std::vector<std::string> final_csv;
  for (const RunConfig& run : runs) {
    const size_t shards = run.shards;
    DeltaRepairOptions options;
    options.num_shards = shards;
    options.queue_capacity = 16;
    options.use_memo = run.memo;
    DeltaRepairEngine engine(w.rules, w.master, w.trusted, options);

    // Same per-shard-count RNG so all three runs see one sequence.
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    size_t next_insert = 0;
    size_t next_master_insert = 0;

    Relation initial(w.schema);
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(initial.Append(w.insert_pool.at(i)).ok());
    }
    next_insert = 40;
    ASSERT_TRUE(engine.Load(initial).ok());

    for (size_t step = 1; step <= kSteps; ++step) {
      ASSERT_NO_FATAL_FAILURE(ApplyRandomDelta(&engine, &w, &rng,
                                               &next_insert,
                                               &next_master_insert));
      if (step % kCheckEvery == 0) {
        ASSERT_NO_FATAL_FAILURE(ExpectMatchesScratch(
            &engine, w.rules, w.trusted,
            "shards=" + std::to_string(shards) +
                " step=" + std::to_string(step)));
      }
    }
    ExpectMatchesScratch(&engine, w.rules, w.trusted,
                         "shards=" + std::to_string(shards) + " final");
    final_csv.push_back(ToCsv(engine.SnapshotRepaired()));

    // The incremental claim itself: far fewer repairs than a re-run of
    // everything per delta would cost.
    DeltaRepairStats stats = engine.stats();
    EXPECT_LE(stats.tuples_repaired,
              40 + kSteps + stats.tuples_invalidated);
    if (run.memo) {
      // Every repair either replayed or was computed-and-recorded.
      EXPECT_EQ(stats.memo_hits + stats.memo_misses, stats.tuples_repaired);
    } else {
      EXPECT_EQ(stats.memo_hits, 0u);
      EXPECT_EQ(stats.memo_misses, 0u);
    }
  }
  // Every shard count and memo mode walked the same sequence to the
  // same bytes.
  for (size_t i = 1; i < final_csv.size(); ++i) {
    EXPECT_EQ(final_csv[0], final_csv[i])
        << "run " << i << " (shards=" << runs[i].shards << " memo="
        << runs[i].memo << ") diverged";
  }
}

}  // namespace
}  // namespace certfix
