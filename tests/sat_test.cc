#include "solver/sat.h"

#include <gtest/gtest.h>

namespace certfix {
namespace {

TEST(CnfTest, SatisfiedEvaluation) {
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1, -2, 3}, {-1, 2, 3}};
  EXPECT_TRUE(f.Satisfied({true, true, false}));
  EXPECT_FALSE(f.Satisfied({false, true, false}));
}

TEST(CnfTest, ToStringReadable) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{1, -2}};
  EXPECT_EQ(f.ToString(), "(x1 v !x2)");
}

TEST(DpllTest, SatisfiableFormula) {
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1, 2, 3}, {-1, 2, 3}, {1, -2, 3}, {1, 2, -3}};
  DpllSolver solver;
  auto model = solver.Solve(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(f.Satisfied(*model));
}

TEST(DpllTest, UnsatisfiableFormula) {
  // All eight sign combinations over three variables: unsatisfiable.
  CnfFormula f;
  f.num_vars = 3;
  for (int bits = 0; bits < 8; ++bits) {
    Clause c;
    for (int v = 1; v <= 3; ++v) {
      c.push_back(((bits >> (v - 1)) & 1) ? v : -v);
    }
    f.clauses.push_back(c);
  }
  DpllSolver solver;
  EXPECT_FALSE(solver.Solve(f).has_value());
}

TEST(DpllTest, EmptyFormulaSat) {
  CnfFormula f;
  f.num_vars = 2;
  DpllSolver solver;
  EXPECT_TRUE(solver.Solve(f).has_value());
}

TEST(DpllTest, UnitPropagationChains) {
  // x1; !x1 v x2; !x2 v x3  =>  all true.
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1}, {-1, 2}, {-2, 3}};
  DpllSolver solver;
  auto model = solver.Solve(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE((*model)[0]);
  EXPECT_TRUE((*model)[1]);
  EXPECT_TRUE((*model)[2]);
}

TEST(DpllTest, ContradictoryUnits) {
  CnfFormula f;
  f.num_vars = 1;
  f.clauses = {{1}, {-1}};
  DpllSolver solver;
  EXPECT_FALSE(solver.Solve(f).has_value());
}

TEST(DpllTest, CountModelsSmall) {
  // x1 v x2 over two variables: 3 models.
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{1, 2}};
  EXPECT_EQ(DpllSolver::CountModels(f), 3u);
  // Tautology-free empty formula: all 4.
  CnfFormula g;
  g.num_vars = 2;
  EXPECT_EQ(DpllSolver::CountModels(g), 4u);
}

TEST(DpllTest, SolveAgreesWithCountOnRandomInstances) {
  Rng rng(2024);
  DpllSolver solver;
  for (int trial = 0; trial < 60; ++trial) {
    CnfFormula f =
        RandomThreeSat(4 + static_cast<int>(rng.Uniform(0, 3)),
                       static_cast<int>(rng.Uniform(3, 20)), &rng);
    bool sat = solver.Solve(f).has_value();
    uint64_t models = DpllSolver::CountModels(f);
    EXPECT_EQ(sat, models > 0) << f.ToString();
  }
}

TEST(RandomThreeSatTest, ShapeInvariants) {
  Rng rng(7);
  CnfFormula f = RandomThreeSat(6, 12, &rng);
  EXPECT_EQ(f.num_vars, 6);
  EXPECT_EQ(f.clauses.size(), 12u);
  for (const Clause& c : f.clauses) {
    ASSERT_EQ(c.size(), 3u);
    // Three distinct variables.
    EXPECT_NE(std::abs(c[0]), std::abs(c[1]));
    EXPECT_NE(std::abs(c[0]), std::abs(c[2]));
    EXPECT_NE(std::abs(c[1]), std::abs(c[2]));
    for (Literal lit : c) {
      EXPECT_GE(std::abs(lit), 1);
      EXPECT_LE(std::abs(lit), 6);
    }
  }
}

}  // namespace
}  // namespace certfix
