/// \file csv_fuzz_test.cc
/// \brief Fuzz-style hardening of CsvRecordReader: seeded byte-level
/// truncation and mutation of well-formed CSV (quoted fields, CRLF,
/// embedded newlines) must never crash, hang, or return anything other
/// than parsed records or a clean ParseError. Covers the unquoted-quote
/// and EOF-inside-quote edges the example-based csv_stream_test misses.

#include "relational/csv_stream.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "relational/csv.h"
#include "util/random.h"

namespace certfix {
namespace {

/// Drains the reader. Asserts global sanity: progress on every record (no
/// infinite loop) and either success or a ParseError — never another code,
/// never a crash.
void DrainAndCheck(const std::string& input, const std::string& label) {
  std::istringstream in(input);
  CsvRecordReader reader(in);
  std::vector<std::string> fields;
  // A record consumes at least one byte, so this bound can only trip on a
  // no-progress loop.
  size_t max_records = input.size() + 2;
  size_t records = 0;
  for (;;) {
    Result<bool> got = reader.Next(&fields);
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kParseError) << label;
      break;
    }
    if (!*got) break;
    ++records;
    ASSERT_LE(records, max_records) << "reader loops without progress: "
                                    << label;
    for (const std::string& f : fields) {
      ASSERT_LE(f.size(), input.size()) << label;  // no runaway buffering
    }
  }
}

const char* kCorpus[] = {
    "a,b,c\n1,2,3\n",
    "a,b\n\"x,y\",\"z\"\"w\"\n",
    "h1,h2\r\n\"line\nbreak\",v\r\n",
    "\"all one quoted field with , and \r and \n inside\"\n",
    "no,trailing,newline",
    "\n\n\na,b\n\n",
    ",,,\n,,\n",
    "\"\",\"\",\"\"\n",
    "x\ny\nz\n",
};

TEST(CsvFuzzTest, TruncationsNeverCrash) {
  for (const char* base : kCorpus) {
    std::string s(base);
    for (size_t cut = 0; cut <= s.size(); ++cut) {
      DrainAndCheck(s.substr(0, cut),
                    "truncate@" + std::to_string(cut) + " of " + base);
    }
  }
}

TEST(CsvFuzzTest, SeededMutationsNeverCrash) {
  // Interesting bytes: the reader's entire alphabet of special cases.
  const char kBytes[] = {'"', ',', '\n', '\r', 'x', '\0', ' '};
  Rng rng(4242);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string s(kCorpus[rng.Index(std::size(kCorpus))]);
    int edits = 1 + static_cast<int>(rng.Index(4));
    for (int e = 0; e < edits && !s.empty(); ++e) {
      size_t pos = rng.Index(s.size() + 1);
      char b = kBytes[rng.Index(std::size(kBytes))];
      switch (rng.Index(3)) {
        case 0:  // flip
          if (pos < s.size()) s[pos] = b;
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos), b);
          break;
        default:  // delete
          if (pos < s.size()) s.erase(pos, 1);
          break;
      }
    }
    DrainAndCheck(s, "iter=" + std::to_string(iter) + ": " + s);
  }
}

TEST(CsvFuzzTest, EofInsideQuoteIsCleanParseError) {
  for (const char* bad : {"\"abc", "a,\"bc", "\"x\"\"", "\"\r\n", "f1,\""}) {
    std::istringstream in(bad);
    CsvRecordReader reader(in);
    std::vector<std::string> fields;
    // Earlier records (if any) may parse; the final one must fail cleanly.
    Result<bool> got = reader.Next(&fields);
    while (got.ok() && *got) got = reader.Next(&fields);
    ASSERT_FALSE(got.ok()) << bad;
    EXPECT_EQ(got.status().code(), StatusCode::kParseError) << bad;
    EXPECT_NE(got.status().message().find("unterminated"), std::string::npos)
        << bad;
  }
}

TEST(CsvFuzzTest, UnquotedQuoteMidFieldIsCleanParseError) {
  for (const char* bad : {"ab\"cd\n", "a,b\"\n", "x\"\"y\n"}) {
    std::istringstream in(bad);
    CsvRecordReader reader(in);
    std::vector<std::string> fields;
    Result<bool> got = reader.Next(&fields);
    ASSERT_FALSE(got.ok()) << bad;
    EXPECT_EQ(got.status().code(), StatusCode::kParseError) << bad;
    EXPECT_NE(got.status().message().find("quote"), std::string::npos) << bad;
  }
}

TEST(CsvFuzzTest, RoundTripSurvivesHostileValues) {
  // Values made of the reader's special bytes must round-trip through
  // FormatCsvLine -> CsvRecordReader unchanged.
  Rng rng(777);
  const char kBytes[] = {'"', ',', '\n', '\r', 'x', ' '};
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> fields(1 + rng.Index(5));
    for (auto& f : fields) {
      size_t len = rng.Index(8);
      for (size_t i = 0; i < len; ++i) {
        f += kBytes[rng.Index(std::size(kBytes))];
      }
    }
    // FormatCsvLine quotes any field containing CR/LF/quote/comma, so the
    // round trip is exact — except the one-empty-field record, which
    // renders as a blank line and is skipped by design.
    std::string line = FormatCsvLine(fields);
    std::istringstream in(line + "\n");
    CsvRecordReader reader(in);
    std::vector<std::string> back;
    Result<bool> got = reader.Next(&back);
    ASSERT_TRUE(got.ok()) << "iter=" << iter << " line=" << line;
    if (fields.size() == 1 && fields[0].empty()) {
      EXPECT_FALSE(*got) << "blank line should be skipped";
      continue;
    }
    ASSERT_TRUE(*got);
    EXPECT_EQ(back, fields) << "iter=" << iter << " line=" << line;
  }
}

}  // namespace
}  // namespace certfix
