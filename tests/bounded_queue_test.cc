#include "stream/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace certfix {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Push(4));
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 4);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));  // full
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 7);
}

TEST(BoundedQueueTest, PushBlocksUntilPopFreesSlot) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // must block: queue is full
    second_pushed = true;
  });
  // Give the producer a chance to reach (and block in) Push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_GE(q.blocked_pushes(), 1u);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueueTest, CloseDrainsThenPopFails) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  // Pushed-before-close items survive; pops drain them in order.
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed and empty
  EXPECT_FALSE(q.Pop(&v));  // stays closed
}

TEST(BoundedQueueTest, PushAfterCloseFails) {
  BoundedQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();  // producer must wake and report failure
  producer.join();
  EXPECT_FALSE(push_result.load());
  // The item enqueued before close is still poppable.
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.Pop(&v));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int v = 0;
    pop_result = q.Pop(&v);  // blocks: empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_FALSE(pop_result.load());
}

TEST(BoundedQueueTest, MpmcStressEveryItemDeliveredOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // small ring: forces contention + backpressure
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v)) {
        sum += v;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i + 1));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  constexpr long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.Push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.Pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace certfix
