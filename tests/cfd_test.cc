#include "cfd/cfd.h"

#include <gtest/gtest.h>

#include "cfd/violation.h"

namespace certfix {
namespace {

SchemaPtr S() {
  return Schema::Make(
      "R", std::vector<std::string>{"AC", "city", "zip", "name"});
}

// The motivating CFDs of Example 1: AC = 020 -> city = Ldn; AC = 131 ->
// city = Edi.
Cfd Cfd020(const SchemaPtr& s) {
  PatternTuple tp(s);
  tp.SetConst(0, Value::Str("020"));
  tp.SetConst(1, Value::Str("Ldn"));
  return std::move(Cfd::Make("ac020", s, {0}, 1, std::move(tp))).ValueOrDie();
}

Cfd VarCfd(const SchemaPtr& s) {
  // zip -> city with wildcard pattern: a plain FD as a variable CFD.
  PatternTuple tp(s);
  tp.SetWildcard(2);
  tp.SetWildcard(1);
  return std::move(Cfd::Make("zipcity", s, {2}, 1, std::move(tp)))
      .ValueOrDie();
}

Tuple T(const SchemaPtr& s, const std::vector<std::string>& f) {
  return std::move(Tuple::FromStrings(s, f)).ValueOrDie();
}

TEST(CfdTest, ConstructionValidation) {
  SchemaPtr s = S();
  // B in X rejected.
  PatternTuple tp(s);
  EXPECT_FALSE(Cfd::Make("bad", s, {1}, 1, tp).ok());
  // Pattern outside X + B rejected.
  PatternTuple tp2(s);
  tp2.SetConst(3, Value::Str("x"));
  EXPECT_FALSE(Cfd::Make("bad2", s, {0}, 1, std::move(tp2)).ok());
  // By-name resolution.
  Result<Cfd> ok = Cfd::MakeByName("ok", s, {"AC"}, "city", PatternTuple(s));
  EXPECT_TRUE(ok.ok());
}

TEST(CfdTest, ConstantClassification) {
  SchemaPtr s = S();
  EXPECT_TRUE(Cfd020(s).IsConstant());
  EXPECT_FALSE(VarCfd(s).IsConstant());
}

TEST(CfdTest, SingleTupleViolation) {
  SchemaPtr s = S();
  Cfd cfd = Cfd020(s);
  // Example 1: t1 with AC = 020 but city = Edi violates the constant CFD.
  EXPECT_TRUE(cfd.ViolatedBy(T(s, {"020", "Edi", "z", "n"})));
  EXPECT_FALSE(cfd.ViolatedBy(T(s, {"020", "Ldn", "z", "n"})));
  EXPECT_FALSE(cfd.ViolatedBy(T(s, {"131", "Edi", "z", "n"})));  // no match
}

TEST(CfdTest, PairViolationVariable) {
  SchemaPtr s = S();
  Cfd cfd = VarCfd(s);
  Tuple a = T(s, {"020", "Ldn", "NW1", "n1"});
  Tuple b = T(s, {"020", "Edi", "NW1", "n2"});
  Tuple c = T(s, {"020", "Ldn", "EH7", "n3"});
  EXPECT_TRUE(cfd.ViolatedBy(a, b));   // same zip, different city
  EXPECT_FALSE(cfd.ViolatedBy(a, c));  // different zip
  EXPECT_FALSE(cfd.ViolatedBy(a, a));
}

TEST(CfdTest, PairViolationWithConstantRhs) {
  SchemaPtr s = S();
  Cfd cfd = Cfd020(s);
  Tuple a = T(s, {"020", "Ldn", "z", "n"});
  Tuple b = T(s, {"020", "Edi", "z", "n"});
  EXPECT_TRUE(cfd.ViolatedBy(a, b));  // b deviates from the constant
}

TEST(ViolationTest, DetectConstant) {
  SchemaPtr s = S();
  CfdSet cfds(s);
  ASSERT_TRUE(cfds.Add(Cfd020(s)).ok());
  Relation rel(s);
  ASSERT_TRUE(rel.AppendStrings({"020", "Edi", "z1", "a"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"020", "Ldn", "z2", "b"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"131", "Edi", "z3", "c"}).ok());
  std::vector<Violation> v = DetectViolations(cfds, rel);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].tuple_a, 0u);
  EXPECT_EQ(v[0].tuple_b, -1);
  EXPECT_EQ(v[0].attr, 1u);
}

TEST(ViolationTest, DetectVariablePairs) {
  SchemaPtr s = S();
  CfdSet cfds(s);
  ASSERT_TRUE(cfds.Add(VarCfd(s)).ok());
  Relation rel(s);
  ASSERT_TRUE(rel.AppendStrings({"020", "Ldn", "NW1", "a"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"020", "Edi", "NW1", "b"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"131", "Edi", "EH7", "c"}).ok());
  std::vector<Violation> v = DetectViolations(cfds, rel);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].tuple_a, 0u);
  EXPECT_EQ(v[0].tuple_b, 1);
}

TEST(ViolationTest, CleanRelationHasNone) {
  SchemaPtr s = S();
  CfdSet cfds(s);
  ASSERT_TRUE(cfds.Add(Cfd020(s)).ok());
  ASSERT_TRUE(cfds.Add(VarCfd(s)).ok());
  Relation rel(s);
  ASSERT_TRUE(rel.AppendStrings({"020", "Ldn", "NW1", "a"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"131", "Edi", "EH7", "b"}).ok());
  EXPECT_EQ(CountViolations(cfds, rel), 0u);
}

TEST(ViolationTest, GroupsOnlyWithinPatternMatches) {
  SchemaPtr s = S();
  // Variable CFD with a constant lhs pattern: AC = 020 & zip -> city.
  PatternTuple tp(s);
  tp.SetConst(0, Value::Str("020"));
  Result<Cfd> cfd = Cfd::Make("gated", s, {0, 2}, 1, std::move(tp));
  ASSERT_TRUE(cfd.ok());
  CfdSet cfds(s);
  ASSERT_TRUE(cfds.Add(std::move(cfd).ValueOrDie()).ok());
  Relation rel(s);
  // Same zip but AC 131: outside the pattern, no violation.
  ASSERT_TRUE(rel.AppendStrings({"131", "Ldn", "NW1", "a"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"131", "Edi", "NW1", "b"}).ok());
  EXPECT_EQ(CountViolations(cfds, rel), 0u);
}

}  // namespace
}  // namespace certfix
