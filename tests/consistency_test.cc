#include "core/consistency.h"

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
  }

  // Region over named attrs with one concrete row built from a tuple.
  Region RegionFromTuple(const std::vector<std::string>& names,
                         const Tuple& t) {
    Region region = Region::Of(r_, Attrs(r_, names).ToVector());
    PatternTuple row(r_);
    for (const std::string& n : names) {
      row.SetConst(A(r_, n), t.at(A(r_, n)));
    }
    Status st = region.AddRow(row);
    EXPECT_TRUE(st.ok());
    return region;
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(ConsistencyTest, ZahConsistentForT3) {
  // Example 6/10: relative to (Z_AH, concrete row from t3), (Sigma0, Dm)
  // is consistent (unique fix via s2).
  ConsistencyChecker checker(*sat_);
  Region region = RegionFromTuple({"AC", "phn", "type"}, T3(r_));
  Result<bool> ok = checker.IsConsistent(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(ConsistencyTest, ZahzInconsistentForT3) {
  // Example 10: adding zip makes (Sigma0, Dm) inconsistent relative to the
  // region (conflicting city updates via s1 and s2).
  ConsistencyChecker checker(*sat_);
  Region region = RegionFromTuple({"AC", "phn", "type", "zip"}, T3(r_));
  Result<bool> ok = checker.IsConsistent(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(*ok);
}

TEST_F(ConsistencyTest, CheckRowReportsConflictAttr) {
  ConsistencyChecker checker(*sat_);
  Region region = RegionFromTuple({"AC", "phn", "type", "zip"}, T3(r_));
  Result<ConsistencyReport> report =
      checker.CheckRow(region, region.tableau().at(0));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  EXPECT_FALSE(report->conflicts.empty());
}

TEST_F(ConsistencyTest, WildcardRowOnUnmentionedAttrIsCheap) {
  // item is not mentioned in Sigma0; a wildcard there must not blow up the
  // instantiation (single representative value suffices).
  ConsistencyChecker checker(*sat_);
  Region region =
      Region::Of(r_, Attrs(r_, {"zip", "phn", "type", "item"}).ToVector());
  PatternTuple row(r_);
  Tuple t1 = T1(r_);
  row.SetConst(A(r_, "zip"), t1.at(A(r_, "zip")));
  row.SetConst(A(r_, "phn"), t1.at(A(r_, "phn")));
  row.SetConst(A(r_, "type"), t1.at(A(r_, "type")));
  ASSERT_TRUE(region.AddRow(row).ok());  // item stays wildcard
  Result<bool> ok = checker.IsConsistent(region, /*max_instances=*/4);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(ConsistencyTest, WildcardOnMentionedAttrEnumerates) {
  // A wildcard on zip (mentioned in Sigma0) forces active-domain
  // enumeration; with Z = {zip} every zip in dom leads to a unique fix.
  ConsistencyChecker checker(*sat_);
  Region region = Region::Of(r_, Attrs(r_, {"zip"}).ToVector());
  PatternTuple row(r_);
  ASSERT_TRUE(region.AddRow(row).ok());
  Result<bool> ok = checker.IsConsistent(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(ConsistencyTest, InstantiationBudgetIsEnforced) {
  ConsistencyChecker checker(*sat_);
  Region region = Region::Of(
      r_, Attrs(r_, {"zip", "AC", "phn", "type", "city"}).ToVector());
  PatternTuple row(r_);  // all wildcards, all mentioned -> explosion
  ASSERT_TRUE(region.AddRow(row).ok());
  Result<bool> ok = checker.IsConsistent(region, /*max_instances=*/10);
  EXPECT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ConsistencyTest, EmptyRulesAlwaysConsistent) {
  RuleSet empty(r_, rm_);
  MasterIndex index(empty, dm_);
  Saturator sat(empty, dm_, index);
  ConsistencyChecker checker(sat);
  Region region = RegionFromTuple({"zip"}, T1(r_));
  Result<bool> ok = checker.IsConsistent(region);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

class CoverageTest : public ConsistencyTest {};

TEST_F(CoverageTest, ZzmNotCertain) {
  // Example 8: (Z_zm, T_zm) yields unique but not certain fixes (item is
  // never covered).
  CoverageChecker coverage(*sat_);
  Region region = RegionFromTuple({"zip", "phn", "type"}, T1(r_));
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(*ok);
}

TEST_F(CoverageTest, ZzmiCertain) {
  // Example 9: extending with item gives a certain region.
  CoverageChecker coverage(*sat_);
  Region region = RegionFromTuple({"zip", "phn", "type", "item"}, T1(r_));
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(CoverageTest, ZlCertain) {
  // Example 9's second certain region (Z_L, T_L): fn, ln, AC, phn, type,
  // item with home-phone patterns from master tuples.
  CoverageChecker coverage(*sat_);
  Region region = Region::Of(
      r_, Attrs(r_, {"fn", "ln", "AC", "phn", "type", "item"}).ToVector());
  for (size_t m = 0; m < dm_.size(); ++m) {
    PatternTuple row(r_);
    row.SetConst(A(r_, "fn"), dm_.at(m).at(A(rm_, "FN")));
    row.SetConst(A(r_, "ln"), dm_.at(m).at(A(rm_, "LN")));
    row.SetConst(A(r_, "AC"), dm_.at(m).at(A(rm_, "AC")));
    row.SetConst(A(r_, "phn"), dm_.at(m).at(A(rm_, "Hphn")));
    row.SetConst(A(r_, "type"), Value::Str("1"));
    ASSERT_TRUE(region.AddRow(row).ok());
  }
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(CoverageTest, EmptyTableauNotCertain) {
  CoverageChecker coverage(*sat_);
  Region region = Region::Of(r_, Attrs(r_, {"zip"}).ToVector());
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(CoverageTest, AllAttributesRegionTriviallyCertain) {
  CoverageChecker coverage(*sat_);
  Region region = Region::Of(r_, r_->AllAttrs().ToVector());
  PatternTuple row(r_);
  Tuple t1 = T1(r_);
  for (AttrId a = 0; a < r_->num_attrs(); ++a) row.SetConst(a, t1.at(a));
  ASSERT_TRUE(region.AddRow(row).ok());
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(CoverageTest, InconsistentRegionNotCertain) {
  CoverageChecker coverage(*sat_);
  Region region = RegionFromTuple(
      {"AC", "phn", "type", "zip", "fn", "ln", "str", "city", "item"},
      T3(r_));
  // All attrs present so coverage holds trivially, but row values... all
  // of R is in Z, so nothing can conflict: certain.
  Result<bool> all_ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(all_ok.ok());
  EXPECT_TRUE(*all_ok);
  // Whereas the conflicting sub-region is consistent=false -> not certain.
  Region sub = RegionFromTuple({"AC", "phn", "type", "zip"}, T3(r_));
  Result<bool> sub_ok = coverage.IsCertainRegion(sub);
  ASSERT_TRUE(sub_ok.ok());
  EXPECT_FALSE(*sub_ok);
}

}  // namespace
}  // namespace certfix
