/// \file storage_test.cc
/// \brief Unit tests for the columnar snapshot format and its primitives
/// (storage/io_util.h, storage/columnar.h): varint/zigzag/CRC round
/// trips, snapshot byte-identity, exhaustive corruption detection, and
/// the out-of-core mmap-borrow path with copy-on-write promotion.

#include "storage/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "relational/csv.h"
#include "relational/relation.h"
#include "storage/io_util.h"

namespace certfix {
namespace {

std::string ToCsv(const Relation& rel) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCsv(rel, out).ok());
  return out.str();
}

/// Mixed-type relation with hostile cell content: embedded commas,
/// quotes, newlines, NULs, empty strings, int/double extremes, nulls.
Relation HostileRelation() {
  SchemaPtr schema = Schema::Make(
      "T", std::vector<Attribute>{{"name", DataType::kString},
                                  {"n", DataType::kInt},
                                  {"x", DataType::kDouble}});
  Relation rel(schema);
  auto add = [&](const std::string& name, const std::string& n,
                 const std::string& x) {
    Result<Tuple> t = Tuple::FromStrings(schema, {name, n, x});
    ASSERT_TRUE(t.ok()) << t.status();
    ASSERT_TRUE(rel.Append(*t).ok());
  };
  add("plain", "0", "0");
  add("comma,inside", "-1", "-0.5");
  add("\"quoted\"", "9223372036854775807", "1e308");
  add("line\nbreak", "-9223372036854775808", "4.9e-324");
  add(std::string("nul\0byte", 8), "42", "-0");
  add("has-nulls", "", "");  // empty fields parse to nulls
  add("dup", "42", "0.1");
  add("dup", "42", "0.1");  // repeated values share dictionary ids
  return rel;
}

TEST(IoUtilTest, VarintRoundTrip) {
  const uint64_t kValues[] = {0,
                              1,
                              127,
                              128,
                              16383,
                              16384,
                              (1ull << 32) - 1,
                              1ull << 32,
                              (1ull << 63),
                              std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : kValues) {
    std::string buf;
    storage::PutVarint(&buf, v);
    ASSERT_LE(buf.size(), 10u);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    const uint8_t* end = p + buf.size();
    uint64_t got = 0;
    ASSERT_TRUE(storage::GetVarint(&p, end, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(p, end) << "decoder must consume exactly what was written";
  }
}

TEST(IoUtilTest, VarintRejectsTruncationAndOverlong) {
  std::string buf;
  storage::PutVarint(&buf, std::numeric_limits<uint64_t>::max());
  // Every strict prefix is a truncation error.
  for (size_t len = 0; len < buf.size(); ++len) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    uint64_t got = 0;
    EXPECT_FALSE(storage::GetVarint(&p, p + len, &got)) << len;
  }
  // 11 continuation bytes can never be a valid u64 varint.
  std::string overlong(11, '\x80');
  const uint8_t* p = reinterpret_cast<const uint8_t*>(overlong.data());
  uint64_t got = 0;
  EXPECT_FALSE(storage::GetVarint(&p, p + overlong.size(), &got));
}

TEST(IoUtilTest, ZigzagRoundTrip) {
  const int64_t kValues[] = {0, -1, 1, -2, 63, -64,
                             std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::max()};
  for (int64_t v : kValues) {
    EXPECT_EQ(storage::ZigzagDecode(storage::ZigzagEncode(v)), v);
  }
  // Small magnitudes must map to small codes (that's the point).
  EXPECT_EQ(storage::ZigzagEncode(0), 0u);
  EXPECT_EQ(storage::ZigzagEncode(-1), 1u);
  EXPECT_EQ(storage::ZigzagEncode(1), 2u);
}

TEST(IoUtilTest, Crc32KnownVectorAndChaining) {
  // The standard IEEE CRC-32 check value.
  EXPECT_EQ(storage::Crc32("123456789", 9), 0xCBF43926u);
  // Chained computation over a split buffer equals the whole.
  const char* data = "the quick brown fox";
  uint32_t whole = storage::Crc32(data, 19);
  uint32_t part = storage::Crc32(data, 7);
  EXPECT_EQ(storage::Crc32(data + 7, 12, part), whole);
}

TEST(IoUtilTest, AtomicWriteReadBack) {
  std::string path = ::testing::TempDir() + "/atomic_rw.bin";
  std::string payload = std::string("bytes\0with\0nuls", 15);
  ASSERT_TRUE(storage::WriteFileAtomic(path, payload).ok());
  Result<std::string> back = storage::ReadFileBytes(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  // No temp file left behind.
  EXPECT_FALSE(storage::ReadFileBytes(path + ".tmp").ok());
}

class ColumnarTest : public ::testing::TestWithParam<bool> {};

TEST_P(ColumnarTest, RoundTripIsByteIdentical) {
  Relation rel = HostileRelation();
  std::string path = ::testing::TempDir() + "/roundtrip.col";
  storage::ColumnarWriteOptions wopts;
  wopts.compress = GetParam();
  ASSERT_TRUE(storage::WriteColumnar(rel, path, wopts).ok());

  storage::ColumnarLoadInfo info;
  Result<Relation> back =
      storage::ReadColumnar(path, storage::ColumnarReadOptions{}, &info);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->schema()->name(), rel.schema()->name());
  EXPECT_EQ(back->schema()->num_attrs(), rel.schema()->num_attrs());
  for (size_t a = 0; a < rel.schema()->num_attrs(); ++a) {
    EXPECT_EQ(back->schema()->attr_name(static_cast<AttrId>(a)),
              rel.schema()->attr_name(static_cast<AttrId>(a)));
    EXPECT_EQ(back->schema()->attr_type(static_cast<AttrId>(a)),
              rel.schema()->attr_type(static_cast<AttrId>(a)));
  }
  ASSERT_EQ(back->size(), rel.size());
  EXPECT_EQ(ToCsv(*back), ToCsv(rel));
  // Null cells survive as nulls.
  EXPECT_TRUE(back->Cell(5, 1).is_null());
  EXPECT_TRUE(back->Cell(5, 2).is_null());
  EXPECT_EQ(back->Cell(5, 0).as_string(), "has-nulls");
  EXPECT_GT(info.file_bytes, 0u);
}

TEST_P(ColumnarTest, EmptyRelationRoundTrips) {
  SchemaPtr schema = Schema::Make("E", std::vector<std::string>{"a", "b"});
  Relation rel(schema);
  std::string path = ::testing::TempDir() + "/empty.col";
  storage::ColumnarWriteOptions wopts;
  wopts.compress = GetParam();
  ASSERT_TRUE(storage::WriteColumnar(rel, path, wopts).ok());
  Result<Relation> back = storage::ReadColumnar(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(ToCsv(*back), ToCsv(rel));
}

TEST_P(ColumnarTest, EveryCorruptedByteIsDetected) {
  Relation rel = HostileRelation();
  std::string path = ::testing::TempDir() + "/corrupt.col";
  storage::ColumnarWriteOptions wopts;
  wopts.compress = GetParam();
  ASSERT_TRUE(storage::WriteColumnar(rel, path, wopts).ok());
  Result<std::string> bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string reference = ToCsv(rel);

  // Flip one byte at a time: the read must either fail with a parse
  // error or (for padding bytes whose corruption is caught by the zero
  // check) — never succeed with different data. Stride keeps it fast
  // while still probing header, schema, dict, columns, and footer.
  for (size_t off = 0; off < bytes->size(); off += 3) {
    std::string mutant = *bytes;
    mutant[off] = static_cast<char>(mutant[off] ^ 0x5A);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    Result<Relation> back = storage::ReadColumnar(path);
    ASSERT_FALSE(back.ok()) << "flip at offset " << off << " undetected";
    EXPECT_EQ(back.status().code(), StatusCode::kParseError) << off;
  }

  // Truncations at any length must fail too, not crash.
  for (size_t len : {0ul, 7ul, 43ul, 44ul, bytes->size() / 2,
                     bytes->size() - 1}) {
    std::string mutant = bytes->substr(0, len);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    EXPECT_FALSE(storage::ReadColumnar(path).ok()) << "len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(CompressOnOff, ColumnarTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "compressed" : "raw";
                         });

TEST(ColumnarOutOfCoreTest, ZeroBudgetBorrowsEveryRawColumn) {
  Relation rel = HostileRelation();
  std::string path = ::testing::TempDir() + "/mapped.col";
  storage::ColumnarWriteOptions wopts;
  wopts.compress = false;  // only raw blocks can stay mapped
  ASSERT_TRUE(storage::WriteColumnar(rel, path, wopts).ok());

  storage::ColumnarReadOptions ropts;
  ropts.mmap_budget_bytes = 0;
  storage::ColumnarLoadInfo info;
  Result<Relation> loaded = storage::ReadColumnar(path, ropts, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Relation back = std::move(loaded).ValueOrDie();
  EXPECT_EQ(info.mapped_columns, rel.schema()->num_attrs());
  EXPECT_EQ(info.materialized_bytes, 0u);
  EXPECT_EQ(back.mapped_columns(), rel.schema()->num_attrs());
  // Reads go straight through the mapping.
  EXPECT_EQ(ToCsv(back), ToCsv(rel));

  // First mutation promotes only the touched column (copy-on-write).
  back.SetCell(0, 0, Value::Str("rewritten"));
  EXPECT_EQ(back.mapped_columns(), rel.schema()->num_attrs() - 1);
  EXPECT_EQ(back.Cell(0, 0).as_string(), "rewritten");
  EXPECT_EQ(back.Cell(1, 0).as_string(), "comma,inside");

  // A generous budget materializes everything.
  storage::ColumnarReadOptions all;
  all.mmap_budget_bytes = static_cast<size_t>(-1);
  storage::ColumnarLoadInfo info2;
  Result<Relation> owned = storage::ReadColumnar(path, all, &info2);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(info2.mapped_columns, 0u);
  EXPECT_EQ(owned->mapped_columns(), 0u);
}

TEST(ColumnarOutOfCoreTest, PartialBudgetSplitsColumns) {
  Relation rel = HostileRelation();
  std::string path = ::testing::TempDir() + "/partial.col";
  storage::ColumnarWriteOptions wopts;
  wopts.compress = false;
  ASSERT_TRUE(storage::WriteColumnar(rel, path, wopts).ok());

  // Budget for exactly one column's ids (8 rows * 4 bytes).
  storage::ColumnarReadOptions ropts;
  ropts.mmap_budget_bytes = rel.size() * sizeof(ValueId);
  storage::ColumnarLoadInfo info;
  Result<Relation> back = storage::ReadColumnar(path, ropts, &info);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(info.mapped_columns, rel.schema()->num_attrs() - 1);
  EXPECT_EQ(ToCsv(*back), ToCsv(rel));
}

}  // namespace
}  // namespace certfix
