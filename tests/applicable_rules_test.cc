#include "core/applicable_rules.h"

#include <gtest/gtest.h>

#include "core/transfix.h"
#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class ApplicableRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    cache_ = std::make_unique<PartialMasterIndexCache>(dm_);
  }

  // Find a derived rule by its origin index; -1 when absent.
  int FindByOrigin(const ApplicableRules& applicable, size_t origin) {
    for (size_t i = 0; i < applicable.origin.size(); ++i) {
      if (applicable.origin[i] == origin) return static_cast<int>(i);
    }
    return -1;
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<PartialMasterIndexCache> cache_;
};

TEST_F(ApplicableRulesTest, Example14Shape) {
  // Example 14: after fixing t1 with Z = {zip, AC, str, city}, the
  // applicable rules include phi4, phi5; phi1-3 drop out (their rhs is
  // validated) and phi9 drops out (no master tuple has AC = 0800, and
  // t1[AC] = 131 mismatches the pattern anyway). The paper's example also
  // lists refined phi6+..phi8+, but their rhs attributes are in Z and so
  // can never fire under the region semantics (targets are protected);
  // condition (a) of Sect. 5.2 excludes them here, which is equivalent by
  // Prop. 20.
  Tuple t1 = T1(r_);
  t1.Set(A(r_, "AC"), Value::Str("131"));
  t1.Set(A(r_, "str"), Value::Str("51 Elm Row"));
  AttrSet z = Attrs(r_, {"zip", "AC", "str", "city"});

  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t1, z);

  // phi1, phi2, phi3, phi6-8 (rhs in Z) and phi9 are excluded.
  for (size_t origin : {0u, 1u, 2u, 5u, 6u, 7u, 8u}) {
    EXPECT_EQ(FindByOrigin(applicable, origin), -1) << "phi" << origin + 1;
  }
  // phi4, phi5 survive (their premises are outside Z).
  EXPECT_GE(FindByOrigin(applicable, 3), 0);
  EXPECT_GE(FindByOrigin(applicable, 4), 0);
  EXPECT_EQ(applicable.rules.size(), 2u);
}

TEST_F(ApplicableRulesTest, RefinementPinsValidatedLhsValue) {
  // The Example 14 refinement effect (tp[AC]: !=0800 becomes the constant
  // 131) observed on phi6+ with a smaller validated set that keeps its rhs
  // (str) outside Z.
  Tuple t1 = T1(r_);
  t1.Set(A(r_, "AC"), Value::Str("131"));
  t1.Set(A(r_, "type"), Value::Str("1"));
  t1.Set(A(r_, "phn"), Value::Str("6884563"));
  AttrSet z = Attrs(r_, {"AC", "type", "phn"});
  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t1, z);
  int phi6_plus = FindByOrigin(applicable, 5);
  ASSERT_GE(phi6_plus, 0);
  const EditingRule& refined =
      applicable.rules.at(static_cast<size_t>(phi6_plus));
  PatternValue ac_cell = refined.pattern().Get(A(r_, "AC"));
  EXPECT_TRUE(ac_cell.is_const());
  EXPECT_EQ(ac_cell.value().as_string(), "131");
  PatternValue phn_cell = refined.pattern().Get(A(r_, "phn"));
  EXPECT_TRUE(phn_cell.is_const());
  EXPECT_EQ(phn_cell.value().as_string(), "6884563");
}

TEST_F(ApplicableRulesTest, MasterAvailabilityFilters) {
  // With a validated zip that matches no master tuple, phi1-3 cannot fire
  // and are excluded by condition (c).
  Tuple t = T1(r_);
  t.Set(A(r_, "zip"), Value::Str("ZZ9 9ZZ"));
  AttrSet z = Attrs(r_, {"zip"});
  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t, z);
  EXPECT_EQ(FindByOrigin(applicable, 0), -1);
  EXPECT_EQ(FindByOrigin(applicable, 1), -1);
  EXPECT_EQ(FindByOrigin(applicable, 2), -1);
  // phi4-9 have no validated lhs intersection; they stay.
  EXPECT_GE(FindByOrigin(applicable, 3), 0);
}

TEST_F(ApplicableRulesTest, ValidatedPatternMismatchExcludes) {
  // t[type] = 1 validated: phi4/phi5 (pattern type = 2) are excluded.
  Tuple t = T1(r_);
  t.Set(A(r_, "type"), Value::Str("1"));
  AttrSet z = Attrs(r_, {"type"});
  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t, z);
  EXPECT_EQ(FindByOrigin(applicable, 3), -1);
  EXPECT_EQ(FindByOrigin(applicable, 4), -1);
  // phi6-8 (pattern type = 1) survive.
  EXPECT_GE(FindByOrigin(applicable, 5), 0);
}

TEST_F(ApplicableRulesTest, EmptyZKeepsRulesWithMasterSupport) {
  Tuple t1 = T1(r_);
  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t1, AttrSet());
  // Nothing validated: conditions (a)-(c) reduce to master existence on
  // the pattern side. phi9 (pattern AC = 0800 with AC in X) is excluded —
  // no master tuple has AC 0800 — all other rules survive.
  EXPECT_EQ(applicable.rules.size(), rules_.size() - 1);
  EXPECT_EQ(FindByOrigin(applicable, 8), -1);
}

TEST_F(ApplicableRulesTest, RefinedPatternPinsValidatedValues) {
  Tuple t1 = T1(r_);
  AttrSet z = Attrs(r_, {"type"});
  ApplicableRules applicable =
      DeriveApplicableRules(rules_, dm_, cache_.get(), t1, z);
  // phi4's type cell is refined from const 2 to the (equal) validated
  // value 2; still a constant.
  int phi4_plus = FindByOrigin(applicable, 3);
  ASSERT_GE(phi4_plus, 0);
  PatternValue cell =
      applicable.rules.at(static_cast<size_t>(phi4_plus)).pattern().Get(
          A(r_, "type"));
  EXPECT_TRUE(cell.is_const());
  EXPECT_EQ(cell.value().as_string(), "2");
}

TEST_F(ApplicableRulesTest, PartialIndexCacheReuse) {
  Tuple t1 = T1(r_);
  AttrSet z = Attrs(r_, {"zip"});
  DeriveApplicableRules(rules_, dm_, cache_.get(), t1, z);
  size_t after_first = cache_->num_indexes();
  DeriveApplicableRules(rules_, dm_, cache_.get(), t1, z);
  EXPECT_EQ(cache_->num_indexes(), after_first);  // no index rebuilt
}

}  // namespace
}  // namespace certfix
