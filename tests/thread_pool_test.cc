#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace certfix {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted; must not block
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([] {});
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after a failed wave.
  std::atomic<int> ok{0};
  pool.Submit([&ok] { ++ok; });
  pool.Wait();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Destroying the pool while tasks are still queued must run them all:
  // the destructor only stops workers once the queue is empty (stop_ is
  // checked together with queue emptiness in WorkerLoop), so no submitted
  // work is ever dropped.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    // A slow head-of-queue task keeps the rest queued when the
    // destructor runs.
    pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      ++ran;
    });
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // No Wait(): destruction races the queue directly.
  }
  EXPECT_EQ(ran.load(), 41);
}

TEST(ThreadPoolTest, DestructorAfterFailedTasksDoesNotHang) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // The unobserved wave error must not wedge or crash the destructor.
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, SingleWorkerDrainsInSubmissionOrder) {
  // With one worker the queue is strictly FIFO; destruction mid-queue
  // must preserve that order for the tasks it drains.
  std::vector<int> order;
  std::mutex order_mutex;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&order, &order_mutex, i] {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, PropagatesChunkException) {
  auto boom = [](size_t k, size_t, size_t) {
    if (k == 3) throw std::runtime_error("chunk failure");
  };
  EXPECT_THROW(ParallelFor(10, 4, 1, boom), std::runtime_error);
  EXPECT_THROW(ParallelFor(10, 1, 1, boom), std::runtime_error);  // inline
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 2, 8}) {
    for (size_t chunk : {0, 1, 3, 100}) {
      std::vector<int> hits(17, 0);
      ParallelFor(hits.size(), threads, chunk,
                  [&hits](size_t, size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) ++hits[i];
                  });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 17)
          << "threads=" << threads << " chunk=" << chunk;
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "index " << i;
      }
    }
  }
}

TEST(ParallelForTest, ChunkIndexingIsDeterministic) {
  // Chunk k must cover [k*size, min((k+1)*size, n)) so per-chunk results
  // merge in a scheduling-independent order.
  size_t n = 10, threads = 4, chunk = 3;
  ASSERT_EQ(ResolveChunkSize(n, threads, chunk), 3u);
  ASSERT_EQ(NumChunks(n, threads, chunk), 4u);
  std::vector<std::pair<size_t, size_t>> ranges(4);
  ParallelFor(n, threads, chunk,
              [&ranges](size_t k, size_t begin, size_t end) {
                ranges[k] = {begin, end};
              });
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{3, 6}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{6, 9}));
  EXPECT_EQ(ranges[3], (std::pair<size_t, size_t>{9, 10}));
}

TEST(ParallelForTest, EmptyRangeAndZeroDefaults) {
  bool called = false;
  ParallelFor(0, 4, 0, [&called](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(NumChunks(0, 4, 0), 0u);
  // chunk_size 0 divides evenly over the workers.
  EXPECT_EQ(ResolveChunkSize(100, 4, 0), 25u);
  // n <= threads degenerates to one index per chunk at most.
  EXPECT_EQ(ResolveChunkSize(3, 8, 0), 3u);
  EXPECT_GE(DefaultParallelism(), 1u);
}

}  // namespace
}  // namespace certfix
