#include "rules/editing_rule.h"

#include <gtest/gtest.h>

#include "rules/rule_set.h"
#include "test_util.h"

namespace certfix {
namespace {

using testing_fixtures::A;
using testing_fixtures::SupplierMaster;
using testing_fixtures::SupplierMasterSchema;
using testing_fixtures::SupplierRules;
using testing_fixtures::SupplierSchema;
using testing_fixtures::T1;

class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
  }
  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
};

TEST_F(RuleTest, MakeByNameResolvesAttrs) {
  Result<EditingRule> rule = EditingRule::MakeByName(
      "phi1", r_, rm_, {"zip"}, {"zip"}, "AC", "AC", PatternTuple(r_));
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->lhs(), std::vector<AttrId>{A(r_, "zip")});
  EXPECT_EQ(rule->rhs(), A(r_, "AC"));
  EXPECT_EQ(rule->rhsm(), A(rm_, "AC"));
}

TEST_F(RuleTest, RejectsArityMismatch) {
  Result<EditingRule> rule = EditingRule::MakeByName(
      "bad", r_, rm_, {"zip", "AC"}, {"zip"}, "str", "str", PatternTuple(r_));
  EXPECT_FALSE(rule.ok());
}

TEST_F(RuleTest, RejectsRhsInLhs) {
  // Definition: B must be in R \ X.
  Result<EditingRule> rule = EditingRule::MakeByName(
      "bad", r_, rm_, {"zip"}, {"zip"}, "zip", "zip", PatternTuple(r_));
  EXPECT_FALSE(rule.ok());
}

TEST_F(RuleTest, RejectsDuplicateLhsAttr) {
  Result<EditingRule> rule = EditingRule::MakeByName(
      "bad", r_, rm_, {"zip", "zip"}, {"zip", "zip"}, "AC", "AC",
      PatternTuple(r_));
  EXPECT_FALSE(rule.ok());
}

TEST_F(RuleTest, AllowsRepeatedMasterAttr) {
  // The paper's Thm 12 reduction repeats B1 on the master side; only the
  // R-side list must be distinct.
  Result<EditingRule> rule = EditingRule::MakeByName(
      "ok", r_, rm_, {"zip", "AC"}, {"zip", "zip"}, "str", "str",
      PatternTuple(r_));
  EXPECT_TRUE(rule.ok());
}

TEST_F(RuleTest, RejectsUnknownAttr) {
  Result<EditingRule> rule = EditingRule::MakeByName(
      "bad", r_, rm_, {"nope"}, {"zip"}, "AC", "AC", PatternTuple(r_));
  EXPECT_FALSE(rule.ok());
}

TEST_F(RuleTest, AppliesToSemantics) {
  // phi1 = ((zip, zip) -> (AC, AC)): applies to t1 with s1 (zip agrees).
  RuleSet rules = SupplierRules(r_, rm_);
  const EditingRule& phi1 = rules.at(0);
  Tuple t1 = T1(r_);
  EXPECT_TRUE(phi1.AppliesTo(t1, dm_.at(0)));   // s1: zip EH7 4AH
  EXPECT_FALSE(phi1.AppliesTo(t1, dm_.at(1)));  // s2: zip NW1 6XE
}

TEST_F(RuleTest, PatternGatesApplication) {
  // phi4 requires type = 2; t1 has type 2 and phn = s1[Mphn].
  RuleSet rules = SupplierRules(r_, rm_);
  const EditingRule& phi4 = rules.at(3);
  Tuple t1 = T1(r_);
  EXPECT_TRUE(phi4.AppliesTo(t1, dm_.at(0)));
  t1.Set(A(r_, "type"), Value::Str("1"));
  EXPECT_FALSE(phi4.AppliesTo(t1, dm_.at(0)));
}

TEST_F(RuleTest, NegatedPatternGatesApplication) {
  // phi6 requires AC != 0800.
  RuleSet rules = SupplierRules(r_, rm_);
  const EditingRule& phi6 = rules.at(5);
  Tuple t = T1(r_);
  t.Set(A(r_, "type"), Value::Str("1"));
  t.Set(A(r_, "AC"), Value::Str("131"));
  t.Set(A(r_, "phn"), Value::Str("6884563"));
  EXPECT_TRUE(phi6.AppliesTo(t, dm_.at(0)));
  t.Set(A(r_, "AC"), Value::Str("0800"));
  EXPECT_FALSE(phi6.AppliesTo(t, dm_.at(0)));
}

TEST_F(RuleTest, ApplyUpdatesRhsOnly) {
  // Example 4: applying (phi1, s1) to t1 changes AC from 020 to 131.
  RuleSet rules = SupplierRules(r_, rm_);
  Tuple t1 = T1(r_);
  Tuple fixed = rules.at(0).TryApply(t1, dm_.at(0));
  EXPECT_EQ(fixed.at(A(r_, "AC")).as_string(), "131");
  // Everything else unchanged.
  size_t diffs = t1.DiffCount(fixed);
  EXPECT_EQ(diffs, 1u);
}

TEST_F(RuleTest, TryApplyNoopWhenInapplicable) {
  RuleSet rules = SupplierRules(r_, rm_);
  Tuple t1 = T1(r_);
  Tuple out = rules.at(0).TryApply(t1, dm_.at(1));  // zip mismatch
  EXPECT_EQ(out, t1);
}

TEST_F(RuleTest, CrossAttributeMap) {
  // A rule mapping phn to the master's Mphn (different attribute name):
  // phi4's lhsm is Mphn while lhs is phn.
  RuleSet rules = SupplierRules(r_, rm_);
  const EditingRule& phi4 = rules.at(3);
  EXPECT_EQ(phi4.lhs()[0], A(r_, "phn"));
  EXPECT_EQ(phi4.lhsm()[0], A(rm_, "Mphn"));
  Result<AttrId> m = phi4.MasterAttrFor(A(r_, "phn"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, A(rm_, "Mphn"));
  EXPECT_FALSE(phi4.MasterAttrFor(A(r_, "zip")).ok());
}

TEST_F(RuleTest, NormalizedDropsWildcardCells) {
  PatternTuple tp(r_);
  tp.SetConst(A(r_, "type"), Value::Str("1"));
  tp.SetWildcard(A(r_, "city"));
  Result<EditingRule> rule = EditingRule::MakeByName(
      "n", r_, rm_, {"zip"}, {"zip"}, "AC", "AC", std::move(tp));
  ASSERT_TRUE(rule.ok());
  EditingRule norm = rule->Normalized();
  EXPECT_EQ(norm.pattern().size(), 1u);
  // Premise set shrinks accordingly but stays equivalent for matching.
  EXPECT_FALSE(norm.premise_set().Contains(A(r_, "city")));
  EXPECT_TRUE(rule->premise_set().Contains(A(r_, "city")));
}

TEST_F(RuleTest, PremiseSetIsLhsUnionPattern) {
  RuleSet rules = SupplierRules(r_, rm_);
  const EditingRule& phi6 = rules.at(5);
  AttrSet expected = testing_fixtures::Attrs(r_, {"AC", "phn", "type"});
  EXPECT_EQ(phi6.premise_set(), expected);
}

TEST_F(RuleTest, DirectnessClassification) {
  RuleSet rules = SupplierRules(r_, rm_);
  // phi1: no pattern -> direct. phi4: pattern on type (not in X) -> not.
  EXPECT_TRUE(rules.at(0).IsDirect());
  EXPECT_FALSE(rules.at(3).IsDirect());
  // phi6: pattern on {type, AC}, X = {AC, phn}: type not in X -> not.
  EXPECT_FALSE(rules.at(5).IsDirect());
  EXPECT_FALSE(rules.AllDirect());
}

TEST_F(RuleTest, RuleSetAggregates) {
  RuleSet rules = SupplierRules(r_, rm_);
  EXPECT_EQ(rules.size(), 9u);
  AttrSet lhs = rules.LhsUnion();
  EXPECT_TRUE(lhs.Contains(A(r_, "zip")));
  EXPECT_TRUE(lhs.Contains(A(r_, "phn")));
  EXPECT_TRUE(lhs.Contains(A(r_, "AC")));
  AttrSet rhs = rules.RhsUnion();
  EXPECT_TRUE(rhs.Contains(A(r_, "fn")));
  EXPECT_FALSE(rhs.Contains(A(r_, "item")));
  // item is mentioned nowhere in Sigma0.
  EXPECT_FALSE(rules.MentionedAttrs().Contains(A(r_, "item")));
}

TEST_F(RuleTest, PatternConstants) {
  RuleSet rules = SupplierRules(r_, rm_);
  std::vector<Value> constants = rules.PatternConstants();
  bool has_0800 = false;
  bool has_2 = false;
  for (const Value& v : constants) {
    if (v == Value::Str("0800")) has_0800 = true;
    if (v == Value::Str("2")) has_2 = true;
  }
  EXPECT_TRUE(has_0800);
  EXPECT_TRUE(has_2);
}

TEST_F(RuleTest, RuleSetRejectsForeignSchema) {
  RuleSet rules(r_, rm_);
  SchemaPtr other = Schema::Make("Other", std::vector<std::string>{"x", "y"});
  Result<EditingRule> rule = EditingRule::MakeByName(
      "o", other, other, {"x"}, {"x"}, "y", "y", PatternTuple(other));
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rules.Add(std::move(rule).ValueOrDie()).ok());
}

}  // namespace
}  // namespace certfix
