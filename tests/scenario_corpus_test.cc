// Scenario-corpus harness: every checked-in spec under tests/scenarios/
// (CERTFIX_SCENARIO_DIR) is generated, serialized to its delta-log bytes,
// and replayed through all three engines, which must agree byte-for-byte:
//
//  * oracle    — positional replay of the log (ApplyDeltaLog) + BatchRepair
//                from scratch over the final input against the final master
//  * delta     — DeltaRepairEngine consuming the log via DeltaLogSource,
//                at 1, 2, and 8 shards
//  * stream    — StreamRepairEngine over the final input rows (point-of-
//                entry repair of the surviving tuples), at 1, 2, and 8
//                shards, against the final master
//
// Seed shifting: CERTFIX_PROPERTY_SEED offsets every scenario's seed, and
// each --gtest_repeat iteration shifts it again, so CI soak runs cover
// fresh scenarios per repetition while any failure reproduces from the
// printed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/batch_repair.h"
#include "incremental/delta_repair.h"
#include "relational/csv.h"
#include "stream/sink.h"
#include "stream/stream_repair.h"
#include "workload/scenario.h"

namespace certfix {
namespace {

uint64_t SeedShift() {
  static uint64_t base = [] {
    const char* env = std::getenv("CERTFIX_PROPERTY_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 0ULL;
  }();
  // Each fixture-set construction (one per --gtest_repeat iteration)
  // advances the shift, so soak repetitions explore fresh seeds.
  static uint64_t iteration = 0;
  return base + 1009 * iteration++;
}

std::vector<std::string> CorpusSpecs() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(CERTFIX_SCENARIO_DIR)) {
    if (entry.path().extension() == ".toml") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string CsvBytes(const Relation& rel) {
  std::ostringstream out;
  Status st = WriteCsv(rel, out);
  EXPECT_TRUE(st.ok()) << st;
  return out.str();
}

class ScenarioCorpusTest : public ::testing::TestWithParam<std::string> {};

std::string ParamName(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

TEST_P(ScenarioCorpusTest, EnginesAgreeByteForByte) {
  Result<ScenarioSpec> loaded = LoadScenarioSpecFile(GetParam());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ScenarioSpec spec = std::move(loaded).ValueOrDie();
  const uint64_t shift = SeedShift();
  spec.seed += shift;
  SCOPED_TRACE("scenario " + spec.name + " seed " +
               std::to_string(spec.seed) + " (shift " +
               std::to_string(shift) + ")");

  Result<Scenario> sc = GenerateScenario(spec);
  ASSERT_TRUE(sc.ok()) << sc.status();
  const std::string log = DeltaLogToString(*sc);

  // Oracle: positional replay of the log bytes, then from-scratch batch
  // repair of the final input against the final master.
  std::vector<std::vector<std::string>> input_rows = RenderRows(sc->initial);
  std::vector<std::vector<std::string>> master_rows = RenderRows(sc->master);
  Status replayed = ApplyDeltaLog(sc->deltas, &input_rows, &master_rows);
  ASSERT_TRUE(replayed.ok()) << replayed;
  Result<Relation> final_input = RelationFromRows(sc->schema, input_rows);
  Result<Relation> final_master = RelationFromRows(sc->schema, master_rows);
  ASSERT_TRUE(final_input.ok()) << final_input.status();
  ASSERT_TRUE(final_master.ok()) << final_master.status();

  MasterIndex oracle_index(sc->rules, *final_master);
  Saturator oracle_sat(sc->rules, *final_master, oracle_index);
  BatchRepair oracle(oracle_sat);
  Result<BatchRepairResult> oracle_result =
      oracle.RepairChecked(*final_input, sc->trusted);
  ASSERT_TRUE(oracle_result.ok()) << oracle_result.status();
  const std::string want = CsvBytes(oracle_result->repaired);

  for (size_t shards : {1u, 2u, 8u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));

    // Delta engine: consume the serialized log bytes via DeltaLogSource.
    {
      DeltaRepairOptions options;
      options.num_shards = shards;
      DeltaRepairEngine engine(sc->rules, sc->master, sc->trusted, options);
      ASSERT_TRUE(engine.precheck_status().ok()) << engine.precheck_status();
      ASSERT_TRUE(engine.Load(sc->initial).ok());
      std::istringstream in(log);
      DeltaLogSource source(sc->schema, sc->schema, in);
      Status st = engine.ApplyAll(&source);
      ASSERT_TRUE(st.ok()) << st;
      EXPECT_EQ(CsvBytes(engine.SnapshotInput()), CsvBytes(*final_input));
      EXPECT_EQ(CsvBytes(engine.SnapshotRepaired()), want);
    }

    // Stream engine: point-of-entry repair of the final input rows.
    {
      StreamOptions options;
      options.num_shards = shards;
      std::ostringstream out;
      CsvStreamSink sink(sc->schema, out);
      StreamRepairEngine engine(oracle_sat, sc->trusted, &sink, options);
      ASSERT_TRUE(engine.precheck_status().ok()) << engine.precheck_status();
      for (const auto& fields : input_rows) {
        Status st = engine.PushStrings(fields);
        ASSERT_TRUE(st.ok()) << st;
      }
      StreamSnapshot snapshot = engine.Finish();
      EXPECT_EQ(snapshot.tuples_out, input_rows.size());
      EXPECT_EQ(out.str(), want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ScenarioCorpusTest,
                         ::testing::ValuesIn(CorpusSpecs()), ParamName);

// The corpus must stay broad enough to mean something: at least 6 specs,
// covering skewed popularity, bursty arrival, correlated error clusters,
// and master-delta interleave.
TEST(ScenarioCorpusShape, CorpusCoversTheAdversarialAxes) {
  std::vector<std::string> paths = CorpusSpecs();
  ASSERT_GE(paths.size(), 6u);
  bool zipf = false, burst = false, clusters = false, master_mix = false,
       second_workload = false;
  for (const std::string& path : paths) {
    Result<ScenarioSpec> spec = LoadScenarioSpecFile(path);
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status();
    if (spec->popularity.kind == PopularityKind::kZipf) zipf = true;
    if (spec->arrival.kind == ArrivalKind::kBursty) burst = true;
    if (spec->errors.cluster_len > 0 && spec->errors.burst_continue > 0) {
      clusters = true;
    }
    if (spec->arrival.master_ratio > 0) master_mix = true;
    if (spec->workload == "dblp") second_workload = true;
  }
  EXPECT_TRUE(zipf) << "no zipf-skew scenario in the corpus";
  EXPECT_TRUE(burst) << "no bursty-arrival scenario in the corpus";
  EXPECT_TRUE(clusters) << "no correlated-error-cluster scenario";
  EXPECT_TRUE(master_mix) << "no master-delta interleave scenario";
  EXPECT_TRUE(second_workload) << "corpus only exercises one workload";
}

}  // namespace
}  // namespace certfix
