// Scenario-corpus harness: every checked-in spec under tests/scenarios/
// (CERTFIX_SCENARIO_DIR) is generated, serialized to its delta-log bytes,
// and replayed through all three engines, which must agree byte-for-byte:
//
//  * oracle    — positional replay of the log (ApplyDeltaLog) + BatchRepair
//                from scratch over the final input against the final master,
//                on the legacy map index with memoization off (maximally
//                independent of the optimized paths it judges)
//  * delta     — DeltaRepairEngine consuming the log via DeltaLogSource,
//                across shard counts x {flat, map} index x {memo on, off}
//  * stream    — StreamRepairEngine over the final input rows (point-of-
//                entry repair of the surviving tuples), across the same
//                shard/index/memo grid, against the final master
//
// The zipf-skew spec additionally asserts the memo earns its keep: its
// duplicate-heavy stream must replay a sizable fraction of repairs.
//
// Seed shifting: CERTFIX_PROPERTY_SEED offsets every scenario's seed, and
// each --gtest_repeat iteration shifts it again, so CI soak runs cover
// fresh scenarios per repetition while any failure reproduces from the
// printed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/batch_repair.h"
#include "incremental/delta_repair.h"
#include "relational/csv.h"
#include "stream/sink.h"
#include "stream/stream_repair.h"
#include "workload/scenario.h"

namespace certfix {
namespace {

uint64_t SeedShift() {
  static uint64_t base = [] {
    const char* env = std::getenv("CERTFIX_PROPERTY_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 0ULL;
  }();
  // Each fixture-set construction (one per --gtest_repeat iteration)
  // advances the shift, so soak repetitions explore fresh seeds.
  static uint64_t iteration = 0;
  return base + 1009 * iteration++;
}

std::vector<std::string> CorpusSpecs() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(CERTFIX_SCENARIO_DIR)) {
    if (entry.path().extension() == ".toml") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string CsvBytes(const Relation& rel) {
  std::ostringstream out;
  Status st = WriteCsv(rel, out);
  EXPECT_TRUE(st.ok()) << st;
  return out.str();
}

class ScenarioCorpusTest : public ::testing::TestWithParam<std::string> {};

std::string ParamName(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

TEST_P(ScenarioCorpusTest, EnginesAgreeByteForByte) {
  Result<ScenarioSpec> loaded = LoadScenarioSpecFile(GetParam());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ScenarioSpec spec = std::move(loaded).ValueOrDie();
  const uint64_t shift = SeedShift();
  spec.seed += shift;
  SCOPED_TRACE("scenario " + spec.name + " seed " +
               std::to_string(spec.seed) + " (shift " +
               std::to_string(shift) + ")");

  Result<Scenario> sc = GenerateScenario(spec);
  ASSERT_TRUE(sc.ok()) << sc.status();
  const std::string log = DeltaLogToString(*sc);

  // Oracle: positional replay of the log bytes, then from-scratch batch
  // repair of the final input against the final master.
  std::vector<std::vector<std::string>> input_rows = RenderRows(sc->initial);
  std::vector<std::vector<std::string>> master_rows = RenderRows(sc->master);
  Status replayed = ApplyDeltaLog(sc->deltas, &input_rows, &master_rows);
  ASSERT_TRUE(replayed.ok()) << replayed;
  Result<Relation> final_input = RelationFromRows(sc->schema, input_rows);
  Result<Relation> final_master = RelationFromRows(sc->schema, master_rows);
  ASSERT_TRUE(final_input.ok()) << final_input.status();
  ASSERT_TRUE(final_master.ok()) << final_master.status();

  // The oracle deliberately avoids everything under test: legacy map
  // index, no memoization, single-threaded by default.
  MasterIndex oracle_index(sc->rules, *final_master, IndexKind::kMap);
  Saturator oracle_sat(sc->rules, *final_master, oracle_index);
  RepairOptions oracle_options;
  oracle_options.use_memo = false;
  BatchRepair oracle(oracle_sat, oracle_options);
  Result<BatchRepairResult> oracle_result =
      oracle.RepairChecked(*final_input, sc->trusted);
  ASSERT_TRUE(oracle_result.ok()) << oracle_result.status();
  const std::string want = CsvBytes(oracle_result->repaired);

  // The flat-index saturator the stream engine's flat configs run on.
  MasterIndex flat_index(sc->rules, *final_master, IndexKind::kFlat);
  Saturator flat_sat(sc->rules, *final_master, flat_index);

  const bool is_zipf = spec.name.find("zipf") != std::string::npos;

  struct Config {
    IndexKind kind;
    bool memo;
    std::vector<size_t> shard_counts;
  };
  // The default configuration gets the full shard sweep; the A/B legs
  // pin the corners (inline path with memo, workers without, ...).
  const std::vector<Config> configs = {
      {IndexKind::kFlat, true, {1, 2, 8}},
      {IndexKind::kFlat, false, {1, 8}},
      {IndexKind::kMap, true, {1, 8}},
      {IndexKind::kMap, false, {8}},
  };
  for (const Config& config : configs) {
    for (size_t shards : config.shard_counts) {
      SCOPED_TRACE("index " +
                   std::string(config.kind == IndexKind::kFlat ? "flat"
                                                               : "map") +
                   " memo " + (config.memo ? "on" : "off") + " shards " +
                   std::to_string(shards));

      // Delta engine: consume the serialized log bytes via DeltaLogSource.
      {
        DeltaRepairOptions options;
        options.num_shards = shards;
        options.index_kind = config.kind;
        options.use_memo = config.memo;
        DeltaRepairEngine engine(sc->rules, sc->master, sc->trusted,
                                 options);
        ASSERT_TRUE(engine.precheck_status().ok())
            << engine.precheck_status();
        ASSERT_TRUE(engine.Load(sc->initial).ok());
        std::istringstream in(log);
        DeltaLogSource source(sc->schema, sc->schema, in);
        Status st = engine.ApplyAll(&source);
        ASSERT_TRUE(st.ok()) << st;
        EXPECT_EQ(CsvBytes(engine.SnapshotInput()), CsvBytes(*final_input));
        EXPECT_EQ(CsvBytes(engine.SnapshotRepaired()), want);
        DeltaRepairStats stats = engine.stats();
        if (config.memo) {
          // Every repair is either a replay or a computation.
          EXPECT_EQ(stats.memo_hits + stats.memo_misses,
                    stats.tuples_repaired);
        } else {
          EXPECT_EQ(stats.memo_hits, 0u);
          EXPECT_EQ(stats.memo_misses, 0u);
        }
      }

      // Stream engine: point-of-entry repair of the final input rows.
      {
        StreamOptions options;
        options.num_shards = shards;
        options.use_memo = config.memo;
        std::ostringstream out;
        CsvStreamSink sink(sc->schema, out);
        const Saturator& sat =
            config.kind == IndexKind::kFlat ? flat_sat : oracle_sat;
        StreamRepairEngine engine(sat, sc->trusted, &sink, options);
        ASSERT_TRUE(engine.precheck_status().ok())
            << engine.precheck_status();
        for (const auto& fields : input_rows) {
          Status st = engine.PushStrings(fields);
          ASSERT_TRUE(st.ok()) << st;
        }
        StreamSnapshot snapshot = engine.Finish();
        EXPECT_EQ(snapshot.tuples_out, input_rows.size());
        EXPECT_EQ(out.str(), want);
        if (config.memo) {
          EXPECT_EQ(snapshot.memo_hits + snapshot.memo_misses,
                    snapshot.tuples_out);
        } else {
          EXPECT_EQ(snapshot.memo_hits, 0u);
          EXPECT_EQ(snapshot.memo_misses, 0u);
        }
      }
    }
  }

  // Memo effectiveness on the skewed workload: replaying the zipf
  // stream a second time through the same engine must hit the shard
  // memos for every repeated row (identical rows route to the same
  // shard, and its memo key is the row's full relevant projection).
  if (is_zipf && !input_rows.empty()) {
    StreamOptions options;
    options.num_shards = 4;
    NullSink sink;
    StreamRepairEngine engine(flat_sat, sc->trusted, &sink, options);
    ASSERT_TRUE(engine.precheck_status().ok()) << engine.precheck_status();
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& fields : input_rows) {
        Status st = engine.PushStrings(fields);
        ASSERT_TRUE(st.ok()) << st;
      }
    }
    StreamSnapshot snapshot = engine.Finish();
    EXPECT_EQ(snapshot.memo_hits + snapshot.memo_misses,
              2 * input_rows.size());
    EXPECT_GE(snapshot.memo_hits, input_rows.size())
        << "second pass over identical rows should replay from the memo";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ScenarioCorpusTest,
                         ::testing::ValuesIn(CorpusSpecs()), ParamName);

// The corpus must stay broad enough to mean something: at least 6 specs,
// covering skewed popularity, bursty arrival, correlated error clusters,
// and master-delta interleave.
TEST(ScenarioCorpusShape, CorpusCoversTheAdversarialAxes) {
  std::vector<std::string> paths = CorpusSpecs();
  ASSERT_GE(paths.size(), 6u);
  bool zipf = false, burst = false, clusters = false, master_mix = false,
       second_workload = false;
  for (const std::string& path : paths) {
    Result<ScenarioSpec> spec = LoadScenarioSpecFile(path);
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status();
    if (spec->popularity.kind == PopularityKind::kZipf) zipf = true;
    if (spec->arrival.kind == ArrivalKind::kBursty) burst = true;
    if (spec->errors.cluster_len > 0 && spec->errors.burst_continue > 0) {
      clusters = true;
    }
    if (spec->arrival.master_ratio > 0) master_mix = true;
    if (spec->workload == "dblp") second_workload = true;
  }
  EXPECT_TRUE(zipf) << "no zipf-skew scenario in the corpus";
  EXPECT_TRUE(burst) << "no bursty-arrival scenario in the corpus";
  EXPECT_TRUE(clusters) << "no correlated-error-cluster scenario";
  EXPECT_TRUE(master_mix) << "no master-delta interleave scenario";
  EXPECT_TRUE(second_workload) << "corpus only exercises one workload";
}

}  // namespace
}  // namespace certfix
