/// \file logging_test.cc
/// \brief Logger thread-safety: concurrent CERTFIX_LOG calls from many
/// threads must produce exactly one well-formed line per call with no
/// interleaving, each carrying the level + timestamp + thread-id prefix.

#include "util/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace certfix {
namespace {

// Restores level and sink on scope exit so other tests see the default
// (stderr, off) logger.
class LoggerGuard {
 public:
  LoggerGuard() : prev_level_(GetLogLevel()) {}
  ~LoggerGuard() {
    SetLogSink(nullptr);
    SetLogLevel(prev_level_);
  }

 private:
  LogLevel prev_level_;
};

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(LoggingTest, LineCarriesLevelTimestampAndThreadId) {
  LoggerGuard guard;
  std::ostringstream sink;
  SetLogSink(&sink);
  SetLogLevel(LogLevel::kInfo);
  CERTFIX_LOG(kWarn) << "payload " << 42;
  SetLogSink(nullptr);

  std::vector<std::string> lines = Lines(sink.str());
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  // [certfix WARN 2026-08-08 12:00:00.000 tN] payload 42
  ASSERT_EQ(line.rfind("[certfix WARN ", 0), 0u) << line;
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0, ms = 0;
  unsigned tid = 0;
  ASSERT_EQ(std::sscanf(line.c_str(),
                        "[certfix WARN %d-%d-%d %d:%d:%d.%d t%u]", &y, &mo,
                        &d, &h, &mi, &s, &ms, &tid),
            8)
      << line;
  EXPECT_GE(y, 2020);
  EXPECT_GE(tid, 1u);
  size_t close = line.find("] ");
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(line.substr(close + 2), "payload 42");
}

TEST(LoggingTest, BelowLevelMessagesAreDropped) {
  LoggerGuard guard;
  std::ostringstream sink;
  SetLogSink(&sink);
  SetLogLevel(LogLevel::kWarn);
  CERTFIX_LOG(kInfo) << "invisible";
  CERTFIX_LOG(kError) << "visible";
  SetLogSink(nullptr);
  EXPECT_EQ(sink.str().find("invisible"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

// The satellite contract: N threads logging concurrently yield exactly
// N*k complete lines, never fragments of two messages spliced together.
TEST(LoggingTest, ConcurrentThreadsNeverInterleaveLines) {
  LoggerGuard guard;
  std::ostringstream sink;
  SetLogSink(&sink);
  SetLogLevel(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        CERTFIX_LOG(kInfo) << "worker=" << t << " line=" << i << " tail";
      }
    });
  }
  for (auto& w : workers) w.join();
  SetLogSink(nullptr);

  std::vector<std::string> lines = Lines(sink.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kLines));
  std::set<std::string> payloads;
  for (const std::string& line : lines) {
    // An interleaved write would splice a second prefix or tail into the
    // line; a well-formed line has exactly one of each.
    EXPECT_EQ(line.rfind("[certfix INFO ", 0), 0u) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '['), 1) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), ']'), 1) << line;
    ASSERT_TRUE(line.size() >= 5 &&
                line.compare(line.size() - 5, 5, " tail") == 0)
        << line;
    size_t close = line.find("] ");
    ASSERT_NE(close, std::string::npos);
    payloads.insert(line.substr(close + 2));
  }
  // Every (worker, line) payload arrived exactly once.
  EXPECT_EQ(payloads.size(), static_cast<size_t>(kThreads * kLines));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kLines; ++i) {
      std::ostringstream want;
      want << "worker=" << t << " line=" << i << " tail";
      EXPECT_EQ(payloads.count(want.str()), 1u) << want.str();
    }
  }
}

}  // namespace
}  // namespace certfix
