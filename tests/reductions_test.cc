/// \file reductions_test.cc
/// \brief Cross-validates the Sect. 4 complexity reductions against the
/// library's checkers: the reduction target instances must agree with an
/// independent DPLL solver / exact set-cover solver on every random input.

#include "solver/reductions.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/zproblems.h"
#include "solver/sat.h"

namespace certfix {
namespace {

// --- Theorem 1: 3SAT -> consistency ------------------------------------

class ConsistencyReductionTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyReductionTest, ConsistentIffUnsat) {
  Rng rng(GetParam());
  int num_vars = 3 + static_cast<int>(rng.Uniform(0, 2));
  int num_clauses = 2 + static_cast<int>(rng.Uniform(0, 4));
  CnfFormula formula = RandomThreeSat(num_vars, num_clauses, &rng);

  ConsistencyInstance inst = Reduce3SatToConsistency(formula);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  ConsistencyChecker checker(sat);
  Result<bool> consistent =
      checker.IsConsistent(inst.region, /*max_instances=*/2000000);
  ASSERT_TRUE(consistent.ok()) << consistent.status();

  DpllSolver solver;
  bool satisfiable = solver.Solve(formula).has_value();
  EXPECT_EQ(*consistent, !satisfiable) << formula.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, ConsistencyReductionTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ConsistencyReductionTest, KnownSatisfiable) {
  // (x1 v x2 v x3): satisfiable -> inconsistent instance.
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1, 2, 3}};
  ConsistencyInstance inst = Reduce3SatToConsistency(f);
  EXPECT_EQ(inst.rules.size(), 9u * 1 + 2);
  EXPECT_EQ(inst.dm.size(), 3u);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  ConsistencyChecker checker(sat);
  Result<bool> consistent =
      checker.IsConsistent(inst.region, /*max_instances=*/2000000);
  ASSERT_TRUE(consistent.ok()) << consistent.status();
  EXPECT_FALSE(*consistent);
}

TEST(ConsistencyReductionTest, KnownUnsatisfiable) {
  // All sign patterns over {x1, x2, x3}: unsatisfiable -> consistent.
  CnfFormula f;
  f.num_vars = 3;
  for (int bits = 0; bits < 8; ++bits) {
    Clause c;
    for (int v = 1; v <= 3; ++v) {
      c.push_back(((bits >> (v - 1)) & 1) ? v : -v);
    }
    f.clauses.push_back(c);
  }
  ConsistencyInstance inst = Reduce3SatToConsistency(f);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  ConsistencyChecker checker(sat);
  Result<bool> consistent =
      checker.IsConsistent(inst.region, /*max_instances=*/5000000);
  ASSERT_TRUE(consistent.ok()) << consistent.status();
  EXPECT_TRUE(*consistent);
}

// --- Theorems 6 & 9: 3SAT -> Z-validating / Z-counting -----------------

class ZReductionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZReductionTest, ValidateIffSatAndCountEqualsModels) {
  Rng rng(GetParam() * 77 + 5);
  int num_vars = 3 + static_cast<int>(rng.Uniform(0, 1));
  int num_clauses = 2 + static_cast<int>(rng.Uniform(0, 3));
  CnfFormula formula = RandomThreeSat(num_vars, num_clauses, &rng);

  ZInstance inst = Reduce3SatToZProblems(formula);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  ZProblems z(sat);

  ZOptions opts;
  opts.max_patterns = 5000000;
  opts.use_negations = false;  // models correspond to constant patterns
  Result<std::optional<PatternTuple>> witness = z.Validate(inst.z, opts);
  ASSERT_TRUE(witness.ok()) << witness.status();

  DpllSolver solver;
  bool satisfiable = solver.Solve(formula).has_value();
  EXPECT_EQ(witness->has_value(), satisfiable) << formula.ToString();

  // Variables absent from every clause are unmentioned in Sigma; the
  // Sect. 4.2 normalization forces their pattern cell to a wildcard, so
  // the pattern count equals #models / 2^(#unused vars).
  std::vector<bool> used(static_cast<size_t>(formula.num_vars), false);
  for (const Clause& c : formula.clauses) {
    for (Literal lit : c) used[static_cast<size_t>(std::abs(lit) - 1)] = true;
  }
  uint64_t unused_factor = 1;
  for (bool u : used) {
    if (!u) unused_factor *= 2;
  }
  Result<size_t> count = z.Count(inst.z, opts);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, DpllSolver::CountModels(formula) / unused_factor)
      << formula.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, ZReductionTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- Theorem 12: set cover -> Z-minimum ---------------------------------

TEST(SetCoverTest, GreedyAndExactAgreeOnEasyInstances) {
  SetCoverInstance sc;
  sc.universe = 4;
  sc.sets = {{0, 1}, {2, 3}, {0, 1, 2, 3}};
  EXPECT_EQ(MinSetCoverSize(sc), 1u);
  std::vector<size_t> greedy = GreedySetCover(sc);
  EXPECT_EQ(greedy.size(), 1u);
  EXPECT_EQ(greedy[0], 2u);
}

class ZMinReductionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZMinReductionTest, MinZEqualsMinCover) {
  Rng rng(GetParam() * 131 + 7);
  // Random small set-cover instance (universe <= 3, sets <= 4 including
  // the all-elements set) keeping the reduction schema within the exact
  // search budget: h + n(h+1) <= 19 attributes.
  SetCoverInstance sc;
  sc.universe = 2 + rng.Index(2);
  size_t num_sets = 2 + rng.Index(2);
  for (size_t s = 0; s < num_sets; ++s) {
    std::vector<size_t> members;
    for (size_t x = 0; x < sc.universe; ++x) {
      if (rng.Bernoulli(0.6)) members.push_back(x);
    }
    if (members.empty()) members.push_back(rng.Index(sc.universe));
    sc.sets.push_back(std::move(members));
  }
  // Ensure coverability.
  std::vector<size_t> all;
  for (size_t x = 0; x < sc.universe; ++x) all.push_back(x);
  sc.sets.push_back(all);

  ZInstance inst = ReduceSetCoverToZMinimum(sc);
  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  ZProblems z(sat);

  size_t min_cover = MinSetCoverSize(sc);
  ZOptions opts;
  opts.max_patterns = 100000;
  opts.use_negations = false;
  Result<std::optional<std::vector<AttrId>>> zmin =
      z.MinimumExact(min_cover, opts);
  ASSERT_TRUE(zmin.ok()) << zmin.status();
  ASSERT_TRUE(zmin->has_value()) << "no Z of size " << min_cover;
  EXPECT_LE((*zmin)->size(), min_cover);
  if (min_cover > 1) {
    Result<std::optional<std::vector<AttrId>>> smaller =
        z.MinimumExact(min_cover - 1, opts);
    ASSERT_TRUE(smaller.ok()) << smaller.status();
    EXPECT_FALSE(smaller->has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCovers, ZMinReductionTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace certfix
