/// \file crash_recovery_test.cc
/// \brief Crash-recovery differential tests for DurableSession
/// (incremental/durable_session.h): killing the process at ANY WAL byte
/// and recovering must reproduce — byte-for-byte — the engine state
/// after exactly the deltas that were durably acknowledged, and the
/// final state must match a from-scratch BatchRepair (the oracle the
/// whole incremental layer is contracted to).
///
/// The "kill" is simulated by truncating a copy of the state directory's
/// WAL at every record boundary and at mid-record offsets: equivalent to
/// a crash because Apply fsyncs the record before the engine sees it, so
/// the on-disk prefix is exactly the acknowledged history. Seeds follow
/// the CERTFIX_PROPERTY_SEED / --gtest_repeat soak idiom of
/// delta_differential_test.cc. Set CERTFIX_CRASH_ARTIFACT_DIR to keep
/// the state directory of a failing case.

#include "incremental/durable_session.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_repair.h"
#include "relational/csv.h"
#include "util/random.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("CERTFIX_PROPERTY_SEED");
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return 20260807;
}

uint64_t NextSeed() {
  static uint64_t iteration = 0;
  return BaseSeed() + 1009 * iteration++;
}

std::string ToCsv(const Relation& rel) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCsv(rel, out).ok());
  return out.str();
}

/// Fields of row `row` exactly as a delta log would carry them (nulls
/// travel as empty strings; FromStrings maps them back to nulls).
std::vector<std::string> FieldsOf(const Relation& rel, size_t row) {
  std::vector<std::string> out;
  for (size_t a = 0; a < rel.schema()->num_attrs(); ++a) {
    const Value& v = rel.Cell(row, static_cast<AttrId>(a));
    out.push_back(v.is_null() ? "" : v.ToString());
  }
  return out;
}

struct World {
  SchemaPtr schema;
  RuleSet rules;
  Relation master;
  Relation input;
  AttrSet trusted;
  std::vector<Delta> deltas;  ///< valid by construction (positions in range)
};

World MakeWorld(uint64_t seed, size_t num_deltas) {
  World w;
  w.schema = HospWorkload::MakeSchema();
  w.rules = HospWorkload::MakeRules(w.schema);
  Rng rng(seed);
  w.master = HospWorkload::MakeMaster(w.schema, 40, &rng);
  Rng rng2(seed * 31 + 7);
  Relation non_master = HospWorkload::MakeMaster(w.schema, 40, &rng2, 500000);
  Rng rng3(seed * 131 + 3);
  Relation master_pool =
      HospWorkload::MakeMaster(w.schema, 48, &rng3, 900000);

  w.trusted.Add(*w.schema->IndexOf("id"));
  w.trusted.Add(*w.schema->IndexOf("mCode"));

  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 0.6;
  gen_options.noise_rate = 0.4;
  gen_options.protected_attrs = w.trusted;
  gen_options.seed = seed * 7 + 1;
  DirtyGenerator gen(w.master, non_master, gen_options);
  Relation insert_pool(w.schema);
  for (const DirtyPair& pair : gen.Generate(120)) {
    EXPECT_TRUE(insert_pool.Append(pair.dirty).ok());
  }

  w.input = Relation(w.schema);
  size_t next_insert = 0;
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(w.input.Append(insert_pool.at(next_insert++)).ok());
  }

  // A delta script that is valid by construction: track live row counts
  // so positions are always in range and the master never empties.
  size_t rows = w.input.size();
  size_t master_rows = w.master.size();
  size_t next_master = 0;
  Rng script_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  while (w.deltas.size() < num_deltas) {
    double roll = script_rng.NextDouble();
    Delta d;
    if (roll < 0.30 || rows == 0) {
      d.kind = DeltaKind::kInsert;
      d.fields = FieldsOf(insert_pool, next_insert++ % insert_pool.size());
      ++rows;
    } else if (roll < 0.55) {
      d.kind = DeltaKind::kUpdate;
      d.row = script_rng.Index(rows);
      d.fields = FieldsOf(insert_pool, next_insert++ % insert_pool.size());
    } else if (roll < 0.70) {
      d.kind = DeltaKind::kDelete;
      d.row = script_rng.Index(rows);
      --rows;
    } else if (roll < 0.82) {
      d.kind = DeltaKind::kMasterInsert;
      d.fields = FieldsOf(master_pool, next_master++ % master_pool.size());
      ++master_rows;
    } else if (roll < 0.94) {
      d.kind = DeltaKind::kMasterUpdate;
      d.row = script_rng.Index(master_rows);
      d.fields = FieldsOf(master_pool, next_master++ % master_pool.size());
    } else if (master_rows > 10) {
      d.kind = DeltaKind::kMasterDelete;
      d.row = script_rng.Index(master_rows);
      --master_rows;
    } else {
      continue;
    }
    w.deltas.push_back(std::move(d));
  }
  return w;
}

/// Fresh state directory under the gtest temp dir.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Copies a session directory (the "disk image" a crash would leave).
void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

void TruncateFile(const std::string& path, uint64_t len) {
  std::filesystem::resize_file(path, len);
}

/// On failure, keep the directory for postmortem if the artifact env
/// var is set (the CI crash-recovery leg uploads it).
void MaybeSaveArtifact(const std::string& dir, const std::string& label) {
  const char* base = std::getenv("CERTFIX_CRASH_ARTIFACT_DIR");
  if (base == nullptr) return;
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  CopyDir(dir, std::string(base) + "/" + label);
}

/// From-scratch oracle over the session's current input and master.
void ExpectMatchesScratch(DurableSession* session, const RuleSet& rules,
                          AttrSet trusted, const std::string& label) {
  Relation final_input = session->engine().SnapshotInput();
  Relation final_master = session->engine().master();
  MasterIndex index(rules, final_master);
  Saturator sat(rules, final_master, index);
  BatchRepairResult batch = BatchRepair(sat).Repair(final_input, trusted);
  EXPECT_EQ(ToCsv(session->engine().SnapshotRepaired()),
            ToCsv(batch.repaired))
      << label;
}

TEST(CrashRecoveryTest, KillAtEveryWalOffsetRecoversAcknowledgedPrefix) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World w = MakeWorld(seed, 28);

  // Reference run: one uninterrupted durable session, capturing the
  // repaired bytes after every acknowledged delta.
  std::string ref_dir = FreshDir("crash_ref");
  DurableOptions options;  // snapshot_every = 0: everything stays in WAL
  Result<std::unique_ptr<DurableSession>> created = DurableSession::Create(
      ref_dir, w.rules, w.master, w.input, w.trusted, options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<DurableSession> ref = std::move(created).ValueOrDie();

  std::vector<std::string> expected;
  expected.push_back(ToCsv(ref->engine().SnapshotRepaired()));
  for (size_t i = 0; i < w.deltas.size(); ++i) {
    ASSERT_TRUE(ref->Apply(w.deltas[i]).ok()) << "delta " << i;
    expected.push_back(ToCsv(ref->engine().SnapshotRepaired()));
  }
  ExpectMatchesScratch(ref.get(), w.rules, w.trusted, "reference final");
  ref.reset();  // close the WAL fd

  std::string wal_path = ref_dir + "/wal-0.log";
  Result<storage::WalScan> scan = storage::ScanWal(wal_path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->boundaries.size(), w.deltas.size() + 1);

  // Kill at every record boundary and mid-record: recovery must land on
  // exactly the acknowledged prefix.
  std::string crash_dir = FreshDir("crash_img");
  for (size_t k = 0; k <= w.deltas.size(); ++k) {
    std::vector<uint64_t> cuts = {scan->boundaries[k]};
    if (k < w.deltas.size()) {
      // Mid-record: half a frame past boundary k tears record k.
      cuts.push_back(scan->boundaries[k] +
                     (scan->boundaries[k + 1] - scan->boundaries[k]) / 2);
    }
    for (uint64_t cut : cuts) {
      CopyDir(ref_dir, crash_dir);
      TruncateFile(crash_dir + "/wal-0.log", cut);
      Result<std::unique_ptr<DurableSession>> opened =
          DurableSession::Open(crash_dir, options);
      ASSERT_TRUE(opened.ok()) << "cut " << cut << ": " << opened.status();
      std::unique_ptr<DurableSession> session =
          std::move(opened).ValueOrDie();
      EXPECT_EQ(session->recovery().replayed_records, k) << "cut " << cut;
      std::string got = ToCsv(session->engine().SnapshotRepaired());
      if (got != expected[k]) {
        MaybeSaveArtifact(crash_dir,
                          "cut_" + std::to_string(cut) + "_seed_" +
                              std::to_string(seed));
      }
      ASSERT_EQ(got, expected[k]) << "cut " << cut << " (k=" << k << ")";
      if (cut != scan->boundaries[k]) {
        EXPECT_GT(session->recovery().discarded_bytes, 0u)
            << "cut " << cut;
      }
    }
  }
}

TEST(CrashRecoveryTest, RecoveredSessionContinuesIdentically) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World w = MakeWorld(seed, 24);
  size_t half = w.deltas.size() / 2;

  // Uninterrupted run over the full script.
  std::string full_dir = FreshDir("cont_full");
  DurableOptions options;
  Result<std::unique_ptr<DurableSession>> full = DurableSession::Create(
      full_dir, w.rules, w.master, w.input, w.trusted, options);
  ASSERT_TRUE(full.ok()) << full.status();
  for (const Delta& d : w.deltas) {
    ASSERT_TRUE((*full)->Apply(d).ok());
  }
  std::string want = ToCsv((*full)->engine().SnapshotRepaired());

  // Crash after `half` deltas, recover, apply the rest: same bytes.
  std::string crash_dir = FreshDir("cont_crash");
  {
    Result<std::unique_ptr<DurableSession>> first = DurableSession::Create(
        crash_dir, w.rules, w.master, w.input, w.trusted, options);
    ASSERT_TRUE(first.ok()) << first.status();
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE((*first)->Apply(w.deltas[i]).ok());
    }
    // Session dropped here without a snapshot — like a kill -9 (the WAL
    // is synced per append, so nothing else is needed).
  }
  Result<std::unique_ptr<DurableSession>> resumed =
      DurableSession::Open(crash_dir, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ((*resumed)->recovery().replayed_records, half);
  for (size_t i = half; i < w.deltas.size(); ++i) {
    ASSERT_TRUE((*resumed)->Apply(w.deltas[i]).ok()) << "delta " << i;
  }
  EXPECT_EQ(ToCsv((*resumed)->engine().SnapshotRepaired()), want);
  ExpectMatchesScratch(resumed->get(), w.rules, w.trusted,
                       "continued final");
}

TEST(CrashRecoveryTest, SnapshotRotationCommitsAndRecovers) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World w = MakeWorld(seed, 25);

  std::string dir = FreshDir("rotate");
  DurableOptions options;
  options.snapshot_every = 7;
  Result<std::unique_ptr<DurableSession>> created = DurableSession::Create(
      dir, w.rules, w.master, w.input, w.trusted, options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<DurableSession> session = std::move(created).ValueOrDie();
  for (const Delta& d : w.deltas) {
    ASSERT_TRUE(session->Apply(d).ok());
  }
  std::string want = ToCsv(session->engine().SnapshotRepaired());
  uint64_t gen = session->snapshot_id();
  EXPECT_EQ(gen, w.deltas.size() / 7);
  EXPECT_EQ(session->records_since_snapshot(), w.deltas.size() % 7);
  session.reset();

  // Old generations are gone; only the committed one remains.
  EXPECT_FALSE(std::filesystem::exists(dir + "/wal-0.log"));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/snapshot-0.master.col"));
  EXPECT_TRUE(std::filesystem::exists(
      dir + "/snapshot-" + std::to_string(gen) + ".master.col"));

  Result<std::unique_ptr<DurableSession>> reopened =
      DurableSession::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery().snapshot_id, gen);
  EXPECT_EQ((*reopened)->recovery().replayed_records,
            w.deltas.size() % 7);
  EXPECT_EQ(ToCsv((*reopened)->engine().SnapshotRepaired()), want);
  ExpectMatchesScratch(reopened->get(), w.rules, w.trusted,
                       "post-rotation");
}

TEST(CrashRecoveryTest, OutOfCoreMasterRecoversViaMmap) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World w = MakeWorld(seed, 16);

  std::string dir = FreshDir("ooc");
  DurableOptions options;
  options.compress_snapshots = false;  // raw blocks are the mmap-able ones
  Result<std::unique_ptr<DurableSession>> created = DurableSession::Create(
      dir, w.rules, w.master, w.input, w.trusted, options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<DurableSession> writer = std::move(created).ValueOrDie();
  for (const Delta& d : w.deltas) {
    ASSERT_TRUE(writer->Apply(d).ok());
  }
  std::string want = ToCsv(writer->engine().SnapshotRepaired());
  writer.reset();

  // Reopen with a zero RAM budget: the master must load out-of-core —
  // every column borrowed from the mapping — and still repair exactly.
  DurableOptions tight = options;
  tight.mmap_budget_bytes = 0;
  Result<std::unique_ptr<DurableSession>> opened =
      DurableSession::Open(dir, tight);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<DurableSession> session = std::move(opened).ValueOrDie();
  EXPECT_EQ(session->recovery().mapped_columns,
            w.schema->num_attrs());
  EXPECT_EQ(ToCsv(session->engine().SnapshotRepaired()), want);

  // Master deltas still work: the touched columns promote to owned
  // storage copy-on-write; the oracle keeps holding.
  Delta md;
  md.kind = DeltaKind::kMasterDelete;
  md.row = 0;
  ASSERT_TRUE(session->Apply(md).ok());
  ExpectMatchesScratch(session.get(), w.rules, w.trusted,
                       "after mapped-master delta");
}

TEST(CrashRecoveryTest, RejectedDeltasReplayAsDeterministicNoOps) {
  uint64_t seed = NextSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World w = MakeWorld(seed, 8);

  std::string dir = FreshDir("rejected");
  DurableOptions options;
  Result<std::unique_ptr<DurableSession>> created = DurableSession::Create(
      dir, w.rules, w.master, w.input, w.trusted, options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<DurableSession> session = std::move(created).ValueOrDie();
  for (const Delta& d : w.deltas) {
    ASSERT_TRUE(session->Apply(d).ok());
  }
  // A delta the engine rejects (row far out of range) is logged before
  // validation: the caller sees the rejection, and replay must re-reject
  // it identically instead of failing recovery.
  Delta bad;
  bad.kind = DeltaKind::kDelete;
  bad.row = 1u << 20;
  EXPECT_FALSE(session->Apply(bad).ok());
  std::string want = ToCsv(session->engine().SnapshotRepaired());
  session.reset();

  Result<std::unique_ptr<DurableSession>> reopened =
      DurableSession::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // The rejected record is in the WAL and was replayed (as a no-op).
  EXPECT_EQ((*reopened)->recovery().replayed_records,
            w.deltas.size() + 1);
  EXPECT_EQ(ToCsv((*reopened)->engine().SnapshotRepaired()), want);
}

}  // namespace
}  // namespace certfix
