#include "tools/cli.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "relational/csv.h"

namespace certfix {
namespace {

// Writes CSV fixtures under the gtest temp dir and returns their paths.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    master_path_ = dir_ + "/master.csv";
    rules_path_ = dir_ + "/rules.txt";
    input_path_ = dir_ + "/input.csv";
    output_path_ = dir_ + "/out.csv";

    std::ofstream master(master_path_);
    master << "zip,AC,city,name\n"
              "EH7,131,Edi,Ann\n"
              "EH7,131,Edi,Bob\n"
              "NW1,020,Lnd,Cid\n"
              "G11,041,Gla,Dee\n";
    master.close();

    std::ofstream rules(rules_path_);
    rules << "rule r1*: (zip | zip) -> (AC, city | AC, city)\n";
    rules.close();

    std::ofstream input(input_path_);
    input << "zip,AC,city,name\n"
             "EH7,999,WRONG,Eve\n"   // fixable from zip
             "ZZZ,000,None,Fay\n";   // matches no master
    input.close();
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string dir_, master_path_, rules_path_, input_path_, output_path_;
  std::ostringstream out_, err_;
};

TEST_F(CliTest, NoCommandFails) {
  EXPECT_EQ(Run({}), 1);
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(Run({"frobnicate"}), 1);
}

TEST_F(CliTest, MissingFlagValueFails) {
  EXPECT_EQ(Run({"mine", "--master"}), 1);
}

TEST_F(CliTest, MineEmitsParseableRules) {
  ASSERT_EQ(Run({"mine", "--master", master_path_, "--no-conditional"}), 0)
      << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("rule mined"), std::string::npos);
  // zip -> AC and zip -> city must be found.
  EXPECT_NE(text.find("(zip | zip) -> (AC | AC)"), std::string::npos);
  EXPECT_NE(text.find("(zip | zip) -> (city | city)"), std::string::npos);
}

TEST_F(CliTest, AnalyzeReportsRegions) {
  ASSERT_EQ(Run({"analyze", "--master", master_path_, "--rules",
                 rules_path_}),
            0)
      << err_.str();
  std::string text = out_.str();
  EXPECT_NE(text.find("CompCRegion Z:"), std::string::npos);
  EXPECT_NE(text.find("digraph"), std::string::npos);
  // zip and name can only be certified by the user.
  EXPECT_NE(text.find("zip"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
}

TEST_F(CliTest, CheckAcceptsGoodRegion) {
  ASSERT_EQ(Run({"check", "--master", master_path_, "--rules", rules_path_,
                 "--region", "zip,name"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("certain region: yes"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadRegion) {
  // {zip} alone cannot cover name.
  EXPECT_EQ(Run({"check", "--master", master_path_, "--rules", rules_path_,
                 "--region", "zip"}),
            2);
}

TEST_F(CliTest, CheckUnknownAttributeFails) {
  EXPECT_EQ(Run({"check", "--master", master_path_, "--rules", rules_path_,
                 "--region", "nope"}),
            2);
}

TEST_F(CliTest, RepairFixesAndWritesOutput) {
  ASSERT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--output", output_path_}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("cells changed: 2"), std::string::npos);

  Result<Relation> repaired =
      ReadCsvFileInferSchema("Out", output_path_);
  ASSERT_TRUE(repaired.ok());
  // Row 0 fixed from master; row 1 untouched.
  EXPECT_EQ(repaired->at(0).at(1).as_string(), "131");
  EXPECT_EQ(repaired->at(0).at(2).as_string(), "Edi");
  EXPECT_EQ(repaired->at(1).at(1).as_string(), "000");
}

TEST_F(CliTest, RepairThreadsFlagMatchesSequentialOutput) {
  ASSERT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--output", output_path_}),
            0)
      << err_.str();
  std::string sequential = out_.str();
  Result<Relation> seq_rel = ReadCsvFileInferSchema("Out", output_path_);
  ASSERT_TRUE(seq_rel.ok());

  std::string parallel_path = dir_ + "/out_mt.csv";
  ASSERT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--output", parallel_path, "--threads", "4",
                 "--chunk-size", "1"}),
            0)
      << err_.str();
  EXPECT_EQ(out_.str().substr(0, out_.str().find("written to")),
            sequential.substr(0, sequential.find("written to")));
  Result<Relation> par_rel = ReadCsvFileInferSchema("Out", parallel_path);
  ASSERT_TRUE(par_rel.ok());
  ASSERT_EQ(par_rel->size(), seq_rel->size());
  for (size_t i = 0; i < seq_rel->size(); ++i) {
    EXPECT_EQ(par_rel->at(i), seq_rel->at(i)) << "row " << i;
  }
}

TEST_F(CliTest, RepairStreamMatchesBatchRepairByteForByte) {
  ASSERT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--output", output_path_}),
            0)
      << err_.str();
  std::ifstream batch_file(output_path_);
  std::stringstream batch_bytes;
  batch_bytes << batch_file.rdbuf();

  for (const char* threads : {"1", "4"}) {
    std::string stream_path = dir_ + "/out_stream_" + threads + ".csv";
    ASSERT_EQ(Run({"repair-stream", "--master", master_path_, "--rules",
                   rules_path_, "--input", input_path_, "--trusted",
                   "zip,name", "--output", stream_path, "--threads",
                   threads, "--queue-capacity", "2"}),
              0)
        << err_.str();
    EXPECT_NE(out_.str().find("cells changed: 2"), std::string::npos);
    EXPECT_NE(out_.str().find("shards:"), std::string::npos);
    std::ifstream stream_file(stream_path);
    std::stringstream stream_bytes;
    stream_bytes << stream_file.rdbuf();
    EXPECT_EQ(stream_bytes.str(), batch_bytes.str())
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Golden corpus: checked-in fixtures under tests/golden/ with expected
// repaired outputs. Any engine divergence — batch, stream, or delta —
// fails loudly against bytes under version control, not just against a
// sibling engine.

class GoldenTest : public CliTest {
 protected:
  static std::string Golden(const std::string& name) {
    return std::string(CERTFIX_GOLDEN_DIR) + "/" + name;
  }
  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
  }
};

TEST_F(GoldenTest, RepairMatchesGoldenOutput) {
  ASSERT_EQ(Run({"repair", "--master", Golden("master.csv"), "--rules",
                 Golden("rules.rules"), "--input", Golden("input.csv"),
                 "--trusted", "zip,name", "--output", output_path_}),
            0)
      << err_.str();
  EXPECT_EQ(Slurp(output_path_), Slurp(Golden("expected_repair.csv")));
}

TEST_F(GoldenTest, RepairStreamMatchesGoldenOutput) {
  for (const char* threads : {"1", "4"}) {
    ASSERT_EQ(Run({"repair-stream", "--master", Golden("master.csv"),
                   "--rules", Golden("rules.rules"), "--input",
                   Golden("input.csv"), "--trusted", "zip,name", "--output",
                   output_path_, "--threads", threads}),
              0)
        << err_.str();
    EXPECT_EQ(Slurp(output_path_), Slurp(Golden("expected_repair.csv")))
        << "threads=" << threads;
  }
}

TEST_F(GoldenTest, RepairDeltasMatchesGoldenOutput) {
  for (const char* threads : {"1", "4"}) {
    ASSERT_EQ(Run({"repair-deltas", "--master", Golden("master.csv"),
                   "--rules", Golden("rules.rules"), "--input",
                   Golden("input.csv"), "--deltas", Golden("deltas.log"),
                   "--trusted", "zip,name", "--output", output_path_,
                   "--threads", threads, "--queue-capacity", "2"}),
              0)
        << err_.str();
    EXPECT_NE(out_.str().find("invalidated: 2"), std::string::npos)
        << out_.str();
    EXPECT_NE(out_.str().find("rebuilds: 1"), std::string::npos)
        << out_.str();
    EXPECT_EQ(Slurp(output_path_), Slurp(Golden("expected_deltas.csv")))
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Workload generator: `workload gen` output is byte-pinned for two seeds
// under tests/golden/workload/. The specs differ only in seed, so these
// also pin that the seed — and only the seed — moves the bytes.

TEST_F(GoldenTest, WorkloadGenMatchesGoldenFixtures) {
  for (const char* name : {"gen-seed1", "gen-seed2"}) {
    ASSERT_EQ(Run({"workload", "gen", "--spec",
                   Golden(std::string("workload/") + name + ".toml"),
                   "--out-dir", dir_, "--prefix", name}),
              0)
        << err_.str();
    EXPECT_NE(out_.str().find("deltas: 30"), std::string::npos)
        << out_.str();
    for (const char* suffix :
         {"_master.csv", "_initial.csv", ".deltas", ".rules"}) {
      std::string file = std::string(name) + suffix;
      EXPECT_EQ(Slurp(dir_ + "/" + file), Slurp(Golden("workload/" + file)))
          << file;
    }
  }
}

TEST_F(GoldenTest, WorkloadGenIsDeterministicAcrossRuns) {
  std::string spec = Golden("workload/gen-seed1.toml");
  ASSERT_EQ(Run({"workload", "gen", "--spec", spec, "--out-dir", dir_,
                 "--prefix", "run_a"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"workload", "gen", "--spec", spec, "--out-dir", dir_,
                 "--prefix", "run_b"}),
            0)
      << err_.str();
  for (const char* suffix : {"_master.csv", "_initial.csv", ".deltas"}) {
    EXPECT_EQ(Slurp(dir_ + "/run_a" + suffix),
              Slurp(dir_ + "/run_b" + suffix))
        << suffix;
  }
}

TEST_F(CliTest, WorkloadGenMissingFlagsFail) {
  EXPECT_EQ(Run({"workload"}), 1);
  EXPECT_NE(err_.str().find("workload gen"), std::string::npos);
  EXPECT_EQ(Run({"workload", "frobnicate"}), 1);
  EXPECT_EQ(Run({"workload", "gen"}), 1);
  EXPECT_NE(err_.str().find("--spec"), std::string::npos);
  EXPECT_EQ(Run({"workload", "gen", "--spec", rules_path_}), 1);
  EXPECT_NE(err_.str().find("--out-dir"), std::string::npos);
}

TEST_F(CliTest, WorkloadGenRejectsBadSpec) {
  EXPECT_EQ(Run({"workload", "gen", "--spec", dir_ + "/nope.toml",
                 "--out-dir", dir_}),
            2);
  std::string bad_path = dir_ + "/bad.toml";
  std::ofstream bad(bad_path);
  bad << "workload = \"hosp\"\nnot_a_knob = 3\n";
  bad.close();
  EXPECT_EQ(Run({"workload", "gen", "--spec", bad_path, "--out-dir", dir_}),
            2);
  EXPECT_NE(err_.str().find("not_a_knob"), std::string::npos);
}

TEST_F(CliTest, RepairDeltasMissingFlagsFail) {
  // --deltas is required.
  EXPECT_EQ(Run({"repair-deltas", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name"}),
            1);
  EXPECT_NE(err_.str().find("--deltas"), std::string::npos);
}

TEST_F(CliTest, RepairDeltasRejectsMalformedLog) {
  std::string deltas_path = dir_ + "/bad.deltas";
  std::ofstream deltas(deltas_path);
  deltas << "X,0\n";  // unknown op
  deltas.close();
  EXPECT_EQ(Run({"repair-deltas", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--deltas",
                 deltas_path, "--trusted", "zip,name"}),
            2);
  EXPECT_NE(err_.str().find("unknown op"), std::string::npos);
}

TEST_F(CliTest, RepairStreamMissingFlagsFail) {
  EXPECT_EQ(Run({"repair-stream", "--master", master_path_, "--rules",
                 rules_path_}),
            1);
  EXPECT_EQ(Run({"repair-stream", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--threads", "nope"}),
            1);
}

TEST_F(CliTest, RepairMissingFlagsFail) {
  EXPECT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_}),
            1);
}

TEST_F(CliTest, RepairRejectsNonNumericThreads) {
  for (const char* bad : {"four", "-1", "2x", ""}) {
    EXPECT_EQ(Run({"repair", "--master", master_path_, "--rules",
                   rules_path_, "--input", input_path_, "--trusted",
                   "zip,name", "--threads", bad}),
              1)
        << "value '" << bad << "'";
    EXPECT_NE(err_.str().find("non-negative integer"), std::string::npos);
  }
  EXPECT_EQ(Run({"repair", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--trusted",
                 "zip,name", "--chunk-size", "oops"}),
            1);
}

TEST_F(CliTest, MissingFilesReported) {
  EXPECT_EQ(Run({"mine", "--master", dir_ + "/nope.csv"}), 2);
  EXPECT_EQ(Run({"analyze", "--master", master_path_, "--rules",
                 dir_ + "/nope.rules"}),
            2);
}

// ---------------------------------------------------------------------------
// Telemetry surface: --metrics-json is golden-pinned under the fake
// clock, --trace-out emits a balanced Chrome trace, and --no-telemetry
// must not move the repaired bytes or summary.

TEST_F(GoldenTest, RepairMetricsJsonMatchesGoldenFixture) {
  std::string metrics_path = dir_ + "/metrics.json";
  ASSERT_EQ(Run({"repair", "--master", Golden("master.csv"), "--rules",
                 Golden("rules.rules"), "--input", Golden("input.csv"),
                 "--trusted", "zip,name", "--metrics-deterministic",
                 "--metrics-json", metrics_path}),
            0)
      << err_.str();
  EXPECT_EQ(Slurp(metrics_path), Slurp(Golden("metrics/repair_metrics.json")));
}

TEST_F(GoldenTest, RepairStreamTraceOutIsBalanced) {
  std::string trace_path = dir_ + "/trace.json";
  std::string metrics_path = dir_ + "/stream_metrics.json";
  ASSERT_EQ(Run({"repair-stream", "--master", Golden("master.csv"),
                 "--rules", Golden("rules.rules"), "--input",
                 Golden("input.csv"), "--trusted", "zip,name", "--threads",
                 "2", "--trace-out", trace_path, "--metrics-json",
                 metrics_path}),
            0)
      << err_.str();
  std::string trace = Slurp(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("stream.shard_repair"), std::string::npos);
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = trace.find("\"ph\": \"", pos)) != std::string::npos) {
    (trace[pos + 7] == 'B' ? begins : ends)++;
    ++pos;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  // The metrics snapshot rides along and names the hot-path histograms.
  std::string metrics = Slurp(metrics_path);
  EXPECT_NE(metrics.find("\"repair_tuple_ns\""), std::string::npos);
  EXPECT_NE(metrics.find("\"queue_push_wait_ns\""), std::string::npos);
}

TEST_F(GoldenTest, NoTelemetryFlagKeepsOutputIdentical) {
  ASSERT_EQ(Run({"repair", "--master", Golden("master.csv"), "--rules",
                 Golden("rules.rules"), "--input", Golden("input.csv"),
                 "--trusted", "zip,name", "--output", output_path_,
                 "--no-telemetry"}),
            0)
      << err_.str();
  EXPECT_EQ(Slurp(output_path_), Slurp(Golden("expected_repair.csv")));
  EXPECT_NE(out_.str().find("cells changed:"), std::string::npos);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

TEST_F(CliTest, RepairDeltasWalPersistsAndMatchesPlainRun) {
  std::string deltas_path = dir_ + "/wal.deltas";
  {
    std::ofstream deltas(deltas_path);
    deltas << "I,,G11,000,Wrong,New\n"  // fixable from master's G11 row
              "U,0,NW1,999,Nope,Eve\n"
              "D,1\n";
  }
  std::string wal_dir = dir_ + "/wal_session";
  std::filesystem::remove_all(wal_dir);

  // Plain run is the reference.
  std::string plain_out = dir_ + "/plain.csv";
  ASSERT_EQ(Run({"repair-deltas", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--deltas",
                 deltas_path, "--trusted", "zip,name", "--output",
                 plain_out}),
            0)
      << err_.str();

  // Durable run: same bytes, plus a committed session directory.
  std::string durable_out = dir_ + "/durable.csv";
  ASSERT_EQ(Run({"repair-deltas", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--deltas",
                 deltas_path, "--trusted", "zip,name", "--wal", wal_dir,
                 "--output", durable_out}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("wal: " + wal_dir), std::string::npos);
  EXPECT_EQ(ReadAll(durable_out), ReadAll(plain_out));
  EXPECT_TRUE(std::filesystem::exists(wal_dir + "/MANIFEST"));

  // recover needs nothing but the directory.
  std::string recovered_out = dir_ + "/recovered.csv";
  ASSERT_EQ(Run({"recover", "--dir", wal_dir, "--output", recovered_out}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("recovered " + wal_dir), std::string::npos);
  EXPECT_NE(out_.str().find("replayed: 3"), std::string::npos);
  EXPECT_EQ(ReadAll(recovered_out), ReadAll(plain_out));

  // An existing --wal dir resumes the session: master/rules/input come
  // from the directory, and more deltas append on top.
  std::string more_path = dir_ + "/more.deltas";
  {
    std::ofstream deltas(more_path);
    deltas << "I,,EH7,1,2,Zed\n";
  }
  ASSERT_EQ(Run({"repair-deltas", "--wal", wal_dir, "--deltas", more_path,
                 "--output", durable_out}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("recovered " + wal_dir), std::string::npos);
  EXPECT_NE(ReadAll(durable_out), ReadAll(plain_out));

  // snapshot rotates the generation and empties the WAL.
  ASSERT_EQ(Run({"snapshot", "--dir", wal_dir}), 0) << err_.str();
  EXPECT_NE(out_.str().find("snapshot generation"), std::string::npos);
  ASSERT_EQ(Run({"recover", "--dir", wal_dir}), 0) << err_.str();
  EXPECT_NE(out_.str().find("replayed: 0"), std::string::npos);
}

TEST_F(CliTest, RecoverSurvivesTornWalTail) {
  std::string deltas_path = dir_ + "/torn.deltas";
  {
    std::ofstream deltas(deltas_path);
    deltas << "I,,G11,000,Wrong,New\nD,0\n";
  }
  std::string wal_dir = dir_ + "/torn_session";
  std::filesystem::remove_all(wal_dir);
  ASSERT_EQ(Run({"repair-deltas", "--master", master_path_, "--rules",
                 rules_path_, "--input", input_path_, "--deltas",
                 deltas_path, "--trusted", "zip,name", "--wal", wal_dir}),
            0)
      << err_.str();

  // Chop the last 3 bytes off the WAL: a torn final record.
  std::string wal_path = wal_dir + "/wal-0.log";
  uint64_t size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 3);
  ASSERT_EQ(Run({"recover", "--dir", wal_dir}), 0) << err_.str();
  EXPECT_NE(out_.str().find("replayed: 1"), std::string::npos);
  EXPECT_NE(out_.str().find("discarded bytes:"), std::string::npos);
}

TEST_F(CliTest, SnapshotAndRecoverRequireDir) {
  EXPECT_EQ(Run({"snapshot"}), 1);
  EXPECT_NE(err_.str().find("--dir"), std::string::npos);
  EXPECT_EQ(Run({"recover"}), 1);
  EXPECT_EQ(Run({"recover", "--dir", dir_ + "/no_such_session"}), 2);
}

TEST_F(CliTest, MinedRulesRoundTripThroughParser) {
  ASSERT_EQ(Run({"mine", "--master", master_path_}), 0) << err_.str();
  // Feed the mined DSL back through the repair path via a fresh file.
  std::string mined_path = dir_ + "/mined.rules";
  std::ofstream mined(mined_path);
  mined << out_.str();
  mined.close();
  EXPECT_EQ(Run({"repair", "--master", master_path_, "--rules", mined_path,
                 "--input", input_path_, "--trusted", "zip,name"}),
            0)
      << err_.str();
}

}  // namespace
}  // namespace certfix
