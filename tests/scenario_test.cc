// Unit tests for the adversarial scenario generator (workload/scenario.h):
// the TOML-subset spec parser, the popularity/arrival/error models, and
// the per-(spec, seed) byte-determinism contract. Cross-engine agreement
// over the checked-in corpus lives in scenario_corpus_test.cc.

#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"
#include "workload/arrival.h"
#include "workload/dblp.h"
#include "workload/error_model.h"

namespace certfix {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(ScenarioSpecTest, ParsesFullSpec) {
  const char* text = R"(
name = "full"
workload = "dblp"
seed = 9
master_rows = 50
initial_rows = 10
deltas = 77
duplicate_rate = 0.5

[popularity]
kind = "hotset"          # inline comment
hot_fraction = 0.2
hot_rate = 0.8
shift_every = 25

[arrival]
kind = "bursty"
master_ratio = 0.3
burst_min = 2
burst_max = 5

[errors]
tuple_error_rate = 0.4
cluster_len = 2
hostile_weight = 0.3
master_noise_rate = 0.1
)";
  Result<ScenarioSpec> spec = ParseScenarioSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "full");
  EXPECT_EQ(spec->workload, "dblp");
  EXPECT_EQ(spec->seed, 9u);
  EXPECT_EQ(spec->master_rows, 50u);
  EXPECT_EQ(spec->initial_rows, 10u);
  EXPECT_EQ(spec->num_deltas, 77u);
  EXPECT_DOUBLE_EQ(spec->duplicate_rate, 0.5);
  EXPECT_EQ(spec->popularity.kind, PopularityKind::kHotSet);
  EXPECT_DOUBLE_EQ(spec->popularity.hot_fraction, 0.2);
  EXPECT_EQ(spec->popularity.shift_every, 25u);
  EXPECT_EQ(spec->arrival.kind, ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(spec->arrival.master_ratio, 0.3);
  EXPECT_EQ(spec->arrival.burst_min, 2u);
  EXPECT_EQ(spec->arrival.burst_max, 5u);
  EXPECT_DOUBLE_EQ(spec->errors.tuple_error_rate, 0.4);
  EXPECT_EQ(spec->errors.cluster_len, 2u);
  EXPECT_DOUBLE_EQ(spec->errors.hostile_weight, 0.3);
  EXPECT_DOUBLE_EQ(spec->master_noise_rate, 0.1);
}

TEST(ScenarioSpecTest, DefaultNameComesFromCaller) {
  Result<ScenarioSpec> spec =
      ParseScenarioSpec("workload = \"hosp\"\n", "stem-name");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "stem-name");
}

TEST(ScenarioSpecTest, UnknownTopLevelKeyFails) {
  Result<ScenarioSpec> spec = ParseScenarioSpec("wrkload = \"hosp\"\n", "x");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
  EXPECT_NE(spec.status().message().find("wrkload"), std::string::npos);
  EXPECT_NE(spec.status().message().find("line 1"), std::string::npos);
}

TEST(ScenarioSpecTest, UnknownSectionKeyFails) {
  Result<ScenarioSpec> spec =
      ParseScenarioSpec("[popularity]\nalfa = 1.0\n", "x");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("[popularity]"), std::string::npos);
}

TEST(ScenarioSpecTest, UnknownSectionFails) {
  Result<ScenarioSpec> spec = ParseScenarioSpec("[popluarity]\n", "x");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

TEST(ScenarioSpecTest, MalformedValuesFail) {
  EXPECT_FALSE(ParseScenarioSpec("seed = \"nine\"\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("seed = -3\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("duplicate_rate = abc\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("name = \"unterminated\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("name = \"a\" trailing\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("just-a-token\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("= 3\n", "x").ok());
}

TEST(ScenarioSpecTest, ValidationRejectsBadRanges) {
  EXPECT_FALSE(ParseScenarioSpec("workload = \"oops\"\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("duplicate_rate = 1.5\n", "x").ok());
  EXPECT_FALSE(ParseScenarioSpec("master_rows = 0\n", "x").ok());
  EXPECT_FALSE(
      ParseScenarioSpec("[popularity]\nkind = \"zipf\"\nalpha = 0\n", "x")
          .ok());
  EXPECT_FALSE(
      ParseScenarioSpec("[arrival]\nburst_min = 4\nburst_max = 2\n", "x")
          .ok());
  EXPECT_FALSE(
      ParseScenarioSpec("[errors]\ntuple_error_rate = 2.0\n", "x").ok());
  // A spec with no name at all (empty default) must be rejected.
  EXPECT_FALSE(ParseScenarioSpec("workload = \"hosp\"\n", "").ok());
}

// ---------------------------------------------------------------------------
// Popularity models.

TEST(PopularityModelTest, ZipfSkewsTowardLowIndices) {
  PopularityOptions opts;
  opts.kind = PopularityKind::kZipf;
  opts.alpha = 1.5;
  PopularityModel model(opts);
  Rng rng(7);
  size_t low = 0;
  const size_t kTrials = 4000;
  for (size_t i = 0; i < kTrials; ++i) {
    size_t pick = model.Pick(1000, i, &rng);
    ASSERT_LT(pick, 1000u);
    if (pick < 100) ++low;
  }
  // Under uniform, the first decile gets ~10%. The dyadic power law puts
  // roughly p^log2(10) there with p = (1+alpha)/(2+alpha) — about 33% at
  // alpha 1.5. Requiring > 20% leaves sampling headroom while still
  // rejecting a uniform regression by a wide margin.
  EXPECT_GT(low, kTrials / 5);
}

TEST(PopularityModelTest, HotSetStaysInWindowAtRateOne) {
  PopularityOptions opts;
  opts.kind = PopularityKind::kHotSet;
  opts.hot_fraction = 0.1;
  opts.hot_rate = 1.0;
  opts.shift_every = 0;
  PopularityModel model(opts);
  Rng rng(7);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_LT(model.Pick(100, i, &rng), 10u);
  }
}

TEST(PopularityModelTest, HotSetRotatesWithStep) {
  PopularityOptions opts;
  opts.kind = PopularityKind::kHotSet;
  opts.hot_fraction = 0.1;
  opts.hot_rate = 1.0;
  opts.shift_every = 10;
  PopularityModel model(opts);
  Rng rng(7);
  // Steps 10..19 use the second window [10, 20).
  for (size_t i = 10; i < 20; ++i) {
    size_t pick = model.Pick(100, i, &rng);
    EXPECT_GE(pick, 10u);
    EXPECT_LT(pick, 20u);
  }
}

// ---------------------------------------------------------------------------
// Arrival models.

TEST(ArrivalModelTest, SteadyRespectsZeroWeights) {
  ArrivalOptions opts;
  opts.kind = ArrivalKind::kSteady;
  opts.insert_weight = 1.0;
  opts.update_weight = 0.0;
  opts.delete_weight = 0.0;
  ArrivalModel model(opts);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(model.Next(&rng), OpClass::kInsert);
  }
}

TEST(ArrivalModelTest, MasterRatioOneYieldsOnlyMasterOps) {
  ArrivalOptions opts;
  opts.master_ratio = 1.0;
  ArrivalModel model(opts);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    OpClass op = model.Next(&rng);
    EXPECT_TRUE(op == OpClass::kMasterInsert || op == OpClass::kMasterUpdate ||
                op == OpClass::kMasterDelete);
  }
}

TEST(ArrivalModelTest, BurstyEmitsRunsWithinBounds) {
  ArrivalOptions opts;
  opts.kind = ArrivalKind::kBursty;
  opts.burst_min = 3;
  opts.burst_max = 6;
  ArrivalModel model(opts);
  Rng rng(11);
  // Collect run lengths over a long sequence; every maximal run of one
  // class must be a concatenation of bursts, so runs are >= burst_min.
  std::vector<size_t> runs;
  OpClass prev = model.Next(&rng);
  size_t len = 1;
  for (int i = 0; i < 2000; ++i) {
    OpClass op = model.Next(&rng);
    if (op == prev) {
      ++len;
    } else {
      runs.push_back(len);
      prev = op;
      len = 1;
    }
  }
  ASSERT_FALSE(runs.empty());
  for (size_t r : runs) EXPECT_GE(r, opts.burst_min);
}

// ---------------------------------------------------------------------------
// Error model.

TEST(ErrorModelTest, ProtectedAttrsAreNeverCorrupted) {
  SchemaPtr schema = Schema::Make("R", {"a", "b", "c", "d"});
  ErrorModelOptions opts;
  opts.tuple_error_rate = 1.0;
  opts.cluster_len = 4;
  opts.protected_attrs.Add(0);
  opts.protected_attrs.Add(2);
  ErrorModel model(opts, 5);
  for (int i = 0; i < 200; ++i) {
    Tuple t(schema, {Value::Str("aa"), Value::Str("bb"), Value::Str("cc"),
                     Value::Str("dd")});
    AttrSet corrupted = model.CorruptTuple(&t);
    EXPECT_FALSE(corrupted.Contains(0));
    EXPECT_FALSE(corrupted.Contains(2));
    EXPECT_EQ(t.at(0), Value::Str("aa"));
    EXPECT_EQ(t.at(2), Value::Str("cc"));
  }
}

TEST(ErrorModelTest, ClusterCorruptionIsContiguous) {
  SchemaPtr schema = Schema::Make("R", {"a", "b", "c", "d", "e", "f"});
  ErrorModelOptions opts;
  opts.tuple_error_rate = 1.0;
  opts.cluster_len = 2;
  // Nulls only, so every picked attribute visibly changes.
  opts.typo_weight = 0;
  opts.null_weight = 1;
  opts.transpose_weight = 0;
  opts.swap_weight = 0;
  opts.hostile_weight = 0;
  ErrorModel model(opts, 5);
  for (int i = 0; i < 100; ++i) {
    Tuple t(schema, {Value::Str("v0"), Value::Str("v1"), Value::Str("v2"),
                     Value::Str("v3"), Value::Str("v4"), Value::Str("v5")});
    AttrSet corrupted = model.CorruptTuple(&t);
    std::vector<AttrId> attrs = corrupted.ToVector();
    ASSERT_EQ(attrs.size(), 2u);
    // Contiguous modulo wrap-around over 6 attributes.
    size_t gap = attrs[1] - attrs[0];
    EXPECT_TRUE(gap == 1 || gap == 5) << "attrs " << attrs[0] << "," << attrs[1];
  }
}

TEST(ErrorModelTest, HostileValuesRoundTripThroughCsv) {
  ErrorModelOptions opts;
  ErrorModel model(opts, 5);
  for (int i = 0; i < 300; ++i) {
    Value bad = model.CorruptValue(Value::Str("plain"), DataType::kString,
                                   ErrorKind::kHostile);
    ASSERT_TRUE(bad.is_string());
    std::string line = FormatCsvLine({bad.as_string()});
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    ASSERT_TRUE(fields.ok()) << fields.status() << " for " << line;
    ASSERT_EQ(fields->size(), 1u);
    EXPECT_EQ((*fields)[0], bad.as_string());
  }
}

TEST(ErrorModelTest, BurstContinueExtendsDirtyRuns) {
  ErrorModelOptions opts;
  opts.tuple_error_rate = 0.05;
  opts.burst_continue = 0.95;
  ErrorModel model(opts, 5);
  // With a high continuation probability, dirty tuples must arrive in
  // runs: count dirty-after-dirty transitions vs dirty-after-clean.
  size_t dirty_after_dirty = 0, dirty = 0, total = 20000;
  bool prev = false;
  for (size_t i = 0; i < total; ++i) {
    bool d = model.NextTupleDirty();
    if (d) {
      ++dirty;
      if (prev) ++dirty_after_dirty;
    }
    prev = d;
  }
  ASSERT_GT(dirty, 0u);
  // P(dirty | prev dirty) ~ 0.95 vs marginal ~0.5; require a wide margin.
  EXPECT_GT(static_cast<double>(dirty_after_dirty) /
                static_cast<double>(dirty),
            0.6);
}

// ---------------------------------------------------------------------------
// Generation + determinism.

std::string CsvBytes(const Relation& rel) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCsv(rel, out).ok());
  return out.str();
}

ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.workload = "hosp";
  spec.seed = 77;
  spec.master_rows = 40;
  spec.initial_rows = 15;
  spec.num_deltas = 120;
  spec.arrival.master_ratio = 0.15;
  spec.errors.tuple_error_rate = 0.3;
  spec.errors.cluster_len = 3;
  spec.errors.hostile_weight = 0.15;
  spec.master_noise_rate = 0.1;
  return spec;
}

TEST(ScenarioGenTest, SameSpecSameBytes) {
  ScenarioSpec spec = SmallSpec();
  Result<Scenario> a = GenerateScenario(spec);
  Result<Scenario> b = GenerateScenario(spec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(CsvBytes(a->master), CsvBytes(b->master));
  EXPECT_EQ(CsvBytes(a->initial), CsvBytes(b->initial));
  EXPECT_EQ(DeltaLogToString(*a), DeltaLogToString(*b));
}

TEST(ScenarioGenTest, DifferentSeedsDifferentBytes) {
  ScenarioSpec spec = SmallSpec();
  Result<Scenario> a = GenerateScenario(spec);
  spec.seed = 78;
  Result<Scenario> b = GenerateScenario(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(DeltaLogToString(*a), DeltaLogToString(*b));
}

TEST(ScenarioGenTest, TrustedCellsStayCleanInInitialRows) {
  // The certain-fix premise: t[Z] is correct at entry. The generator must
  // never corrupt trusted cells, so every initial row's trusted values
  // must be parseable non-hostile workload values (no nulls).
  Result<Scenario> sc = GenerateScenario(SmallSpec());
  ASSERT_TRUE(sc.ok()) << sc.status();
  std::vector<AttrId> trusted = sc->trusted.ToVector();
  for (size_t i = 0; i < sc->initial.size(); ++i) {
    for (AttrId a : trusted) {
      EXPECT_FALSE(sc->initial.Cell(i, a).is_null())
          << "null trusted cell at row " << i;
    }
  }
}

TEST(ScenarioGenTest, DeltaLogParsesBackExactly) {
  Result<Scenario> sc = GenerateScenario(SmallSpec());
  ASSERT_TRUE(sc.ok()) << sc.status();
  std::istringstream in(DeltaLogToString(*sc));
  DeltaLogSource source(sc->schema, sc->schema, in);
  Delta d;
  size_t count = 0;
  for (;;) {
    Result<bool> got = source.Next(&d);
    ASSERT_TRUE(got.ok()) << got.status();
    if (!*got) break;
    ASSERT_LT(count, sc->deltas.size());
    const Delta& want = sc->deltas[count];
    EXPECT_EQ(d.kind, want.kind) << "delta " << count;
    EXPECT_EQ(d.row, want.row) << "delta " << count;
    EXPECT_EQ(d.fields, want.fields) << "delta " << count;
    ++count;
  }
  EXPECT_EQ(count, sc->deltas.size());
}

TEST(ScenarioGenTest, ReplayMatchesGeneratorMirror) {
  // ApplyDeltaLog over (initial, master) must never go out of range on a
  // generated log — the generator maintained the same positional mirror.
  Result<Scenario> sc = GenerateScenario(SmallSpec());
  ASSERT_TRUE(sc.ok()) << sc.status();
  std::vector<std::vector<std::string>> input = RenderRows(sc->initial);
  std::vector<std::vector<std::string>> master = RenderRows(sc->master);
  Status st = ApplyDeltaLog(sc->deltas, &input, &master);
  ASSERT_TRUE(st.ok()) << st;
  // Master never drops below the generator's floor.
  EXPECT_GE(master.size(), 8u);
  // Rebuilding relations from replayed rows must type-check.
  EXPECT_TRUE(RelationFromRows(sc->schema, input).ok());
  EXPECT_TRUE(RelationFromRows(sc->schema, master).ok());
}

TEST(ScenarioGenTest, ApplyDeltaLogRejectsOutOfRange) {
  std::vector<Delta> deltas(1);
  deltas[0].kind = DeltaKind::kDelete;
  deltas[0].row = 3;
  std::vector<std::vector<std::string>> input = {{"a"}, {"b"}};
  std::vector<std::vector<std::string>> master;
  Status st = ApplyDeltaLog(deltas, &input, &master);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(ScenarioGenTest, DblpWorkloadGenerates) {
  ScenarioSpec spec = SmallSpec();
  spec.workload = "dblp";
  Result<Scenario> sc = GenerateScenario(spec);
  ASSERT_TRUE(sc.ok()) << sc.status();
  EXPECT_EQ(sc->schema->name(), DblpWorkload::MakeSchema()->name());
  EXPECT_EQ(sc->master.size(), spec.master_rows);
  EXPECT_EQ(sc->initial.size(), spec.initial_rows);
  EXPECT_EQ(sc->deltas.size(), spec.num_deltas);
}

}  // namespace
}  // namespace certfix
