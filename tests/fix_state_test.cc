#include "core/fix_state.h"

#include <gtest/gtest.h>

#include "core/saturation.h"
#include "test_util.h"
#include "util/random.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class FixStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
};

TEST_F(FixStateTest, EnabledMovesRespectJustification) {
  // With Z = {zip}: only phi1-3 (lhs zip, empty pattern) are enabled.
  FixState state(T1(r_), Attrs(r_, {"zip"}));
  std::vector<FixMove> moves = state.EnabledMoves(rules_, *index_);
  ASSERT_EQ(moves.size(), 3u);
  for (const FixMove& m : moves) {
    EXPECT_LT(m.rule_idx, 3u);
    EXPECT_EQ(m.master_idx, 0u);  // s1 matches t1's zip
  }
}

TEST_F(FixStateTest, PatternAttrsMustBeValidated) {
  // phi4 needs phn (lhs) and type (pattern) validated; phn alone is not
  // enough.
  FixState only_phn(T1(r_), Attrs(r_, {"phn"}));
  EXPECT_TRUE(only_phn.EnabledMoves(rules_, *index_).empty());
  FixState both(T1(r_), Attrs(r_, {"phn", "type"}));
  std::vector<FixMove> moves = both.EnabledMoves(rules_, *index_);
  EXPECT_EQ(moves.size(), 2u);  // phi4 (fn) and phi5 (ln)
}

TEST_F(FixStateTest, ApplyValidatesAndProtects) {
  FixState state(T1(r_), Attrs(r_, {"zip"}));
  std::vector<FixMove> moves = state.EnabledMoves(rules_, *index_);
  ASSERT_FALSE(moves.empty());
  FixMove first = moves[0];
  state.Apply(rules_, first);
  EXPECT_TRUE(state.validated().Contains(first.attr));
  EXPECT_EQ(state.tuple().at(first.attr), first.value);
  // The same rule is no longer enabled (its target is protected).
  for (const FixMove& m : state.EnabledMoves(rules_, *index_)) {
    EXPECT_NE(m.attr, first.attr);
  }
}

TEST_F(FixStateTest, IsEnabledMatchesEnumeration) {
  FixState state(T1(r_), Attrs(r_, {"zip"}));
  for (const FixMove& m : state.EnabledMoves(rules_, *index_)) {
    EXPECT_TRUE(state.IsEnabled(rules_, dm_, m));
  }
  // A move with the wrong master is not enabled.
  FixMove bogus{0, 1, A(r_, "AC"), Value::Str("020")};
  EXPECT_FALSE(state.IsEnabled(rules_, dm_, bogus));
}

TEST_F(FixStateTest, RandomOrderReachesSaturatorFixpoint) {
  // Confluence (DESIGN.md 2.1): any maximal sequence of single-step
  // applications ends at the batch-saturation fixpoint when the fix is
  // unique. Exercised over random orders and several starting regions.
  Saturator sat(rules_, dm_, *index_);
  Rng rng(123);
  for (const auto& names :
       {std::vector<std::string>{"zip"},
        std::vector<std::string>{"zip", "phn", "type"},
        std::vector<std::string>{"type", "AC", "phn"}}) {
    AttrSet z = Attrs(r_, names);
    SaturationResult expected = sat.CheckUniqueFix(T1(r_), z);
    if (!expected.unique) continue;
    for (int trial = 0; trial < 20; ++trial) {
      FixState state(T1(r_), z);
      while (true) {
        std::vector<FixMove> moves = state.EnabledMoves(rules_, *index_);
        if (moves.empty()) break;
        state.Apply(rules_, moves[rng.Index(moves.size())]);
      }
      EXPECT_EQ(state.tuple(), expected.fixed);
      EXPECT_EQ(state.validated(), expected.covered);
    }
  }
}

TEST_F(FixStateTest, FixpointDetection) {
  FixState state(T4(r_), Attrs(r_, {"zip"}));
  EXPECT_TRUE(state.IsFixpoint(rules_, *index_));
  FixState busy(T1(r_), Attrs(r_, {"zip"}));
  EXPECT_FALSE(busy.IsFixpoint(rules_, *index_));
}

}  // namespace
}  // namespace certfix
