#include "repair/increp.h"

#include <gtest/gtest.h>

#include "repair/cost_model.h"
#include "repair/equivalence.h"

namespace certfix {
namespace {

SchemaPtr S() {
  return Schema::Make(
      "R", std::vector<std::string>{"AC", "city", "zip", "name"});
}

CfdSet ExampleCfds(const SchemaPtr& s) {
  CfdSet cfds(s);
  PatternTuple tp020(s);
  tp020.SetConst(0, Value::Str("020"));
  tp020.SetConst(1, Value::Str("Ldn"));
  EXPECT_TRUE(
      cfds.Add(std::move(Cfd::Make("ac020", s, {0}, 1, std::move(tp020)))
                   .ValueOrDie())
          .ok());
  PatternTuple tp131(s);
  tp131.SetConst(0, Value::Str("131"));
  tp131.SetConst(1, Value::Str("Edi"));
  EXPECT_TRUE(
      cfds.Add(std::move(Cfd::Make("ac131", s, {0}, 1, std::move(tp131)))
                   .ValueOrDie())
          .ok());
  // Variable FD zip -> city.
  PatternTuple tpv(s);
  EXPECT_TRUE(
      cfds.Add(std::move(Cfd::Make("zipcity", s, {2}, 1, std::move(tpv)))
                   .ValueOrDie())
          .ok());
  return cfds;
}

TEST(CellPartitionTest, UnionFindBasics) {
  CellPartition p(3, 2);
  Cell a{0, 0};
  Cell b{1, 0};
  Cell c{2, 1};
  EXPECT_NE(p.Find(a), p.Find(b));
  EXPECT_TRUE(p.Union(a, b));
  EXPECT_EQ(p.Find(a), p.Find(b));
  EXPECT_NE(p.Find(a), p.Find(c));
}

TEST(CellPartitionTest, PinsAndClashes) {
  CellPartition p(2, 2);
  Cell a{0, 0};
  Cell b{1, 0};
  EXPECT_TRUE(p.Pin(a, Value::Str("x")));
  EXPECT_TRUE(p.Pin(a, Value::Str("x")));   // same pin ok
  EXPECT_FALSE(p.Pin(a, Value::Str("y")));  // clash
  EXPECT_TRUE(p.Pin(b, Value::Str("y")));
  EXPECT_FALSE(p.Union(a, b));  // pin clash on merge
  // Merged class keeps the first pin.
  ASSERT_TRUE(p.PinOf(a).has_value());
}

TEST(CellPartitionTest, ClassesEnumeration) {
  CellPartition p(2, 2);
  p.Union(Cell{0, 0}, Cell{1, 0});
  std::vector<std::vector<Cell>> classes = p.Classes();
  // 4 cells, one merged pair -> 3 classes.
  EXPECT_EQ(classes.size(), 3u);
  size_t merged = 0;
  for (const auto& cls : classes) {
    if (cls.size() == 2) ++merged;
  }
  EXPECT_EQ(merged, 1u);
}

TEST(CostModelTest, DistanceProperties) {
  EXPECT_DOUBLE_EQ(CostModel::Distance(Value::Str("x"), Value::Str("x")), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::Distance(Value(), Value::Str("x")), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::Distance(Value::Str("x"), Value()), 1.0);
  double d = CostModel::Distance(Value::Str("Lnd"), Value::Str("Ldn"));
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(CostModelTest, WeightsScaleCost) {
  SchemaPtr s = S();
  Relation rel(s);
  ASSERT_TRUE(rel.AppendStrings({"020", "Edi", "z", "n"}).ok());
  CostModel costs(rel.size(), s->num_attrs());
  double base = costs.ChangeCost(rel, 0, 1, Value::Str("Ldn"));
  costs.SetWeight(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(costs.ChangeCost(rel, 0, 1, Value::Str("Ldn")), 3 * base);
}

TEST(IncRepTest, FixesConstantViolation) {
  // Example 1's heuristic behaviour: IncRep resolves t1's (020, Edi)
  // violation by changing city to Ldn — which the paper criticizes as
  // potentially wrong, but is the CFD-repair semantics.
  SchemaPtr s = S();
  CfdSet cfds = ExampleCfds(s);
  Relation dirty(s);
  ASSERT_TRUE(dirty.AppendStrings({"020", "Edi", "EH7", "Bob"}).ok());
  IncRep increp(cfds);
  RepairResult result = increp.Repair(dirty);
  EXPECT_EQ(result.repaired.at(0).at(1).as_string(), "Ldn");
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_GE(result.cells_changed, 1u);
}

TEST(IncRepTest, ResolvesVariableViolationByMajorityCost) {
  SchemaPtr s = S();
  CfdSet cfds(s);
  PatternTuple tpv(s);
  ASSERT_TRUE(
      cfds.Add(std::move(Cfd::Make("zipcity", s, {2}, 1, std::move(tpv)))
                   .ValueOrDie())
          .ok());
  Relation dirty(s);
  // Three tuples share a zip; two say Edi, one says Edj (typo): the cheap
  // repair converges to the value minimizing total distance.
  ASSERT_TRUE(dirty.AppendStrings({"131", "Edi", "EH7", "a"}).ok());
  ASSERT_TRUE(dirty.AppendStrings({"131", "Edi", "EH7", "b"}).ok());
  ASSERT_TRUE(dirty.AppendStrings({"131", "Edj", "EH7", "c"}).ok());
  IncRep increp(cfds);
  RepairResult result = increp.Repair(dirty);
  EXPECT_EQ(result.remaining_violations, 0u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.repaired.at(i).at(1).as_string(), "Edi");
  }
  EXPECT_EQ(result.cells_changed, 1u);
}

TEST(IncRepTest, CleanInputUntouched) {
  SchemaPtr s = S();
  CfdSet cfds = ExampleCfds(s);
  Relation clean(s);
  ASSERT_TRUE(clean.AppendStrings({"020", "Ldn", "NW1", "a"}).ok());
  ASSERT_TRUE(clean.AppendStrings({"131", "Edi", "EH7", "b"}).ok());
  IncRep increp(cfds);
  RepairResult result = increp.Repair(clean);
  EXPECT_EQ(result.cells_changed, 0u);
  EXPECT_EQ(result.passes, 1u);
  EXPECT_EQ(result.repaired.at(0), clean.at(0));
}

TEST(IncRepTest, CascadingRepairsTakeMultiplePasses) {
  SchemaPtr s = S();
  CfdSet cfds = ExampleCfds(s);
  Relation dirty(s);
  // Fixing the constant violation on tuple 0 (city := Ldn) breaks the FD
  // zip -> city with tuple 1 (same zip, city Edi): a second pass is
  // needed.
  ASSERT_TRUE(dirty.AppendStrings({"020", "Edi", "NW1", "a"}).ok());
  ASSERT_TRUE(dirty.AppendStrings({"999", "Edi", "NW1", "b"}).ok());
  IncRep increp(cfds);
  RepairResult result = increp.Repair(dirty);
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_GE(result.passes, 2u);
  EXPECT_EQ(result.repaired.at(0).at(1).as_string(), "Ldn");
  EXPECT_EQ(result.repaired.at(1).at(1).as_string(), "Ldn");
}

TEST(IncRepTest, PassBudgetRespected) {
  SchemaPtr s = S();
  CfdSet cfds = ExampleCfds(s);
  Relation dirty(s);
  ASSERT_TRUE(dirty.AppendStrings({"020", "Edi", "NW1", "a"}).ok());
  IncRepOptions options;
  options.max_passes = 1;
  IncRep increp(cfds, options);
  RepairResult result = increp.Repair(dirty);
  EXPECT_EQ(result.passes, 1u);
}

TEST(IncRepTest, TotalCostAccountsChanges) {
  SchemaPtr s = S();
  CfdSet cfds = ExampleCfds(s);
  Relation dirty(s);
  ASSERT_TRUE(dirty.AppendStrings({"020", "Edi", "EH7", "Bob"}).ok());
  IncRep increp(cfds);
  RepairResult result = increp.Repair(dirty);
  EXPECT_GT(result.total_cost, 0.0);
}

}  // namespace
}  // namespace certfix
