#include "relational/value_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"

namespace certfix {
namespace {

TEST(ValuePoolTest, InternLookupRoundTrip) {
  ValuePool pool;
  ValueId a = pool.Intern(Value::Str("alpha"));
  ValueId b = pool.Intern(Value::Str("beta"));
  ValueId i = pool.Intern(Value::Int(42));
  ValueId d = pool.Intern(Value::Double(2.5));

  EXPECT_NE(a, b);
  EXPECT_NE(a, i);
  EXPECT_EQ(pool.value(a), Value::Str("alpha"));
  EXPECT_EQ(pool.value(b), Value::Str("beta"));
  EXPECT_EQ(pool.value(i), Value::Int(42));
  EXPECT_EQ(pool.value(d), Value::Double(2.5));

  EXPECT_EQ(pool.Find(Value::Str("alpha")), a);
  EXPECT_EQ(pool.Find(Value::Int(42)), i);
  EXPECT_EQ(pool.Find(Value::Str("absent")), kInvalidValueId);
}

TEST(ValuePoolTest, InterningIsIdempotent) {
  ValuePool pool;
  ValueId a1 = pool.Intern(Value::Str("x"));
  ValueId a2 = pool.Intern(Value::Str("x"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(pool.size(), 2u);  // null slot + "x"
}

TEST(ValuePoolTest, NullAlwaysMapsToSlotZero) {
  ValuePool pool;
  EXPECT_EQ(pool.Intern(Value()), kNullValueId);
  EXPECT_EQ(pool.Find(Value()), kNullValueId);
  EXPECT_TRUE(pool.value(kNullValueId).is_null());
}

TEST(ValuePoolTest, TypedValuesAreDistinct) {
  ValuePool pool;
  // Int 5, Double 5.0, and Str "5" are different values.
  ValueId i = pool.Intern(Value::Int(5));
  ValueId d = pool.Intern(Value::Double(5.0));
  ValueId s = pool.Intern(Value::Str("5"));
  EXPECT_NE(i, d);
  EXPECT_NE(i, s);
  EXPECT_NE(d, s);
}

TEST(ValuePoolTest, ReferencesStayStableAcrossGrowth) {
  ValuePool pool;
  ValueId first = pool.Intern(Value::Str("pinned"));
  const Value& ref = pool.value(first);
  for (int i = 0; i < 10000; ++i) {
    pool.Intern(Value::Int(i));
  }
  // The deque-backed store never moves interned values.
  EXPECT_EQ(&ref, &pool.value(first));
  EXPECT_EQ(ref, Value::Str("pinned"));
}

TEST(ValuePoolTest, StableUnderConcurrentReaders) {
  ValuePool pool;
  constexpr int kValues = 5000;
  std::vector<ValueId> ids;
  ids.reserve(kValues);
  for (int i = 0; i < kValues; ++i) {
    ids.push_back(pool.Intern(Value::Str("v" + std::to_string(i))));
  }

  constexpr int kThreads = 8;
  std::vector<std::thread> readers;
  std::vector<int> mismatches(kThreads, 0);
  for (int r = 0; r < kThreads; ++r) {
    readers.emplace_back([&, r] {
      for (int pass = 0; pass < 20; ++pass) {
        for (int i = 0; i < kValues; ++i) {
          const Value& v = pool.value(ids[i]);
          if (v.as_string() != "v" + std::to_string(i)) ++mismatches[r];
          if (pool.Find(v) != ids[i]) ++mismatches[r];
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  for (int r = 0; r < kThreads; ++r) EXPECT_EQ(mismatches[r], 0);
}

TEST(PoolBridgeTest, TranslatesAndMemoizes) {
  ValuePool from;
  ValuePool to;
  ValueId fa = from.Intern(Value::Str("shared"));
  ValueId fb = from.Intern(Value::Str("only-in-from"));
  ValueId ta = to.Intern(Value::Str("shared"));

  PoolBridge bridge(&from, &to);
  EXPECT_EQ(bridge.Translate(fa), ta);
  EXPECT_EQ(bridge.Translate(fb), kInvalidValueId);
  EXPECT_EQ(bridge.Translate(kNullValueId), kNullValueId);
  // Repeat hits come out of the memo table.
  EXPECT_EQ(bridge.Translate(fa), ta);

  // Values interned after the bridge was created still translate.
  ValueId fc = from.Intern(Value::Str("late"));
  ValueId tc = to.Intern(Value::Str("late"));
  EXPECT_EQ(bridge.Translate(fc), tc);
}

TEST(PoolBridgeTest, IdentityBridgeIsPassThrough) {
  ValuePool pool;
  ValueId a = pool.Intern(Value::Str("a"));
  PoolBridge bridge(&pool, &pool);
  EXPECT_EQ(bridge.Translate(a), a);
  EXPECT_TRUE(bridge.Covers(&pool, &pool));
}

TEST(ColumnarRelationTest, RowsShareTheRelationPool) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b"});
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"x", "z"}).ok());

  Tuple r0 = rel.at(0);
  Tuple r1 = rel.at(1);
  EXPECT_EQ(r0.pool(), rel.pool());
  // "x" appears in both rows but is interned once.
  EXPECT_EQ(r0.id_at(0), r1.id_at(0));
  EXPECT_NE(r0.id_at(1), r1.id_at(1));
  EXPECT_EQ(rel.Cell(1, 1), Value::Str("z"));
  EXPECT_EQ(rel.CellId(0, 0), r0.id_at(0));
}

TEST(ColumnarRelationTest, SetCellAndSetRowAcrossPools) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b"});
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  rel.SetCell(0, 1, Value::Str("w"));
  EXPECT_EQ(rel.Cell(0, 1), Value::Str("w"));

  // A tuple from a foreign pool re-interns on assignment.
  Tuple foreign(schema, {Value::Str("p"), Value::Str("q")});
  ASSERT_NE(foreign.pool(), rel.pool());
  rel.SetRow(0, foreign);
  EXPECT_EQ(rel.at(0), foreign);
  EXPECT_EQ(rel.Cell(0, 0), Value::Str("p"));
}

TEST(ColumnarRelationTest, ClearAndReleasePoolReclaimsDictionary) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b"});
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  ASSERT_GT(rel.pool()->size(), 1u);

  {
    // While a row view shares the pool, the dictionary must survive.
    Tuple view = rel.at(0);
    PoolPtr before = rel.pool();
    rel.ClearAndReleasePool();
    EXPECT_EQ(rel.pool(), before);
    EXPECT_EQ(view.at(0), Value::Str("x"));
  }
  // Unshared now: the next clear swaps in a fresh pool.
  rel.ClearAndReleasePool();
  EXPECT_EQ(rel.pool()->size(), 1u);  // just the null slot
  ASSERT_TRUE(rel.AppendStrings({"p", "q"}).ok());
  EXPECT_EQ(rel.Cell(0, 0), Value::Str("p"));
}

TEST(ColumnarRelationTest, RebasedTuplePreservesValues) {
  SchemaPtr schema = Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
  Tuple t(schema, {Value::Str("s"), Value::Int(7), Value()});
  PoolPtr other = std::make_shared<ValuePool>();
  Tuple moved = t.RebasedTo(other);
  EXPECT_EQ(moved.pool(), other);
  EXPECT_EQ(moved, t);  // cross-pool equality compares values
  EXPECT_TRUE(moved.at(2).is_null());
}

}  // namespace
}  // namespace certfix
