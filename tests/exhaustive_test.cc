#include "core/exhaustive.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class ExhaustiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
};

TEST_F(ExhaustiveTest, ActiveDomainContainsMasterAndPatternConstants) {
  std::set<Value> dom = ActiveDomain(rules_, dm_);
  EXPECT_TRUE(dom.count(Value::Str("EH7 4AH")) > 0);   // master value
  EXPECT_TRUE(dom.count(Value::Str("0800")) > 0);      // pattern constant
  EXPECT_TRUE(dom.count(Value::Str("2")) > 0);         // pattern constant
  EXPECT_FALSE(dom.count(Value::Str("nonexistent")) > 0);
}

TEST_F(ExhaustiveTest, FreshValueAvoidsDomain) {
  std::set<Value> dom = ActiveDomain(rules_, dm_);
  for (size_t i = 0; i < 5; ++i) {
    Value fresh = FreshValue(DataType::kString, i, dom);
    EXPECT_EQ(dom.count(fresh), 0u);
  }
  Value f0 = FreshValue(DataType::kString, 0, dom);
  Value f1 = FreshValue(DataType::kString, 1, dom);
  EXPECT_NE(f0, f1);
  // Int freshness.
  std::set<Value> int_dom{Value::Int(1000000007)};
  Value fi = FreshValue(DataType::kInt, 0, int_dom);
  EXPECT_EQ(int_dom.count(fi), 0u);
}

TEST_F(ExhaustiveTest, ConcreteRowYieldsSingleInstance) {
  std::vector<AttrId> z = Attrs(r_, {"zip", "phn"}).ToVector();
  PatternTuple row(r_);
  row.SetConst(A(r_, "zip"), Value::Str("EH7 4AH"));
  row.SetConst(A(r_, "phn"), Value::Str("079172485"));
  Result<std::vector<Tuple>> probes = InstantiateRow(rules_, dm_, z, row);
  ASSERT_TRUE(probes.ok());
  EXPECT_EQ(probes->size(), 1u);
  EXPECT_EQ(probes->at(0).at(A(r_, "zip")).as_string(), "EH7 4AH");
}

TEST_F(ExhaustiveTest, WildcardOnMentionedAttrEnumeratesDomPlusFresh) {
  std::vector<AttrId> z = {A(r_, "zip")};
  PatternTuple row(r_);  // zip wildcard
  std::set<Value> dom = ActiveDomain(rules_, dm_);
  Result<std::vector<Tuple>> probes = InstantiateRow(rules_, dm_, z, row);
  ASSERT_TRUE(probes.ok());
  EXPECT_EQ(probes->size(), dom.size() + 1);  // dom + one fresh
}

TEST_F(ExhaustiveTest, NegationExcludesTheConstant) {
  std::vector<AttrId> z = {A(r_, "zip")};
  PatternTuple row(r_);
  row.SetNeg(A(r_, "zip"), Value::Str("EH7 4AH"));
  Result<std::vector<Tuple>> probes = InstantiateRow(rules_, dm_, z, row);
  ASSERT_TRUE(probes.ok());
  for (const Tuple& t : *probes) {
    EXPECT_NE(t.at(A(r_, "zip")), Value::Str("EH7 4AH"));
  }
}

TEST_F(ExhaustiveTest, UnmentionedAttrGetsOneRepresentative) {
  std::vector<AttrId> z = {A(r_, "item")};
  PatternTuple row(r_);  // item wildcard; item unmentioned in Sigma0
  Result<std::vector<Tuple>> probes = InstantiateRow(rules_, dm_, z, row);
  ASSERT_TRUE(probes.ok());
  EXPECT_EQ(probes->size(), 1u);
}

TEST_F(ExhaustiveTest, BudgetEnforced) {
  std::vector<AttrId> z =
      Attrs(r_, {"zip", "AC", "phn", "city", "str"}).ToVector();
  PatternTuple row(r_);  // five mentioned wildcards
  Result<std::vector<Tuple>> probes =
      InstantiateRow(rules_, dm_, z, row, /*max_instances=*/100);
  EXPECT_FALSE(probes.ok());
  EXPECT_EQ(probes.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExhaustiveTest, ExhaustiveConsistentMatchesConcrete) {
  // Wildcard-zip region: all instantiations give unique fixes.
  Region region = Region::Of(r_, Attrs(r_, {"zip"}).ToVector());
  ASSERT_TRUE(region.AddRow(PatternTuple(r_)).ok());
  Result<bool> ok = ExhaustiveConsistent(*sat_, region);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(ExhaustiveTest, ExhaustiveCertainRegionOnZzmi) {
  // The wildcard generalization of Example 9's region: for every zip/phn
  // pair *from the active domain* the region is not certain (most
  // combinations match no master tuple, leaving attributes uncovered), so
  // the exhaustive check is false; the master-anchored rows are certain.
  Region wild =
      Region::Of(r_, Attrs(r_, {"zip", "phn", "type", "item"}).ToVector());
  PatternTuple row(r_);
  row.SetConst(A(r_, "type"), Value::Str("2"));
  ASSERT_TRUE(wild.AddRow(row).ok());
  Result<bool> wild_ok = ExhaustiveCertainRegion(*sat_, wild);
  ASSERT_TRUE(wild_ok.ok()) << wild_ok.status();
  EXPECT_FALSE(*wild_ok);

  // Anchored rows (z, p) = s[zip, Mphn] per master tuple: certain.
  Region anchored =
      Region::Of(r_, Attrs(r_, {"zip", "phn", "type", "item"}).ToVector());
  for (const Tuple& s : dm_) {
    PatternTuple r2(r_);
    r2.SetConst(A(r_, "zip"), s.at(A(rm_, "zip")));
    r2.SetConst(A(r_, "phn"), s.at(A(rm_, "Mphn")));
    r2.SetConst(A(r_, "type"), Value::Str("2"));
    ASSERT_TRUE(anchored.AddRow(r2).ok());
  }
  Result<bool> anchored_ok = ExhaustiveCertainRegion(*sat_, anchored);
  ASSERT_TRUE(anchored_ok.ok()) << anchored_ok.status();
  EXPECT_TRUE(*anchored_ok);
}

}  // namespace
}  // namespace certfix
