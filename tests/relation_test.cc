#include "relational/relation.h"

#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"

namespace certfix {
namespace {

SchemaPtr S() {
  return Schema::Make("R", std::vector<std::string>{"a", "b"});
}

TEST(RelationTest, AppendAndAccess) {
  Relation rel(S());
  EXPECT_TRUE(rel.empty());
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"z", "w"}).ok());
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.at(1).at(0).as_string(), "z");
}

TEST(RelationTest, AppendSchemaMismatch) {
  Relation rel(S());
  SchemaPtr other = Schema::Make("Q", std::vector<std::string>{"a", "b"});
  Tuple t(other);
  EXPECT_FALSE(rel.Append(t).ok());
}

TEST(RelationTest, AppendEqualSchemaDifferentPointer) {
  Relation rel(S());
  SchemaPtr same_shape = S();  // distinct pointer, structurally equal
  Tuple t(same_shape);
  EXPECT_TRUE(rel.Append(t).ok());
}

TEST(RelationTest, UpdateRowReportsChangedCells) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  // Same-pool no-op: identical ids, empty mask.
  EXPECT_TRUE(rel.UpdateRow(0, rel.at(0)).Empty());
  // Cross-pool tuple differing on b only.
  Result<Tuple> t = Tuple::FromStrings(S(), {"x", "w"});
  ASSERT_TRUE(t.ok());
  AttrSet changed = rel.UpdateRow(0, *t);
  EXPECT_EQ(changed, AttrSet({1}));
  EXPECT_EQ(rel.at(0).at(1).as_string(), "w");
  // Cross-pool identical tuple: empty mask again.
  EXPECT_TRUE(rel.UpdateRow(0, *t).Empty());
}

TEST(RelationTest, RowVersionsTrackCellChanges) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  EXPECT_EQ(rel.row_version(0), 0u);  // off until opted in
  rel.TrackRowVersions();
  EXPECT_EQ(rel.row_version(0), 1u);
  ASSERT_TRUE(rel.AppendStrings({"z", "w"}).ok());
  EXPECT_EQ(rel.row_version(1), 1u);

  rel.SetCell(0, 0, Value::Str("x"));  // no-op write
  EXPECT_EQ(rel.row_version(0), 1u);
  rel.SetCell(0, 0, Value::Str("q"));
  EXPECT_EQ(rel.row_version(0), 2u);

  Result<Tuple> t = Tuple::FromStrings(S(), {"q", "better"});
  ASSERT_TRUE(t.ok());
  rel.SetRow(0, *t);
  EXPECT_EQ(rel.row_version(0), 3u);  // one bump per changed mutation
  rel.SetRow(0, *t);
  EXPECT_EQ(rel.row_version(0), 3u);  // identical row: untouched
  EXPECT_EQ(rel.row_version(1), 1u);  // other rows unaffected
}

TEST(RelationTest, DistinctValues) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x", "1"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"x", "2"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"y", "1"}).ok());
  EXPECT_EQ(rel.DistinctValues(0).size(), 2u);
  EXPECT_EQ(rel.DistinctValues(1).size(), 2u);
}

TEST(RelationTest, ActiveDomain) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"y", "z"}).ok());
  EXPECT_EQ(rel.ActiveDomain().size(), 3u);  // x, y, z
}

TEST(RelationTest, RangeFor) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x", "y"}).ok());
  size_t n = 0;
  for (const Tuple& t : rel) {
    (void)t;
    ++n;
  }
  EXPECT_EQ(n, 1u);
}

TEST(CsvTest, ParseLineBasic) {
  Result<std::vector<std::string>> f = ParseCsvLine("a,b,c");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseLineQuoted) {
  Result<std::vector<std::string>> f = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)[0], "a,b");
  EXPECT_EQ((*f)[1], "c");
}

TEST(CsvTest, ParseLineEscapedQuote) {
  Result<std::vector<std::string>> f = ParseCsvLine("\"he said \"\"hi\"\"\"");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)[0], "he said \"hi\"");
}

TEST(CsvTest, ParseLineUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvLine("\"abc").ok());
}

TEST(CsvTest, FormatRoundTrip) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote"};
  Result<std::vector<std::string>> back =
      ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fields);
}

TEST(CsvTest, ReadWriteRelation) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"x,1", "y"}).ok());
  ASSERT_TRUE(rel.AppendStrings({"", "w"}).ok());  // null cell
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(rel, out).ok());

  std::istringstream in(out.str());
  Result<Relation> rt = ReadCsv(S(), in);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->size(), 2u);
  EXPECT_EQ(rt->at(0).at(0).as_string(), "x,1");
  EXPECT_TRUE(rt->at(1).at(0).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  std::istringstream in("a,WRONG\nx,y\n");
  EXPECT_FALSE(ReadCsv(S(), in).ok());
}

TEST(CsvTest, ArityMismatchRejected) {
  std::istringstream in("a,b\nx\n");
  EXPECT_FALSE(ReadCsv(S(), in).ok());
}

TEST(CsvTest, EmptyInputRejected) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(S(), in).ok());
}

}  // namespace
}  // namespace certfix
