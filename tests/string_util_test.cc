#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/edit_distance.h"

namespace certfix {
namespace {

TEST(SplitTest, Basic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, BothEnds) { EXPECT_EQ(Trim("  x y  "), "x y"); }
TEST(TrimTest, Empty) { EXPECT_EQ(Trim("   "), ""); }
TEST(TrimTest, NoWhitespace) { EXPECT_EQ(Trim("abc"), "abc"); }

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("rule phi1", "rule"));
  EXPECT_FALSE(StartsWith("rul", "rule"));
}

TEST(ToLowerTest, Basic) { EXPECT_EQ(ToLower("EdI"), "edi"); }

TEST(IsIntegerTest, Accepts) {
  EXPECT_TRUE(IsInteger("0"));
  EXPECT_TRUE(IsInteger("-12"));
  EXPECT_TRUE(IsInteger("+7"));
  EXPECT_TRUE(IsInteger(" 42 "));
}

TEST(IsIntegerTest, Rejects) {
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("1.5"));
  EXPECT_FALSE(IsInteger("12a"));
}

TEST(IsDoubleTest, Accepts) {
  EXPECT_TRUE(IsDouble("1.5"));
  EXPECT_TRUE(IsDouble("-0.25"));
  EXPECT_TRUE(IsDouble("1e3"));
}

TEST(IsDoubleTest, Rejects) {
  EXPECT_FALSE(IsDouble(""));
  EXPECT_FALSE(IsDouble("abc"));
  EXPECT_FALSE(IsDouble("1.2.3"));
}

TEST(EditDistanceTest, Identity) { EXPECT_EQ(EditDistance("abc", "abc"), 0u); }

TEST(EditDistanceTest, Substitution) {
  EXPECT_EQ(EditDistance("kitten", "sitten"), 1u);
}

TEST(EditDistanceTest, ClassicKittenSitting) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
}

TEST(EditDistanceTest, EmptySides) {
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", ""), 0u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("Lnd", "Edi"), EditDistance("Edi", "Lnd"));
}

TEST(NormalizedEditDistanceTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  double d = NormalizedEditDistance("kitten", "sitting");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

}  // namespace
}  // namespace certfix
