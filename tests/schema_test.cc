#include "relational/schema.h"

#include <gtest/gtest.h>

#include "relational/attr_set.h"

namespace certfix {
namespace {

TEST(SchemaTest, BasicAccessors) {
  SchemaPtr s = Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(s->name(), "R");
  EXPECT_EQ(s->num_attrs(), 3u);
  EXPECT_EQ(s->attr_name(1), "b");
  EXPECT_EQ(s->attr_type(0), DataType::kString);
}

TEST(SchemaTest, IndexOf) {
  SchemaPtr s = Schema::Make("R", std::vector<std::string>{"a", "b"});
  Result<AttrId> id = s->IndexOf("b");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_FALSE(s->IndexOf("zzz").ok());
  EXPECT_EQ(s->IndexOf("zzz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Has) {
  SchemaPtr s = Schema::Make("R", std::vector<std::string>{"x"});
  EXPECT_TRUE(s->Has("x"));
  EXPECT_FALSE(s->Has("y"));
}

TEST(SchemaTest, Resolve) {
  SchemaPtr s = Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
  Result<std::vector<AttrId>> ids = s->Resolve({"c", "a"});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<AttrId>{2, 0}));
  EXPECT_FALSE(s->Resolve({"a", "nope"}).ok());
}

TEST(SchemaTest, TypedAttributes) {
  SchemaPtr s = Schema::Make(
      "R", std::vector<Attribute>{{"n", DataType::kInt},
                                  {"x", DataType::kDouble},
                                  {"s", DataType::kString}});
  EXPECT_EQ(s->attr_type(0), DataType::kInt);
  EXPECT_EQ(s->attr_type(1), DataType::kDouble);
}

TEST(SchemaTest, Equals) {
  SchemaPtr a = Schema::Make("R", std::vector<std::string>{"x", "y"});
  SchemaPtr b = Schema::Make("R", std::vector<std::string>{"x", "y"});
  SchemaPtr c = Schema::Make("R", std::vector<std::string>{"x", "z"});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(SchemaTest, AllAttrs) {
  SchemaPtr s = Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(s->AllAttrs().Count(), 3);
  EXPECT_TRUE(s->AllAttrs().Contains(2));
  EXPECT_FALSE(s->AllAttrs().Contains(3));
}

TEST(AttrSetTest, AddRemoveContains) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  s.Add(3);
  s.Add(10);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a{1, 2, 3};
  AttrSet b{3, 4};
  EXPECT_EQ(a.Union(b).Count(), 4);
  EXPECT_EQ(a.Intersect(b).Count(), 1);
  EXPECT_TRUE(a.Intersect(b).Contains(3));
  EXPECT_EQ(a.Minus(b).Count(), 2);
  EXPECT_TRUE(AttrSet({1, 2}).SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(AttrSet({9}).Intersects(a));
}

TEST(AttrSetTest, AllUpTo) {
  AttrSet s = AttrSet::AllUpTo(5);
  EXPECT_EQ(s.Count(), 5);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(AttrSet::AllUpTo(64).Count(), 64);
  EXPECT_EQ(AttrSet::AllUpTo(0).Count(), 0);
}

TEST(AttrSetTest, ToVectorAscending) {
  AttrSet s{9, 1, 4};
  EXPECT_EQ(s.ToVector(), (std::vector<AttrId>{1, 4, 9}));
}

TEST(AttrSetTest, FromVector) {
  AttrSet s = AttrSet::FromVector({2, 2, 5});
  EXPECT_EQ(s.Count(), 2);
}

}  // namespace
}  // namespace certfix
