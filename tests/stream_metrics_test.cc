/// \file stream_metrics_test.cc
/// \brief Unit tests for the StreamMetrics counters (stream_metrics.h) —
/// increments, the folded backpressure tally, the CAS-max reorder depth,
/// Snapshot fidelity under concurrency — plus the analyze_first
/// inert-engine paths the strict-gate tests in analyze_test.cc leave
/// uncovered: the delta engine's Apply/ApplyAll/Update/Master* mutators,
/// its read-side accessors on a rejected engine, and the stream engine's
/// metrics after refused pushes.

#include "stream/stream_metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "incremental/delta_repair.h"
#include "rules/rule_parser.h"
#include "stream/sink.h"
#include "stream/stream_repair.h"
#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

// ---------------------------------------------------------------------------
// Counters.

TEST(StreamMetricsTest, CountersStartAtZero) {
  StreamMetrics metrics;
  StreamSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.tuples_in, 0u);
  EXPECT_EQ(s.tuples_out, 0u);
  EXPECT_EQ(s.fully_covered, 0u);
  EXPECT_EQ(s.partial, 0u);
  EXPECT_EQ(s.untouched, 0u);
  EXPECT_EQ(s.conflicting, 0u);
  EXPECT_EQ(s.cells_changed, 0u);
  EXPECT_EQ(s.backpressure_waits, 0u);
  EXPECT_EQ(s.pool_recycles, 0u);
  EXPECT_EQ(s.max_reorder, 0u);
}

TEST(StreamMetricsTest, EveryCounterLandsInItsSnapshotField) {
  StreamMetrics metrics;
  metrics.CountIn();
  metrics.CountIn();
  metrics.CountOut();
  metrics.CountFullyCovered();
  metrics.CountPartial();
  metrics.CountPartial();
  metrics.CountPartial();
  metrics.CountUntouched();
  metrics.CountConflicting();
  metrics.CountCellsChanged(7);
  metrics.CountCellsChanged(5);
  metrics.CountBackpressureWait();
  metrics.AddBackpressureWaits(9);
  metrics.CountPoolRecycle();
  metrics.NoteReorderDepth(3);
  StreamSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.tuples_in, 2u);
  EXPECT_EQ(s.tuples_out, 1u);
  EXPECT_EQ(s.fully_covered, 1u);
  EXPECT_EQ(s.partial, 3u);
  EXPECT_EQ(s.untouched, 1u);
  EXPECT_EQ(s.conflicting, 1u);
  EXPECT_EQ(s.cells_changed, 12u);
  EXPECT_EQ(s.backpressure_waits, 10u);  // 1 direct + 9 folded
  EXPECT_EQ(s.pool_recycles, 1u);
  EXPECT_EQ(s.max_reorder, 3u);
}

TEST(StreamMetricsTest, ReorderDepthIsAMaxNotALastWrite) {
  StreamMetrics metrics;
  metrics.NoteReorderDepth(5);
  metrics.NoteReorderDepth(2);   // lower: must not regress the max
  metrics.NoteReorderDepth(9);
  metrics.NoteReorderDepth(0);
  EXPECT_EQ(metrics.Snapshot().max_reorder, 9u);
}

TEST(StreamMetricsTest, ReorderDepthMaxSurvivesConcurrentWriters) {
  StreamMetrics metrics;
  constexpr uint64_t kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        metrics.NoteReorderDepth(t * kPerThread + i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // The global max is the largest value any thread noted.
  EXPECT_EQ(metrics.Snapshot().max_reorder, kThreads * kPerThread);
}

TEST(StreamMetricsTest, ConcurrentIncrementsAreLossless) {
  StreamMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.CountIn();
        metrics.CountCellsChanged(2);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  StreamSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.tuples_in, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.cells_changed, static_cast<uint64_t>(kThreads) * kPerThread * 2);
}

// ---------------------------------------------------------------------------
// Inert-engine paths under analyze_first=strict. Fixture mirrors the
// StrictGateTest conflict: two rules target AC from trusted zip/city, and
// the master rows disagree, so strict analysis rejects the ruleset.

class InertEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make(
        "R", std::vector<std::string>{"zip", "AC", "city", "name"});
    master_ = Relation(schema_);
    ASSERT_TRUE(master_.AppendStrings({"EH7", "131", "Edi", "Ann"}).ok());
    ASSERT_TRUE(master_.AppendStrings({"NW1", "020", "Lnd", "Cid"}).ok());
    Result<RuleSet> rules = ParseRules(
        "rule r1: (zip | zip) -> (AC | AC)\n"
        "rule r2: (city | city) -> (AC | AC)\n",
        schema_, schema_);
    ASSERT_TRUE(rules.ok());
    rules_ = std::move(*rules);
    trusted_ = Attrs(schema_, {"zip", "city", "name"});
  }

  SchemaPtr schema_;
  Relation master_;
  RuleSet rules_;
  AttrSet trusted_;
};

TEST_F(InertEngineTest, DeltaEngineRejectsApplyAndApplyAll) {
  DeltaRepairOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  DeltaRepairEngine engine(rules_, master_, trusted_, options);
  ASSERT_FALSE(engine.precheck_status().ok());

  Delta insert;
  insert.kind = DeltaKind::kInsert;
  insert.fields = {"EH7", "000", "Edi", "Eve"};
  EXPECT_EQ(engine.Apply(insert).code(), StatusCode::kInconsistent);

  Delta master_delete;
  master_delete.kind = DeltaKind::kMasterDelete;
  master_delete.row = 0;
  EXPECT_EQ(engine.Apply(master_delete).code(), StatusCode::kInconsistent);

  VectorDeltaSource source({insert});
  EXPECT_EQ(engine.ApplyAll(&source).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.size(), 0u);
}

TEST_F(InertEngineTest, DeltaEngineRejectsUpdateAndMasterMutators) {
  DeltaRepairOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  DeltaRepairEngine engine(rules_, master_, trusted_, options);
  ASSERT_FALSE(engine.precheck_status().ok());

  Tuple row = master_.at(0);
  EXPECT_EQ(engine.Update(0, row).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.MasterInsert(row).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.MasterUpdate(0, row).code(), StatusCode::kInconsistent);
  EXPECT_EQ(engine.MasterDelete(0).code(), StatusCode::kInconsistent);
  // The engine's own master copy must be untouched by the refused calls.
  EXPECT_EQ(engine.master().size(), master_.size());
}

TEST_F(InertEngineTest, RejectedDeltaEngineReadsAreEmptyAndSafe) {
  DeltaRepairOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  DeltaRepairEngine engine(rules_, master_, trusted_, options);
  ASSERT_FALSE(engine.precheck_status().ok());

  engine.Flush();  // no workers, nothing in flight: must be a no-op
  DeltaRepairStats stats = engine.stats();
  EXPECT_EQ(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.tuples_repaired, 0u);
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.cells_changed, 0u);
  EXPECT_EQ(engine.SnapshotRepaired().size(), 0u);
  EXPECT_EQ(engine.SnapshotInput().size(), 0u);
  EXPECT_TRUE(engine.ConflictPositions().empty());
}

TEST_F(InertEngineTest, RejectedStreamEngineCountsNothing) {
  MasterIndex index(rules_, master_);
  Saturator sat(rules_, master_, index);
  StreamOptions options;
  options.analyze_first = AnalyzeMode::kStrict;
  CollectingSink sink(schema_);
  StreamRepairEngine engine(sat, trusted_, &sink, options);
  ASSERT_FALSE(engine.precheck_status().ok());

  EXPECT_FALSE(engine.Push(master_.at(0)));
  EXPECT_EQ(engine.PushStrings({"EH7", "000", "Edi", "Eve"}).code(),
            StatusCode::kInconsistent);
  EXPECT_EQ(engine.num_shards(), 0u) << "no workers on a rejected engine";
  // Refused pushes must not count as accepted traffic.
  StreamSnapshot s = engine.metrics().Snapshot();
  EXPECT_EQ(s.tuples_in, 0u);
  EXPECT_EQ(s.tuples_out, 0u);
  EXPECT_EQ(s.cells_changed, 0u);
}

TEST_F(InertEngineTest, StreamMetricsMatchFinishSnapshot) {
  // Sanity on a healthy engine: the snapshot Finish returns and the one
  // metrics() takes afterwards are the same numbers.
  MasterIndex index(rules_, master_);
  Saturator sat(rules_, master_, index);
  CollectingSink sink(schema_);
  StreamRepairEngine engine(sat, trusted_, &sink, StreamOptions{});
  ASSERT_TRUE(engine.precheck_status().ok());
  ASSERT_TRUE(engine.PushStrings({"EH7", "", "Edi", "Eve"}).ok());
  ASSERT_TRUE(engine.PushStrings({"NW1", "", "Lnd", "Bob"}).ok());
  StreamSnapshot finish = engine.Finish();
  StreamSnapshot after = engine.metrics().Snapshot();
  EXPECT_EQ(finish.tuples_in, 2u);
  EXPECT_EQ(finish.tuples_out, 2u);
  EXPECT_EQ(after.tuples_in, finish.tuples_in);
  EXPECT_EQ(after.tuples_out, finish.tuples_out);
  EXPECT_EQ(after.cells_changed, finish.cells_changed);
  EXPECT_EQ(after.max_reorder, finish.max_reorder);
  EXPECT_EQ(sink.repaired().size(), 2u);
}

}  // namespace
}  // namespace certfix
