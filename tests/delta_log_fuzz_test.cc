/// \file delta_log_fuzz_test.cc
/// \brief Fuzz-style hardening of DeltaLogSource, extending the
/// csv_fuzz_test machinery to the delta-log layer: seeded truncation and
/// byte mutation of well-formed I/U/D/MI/MU/MD logs must never crash,
/// hang, or surface anything but parsed deltas or a clean ParseError
/// tagged with the record's line; hostile field values must round-trip
/// through WriteDeltaLog -> DeltaLogSource byte-exactly.

#include "stream/delta_source.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/random.h"
#include "workload/scenario.h"

namespace certfix {
namespace {

SchemaPtr TestSchema() { return Schema::Make("R", {"a", "b", "c"}); }

/// Drains a DeltaLogSource over `input`. Asserts: progress on every
/// delta, and either success or a ParseError — never another code, never
/// a crash or hang.
void DrainAndCheck(const std::string& input, const std::string& label) {
  SchemaPtr schema = TestSchema();
  std::istringstream in(input);
  DeltaLogSource source(schema, schema, in);
  Delta delta;
  size_t max_deltas = input.size() + 2;
  size_t deltas = 0;
  for (;;) {
    Result<bool> got = source.Next(&delta);
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kParseError) << label;
      EXPECT_NE(got.status().message().find("line"), std::string::npos)
          << "error lost its line tag: " << got.status() << " (" << label
          << ")";
      break;
    }
    if (!*got) break;
    ++deltas;
    ASSERT_LE(deltas, max_deltas) << "source loops without progress: "
                                  << label;
    for (const std::string& f : delta.fields) {
      ASSERT_LE(f.size(), input.size()) << label;  // no runaway buffering
    }
  }
}

// Well-formed logs over the 3-attribute schema: every op kind, comments,
// quoting, CRLF, an embedded newline, and empty fields.
const char* kCorpus[] = {
    "# header comment\nI,,1,2,3\nU,0,4,5,6\nD,0\n",
    "MI,,m1,m2,m3\nMU,0,m4,m5,m6\nMD,0\n",
    "I,,\"quoted,comma\",\"dq\"\"inside\",plain\nD,0\n",
    "I,,a,b,c\r\nU,0,\"line\nbreak\",e,f\r\n",
    "I,,,,\nU,0,,,\n",
    "# only a comment\n",
    "I,,1,2,3\nMI,,x,y,z\nMU,0,x,y,z\nU,0,7,8,9\nMD,0\nD,0\n",
};

TEST(DeltaLogFuzzTest, TruncationsNeverCrash) {
  for (const char* base : kCorpus) {
    std::string s(base);
    for (size_t cut = 0; cut <= s.size(); ++cut) {
      DrainAndCheck(s.substr(0, cut),
                    "truncate@" + std::to_string(cut) + " of " + base);
    }
  }
}

TEST(DeltaLogFuzzTest, SeededMutationsNeverCrash) {
  // The CSV reader's special bytes plus the delta layer's own alphabet:
  // op letters, digits, and the comment marker.
  const char kBytes[] = {'"', ',', '\n', '\r', ' ', '\0',
                         'I', 'U', 'D',  'M',  '#', '9'};
  Rng rng(31337);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string s(kCorpus[rng.Index(std::size(kCorpus))]);
    int edits = 1 + static_cast<int>(rng.Index(4));
    for (int e = 0; e < edits && !s.empty(); ++e) {
      size_t pos = rng.Index(s.size() + 1);
      char b = kBytes[rng.Index(std::size(kBytes))];
      switch (rng.Index(3)) {
        case 0:  // flip
          if (pos < s.size()) s[pos] = b;
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos), b);
          break;
        default:  // delete
          if (pos < s.size()) s.erase(pos, 1);
          break;
      }
    }
    DrainAndCheck(s, "iter=" + std::to_string(iter));
  }
}

TEST(DeltaLogFuzzTest, MalformedRecordsAreCleanParseErrors) {
  struct Case {
    const char* log;
    const char* want;  // substring of the error message
  };
  const Case kCases[] = {
      {"X,,1,2,3\n", "unknown op"},
      {"I\n", "at least op and row"},
      {"U,notanum,1,2,3\n", "non-negative row"},
      {"U,-1,1,2,3\n", "non-negative row"},
      {"U, 5,1,2,3\n", "non-negative row"},   // leading space
      {"U,+5,1,2,3\n", "non-negative row"},   // explicit sign
      {"U,5 ,1,2,3\n", "non-negative row"},   // trailing space
      {"U,0x5,1,2,3\n", "non-negative row"},  // hex
      {"D,5c\n", "non-negative row"},         // trailing junk
      {"D,99999999999999999999\n", "non-negative row"},  // overflow
      {"I,,1,2\n", "arity"},
      {"I,,1,2,3,4\n", "arity"},
      {"D,0,extra\n", "takes no fields"},
      {"MD,0,extra\n", "takes no fields"},
      {"MU,,1,2,3\n", "non-negative row"},
      {"I,,\"unterminated\n", "unterminated"},
  };
  SchemaPtr schema = TestSchema();
  for (const Case& c : kCases) {
    std::istringstream in(c.log);
    DeltaLogSource source(schema, schema, in);
    Delta delta;
    Result<bool> got = source.Next(&delta);
    ASSERT_FALSE(got.ok()) << c.log;
    EXPECT_EQ(got.status().code(), StatusCode::kParseError) << c.log;
    EXPECT_NE(got.status().message().find(c.want), std::string::npos)
        << "want '" << c.want << "' in: " << got.status();
  }
}

TEST(DeltaLogFuzzTest, HostileValuesRoundTripThroughTheLog) {
  // Random deltas whose fields are built from the CSV special alphabet
  // must survive WriteDeltaLog -> DeltaLogSource exactly: same kinds,
  // rows, and field bytes.
  const char kBytes[] = {'"', ',', '\n', '\r', 'x', ' '};
  Rng rng(90210);
  SchemaPtr schema = TestSchema();
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Delta> deltas(1 + rng.Index(8));
    for (Delta& d : deltas) {
      switch (rng.Index(6)) {
        case 0: d.kind = DeltaKind::kInsert; break;
        case 1: d.kind = DeltaKind::kUpdate; break;
        case 2: d.kind = DeltaKind::kDelete; break;
        case 3: d.kind = DeltaKind::kMasterInsert; break;
        case 4: d.kind = DeltaKind::kMasterUpdate; break;
        default: d.kind = DeltaKind::kMasterDelete; break;
      }
      if (d.kind != DeltaKind::kInsert && d.kind != DeltaKind::kMasterInsert) {
        d.row = rng.Index(1000);
      }
      if (d.kind != DeltaKind::kDelete && d.kind != DeltaKind::kMasterDelete) {
        d.fields.resize(schema->num_attrs());
        for (std::string& f : d.fields) {
          size_t len = rng.Index(8);
          for (size_t i = 0; i < len; ++i) {
            f += kBytes[rng.Index(std::size(kBytes))];
          }
        }
      }
    }
    std::ostringstream out;
    ASSERT_TRUE(WriteDeltaLog("fuzz", 1, deltas, out).ok());
    std::istringstream in(out.str());
    DeltaLogSource source(schema, schema, in);
    Delta back;
    for (size_t i = 0; i < deltas.size(); ++i) {
      Result<bool> got = source.Next(&back);
      ASSERT_TRUE(got.ok()) << "iter=" << iter << " delta=" << i << ": "
                            << got.status();
      ASSERT_TRUE(*got) << "iter=" << iter << " delta=" << i;
      EXPECT_EQ(back.kind, deltas[i].kind) << "iter=" << iter;
      EXPECT_EQ(back.row, deltas[i].row) << "iter=" << iter;
      EXPECT_EQ(back.fields, deltas[i].fields) << "iter=" << iter;
    }
    Result<bool> done = source.Next(&back);
    ASSERT_TRUE(done.ok()) << done.status();
    EXPECT_FALSE(*done);
  }
}

}  // namespace
}  // namespace certfix
