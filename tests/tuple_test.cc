#include "relational/tuple.h"

#include <gtest/gtest.h>

#include "relational/relation.h"

namespace certfix {
namespace {

SchemaPtr S() { return Schema::Make("R", std::vector<std::string>{"a", "b", "c"}); }

TEST(TupleTest, FromStrings) {
  Result<Tuple> t = Tuple::FromStrings(S(), {"x", "y", "z"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0).as_string(), "x");
  EXPECT_EQ(t->size(), 3u);
}

TEST(TupleTest, FromStringsArityMismatch) {
  Result<Tuple> t = Tuple::FromStrings(S(), {"x", "y"});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TupleTest, FromStringsParsesTypes) {
  SchemaPtr s = Schema::Make(
      "R", std::vector<Attribute>{{"n", DataType::kInt},
                                  {"s", DataType::kString}});
  Result<Tuple> t = Tuple::FromStrings(s, {"42", "hi"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0).is_int());
  EXPECT_EQ(t->at(0).as_int(), 42);
}

TEST(TupleTest, EmptyFieldBecomesNull) {
  Result<Tuple> t = Tuple::FromStrings(S(), {"", "y", "z"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0).is_null());
}

TEST(TupleTest, SetAndGet) {
  Tuple t(S());
  EXPECT_TRUE(t.at(0).is_null());
  t.Set(0, Value::Str("v"));
  EXPECT_EQ(t.at(0).as_string(), "v");
}

TEST(TupleTest, Project) {
  Result<Tuple> t = Tuple::FromStrings(S(), {"x", "y", "z"});
  auto vals = t->Project({2, 0});
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0].as_string(), "z");
  EXPECT_EQ(vals[1].as_string(), "x");
}

TEST(TupleTest, AgreesOn) {
  SchemaPtr s = S();
  Tuple t1 = std::move(Tuple::FromStrings(s, {"x", "y", "z"})).ValueOrDie();
  Tuple t2 = std::move(Tuple::FromStrings(s, {"z", "y", "x"})).ValueOrDie();
  EXPECT_TRUE(t1.AgreesOn({0}, t2, {2}));
  EXPECT_TRUE(t1.AgreesOn({0, 2}, t2, {2, 0}));
  EXPECT_FALSE(t1.AgreesOn({0}, t2, {0}));
  EXPECT_FALSE(t1.AgreesOn({0, 1}, t2, {2}));  // arity mismatch
}

TEST(TupleTest, DiffCountAndAttrs) {
  SchemaPtr s = S();
  Tuple t1 = std::move(Tuple::FromStrings(s, {"x", "y", "z"})).ValueOrDie();
  Tuple t2 = std::move(Tuple::FromStrings(s, {"x", "q", "w"})).ValueOrDie();
  EXPECT_EQ(t1.DiffCount(t2), 2u);
  EXPECT_EQ(t1.DiffAttrs(t2), (std::vector<AttrId>{1, 2}));
  EXPECT_EQ(t1.DiffCount(t1), 0u);
}

TEST(TupleTest, Equality) {
  SchemaPtr s = S();
  Tuple t1 = std::move(Tuple::FromStrings(s, {"x", "y", "z"})).ValueOrDie();
  Tuple t2 = t1;
  EXPECT_EQ(t1, t2);
  t2.Set(1, Value::Str("q"));
  EXPECT_NE(t1, t2);
}

TEST(ProjectKeyTest, DistinguishesFieldBoundaries) {
  SchemaPtr s = S();
  Tuple t1 = std::move(Tuple::FromStrings(s, {"ab", "c", "z"})).ValueOrDie();
  Tuple t2 = std::move(Tuple::FromStrings(s, {"a", "bc", "z"})).ValueOrDie();
  EXPECT_NE(ProjectKey(t1, {0, 1}), ProjectKey(t2, {0, 1}));
}

TEST(ProjectKeyTest, MatchesRelationRowForm) {
  SchemaPtr s = S();
  Relation rel(s);
  ASSERT_TRUE(rel.AppendStrings({"a", "b", "c"}).ok());
  EXPECT_EQ(ProjectKey(rel.at(0), {0, 2}), ProjectKey(rel, 0, {0, 2}));
}

TEST(ProjectKeyTest, OrderMatters) {
  SchemaPtr s = S();
  Tuple t = std::move(Tuple::FromStrings(s, {"a", "b", "c"})).ValueOrDie();
  EXPECT_NE(ProjectKey(t, {0, 1}), ProjectKey(t, {1, 0}));
}

}  // namespace
}  // namespace certfix
