/// \file special_cases_test.cc
/// \brief The Sect. 4 special-case matrix (Table 3) exercised end to end:
/// direct fixes, positive/concrete tableaux, fixed Sigma, and the
/// Theorem 14 observation that the set-cover reduction produces *direct*
/// rules (so Z-minimum stays NP-hard even for direct fixes).

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/coverage.h"
#include "core/direct_fix.h"
#include "core/zproblems.h"
#include "solver/reductions.h"
#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

TEST(SpecialCasesTest, SetCoverReductionRulesAreDirect) {
  // Theorem 14: the Thm 12 reduction uses pattern-free rules, which are
  // direct by definition — the same instances witness hardness for the
  // direct-fix Z-minimum problem.
  SetCoverInstance sc;
  sc.universe = 3;
  sc.sets = {{0, 1}, {1, 2}, {0, 1, 2}};
  ZInstance inst = ReduceSetCoverToZMinimum(sc);
  EXPECT_TRUE(inst.rules.AllDirect());
  DirectFixChecker checker(inst.rules, inst.dm);
  EXPECT_TRUE(checker.ValidateShape().ok());
}

TEST(SpecialCasesTest, DirectSemanticsStrictlyWeakerOnReduction) {
  // The direct-fix semantics forbids region extension (Sect. 4.1 case
  // (5b)). On the set-cover reduction with Z = {C4} (the all-elements
  // set), the GENERAL semantics covers everything: the element copies are
  // fixed from C4, the region extends, and the back rules re-cover
  // C1..C3. The DIRECT semantics cannot reach C1..C3 (their back rules'
  // premises are the 20 copy attributes, never inside Z), so the same
  // region is certain generally but not directly — exactly why Thm 14
  // needs its own reduction in the paper's appendix.
  SetCoverInstance sc;
  sc.universe = 3;
  sc.sets = {{0}, {1}, {2}, {0, 1, 2}};
  ZInstance inst = ReduceSetCoverToZMinimum(sc);
  std::vector<AttrId> z = {3};  // C4
  PatternTuple tc(inst.r);
  tc.SetConst(3, Value::Int(1));

  DirectFixChecker direct(inst.rules, inst.dm);
  Result<bool> direct_certain = direct.IsCertainRegion(z, tc);
  ASSERT_TRUE(direct_certain.ok()) << direct_certain.status();
  EXPECT_FALSE(*direct_certain);

  MasterIndex index(inst.rules, inst.dm);
  Saturator sat(inst.rules, inst.dm, index);
  CoverageChecker general(sat);
  Region region = Region::Of(inst.r, z);
  ASSERT_TRUE(region.AddRow(tc).ok());
  Result<bool> general_certain = general.IsCertainRegion(region);
  ASSERT_TRUE(general_certain.ok()) << general_certain.status();
  EXPECT_TRUE(*general_certain);
}

// Direct-fix inconsistency implies general inconsistency: a same-region
// conflict between two Sigma_Z rules is visible to the saturation checker
// in its first round. Random direct instances.
class DirectImpliesGeneralTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DirectImpliesGeneralTest, Holds) {
  Rng rng(GetParam() * 917 + 11);
  // Random direct rules over small schemas and a small master.
  SchemaPtr r = Schema::Make(
      "R", std::vector<Attribute>{{"a0", DataType::kInt},
                                  {"a1", DataType::kInt},
                                  {"a2", DataType::kInt},
                                  {"a3", DataType::kInt},
                                  {"a4", DataType::kInt}});
  SchemaPtr rm = Schema::Make(
      "Rm", std::vector<Attribute>{{"m0", DataType::kInt},
                                   {"m1", DataType::kInt},
                                   {"m2", DataType::kInt},
                                   {"m3", DataType::kInt}});
  Relation dm(rm);
  for (int row = 0; row < 5; ++row) {
    Tuple t(rm);
    for (AttrId a = 0; a < 4; ++a) t.Set(a, Value::Int(rng.Uniform(0, 2)));
    ASSERT_TRUE(dm.Append(std::move(t)).ok());
  }
  RuleSet rules(r, rm);
  for (int i = 0; i < 5; ++i) {
    AttrId x = static_cast<AttrId>(rng.Index(5));
    AttrId b = static_cast<AttrId>(rng.Index(5));
    if (x == b) continue;
    // Direct shape: pattern (if any) on the lhs attribute itself.
    PatternTuple tp(r);
    if (rng.Bernoulli(0.3)) tp.SetConst(x, Value::Int(rng.Uniform(0, 2)));
    Result<EditingRule> rule = EditingRule::Make(
        "d" + std::to_string(i), r, rm, {x},
        {static_cast<AttrId>(rng.Index(4))}, b,
        static_cast<AttrId>(rng.Index(4)), std::move(tp));
    if (rule.ok()) {
      ASSERT_TRUE(rules.Add(std::move(rule).ValueOrDie()).ok());
    }
  }
  if (rules.empty()) GTEST_SKIP();

  // Random concrete region over a random Z.
  std::vector<AttrId> z;
  PatternTuple tc(r);
  for (AttrId a = 0; a < 5; ++a) {
    if (rng.Bernoulli(0.5)) {
      z.push_back(a);
      tc.SetConst(a, Value::Int(rng.Uniform(0, 2)));
    }
  }
  if (z.empty()) GTEST_SKIP();

  DirectFixChecker direct(rules, dm);
  Result<bool> direct_ok = direct.IsConsistent(z, tc);
  ASSERT_TRUE(direct_ok.ok()) << direct_ok.status();

  MasterIndex index(rules, dm);
  Saturator sat(rules, dm, index);
  ConsistencyChecker general(sat);
  Region region = Region::Of(r, z);
  ASSERT_TRUE(region.AddRow(tc).ok());
  Result<bool> general_ok = general.IsConsistent(region);
  ASSERT_TRUE(general_ok.ok()) << general_ok.status();

  if (!*direct_ok) {
    EXPECT_FALSE(*general_ok)
        << "direct-fix conflict invisible to the general checker";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDirect, DirectImpliesGeneralTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(SpecialCasesTest, TableauClassificationDrivesCheckerPath) {
  // Concrete rows use the PTIME path even with tight instantiation
  // budgets; wildcard rows on mentioned attributes need the enumeration
  // budget (Thm 4 vs Thm 1 in practice).
  SchemaPtr r = SupplierSchema();
  SchemaPtr rm = SupplierMasterSchema();
  Relation dm = SupplierMaster(rm);
  RuleSet rules = SupplierRules(r, rm);
  MasterIndex index(rules, dm);
  Saturator sat(rules, dm, index);
  ConsistencyChecker checker(sat);

  Region concrete = Region::Of(r, Attrs(r, {"zip"}).ToVector());
  PatternTuple row(r);
  row.SetConst(A(r, "zip"), Value::Str("EH7 4AH"));
  ASSERT_TRUE(concrete.AddRow(row).ok());
  Result<bool> ok = checker.IsConsistent(concrete, /*max_instances=*/1);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);

  Region wild = Region::Of(r, Attrs(r, {"zip"}).ToVector());
  ASSERT_TRUE(wild.AddRow(PatternTuple(r)).ok());
  EXPECT_FALSE(checker.IsConsistent(wild, /*max_instances=*/1).ok());
}

TEST(SpecialCasesTest, FixedSigmaZProblemsPolynomialShape) {
  // Proposition 8/11/15 in practice: with Sigma fixed (the supplier
  // rules), the Z-problem enumerations complete within a small budget.
  SchemaPtr r = SupplierSchema();
  SchemaPtr rm = SupplierMasterSchema();
  Relation dm = SupplierMaster(rm);
  RuleSet rules = SupplierRules(r, rm);
  MasterIndex index(rules, dm);
  Saturator sat(rules, dm, index);
  ZProblems z(sat);
  ZOptions opts;
  opts.use_negations = false;
  opts.max_patterns = 2000000;
  Result<std::optional<std::vector<AttrId>>> zmin = z.MinimumExact(4, opts);
  ASSERT_TRUE(zmin.ok()) << zmin.status();
  EXPECT_TRUE(zmin->has_value());
}

TEST(SpecialCasesTest, PositiveTableauStillGeneralComplexity) {
  // Corollary 3: positivity of Tc does not simplify the analysis — our
  // checker treats positive wildcard rows with the same enumeration
  // machinery (correctness spot-check on a positive 2-row tableau).
  SchemaPtr r = SupplierSchema();
  SchemaPtr rm = SupplierMasterSchema();
  Relation dm = SupplierMaster(rm);
  RuleSet rules = SupplierRules(r, rm);
  MasterIndex index(rules, dm);
  Saturator sat(rules, dm, index);
  ConsistencyChecker checker(sat);
  Region region = Region::Of(r, Attrs(r, {"zip", "type"}).ToVector());
  for (const char* type : {"1", "2"}) {
    PatternTuple row(r);
    row.SetConst(A(r, "type"), Value::Str(type));
    ASSERT_TRUE(region.AddRow(row).ok());  // zip stays wildcard: positive
  }
  EXPECT_TRUE(region.tableau().IsPositive());
  EXPECT_FALSE(region.tableau().IsConcrete());
  Result<bool> ok = checker.IsConsistent(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

}  // namespace
}  // namespace certfix
