/// \file suggestion_property_test.cc
/// \brief Parameterized end-to-end invariants of the interactive engine
/// over randomized HOSP streams: suggestions are sound (IsSuggestion
/// accepts what Suggest emits), every completed fix is correct for
/// duplicates, and the cached path is outcome-equivalent to the uncached
/// one.

#include <gtest/gtest.h>

#include "core/certain_fix.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

struct Setup2 {
  SchemaPtr schema;
  Relation master;
  Relation non_master;
  RuleSet rules;
};

Setup2 MakeSetup(uint64_t seed) {
  Setup2 s;
  s.schema = HospWorkload::MakeSchema();
  Rng rng(seed);
  s.master = HospWorkload::MakeMaster(s.schema, 300, &rng);
  Rng rng2(seed * 7 + 1);
  s.non_master = HospWorkload::MakeMaster(s.schema, 150, &rng2, 1000000);
  s.rules = HospWorkload::MakeRules(s.schema);
  return s;
}

class SuggestionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuggestionPropertyTest, SuggestOutputsAreAcceptedByIsSuggestion) {
  Setup2 s = MakeSetup(GetParam());
  MasterIndex index(s.rules, s.master);
  Suggester suggester(s.rules, s.master, &index);
  Saturator sat(s.rules, s.master, index);

  DirtyGenOptions gen_options;
  gen_options.seed = GetParam() * 3 + 1;
  DirtyGenerator gen(s.master, s.non_master, gen_options);
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    DirtyPair pair = gen.Next();
    // Random validated set with truth values (as after user assertions).
    AttrSet z;
    Tuple t = pair.dirty;
    for (AttrId a = 0; a < s.schema->num_attrs(); ++a) {
      if (rng.Bernoulli(0.3)) {
        z.Add(a);
        t.Set(a, pair.clean.at(a));
      }
    }
    if (z == s.schema->AllAttrs()) continue;
    AttrSet sugg = suggester.Suggest(t, z);
    EXPECT_FALSE(sugg.Intersects(z));
    EXPECT_FALSE(sugg.Empty());
    EXPECT_TRUE(suggester.IsSuggestion(t, z, sugg))
        << "Suggest emitted a set its own re-check rejects";
  }
}

TEST_P(SuggestionPropertyTest, DuplicatesFixedToTruth) {
  Setup2 s = MakeSetup(GetParam() * 11 + 2);
  CertainFixEngine engine(s.rules, s.master, CertainFixOptions{});
  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = 1.0;
  gen_options.noise_rate = 0.3;
  gen_options.seed = GetParam();
  DirtyGenerator gen(s.master, s.non_master, gen_options);
  for (int i = 0; i < 15; ++i) {
    DirtyPair pair = gen.Next();
    GroundTruthUser user(pair.clean);
    FixOutcome outcome = engine.Fix(pair.dirty, &user);
    ASSERT_TRUE(outcome.completed);
    EXPECT_FALSE(outcome.conflict);
    EXPECT_EQ(outcome.fixed, pair.clean);
    // Every rule-written value equals the truth (certainty).
    for (AttrId a : outcome.auto_fixed.ToVector()) {
      EXPECT_EQ(outcome.fixed.at(a), pair.clean.at(a));
    }
  }
}

TEST_P(SuggestionPropertyTest, CachedAndUncachedOutcomesAgree) {
  Setup2 s = MakeSetup(GetParam() * 13 + 5);
  CertainFixOptions with;
  with.use_cache = true;
  CertainFixOptions without;
  without.use_cache = false;
  CertainFixEngine cached(s.rules, s.master, with);
  CertainFixEngine plain(s.rules, s.master, without);

  DirtyGenOptions gen_options;
  gen_options.seed = GetParam() * 5 + 3;
  DirtyGenerator gen(s.master, s.non_master, gen_options);
  for (int i = 0; i < 10; ++i) {
    DirtyPair pair = gen.Next();
    GroundTruthUser u1(pair.clean);
    GroundTruthUser u2(pair.clean);
    FixOutcome a = cached.Fix(pair.dirty, &u1);
    FixOutcome b = plain.Fix(pair.dirty, &u2);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.fixed, b.fixed);
  }
}

TEST_P(SuggestionPropertyTest, UserEffortBoundedByInitialRegionPlusRest) {
  // The engine never asks the user for more than |R| attribute
  // assertions in total, and asserted sets across rounds are disjoint.
  Setup2 s = MakeSetup(GetParam() * 17 + 7);
  CertainFixEngine engine(s.rules, s.master, CertainFixOptions{});
  DirtyGenOptions gen_options;
  gen_options.seed = GetParam() * 9 + 2;
  DirtyGenerator gen(s.master, s.non_master, gen_options);
  for (int i = 0; i < 10; ++i) {
    DirtyPair pair = gen.Next();
    GroundTruthUser user(pair.clean);
    FixOutcome outcome = engine.Fix(pair.dirty, &user);
    size_t total_asserted = 0;
    AttrSet seen;
    for (const RoundRecord& round : outcome.rounds) {
      EXPECT_FALSE(round.asserted.Intersects(seen));
      seen = seen.Union(round.asserted);
      total_asserted += static_cast<size_t>(round.asserted.Count());
    }
    EXPECT_LE(total_asserted, s.schema->num_attrs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuggestionPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace certfix
