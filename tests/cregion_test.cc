#include "core/cregion.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/dblp.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class CRegionSupplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
    finder_ = std::make_unique<RegionFinder>(*sat_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
  std::unique_ptr<RegionFinder> finder_;
};

TEST_F(CRegionSupplierTest, CompCRegionZIsMinimal) {
  std::vector<AttrId> z = finder_->CompCRegionZ();
  // The forced attrs {phn, type, item} plus one geographic key: size 4.
  EXPECT_EQ(z.size(), 4u);
  AttrSet z_set = AttrSet::FromVector(z);
  EXPECT_TRUE(Attrs(r_, {"phn", "type", "item"}).SubsetOf(z_set));
  EXPECT_EQ(finder_->Closure(z_set), r_->AllAttrs());
}

TEST_F(CRegionSupplierTest, BuildRegionRowsAreValidCertainRegions) {
  std::vector<AttrId> z = finder_->CompCRegionZ();
  CRegionOptions opts;
  double coverage = 0.0;
  Region region = finder_->BuildRegion(z, opts, &coverage);
  EXPECT_FALSE(region.tableau().empty());
  EXPECT_GT(coverage, 0.0);
  CoverageChecker checker(*sat_);
  Result<bool> ok = checker.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
}

TEST_F(CRegionSupplierTest, RankedRegionsSorted) {
  std::vector<RankedRegion> regions = finder_->ComputeCertainRegions();
  ASSERT_FALSE(regions.empty());
  for (size_t i = 1; i < regions.size(); ++i) {
    EXPECT_GE(regions[i - 1].quality, regions[i].quality);
  }
}

TEST_F(CRegionSupplierTest, BuildRowForMasterAnchorsPatterns) {
  std::vector<AttrId> z =
      Attrs(r_, {"zip", "phn", "type", "item"}).ToVector();
  std::optional<PatternTuple> row =
      BuildRowForMaster(rules_, z, dm_.at(0));
  ASSERT_TRUE(row.has_value());
  // zip pinned to s1's zip; item stays wildcard.
  EXPECT_EQ(row->Get(A(r_, "zip")).value().as_string(), "EH7 4AH");
  EXPECT_TRUE(row->Get(A(r_, "item")).is_wildcard());
}

TEST_F(CRegionSupplierTest, BuildRowRespectsAnchor) {
  std::vector<AttrId> z =
      Attrs(r_, {"zip", "phn", "type", "item"}).ToVector();
  Tuple anchor = T1(r_);
  // Anchor matches s1's zip: row exists.
  std::optional<PatternTuple> ok_row = BuildRowForMaster(
      rules_, z, dm_.at(0), &anchor, Attrs(r_, {"zip"}));
  EXPECT_TRUE(ok_row.has_value());
  // Anchor conflicts with s2's zip: no row.
  std::optional<PatternTuple> no_row = BuildRowForMaster(
      rules_, z, dm_.at(1), &anchor, Attrs(r_, {"zip"}));
  EXPECT_FALSE(no_row.has_value());
}

TEST(CRegionWorkloadTest, HospCompVsGreedy) {
  // Exp-1(1): the certain region found by CompCRegion has 2 attributes
  // for HOSP while GRegion needs 4.
  SchemaPtr schema = HospWorkload::MakeSchema();
  RuleSet rules = HospWorkload::MakeRules(schema);
  Rng rng(3);
  Relation master = HospWorkload::MakeMaster(schema, 200, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  RegionFinder finder(sat);

  std::vector<AttrId> comp = finder.CompCRegionZ();
  std::vector<AttrId> greedy = finder.GRegionZ();
  EXPECT_EQ(comp.size(), 2u);
  EXPECT_EQ(greedy.size(), 4u);
  EXPECT_EQ(finder.Closure(AttrSet::FromVector(comp)), schema->AllAttrs());
}

TEST(CRegionWorkloadTest, DblpCompVsGreedy) {
  // Exp-1(1) for DBLP: CompCRegion finds the forced 5-attribute region;
  // GRegion is strictly larger.
  SchemaPtr schema = DblpWorkload::MakeSchema();
  RuleSet rules = DblpWorkload::MakeRules(schema);
  Rng rng(3);
  Relation master = DblpWorkload::MakeMaster(schema, 200, &rng);
  MasterIndex index(rules, master);
  Saturator sat(rules, master, index);
  RegionFinder finder(sat);

  std::vector<AttrId> comp = finder.CompCRegionZ();
  std::vector<AttrId> greedy = finder.GRegionZ();
  EXPECT_EQ(comp.size(), 5u);
  EXPECT_GT(greedy.size(), comp.size());
  EXPECT_EQ(finder.Closure(AttrSet::FromVector(comp)), schema->AllAttrs());
  EXPECT_EQ(finder.Closure(AttrSet::FromVector(greedy)),
            schema->AllAttrs());
}

}  // namespace
}  // namespace certfix
