#include "core/suggest.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class SuggestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    suggester_ = std::make_unique<Suggester>(rules_, dm_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<Suggester> suggester_;
};

TEST_F(SuggestTest, Example13Suggestion) {
  // Example 13: after t1[zip, AC, str, city] is fixed, S = {phn, type,
  // item} is a suggestion (covering fn/ln via phi4-5 and item by the
  // user).
  Tuple t1 = T1(r_);
  t1.Set(A(r_, "AC"), Value::Str("131"));
  t1.Set(A(r_, "str"), Value::Str("51 Elm Row"));
  AttrSet z = Attrs(r_, {"zip", "AC", "str", "city"});

  AttrSet s = suggester_->Suggest(t1, z);
  EXPECT_EQ(s, Attrs(r_, {"phn", "type", "item"}));
}

TEST_F(SuggestTest, IsSuggestionAcceptsExample13) {
  Tuple t1 = T1(r_);
  t1.Set(A(r_, "AC"), Value::Str("131"));
  t1.Set(A(r_, "str"), Value::Str("51 Elm Row"));
  AttrSet z = Attrs(r_, {"zip", "AC", "str", "city"});
  EXPECT_TRUE(
      suggester_->IsSuggestion(t1, z, Attrs(r_, {"phn", "type", "item"})));
}

TEST_F(SuggestTest, IsSuggestionRejectsInsufficientSet) {
  Tuple t1 = T1(r_);
  AttrSet z = Attrs(r_, {"zip", "AC", "str", "city"});
  // {phn} alone cannot cover fn/ln (type missing) nor item.
  EXPECT_FALSE(suggester_->IsSuggestion(t1, z, Attrs(r_, {"phn"})));
}

TEST_F(SuggestTest, IsSuggestionTrivialFullSet) {
  Tuple t1 = T1(r_);
  AttrSet z = Attrs(r_, {"zip"});
  AttrSet rest = r_->AllAttrs().Minus(z);
  EXPECT_TRUE(suggester_->IsSuggestion(t1, z, rest));
}

TEST_F(SuggestTest, IsSuggestionRejectsEmpty) {
  Tuple t1 = T1(r_);
  EXPECT_FALSE(suggester_->IsSuggestion(t1, Attrs(r_, {"zip"}), AttrSet()));
}

TEST_F(SuggestTest, EmptyZSuggestionCoversEverythingNeeded) {
  Tuple t1 = T1(r_);
  AttrSet s = suggester_->Suggest(t1, AttrSet());
  // The suggestion plus derivable attributes must cover R.
  ApplicableRules applicable = suggester_->Applicable(t1, AttrSet());
  AttrSet closure = s;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EditingRule& rule : applicable.rules) {
      if (!closure.Contains(rule.rhs()) &&
          rule.premise_set().SubsetOf(closure)) {
        closure.Add(rule.rhs());
        changed = true;
      }
    }
  }
  EXPECT_EQ(closure, r_->AllAttrs());
}

TEST_F(SuggestTest, FullyValidatedNeedsNothing) {
  Tuple t1 = T1Truth(r_);
  AttrSet s = suggester_->Suggest(t1, r_->AllAttrs());
  EXPECT_TRUE(s.Empty());
}

TEST_F(SuggestTest, NoMasterMatchFallsBackToRest) {
  // t4 matches nothing in Dm: the only safe suggestion is everything
  // not yet validated.
  Tuple t4 = T4(r_);
  AttrSet z = Attrs(r_, {"zip", "AC", "phn", "type"});
  AttrSet s = suggester_->Suggest(t4, z);
  EXPECT_EQ(s, r_->AllAttrs().Minus(z));
}

TEST_F(SuggestTest, SuggestionsNeverIncludeValidatedAttrs) {
  for (const Tuple& t : {T1(r_), T2(r_), T3(r_)}) {
    for (const auto& names :
         {std::vector<std::string>{"zip"},
          std::vector<std::string>{"zip", "AC", "str", "city"},
          std::vector<std::string>{"type", "AC", "phn"}}) {
      AttrSet z = Attrs(r_, names);
      AttrSet s = suggester_->Suggest(t, z);
      EXPECT_FALSE(s.Intersects(z))
          << "suggestion overlaps validated set for " << t.ToString();
    }
  }
}

}  // namespace
}  // namespace certfix
