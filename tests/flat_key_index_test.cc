#include "relational/flat_key_index.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "relational/key_index.h"

namespace certfix {
namespace {

// ---------------------------------------------------------------------------
// FlatIdTable

TEST(FlatIdTableTest, InsertFindErase) {
  FlatIdTable t(2);
  const ValueId k1[] = {1, 2};
  const ValueId k2[] = {2, 1};
  EXPECT_EQ(t.Find(k1), FlatIdTable::kNotFound);
  EXPECT_EQ(t.InsertOrGet(k1, 7), 7u);
  EXPECT_EQ(t.InsertOrGet(k1, 9), 7u);  // present: keeps the first payload
  EXPECT_EQ(t.Find(k1), 7u);
  EXPECT_EQ(t.Find(k2), FlatIdTable::kNotFound);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Erase(k1));
  EXPECT_FALSE(t.Erase(k1));
  EXPECT_EQ(t.Find(k1), FlatIdTable::kNotFound);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlatIdTableTest, TombstoneSlotIsReused) {
  // Insert/erase cycles of one key must not consume fresh slots: the
  // re-insert takes the tombstone, so the table never resizes.
  FlatIdTable t(1);
  const size_t buckets = t.num_buckets();
  const ValueId k[] = {42};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(t.InsertOrGet(k, static_cast<uint32_t>(i)),
              static_cast<uint32_t>(i));
    EXPECT_TRUE(t.Erase(k));
  }
  EXPECT_EQ(t.num_buckets(), buckets);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlatIdTableTest, GrowthKeepsEveryKey) {
  FlatIdTable t(2, /*expected_keys=*/4);  // undersized: forces resizes
  for (uint32_t i = 0; i < 5000; ++i) {
    const ValueId k[] = {i, i * 31 + 1};
    EXPECT_EQ(t.InsertOrGet(k, i), i);
  }
  EXPECT_EQ(t.size(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) {
    const ValueId k[] = {i, i * 31 + 1};
    EXPECT_EQ(t.Find(k), i) << "key " << i << " lost in a resize";
  }
}

TEST(FlatIdTableTest, RehashPurgesTombstones) {
  FlatIdTable t(1, /*expected_keys=*/4);
  // Churn distinct keys with immediate erase: used_ climbs via
  // tombstones until a rehash purges them; live keys must survive.
  const ValueId keep[] = {1u << 20};
  EXPECT_EQ(t.InsertOrGet(keep, 777u), 777u);
  for (uint32_t i = 0; i < 5000; ++i) {
    const ValueId k[] = {i};
    t.InsertOrGet(k, i);
    EXPECT_TRUE(t.Erase(k));
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Find(keep), 777u);
}

TEST(FlatIdTableTest, LongKeysUseArena) {
  // Arity above kInlineArity routes keys through the arena path.
  constexpr size_t kArity = FlatIdTable::kInlineArity + 3;
  FlatIdTable t(kArity);
  std::vector<ValueId> key(kArity);
  for (uint32_t i = 0; i < 2000; ++i) {
    for (size_t a = 0; a < kArity; ++a) key[a] = i * 7 + static_cast<ValueId>(a);
    EXPECT_EQ(t.InsertOrGet(key.data(), i), i);
  }
  for (uint32_t i = 0; i < 2000; ++i) {
    for (size_t a = 0; a < kArity; ++a) key[a] = i * 7 + static_cast<ValueId>(a);
    EXPECT_EQ(t.Find(key.data()), i);
  }
  // Erase every other key, then verify the survivors across a growth.
  for (uint32_t i = 0; i < 2000; i += 2) {
    for (size_t a = 0; a < kArity; ++a) key[a] = i * 7 + static_cast<ValueId>(a);
    EXPECT_TRUE(t.Erase(key.data()));
  }
  for (uint32_t i = 2000; i < 4000; ++i) {
    for (size_t a = 0; a < kArity; ++a) key[a] = i * 7 + static_cast<ValueId>(a);
    t.InsertOrGet(key.data(), i);
  }
  for (uint32_t i = 1; i < 2000; i += 2) {
    for (size_t a = 0; a < kArity; ++a) key[a] = i * 7 + static_cast<ValueId>(a);
    EXPECT_EQ(t.Find(key.data()), i);
  }
}

TEST(FlatIdTableTest, ArityZero) {
  // A key over no attributes: exactly one possible key.
  FlatIdTable t(0);
  EXPECT_EQ(t.Find(nullptr), FlatIdTable::kNotFound);
  EXPECT_EQ(t.InsertOrGet(nullptr, 5), 5u);
  EXPECT_EQ(t.InsertOrGet(nullptr, 8), 5u);
  EXPECT_EQ(t.Find(nullptr), 5u);
  EXPECT_TRUE(t.Erase(nullptr));
  EXPECT_EQ(t.Find(nullptr), FlatIdTable::kNotFound);
}

TEST(FlatIdTableTest, DifferentialAgainstStdMap) {
  // Randomized insert/find/erase against a reference map, across all
  // arity regimes (inline short keys and arena long keys).
  for (size_t arity : {1u, 2u, 4u, 6u}) {
    std::mt19937 rng(1234u + static_cast<unsigned>(arity));
    FlatIdTable t(arity, 8);
    std::map<std::vector<ValueId>, uint32_t> ref;
    std::vector<ValueId> key(arity);
    for (int step = 0; step < 20000; ++step) {
      for (size_t a = 0; a < arity; ++a) key[a] = rng() % 97;
      const int op = static_cast<int>(rng() % 3);
      std::vector<ValueId> k(key);
      if (op == 0) {
        const uint32_t fresh = static_cast<uint32_t>(step);
        const uint32_t got = t.InsertOrGet(key.data(), fresh);
        auto [it, inserted] = ref.emplace(k, fresh);
        EXPECT_EQ(got, it->second);
      } else if (op == 1) {
        auto it = ref.find(k);
        EXPECT_EQ(t.Find(key.data()),
                  it == ref.end() ? FlatIdTable::kNotFound : it->second);
      } else {
        EXPECT_EQ(t.Erase(key.data()), ref.erase(k) > 0);
      }
      EXPECT_EQ(t.size(), ref.size());
    }
  }
}

// ---------------------------------------------------------------------------
// FlatKeyIndex vs KeyIndex

SchemaPtr S() {
  return Schema::Make("R", std::vector<std::string>{"a", "b", "c"});
}

/// A random relation with heavy key collisions (small alphabets).
Relation RandomRel(size_t rows, unsigned seed) {
  std::mt19937 rng(seed);
  Relation rel(S());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(rel.AppendStrings({"a" + std::to_string(rng() % 17),
                                   "b" + std::to_string(rng() % 11),
                                   "c" + std::to_string(rng() % 5)})
                    .ok());
  }
  return rel;
}

void ExpectSameRows(const RowSpan& got, const std::vector<size_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    // Element-wise: postings order (ascending row) must match KeyIndex.
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(FlatKeyIndexTest, DifferentialAgainstKeyIndex) {
  for (unsigned seed : {1u, 2u, 3u}) {
    Relation rel = RandomRel(500, seed);
    for (const std::vector<AttrId>& attrs :
         std::vector<std::vector<AttrId>>{{0}, {1, 2}, {0, 1, 2}}) {
      KeyIndex ref(rel, attrs);
      FlatKeyIndex flat(rel, attrs);
      EXPECT_EQ(flat.num_keys(), ref.num_keys());
      for (size_t i = 0; i < rel.size(); ++i) {
        std::vector<Value> key;
        for (AttrId a : attrs) key.push_back(rel.at(i).at(a));
        ExpectSameRows(flat.Lookup(key), ref.Lookup(key));
      }
      EXPECT_TRUE(flat.Lookup(std::vector<Value>(
                                  attrs.size(), Value::Str("absent")))
                      .empty());
    }
  }
}

TEST(FlatKeyIndexTest, LookupTupleBridgedMatchesKeyIndex) {
  Relation rel = RandomRel(300, 7);
  const std::vector<AttrId> attrs{0, 1};
  KeyIndex ref(rel, attrs);
  FlatKeyIndex flat(rel, attrs);
  // Probes from a foreign pool, translated through a shared bridge —
  // the shard-worker path. Include values absent from the index pool.
  PoolPtr foreign = std::make_shared<ValuePool>();
  PoolBridge ref_bridge(foreign.get(), rel.pool().get());
  PoolBridge flat_bridge(foreign.get(), rel.pool().get());
  for (size_t i = 0; i < rel.size(); ++i) {
    Tuple probe = rel.at(i).RebasedTo(foreign);
    ExpectSameRows(flat.LookupTuple(probe, attrs, &flat_bridge),
                   ref.LookupTuple(probe, attrs, &ref_bridge));
  }
  Tuple miss = std::move(Tuple::FromStrings(S(), {"nope", "nada", "x"}))
                   .ValueOrDie()
                   .RebasedTo(foreign);
  EXPECT_TRUE(flat.LookupTuple(miss, attrs, &flat_bridge).empty());
}

TEST(FlatKeyIndexTest, NullValuesAndEmptyRelation) {
  Relation rel(S());
  ASSERT_TRUE(rel.AppendStrings({"", "1", "p"}).ok());
  FlatKeyIndex idx(rel, {0});
  EXPECT_EQ(idx.Lookup({Value()}).size(), 1u);

  Relation empty(S());
  FlatKeyIndex none(empty, {0});
  EXPECT_TRUE(none.Lookup({Value::Str("x")}).empty());
  EXPECT_EQ(none.num_keys(), 0u);
}

// ---------------------------------------------------------------------------
// ProbeBatch

TEST(ProbeBatchTest, ResolveMatchesDirectLookup) {
  Relation rel = RandomRel(400, 11);
  const std::vector<AttrId> attrs{0, 1};
  FlatKeyIndex flat(rel, attrs);
  PoolPtr foreign = std::make_shared<ValuePool>();
  PoolBridge bridge(foreign.get(), rel.pool().get());
  std::vector<Tuple> probes;
  for (size_t i = 0; i < rel.size(); i += 3) {
    probes.push_back(rel.at(i).RebasedTo(foreign));
  }
  probes.push_back(std::move(Tuple::FromStrings(S(), {"nope", "nada", "x"}))
                       .ValueOrDie()
                       .RebasedTo(foreign));
  ProbeBatch batch(&flat);
  for (const Tuple& t : probes) batch.Add(t, attrs, &bridge);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    RowSpan direct = flat.LookupTuple(probes[i], attrs, &bridge);
    RowSpan staged = batch.Resolve(i);
    ASSERT_EQ(staged.size(), direct.size());
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(staged[j], direct[j]);
    }
  }
  batch.Clear();
  EXPECT_EQ(batch.size(), 0u);
}

}  // namespace
}  // namespace certfix
