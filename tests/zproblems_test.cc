#include "core/zproblems.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certfix {
namespace {

using namespace testing_fixtures;

class ZProblemsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = SupplierSchema();
    rm_ = SupplierMasterSchema();
    dm_ = SupplierMaster(rm_);
    rules_ = SupplierRules(r_, rm_);
    index_ = std::make_unique<MasterIndex>(rules_, dm_);
    sat_ = std::make_unique<Saturator>(rules_, dm_, *index_);
    z_ = std::make_unique<ZProblems>(*sat_);
  }

  SchemaPtr r_;
  SchemaPtr rm_;
  Relation dm_;
  RuleSet rules_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
  std::unique_ptr<ZProblems> z_;
};

TEST_F(ZProblemsTest, ClosureOfZipCoversGeo) {
  AttrSet closure = z_->Closure(Attrs(r_, {"zip"}));
  EXPECT_TRUE(closure.Contains(A(r_, "AC")));
  EXPECT_TRUE(closure.Contains(A(r_, "str")));
  EXPECT_TRUE(closure.Contains(A(r_, "city")));
  EXPECT_FALSE(closure.Contains(A(r_, "fn")));
  EXPECT_FALSE(closure.Contains(A(r_, "item")));
}

TEST_F(ZProblemsTest, ClosureChainsThroughRules) {
  // {type, AC, phn} -> phi6-8 give str/city/zip -> phi1-3 redundant.
  AttrSet closure = z_->Closure(Attrs(r_, {"type", "AC", "phn"}));
  EXPECT_TRUE(closure.Contains(A(r_, "zip")));
  EXPECT_TRUE(closure.Contains(A(r_, "str")));
  // fn needs phi4 whose pattern (type) is available and lhs phn too: yes!
  EXPECT_TRUE(closure.Contains(A(r_, "fn")));
  EXPECT_FALSE(closure.Contains(A(r_, "item")));
}

TEST_F(ZProblemsTest, ForcedAttrs) {
  // item is unmentioned; phn and type are mentioned but never any rhs.
  AttrSet forced = z_->ForcedAttrs();
  EXPECT_TRUE(forced.Contains(A(r_, "item")));
  EXPECT_TRUE(forced.Contains(A(r_, "phn")));
  EXPECT_TRUE(forced.Contains(A(r_, "type")));
  EXPECT_FALSE(forced.Contains(A(r_, "AC")));  // rhs of phi1
  EXPECT_FALSE(forced.Contains(A(r_, "fn")));  // rhs of phi4
}

TEST_F(ZProblemsTest, ValidateFindsWitnessForZzmi) {
  // Z = {zip, phn, type, item} admits a certain tableau (Example 9).
  std::vector<AttrId> z = Attrs(r_, {"zip", "phn", "type", "item"}).ToVector();
  ZOptions opts;
  opts.max_patterns = 2000000;
  opts.use_negations = false;  // keep the enumeration tractable
  Result<std::optional<PatternTuple>> tc = z_->Validate(z, opts);
  ASSERT_TRUE(tc.ok()) << tc.status();
  ASSERT_TRUE(tc->has_value());
  // The witness must be a certain region row.
  Region region = Region::Of(r_, z);
  ASSERT_TRUE(region.AddRow(**tc).ok());
  CoverageChecker coverage(*sat_);
  Result<bool> ok = coverage.IsCertainRegion(region);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(ZProblemsTest, ValidateFailsWithoutItem) {
  // No tableau can make {zip, phn, type} certain: item is unreachable.
  std::vector<AttrId> z = Attrs(r_, {"zip", "phn", "type"}).ToVector();
  Result<std::optional<PatternTuple>> tc = z_->Validate(z);
  ASSERT_TRUE(tc.ok()) << tc.status();
  EXPECT_FALSE(tc->has_value());
}

TEST_F(ZProblemsTest, ValidateFailsOnEmptyClosure) {
  std::vector<AttrId> z = Attrs(r_, {"item"}).ToVector();
  Result<std::optional<PatternTuple>> tc = z_->Validate(z);
  ASSERT_TRUE(tc.ok());
  EXPECT_FALSE(tc->has_value());
}

TEST_F(ZProblemsTest, CountMatchesMasterAnchoredRows) {
  // With negations off, the valid concrete patterns on {zip, phn, type,
  // item} are exactly the (s[zip], s[Mphn], 2) anchors (type = 1 rows fail
  // because fn/ln are only reachable via Mphn) plus the (s[zip], s[Hphn],
  // 1) anchors where ln/fn coverage fails -> exactly |Dm| mobile rows...
  // The exact count is asserted by construction: recompute via the
  // coverage checker to keep the expectation honest.
  std::vector<AttrId> z = Attrs(r_, {"zip", "phn", "type", "item"}).ToVector();
  ZOptions opts;
  opts.max_patterns = 2000000;
  opts.use_negations = false;
  Result<size_t> count = z_->Count(z, opts);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_GE(*count, dm_.size());  // at least the mobile-phone anchors

  // Cross-check one anchor per master tuple is indeed counted.
  CoverageChecker coverage(*sat_);
  size_t anchors = 0;
  for (const Tuple& s : dm_) {
    Region region = Region::Of(r_, z);
    PatternTuple row(r_);
    row.SetConst(A(r_, "zip"), s.at(A(rm_, "zip")));
    row.SetConst(A(r_, "phn"), s.at(A(rm_, "Mphn")));
    row.SetConst(A(r_, "type"), Value::Str("2"));
    ASSERT_TRUE(region.AddRow(row).ok());
    Result<bool> ok = coverage.IsCertainRegion(region);
    ASSERT_TRUE(ok.ok());
    if (*ok) ++anchors;
  }
  EXPECT_EQ(anchors, dm_.size());
}

TEST_F(ZProblemsTest, CountZeroWhenClosureInsufficient) {
  Result<size_t> count = z_->Count(Attrs(r_, {"zip"}).ToVector());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(ZProblemsTest, BudgetEnforced) {
  std::vector<AttrId> z = r_->AllAttrs().ToVector();
  ZOptions opts;
  opts.max_patterns = 10;
  Result<std::optional<PatternTuple>> tc = z_->Validate(z, opts);
  EXPECT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ZProblemsTest, MinimumGreedyCoversR) {
  std::vector<AttrId> z = z_->MinimumGreedy();
  EXPECT_EQ(z_->Closure(AttrSet::FromVector(z)), r_->AllAttrs());
  // Forced attrs must be present.
  AttrSet z_set = AttrSet::FromVector(z);
  EXPECT_TRUE(z_->ForcedAttrs().SubsetOf(z_set));
  // For Sigma0 the minimum is {zip or AC-side key, phn, type, item}: four.
  EXPECT_LE(z.size(), 5u);
}

TEST_F(ZProblemsTest, MinimumExactFindsFour) {
  // Forced = {phn, type, item}; one more attribute (e.g. zip) suffices.
  ZOptions opts;
  opts.max_patterns = 2000000;
  opts.use_negations = false;
  Result<std::optional<std::vector<AttrId>>> z4 = z_->MinimumExact(4, opts);
  ASSERT_TRUE(z4.ok()) << z4.status();
  ASSERT_TRUE(z4->has_value());
  EXPECT_EQ((*z4)->size(), 4u);
  // But three attributes are too few.
  Result<std::optional<std::vector<AttrId>>> z3 = z_->MinimumExact(3, opts);
  ASSERT_TRUE(z3.ok()) << z3.status();
  EXPECT_FALSE(z3->has_value());
}

}  // namespace
}  // namespace certfix
