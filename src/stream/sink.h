/// \file sink.h
/// \brief Output stage of the streaming repair engine: ordered records
/// and the sinks that consume them.
///
/// The engine's merge stage calls StreamSink::Emit exactly once per input
/// tuple, in strictly increasing `seq` order (seq 0 is the first tuple
/// pushed), serialized under the engine's merge lock — a sink never sees
/// two concurrent Emit calls and never sees records out of order,
/// regardless of the shard-worker count. Records carry owned Values (no
/// pool or relation references), so emitting crosses thread boundaries
/// without touching any shard-local state.

#ifndef CERTFIX_STREAM_SINK_H_
#define CERTFIX_STREAM_SINK_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/repair_tuple.h"
#include "relational/relation.h"

namespace certfix {

/// \brief One repaired tuple leaving the stream engine.
struct StreamRecord {
  uint64_t seq = 0;            ///< 0-based position in input order
  std::vector<Value> fixed;    ///< repaired row (input row on conflict)
  FixReport report;
};

/// \brief Consumer of ordered repaired tuples. Emit is called in seq
/// order, one call at a time; implementations need no locking of their
/// own but must not call back into the engine.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void Emit(const StreamRecord& record) = 0;
};

/// \brief Discards records (repair-for-the-counters mode).
class NullSink : public StreamSink {
 public:
  void Emit(const StreamRecord&) override {}
};

/// \brief Writes records as CSV rows, byte-identical to WriteCsv over the
/// batch-repaired relation: same header line, same RFC-4180 quoting, "\n"
/// line endings. The header is written on construction so that an empty
/// stream still produces a valid CSV file.
class CsvStreamSink : public StreamSink {
 public:
  /// `out` must outlive the sink.
  CsvStreamSink(SchemaPtr schema, std::ostream& out);
  void Emit(const StreamRecord& record) override;

 private:
  SchemaPtr schema_;
  std::ostream* out_;
};

/// \brief Collects records into a Relation plus per-tuple reports —
/// mirrors BatchRepairResult for differential testing and programmatic
/// consumers.
class CollectingSink : public StreamSink {
 public:
  explicit CollectingSink(SchemaPtr schema) : repaired_(std::move(schema)) {}

  void Emit(const StreamRecord& record) override;

  const Relation& repaired() const { return repaired_; }
  const std::vector<FixReport>& reports() const { return reports_; }
  /// Seqs (== row positions) of conflicting tuples, ascending.
  const std::vector<size_t>& conflict_rows() const { return conflict_rows_; }

 private:
  Relation repaired_;
  std::vector<FixReport> reports_;
  std::vector<size_t> conflict_rows_;
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_SINK_H_
