/// \file stream_repair.h
/// \brief Streaming point-of-entry repair engine: the paper's
/// data-monitoring reading of certain fixes (Sect. 1: correct tuples "at
/// the point of data entry", before errors propagate), as an online
/// subsystem over the batch machinery.
///
/// Pipeline:
///
/// ```
///           Push / PushStrings          (producer thread(s))
///                  |
///        route by master-key hash       (hash of the trusted cells t[Z])
///                  v
///   ring 0      ring 1     ...  ring N-1    (BoundedQueue, backpressure)
///     |            |               |
///  shard 0      shard 1    ...  shard N-1   (workers; shard-local pool +
///     |            |               |         PoolBridge; RepairOneTuple)
///     +------------+---------------+
///                  v
///           ordered merge           (reorder buffer keyed by seq;
///                  |                 emits strictly in input order)
///                  v
///              StreamSink
/// ```
///
/// Determinism: every tuple is stamped with a sequence number at
/// admission and the merge stage releases records to the sink in exactly
/// that order, so the output is byte-identical regardless of the shard
/// count — and identical to BatchRepair over the same rows, because both
/// engines run the same RepairOneTuple (core/repair_tuple.h).
///
/// Bounded memory: the per-shard rings are fixed-capacity, admission is
/// gated by an in-flight window of `num_shards * queue_capacity` tuples
/// (Push blocks — backpressure — until the merge stage catches up), so
/// the reorder buffer can never exceed the window; and each shard's
/// ValuePool is recycled once it outgrows `pool_recycle_values`, so an
/// unbounded stream of distinct values cannot grow a dictionary forever.
///
/// Single-writer pool contract (value_pool.h): the master pool is shared
/// read-only; each shard worker interns into its own pool, probing the
/// master through its own memoized PoolBridge; records cross the merge
/// boundary as owned Values, never as pool-backed tuples. No pool is
/// written concurrently, and no pool is read while another thread writes
/// it.
///
/// Threading contract for callers: Push/PushStrings may be called from
/// multiple producer threads, but Finish must not run concurrently with
/// any Push. Sinks are called serialized, in order (sink.h).

#ifndef CERTFIX_STREAM_STREAM_REPAIR_H_
#define CERTFIX_STREAM_STREAM_REPAIR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/analyze_mode.h"
#include "core/repair_tuple.h"
#include "stream/bounded_queue.h"
#include "stream/sink.h"
#include "stream/stream_metrics.h"
#include "util/status.h"

namespace certfix {

/// \brief Execution knobs for the streaming engine.
struct StreamOptions {
  /// Shard-worker count. 0 = one per hardware thread. Capped like
  /// ParallelFor at max(16, 2x hardware) — the cap never changes output,
  /// only routing.
  size_t num_shards = 1;
  /// Slots per shard ring; also sizes the in-flight window
  /// (num_shards * queue_capacity). At least 1.
  size_t queue_capacity = 256;
  /// Recycle a shard's ValuePool once it holds more than this many
  /// interned values. 0 recycles after every tuple (pathological but
  /// legal); the default keeps a shard's dictionary around a few MB on
  /// string-heavy streams.
  size_t pool_recycle_values = 1u << 16;
  /// Ruleset analysis at construction (analysis/analyzer.h): warn logs
  /// every diagnostic and proceeds; strict refuses the session — no
  /// workers are spawned, Push returns false, PushStrings and Finish
  /// surface the Inconsistent status with the conflict witness.
  AnalyzeMode analyze_first = AnalyzeMode::kOff;
  /// Per-shard repair memoization (core/repair_memo.h): repeated
  /// relevant projections — the hot paths of skewed streams — replay
  /// their recorded outcome instead of re-saturating. Output-invisible;
  /// hit/miss tallies surface in StreamSnapshot.
  bool use_memo = true;
};

/// \brief Long-lived online repair engine.
///
/// Construction spawns the shard workers; tuples flow as soon as they are
/// pushed; Finish() drains the pipeline and returns the final counters.
class StreamRepairEngine {
 public:
  /// `sat` and `sink` must outlive the engine. Every streamed tuple
  /// trusts its cells on `trusted` (the master-key attributes, e.g.
  /// verified ids — also the routing key).
  StreamRepairEngine(const Saturator& sat, AttrSet trusted,
                     StreamSink* sink, StreamOptions options = {});
  /// Finishes the stream if the caller did not (worker errors are
  /// swallowed here; call Finish() to observe them).
  ~StreamRepairEngine();

  StreamRepairEngine(const StreamRepairEngine&) = delete;
  StreamRepairEngine& operator=(const StreamRepairEngine&) = delete;

  /// Enqueues one tuple (cells copied out; `t`'s pool is not retained).
  /// Blocks while the engine is at capacity. Returns false — tuple not
  /// accepted — after Finish() or after a worker failed.
  bool Push(const Tuple& t);

  /// Parses `fields` against the schema (same typing as CSV loading) and
  /// pushes the resulting tuple. InvalidArgument on arity mismatch;
  /// Internal when the engine no longer accepts tuples.
  Status PushStrings(const std::vector<std::string>& fields);

  /// Closes ingress, drains every ring, joins the workers, and returns
  /// the final counters. Rethrows the first worker exception, if any.
  /// Idempotent; must not race with Push.
  StreamSnapshot Finish();

  /// Live counters (exact only after Finish; see stream_metrics.h).
  const StreamMetrics& metrics() const { return metrics_; }

  /// The analyze_first verdict from construction. OK unless the options
  /// asked for strict analysis and the ruleset was rejected, in which
  /// case the engine accepts no tuples and this carries the witness.
  const Status& precheck_status() const { return precheck_status_; }

  size_t num_shards() const { return queues_.size(); }
  const SchemaPtr& schema() const { return schema_; }

 private:
  /// One queued unit of work: the admission seq plus owned cell values.
  struct Item {
    uint64_t seq = 0;
    std::vector<Value> values;
  };

  size_t RouteShard(const std::vector<Value>& values, uint64_t seq) const;
  bool Admit(uint64_t* seq);            ///< window wait + seq assignment
  bool PushItem(Item item);             ///< admit + route + enqueue
  void ShardLoop(size_t shard);
  void EmitOrdered(StreamRecord record);
  void Fail(std::exception_ptr error);

  const Saturator* sat_;
  SchemaPtr schema_;
  AttrSet trusted_;
  std::vector<AttrId> trusted_attrs_;   ///< routing key, ascending
  AttrSet all_;
  StreamSink* sink_;
  StreamOptions options_;
  StreamMetrics metrics_;

  std::vector<std::unique_ptr<BoundedQueue<Item>>> queues_;
  std::vector<std::thread> workers_;

  /// Merge state: reorder buffer + admission window, one lock. Sink
  /// emission happens under this lock (records are ready-made values;
  /// the per-record work is trivial next to a tuple's saturation).
  std::mutex merge_mutex_;
  std::condition_variable window_open_;
  std::map<uint64_t, StreamRecord> pending_;
  uint64_t next_seq_ = 0;               ///< next seq to admit
  uint64_t next_emit_ = 0;              ///< next seq the sink expects
  uint64_t in_flight_ = 0;              ///< admitted, not yet emitted
  uint64_t window_ = 0;                 ///< max in_flight_
  bool failed_ = false;
  bool finished_ = false;
  std::exception_ptr first_error_;
  Status precheck_status_;              ///< strict analyze_first verdict
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_STREAM_REPAIR_H_
