#include "stream/stream_repair.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "core/repair_memo.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

namespace certfix {

namespace {
/// Tuples staged per probe block (see batch_repair.cc): one PopBatch
/// hands the worker up to this many tuples whose memo and master-index
/// buckets are prefetched together before any repair runs.
constexpr size_t kProbeBlock = 32;
}  // namespace

StreamRepairEngine::StreamRepairEngine(const Saturator& sat, AttrSet trusted,
                                       StreamSink* sink,
                                       StreamOptions options)
    : sat_(&sat),
      schema_(sat.rules().r_schema()),
      trusted_(trusted),
      trusted_attrs_(trusted.ToVector()),
      all_(sat.rules().r_schema()->AllAttrs()),
      sink_(sink),
      options_(options) {
  // The analyze_first gate runs before any worker exists: a strict
  // rejection leaves the engine inert (no queues, no threads) with the
  // verdict in precheck_status_ — Push refuses, Finish rethrows.
  precheck_status_ = GateRuleset(sat, trusted_, options_.analyze_first,
                                 "StreamRepairEngine");
  if (!precheck_status_.ok()) {
    failed_ = true;
    first_error_ = std::make_exception_ptr(
        std::runtime_error(precheck_status_.ToString()));
    return;
  }
  size_t shards = options_.num_shards == 0 ? DefaultParallelism()
                                           : options_.num_shards;
  shards = std::min(shards, std::max<size_t>(16, 2 * DefaultParallelism()));
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  window_ = static_cast<uint64_t>(shards) * options_.queue_capacity;
  queues_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    queues_.push_back(
        std::make_unique<BoundedQueue<Item>>(options_.queue_capacity));
  }
  workers_.reserve(shards);
  try {
    for (size_t s = 0; s < shards; ++s) {
      workers_.emplace_back([this, s] { ShardLoop(s); });
    }
  } catch (const std::system_error&) {
    // Thread-resource exhaustion mid-spawn (same stance as ThreadPool):
    // with at least one worker every ring still drains — workers serve
    // only their own ring, so drop the unserved rings (and shrink the
    // admission window to match the rings that remain).
    if (workers_.empty()) throw;
    queues_.resize(workers_.size());
    window_ = static_cast<uint64_t>(queues_.size()) * options_.queue_capacity;
  }
}

StreamRepairEngine::~StreamRepairEngine() {
  try {
    Finish();
  } catch (...) {
    // Worker errors surface from an explicit Finish(); a destructor has
    // nowhere to report them.
  }
}

size_t StreamRepairEngine::RouteShard(const std::vector<Value>& values,
                                      uint64_t seq) const {
  if (queues_.size() == 1) return 0;
  // FNV-1a over the master-key (trusted) cell hashes: tuples of one
  // entity land on one shard, keeping any future per-entity shard state
  // coherent. Routing never affects output — the merge stage orders by
  // seq — so any hash is semantically safe here. An empty trusted set
  // degenerates to round-robin.
  if (trusted_attrs_.empty()) return seq % queues_.size();
  size_t h = 1469598103934665603ULL;
  for (AttrId a : trusted_attrs_) {
    h ^= values[a].Hash();
    h *= 1099511628211ULL;
  }
  return h % queues_.size();
}

bool StreamRepairEngine::Admit(uint64_t* seq) {
  std::unique_lock<std::mutex> lock(merge_mutex_);
  if (finished_ || failed_) return false;
  if (in_flight_ >= window_) {
    metrics_.CountBackpressureWait();
    window_open_.wait(lock,
                      [this] { return in_flight_ < window_ || failed_; });
  }
  if (failed_) return false;
  // Seq is assigned after the window wait, never before: the window
  // frees only when smaller seqs emit, so a producer parked here while
  // holding a seq could starve the merge stage forever. (Blocking on a
  // full *ring* after assignment is different and safe: rings drain via
  // their workers regardless of merge order, so the held seq always
  // reaches the pipeline.)
  *seq = next_seq_++;
  ++in_flight_;
  return true;
}

bool StreamRepairEngine::PushItem(Item item) {
  CERTFIX_SPAN("stream.ingest");
  if (!Admit(&item.seq)) return false;
  size_t shard = RouteShard(item.values, item.seq);
  if (!queues_[shard]->Push(std::move(item))) {
    // Ring closed mid-push: a worker failed. The admitted seq will never
    // emit; failed_ is (being) set, so everything unwinds via Finish.
    std::lock_guard<std::mutex> lock(merge_mutex_);
    --in_flight_;
    return false;
  }
  metrics_.CountIn();
  return true;
}

bool StreamRepairEngine::Push(const Tuple& t) {
  Item item;
  item.values.reserve(schema_->num_attrs());
  for (size_t a = 0; a < schema_->num_attrs(); ++a) {
    item.values.push_back(t.at(static_cast<AttrId>(a)));
  }
  return PushItem(std::move(item));
}

Status StreamRepairEngine::PushStrings(
    const std::vector<std::string>& fields) {
  if (fields.size() != schema_->num_attrs()) {
    return Status::InvalidArgument(
        "field count " + std::to_string(fields.size()) +
        " does not match schema arity " +
        std::to_string(schema_->num_attrs()));
  }
  Item item;
  item.values.reserve(fields.size());
  for (size_t a = 0; a < fields.size(); ++a) {
    item.values.push_back(
        Value::Parse(fields[a], schema_->attr_type(static_cast<AttrId>(a))));
  }
  if (!PushItem(std::move(item))) {
    if (!precheck_status_.ok()) return precheck_status_;
    return Status::Internal("stream engine is finished or failed");
  }
  return Status::OK();
}

void StreamRepairEngine::ShardLoop(size_t shard) {
  try {
    PoolPtr pool = std::make_shared<ValuePool>();
    const ValuePool* master_pool = sat_->index().pool().get();
    PoolBridge bridge(pool.get(), master_pool);
    std::unique_ptr<RepairMemo> memo;
    if (options_.use_memo) {
      memo = std::make_unique<RepairMemo>(sat_->rules(), trusted_);
    }
    const std::vector<size_t> first_round =
        sat_->FirstRoundProbeRules(trusted_);
    std::vector<Item> batch;
    std::vector<Tuple> rows;
    batch.reserve(kProbeBlock);
    rows.reserve(kProbeBlock);
    while (queues_[shard]->PopBatch(&batch, kProbeBlock) > 0) {
      CERTFIX_SPAN("stream.shard_repair");
      // The recycle check runs once per batch, before any row is built:
      // a mid-batch reset would mix pools within one staged block. The
      // budget may overshoot by at most one batch of values.
      if (pool->size() > options_.pool_recycle_values) {
        // Bounded memory on unbounded streams: drop the shard dictionary
        // (and the bridge cache indexed by it) once it outgrows the
        // budget. Safe between batches — nothing outside this loop holds
        // ids of the old pool. The memo keys on that pool's ids, so it
        // resets with it.
        pool = std::make_shared<ValuePool>();
        bridge = PoolBridge(pool.get(), master_pool);
        if (memo != nullptr) memo->Clear();
        metrics_.CountPoolRecycle();
      }
      // Stage: materialize the batch's rows, prefetching each row's memo
      // bucket and round-1 value-summary buckets...
      for (Item& item : batch) {
        Tuple row(schema_, pool);
        for (size_t a = 0; a < item.values.size(); ++a) {
          row.Set(static_cast<AttrId>(a), std::move(item.values[a]));
        }
        if (memo != nullptr) memo->Prefetch(row);
        sat_->index().PrefetchRhsProbes(row, first_round, &bridge);
        rows.push_back(std::move(row));
      }
      // ...then resolve: repair in arrival order while lines are in
      // flight.
      for (size_t j = 0; j < rows.size(); ++j) {
        const Tuple& row = rows[j];
        TupleRepair r = RepairOneTuple(*sat_, row, trusted_, all_, &bridge,
                                       nullptr, memo.get());
        StreamRecord record;
        record.seq = batch[j].seq;
        record.report = r.report;
        record.fixed.reserve(schema_->num_attrs());
        // Copy the repaired cells out of the shard pool: records own
        // their values, so the merge stage and sink never touch this
        // pool. On conflict the input row is emitted unchanged (r.fixed
        // is empty).
        const Tuple& emit = r.report.conflicting() ? row : r.fixed;
        for (size_t a = 0; a < schema_->num_attrs(); ++a) {
          record.fixed.push_back(emit.at(static_cast<AttrId>(a)));
        }
        EmitOrdered(std::move(record));
      }
      batch.clear();
      rows.clear();
    }
    if (memo != nullptr) {
      metrics_.AddMemoCounts(memo->hits(), memo->misses());
    }
  } catch (...) {
    Fail(std::current_exception());
  }
}

void StreamRepairEngine::EmitOrdered(StreamRecord record) {
  CERTFIX_SPAN("stream.merge");
  std::unique_lock<std::mutex> lock(merge_mutex_);
  uint64_t seq = record.seq;
  pending_.emplace(seq, std::move(record));
  metrics_.NoteReorderDepth(pending_.size());
  uint64_t emitted = 0;
  while (!pending_.empty() && pending_.begin()->first == next_emit_) {
    StreamRecord r = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    {
      CERTFIX_SPAN("stream.sink");
      sink_->Emit(r);
    }
    metrics_.CountOut();
    metrics_.CountCellsChanged(r.report.cells_changed);
    switch (r.report.kind) {
      case FixClass::kFullyCovered:
        metrics_.CountFullyCovered();
        break;
      case FixClass::kPartial:
        metrics_.CountPartial();
        break;
      case FixClass::kUntouched:
        metrics_.CountUntouched();
        break;
      case FixClass::kConflicting:
        metrics_.CountConflicting();
        break;
    }
    ++next_emit_;
    ++emitted;
  }
  if (emitted > 0) {
    in_flight_ -= emitted;
    window_open_.notify_all();
  }
}

void StreamRepairEngine::Fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    if (!first_error_) first_error_ = error;
    failed_ = true;
  }
  window_open_.notify_all();
  for (auto& q : queues_) q->Close();
}

StreamSnapshot StreamRepairEngine::Finish() {
  if (!finished_) {
    for (auto& q : queues_) q->Close();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    uint64_t ring_waits = 0;
    for (auto& q : queues_) ring_waits += q->blocked_pushes();
    metrics_.AddBackpressureWaits(ring_waits);
    {
      std::lock_guard<std::mutex> lock(merge_mutex_);
      finished_ = true;
    }
  }
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  return metrics_.Snapshot();
}

}  // namespace certfix
