/// \file delta_source.h
/// \brief Mutation ingest for the incremental repair engine: typed deltas
/// over the maintained relation (and its master data) plus the sources
/// that produce them.
///
/// A Delta is the unit the incremental engine (src/incremental/) consumes,
/// exactly as a field vector from CsvTupleSource is the unit the streaming
/// engine consumes: fields stay strings at this layer (same typing rules
/// as CSV loading apply downstream), so sources never need a ValuePool and
/// deltas cross thread boundaries freely.
///
/// Delta-log text format (read by DeltaLogSource, one logical CSV record
/// per delta via CsvRecordReader — quoted fields, CRLF, and embedded
/// newlines all work):
///
/// ```
/// # comment lines start with '#'
/// I,,f1,f2,...,fn      insert: appends a row (position field empty)
/// U,<row>,f1,...,fn    update: replaces the row at 0-based position <row>
/// D,<row>              delete: removes the row at position <row>
/// MI,,f1,...,fm        master insert (master-schema arity)
/// MU,<row>,f1,...,fm   master update
/// MD,<row>             master delete
/// ```
///
/// Positions refer to the relation as visible at the moment the delta is
/// applied (deletes shift later rows up, inserts append), matching the
/// from-scratch oracle: applying the log to the input CSV positionally and
/// running BatchRepair over the result is the reference output.

#ifndef CERTFIX_STREAM_DELTA_SOURCE_H_
#define CERTFIX_STREAM_DELTA_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/csv_stream.h"
#include "relational/schema.h"
#include "util/result.h"

namespace certfix {

/// \brief Kind of mutation. kInsert/kUpdate/kDelete address the maintained
/// input relation; the kMaster* kinds address the master relation Dm.
enum class DeltaKind : uint8_t {
  kInsert,
  kUpdate,
  kDelete,
  kMasterInsert,
  kMasterUpdate,
  kMasterDelete,
};

/// True for the kMaster* kinds.
bool IsMasterDelta(DeltaKind kind);

/// \brief One mutation. `row` is meaningful for update/delete kinds;
/// `fields` carries the full row (schema arity) for insert/update kinds.
struct Delta {
  DeltaKind kind = DeltaKind::kInsert;
  size_t row = 0;
  std::vector<std::string> fields;
};

/// \brief Pull-based producer of deltas, mirroring CsvTupleSource.
class DeltaSource {
 public:
  virtual ~DeltaSource() = default;

  /// Reads the next delta into `*delta`. Returns true when one was read,
  /// false at clean end of input; fails on malformed records.
  virtual Result<bool> Next(Delta* delta) = 0;
};

/// \brief Parses the delta-log text format above. Arity of insert/update
/// records is validated against `schema` (input kinds) or `master_schema`
/// (master kinds) so a malformed log fails at the source, tagged with the
/// record's starting line, before anything reaches the engine.
class DeltaLogSource : public DeltaSource {
 public:
  /// `in` must outlive the source.
  DeltaLogSource(SchemaPtr schema, SchemaPtr master_schema, std::istream& in)
      : schema_(std::move(schema)),
        master_schema_(std::move(master_schema)),
        reader_(in) {}

  Result<bool> Next(Delta* delta) override;

  /// Starting line of the last record (see CsvRecordReader).
  size_t record_line() const { return reader_.record_line(); }

 private:
  SchemaPtr schema_;
  SchemaPtr master_schema_;
  CsvRecordReader reader_;
};

/// \brief In-memory source for tests and benchmarks.
class VectorDeltaSource : public DeltaSource {
 public:
  explicit VectorDeltaSource(std::vector<Delta> deltas)
      : deltas_(std::move(deltas)) {}

  Result<bool> Next(Delta* delta) override {
    if (next_ >= deltas_.size()) return false;
    *delta = deltas_[next_++];
    return true;
  }

 private:
  std::vector<Delta> deltas_;
  size_t next_ = 0;
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_DELTA_SOURCE_H_
