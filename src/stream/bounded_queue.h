/// \file bounded_queue.h
/// \brief Bounded multi-producer/multi-consumer blocking ring buffer —
/// the backpressure primitive of the streaming repair engine.
///
/// Semantics:
///  * Push blocks while the ring is full (backpressure propagates to the
///    producer) and returns false — without enqueueing — once the queue
///    has been closed.
///  * Pop blocks while the ring is empty and a producer may still push;
///    after Close() it keeps draining whatever was enqueued and returns
///    false only when the queue is both closed and empty. Nothing pushed
///    before Close() is ever lost.
///  * Close() is idempotent and wakes every blocked producer and consumer.
///
/// The ring is a fixed vector of slots reused in FIFO order, so a
/// long-running stream performs no queue allocations after construction.
/// All operations are mutex-serialized — the engine's unit of work (one
/// tuple saturation) is orders of magnitude heavier than a queue op, so a
/// lock-free ring would buy nothing here.

#ifndef CERTFIX_STREAM_BOUNDED_QUEUE_H_
#define CERTFIX_STREAM_BOUNDED_QUEUE_H_

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace certfix {

/// \brief Fixed-capacity blocking FIFO. T must be movable.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity is clamped to at least 1 slot.
  explicit BoundedQueue(size_t capacity)
      : slots_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, blocking while full. Returns false (item dropped)
  /// if the queue is closed before a slot frees up.
  bool Push(T item) {
    // Full call duration (lock acquisition + any blocked wait): the
    // latency a producer actually experiences per enqueue.
    telemetry::ScopedLatency wait(CERTFIX_TL_HISTOGRAM("queue_push_wait_ns"));
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == slots_.size() && !closed_) {
      ++blocked_pushes_;
      not_full_.wait(lock, [this] { return size_ < slots_.size() || closed_; });
    }
    if (closed_) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(item);
    ++size_;
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues without blocking. Returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || size_ == slots_.size()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(item);
    ++size_;
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues into `*out`, blocking while empty and open. Returns false
  /// only when the queue is closed and fully drained.
  bool Pop(T* out) {
    telemetry::ScopedLatency wait(CERTFIX_TL_HISTOGRAM("queue_pop_wait_ns"));
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    *out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    not_full_.notify_one();
    return true;
  }

  /// Dequeues up to `max` items, appending them to `*out`. Blocks like
  /// Pop for the first item, then drains whatever else is already
  /// queued (never waits for the batch to fill). Returns the number of
  /// items dequeued; 0 only when the queue is closed and fully drained.
  /// The batch-probe consumers use this: one lock acquisition hands a
  /// worker a block of tuples to stage together.
  size_t PopBatch(std::vector<T>* out, size_t max) {
    telemetry::ScopedLatency wait(CERTFIX_TL_HISTOGRAM("queue_pop_wait_ns"));
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return 0;  // closed and drained
    const size_t n = max < size_ ? max : size_;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[head_]));
      head_ = (head_ + 1) % slots_.size();
    }
    size_ -= n;
    not_full_.notify_all();
    return n;
  }

  /// Closes the queue: subsequent (and blocked) pushes fail, pops drain
  /// the remaining items then fail. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t capacity() const { return slots_.size(); }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// Number of Push calls that had to wait for a free slot — the
  /// backpressure signal surfaced by the stream metrics.
  size_t blocked_pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocked_pushes_;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;  ///< index of the oldest item
  size_t size_ = 0;  ///< occupied slots
  size_t blocked_pushes_ = 0;
  bool closed_ = false;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_BOUNDED_QUEUE_H_
