#include "stream/sink.h"

#include <ostream>

#include "relational/csv.h"

namespace certfix {

CsvStreamSink::CsvStreamSink(SchemaPtr schema, std::ostream& out)
    : schema_(std::move(schema)), out_(&out) {
  std::vector<std::string> header;
  header.reserve(schema_->num_attrs());
  for (size_t i = 0; i < schema_->num_attrs(); ++i) {
    header.push_back(schema_->attr_name(static_cast<AttrId>(i)));
  }
  *out_ << FormatCsvLine(header) << "\n";
}

void CsvStreamSink::Emit(const StreamRecord& record) {
  std::vector<std::string> fields;
  fields.reserve(record.fixed.size());
  for (const Value& v : record.fixed) {
    fields.push_back(v.is_null() ? "" : v.ToString());
  }
  *out_ << FormatCsvLine(fields) << "\n";
}

void CollectingSink::Emit(const StreamRecord& record) {
  Tuple row = repaired_.NewTuple();
  for (size_t a = 0; a < record.fixed.size(); ++a) {
    row.Set(static_cast<AttrId>(a), record.fixed[a]);
  }
  repaired_.Append(row);  // contract-lint: allow(status-discard) row is schema-built above
  reports_.push_back(record.report);
  if (record.report.conflicting()) {
    conflict_rows_.push_back(static_cast<size_t>(record.seq));
  }
}

}  // namespace certfix
