#include "stream/delta_source.h"

#include "util/string_util.h"

namespace certfix {

bool IsMasterDelta(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kMasterInsert:
    case DeltaKind::kMasterUpdate:
    case DeltaKind::kMasterDelete:
      return true;
    default:
      return false;
  }
}

namespace {

Status LineError(size_t line, const std::string& message) {
  return Status::ParseError("delta log line " + std::to_string(line) + ": " +
                            message);
}

bool ParseKind(const std::string& op, DeltaKind* kind) {
  if (op == "I") *kind = DeltaKind::kInsert;
  else if (op == "U") *kind = DeltaKind::kUpdate;
  else if (op == "D") *kind = DeltaKind::kDelete;
  else if (op == "MI") *kind = DeltaKind::kMasterInsert;
  else if (op == "MU") *kind = DeltaKind::kMasterUpdate;
  else if (op == "MD") *kind = DeltaKind::kMasterDelete;
  else return false;
  return true;
}

bool NeedsRow(DeltaKind kind) {
  return kind == DeltaKind::kUpdate || kind == DeltaKind::kDelete ||
         kind == DeltaKind::kMasterUpdate || kind == DeltaKind::kMasterDelete;
}

bool NeedsFields(DeltaKind kind) {
  return kind != DeltaKind::kDelete && kind != DeltaKind::kMasterDelete;
}

}  // namespace

Result<bool> DeltaLogSource::Next(Delta* delta) {
  std::vector<std::string> record;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, reader_.Next(&record));
    if (!got) return false;
    if (!record.empty() && !record[0].empty() && record[0][0] == '#') {
      continue;  // comment record
    }
    break;
  }
  size_t line = reader_.record_line();
  if (record.size() < 2) {
    return LineError(line, "expected at least op and row fields");
  }
  delta->fields.clear();
  if (!ParseKind(record[0], &delta->kind)) {
    return LineError(line, "unknown op '" + record[0] + "'");
  }
  delta->row = 0;
  if (NeedsRow(delta->kind)) {
    // Strict digits only: strtoul would quietly accept " 5" and "+5",
    // turning malformed logs into positional mutations of the wrong row.
    const std::string& s = record[1];
    size_t v = 0;
    if (!ParseSizeStrict(s, &v)) {
      return LineError(line, "op " + record[0] +
                                 " needs a non-negative row, got '" + s + "'");
    }
    delta->row = v;
  }
  if (NeedsFields(delta->kind)) {
    const SchemaPtr& schema =
        IsMasterDelta(delta->kind) ? master_schema_ : schema_;
    if (record.size() != 2 + schema->num_attrs()) {
      return LineError(line, "op " + record[0] + " carries " +
                                 std::to_string(record.size() - 2) +
                                 " fields, schema arity is " +
                                 std::to_string(schema->num_attrs()));
    }
    delta->fields.assign(record.begin() + 2, record.end());
  } else if (record.size() != 2) {
    return LineError(line, "op " + record[0] + " takes no fields");
  }
  return true;
}

}  // namespace certfix
