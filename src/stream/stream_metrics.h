/// \file stream_metrics.h
/// \brief Monitoring counters of the streaming repair engine.
///
/// All counters are relaxed atomics: they are written from producer,
/// shard-worker, and merge contexts and read by monitoring code at any
/// time, but never participate in synchronization — ordering between
/// counters is not guaranteed mid-stream. Snapshot() taken after
/// StreamRepairEngine::Finish() is exact (Finish joins every worker).

#ifndef CERTFIX_STREAM_STREAM_METRICS_H_
#define CERTFIX_STREAM_STREAM_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace certfix {

/// \brief Point-in-time copy of the stream counters (plain integers).
struct StreamSnapshot {
  uint64_t tuples_in = 0;       ///< tuples accepted by Push
  uint64_t tuples_out = 0;      ///< tuples emitted to the sink
  uint64_t fully_covered = 0;   ///< certain fix reached (covered = R)
  uint64_t partial = 0;         ///< some but not all attrs covered
  uint64_t untouched = 0;       ///< nothing beyond Z derivable
  uint64_t conflicting = 0;     ///< unique-fix check failed
  uint64_t cells_changed = 0;   ///< total attributes rewritten
  uint64_t backpressure_waits = 0;  ///< Push calls that blocked on a
                                    ///< full ring or in-flight window
  uint64_t pool_recycles = 0;   ///< shard pools reset (bounded memory)
  uint64_t max_reorder = 0;     ///< high-water mark of the merge buffer
  uint64_t memo_hits = 0;       ///< repairs replayed from a shard memo
  uint64_t memo_misses = 0;     ///< repairs computed (and memoized)
};

/// \brief Live atomic counters; copyable only via Snapshot().
class StreamMetrics {
 public:
  void CountIn() { tuples_in_.fetch_add(1, std::memory_order_relaxed); }
  void CountOut() { tuples_out_.fetch_add(1, std::memory_order_relaxed); }
  void CountFullyCovered() {
    fully_covered_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountPartial() { partial_.fetch_add(1, std::memory_order_relaxed); }
  void CountUntouched() { untouched_.fetch_add(1, std::memory_order_relaxed); }
  void CountConflicting() {
    conflicting_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCellsChanged(uint64_t n) {
    cells_changed_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountBackpressureWait() {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Folds in waits counted elsewhere (the per-ring blocked-push tallies
  /// are merged here once the stream finishes).
  void AddBackpressureWaits(uint64_t n) {
    backpressure_waits_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountPoolRecycle() {
    pool_recycles_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Folds in a shard memo's hit/miss tallies (workers add them when
  /// their loop drains, so totals are exact after Finish).
  void AddMemoCounts(uint64_t hits, uint64_t misses) {
    memo_hits_.fetch_add(hits, std::memory_order_relaxed);
    memo_misses_.fetch_add(misses, std::memory_order_relaxed);
  }
  void NoteReorderDepth(uint64_t depth) {
    uint64_t seen = max_reorder_.load(std::memory_order_relaxed);
    while (depth > seen && !max_reorder_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  StreamSnapshot Snapshot() const {
    StreamSnapshot s;
    s.tuples_in = tuples_in_.load(std::memory_order_relaxed);
    s.tuples_out = tuples_out_.load(std::memory_order_relaxed);
    s.fully_covered = fully_covered_.load(std::memory_order_relaxed);
    s.partial = partial_.load(std::memory_order_relaxed);
    s.untouched = untouched_.load(std::memory_order_relaxed);
    s.conflicting = conflicting_.load(std::memory_order_relaxed);
    s.cells_changed = cells_changed_.load(std::memory_order_relaxed);
    s.backpressure_waits =
        backpressure_waits_.load(std::memory_order_relaxed);
    s.pool_recycles = pool_recycles_.load(std::memory_order_relaxed);
    s.max_reorder = max_reorder_.load(std::memory_order_relaxed);
    s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
    s.memo_misses = memo_misses_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> tuples_in_{0};
  std::atomic<uint64_t> tuples_out_{0};
  std::atomic<uint64_t> fully_covered_{0};
  std::atomic<uint64_t> partial_{0};
  std::atomic<uint64_t> untouched_{0};
  std::atomic<uint64_t> conflicting_{0};
  std::atomic<uint64_t> cells_changed_{0};
  std::atomic<uint64_t> backpressure_waits_{0};
  std::atomic<uint64_t> pool_recycles_{0};
  std::atomic<uint64_t> max_reorder_{0};
  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> memo_misses_{0};
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_STREAM_METRICS_H_
