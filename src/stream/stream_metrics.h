/// \file stream_metrics.h
/// \brief Monitoring counters of the streaming repair engine, backed by
/// the process-wide telemetry registry (telemetry/metrics.h).
///
/// Each StreamMetrics instance is a thin view over the registry's
/// `stream.*` instruments: increments go straight to striped registry
/// counters (relaxed, lock-free), and Snapshot() subtracts the values
/// captured at construction, so an instance still reports exactly what
/// happened on *its* engine even when several engines run in one
/// process (engines run sequentially; totals are exact once
/// StreamRepairEngine::Finish() joins every worker). max_reorder is a
/// high-water mark, where baseline subtraction is meaningless, so the
/// instance keeps its own telemetry::MaxGauge and mirrors notes into
/// the registry's monotone `stream.max_reorder`.

#ifndef CERTFIX_STREAM_STREAM_METRICS_H_
#define CERTFIX_STREAM_STREAM_METRICS_H_

#include <cstddef>
#include <cstdint>

#include "telemetry/metrics.h"

namespace certfix {

/// \brief Point-in-time copy of the stream counters (plain integers).
struct StreamSnapshot {
  uint64_t tuples_in = 0;       ///< tuples accepted by Push
  uint64_t tuples_out = 0;      ///< tuples emitted to the sink
  uint64_t fully_covered = 0;   ///< certain fix reached (covered = R)
  uint64_t partial = 0;         ///< some but not all attrs covered
  uint64_t untouched = 0;       ///< nothing beyond Z derivable
  uint64_t conflicting = 0;     ///< unique-fix check failed
  uint64_t cells_changed = 0;   ///< total attributes rewritten
  uint64_t backpressure_waits = 0;  ///< Push calls that blocked on a
                                    ///< full ring or in-flight window
  uint64_t pool_recycles = 0;   ///< shard pools reset (bounded memory)
  uint64_t max_reorder = 0;     ///< high-water mark of the merge buffer
  uint64_t memo_hits = 0;       ///< repairs replayed from a shard memo
  uint64_t memo_misses = 0;     ///< repairs computed (and memoized)
};

/// \brief Live engine counters; copyable only via Snapshot(). Binds to
/// the registry that is Global() at construction — construct the
/// engine inside any ScopedRegistry it should report to.
class StreamMetrics {
 public:
  StreamMetrics() {
    telemetry::Registry* reg = telemetry::Registry::Global();
    tuples_in_ = reg->GetCounter("stream.tuples_in");
    tuples_out_ = reg->GetCounter("stream.tuples_out");
    fully_covered_ = reg->GetCounter("stream.fully_covered");
    partial_ = reg->GetCounter("stream.partial");
    untouched_ = reg->GetCounter("stream.untouched");
    conflicting_ = reg->GetCounter("stream.conflicting");
    cells_changed_ = reg->GetCounter("stream.cells_changed");
    backpressure_waits_ = reg->GetCounter("stream.backpressure_waits");
    pool_recycles_ = reg->GetCounter("stream.pool_recycles");
    memo_hits_ = reg->GetCounter("stream.memo_hits");
    memo_misses_ = reg->GetCounter("stream.memo_misses");
    max_reorder_global_ = reg->GetMaxGauge("stream.max_reorder");
    baseline_.tuples_in = tuples_in_->Value();
    baseline_.tuples_out = tuples_out_->Value();
    baseline_.fully_covered = fully_covered_->Value();
    baseline_.partial = partial_->Value();
    baseline_.untouched = untouched_->Value();
    baseline_.conflicting = conflicting_->Value();
    baseline_.cells_changed = cells_changed_->Value();
    baseline_.backpressure_waits = backpressure_waits_->Value();
    baseline_.pool_recycles = pool_recycles_->Value();
    baseline_.memo_hits = memo_hits_->Value();
    baseline_.memo_misses = memo_misses_->Value();
  }

  void CountIn() { tuples_in_->Increment(); }
  void CountOut() { tuples_out_->Increment(); }
  void CountFullyCovered() { fully_covered_->Increment(); }
  void CountPartial() { partial_->Increment(); }
  void CountUntouched() { untouched_->Increment(); }
  void CountConflicting() { conflicting_->Increment(); }
  void CountCellsChanged(uint64_t n) { cells_changed_->Add(n); }
  void CountBackpressureWait() { backpressure_waits_->Increment(); }
  /// Folds in waits counted elsewhere (the per-ring blocked-push tallies
  /// are merged here once the stream finishes).
  void AddBackpressureWaits(uint64_t n) { backpressure_waits_->Add(n); }
  void CountPoolRecycle() { pool_recycles_->Increment(); }
  /// Folds in a shard memo's hit/miss tallies (workers add them when
  /// their loop drains, so totals are exact after Finish).
  void AddMemoCounts(uint64_t hits, uint64_t misses) {
    memo_hits_->Add(hits);
    memo_misses_->Add(misses);
  }
  void NoteReorderDepth(uint64_t depth) {
    max_reorder_.Note(depth);
    max_reorder_global_->Note(depth);
  }

  StreamSnapshot Snapshot() const {
    StreamSnapshot s;
    s.tuples_in = tuples_in_->Value() - baseline_.tuples_in;
    s.tuples_out = tuples_out_->Value() - baseline_.tuples_out;
    s.fully_covered = fully_covered_->Value() - baseline_.fully_covered;
    s.partial = partial_->Value() - baseline_.partial;
    s.untouched = untouched_->Value() - baseline_.untouched;
    s.conflicting = conflicting_->Value() - baseline_.conflicting;
    s.cells_changed = cells_changed_->Value() - baseline_.cells_changed;
    s.backpressure_waits =
        backpressure_waits_->Value() - baseline_.backpressure_waits;
    s.pool_recycles = pool_recycles_->Value() - baseline_.pool_recycles;
    s.max_reorder = max_reorder_.Value();
    s.memo_hits = memo_hits_->Value() - baseline_.memo_hits;
    s.memo_misses = memo_misses_->Value() - baseline_.memo_misses;
    return s;
  }

 private:
  telemetry::Counter* tuples_in_;
  telemetry::Counter* tuples_out_;
  telemetry::Counter* fully_covered_;
  telemetry::Counter* partial_;
  telemetry::Counter* untouched_;
  telemetry::Counter* conflicting_;
  telemetry::Counter* cells_changed_;
  telemetry::Counter* backpressure_waits_;
  telemetry::Counter* pool_recycles_;
  telemetry::Counter* memo_hits_;
  telemetry::Counter* memo_misses_;
  telemetry::MaxGauge* max_reorder_global_;
  telemetry::MaxGauge max_reorder_;  ///< this engine's own high-water mark
  StreamSnapshot baseline_;  ///< registry values at construction
};

}  // namespace certfix

#endif  // CERTFIX_STREAM_STREAM_METRICS_H_
