/// \file pattern_tuple.h
/// \brief Pattern tuple tp[Xp] over a subset of a schema's attributes.

#ifndef CERTFIX_PATTERN_PATTERN_TUPLE_H_
#define CERTFIX_PATTERN_PATTERN_TUPLE_H_

#include <map>
#include <string>
#include <vector>

#include "pattern/pattern_value.h"
#include "relational/attr_set.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace certfix {

/// \brief A pattern tuple over attributes Xp of a schema (Sect. 2).
///
/// Attributes outside Xp are unconstrained; inside Xp each cell is `_`,
/// `a`, or `ā`. A tuple t matches (t ≈ tp) iff every cell's condition
/// holds. Region tableaux and rule patterns share this class.
class PatternTuple {
 public:
  PatternTuple() = default;
  explicit PatternTuple(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// Sets the pattern cell for one attribute (replacing any previous cell).
  void Set(AttrId attr, PatternValue pv);
  /// Convenience setters.
  void SetConst(AttrId attr, Value v) { Set(attr, PatternValue::Const(std::move(v))); }
  void SetNeg(AttrId attr, Value v) { Set(attr, PatternValue::NegConst(std::move(v))); }
  void SetWildcard(AttrId attr) { Set(attr, PatternValue::Wildcard()); }
  void Erase(AttrId attr);

  const SchemaPtr& schema() const { return schema_; }
  /// Attribute set Xp this pattern constrains (wildcards included).
  AttrSet attrs() const { return attrs_; }
  bool Has(AttrId attr) const { return attrs_.Contains(attr); }
  /// Cell for `attr`; wildcard if the attribute is outside Xp.
  PatternValue Get(AttrId attr) const;
  bool empty() const { return cells_.empty(); }
  size_t size() const { return cells_.size(); }

  /// Matching t[Xp] ≈ tp[Xp].
  bool Matches(const Tuple& t) const;
  /// Matching restricted to attributes in `subset` (used when only part of
  /// a tuple is validated).
  bool MatchesOn(const Tuple& t, const AttrSet& subset) const;

  /// Normal form: drop wildcard cells (Sect. 2, Notations (3)). Equivalent
  /// matching semantics.
  PatternTuple Normalized() const;

  /// True if no cell is a negated constant.
  bool IsPositive() const;
  /// True if every cell is a plain constant (no `_`, no `ā`).
  bool IsConcrete() const;

  /// Merges another pattern over the same schema; fails (returns false) if
  /// cells conflict (e.g. const a vs const b, or const a vs neg a).
  bool MergeFrom(const PatternTuple& other);

  bool operator==(const PatternTuple& o) const { return cells_ == o.cells_; }
  bool operator!=(const PatternTuple& o) const { return !(*this == o); }

  /// "[AC=0800, type!=2, city=_]" rendering.
  std::string ToString() const;

  /// Iteration over constrained cells in attribute order.
  const std::map<AttrId, PatternValue>& cells() const { return cells_; }

 private:
  SchemaPtr schema_;
  AttrSet attrs_;
  std::map<AttrId, PatternValue> cells_;
};

}  // namespace certfix

#endif  // CERTFIX_PATTERN_PATTERN_TUPLE_H_
