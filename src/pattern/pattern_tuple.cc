#include "pattern/pattern_tuple.h"

namespace certfix {

void PatternTuple::Set(AttrId attr, PatternValue pv) {
  attrs_.Add(attr);
  cells_[attr] = std::move(pv);
}

void PatternTuple::Erase(AttrId attr) {
  attrs_.Remove(attr);
  cells_.erase(attr);
}

PatternValue PatternTuple::Get(AttrId attr) const {
  auto it = cells_.find(attr);
  if (it == cells_.end()) return PatternValue::Wildcard();
  return it->second;
}

bool PatternTuple::Matches(const Tuple& t) const {
  for (const auto& [attr, pv] : cells_) {
    if (!pv.Matches(t.at(attr))) return false;
  }
  return true;
}

bool PatternTuple::MatchesOn(const Tuple& t, const AttrSet& subset) const {
  for (const auto& [attr, pv] : cells_) {
    if (!subset.Contains(attr)) continue;
    if (!pv.Matches(t.at(attr))) return false;
  }
  return true;
}

PatternTuple PatternTuple::Normalized() const {
  PatternTuple out(schema_);
  for (const auto& [attr, pv] : cells_) {
    if (!pv.is_wildcard()) out.Set(attr, pv);
  }
  return out;
}

bool PatternTuple::IsPositive() const {
  for (const auto& [attr, pv] : cells_) {
    (void)attr;
    if (pv.is_neg_const()) return false;
  }
  return true;
}

bool PatternTuple::IsConcrete() const {
  for (const auto& [attr, pv] : cells_) {
    (void)attr;
    if (!pv.is_const()) return false;
  }
  return true;
}

bool PatternTuple::MergeFrom(const PatternTuple& other) {
  for (const auto& [attr, pv] : other.cells_) {
    auto it = cells_.find(attr);
    if (it == cells_.end() || it->second.is_wildcard()) {
      Set(attr, pv);
      continue;
    }
    const PatternValue& mine = it->second;
    if (pv.is_wildcard() || pv == mine) continue;
    if (mine.is_const() && pv.is_const()) return false;  // a vs b
    if (mine.is_const() && pv.is_neg_const()) {
      if (mine.value() == pv.value()) return false;  // a vs !a
      continue;  // a already implies !b for b != a
    }
    if (mine.is_neg_const() && pv.is_const()) {
      if (mine.value() == pv.value()) return false;
      Set(attr, pv);  // constant is strictly stronger
      continue;
    }
    // !a vs !b with a != b: representable only approximately; keep the
    // existing cell. Regions built by this library never produce this case
    // (at most one negation per attribute), so reject to stay sound.
    return false;
  }
  return true;
}

std::string PatternTuple::ToString() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [attr, pv] : cells_) {
    if (!first) out += ", ";
    first = false;
    out += schema_ ? schema_->attr_name(attr) : std::to_string(attr);
    if (pv.is_neg_const()) {
      out += "!=" + pv.value().ToString();
    } else {
      out += "=" + pv.ToString();
    }
  }
  out += "]";
  return out;
}

}  // namespace certfix
