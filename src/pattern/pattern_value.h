/// \file pattern_value.h
/// \brief Pattern cell: wildcard `_`, constant `a`, or negated constant `ā`.

#ifndef CERTFIX_PATTERN_PATTERN_VALUE_H_
#define CERTFIX_PATTERN_PATTERN_VALUE_H_

#include <string>

#include "relational/value.h"

namespace certfix {

/// \brief One cell of a pattern tuple (Sect. 2 of the paper).
///
/// `a` imposes x = a, `ā` imposes x != a, and `_` imposes nothing.
class PatternValue {
 public:
  enum class Kind { kWildcard = 0, kConst = 1, kNegConst = 2 };

  /// Wildcard by default.
  PatternValue() : kind_(Kind::kWildcard) {}

  static PatternValue Wildcard() { return PatternValue(); }
  static PatternValue Const(Value v) {
    return PatternValue(Kind::kConst, std::move(v));
  }
  static PatternValue NegConst(Value v) {
    return PatternValue(Kind::kNegConst, std::move(v));
  }

  Kind kind() const { return kind_; }
  bool is_wildcard() const { return kind_ == Kind::kWildcard; }
  bool is_const() const { return kind_ == Kind::kConst; }
  bool is_neg_const() const { return kind_ == Kind::kNegConst; }

  /// The constant carried by `a` or `ā` cells; meaningless for wildcards.
  const Value& value() const { return value_; }

  /// True if the data value `v` satisfies this pattern cell.
  bool Matches(const Value& v) const {
    switch (kind_) {
      case Kind::kWildcard: return true;
      case Kind::kConst: return v == value_;
      case Kind::kNegConst: return v != value_;
    }
    return false;
  }

  bool operator==(const PatternValue& o) const {
    return kind_ == o.kind_ && (is_wildcard() || value_ == o.value_);
  }
  bool operator!=(const PatternValue& o) const { return !(*this == o); }

  /// "_", "a", or "!a".
  std::string ToString() const;

 private:
  PatternValue(Kind kind, Value v) : kind_(kind), value_(std::move(v)) {}
  Kind kind_;
  Value value_;
};

}  // namespace certfix

#endif  // CERTFIX_PATTERN_PATTERN_VALUE_H_
