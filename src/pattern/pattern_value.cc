#include "pattern/pattern_value.h"

namespace certfix {

std::string PatternValue::ToString() const {
  switch (kind_) {
    case Kind::kWildcard: return "_";
    case Kind::kConst: return value_.ToString();
    case Kind::kNegConst: return "!" + value_.ToString();
  }
  return "?";
}

}  // namespace certfix
