#include "pattern/tableau.h"

namespace certfix {

bool Tableau::Marks(const Tuple& t) const { return FirstMatch(t) >= 0; }

int Tableau::FirstMatch(const Tuple& t) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].Matches(t)) return static_cast<int>(i);
  }
  return -1;
}

bool Tableau::IsPositive() const {
  for (const auto& r : rows_) {
    if (!r.IsPositive()) return false;
  }
  return true;
}

bool Tableau::IsConcrete() const {
  for (const auto& r : rows_) {
    if (!r.IsConcrete()) return false;
  }
  return true;
}

std::string Tableau::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += rows_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace certfix
