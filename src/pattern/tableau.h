/// \file tableau.h
/// \brief Pattern tableau Tc: a set of pattern tuples over attributes Z.

#ifndef CERTFIX_PATTERN_TABLEAU_H_
#define CERTFIX_PATTERN_TABLEAU_H_

#include <string>
#include <vector>

#include "pattern/pattern_tuple.h"

namespace certfix {

/// \brief The tableau component of a region (Z, Tc) (Sect. 3).
///
/// A tuple t is *marked* by (Z, Tc) if it matches some tc in Tc.
class Tableau {
 public:
  Tableau() = default;
  explicit Tableau(SchemaPtr schema) : schema_(std::move(schema)) {}

  void Add(PatternTuple tc) { rows_.push_back(std::move(tc)); }

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const PatternTuple& at(size_t i) const { return rows_[i]; }
  const std::vector<PatternTuple>& rows() const { return rows_; }

  /// True if t matches some pattern tuple.
  bool Marks(const Tuple& t) const;
  /// Index of the first matching pattern tuple, or -1.
  int FirstMatch(const Tuple& t) const;

  /// True if every row is positive / concrete (special cases of Sect. 4).
  bool IsPositive() const;
  bool IsConcrete() const;

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<PatternTuple> rows_;
};

}  // namespace certfix

#endif  // CERTFIX_PATTERN_TABLEAU_H_
