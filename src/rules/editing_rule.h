/// \file editing_rule.h
/// \brief Editing rules (eRs): ((X, Xm) -> (B, Bm), tp[Xp])  (Sect. 2).

#ifndef CERTFIX_RULES_EDITING_RULE_H_
#define CERTFIX_RULES_EDITING_RULE_H_

#include <string>
#include <vector>

#include "pattern/pattern_tuple.h"
#include "relational/attr_set.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace certfix {

/// \brief An editing rule phi = ((X, Xm) -> (B, Bm), tp[Xp]) on (R, Rm).
///
/// Semantics (Sect. 2): phi and a master tuple tm *apply* to an input tuple
/// t, written t ->(phi,tm) t', iff (1) t[Xp] ≈ tp[Xp], (2) t[X] = tm[Xm],
/// and (3) t' is obtained by t[B] := tm[Bm].
class EditingRule {
 public:
  EditingRule() = default;

  /// Validated construction: |X| = |Xm| > 0 (X may be empty only if the
  /// rule still identifies a master tuple — the paper allows |X| = 0 in
  /// reductions, so empty X is accepted), B not in X, ids in range.
  static Result<EditingRule> Make(std::string name, SchemaPtr r,
                                  SchemaPtr rm, std::vector<AttrId> x,
                                  std::vector<AttrId> xm, AttrId b,
                                  AttrId bm, PatternTuple tp);

  /// Name-based construction convenience.
  static Result<EditingRule> MakeByName(
      std::string name, SchemaPtr r, SchemaPtr rm,
      const std::vector<std::string>& x, const std::vector<std::string>& xm,
      const std::string& b, const std::string& bm, PatternTuple tp);

  const std::string& name() const { return name_; }
  const SchemaPtr& r_schema() const { return r_; }
  const SchemaPtr& rm_schema() const { return rm_; }

  /// lhs(phi) = X as a list (master-side correspondence is positional).
  const std::vector<AttrId>& lhs() const { return x_; }
  /// lhsm(phi) = Xm.
  const std::vector<AttrId>& lhsm() const { return xm_; }
  /// rhs(phi) = B.
  AttrId rhs() const { return b_; }
  /// rhsm(phi) = Bm.
  AttrId rhsm() const { return bm_; }
  /// The pattern tuple tp[Xp].
  const PatternTuple& pattern() const { return tp_; }

  /// lhs as a set.
  AttrSet lhs_set() const { return lhs_set_; }
  /// lhsp(phi) = Xp as a set.
  AttrSet pattern_set() const { return tp_.attrs(); }
  /// lhs union lhsp: all premise attributes that must be validated before
  /// the rule may fire.
  AttrSet premise_set() const { return premise_set_; }

  /// For an attribute A in X, the positionally corresponding master
  /// attribute (the lambda_phi(.) map of Sect. 5.2). Fails if A not in X.
  Result<AttrId> MasterAttrFor(AttrId r_attr) const;

  /// Whether (phi, tm) applies to t: pattern match + key agreement.
  bool AppliesTo(const Tuple& t, const Tuple& tm) const;

  /// Applies the update t[B] := tm[Bm]; no applicability check.
  void Apply(Tuple* t, const Tuple& tm) const { t->Set(b_, tm.at(bm_)); }

  /// If (phi, tm) applies to t, returns the updated tuple; else t itself.
  Tuple TryApply(const Tuple& t, const Tuple& tm) const;

  /// Normal form (Sect. 2, Notations (3)): drops wildcard pattern cells.
  EditingRule Normalized() const;

  /// Direct-fix shape check (Sect. 4.1 special case (5)): Xp subset of X.
  bool IsDirect() const { return pattern_set().SubsetOf(lhs_set_); }

  /// "phi: R(zip) -> Rm(zip) fixes AC := AC when [ ... ]".
  std::string ToString() const;

 private:
  std::string name_;
  SchemaPtr r_;
  SchemaPtr rm_;
  std::vector<AttrId> x_;
  std::vector<AttrId> xm_;
  AttrId b_ = 0;
  AttrId bm_ = 0;
  PatternTuple tp_;
  AttrSet lhs_set_;
  AttrSet premise_set_;
};

}  // namespace certfix

#endif  // CERTFIX_RULES_EDITING_RULE_H_
