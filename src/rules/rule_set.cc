#include "rules/rule_set.h"

#include <set>

namespace certfix {

Status RuleSet::Add(EditingRule rule) {
  if (r_ == nullptr) {
    r_ = rule.r_schema();
    rm_ = rule.rm_schema();
  } else if (!rule.r_schema()->Equals(*r_) || !rule.rm_schema()->Equals(*rm_)) {
    return Status::InvalidArgument("rule " + rule.name() +
                                   " is over different schemas");
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

AttrSet RuleSet::LhsUnion() const {
  AttrSet s;
  for (const auto& r : rules_) s = s.Union(r.lhs_set());
  return s;
}

AttrSet RuleSet::RhsUnion() const {
  AttrSet s;
  for (const auto& r : rules_) s.Add(r.rhs());
  return s;
}

AttrSet RuleSet::PatternUnion() const {
  AttrSet s;
  for (const auto& r : rules_) s = s.Union(r.pattern_set());
  return s;
}

AttrSet RuleSet::MentionedAttrs() const {
  AttrSet s = LhsUnion().Union(RhsUnion()).Union(PatternUnion());
  return s;
}

std::vector<Value> RuleSet::PatternConstants() const {
  std::set<Value> seen;
  for (const auto& r : rules_) {
    for (const auto& [attr, pv] : r.pattern().cells()) {
      (void)attr;
      if (!pv.is_wildcard()) seen.insert(pv.value());
    }
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

RuleSet RuleSet::Normalized() const {
  RuleSet out(r_, rm_);
  for (const auto& r : rules_) {
    Status st = out.Add(r.Normalized());
    (void)st;  // cannot fail: schemas are unchanged
  }
  return out;
}

bool RuleSet::AllDirect() const {
  for (const auto& r : rules_) {
    if (!r.IsDirect()) return false;
  }
  return true;
}

std::string RuleSet::ToString() const {
  std::string out;
  for (const auto& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace certfix
