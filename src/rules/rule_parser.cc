#include "rules/rule_parser.h"

#include <sstream>

#include "util/string_util.h"

namespace certfix {

namespace {

// Splits on `sep` at depth zero (outside quotes), trimming each piece.
Result<std::vector<std::string>> SplitTop(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (char c : s) {
    if (c == '"') {
      in_quotes = !in_quotes;
      cur += c;
    } else if (c == sep && !in_quotes) {
      out.emplace_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote");
  out.emplace_back(Trim(cur));
  return out;
}

std::string Unquote(std::string_view s) {
  s = Trim(s);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

Status ParsePatternClause(const std::string& clause, const SchemaPtr& r,
                          PatternTuple* tp) {
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> cells,
                           SplitTop(clause, ','));
  for (const std::string& cell : cells) {
    if (cell.empty()) continue;
    size_t neq = cell.find("!=");
    bool negated = neq != std::string::npos;
    size_t eq = negated ? neq : cell.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("pattern cell missing '=': " + cell);
    }
    std::string attr_name(Trim(cell.substr(0, eq)));
    std::string value_text =
        Unquote(cell.substr(eq + (negated ? 2 : 1)));
    CERTFIX_ASSIGN_OR_RETURN(AttrId attr, r->IndexOf(attr_name));
    if (value_text == "_" && !negated) {
      tp->SetWildcard(attr);
      continue;
    }
    Value v = Value::Parse(value_text, r->attr_type(attr));
    if (negated) {
      tp->SetNeg(attr, std::move(v));
    } else {
      tp->SetConst(attr, std::move(v));
    }
  }
  return Status::OK();
}

}  // namespace

namespace internal {

// Shared line parse producing possibly-multiple (B, Bm) targets; the
// public wrappers enforce singleton vs group semantics.
Result<std::vector<EditingRule>> ParseRuleLine(const std::string& line,
                                               SchemaPtr r, SchemaPtr rm,
                                               bool* was_group);

}  // namespace internal

Result<EditingRule> ParseRule(const std::string& line, SchemaPtr r,
                              SchemaPtr rm) {
  bool was_group = false;
  CERTFIX_ASSIGN_OR_RETURN(
      std::vector<EditingRule> rules,
      internal::ParseRuleLine(line, std::move(r), std::move(rm),
                              &was_group));
  if (was_group) {
    return Status::ParseError(
        "group rule (starred name) passed to ParseRule: " + line);
  }
  return std::move(rules.front());
}

Result<std::vector<EditingRule>> ParseRuleGroup(const std::string& line,
                                                SchemaPtr r, SchemaPtr rm) {
  bool was_group = false;
  return internal::ParseRuleLine(line, std::move(r), std::move(rm),
                                 &was_group);
}

Result<std::vector<EditingRule>> internal::ParseRuleLine(
    const std::string& line, SchemaPtr r, SchemaPtr rm, bool* was_group) {
  std::string_view s = Trim(line);
  if (!StartsWith(s, "rule")) {
    return Status::ParseError("rule line must start with 'rule': " + line);
  }
  s.remove_prefix(4);
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::ParseError("missing ':' after rule name: " + line);
  }
  std::string name(Trim(s.substr(0, colon)));
  if (name.empty()) return Status::ParseError("empty rule name: " + line);
  *was_group = !name.empty() && name.back() == '*';
  if (*was_group) name.pop_back();
  if (name.empty()) return Status::ParseError("empty group name: " + line);
  s = Trim(s.substr(colon + 1));

  // Split "(<X|Xm>) -> (<B|Bm>) [when ...]".
  size_t arrow = s.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("missing '->': " + line);
  }
  std::string_view left = Trim(s.substr(0, arrow));
  std::string_view rest = Trim(s.substr(arrow + 2));

  auto strip_parens = [&](std::string_view v) -> Result<std::string> {
    v = Trim(v);
    if (v.size() < 2 || v.front() != '(' || v.back() != ')') {
      return Status::ParseError("expected parenthesized list in: " + line);
    }
    return std::string(v.substr(1, v.size() - 2));
  };

  CERTFIX_ASSIGN_OR_RETURN(std::string left_inner, strip_parens(left));

  // The right side is "(B | Bm)" possibly followed by "when <pattern>".
  size_t close = rest.find(')');
  if (rest.empty() || rest.front() != '(' || close == std::string_view::npos) {
    return Status::ParseError("expected '(B | Bm)' after '->': " + line);
  }
  std::string right_inner(rest.substr(1, close - 1));
  std::string_view tail = Trim(rest.substr(close + 1));

  PatternTuple tp(r);
  if (!tail.empty()) {
    if (!StartsWith(tail, "when")) {
      return Status::ParseError("unexpected trailing text: " +
                                std::string(tail));
    }
    CERTFIX_RETURN_NOT_OK(
        ParsePatternClause(std::string(Trim(tail.substr(4))), r, &tp));
  }

  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> left_parts,
                           SplitTop(left_inner, '|'));
  if (left_parts.size() != 2) {
    return Status::ParseError("left side needs 'X | Xm': " + line);
  }
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> right_parts,
                           SplitTop(right_inner, '|'));
  if (right_parts.size() != 2) {
    return Status::ParseError("right side needs 'B | Bm': " + line);
  }

  auto names = [](const std::string& list) -> Result<std::vector<std::string>> {
    CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                             SplitTop(list, ','));
    std::vector<std::string> out;
    for (auto& p : parts) {
      if (!p.empty()) out.push_back(p);
    }
    return out;
  };

  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> x, names(left_parts[0]));
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> xm, names(left_parts[1]));
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> bs,
                           names(right_parts[0]));
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> bms,
                           names(right_parts[1]));
  if (bs.empty() || bs.size() != bms.size()) {
    return Status::ParseError("rhs lists 'B | Bm' must be non-empty and of "
                              "equal length: " + line);
  }
  if (!*was_group && bs.size() != 1) {
    return Status::ParseError(
        "multiple rhs attributes require a group (starred) rule name: " +
        line);
  }

  std::vector<EditingRule> out;
  for (size_t i = 0; i < bs.size(); ++i) {
    std::string rule_name =
        *was_group ? name + "_" + std::to_string(i + 1) : name;
    CERTFIX_ASSIGN_OR_RETURN(
        EditingRule rule,
        EditingRule::MakeByName(std::move(rule_name), r, rm, x, xm, bs[i],
                                bms[i], tp));
    out.push_back(std::move(rule));
  }
  return out;
}

Result<RuleSet> ParseRules(const std::string& text, SchemaPtr r,
                           SchemaPtr rm) {
  RuleSet out(r, rm);
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view s = Trim(line);
    if (s.empty() || s.front() == '#') continue;
    Result<std::vector<EditingRule>> rules =
        ParseRuleGroup(std::string(s), r, rm);
    if (!rules.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                rules.status().message());
    }
    std::vector<EditingRule> list = std::move(rules).ValueOrDie();
    for (EditingRule& rule : list) {
      CERTFIX_RETURN_NOT_OK(out.Add(std::move(rule)));
    }
  }
  return out;
}

std::string RuleToDsl(const EditingRule& rule) {
  std::string out = "rule " + rule.name() + ": (";
  for (size_t i = 0; i < rule.lhs().size(); ++i) {
    out += (i ? ", " : "") + rule.r_schema()->attr_name(rule.lhs()[i]);
  }
  out += " | ";
  for (size_t i = 0; i < rule.lhsm().size(); ++i) {
    out += (i ? ", " : "") + rule.rm_schema()->attr_name(rule.lhsm()[i]);
  }
  out += ") -> (" + rule.r_schema()->attr_name(rule.rhs()) + " | " +
         rule.rm_schema()->attr_name(rule.rhsm()) + ")";
  if (!rule.pattern().empty()) {
    out += " when ";
    bool first = true;
    for (const auto& [attr, pv] : rule.pattern().cells()) {
      if (!first) out += ", ";
      first = false;
      out += rule.r_schema()->attr_name(attr);
      if (pv.is_wildcard()) {
        out += "=_";
      } else {
        out += pv.is_neg_const() ? "!=" : "=";
        out += "\"" + pv.value().ToString() + "\"";
      }
    }
  }
  return out;
}

std::string RulesToDsl(const RuleSet& rules) {
  std::string out;
  for (const EditingRule& rule : rules) {
    out += RuleToDsl(rule);
    out += "\n";
  }
  return out;
}

}  // namespace certfix
