/// \file rule_set.h
/// \brief A set Sigma of editing rules over a fixed (R, Rm) pair.

#ifndef CERTFIX_RULES_RULE_SET_H_
#define CERTFIX_RULES_RULE_SET_H_

#include <string>
#include <vector>

#include "rules/editing_rule.h"

namespace certfix {

/// \brief Sigma: the rules plus aggregate attribute-set views
/// (lhs(Sigma), rhs(Sigma), ... per Sect. 2 Notations (2)).
class RuleSet {
 public:
  RuleSet() = default;
  RuleSet(SchemaPtr r, SchemaPtr rm) : r_(std::move(r)), rm_(std::move(rm)) {}

  Status Add(EditingRule rule);

  const SchemaPtr& r_schema() const { return r_; }
  const SchemaPtr& rm_schema() const { return rm_; }
  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const EditingRule& at(size_t i) const { return rules_[i]; }
  const std::vector<EditingRule>& rules() const { return rules_; }

  /// Union of lhs(phi) over phi in Sigma.
  AttrSet LhsUnion() const;
  /// Union of rhs(phi).
  AttrSet RhsUnion() const;
  /// Union of lhsp(phi).
  AttrSet PatternUnion() const;
  /// All R attributes mentioned anywhere in Sigma (Z_Sigma of Prop 15).
  AttrSet MentionedAttrs() const;

  /// Constants appearing in rule patterns.
  std::vector<Value> PatternConstants() const;

  /// Normalizes every rule (drops wildcard pattern cells).
  RuleSet Normalized() const;

  /// True if every rule is direct (Xp subset of X).
  bool AllDirect() const;

  std::string ToString() const;

  std::vector<EditingRule>::const_iterator begin() const {
    return rules_.begin();
  }
  std::vector<EditingRule>::const_iterator end() const {
    return rules_.end();
  }

 private:
  SchemaPtr r_;
  SchemaPtr rm_;
  std::vector<EditingRule> rules_;
};

}  // namespace certfix

#endif  // CERTFIX_RULES_RULE_SET_H_
