#include "rules/editing_rule.h"

#include <set>

namespace certfix {

Result<EditingRule> EditingRule::Make(std::string name, SchemaPtr r,
                                      SchemaPtr rm, std::vector<AttrId> x,
                                      std::vector<AttrId> xm, AttrId b,
                                      AttrId bm, PatternTuple tp) {
  if (x.size() != xm.size()) {
    return Status::InvalidArgument("rule " + name + ": |X| != |Xm|");
  }
  std::set<AttrId> seen;
  for (AttrId a : x) {
    if (a >= r->num_attrs()) {
      return Status::OutOfRange("rule " + name + ": X attr out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("rule " + name +
                                     ": duplicate attribute in X");
    }
  }
  for (AttrId a : xm) {
    if (a >= rm->num_attrs()) {
      return Status::OutOfRange("rule " + name + ": Xm attr out of range");
    }
  }
  if (b >= r->num_attrs() || bm >= rm->num_attrs()) {
    return Status::OutOfRange("rule " + name + ": B or Bm out of range");
  }
  if (seen.count(b) > 0) {
    // Definition requires B in R \ X.
    return Status::InvalidArgument("rule " + name + ": B must not be in X");
  }
  for (const auto& [attr, pv] : tp.cells()) {
    (void)pv;
    if (attr >= r->num_attrs()) {
      return Status::OutOfRange("rule " + name + ": Xp attr out of range");
    }
  }
  EditingRule rule;
  rule.name_ = std::move(name);
  rule.r_ = std::move(r);
  rule.rm_ = std::move(rm);
  rule.x_ = std::move(x);
  rule.xm_ = std::move(xm);
  rule.b_ = b;
  rule.bm_ = bm;
  rule.tp_ = std::move(tp);
  rule.lhs_set_ = AttrSet::FromVector(rule.x_);
  rule.premise_set_ = rule.lhs_set_.Union(rule.tp_.attrs());
  return rule;
}

Result<EditingRule> EditingRule::MakeByName(
    std::string name, SchemaPtr r, SchemaPtr rm,
    const std::vector<std::string>& x, const std::vector<std::string>& xm,
    const std::string& b, const std::string& bm, PatternTuple tp) {
  CERTFIX_ASSIGN_OR_RETURN(std::vector<AttrId> xi, r->Resolve(x));
  CERTFIX_ASSIGN_OR_RETURN(std::vector<AttrId> xmi, rm->Resolve(xm));
  CERTFIX_ASSIGN_OR_RETURN(AttrId bi, r->IndexOf(b));
  CERTFIX_ASSIGN_OR_RETURN(AttrId bmi, rm->IndexOf(bm));
  return Make(std::move(name), std::move(r), std::move(rm), std::move(xi),
              std::move(xmi), bi, bmi, std::move(tp));
}

Result<AttrId> EditingRule::MasterAttrFor(AttrId r_attr) const {
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i] == r_attr) return xm_[i];
  }
  return Status::NotFound("attribute not in lhs of rule " + name_);
}

bool EditingRule::AppliesTo(const Tuple& t, const Tuple& tm) const {
  if (!tp_.Matches(t)) return false;
  for (size_t i = 0; i < x_.size(); ++i) {
    if (t.at(x_[i]) != tm.at(xm_[i])) return false;
  }
  return true;
}

Tuple EditingRule::TryApply(const Tuple& t, const Tuple& tm) const {
  if (!AppliesTo(t, tm)) return t;
  Tuple out = t;
  Apply(&out, tm);
  return out;
}

EditingRule EditingRule::Normalized() const {
  EditingRule out = *this;
  out.tp_ = tp_.Normalized();
  out.premise_set_ = out.lhs_set_.Union(out.tp_.attrs());
  return out;
}

std::string EditingRule::ToString() const {
  std::string out = name_ + ": (";
  for (size_t i = 0; i < x_.size(); ++i) {
    if (i > 0) out += ",";
    out += r_->attr_name(x_[i]);
  }
  out += " | ";
  for (size_t i = 0; i < xm_.size(); ++i) {
    if (i > 0) out += ",";
    out += rm_->attr_name(xm_[i]);
  }
  out += ") -> (" + r_->attr_name(b_) + " | " + rm_->attr_name(bm_) + ")";
  if (!tp_.empty()) out += " when " + tp_.ToString();
  return out;
}

}  // namespace certfix
