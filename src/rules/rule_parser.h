/// \file rule_parser.h
/// \brief Text format for editing rules.
///
/// One rule per line (blank lines and '#' comments ignored):
///
///     rule phi3: (AC, phn | AC, Hphn) -> (str | str) when type=1, AC!=0800
///
/// Left of `->`: the lists X | Xm (positional correspondence). Right: B |
/// Bm. The optional `when` clause lists pattern cells `attr=value`,
/// `attr!=value`, or `attr=_` (wildcard). Values are parsed per the R
/// schema's attribute type; quote with double quotes to embed commas.
///
/// Rule groups: a name ending in `*` expands a multi-attribute rhs into
/// one rule per (B, Bm) pair — the paper's "eR1 is expressed as three
/// editing rules of the form phi1, for B1 ranging over {AC, str, city}":
///
///     rule eR1*: (zip | zip) -> (AC, str, city | AC, str, city)
///
/// expands to eR1_1, eR1_2, eR1_3. Both sides of the rhs must list the
/// same number of attributes.

#ifndef CERTFIX_RULES_RULE_PARSER_H_
#define CERTFIX_RULES_RULE_PARSER_H_

#include <string>

#include "rules/rule_set.h"
#include "util/result.h"

namespace certfix {

/// Parses a single `rule ...` line into an EditingRule. Group lines
/// (starred names) are rejected here; use ParseRuleGroup or ParseRules.
Result<EditingRule> ParseRule(const std::string& line, SchemaPtr r,
                              SchemaPtr rm);

/// Parses one line that may be a plain rule or a starred group, returning
/// every rule it denotes.
Result<std::vector<EditingRule>> ParseRuleGroup(const std::string& line,
                                                SchemaPtr r, SchemaPtr rm);

/// Parses a whole rule file (multiple lines) into a RuleSet.
Result<RuleSet> ParseRules(const std::string& text, SchemaPtr r,
                           SchemaPtr rm);

/// Renders one rule back into the DSL above (inverse of ParseRule; group
/// lines are not reconstructed — each expanded rule prints on its own).
std::string RuleToDsl(const EditingRule& rule);

/// Whole-file rendering: one rule per line, trailing newline. Feeding the
/// result back through ParseRules reproduces the set — the durable
/// session (incremental/durable_session.h) persists rulesets this way.
std::string RulesToDsl(const RuleSet& rules);

}  // namespace certfix

#endif  // CERTFIX_RULES_RULE_PARSER_H_
