#include "workload/hosp.h"

#include <cassert>
#include <set>

#include "rules/rule_parser.h"

namespace certfix {

SchemaPtr HospWorkload::MakeSchema() {
  return Schema::Make(
      "HOSP", std::vector<std::string>{
                  "zip", "ST", "phn", "mCode", "mName", "sAvg", "hName",
                  "hType", "hOwner", "provider", "city", "emergency",
                  "condition", "Score", "sample", "id", "addr1", "addr2",
                  "addr3"});
}

RuleSet HospWorkload::MakeRules(const SchemaPtr& schema) {
  // The five representative rules of Sect. 6 (phi1..phi5; the "(nil)"
  // patterns in the paper's rendering are zip != nil, phn != nil) plus 16
  // analogous rules filling out the 21-rule set.
  const char* text = R"(
    # Representative rules printed in the paper.
    rule phi1:  (zip | zip) -> (ST | ST) when zip!=""
    rule phi2:  (phn | phn) -> (zip | zip) when phn!=""
    rule phi3:  (mCode, ST | mCode, ST) -> (sAvg | sAvg)
    rule phi4:  (id, mCode | id, mCode) -> (Score | Score)
    rule phi5:  (id | id) -> (hName | hName)
    # Hospital facts from the id.
    rule phi6:  (id | id) -> (phn | phn)
    rule phi7:  (id | id) -> (city | city)
    rule phi8:  (id | id) -> (hType | hType)
    rule phi9:  (id | id) -> (hOwner | hOwner)
    rule phi10: (id | id) -> (provider | provider)
    rule phi11: (id | id) -> (emergency | emergency)
    rule phi12: (id | id) -> (addr1 | addr1)
    rule phi13: (id | id) -> (addr2 | addr2)
    rule phi14: (id | id) -> (addr3 | addr3)
    # Measure facts from the measure code.
    rule phi15: (mCode | mCode) -> (mName | mName)
    rule phi16: (mCode | mCode) -> (condition | condition)
    rule phi17: (id, mCode | id, mCode) -> (sample | sample)
    # Geographic redundancy.
    rule phi18: (zip | zip) -> (city | city) when zip!=""
    rule phi19: (phn | phn) -> (ST | ST) when phn!=""
    # Recovering the id from alternate keys.
    rule phi20: (hName, city | hName, city) -> (id | id)
    rule phi21: (provider | provider) -> (id | id)
  )";
  Result<RuleSet> rules = ParseRules(text, schema, schema);
  assert(rules.ok());
  return std::move(rules).ValueOrDie();
}

namespace {

// Deterministic entity pools keeping the master functionally consistent.
struct HospEntities {
  struct Hospital {
    std::string id, zip, st, phn, name, type, owner, provider, city;
    std::string emergency, addr1, addr2, addr3;
  };
  struct Measure {
    std::string code, name, condition;
  };
  std::vector<Hospital> hospitals;
  std::vector<Measure> measures;
};

HospEntities MakeEntities(size_t num_hospitals, size_t num_measures,
                          Rng* rng, size_t offset) {
  static const char* kStates[] = {"AL", "AK", "AZ", "CA", "CO", "FL",
                                  "GA", "IL", "NY", "TX", "WA", "PA"};
  static const char* kTypes[] = {"Acute Care", "Critical Access",
                                 "Childrens"};
  static const char* kOwners[] = {"Government", "Proprietary", "Voluntary"};
  static const char* kConditions[] = {"Heart Attack", "Heart Failure",
                                      "Pneumonia", "Surgical Infection"};
  HospEntities e;
  e.hospitals.reserve(num_hospitals);
  for (size_t raw = 0; raw < num_hospitals; ++raw) {
    // Entity facts (id, provider, phn, name, addresses) are disjoint
    // across offset pools; geographic facts (zip -> ST/city) are derived
    // from the zip VALUE, so any two hospitals with the same zip — in any
    // pool — agree on state and city. This mirrors the real data: a
    // never-seen hospital still lives in a known zip code.
    size_t i = raw + offset;
    size_t zip_num = 10000 + (i * 37) % 997;  // small shared zip space
    HospEntities::Hospital h;
    h.id = "H" + std::to_string(100000 + i);
    h.zip = std::to_string(zip_num);
    h.st = kStates[zip_num % (sizeof(kStates) / sizeof(kStates[0]))];
    h.city = "City" + std::to_string((zip_num * 13) % 997);
    h.phn = "555" + std::to_string(1000000 + i);
    h.name = "Hospital " + rng->AlphaString(3) + std::to_string(i);
    h.type = kTypes[i % 3];
    h.owner = kOwners[(i / 3) % 3];
    h.provider = "P" + std::to_string(500000 + i);
    h.emergency = (i % 5 == 0) ? "No" : "Yes";
    h.addr1 = std::to_string(100 + i % 899) + " " + rng->AlphaString(5) +
              " St";
    h.addr2 = (i % 4 == 0) ? "Suite " + std::to_string(1 + i % 40) : "-";
    h.addr3 = "-";
    e.hospitals.push_back(std::move(h));
  }
  // Measures form a SHARED vocabulary (no offset): measure codes and
  // their names/conditions are the same universe for every pool.
  e.measures.reserve(num_measures);
  for (size_t i = 0; i < num_measures; ++i) {
    HospEntities::Measure m;
    m.code = "AMI-" + std::to_string(i + 1);
    m.name = "Measure M" + std::to_string(i);
    m.condition = kConditions[i % 4];
    e.measures.push_back(std::move(m));
  }
  return e;
}

}  // namespace

Relation HospWorkload::MakeMaster(const SchemaPtr& schema, size_t size,
                                  Rng* rng, size_t entity_offset) {
  // Row count = hospitals x measures (approximately `size`): pick measure
  // count ~ 16 and derive hospitals.
  size_t num_measures = std::max<size_t>(4, std::min<size_t>(16, size / 16));
  size_t num_hospitals = std::max<size_t>(1, size / num_measures + 1);
  HospEntities e = MakeEntities(num_hospitals, num_measures, rng, entity_offset);

  // (mCode, ST) -> sAvg must be functional ACROSS pools too: derive it
  // from the (code, state) strings.
  auto savg = [&e](size_t measure_idx, const std::string& st) {
    size_t h = std::hash<std::string>()(st) ^
               (std::hash<std::string>()(e.measures[measure_idx].code) *
                2654435761u);
    return std::to_string(40 + h % 60) + "%";
  };
  // (id, mCode) -> Score / sample functional by construction (one row per
  // pair).
  Relation master(schema);
  master.Reserve(size);
  size_t made = 0;
  for (size_t hi = 0; hi < e.hospitals.size() && made < size; ++hi) {
    const auto& h = e.hospitals[hi];
    for (size_t mi = 0; mi < e.measures.size() && made < size; ++mi) {
      const auto& m = e.measures[mi];
      std::string score =
          std::to_string(30 + (hi * 7 + mi * 11) % 70) + "%";
      std::string sample = std::to_string(50 + (hi * 3 + mi * 5) % 450) +
                           " patients";
      Status st = master.AppendStrings(
          {h.zip, h.st, h.phn, m.code, m.name, savg(mi, h.st), h.name,
           h.type, h.owner, h.provider, h.city, h.emergency, m.condition,
           score, sample, h.id, h.addr1, h.addr2, h.addr3});
      assert(st.ok());
      (void)st;
      ++made;
    }
  }
  return master;
}

CfdSet HospWorkload::MakeCfdsFromMaster(const SchemaPtr& schema,
                                        const Relation& master,
                                        size_t max_rows) {
  // Embedded FDs mirrored as constant-CFD tableaux from master rows:
  // zip -> ST, zip -> city, id -> hName, mCode -> condition,
  // (id, mCode) -> Score.
  struct FdSpec {
    std::vector<std::string> x;
    std::string b;
  };
  static const FdSpec kSpecs[] = {
      {{"zip"}, "ST"},          {{"zip"}, "city"},
      {{"id"}, "hName"},        {{"id"}, "phn"},
      {{"mCode"}, "condition"}, {{"id", "mCode"}, "Score"},
  };
  CfdSet cfds(schema);
  for (const FdSpec& spec : kSpecs) {
    Result<std::vector<AttrId>> x = schema->Resolve(spec.x);
    Result<AttrId> b = schema->IndexOf(spec.b);
    assert(x.ok() && b.ok());
    std::set<std::string> seen;
    size_t rows = 0;
    for (size_t m = 0; m < master.size(); ++m) {
      if (rows >= max_rows) break;
      std::string key = ProjectKey(master, m, *x);
      if (!seen.insert(key).second) continue;
      PatternTuple tp(schema);
      for (AttrId a : *x) tp.SetConst(a, master.Cell(m, a));
      tp.SetConst(*b, master.Cell(m, *b));
      Result<Cfd> cfd = Cfd::Make(
          "hosp_cfd_" + spec.b + "_" + std::to_string(rows), schema, *x, *b,
          std::move(tp));
      assert(cfd.ok());
      Status st = cfds.Add(std::move(cfd).ValueOrDie());
      assert(st.ok());
      (void)st;
      ++rows;
    }
  }
  return cfds;
}

}  // namespace certfix
