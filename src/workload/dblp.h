/// \file dblp.h
/// \brief Synthetic DBLP workload (Sect. 6): the 12-attribute joined
/// schema, a consistent master generator, and the 16 editing rules
/// phi1-phi7 exactly as the paper lists them (including the
/// cross-attribute author/homepage maps of phi2/phi4 that are not even
/// syntactically CFDs).

#ifndef CERTFIX_WORKLOAD_DBLP_H_
#define CERTFIX_WORKLOAD_DBLP_H_

#include "cfd/cfd.h"
#include "relational/relation.h"
#include "rules/rule_set.h"
#include "util/random.h"

namespace certfix {

/// \brief DBLP workload factory.
class DblpWorkload {
 public:
  /// Schema: ptitle, a1, a2, hp1, hp2, btitle, publisher, isbn, crossref,
  /// year, type, pages.
  static SchemaPtr MakeSchema();

  /// The 16 rules: phi1-phi4 (author homepages, incl. a2->a1 maps);
  /// phi5 with A in {isbn, publisher, crossref}; phi6 with B in {btitle,
  /// year, isbn, publisher}; phi7 with C in {isbn, publisher, year,
  /// btitle, crossref}.
  static RuleSet MakeRules(const SchemaPtr& schema);

  /// Master data: `size` inproceedings rows drawn from consistent author,
  /// venue, and paper pools (authors reused across both positions so the
  /// a2->a1 rules exercise real matches). `entity_offset` gives disjoint
  /// author/venue key spaces (see HospWorkload::MakeMaster).
  static Relation MakeMaster(const SchemaPtr& schema, size_t size, Rng* rng,
                             size_t entity_offset = 0);

  /// Constant CFDs from master for the IncRep baseline.
  static CfdSet MakeCfdsFromMaster(const SchemaPtr& schema,
                                   const Relation& master, size_t max_rows);
};

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_DBLP_H_
