/// \file experiment.h
/// \brief The Sect. 6 experiment driver: runs the interactive framework
/// over a generated tuple stream and reports per-round quality metrics,
/// plus the IncRep baseline runner for the Exp-1(7) comparison.

#ifndef CERTFIX_WORKLOAD_EXPERIMENT_H_
#define CERTFIX_WORKLOAD_EXPERIMENT_H_

#include "core/batch_repair.h"
#include "core/certain_fix.h"
#include "repair/increp.h"
#include "workload/dirty_gen.h"
#include "workload/metrics.h"

namespace certfix {

/// \brief Driver configuration.
struct ExperimentConfig {
  size_t num_tuples = 1000;
  size_t report_rounds = 5;   ///< per-round metrics reported for k = 1..N
  DirtyGenOptions gen;
};

/// \brief Cumulative metrics after k rounds of interaction.
struct RoundMetrics {
  double recall_t = 0.0;
  double recall_a = 0.0;
  double precision_a = 1.0;
  double f_measure = 0.0;
  double avg_seconds = 0.0;   ///< mean engine time of round k (fixing +
                              ///< suggestion generation)
  size_t tuples_active = 0;   ///< tuples that still needed round k
};

/// \brief Full experiment outcome.
struct ExperimentResult {
  std::vector<RoundMetrics> per_round;  ///< index k-1 = after k rounds
  double avg_rounds = 0.0;              ///< mean interactions per tuple
  double avg_round_seconds = 0.0;       ///< mean engine time per round
  size_t completed_tuples = 0;          ///< tuples reaching a certain fix
  size_t conflict_tuples = 0;
  SuggestionCache::Stats cache;
};

/// Runs the interactive framework over `config.num_tuples` generated
/// inputs. `non_master` supplies the non-duplicate pool (disjoint keys).
ExperimentResult RunInteractiveExperiment(CertainFixEngine* engine,
                                          const Relation& master,
                                          const Relation& non_master,
                                          const ExperimentConfig& config);

/// \brief IncRep baseline outcome on the same generated stream.
struct BaselineResult {
  double recall_a = 0.0;
  double precision_a = 0.0;
  double f_measure = 0.0;
  size_t cells_changed = 0;
  double seconds = 0.0;
};

/// Repairs the dirty batch with IncRep and scores it against ground truth.
BaselineResult RunIncRepBaseline(const CfdSet& cfds,
                                 const std::vector<DirtyPair>& pairs,
                                 const IncRepOptions& options = {});

/// \brief Outcome of one no-interaction batch-repair run (the Sect. 7
/// future-work engine), scored against the generator's ground truth.
struct BatchExperimentResult {
  BatchRepairResult repair;
  double recall_a = 0.0;
  double precision_a = 0.0;
  double f_measure = 0.0;
  double seconds = 0.0;            ///< BatchRepair::Repair wall time only
  double tuples_per_second = 0.0;
  size_t num_tuples = 0;
};

/// Generates `config.num_tuples` dirty inputs (protecting `trusted` so
/// the trusted-Z premise of batch repair holds), repairs them with
/// BatchRepair under `options`, and scores attribute-level quality.
/// Generation is excluded from the timed section, so `tuples_per_second`
/// measures the repair engine alone; results are deterministic for a
/// fixed `config.gen.seed` and independent of `options.num_threads`.
BatchExperimentResult RunBatchRepairExperiment(const Saturator& sat,
                                               const Relation& master,
                                               const Relation& non_master,
                                               AttrSet trusted,
                                               const ExperimentConfig& config,
                                               const RepairOptions& options);

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_EXPERIMENT_H_
