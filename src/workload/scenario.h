/// \file scenario.h
/// \brief Adversarial scenario generator: composes a key-popularity
/// distribution (arrival.h), an arrival-shape model (arrival.h), and a
/// correlated error model (error_model.h) over one of the synthetic
/// workloads (hosp.h / dblp.h) into a replayable scenario — a master
/// relation, an initial input relation, and a DeltaLogSource-compatible
/// delta log. The CLI (`certfix workload gen`), the scenario-corpus
/// harness (tests/scenario_corpus_test.cc), and bench_scenarios all
/// replay the *same bytes*, so "engines agree on every workload shape we
/// can name" is a byte-level statement.
///
/// Determinism contract: GenerateScenario is a pure function of the spec
/// (seed included). Generating the same spec twice yields bit-identical
/// master/initial CSV and delta-log bytes — enforced by tests. To keep
/// that portable the generator never calls libm transcendentals (see
/// arrival.h) and renders no floating-point values into scenario bytes.
///
/// Spec format: a flat TOML subset —
///
/// ```toml
/// name = "zipf-burst"          # defaults to the file stem
/// workload = "hosp"            # hosp | dblp
/// seed = 42
/// master_rows = 120
/// initial_rows = 40
/// deltas = 300
/// duplicate_rate = 0.6         # P(input row matches a master row)
///
/// [popularity]
/// kind = "zipf"                # uniform | zipf | hotset
/// alpha = 1.2                  # zipf skew
/// hot_fraction = 0.1           # hotset: window size
/// hot_rate = 0.9               # hotset: P(pick in window)
/// shift_every = 100            # hotset: rotate window every N steps
///
/// [arrival]
/// kind = "bursty"              # steady | bursty
/// insert_weight = 0.4
/// update_weight = 0.4
/// delete_weight = 0.2
/// master_ratio = 0.05          # fraction of steps hitting master data
/// master_insert_weight = 0.4
/// master_update_weight = 0.4
/// master_delete_weight = 0.2
/// burst_min = 4
/// burst_max = 24
///
/// [errors]
/// tuple_error_rate = 0.25
/// burst_continue = 0.6         # error bursts across consecutive tuples
/// cluster_len = 3              # contiguous corrupted-attribute runs
/// cell_rate = 0.25             # used when cluster_len = 0
/// typo_weight = 0.45
/// null_weight = 0.2
/// transpose_weight = 0.2
/// swap_weight = 0.1
/// hostile_weight = 0.05
/// master_noise_rate = 0.0      # P(a master update corrupts the row)
/// ```
///
/// Supported TOML: `key = value` lines, `[section]` headers, `#`
/// comments; values are quoted strings, integers, floats, and booleans.
/// Unknown keys or sections are errors (typos must not silently produce
/// a different scenario).

#ifndef CERTFIX_WORKLOAD_SCENARIO_H_
#define CERTFIX_WORKLOAD_SCENARIO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "rules/rule_set.h"
#include "stream/delta_source.h"
#include "util/result.h"
#include "workload/arrival.h"
#include "workload/error_model.h"

namespace certfix {

/// \brief Everything a scenario is generated from. Byte-determinism is
/// per (spec, seed); the seed lives in the spec.
struct ScenarioSpec {
  std::string name;
  std::string workload = "hosp";  ///< hosp | dblp
  uint64_t seed = 1;
  size_t master_rows = 120;
  size_t initial_rows = 40;
  size_t num_deltas = 300;
  /// P(a generated input row duplicates a master row) — the paper's d%.
  double duplicate_rate = 0.6;
  /// P(a master update corrupts a cell instead of staying consistent).
  double master_noise_rate = 0.0;
  PopularityOptions popularity;
  ArrivalOptions arrival;
  ErrorModelOptions errors;

  Status Validate() const;
};

/// Parses the TOML subset documented above. `default_name` seeds the
/// scenario name when the spec has no `name` key (callers pass the file
/// stem).
Result<ScenarioSpec> ParseScenarioSpec(const std::string& text,
                                       const std::string& default_name = "");
Result<ScenarioSpec> LoadScenarioSpecFile(const std::string& path);

/// \brief A generated scenario: the replayable bytes plus the typed
/// objects the harnesses run the engines with.
struct Scenario {
  ScenarioSpec spec;
  SchemaPtr schema;
  RuleSet rules;
  AttrSet trusted;
  std::vector<std::string> trusted_names;  ///< for CLI flags / echo
  Relation master;    ///< initial master data Dm
  Relation initial;   ///< initial input relation D
  std::vector<Delta> deltas;  ///< the scenario's mutation log
};

/// Generates the scenario. Fails on invalid specs or unknown workloads.
Result<Scenario> GenerateScenario(const ScenarioSpec& spec);

/// Renders `deltas` in the delta-log text format DeltaLogSource reads
/// (stream/delta_source.h), one CSV record per delta, hostile values
/// quoted. The leading comment line carries `name` and `seed` so logs are
/// self-describing; it is part of the pinned bytes.
Status WriteDeltaLog(const std::string& name, uint64_t seed,
                     const std::vector<Delta>& deltas, std::ostream& out);
std::string DeltaLogToString(const Scenario& scenario);

/// Applies `deltas` positionally to string-rendered rows — the oracle
/// semantics documented in delta_source.h (deletes shift later rows up,
/// inserts append). Row fields use the same rendering as WriteCsv (null
/// as ""), so building a Relation from the result and running
/// BatchRepair over it is the from-scratch reference for any engine that
/// consumed the same log. Fails on out-of-range positions.
Status ApplyDeltaLog(const std::vector<Delta>& deltas,
                     std::vector<std::vector<std::string>>* input_rows,
                     std::vector<std::vector<std::string>>* master_rows);

/// String-rendered rows of `rel` (null cells as ""), the inverse of
/// RelationFromRows.
std::vector<std::vector<std::string>> RenderRows(const Relation& rel);

/// Builds a relation by appending each row through the CSV typing path.
Result<Relation> RelationFromRows(
    SchemaPtr schema, const std::vector<std::vector<std::string>>& rows);

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_SCENARIO_H_
