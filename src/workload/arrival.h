/// \file arrival.h
/// \brief Who gets touched and when: key-popularity distributions and
/// arrival-shape models for the adversarial scenario generator
/// (workload/scenario.h).
///
/// Both models are pure functions of (options, caller-supplied Rng state),
/// so a scenario built from one seeded Rng is byte-deterministic. The
/// "zipf" popularity kind is a dyadic power-law approximation — repeated
/// biased halving of the index range — rather than a pow()-based inverse
/// CDF: libm transcendentals are not bit-specified across platforms, and
/// scenario bytes are pinned by golden fixtures. Comparisons against
/// NextDouble() use only IEEE-exact operations.

#ifndef CERTFIX_WORKLOAD_ARRIVAL_H_
#define CERTFIX_WORKLOAD_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/random.h"
#include "util/result.h"

namespace certfix {

// ---------------------------------------------------------------------------
// Key popularity: which row a delta targets.

enum class PopularityKind : uint8_t {
  kUniform,  ///< every live row equally likely
  kZipf,     ///< power-law skew toward low indices (dyadic approximation)
  kHotSet,   ///< a small hot window absorbs most picks; optional rotation
};

Result<PopularityKind> ParsePopularityKind(const std::string& text);
const char* ToString(PopularityKind kind);

/// \brief Popularity knobs. Defaults reproduce the FDB observation that
/// real entry streams are heavily skewed (PAPERS.md): a zipf alpha of 1.2
/// or a 10% hot set taking 90% of traffic.
struct PopularityOptions {
  PopularityKind kind = PopularityKind::kUniform;
  /// Zipf skew exponent (> 0). Larger = more skew. The dyadic scheme
  /// halves the candidate range with probability (1+alpha)/(2+alpha) per
  /// split, so alpha = 0 degenerates to near-uniform.
  double alpha = 1.2;
  /// Hot-set size as a fraction of the live rows (clamped to >= 1 row).
  double hot_fraction = 0.1;
  /// Probability a pick lands inside the hot set.
  double hot_rate = 0.9;
  /// Rotate the hot window by its own size every this many steps; 0 keeps
  /// it static. Models popularity drift ("hot-set shift over time").
  uint64_t shift_every = 0;

  /// Rejects out-of-range knobs (negative rates, alpha <= 0, ...).
  Status Validate() const;
};

/// \brief Picks indices in [0, n) under the configured distribution.
class PopularityModel {
 public:
  explicit PopularityModel(PopularityOptions options)
      : options_(options) {}

  /// One pick over `n` candidates at scenario step `step` (steps drive
  /// hot-set rotation). n must be > 0; all randomness comes from `rng`.
  size_t Pick(size_t n, uint64_t step, Rng* rng) const;

  const PopularityOptions& options() const { return options_; }

 private:
  PopularityOptions options_;
};

// ---------------------------------------------------------------------------
// Arrival shape: which operation the next delta performs.

/// \brief Operation classes a scenario step can emit, mirroring DeltaKind
/// (stream/delta_source.h) one-to-one.
enum class OpClass : uint8_t {
  kInsert,
  kUpdate,
  kDelete,
  kMasterInsert,
  kMasterUpdate,
  kMasterDelete,
};

enum class ArrivalKind : uint8_t {
  kSteady,  ///< i.i.d. categorical draw per step
  kBursty,  ///< runs of one operation class, lengths drawn per burst
};

Result<ArrivalKind> ParseArrivalKind(const std::string& text);
const char* ToString(ArrivalKind kind);

/// \brief Arrival knobs: the input-side operation mix, the master-delta
/// interleave ratio, and the burst geometry.
struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::kSteady;
  /// Input-side mix (normalized internally; must not all be zero).
  double insert_weight = 0.4;
  double update_weight = 0.4;
  double delete_weight = 0.2;
  /// Fraction of steps that mutate master data instead of the input
  /// relation — the Polynesia-style mixed update/query pressure knob.
  double master_ratio = 0.0;
  /// Master-side mix (normalized; used only when master_ratio > 0).
  double master_insert_weight = 0.4;
  double master_update_weight = 0.4;
  double master_delete_weight = 0.2;
  /// Bursty runs draw a length uniform in [burst_min, burst_max].
  size_t burst_min = 4;
  size_t burst_max = 24;

  Status Validate() const;
};

/// \brief Stateful generator of the per-step operation sequence. Bursty
/// mode keeps the current run's class and remaining length; steady mode is
/// stateless per step.
class ArrivalModel {
 public:
  explicit ArrivalModel(ArrivalOptions options) : options_(options) {}

  /// The next step's operation class.
  OpClass Next(Rng* rng);

  const ArrivalOptions& options() const { return options_; }

 private:
  OpClass DrawClass(Rng* rng) const;

  ArrivalOptions options_;
  OpClass burst_class_ = OpClass::kInsert;
  size_t burst_remaining_ = 0;
};

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_ARRIVAL_H_
