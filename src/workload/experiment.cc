#include "workload/experiment.h"

#include "util/timer.h"

namespace certfix {

ExperimentResult RunInteractiveExperiment(CertainFixEngine* engine,
                                          const Relation& master,
                                          const Relation& non_master,
                                          const ExperimentConfig& config) {
  DirtyGenerator gen(master, non_master, config.gen);
  std::vector<DirtyPair> pairs = gen.Generate(config.num_tuples);

  ExperimentResult result;
  result.per_round.resize(config.report_rounds);
  std::vector<MetricsAccumulator> acc(config.report_rounds);
  std::vector<double> round_seconds(config.report_rounds, 0.0);
  std::vector<size_t> round_counts(config.report_rounds, 0);
  size_t total_rounds = 0;
  double total_seconds = 0.0;

  for (const DirtyPair& pair : pairs) {
    GroundTruthUser user(pair.clean);
    FixOutcome outcome = engine->Fix(pair.dirty, &user);
    total_rounds += outcome.num_rounds();
    total_seconds += outcome.total_seconds();
    if (outcome.completed) ++result.completed_tuples;
    if (outcome.conflict) ++result.conflict_tuples;

    // Per-round cumulative state: after round k the tuple is
    // rounds[min(k, last)] (state freezes once fixing completes).
    for (size_t k = 0; k < config.report_rounds; ++k) {
      size_t idx = std::min(k, outcome.rounds.empty()
                                   ? static_cast<size_t>(0)
                                   : outcome.rounds.size() - 1);
      if (outcome.rounds.empty()) {
        acc[k].Record(pair.dirty, pair.clean, pair.dirty, AttrSet());
        continue;
      }
      const RoundRecord& rec = outcome.rounds[idx];
      acc[k].Record(pair.dirty, pair.clean, rec.after, rec.auto_changed);
      if (k < outcome.rounds.size()) {
        round_seconds[k] += outcome.rounds[k].seconds;
        ++round_counts[k];
      }
    }
  }

  for (size_t k = 0; k < config.report_rounds; ++k) {
    RoundMetrics& m = result.per_round[k];
    m.recall_t = acc[k].recall_t();
    m.recall_a = acc[k].recall_a();
    m.precision_a = acc[k].precision_a();
    m.f_measure = acc[k].f_measure();
    m.tuples_active = round_counts[k];
    m.avg_seconds =
        round_counts[k] == 0 ? 0.0 : round_seconds[k] / round_counts[k];
  }
  result.avg_rounds = pairs.empty()
                          ? 0.0
                          : static_cast<double>(total_rounds) / pairs.size();
  result.avg_round_seconds =
      total_rounds == 0 ? 0.0 : total_seconds / static_cast<double>(total_rounds);
  result.cache = engine->cache_stats();
  return result;
}

namespace {

// Appends each pair's dirty tuple to `*dirty`, returning the pairs
// actually appended. Append can only fail on a schema mismatch (a
// workload bug); dropping the pair keeps row indexes aligned with the
// relation so scoring never reads past the repaired rows.
std::vector<const DirtyPair*> BuildDirtyRelation(
    const std::vector<DirtyPair>& pairs, Relation* dirty) {
  std::vector<const DirtyPair*> appended;
  appended.reserve(pairs.size());
  dirty->Reserve(pairs.size());
  for (const DirtyPair& pair : pairs) {
    if (dirty->Append(pair.dirty).ok()) appended.push_back(&pair);
  }
  return appended;
}

// Attribute-level quality of `repaired` (row i = pairs[i]) against each
// pair's ground truth.
MetricsAccumulator ScoreRepairs(const std::vector<const DirtyPair*>& pairs,
                                const Relation& repaired) {
  MetricsAccumulator acc;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Tuple& out = repaired.at(i);
    AttrSet changed;
    for (AttrId a : pairs[i]->dirty.DiffAttrs(out)) changed.Add(a);
    acc.Record(pairs[i]->dirty, pairs[i]->clean, out, changed);
  }
  return acc;
}

}  // namespace

BatchExperimentResult RunBatchRepairExperiment(
    const Saturator& sat, const Relation& master, const Relation& non_master,
    AttrSet trusted, const ExperimentConfig& config,
    const RepairOptions& options) {
  ExperimentConfig gen_config = config;
  gen_config.gen.protected_attrs = trusted;
  DirtyGenerator gen(master, non_master, gen_config.gen);
  std::vector<DirtyPair> pairs = gen.Generate(gen_config.num_tuples);

  BatchExperimentResult result;
  Relation dirty(master.schema());
  std::vector<const DirtyPair*> appended = BuildDirtyRelation(pairs, &dirty);
  result.num_tuples = appended.size();

  BatchRepair engine(sat, options);
  Timer timer;
  result.repair = engine.Repair(dirty, trusted);
  result.seconds = timer.Seconds();
  result.tuples_per_second =
      result.seconds > 0
          ? static_cast<double>(appended.size()) / result.seconds
          : 0.0;

  MetricsAccumulator acc = ScoreRepairs(appended, result.repair.repaired);
  result.recall_a = acc.recall_a();
  result.precision_a = acc.precision_a();
  result.f_measure = acc.f_measure();
  return result;
}

BaselineResult RunIncRepBaseline(const CfdSet& cfds,
                                 const std::vector<DirtyPair>& pairs,
                                 const IncRepOptions& options) {
  BaselineResult result;
  if (pairs.empty()) return result;
  Relation dirty(pairs.front().dirty.schema());
  std::vector<const DirtyPair*> appended = BuildDirtyRelation(pairs, &dirty);
  Timer timer;
  IncRep increp(cfds, options);
  RepairResult repair = increp.Repair(dirty);
  result.seconds = timer.Seconds();
  result.cells_changed = repair.cells_changed;

  MetricsAccumulator acc = ScoreRepairs(appended, repair.repaired);
  result.recall_a = acc.recall_a();
  result.precision_a = acc.precision_a();
  result.f_measure = acc.f_measure();
  return result;
}

}  // namespace certfix
