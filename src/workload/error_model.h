/// \file error_model.h
/// \brief Correlated error injection for the scenario generator: typo,
/// null, character-transposition, swapped-field, and hostile-CSV-byte
/// corruption, arriving in bursts (consecutive dirty tuples) and clusters
/// (contiguous runs of corrupted attributes within one tuple).
///
/// This extends the independent per-attribute noise of DirtyGenerator
/// (workload/dirty_gen.h, the paper's Sect. 6 generator) with the error
/// shapes real entry streams show: one distracted operator corrupts
/// several adjacent form fields of several consecutive entries, not one
/// random cell per thousand. The typo kind delegates to
/// DirtyGenerator::Corrupt when a generator is supplied, so the paper's
/// corruption alphabet is reused rather than re-implemented; the hostile
/// kind injects the CSV reader's special bytes (quote, comma, CR, LF —
/// the csv_fuzz_test alphabet) so scenario logs exercise quoting end to
/// end.

#ifndef CERTFIX_WORKLOAD_ERROR_MODEL_H_
#define CERTFIX_WORKLOAD_ERROR_MODEL_H_

#include <cstdint>
#include <string>

#include "relational/tuple.h"
#include "util/random.h"
#include "util/result.h"
#include "workload/dirty_gen.h"

namespace certfix {

/// \brief One corruption primitive.
enum class ErrorKind : uint8_t {
  kTypo,       ///< substitute/insert/delete one character (dirty_gen)
  kNull,       ///< drop the value (t2[str, zip] in Fig. 1a)
  kTranspose,  ///< swap two adjacent characters
  kSwapField,  ///< swap this cell with the next corruptible attribute
  kHostile,    ///< splice in CSV special bytes: " , CR LF
};

/// \brief Error-shape knobs.
struct ErrorModelOptions {
  /// P(a tuple entering the stream starts an error burst).
  double tuple_error_rate = 0.25;
  /// P(the next tuple is also dirty | the current one is) — burstiness.
  /// 0 makes dirtiness i.i.d. at tuple_error_rate.
  double burst_continue = 0.0;
  /// Within a dirty tuple: corrupt a contiguous run of this many
  /// attributes starting at a random position (correlated cluster).
  /// 0 falls back to independent per-attribute draws at `cell_rate`.
  size_t cluster_len = 0;
  /// Per-attribute corruption probability when cluster_len == 0.
  double cell_rate = 0.25;
  /// Kind mix (normalized; must not all be zero).
  double typo_weight = 0.45;
  double null_weight = 0.2;
  double transpose_weight = 0.2;
  double swap_weight = 0.1;
  double hostile_weight = 0.05;
  /// Attributes never corrupted (the trusted set Z, so the certain-fix
  /// premise "t[Z] is correct" holds for generated scenarios).
  AttrSet protected_attrs;

  Status Validate() const;
};

/// \brief Seeded, deterministic corruption engine.
class ErrorModel {
 public:
  /// `typo_source` (optional, must outlive the model) supplies the
  /// paper's typo/replacement alphabet for ErrorKind::kTypo; without it a
  /// built-in single-character typo is used.
  ErrorModel(ErrorModelOptions options, uint64_t seed,
             DirtyGenerator* typo_source = nullptr);

  /// Corrupts `t` in place (the tuple must be backed by a writable pool,
  /// e.g. a DirtyGenerator scratch tuple). Returns the corrupted attrs —
  /// empty when the burst state machine left this tuple clean.
  AttrSet CorruptTuple(Tuple* t);

  /// One corrupted value; exposed for tests. kSwapField is handled at
  /// tuple level and falls back to kTranspose here.
  Value CorruptValue(const Value& v, DataType type, ErrorKind kind);

  /// Whether the burst state machine makes the next tuple dirty.
  bool NextTupleDirty();

  /// Draws a kind from the configured mix.
  ErrorKind DrawKind();

 private:
  AttrSet PickCluster(const Tuple& t);

  ErrorModelOptions options_;
  Rng rng_;
  DirtyGenerator* typo_source_;
  bool in_burst_ = false;
};

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_ERROR_MODEL_H_
