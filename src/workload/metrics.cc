#include "workload/metrics.h"

namespace certfix {

void MetricsAccumulator::Record(const Tuple& dirty, const Tuple& clean,
                                const Tuple& result,
                                const AttrSet& auto_changed) {
  size_t errors = dirty.DiffCount(clean);
  if (errors > 0) {
    ++erroneous_tuples_;
    if (result == clean) ++corrected_tuples_;
  }
  for (AttrId a = 0; a < dirty.size(); ++a) {
    bool was_wrong = dirty.at(a) != clean.at(a);
    if (was_wrong) ++erroneous_attrs_;
    // "Changed" counts actual modifications: validating an attribute by
    // rewriting its existing (correct) value is not a change.
    if (auto_changed.Contains(a) && result.at(a) != dirty.at(a)) {
      ++changed_attrs_;
      if (was_wrong && result.at(a) == clean.at(a)) ++corrected_attrs_;
    }
  }
}

double MetricsAccumulator::recall_t() const {
  if (erroneous_tuples_ == 0) return 1.0;
  return static_cast<double>(corrected_tuples_) /
         static_cast<double>(erroneous_tuples_);
}

double MetricsAccumulator::recall_a() const {
  if (erroneous_attrs_ == 0) return 1.0;
  return static_cast<double>(corrected_attrs_) /
         static_cast<double>(erroneous_attrs_);
}

double MetricsAccumulator::precision_a() const {
  if (changed_attrs_ == 0) return 1.0;
  return static_cast<double>(corrected_attrs_) /
         static_cast<double>(changed_attrs_);
}

double MetricsAccumulator::f_measure() const {
  double r = recall_a();
  double p = precision_a();
  if (r + p == 0.0) return 0.0;
  return 2.0 * r * p / (r + p);
}

}  // namespace certfix
