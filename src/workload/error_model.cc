#include "workload/error_model.h"

#include <vector>

namespace certfix {

Status ErrorModelOptions::Validate() const {
  for (double p : {tuple_error_rate, burst_continue, cell_rate}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("error rates must be in [0, 1]");
    }
  }
  for (double w : {typo_weight, null_weight, transpose_weight, swap_weight,
                   hostile_weight}) {
    if (w < 0.0) {
      return Status::InvalidArgument("error kind weights must be >= 0");
    }
  }
  if (typo_weight + null_weight + transpose_weight + swap_weight +
          hostile_weight <=
      0.0) {
    return Status::InvalidArgument(
        "error kind weights must not all be zero");
  }
  return Status::OK();
}

ErrorModel::ErrorModel(ErrorModelOptions options, uint64_t seed,
                       DirtyGenerator* typo_source)
    : options_(options), rng_(seed), typo_source_(typo_source) {}

bool ErrorModel::NextTupleDirty() {
  // In a burst, stay dirty with burst_continue; otherwise enter a burst
  // with tuple_error_rate. burst_continue == 0 degenerates to i.i.d.
  // dirtiness at tuple_error_rate.
  double p = (in_burst_ && options_.burst_continue > 0.0)
                 ? options_.burst_continue
                 : options_.tuple_error_rate;
  in_burst_ = rng_.Bernoulli(p);
  return in_burst_;
}

ErrorKind ErrorModel::DrawKind() {
  double total = options_.typo_weight + options_.null_weight +
                 options_.transpose_weight + options_.swap_weight +
                 options_.hostile_weight;
  double roll = rng_.NextDouble() * total;
  if (roll < options_.typo_weight) return ErrorKind::kTypo;
  roll -= options_.typo_weight;
  if (roll < options_.null_weight) return ErrorKind::kNull;
  roll -= options_.null_weight;
  if (roll < options_.transpose_weight) return ErrorKind::kTranspose;
  roll -= options_.transpose_weight;
  if (roll < options_.swap_weight) return ErrorKind::kSwapField;
  return ErrorKind::kHostile;
}

Value ErrorModel::CorruptValue(const Value& v, DataType type,
                               ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNull:
      return Value();
    case ErrorKind::kTypo: {
      if (typo_source_ != nullptr) return typo_source_->Corrupt(v, type);
      std::string s = v.is_null() ? "x" : v.ToString();
      if (s.empty()) s = "x";
      size_t pos = rng_.Index(s.size());
      s[pos] = static_cast<char>('a' + rng_.Uniform(0, 25));
      return Value::Str(s);
    }
    case ErrorKind::kSwapField:  // tuple-level; degrade to transposition
    case ErrorKind::kTranspose: {
      if (v.is_null()) return Value::Str("x");
      std::string s = v.ToString();
      if (s.size() < 2) return Value::Str(s + "x");
      size_t pos = rng_.Index(s.size() - 1);
      std::swap(s[pos], s[pos + 1]);
      return Value::Str(s);
    }
    case ErrorKind::kHostile: {
      // The CsvRecordReader special-byte alphabet (csv_fuzz_test): every
      // one of these must survive FormatCsvLine quoting and parse back.
      static const char kHostileBytes[] = {'"', ',', '\n', '\r', ' '};
      std::string s = v.is_null() ? "" : v.ToString();
      size_t splices = 1 + rng_.Index(3);
      for (size_t i = 0; i < splices; ++i) {
        size_t pos = rng_.Index(s.size() + 1);
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                 kHostileBytes[rng_.Index(std::size(kHostileBytes))]);
      }
      return Value::Str(s);
    }
  }
  return v;
}

AttrSet ErrorModel::PickCluster(const Tuple& t) {
  AttrSet picked;
  size_t n = t.size();
  if (options_.cluster_len > 0) {
    size_t start = rng_.Index(n);
    for (size_t i = 0; i < options_.cluster_len && i < n; ++i) {
      AttrId a = static_cast<AttrId>((start + i) % n);
      if (!options_.protected_attrs.Contains(a)) picked.Add(a);
    }
  } else {
    for (AttrId a = 0; a < n; ++a) {
      if (options_.protected_attrs.Contains(a)) continue;
      if (rng_.Bernoulli(options_.cell_rate)) picked.Add(a);
    }
  }
  return picked;
}

AttrSet ErrorModel::CorruptTuple(Tuple* t) {
  AttrSet corrupted;
  if (!NextTupleDirty()) return corrupted;
  AttrSet cluster = PickCluster(*t);
  std::vector<AttrId> attrs = cluster.ToVector();
  for (size_t i = 0; i < attrs.size(); ++i) {
    AttrId a = attrs[i];
    ErrorKind kind = DrawKind();
    if (kind == ErrorKind::kSwapField) {
      // Swap with the next corruptible attribute (wrapping): two cells
      // change in one stroke — the classic transposed-form-fields entry.
      AttrId b = attrs[(i + 1) % attrs.size()];
      if (b != a) {
        Value va = t->at(a);
        Value vb = t->at(b);
        if (va != vb) {
          t->Set(a, vb);
          t->Set(b, std::move(va));
          corrupted.Add(a);
          corrupted.Add(b);
          continue;
        }
      }
      kind = ErrorKind::kTranspose;
    }
    Value before = t->at(a);
    Value after = CorruptValue(before, t->schema()->attr_type(a), kind);
    if (after == before) continue;
    t->Set(a, std::move(after));
    corrupted.Add(a);
  }
  return corrupted;
}

}  // namespace certfix
