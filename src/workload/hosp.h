/// \file hosp.h
/// \brief Synthetic HOSP workload (Sect. 6): the 19-attribute schema of the
/// joined Hospital-Compare tables, a consistent master-data generator, the
/// 21 editing rules (the 5 representative rules printed in the paper plus
/// 16 analogous ones), and master-derived CFDs for the IncRep baseline.
///
/// Substitution note (DESIGN.md 2.4): the real HOSP download is not
/// available offline; the generator reproduces the functional structure
/// the rules rely on (zip -> ST/city, phn -> zip, id -> hospital facts,
/// mCode -> measure facts, (id,mCode) -> score/sample, (mCode,ST) -> sAvg)
/// so every rule-firing code path behaves as with the real data.

#ifndef CERTFIX_WORKLOAD_HOSP_H_
#define CERTFIX_WORKLOAD_HOSP_H_

#include "cfd/cfd.h"
#include "relational/relation.h"
#include "rules/rule_set.h"
#include "util/random.h"

namespace certfix {

/// \brief HOSP workload factory.
class HospWorkload {
 public:
  /// The 19-attribute schema shared by R and Rm (paper Sect. 6):
  /// zip, ST, phn, mCode, mName, sAvg, hName, hType, hOwner, provider,
  /// city, emergency, condition, Score, sample, id, addr1, addr2, addr3.
  static SchemaPtr MakeSchema();

  /// The 21 editing rules of the HOSP experiments.
  static RuleSet MakeRules(const SchemaPtr& schema);

  /// Consistent, complete master data with `size` rows: one row per
  /// (hospital, measure) pair, functionally consistent across rows.
  /// `entity_offset` shifts every entity key (hospital ids, providers,
  /// phones, zips, measure codes) so that pools built with different
  /// offsets are disjoint — used for the non-duplicate pool of the dirty
  /// generator (the paper's d% semantics: an input tuple either matches a
  /// master tuple or matches none).
  static Relation MakeMaster(const SchemaPtr& schema, size_t size, Rng* rng,
                             size_t entity_offset = 0);

  /// Constant CFDs enumerated from master data for IncRep (e.g. one
  /// "zip=Z -> ST=S" row per distinct master zip), capped at `max_rows`
  /// rows per embedded FD. This gives IncRep the same rule knowledge the
  /// eRs encode (DESIGN.md 2.3).
  static CfdSet MakeCfdsFromMaster(const SchemaPtr& schema,
                                   const Relation& master, size_t max_rows);
};

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_HOSP_H_
