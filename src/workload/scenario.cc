#include "workload/scenario.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "relational/csv.h"
#include "workload/dblp.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {

namespace {

// Trusted sets Z per workload: attributes the certain-fix premise assumes
// correct at entry. hosp keys on the (hospital, measure) pair; dblp needs
// the phi7 LHS {type, a1, a2, ptitle, pages} so repairs can fire.
const std::vector<std::string>& TrustedNames(const std::string& workload) {
  static const std::vector<std::string> kHosp = {"id", "mCode"};
  static const std::vector<std::string> kDblp = {"type", "a1", "a2", "ptitle",
                                                 "pages"};
  return workload == "dblp" ? kDblp : kHosp;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Strips a trailing `# comment` from an unquoted value.
std::string StripComment(const std::string& s) {
  size_t pos = s.find('#');
  return pos == std::string::npos ? s : s.substr(0, pos);
}

struct RawValue {
  std::string text;
  bool quoted = false;
};

Result<RawValue> ParseRawValue(const std::string& rhs, size_t line_no) {
  RawValue v;
  std::string t = Trim(rhs);
  if (!t.empty() && t[0] == '"') {
    size_t close = t.find('"', 1);
    if (close == std::string::npos) {
      return Status::ParseError("spec line " + std::to_string(line_no) +
                                ": unterminated string");
    }
    std::string rest = Trim(t.substr(close + 1));
    if (!rest.empty() && rest[0] != '#') {
      return Status::ParseError("spec line " + std::to_string(line_no) +
                                ": trailing text after string value");
    }
    v.text = t.substr(1, close - 1);
    v.quoted = true;
    return v;
  }
  v.text = Trim(StripComment(t));
  if (v.text.empty()) {
    return Status::ParseError("spec line " + std::to_string(line_no) +
                              ": empty value");
  }
  return v;
}

Result<double> ToDouble(const RawValue& v, const std::string& key,
                        size_t line_no) {
  if (v.quoted) {
    return Status::ParseError("spec line " + std::to_string(line_no) + ": " +
                              key + " must be a number");
  }
  char* end = nullptr;
  double d = std::strtod(v.text.c_str(), &end);
  if (end == v.text.c_str() || *end != '\0') {
    return Status::ParseError("spec line " + std::to_string(line_no) + ": " +
                              key + ": bad number '" + v.text + "'");
  }
  return d;
}

Result<uint64_t> ToUint(const RawValue& v, const std::string& key,
                        size_t line_no) {
  if (v.quoted || v.text.empty() ||
      v.text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("spec line " + std::to_string(line_no) + ": " +
                              key + ": bad unsigned integer '" + v.text + "'");
  }
  return std::strtoull(v.text.c_str(), nullptr, 10);
}

Result<std::string> ToStr(const RawValue& v, const std::string& key,
                          size_t line_no) {
  if (!v.quoted) {
    return Status::ParseError("spec line " + std::to_string(line_no) + ": " +
                              key + " must be a quoted string");
  }
  return v.text;
}

Status ApplyTopLevel(ScenarioSpec* spec, const std::string& key,
                     const RawValue& v, size_t line_no) {
  if (key == "name") {
    CERTFIX_ASSIGN_OR_RETURN(spec->name, ToStr(v, key, line_no));
  } else if (key == "workload") {
    CERTFIX_ASSIGN_OR_RETURN(spec->workload, ToStr(v, key, line_no));
  } else if (key == "seed") {
    CERTFIX_ASSIGN_OR_RETURN(spec->seed, ToUint(v, key, line_no));
  } else if (key == "master_rows") {
    CERTFIX_ASSIGN_OR_RETURN(spec->master_rows, ToUint(v, key, line_no));
  } else if (key == "initial_rows") {
    CERTFIX_ASSIGN_OR_RETURN(spec->initial_rows, ToUint(v, key, line_no));
  } else if (key == "deltas") {
    CERTFIX_ASSIGN_OR_RETURN(spec->num_deltas, ToUint(v, key, line_no));
  } else if (key == "duplicate_rate") {
    CERTFIX_ASSIGN_OR_RETURN(spec->duplicate_rate, ToDouble(v, key, line_no));
  } else {
    return Status::ParseError("spec line " + std::to_string(line_no) +
                              ": unknown key '" + key + "'");
  }
  return Status::OK();
}

Status ApplyPopularity(PopularityOptions* o, const std::string& key,
                       const RawValue& v, size_t line_no) {
  if (key == "kind") {
    CERTFIX_ASSIGN_OR_RETURN(std::string text, ToStr(v, key, line_no));
    CERTFIX_ASSIGN_OR_RETURN(o->kind, ParsePopularityKind(text));
  } else if (key == "alpha") {
    CERTFIX_ASSIGN_OR_RETURN(o->alpha, ToDouble(v, key, line_no));
  } else if (key == "hot_fraction") {
    CERTFIX_ASSIGN_OR_RETURN(o->hot_fraction, ToDouble(v, key, line_no));
  } else if (key == "hot_rate") {
    CERTFIX_ASSIGN_OR_RETURN(o->hot_rate, ToDouble(v, key, line_no));
  } else if (key == "shift_every") {
    CERTFIX_ASSIGN_OR_RETURN(o->shift_every, ToUint(v, key, line_no));
  } else {
    return Status::ParseError("spec line " + std::to_string(line_no) +
                              ": unknown [popularity] key '" + key + "'");
  }
  return Status::OK();
}

Status ApplyArrival(ArrivalOptions* o, const std::string& key,
                    const RawValue& v, size_t line_no) {
  if (key == "kind") {
    CERTFIX_ASSIGN_OR_RETURN(std::string text, ToStr(v, key, line_no));
    CERTFIX_ASSIGN_OR_RETURN(o->kind, ParseArrivalKind(text));
  } else if (key == "insert_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->insert_weight, ToDouble(v, key, line_no));
  } else if (key == "update_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->update_weight, ToDouble(v, key, line_no));
  } else if (key == "delete_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->delete_weight, ToDouble(v, key, line_no));
  } else if (key == "master_ratio") {
    CERTFIX_ASSIGN_OR_RETURN(o->master_ratio, ToDouble(v, key, line_no));
  } else if (key == "master_insert_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->master_insert_weight,
                             ToDouble(v, key, line_no));
  } else if (key == "master_update_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->master_update_weight,
                             ToDouble(v, key, line_no));
  } else if (key == "master_delete_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->master_delete_weight,
                             ToDouble(v, key, line_no));
  } else if (key == "burst_min") {
    CERTFIX_ASSIGN_OR_RETURN(o->burst_min, ToUint(v, key, line_no));
  } else if (key == "burst_max") {
    CERTFIX_ASSIGN_OR_RETURN(o->burst_max, ToUint(v, key, line_no));
  } else {
    return Status::ParseError("spec line " + std::to_string(line_no) +
                              ": unknown [arrival] key '" + key + "'");
  }
  return Status::OK();
}

Status ApplyErrors(ScenarioSpec* spec, const std::string& key,
                   const RawValue& v, size_t line_no) {
  ErrorModelOptions* o = &spec->errors;
  if (key == "tuple_error_rate") {
    CERTFIX_ASSIGN_OR_RETURN(o->tuple_error_rate, ToDouble(v, key, line_no));
  } else if (key == "burst_continue") {
    CERTFIX_ASSIGN_OR_RETURN(o->burst_continue, ToDouble(v, key, line_no));
  } else if (key == "cluster_len") {
    CERTFIX_ASSIGN_OR_RETURN(o->cluster_len, ToUint(v, key, line_no));
  } else if (key == "cell_rate") {
    CERTFIX_ASSIGN_OR_RETURN(o->cell_rate, ToDouble(v, key, line_no));
  } else if (key == "typo_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->typo_weight, ToDouble(v, key, line_no));
  } else if (key == "null_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->null_weight, ToDouble(v, key, line_no));
  } else if (key == "transpose_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->transpose_weight, ToDouble(v, key, line_no));
  } else if (key == "swap_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->swap_weight, ToDouble(v, key, line_no));
  } else if (key == "hostile_weight") {
    CERTFIX_ASSIGN_OR_RETURN(o->hostile_weight, ToDouble(v, key, line_no));
  } else if (key == "master_noise_rate") {
    CERTFIX_ASSIGN_OR_RETURN(spec->master_noise_rate,
                             ToDouble(v, key, line_no));
  } else {
    return Status::ParseError("spec line " + std::to_string(line_no) +
                              ": unknown [errors] key '" + key + "'");
  }
  return Status::OK();
}

// Renders a tuple the way WriteCsv renders rows: null as "".
std::vector<std::string> RenderTuple(const Tuple& t) {
  std::vector<std::string> fields(t.size());
  for (AttrId a = 0; a < t.size(); ++a) {
    const Value& v = t.at(a);
    if (!v.is_null()) fields[a] = v.ToString();
  }
  return fields;
}

std::vector<std::string> RenderRow(const Relation& rel, size_t row) {
  std::vector<std::string> fields(rel.schema()->num_attrs());
  for (AttrId a = 0; a < rel.schema()->num_attrs(); ++a) {
    const Value& v = rel.Cell(row, a);
    if (!v.is_null()) fields[a] = v.ToString();
  }
  return fields;
}

const char* OpName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kInsert: return "I";
    case DeltaKind::kUpdate: return "U";
    case DeltaKind::kDelete: return "D";
    case DeltaKind::kMasterInsert: return "MI";
    case DeltaKind::kMasterUpdate: return "MU";
    case DeltaKind::kMasterDelete: return "MD";
  }
  return "?";
}

}  // namespace

Status ScenarioSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("scenario needs a name");
  }
  if (workload != "hosp" && workload != "dblp") {
    return Status::InvalidArgument("unknown workload '" + workload +
                                   "' (want hosp|dblp)");
  }
  if (master_rows == 0) {
    return Status::InvalidArgument("master_rows must be > 0");
  }
  if (duplicate_rate < 0.0 || duplicate_rate > 1.0 ||
      master_noise_rate < 0.0 || master_noise_rate > 1.0) {
    return Status::InvalidArgument(
        "duplicate_rate and master_noise_rate must be in [0, 1]");
  }
  CERTFIX_RETURN_IF_ERROR(popularity.Validate());
  CERTFIX_RETURN_IF_ERROR(arrival.Validate());
  CERTFIX_RETURN_IF_ERROR(errors.Validate());
  return Status::OK();
}

Result<ScenarioSpec> ParseScenarioSpec(const std::string& text,
                                       const std::string& default_name) {
  ScenarioSpec spec;
  spec.name = default_name;
  std::istringstream in(text);
  std::string line;
  std::string section;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    if (t[0] == '[') {
      if (t.back() != ']') {
        return Status::ParseError("spec line " + std::to_string(line_no) +
                                  ": unterminated section header");
      }
      section = Trim(t.substr(1, t.size() - 2));
      if (section != "popularity" && section != "arrival" &&
          section != "errors") {
        return Status::ParseError("spec line " + std::to_string(line_no) +
                                  ": unknown section [" + section + "]");
      }
      continue;
    }
    size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("spec line " + std::to_string(line_no) +
                                ": expected key = value");
    }
    std::string key = Trim(t.substr(0, eq));
    if (key.empty()) {
      return Status::ParseError("spec line " + std::to_string(line_no) +
                                ": empty key");
    }
    CERTFIX_ASSIGN_OR_RETURN(RawValue value,
                             ParseRawValue(t.substr(eq + 1), line_no));
    if (section.empty()) {
      CERTFIX_RETURN_IF_ERROR(ApplyTopLevel(&spec, key, value, line_no));
    } else if (section == "popularity") {
      CERTFIX_RETURN_IF_ERROR(
          ApplyPopularity(&spec.popularity, key, value, line_no));
    } else if (section == "arrival") {
      CERTFIX_RETURN_IF_ERROR(
          ApplyArrival(&spec.arrival, key, value, line_no));
    } else {
      CERTFIX_RETURN_IF_ERROR(ApplyErrors(&spec, key, value, line_no));
    }
  }
  CERTFIX_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<ScenarioSpec> LoadScenarioSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open scenario spec " + path);
  std::ostringstream text;
  text << in.rdbuf();
  // Default the name to the file stem: "dir/zipf-hot.toml" -> "zipf-hot".
  std::string stem = path;
  size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return ParseScenarioSpec(text.str(), stem);
}

Result<Scenario> GenerateScenario(const ScenarioSpec& spec) {
  CERTFIX_RETURN_IF_ERROR(spec.Validate());
  Scenario sc;
  sc.spec = spec;
  const bool dblp = spec.workload == "dblp";
  sc.schema = dblp ? DblpWorkload::MakeSchema() : HospWorkload::MakeSchema();
  sc.rules = dblp ? DblpWorkload::MakeRules(sc.schema)
                  : HospWorkload::MakeRules(sc.schema);
  sc.trusted_names = TrustedNames(spec.workload);
  CERTFIX_ASSIGN_OR_RETURN(std::vector<AttrId> trusted_ids,
                           sc.schema->Resolve(sc.trusted_names));
  sc.trusted = AttrSet::FromVector(trusted_ids);

  // Pools, seeded by the bench_util idiom: master from `seed`, the
  // disjoint non-duplicate pool from seed*31+7 at offset 1e6, and the
  // master-growth pool (rows MI appends) from seed*131+3 at offset 2e6 so
  // grown rows collide with neither.
  Rng master_rng(spec.seed);
  sc.master = dblp ? DblpWorkload::MakeMaster(sc.schema, spec.master_rows,
                                              &master_rng)
                   : HospWorkload::MakeMaster(sc.schema, spec.master_rows,
                                              &master_rng);
  Rng non_master_rng(spec.seed * 31 + 7);
  size_t pool_rows = spec.master_rows / 2 + 1;
  Relation non_master =
      dblp ? DblpWorkload::MakeMaster(sc.schema, pool_rows, &non_master_rng,
                                      1000000)
           : HospWorkload::MakeMaster(sc.schema, pool_rows, &non_master_rng,
                                      1000000);
  Relation growth;
  size_t growth_next = 0;
  if (spec.arrival.master_ratio > 0.0) {
    Rng growth_rng(spec.seed * 131 + 3);
    size_t growth_rows = spec.num_deltas > 0 ? spec.num_deltas : 1;
    growth = dblp ? DblpWorkload::MakeMaster(sc.schema, growth_rows,
                                             &growth_rng, 2000000)
                  : HospWorkload::MakeMaster(sc.schema, growth_rows,
                                             &growth_rng, 2000000);
  }

  // The clean-row source: DirtyGenerator with zero noise — corruption is
  // this module's ErrorModel, which reuses the generator's typo alphabet.
  DirtyGenOptions gen_opts;
  gen_opts.duplicate_rate = spec.duplicate_rate;
  gen_opts.noise_rate = 0.0;
  gen_opts.seed = spec.seed * 13 + 1;
  DirtyGenerator clean_gen(sc.master, non_master, gen_opts);
  ErrorModelOptions err_opts = spec.errors;
  err_opts.protected_attrs = sc.trusted;
  ErrorModel errors(err_opts, spec.seed * 77 + 5, &clean_gen);

  auto next_input_row = [&]() {
    DirtyPair pair = clean_gen.Next();
    Tuple t = pair.dirty;  // noise_rate 0: dirty == clean, scratch-backed
    errors.CorruptTuple(&t);
    return RenderTuple(t);
  };

  sc.initial = Relation(sc.schema);
  std::vector<std::vector<std::string>> live_input;
  live_input.reserve(spec.initial_rows);
  for (size_t i = 0; i < spec.initial_rows; ++i) {
    std::vector<std::string> fields = next_input_row();
    CERTFIX_RETURN_IF_ERROR(sc.initial.AppendStrings(fields));
    live_input.push_back(std::move(fields));
  }
  std::vector<std::vector<std::string>> live_master;
  live_master.reserve(sc.master.size());
  for (size_t i = 0; i < sc.master.size(); ++i) {
    live_master.push_back(RenderRow(sc.master, i));
  }

  // MD below this floor becomes MI: engines need surviving master rows for
  // rules to fire at all, and the floor keeps adversarial specs from
  // deleting the scenario out from under themselves.
  constexpr size_t kMinMasterRows = 8;

  Rng rng(spec.seed * 1009 + 17);
  PopularityModel popularity(spec.popularity);
  ArrivalModel arrival(spec.arrival);
  sc.deltas.reserve(spec.num_deltas);
  for (uint64_t step = 0; step < spec.num_deltas; ++step) {
    OpClass op = arrival.Next(&rng);
    // Re-aim ops their target state cannot satisfy instead of failing:
    // the burst machine may queue deletes against an emptied relation.
    if ((op == OpClass::kUpdate || op == OpClass::kDelete) &&
        live_input.empty()) {
      op = OpClass::kInsert;
    }
    if (op == OpClass::kMasterDelete && live_master.size() <= kMinMasterRows) {
      op = OpClass::kMasterInsert;
    }
    if (op == OpClass::kMasterUpdate && live_master.empty()) {
      op = OpClass::kMasterInsert;
    }

    Delta d;
    switch (op) {
      case OpClass::kInsert: {
        d.kind = DeltaKind::kInsert;
        d.fields = next_input_row();
        live_input.push_back(d.fields);
        break;
      }
      case OpClass::kUpdate: {
        d.kind = DeltaKind::kUpdate;
        d.row = popularity.Pick(live_input.size(), step, &rng);
        d.fields = next_input_row();
        live_input[d.row] = d.fields;
        break;
      }
      case OpClass::kDelete: {
        d.kind = DeltaKind::kDelete;
        d.row = popularity.Pick(live_input.size(), step, &rng);
        live_input.erase(live_input.begin() +
                         static_cast<std::ptrdiff_t>(d.row));
        break;
      }
      case OpClass::kMasterInsert: {
        d.kind = DeltaKind::kMasterInsert;
        d.fields = growth.empty()
                       ? RenderRow(sc.master, rng.Index(sc.master.size()))
                       : RenderRow(growth, growth_next++ % growth.size());
        live_master.push_back(d.fields);
        break;
      }
      case OpClass::kMasterUpdate: {
        d.kind = DeltaKind::kMasterUpdate;
        d.row = popularity.Pick(live_master.size(), step, &rng);
        double roll = rng.NextDouble();
        if (roll < 0.15) {
          // Self-identical update: engines must treat it as a no-op.
          d.fields = live_master[d.row];
        } else if (rng.NextDouble() < spec.master_noise_rate) {
          // Corrupt one cell of the current row: master data goes bad.
          d.fields = live_master[d.row];
          AttrId a = static_cast<AttrId>(rng.Index(d.fields.size()));
          Value v = Value::Parse(d.fields[a], sc.schema->attr_type(a));
          Value bad = errors.CorruptValue(v, sc.schema->attr_type(a),
                                          errors.DrawKind());
          d.fields[a] = bad.is_null() ? "" : bad.ToString();
        } else if (!growth.empty()) {
          // Replace with a fresh consistent row: a record correction.
          d.fields = RenderRow(growth, growth_next++ % growth.size());
        } else {
          d.fields = live_master[d.row];
        }
        live_master[d.row] = d.fields;
        break;
      }
      case OpClass::kMasterDelete: {
        d.kind = DeltaKind::kMasterDelete;
        d.row = popularity.Pick(live_master.size(), step, &rng);
        live_master.erase(live_master.begin() +
                          static_cast<std::ptrdiff_t>(d.row));
        break;
      }
    }
    sc.deltas.push_back(std::move(d));
  }
  return sc;
}

Status WriteDeltaLog(const std::string& name, uint64_t seed,
                     const std::vector<Delta>& deltas, std::ostream& out) {
  out << "# scenario " << name << " seed=" << seed << "\n";
  for (const Delta& d : deltas) {
    std::vector<std::string> fields;
    fields.reserve(2 + d.fields.size());
    fields.push_back(OpName(d.kind));
    bool has_row =
        d.kind != DeltaKind::kInsert && d.kind != DeltaKind::kMasterInsert;
    fields.push_back(has_row ? std::to_string(d.row) : "");
    bool has_payload =
        d.kind != DeltaKind::kDelete && d.kind != DeltaKind::kMasterDelete;
    if (has_payload) {
      fields.insert(fields.end(), d.fields.begin(), d.fields.end());
    } else {
      fields.resize(2);  // D/MD records carry op and row only
    }
    out << FormatCsvLine(fields) << "\n";
  }
  if (!out) return Status::Internal("delta log write failed");
  return Status::OK();
}

std::string DeltaLogToString(const Scenario& scenario) {
  std::ostringstream out;
  Status st = WriteDeltaLog(scenario.spec.name, scenario.spec.seed,
                            scenario.deltas, out);
  (void)st;  // string streams do not fail
  return out.str();
}

Status ApplyDeltaLog(const std::vector<Delta>& deltas,
                     std::vector<std::vector<std::string>>* input_rows,
                     std::vector<std::vector<std::string>>* master_rows) {
  for (size_t i = 0; i < deltas.size(); ++i) {
    const Delta& d = deltas[i];
    bool master = IsMasterDelta(d.kind);
    std::vector<std::vector<std::string>>* rows =
        master ? master_rows : input_rows;
    switch (d.kind) {
      case DeltaKind::kInsert:
      case DeltaKind::kMasterInsert:
        rows->push_back(d.fields);
        break;
      case DeltaKind::kUpdate:
      case DeltaKind::kMasterUpdate:
        if (d.row >= rows->size()) {
          return Status::OutOfRange("delta " + std::to_string(i) +
                                    ": update row " + std::to_string(d.row) +
                                    " out of range");
        }
        (*rows)[d.row] = d.fields;
        break;
      case DeltaKind::kDelete:
      case DeltaKind::kMasterDelete:
        if (d.row >= rows->size()) {
          return Status::OutOfRange("delta " + std::to_string(i) +
                                    ": delete row " + std::to_string(d.row) +
                                    " out of range");
        }
        rows->erase(rows->begin() + static_cast<std::ptrdiff_t>(d.row));
        break;
    }
  }
  return Status::OK();
}

std::vector<std::vector<std::string>> RenderRows(const Relation& rel) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) rows.push_back(RenderRow(rel, i));
  return rows;
}

Result<Relation> RelationFromRows(
    SchemaPtr schema, const std::vector<std::vector<std::string>>& rows) {
  Relation rel(std::move(schema));
  rel.Reserve(rows.size());
  for (const auto& fields : rows) {
    CERTFIX_RETURN_IF_ERROR(rel.AppendStrings(fields));
  }
  return rel;
}

}  // namespace certfix
