#include "workload/dirty_gen.h"

#include <cassert>

namespace certfix {

DirtyGenerator::DirtyGenerator(const Relation& master,
                               const Relation& non_master,
                               DirtyGenOptions options)
    : master_(&master),
      non_master_(&non_master),
      options_(options),
      rng_(options.seed) {
  assert(!master.empty());
  assert(!non_master.empty());
}

Value DirtyGenerator::Corrupt(const Value& v, DataType type) {
  (void)type;
  double kind = rng_.NextDouble();
  if (kind < 0.15 || v.is_null()) {
    // Missing value (like t2[str, zip] in Fig. 1a of the paper).
    return Value();
  }
  std::string s = v.ToString();
  if (kind < 0.55 && !s.empty()) {
    // Typo: substitute, insert, or delete one character.
    size_t pos = rng_.Index(s.size());
    switch (rng_.Uniform(0, 2)) {
      case 0:
        s[pos] = static_cast<char>('a' + rng_.Uniform(0, 25));
        break;
      case 1:
        s.insert(pos, 1, static_cast<char>('a' + rng_.Uniform(0, 25)));
        break;
      default:
        s.erase(pos, 1);
        break;
    }
    if (s.empty()) s = "x";
    return Value::Str(s);
  }
  // Replacement with an unrelated value.
  return Value::Str("wrong_" + rng_.AlphaString(4));
}

DirtyPair DirtyGenerator::Next() {
  DirtyPair pair;
  pair.from_master = rng_.Bernoulli(options_.duplicate_rate);
  const Relation& pool = pair.from_master ? *master_ : *non_master_;
  pair.clean = pool.at(rng_.Index(pool.size()));
  pair.dirty = pair.clean.RebasedTo(scratch_pool_);
  for (AttrId a = 0; a < pair.dirty.size(); ++a) {
    if (options_.protected_attrs.Contains(a)) continue;
    if (!rng_.Bernoulli(options_.noise_rate)) continue;
    Value corrupted =
        Corrupt(pair.dirty.at(a), pair.dirty.schema()->attr_type(a));
    if (corrupted == pair.dirty.at(a)) continue;
    pair.dirty.Set(a, std::move(corrupted));
    pair.corrupted.Add(a);
  }
  return pair;
}

std::vector<DirtyPair> DirtyGenerator::Generate(size_t n) {
  std::vector<DirtyPair> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace certfix
