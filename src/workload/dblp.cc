#include "workload/dblp.h"

#include <cassert>
#include <set>

#include "rules/rule_parser.h"

namespace certfix {

SchemaPtr DblpWorkload::MakeSchema() {
  return Schema::Make(
      "DBLP", std::vector<std::string>{"ptitle", "a1", "a2", "hp1", "hp2",
                                       "btitle", "publisher", "isbn",
                                       "crossref", "year", "type", "pages"});
}

RuleSet DblpWorkload::MakeRules(const SchemaPtr& schema) {
  const char* text = R"(
    # Author homepages; phi2/phi4 map across attributes (a2 vs a1), which
    # CFDs cannot even express syntactically (Sect. 6 of the paper).
    rule phi1: (a1 | a1) -> (hp1 | hp1) when a1!=""
    rule phi2: (a2 | a1) -> (hp2 | hp1) when a2!=""
    rule phi3: (a2 | a2) -> (hp2 | hp2) when a2!=""
    rule phi4: (a1 | a2) -> (hp1 | hp2) when a1!=""
    # phi5: venue key (type, btitle, year) fixes A.
    rule phi5a: (type, btitle, year | type, btitle, year) -> (isbn | isbn) when type=inproceedings
    rule phi5b: (type, btitle, year | type, btitle, year) -> (publisher | publisher) when type=inproceedings
    rule phi5c: (type, btitle, year | type, btitle, year) -> (crossref | crossref) when type=inproceedings
    # phi6: crossref foreign key fixes B.
    rule phi6a: (type, crossref | type, crossref) -> (btitle | btitle) when type=inproceedings
    rule phi6b: (type, crossref | type, crossref) -> (year | year) when type=inproceedings
    rule phi6c: (type, crossref | type, crossref) -> (isbn | isbn) when type=inproceedings
    rule phi6d: (type, crossref | type, crossref) -> (publisher | publisher) when type=inproceedings
    # phi7: the full paper key fixes C.
    rule phi7a: (type, a1, a2, ptitle, pages | type, a1, a2, ptitle, pages) -> (isbn | isbn) when type=inproceedings
    rule phi7b: (type, a1, a2, ptitle, pages | type, a1, a2, ptitle, pages) -> (publisher | publisher) when type=inproceedings
    rule phi7c: (type, a1, a2, ptitle, pages | type, a1, a2, ptitle, pages) -> (year | year) when type=inproceedings
    rule phi7d: (type, a1, a2, ptitle, pages | type, a1, a2, ptitle, pages) -> (btitle | btitle) when type=inproceedings
    rule phi7e: (type, a1, a2, ptitle, pages | type, a1, a2, ptitle, pages) -> (crossref | crossref) when type=inproceedings
  )";
  Result<RuleSet> rules = ParseRules(text, schema, schema);
  assert(rules.ok());
  return std::move(rules).ValueOrDie();
}

namespace {

struct DblpEntities {
  struct Author {
    std::string name, homepage;
  };
  struct Venue {
    std::string btitle, year, publisher, isbn, crossref;
  };
  std::vector<Author> authors;
  std::vector<Venue> venues;
};

DblpEntities MakeEntities(size_t num_authors, size_t num_venues, Rng* rng,
                          size_t offset) {
  static const char* kPublishers[] = {"Springer", "ACM", "IEEE", "VLDB"};
  static const char* kConfs[] = {"SIGMOD", "VLDB", "ICDE", "EDBT", "PODS"};
  DblpEntities e;
  e.authors.reserve(num_authors);
  for (size_t raw = 0; raw < num_authors; ++raw) {
    size_t i = raw + offset;
    DblpEntities::Author a;
    a.name = "Author " + rng->AlphaString(4) + std::to_string(i);
    a.homepage = "http://people.example.org/~u" + std::to_string(i);
    e.authors.push_back(std::move(a));
  }
  // Venues form a SHARED vocabulary (no offset): a never-seen paper may
  // still appear at a master-known conference, so the venue rules
  // (phi5/phi6) can fire for non-duplicate inputs. Every venue fact is a
  // deterministic function of the venue index, keeping cross-pool joins
  // consistent.
  e.venues.reserve(num_venues);
  for (size_t i = 0; i < num_venues; ++i) {
    DblpEntities::Venue v;
    size_t conf = i % (sizeof(kConfs) / sizeof(kConfs[0]));
    std::string year = std::to_string(1995 + (i / 5) % 16);
    v.btitle = std::string(kConfs[conf]) + " " + year;
    v.year = year;
    v.publisher = kPublishers[conf % 4];
    v.isbn = "978-" + std::to_string(100000 + i * 7);
    v.crossref = "conf/" + std::string(kConfs[conf]) + "/" + year;
    e.venues.push_back(std::move(v));
  }
  return e;
}

}  // namespace

Relation DblpWorkload::MakeMaster(const SchemaPtr& schema, size_t size,
                                  Rng* rng, size_t entity_offset) {
  size_t num_venues = std::max<size_t>(5, std::min<size_t>(60, size / 40));
  size_t num_authors = std::max<size_t>(8, size / 3);
  DblpEntities e = MakeEntities(num_authors, num_venues, rng, entity_offset);

  Relation master(schema);
  master.Reserve(size);
  for (size_t i = 0; i < size; ++i) {
    // Distinct (a1, a2, ptitle, pages) per row keeps phi7 functional; one
    // venue per row keeps phi5/phi6 functional.
    const auto& venue = e.venues[i % e.venues.size()];
    const auto& a1 = e.authors[(i * 2) % e.authors.size()];
    const auto& a2 = e.authors[(i * 2 + 1) % e.authors.size()];
    std::string ptitle =
        "On " + rng->AlphaString(6) + " " + std::to_string(i);
    std::string pages = std::to_string(1 + (i * 13) % 500) + "-" +
                        std::to_string(1 + (i * 13) % 500 + 12);
    Status st = master.AppendStrings({ptitle, a1.name, a2.name, a1.homepage,
                                      a2.homepage, venue.btitle,
                                      venue.publisher, venue.isbn,
                                      venue.crossref, venue.year,
                                      "inproceedings", pages});
    assert(st.ok());
    (void)st;
  }
  return master;
}

CfdSet DblpWorkload::MakeCfdsFromMaster(const SchemaPtr& schema,
                                        const Relation& master,
                                        size_t max_rows) {
  struct FdSpec {
    std::vector<std::string> x;
    std::string b;
  };
  static const FdSpec kSpecs[] = {
      {{"a1"}, "hp1"},
      {{"a2"}, "hp2"},
      {{"crossref"}, "btitle"},
      {{"crossref"}, "year"},
      {{"crossref"}, "publisher"},
      {{"btitle", "year"}, "isbn"},
  };
  CfdSet cfds(schema);
  for (const FdSpec& spec : kSpecs) {
    Result<std::vector<AttrId>> x = schema->Resolve(spec.x);
    Result<AttrId> b = schema->IndexOf(spec.b);
    assert(x.ok() && b.ok());
    std::set<std::string> seen;
    size_t rows = 0;
    for (size_t m = 0; m < master.size(); ++m) {
      if (rows >= max_rows) break;
      std::string key = ProjectKey(master, m, *x);
      if (!seen.insert(key).second) continue;
      PatternTuple tp(schema);
      for (AttrId a : *x) tp.SetConst(a, master.Cell(m, a));
      tp.SetConst(*b, master.Cell(m, *b));
      Result<Cfd> cfd = Cfd::Make(
          "dblp_cfd_" + spec.b + "_" + std::to_string(rows), schema, *x, *b,
          std::move(tp));
      assert(cfd.ok());
      Status st = cfds.Add(std::move(cfd).ValueOrDie());
      assert(st.ok());
      (void)st;
      ++rows;
    }
  }
  return cfds;
}

}  // namespace certfix
