#include "workload/arrival.h"

namespace certfix {

Result<PopularityKind> ParsePopularityKind(const std::string& text) {
  if (text == "uniform") return PopularityKind::kUniform;
  if (text == "zipf") return PopularityKind::kZipf;
  if (text == "hotset") return PopularityKind::kHotSet;
  return Status::InvalidArgument("unknown popularity kind '" + text +
                                 "' (want uniform|zipf|hotset)");
}

const char* ToString(PopularityKind kind) {
  switch (kind) {
    case PopularityKind::kUniform: return "uniform";
    case PopularityKind::kZipf: return "zipf";
    case PopularityKind::kHotSet: return "hotset";
  }
  return "?";
}

Status PopularityOptions::Validate() const {
  if (kind == PopularityKind::kZipf && alpha <= 0.0) {
    return Status::InvalidArgument("popularity.alpha must be > 0");
  }
  if (hot_fraction <= 0.0 || hot_fraction > 1.0) {
    return Status::InvalidArgument(
        "popularity.hot_fraction must be in (0, 1]");
  }
  if (hot_rate < 0.0 || hot_rate > 1.0) {
    return Status::InvalidArgument("popularity.hot_rate must be in [0, 1]");
  }
  return Status::OK();
}

size_t PopularityModel::Pick(size_t n, uint64_t step, Rng* rng) const {
  switch (options_.kind) {
    case PopularityKind::kUniform:
      return rng->Index(n);
    case PopularityKind::kZipf: {
      // Dyadic power law: keep halving the range, staying in the lower
      // half with probability p > 1/2. Rank r then has mass roughly
      // r^(-log2(p/(1-p))) — skewed toward low indices, with only
      // IEEE-exact arithmetic (see the header on libm determinism).
      double p = (1.0 + options_.alpha) / (2.0 + options_.alpha);
      size_t lo = 0;
      size_t hi = n;
      while (hi - lo > 1) {
        size_t mid = lo + (hi - lo + 1) / 2;
        if (rng->NextDouble() < p) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return lo;
    }
    case PopularityKind::kHotSet: {
      size_t hot = static_cast<size_t>(
          static_cast<double>(n) * options_.hot_fraction);
      if (hot == 0) hot = 1;
      if (hot > n) hot = n;
      size_t start = 0;
      if (options_.shift_every > 0) {
        start = static_cast<size_t>(
            (step / options_.shift_every) * hot % n);
      }
      if (rng->Bernoulli(options_.hot_rate)) {
        return (start + rng->Index(hot)) % n;
      }
      return rng->Index(n);
    }
  }
  return rng->Index(n);
}

Result<ArrivalKind> ParseArrivalKind(const std::string& text) {
  if (text == "steady") return ArrivalKind::kSteady;
  if (text == "bursty") return ArrivalKind::kBursty;
  return Status::InvalidArgument("unknown arrival kind '" + text +
                                 "' (want steady|bursty)");
}

const char* ToString(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kSteady: return "steady";
    case ArrivalKind::kBursty: return "bursty";
  }
  return "?";
}

Status ArrivalOptions::Validate() const {
  for (double w : {insert_weight, update_weight, delete_weight,
                   master_insert_weight, master_update_weight,
                   master_delete_weight}) {
    if (w < 0.0) {
      return Status::InvalidArgument("arrival weights must be >= 0");
    }
  }
  if (insert_weight + update_weight + delete_weight <= 0.0) {
    return Status::InvalidArgument(
        "arrival input-side weights must not all be zero");
  }
  if (master_ratio < 0.0 || master_ratio > 1.0) {
    return Status::InvalidArgument("arrival.master_ratio must be in [0, 1]");
  }
  if (master_ratio > 0.0 && master_insert_weight + master_update_weight +
                                    master_delete_weight <=
                                0.0) {
    return Status::InvalidArgument(
        "arrival master-side weights must not all be zero when "
        "master_ratio > 0");
  }
  if (master_ratio >= 1.0 &&
      insert_weight + update_weight + delete_weight > 0.0 &&
      master_insert_weight + master_update_weight + master_delete_weight <=
          0.0) {
    return Status::InvalidArgument("master_ratio = 1 needs master weights");
  }
  if (burst_min == 0 || burst_max < burst_min) {
    return Status::InvalidArgument(
        "arrival burst lengths need 1 <= burst_min <= burst_max");
  }
  return Status::OK();
}

OpClass ArrivalModel::DrawClass(Rng* rng) const {
  if (options_.master_ratio > 0.0 &&
      rng->Bernoulli(options_.master_ratio)) {
    double total = options_.master_insert_weight +
                   options_.master_update_weight +
                   options_.master_delete_weight;
    double roll = rng->NextDouble() * total;
    if (roll < options_.master_insert_weight) return OpClass::kMasterInsert;
    roll -= options_.master_insert_weight;
    if (roll < options_.master_update_weight) return OpClass::kMasterUpdate;
    return OpClass::kMasterDelete;
  }
  double total = options_.insert_weight + options_.update_weight +
                 options_.delete_weight;
  double roll = rng->NextDouble() * total;
  if (roll < options_.insert_weight) return OpClass::kInsert;
  roll -= options_.insert_weight;
  if (roll < options_.update_weight) return OpClass::kUpdate;
  return OpClass::kDelete;
}

OpClass ArrivalModel::Next(Rng* rng) {
  if (options_.kind == ArrivalKind::kSteady) return DrawClass(rng);
  if (burst_remaining_ == 0) {
    burst_class_ = DrawClass(rng);
    burst_remaining_ =
        options_.burst_min +
        rng->Index(options_.burst_max - options_.burst_min + 1);
  }
  --burst_remaining_;
  return burst_class_;
}

}  // namespace certfix
