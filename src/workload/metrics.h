/// \file metrics.h
/// \brief The Sect. 6 quality metrics: recall_t, recall_a, precision_a,
/// F-measure.

#ifndef CERTFIX_WORKLOAD_METRICS_H_
#define CERTFIX_WORKLOAD_METRICS_H_

#include <vector>

#include "relational/attr_set.h"
#include "relational/tuple.h"

namespace certfix {

/// \brief Accumulates attribute- and tuple-level counts across a batch of
/// fixed tuples.
///
/// Definitions (Sect. 6):
///   recall_t    = #corrected tuples / #erroneous tuples
///   recall_a    = #corrected attributes / #erroneous attributes
///   precision_a = #corrected attributes / #changed attributes
///   F-measure   = 2 * recall_a * precision_a / (recall_a + precision_a)
/// "Corrected attributes" never count user-supplied values; "corrected
/// tuples" means the tuple is fully clean after the round (by any means).
class MetricsAccumulator {
 public:
  /// Records one tuple's outcome.
  /// `dirty`/`clean`: the entered tuple and the ground truth;
  /// `result`: the tuple after fixing;
  /// `auto_changed`: attributes modified by the rules (not the user).
  void Record(const Tuple& dirty, const Tuple& clean, const Tuple& result,
              const AttrSet& auto_changed);

  double recall_t() const;
  double recall_a() const;
  double precision_a() const;
  double f_measure() const;

  size_t erroneous_tuples() const { return erroneous_tuples_; }
  size_t corrected_tuples() const { return corrected_tuples_; }
  size_t erroneous_attrs() const { return erroneous_attrs_; }
  size_t corrected_attrs() const { return corrected_attrs_; }
  size_t changed_attrs() const { return changed_attrs_; }

  void Reset() { *this = MetricsAccumulator(); }

 private:
  size_t erroneous_tuples_ = 0;
  size_t corrected_tuples_ = 0;
  size_t erroneous_attrs_ = 0;
  size_t corrected_attrs_ = 0;   // auto-corrected to the true value
  size_t changed_attrs_ = 0;     // auto-changed (correctly or not)
};

}  // namespace certfix

#endif  // CERTFIX_WORKLOAD_METRICS_H_
