/// \file rule_miner.h
/// \brief Discovery of editing rules from master data — the future-work
/// direction of Sect. 7 ("effective algorithms have to be in place for
/// discovering editing rules from sample inputs and master data, along
/// the same lines as discovering other data quality rules [12, 26]").
///
/// The miner searches Dm for functional dependencies X -> B (|X| bounded)
/// that hold exactly, plus *conditional* variants that hold under a
/// constant pattern on a low-cardinality attribute (the CFD-mining idea
/// of [12, 26] transplanted to editing rules). Each finding becomes an
/// editing rule ((X, X) -> (B, B), tp) via a name correspondence between
/// the input schema R and the master schema Rm.

#ifndef CERTFIX_MINING_RULE_MINER_H_
#define CERTFIX_MINING_RULE_MINER_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "rules/rule_set.h"
#include "util/result.h"

namespace certfix {

/// \brief Miner configuration.
struct RuleMinerOptions {
  size_t max_lhs = 2;           ///< maximum |X|
  size_t min_support = 2;       ///< minimum #distinct lhs keys
  bool mine_conditional = true; ///< also mine pattern-conditioned rules
  /// Attributes eligible as pattern conditions must have at most this
  /// many distinct values in Dm (e.g. `type`-like discriminators).
  size_t max_condition_values = 8;
  /// Pattern-conditioned FDs must hold on a partition covering at least
  /// this many rows.
  size_t min_condition_rows = 4;
};

/// \brief One discovered dependency, before conversion to a rule.
struct MinedDependency {
  std::vector<AttrId> lhs;  ///< X (on Rm)
  AttrId rhs = 0;           ///< B (on Rm)
  /// Condition attribute/value; condition_attr == kNoCondition for exact
  /// FDs.
  static constexpr AttrId kNoCondition = AttrSet::kMaxAttrs;
  AttrId condition_attr = kNoCondition;
  Value condition_value;
  size_t support = 0;  ///< #distinct lhs keys witnessing the dependency

  bool IsConditional() const { return condition_attr != kNoCondition; }
  std::string ToString(const SchemaPtr& schema) const;
};

/// \brief Editing-rule miner over one master relation.
class RuleMiner {
 public:
  RuleMiner(const Relation& master, RuleMinerOptions options = {})
      : master_(&master), options_(options) {}

  /// Mines minimal dependencies: X -> B reported only if no proper subset
  /// of X determines B (under the same condition).
  std::vector<MinedDependency> MineDependencies() const;

  /// Converts dependencies into editing rules on (r, rm). Attributes are
  /// matched by NAME between r and rm; dependencies touching attributes
  /// absent from r are skipped. Conditional dependencies become rules
  /// with a constant pattern cell.
  Result<RuleSet> MineRules(const SchemaPtr& r, const SchemaPtr& rm) const;

 private:
  // Does X -> B hold on the rows in `rows` with at least min_support
  // distinct keys? Fills *support.
  bool HoldsOn(const std::vector<size_t>& rows,
               const std::vector<AttrId>& x, AttrId b,
               size_t* support) const;

  const Relation* master_;
  RuleMinerOptions options_;
};

}  // namespace certfix

#endif  // CERTFIX_MINING_RULE_MINER_H_
