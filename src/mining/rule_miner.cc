#include "mining/rule_miner.h"

#include <map>
#include <unordered_map>

namespace certfix {

std::string MinedDependency::ToString(const SchemaPtr& schema) const {
  std::string out = "(";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ",";
    out += schema->attr_name(lhs[i]);
  }
  out += ") -> " + schema->attr_name(rhs);
  if (IsConditional()) {
    out += " when " + schema->attr_name(condition_attr) + "=" +
           condition_value.ToString();
  }
  out += " [support " + std::to_string(support) + "]";
  return out;
}

bool RuleMiner::HoldsOn(const std::vector<size_t>& rows,
                        const std::vector<AttrId>& x, AttrId b,
                        size_t* support) const {
  // Keys and the B agreement check are pool ids — one relation, one pool.
  // contract-lint: allow(idkey-map) one-shot mining scan, not a probe path
  std::unordered_map<IdKey, ValueId, IdKeyHash> seen;
  IdKey key(x.size());
  for (size_t row : rows) {
    for (size_t k = 0; k < x.size(); ++k) key[k] = master_->CellId(row, x[k]);
    ValueId vb = master_->CellId(row, b);
    auto [it, inserted] = seen.emplace(key, vb);
    if (!inserted && it->second != vb) return false;
  }
  *support = seen.size();
  return seen.size() >= options_.min_support;
}

std::vector<MinedDependency> RuleMiner::MineDependencies() const {
  std::vector<MinedDependency> out;
  if (master_->empty()) return out;
  const SchemaPtr& schema = master_->schema();
  size_t n = schema->num_attrs();

  std::vector<size_t> all_rows(master_->size());
  for (size_t i = 0; i < master_->size(); ++i) all_rows[i] = i;

  // Candidate lhs lists of size 1..max_lhs in lexicographic order; a
  // found (X -> B) suppresses supersets of X for the same B.
  std::vector<std::vector<AttrId>> candidates;
  for (AttrId a = 0; a < n; ++a) candidates.push_back({a});
  if (options_.max_lhs >= 2) {
    for (AttrId a = 0; a < n; ++a) {
      for (AttrId b = a + 1; b < n; ++b) candidates.push_back({a, b});
    }
  }

  // Exact FDs.
  std::map<AttrId, std::vector<std::vector<AttrId>>> found;  // per rhs
  auto subsumed = [&](const std::vector<AttrId>& x, AttrId b) {
    AttrSet x_set = AttrSet::FromVector(x);
    for (const std::vector<AttrId>& prev : found[b]) {
      if (AttrSet::FromVector(prev).SubsetOf(x_set)) return true;
    }
    return false;
  };

  for (const std::vector<AttrId>& x : candidates) {
    AttrSet x_set = AttrSet::FromVector(x);
    for (AttrId b = 0; b < n; ++b) {
      if (x_set.Contains(b)) continue;
      if (subsumed(x, b)) continue;
      size_t support = 0;
      if (HoldsOn(all_rows, x, b, &support)) {
        found[b].push_back(x);
        MinedDependency dep;
        dep.lhs = x;
        dep.rhs = b;
        dep.support = support;
        out.push_back(std::move(dep));
      }
    }
  }

  if (!options_.mine_conditional) return out;

  // Conditional dependencies: for each low-cardinality attribute C and
  // value v, mine X -> B on the partition sigma_{C=v}(Dm), skipping
  // dependencies already exact (they hold on every partition trivially).
  for (AttrId cond = 0; cond < n; ++cond) {
    std::vector<Value> values = master_->DistinctValues(cond);
    if (values.size() > options_.max_condition_values) continue;
    for (const Value& v : values) {
      // DistinctValues drew v from the pool, so the id probe always hits;
      // the row scan is a single integer compare per row.
      ValueId vid = master_->pool()->Find(v);
      const IdColumn& col = master_->Column(cond);
      std::vector<size_t> rows;
      for (size_t i = 0; i < master_->size(); ++i) {
        if (col[i] == vid) rows.push_back(i);
      }
      if (rows.size() < options_.min_condition_rows) continue;
      for (const std::vector<AttrId>& x : candidates) {
        AttrSet x_set = AttrSet::FromVector(x);
        if (x_set.Contains(cond)) continue;
        for (AttrId b = 0; b < n; ++b) {
          if (b == cond || x_set.Contains(b)) continue;
          if (subsumed(x, b)) continue;  // exact FD subsumes conditional
          size_t support = 0;
          if (HoldsOn(rows, x, b, &support)) {
            MinedDependency dep;
            dep.lhs = x;
            dep.rhs = b;
            dep.condition_attr = cond;
            dep.condition_value = v;
            dep.support = support;
            out.push_back(std::move(dep));
          }
        }
      }
    }
  }
  return out;
}

Result<RuleSet> RuleMiner::MineRules(const SchemaPtr& r,
                                     const SchemaPtr& rm) const {
  if (!rm->Equals(*master_->schema())) {
    return Status::InvalidArgument(
        "rm does not match the mined master relation's schema");
  }
  RuleSet rules(r, rm);
  size_t counter = 0;
  for (const MinedDependency& dep : MineDependencies()) {
    // Attribute correspondence by name; skip unmappable dependencies.
    std::vector<AttrId> x_r;
    bool mappable = true;
    for (AttrId a : dep.lhs) {
      const std::string& name = rm->attr_name(a);
      if (!r->Has(name)) {
        mappable = false;
        break;
      }
      x_r.push_back(*r->IndexOf(name));
    }
    if (!mappable || !r->Has(rm->attr_name(dep.rhs))) continue;
    AttrId b_r = *r->IndexOf(rm->attr_name(dep.rhs));
    PatternTuple tp(r);
    if (dep.IsConditional()) {
      const std::string& cname = rm->attr_name(dep.condition_attr);
      if (!r->Has(cname)) continue;
      tp.SetConst(*r->IndexOf(cname), dep.condition_value);
    }
    Result<EditingRule> rule = EditingRule::Make(
        "mined" + std::to_string(counter++), r, rm, x_r, dep.lhs, b_r,
        dep.rhs, std::move(tp));
    if (!rule.ok()) continue;  // e.g. rhs inside lhs after mapping
    CERTFIX_RETURN_NOT_OK(rules.Add(std::move(rule).ValueOrDie()));
  }
  return rules;
}

}  // namespace certfix
