#include "repair/equivalence.h"

namespace certfix {

CellPartition::CellPartition(size_t num_tuples, size_t num_attrs)
    : num_tuples_(num_tuples), num_attrs_(num_attrs) {
  size_t n = num_tuples * num_attrs;
  parent_.resize(n);
  rank_.assign(n, 0);
  pin_.resize(n);
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t CellPartition::FindId(size_t id) {
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];
    id = parent_[id];
  }
  return id;
}

size_t CellPartition::Find(Cell c) { return FindId(Id(c)); }

bool CellPartition::Union(Cell a, Cell b) {
  size_t ra = FindId(Id(a));
  size_t rb = FindId(Id(b));
  if (ra == rb) return true;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  // Combine pins; clash when both set and different.
  bool ok = true;
  if (pin_[rb].has_value()) {
    if (!pin_[ra].has_value()) {
      pin_[ra] = pin_[rb];
    } else if (*pin_[ra] != *pin_[rb]) {
      ok = false;
    }
  }
  pin_[rb].reset();
  return ok;
}

bool CellPartition::Pin(Cell c, Value v) {
  size_t r = FindId(Id(c));
  if (pin_[r].has_value()) return *pin_[r] == v;
  pin_[r] = std::move(v);
  return true;
}

std::optional<Value> CellPartition::PinOf(Cell c) {
  return pin_[FindId(Id(c))];
}

std::vector<std::vector<Cell>> CellPartition::Classes() {
  std::vector<std::vector<Cell>> out;
  std::vector<long> root_to_class(parent_.size(), -1);
  for (size_t t = 0; t < num_tuples_; ++t) {
    for (AttrId a = 0; a < num_attrs_; ++a) {
      Cell c{t, a};
      size_t r = FindId(Id(c));
      if (root_to_class[r] < 0) {
        root_to_class[r] = static_cast<long>(out.size());
        out.emplace_back();
      }
      out[static_cast<size_t>(root_to_class[r])].push_back(c);
    }
  }
  return out;
}

}  // namespace certfix
