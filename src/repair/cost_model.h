/// \file cost_model.h
/// \brief The repair cost model of [Cong+ 07]: weighted, distance-scaled
/// attribute modifications.

#ifndef CERTFIX_REPAIR_COST_MODEL_H_
#define CERTFIX_REPAIR_COST_MODEL_H_

#include <vector>

#include "relational/relation.h"

namespace certfix {

/// \brief cost(v -> v') = w(t, A) * dis(v, v'), with dis the normalized
/// Levenshtein distance on renderings (1 when either side is null and the
/// other is not). Weights default to 1 and may be set per cell to model
/// attribute confidence.
class CostModel {
 public:
  CostModel(size_t num_tuples, size_t num_attrs)
      : num_attrs_(num_attrs), weights_(num_tuples * num_attrs, 1.0) {}

  void SetWeight(size_t tuple, AttrId attr, double w) {
    weights_[tuple * num_attrs_ + attr] = w;
  }
  double Weight(size_t tuple, AttrId attr) const {
    return weights_[tuple * num_attrs_ + attr];
  }

  /// Distance between two cell values.
  static double Distance(const Value& from, const Value& to);

  /// Cost of changing rel[tuple][attr] to `target`.
  double ChangeCost(const Relation& rel, size_t tuple, AttrId attr,
                    const Value& target) const {
    return Weight(tuple, attr) * Distance(rel.Cell(tuple, attr), target);
  }

 private:
  size_t num_attrs_;
  std::vector<double> weights_;
};

}  // namespace certfix

#endif  // CERTFIX_REPAIR_COST_MODEL_H_
