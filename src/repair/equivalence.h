/// \file equivalence.h
/// \brief Union-find over cells (tuple, attribute), the backbone of the
/// equivalence-class repair technique of IncRep [Cong+ 07, Bohannon+ 05].

#ifndef CERTFIX_REPAIR_EQUIVALENCE_H_
#define CERTFIX_REPAIR_EQUIVALENCE_H_

#include <optional>
#include <vector>

#include "relational/attr_set.h"
#include "relational/value.h"

namespace certfix {

/// \brief A cell identifies one attribute of one tuple.
struct Cell {
  size_t tuple = 0;
  AttrId attr = 0;
  bool operator==(const Cell& o) const {
    return tuple == o.tuple && attr == o.attr;
  }
};

/// \brief Union-find over the cells of a |D| x |R| grid; classes may be
/// pinned to a target constant (constant-CFD resolution). Merging two
/// classes pinned to different constants is reported as a clash so the
/// repair loop can fall back to cost-based resolution.
class CellPartition {
 public:
  CellPartition(size_t num_tuples, size_t num_attrs);

  size_t Find(Cell c);
  /// Merges the classes of a and b; returns false on a pin clash (classes
  /// stay merged, keeping the first pin).
  bool Union(Cell a, Cell b);

  /// Pins the class of c to value v; false on clash with an existing
  /// different pin (pin unchanged).
  bool Pin(Cell c, Value v);
  /// The pinned target of c's class, if any.
  std::optional<Value> PinOf(Cell c);

  /// All cells grouped by class representative (for resolution).
  std::vector<std::vector<Cell>> Classes();

  size_t num_tuples() const { return num_tuples_; }
  size_t num_attrs() const { return num_attrs_; }

 private:
  size_t Id(const Cell& c) const { return c.tuple * num_attrs_ + c.attr; }
  size_t FindId(size_t id);

  size_t num_tuples_;
  size_t num_attrs_;
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  std::vector<std::optional<Value>> pin_;  // indexed by root id
};

}  // namespace certfix

#endif  // CERTFIX_REPAIR_EQUIVALENCE_H_
