#include "repair/increp.h"

#include <map>

#include "util/logging.h"

namespace certfix {

size_t IncRep::Pass(Relation* rel, const CostModel& costs, double* cost_out,
                    std::vector<std::optional<Value>>* sticky) const {
  std::vector<Violation> violations = DetectViolations(*cfds_, *rel);
  if (violations.empty()) return 0;

  size_t num_attrs = rel->schema()->num_attrs();
  CellPartition partition(rel->size(), num_attrs);
  for (const Violation& v : violations) {
    const Cfd& cfd = cfds_->at(v.cfd_idx);
    Cell a{v.tuple_a, v.attr};
    if (v.tuple_b < 0) {
      // Constant CFD: the dirty cell must become the pattern constant.
      Value target = cfd.pattern().Get(cfd.rhs()).value();
      (*sticky)[v.tuple_a * num_attrs + v.attr] = target;
      partition.Pin(a, std::move(target));
    } else {
      Cell b{static_cast<size_t>(v.tuple_b), v.attr};
      partition.Union(a, b);
      PatternValue pb = cfd.pattern().Get(cfd.rhs());
      if (pb.is_const()) partition.Pin(a, pb.value());
    }
  }
  // Re-apply pins remembered from earlier passes so a variable-CFD merge
  // cannot revert a constant-CFD repair.
  for (size_t t = 0; t < rel->size(); ++t) {
    for (AttrId a = 0; a < num_attrs; ++a) {
      const std::optional<Value>& pin = (*sticky)[t * num_attrs + a];
      if (pin.has_value()) partition.Pin(Cell{t, a}, *pin);
    }
  }

  size_t changed = 0;
  for (const std::vector<Cell>& cls : partition.Classes()) {
    if (cls.size() == 1 && !partition.PinOf(cls[0]).has_value()) continue;

    // Target: the pinned constant if any, else the class member value with
    // minimal total change cost over the class.
    Value target;
    std::optional<Value> pin = partition.PinOf(cls[0]);
    if (pin.has_value()) {
      target = *pin;
    } else {
      std::map<std::string, std::pair<Value, double>> candidates;
      for (const Cell& c : cls) {
        const Value& v = rel->Cell(c.tuple, c.attr);
        candidates.emplace(v.ToString(), std::make_pair(v, 0.0));
      }
      for (auto& [key, entry] : candidates) {
        (void)key;
        double total = 0.0;
        for (const Cell& c : cls) {
          total += costs.ChangeCost(*rel, c.tuple, c.attr, entry.first);
        }
        entry.second = total;
      }
      double best = -1.0;
      for (const auto& [key, entry] : candidates) {
        (void)key;
        if (best < 0 || entry.second < best) {
          best = entry.second;
          target = entry.first;
        }
      }
    }

    for (const Cell& c : cls) {
      if (rel->Cell(c.tuple, c.attr) != target) {
        *cost_out += costs.ChangeCost(*rel, c.tuple, c.attr, target);
        rel->SetCell(c.tuple, c.attr, target);
        ++changed;
      }
    }
  }
  return changed;
}

RepairResult IncRep::Repair(const Relation& dirty) const {
  CostModel costs(dirty.size(), dirty.schema()->num_attrs());
  return Repair(dirty, costs);
}

RepairResult IncRep::Repair(const Relation& dirty,
                            const CostModel& costs) const {
  RepairResult result;
  result.repaired = dirty;
  std::vector<std::optional<Value>> sticky(
      dirty.size() * dirty.schema()->num_attrs());
  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    ++result.passes;
    size_t changed =
        Pass(&result.repaired, costs, &result.total_cost, &sticky);
    result.cells_changed += changed;
    if (options_.verbose) {
      CERTFIX_LOG(kInfo) << "IncRep pass " << pass << ": " << changed
                         << " cells changed";
    }
    if (changed == 0) break;
  }
  result.remaining_violations = CountViolations(*cfds_, result.repaired);
  return result;
}

}  // namespace certfix
