/// \file increp.h
/// \brief IncRep: the CFD-based heuristic repairing baseline of Cong et
/// al., "Improving Data Quality: Consistency and Accuracy" (VLDB 2007) —
/// the comparator used in Exp-1(7) of the paper.
///
/// Given a dirty relation D and a CFD set, IncRep produces a repair D'
/// satisfying the CFDs while (heuristically) minimizing the total change
/// cost (cost_model.h). Constant-CFD violations pin the violating cell's
/// equivalence class to the pattern constant; variable-CFD violations
/// merge the two B cells' classes; each class is resolved to the value
/// minimizing the summed change cost over its cells. Passes repeat until
/// no violation remains or the pass budget is exhausted.

#ifndef CERTFIX_REPAIR_INCREP_H_
#define CERTFIX_REPAIR_INCREP_H_

#include "cfd/violation.h"
#include "repair/cost_model.h"
#include "repair/equivalence.h"

namespace certfix {

/// \brief IncRep configuration.
struct IncRepOptions {
  size_t max_passes = 8;     ///< repair/detect iterations
  bool verbose = false;
};

/// \brief Result of a repair run.
struct RepairResult {
  Relation repaired;
  size_t passes = 0;
  size_t cells_changed = 0;
  size_t remaining_violations = 0;
  double total_cost = 0.0;
};

/// \brief The IncRep repair engine.
class IncRep {
 public:
  IncRep(const CfdSet& cfds, IncRepOptions options = {})
      : cfds_(&cfds), options_(options) {}

  /// Repairs a copy of `dirty`; weights default to 1 per cell.
  RepairResult Repair(const Relation& dirty) const;
  RepairResult Repair(const Relation& dirty, const CostModel& costs) const;

 private:
  // One pass: detect violations, build classes, resolve. Returns the
  // number of cells changed. `sticky` carries constant-CFD target pins
  // across passes so a later variable-CFD merge cannot undo them (which
  // would oscillate forever).
  size_t Pass(Relation* rel, const CostModel& costs, double* cost_out,
              std::vector<std::optional<Value>>* sticky) const;

  const CfdSet* cfds_;
  IncRepOptions options_;
};

}  // namespace certfix

#endif  // CERTFIX_REPAIR_INCREP_H_
