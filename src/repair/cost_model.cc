#include "repair/cost_model.h"

#include "util/edit_distance.h"

namespace certfix {

double CostModel::Distance(const Value& from, const Value& to) {
  if (from == to) return 0.0;
  if (from.is_null() || to.is_null()) return 1.0;
  return NormalizedEditDistance(from.ToString(), to.ToString());
}

}  // namespace certfix
