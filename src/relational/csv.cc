#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace certfix {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::ParseError("unexpected quote mid-field at column " +
                                  std::to_string(i));
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings.
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quote) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<Relation> ReadCsv(SchemaPtr schema, std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty CSV input: missing header");
  }
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> header,
                           ParseCsvLine(line));
  if (header.size() != schema->num_attrs()) {
    return Status::ParseError("CSV header arity " +
                              std::to_string(header.size()) +
                              " != schema arity " +
                              std::to_string(schema->num_attrs()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (std::string(Trim(header[i])) != schema->attr_name(static_cast<AttrId>(i))) {
      return Status::ParseError("CSV header column " + std::to_string(i) +
                                " is '" + header[i] + "', expected '" +
                                schema->attr_name(static_cast<AttrId>(i)) + "'");
    }
  }
  Relation rel(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             ParseCsvLine(line));
    Status st = rel.AppendStrings(fields);
    if (!st.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
  }
  return rel;
}

Result<Relation> ReadCsvFile(SchemaPtr schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return ReadCsv(std::move(schema), in);
}

Result<Relation> ReadCsvInferSchema(const std::string& name,
                                    std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::ParseError("empty CSV input: missing header");
  }
  CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                           ParseCsvLine(header));
  std::vector<std::string> trimmed;
  for (const std::string& c : columns) {
    trimmed.emplace_back(Trim(c));
    if (trimmed.back().empty()) {
      return Status::ParseError("empty column name in CSV header");
    }
  }
  SchemaPtr schema = Schema::Make(name, trimmed);
  Relation rel(schema);
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    CERTFIX_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             ParseCsvLine(line));
    Status st = rel.AppendStrings(fields);
    if (!st.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
  }
  return rel;
}

Result<Relation> ReadCsvFileInferSchema(const std::string& name,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return ReadCsvInferSchema(name, in);
}

Status WriteCsv(const Relation& rel, std::ostream& out) {
  std::vector<std::string> header;
  for (size_t i = 0; i < rel.schema()->num_attrs(); ++i) {
    header.push_back(rel.schema()->attr_name(static_cast<AttrId>(i)));
  }
  out << FormatCsvLine(header) << "\n";
  for (const Tuple& t : rel) {
    std::vector<std::string> fields;
    fields.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(static_cast<AttrId>(i));
      fields.push_back(v.is_null() ? "" : v.ToString());
    }
    out << FormatCsvLine(fields) << "\n";
  }
  return Status::OK();
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  return WriteCsv(rel, out);
}

}  // namespace certfix
