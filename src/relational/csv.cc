#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "relational/csv_stream.h"
#include "telemetry/metrics.h"
#include "util/string_util.h"

namespace certfix {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        // Delimiters, CR, and LF are all literal inside quotes (callers
        // passing a full logical record get RFC-4180 semantics).
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::ParseError("unexpected quote mid-field at column " +
                                  std::to_string(i));
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF endings (and stray bare CR) outside quotes.
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quote) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<Relation> ReadCsv(SchemaPtr schema, std::istream& in) {
  CsvTupleSource source(schema, in);
  Relation rel(std::move(schema));
  std::vector<std::string> fields;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, source.Next(&fields));
    if (!got) break;
    Status st = rel.AppendStrings(fields);
    if (!st.ok()) {
      return Status::ParseError("line " +
                                std::to_string(source.record_line()) + ": " +
                                st.message());
    }
  }
  CERTFIX_TL_COUNTER("csv.rows_read")->Add(rel.size());
  return rel;
}

Result<Relation> ReadCsvFile(SchemaPtr schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return ReadCsv(std::move(schema), in);
}

Result<Relation> ReadCsvInferSchema(const std::string& name,
                                    std::istream& in) {
  CsvRecordReader reader(in);
  std::vector<std::string> columns;
  CERTFIX_ASSIGN_OR_RETURN(bool got_header, reader.Next(&columns));
  if (!got_header) {
    return Status::ParseError("empty CSV input: missing header");
  }
  std::vector<std::string> trimmed;
  for (const std::string& c : columns) {
    trimmed.emplace_back(Trim(c));
    if (trimmed.back().empty()) {
      return Status::ParseError("empty column name in CSV header");
    }
  }
  SchemaPtr schema = Schema::Make(name, trimmed);
  Relation rel(schema);
  std::vector<std::string> fields;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, reader.Next(&fields));
    if (!got) break;
    Status st = rel.AppendStrings(fields);
    if (!st.ok()) {
      return Status::ParseError("line " +
                                std::to_string(reader.record_line()) + ": " +
                                st.message());
    }
  }
  return rel;
}

Result<Relation> ReadCsvFileInferSchema(const std::string& name,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  return ReadCsvInferSchema(name, in);
}

Status WriteCsv(const Relation& rel, std::ostream& out) {
  std::vector<std::string> header;
  for (size_t i = 0; i < rel.schema()->num_attrs(); ++i) {
    header.push_back(rel.schema()->attr_name(static_cast<AttrId>(i)));
  }
  out << FormatCsvLine(header) << "\n";
  for (const Tuple& t : rel) {
    std::vector<std::string> fields;
    fields.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(static_cast<AttrId>(i));
      fields.push_back(v.is_null() ? "" : v.ToString());
    }
    out << FormatCsvLine(fields) << "\n";
  }
  return Status::OK();
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  return WriteCsv(rel, out);
}

}  // namespace certfix
