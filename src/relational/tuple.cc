#include "relational/tuple.h"

namespace certfix {

Result<Tuple> Tuple::FromStrings(SchemaPtr schema,
                                 const std::vector<std::string>& fields) {
  if (fields.size() != schema->num_attrs()) {
    return Status::InvalidArgument(
        "field count " + std::to_string(fields.size()) +
        " does not match schema arity " +
        std::to_string(schema->num_attrs()));
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    values.push_back(
        Value::Parse(fields[i], schema->attr_type(static_cast<AttrId>(i))));
  }
  return Tuple(std::move(schema), std::move(values));
}

std::vector<Value> Tuple::Project(const std::vector<AttrId>& attrs) const {
  std::vector<Value> out;
  out.reserve(attrs.size());
  for (AttrId a : attrs) out.push_back(values_[a]);
  return out;
}

bool Tuple::AgreesOn(const std::vector<AttrId>& x, const Tuple& other,
                     const std::vector<AttrId>& y) const {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (values_[x[i]] != other.values_[y[i]]) return false;
  }
  return true;
}

size_t Tuple::DiffCount(const Tuple& other) const {
  size_t n = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) ++n;
  }
  return n;
}

std::vector<AttrId> Tuple::DiffAttrs(const Tuple& other) const {
  std::vector<AttrId> out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) out.push_back(static_cast<AttrId>(i));
  }
  return out;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

namespace {
constexpr char kUnitSep = '\x1f';
}

std::string ProjectKey(const Tuple& t, const std::vector<AttrId>& attrs) {
  std::string key;
  for (AttrId a : attrs) {
    key += t.at(a).ToString();
    key += kUnitSep;
  }
  return key;
}

std::string ValuesKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.ToString();
    key += kUnitSep;
  }
  return key;
}

}  // namespace certfix
