#include "relational/tuple.h"

namespace certfix {

namespace {
const Value& NullValue() {
  static const Value kNull;
  return kNull;
}
}  // namespace

Tuple::Tuple(SchemaPtr schema, std::vector<Value> values)
    : schema_(std::move(schema)) {
  ids_.reserve(values.size());
  for (Value& v : values) {
    if (v.is_null()) {
      ids_.push_back(kNullValueId);
    } else {
      EnsurePool();
      ids_.push_back(pool_->Intern(v));
    }
  }
}

Result<Tuple> Tuple::FromStrings(SchemaPtr schema,
                                 const std::vector<std::string>& fields) {
  if (fields.size() != schema->num_attrs()) {
    return Status::InvalidArgument(
        "field count " + std::to_string(fields.size()) +
        " does not match schema arity " +
        std::to_string(schema->num_attrs()));
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    values.push_back(
        Value::Parse(fields[i], schema->attr_type(static_cast<AttrId>(i))));
  }
  return Tuple(std::move(schema), std::move(values));
}

const Value& Tuple::at(AttrId id) const {
  ValueId vid = ids_[id];
  if (vid == kNullValueId || pool_ == nullptr) return NullValue();
  return pool_->value(vid);
}

void Tuple::Set(AttrId id, Value v) & {
  if (v.is_null()) {
    ids_[id] = kNullValueId;
    return;
  }
  EnsurePool();
  ids_[id] = pool_->Intern(v);
}

void Tuple::EnsurePool() {
  if (pool_ == nullptr) pool_ = std::make_shared<ValuePool>();
}

Tuple Tuple::RebasedTo(const PoolPtr& pool) const {
  Tuple out;
  out.schema_ = schema_;
  out.pool_ = pool;
  if (pool_ == pool) {
    out.ids_ = ids_;
    return out;
  }
  out.ids_.reserve(ids_.size());
  for (ValueId id : ids_) {
    out.ids_.push_back(id == kNullValueId || pool_ == nullptr
                           ? kNullValueId
                           : pool->Intern(pool_->value(id)));
  }
  return out;
}

std::vector<Value> Tuple::Project(const std::vector<AttrId>& attrs) const {
  std::vector<Value> out;
  out.reserve(attrs.size());
  for (AttrId a : attrs) out.push_back(at(a));
  return out;
}

bool Tuple::AgreesOn(const std::vector<AttrId>& x, const Tuple& other,
                     const std::vector<AttrId>& y) const {
  if (x.size() != y.size()) return false;
  const bool same_pool = pool_ == other.pool_;
  for (size_t i = 0; i < x.size(); ++i) {
    if (same_pool ? ids_[x[i]] != other.ids_[y[i]]
                  : at(x[i]) != other.at(y[i])) {
      return false;
    }
  }
  return true;
}

size_t Tuple::DiffCount(const Tuple& other) const {
  const bool same_pool = pool_ == other.pool_;
  size_t n = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    AttrId a = static_cast<AttrId>(i);
    if (same_pool ? ids_[i] != other.ids_[i] : at(a) != other.at(a)) ++n;
  }
  return n;
}

std::vector<AttrId> Tuple::DiffAttrs(const Tuple& other) const {
  const bool same_pool = pool_ == other.pool_;
  std::vector<AttrId> out;
  for (size_t i = 0; i < ids_.size(); ++i) {
    AttrId a = static_cast<AttrId>(i);
    if (same_pool ? ids_[i] != other.ids_[i] : at(a) != other.at(a)) {
      out.push_back(a);
    }
  }
  return out;
}

bool Tuple::operator==(const Tuple& other) const {
  if (pool_ == other.pool_) return ids_ == other.ids_;
  if (ids_.size() != other.ids_.size()) return false;
  for (size_t i = 0; i < ids_.size(); ++i) {
    AttrId a = static_cast<AttrId>(i);
    if (at(a) != other.at(a)) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += at(static_cast<AttrId>(i)).ToString();
  }
  out += ")";
  return out;
}

std::string ProjectKey(const Tuple& t, const std::vector<AttrId>& attrs) {
  std::string key;
  for (AttrId a : attrs) {
    key += t.at(a).ToString();
    key += kKeyUnitSep;
  }
  return key;
}

bool ProjectIds(const Tuple& t, const std::vector<AttrId>& attrs,
                const ValuePool* target, PoolBridge* bridge, IdKey* out) {
  out->resize(attrs.size());
  const ValuePool* src = t.pool().get();
  const bool same = src == target;
  const bool bridged = !same && bridge != nullptr && bridge->Covers(src, target);
  for (size_t k = 0; k < attrs.size(); ++k) {
    ValueId id = t.id_at(attrs[k]);
    if (same) {
      (*out)[k] = id;
      continue;
    }
    ValueId mapped;
    if (bridged) {
      mapped = bridge->Translate(id);
    } else if (id == kNullValueId) {
      mapped = kNullValueId;
    } else {
      mapped = target->Find(t.at(attrs[k]));
    }
    if (mapped == kInvalidValueId) return false;
    (*out)[k] = mapped;
  }
  return true;
}

}  // namespace certfix
