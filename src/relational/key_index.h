/// \file key_index.h
/// \brief Hash index on a projection of a relation, keyed by interned ids.

#ifndef CERTFIX_RELATIONAL_KEY_INDEX_H_
#define CERTFIX_RELATIONAL_KEY_INDEX_H_

#include <unordered_map>
#include <vector>

#include "relational/relation.h"

namespace certfix {

/// \brief Index mapping tm[Xm] keys to master tuple positions.
///
/// TransFix relies on constant-time master lookups ("a hash table that
/// stores tm[Xm] as a key", Sect. 5.1); one KeyIndex per distinct Xm list
/// is built by MasterIndex.
///
/// Keys are IdKeys in the indexed relation's pool space, so building the
/// index scans id columns (no string rendering), and probes by tuples
/// sharing the pool are pure integer hashing. Probes from another pool
/// translate value-by-value — through a caller-provided PoolBridge when
/// available (amortizing each distinct value to one hash), else via
/// ValuePool::Find; a probe value absent from the indexed pool answers
/// "no rows" without touching the map.
class KeyIndex {
 public:
  KeyIndex() = default;
  /// Builds the index over `rel` keyed by the projection on `attrs`.
  KeyIndex(const Relation& rel, std::vector<AttrId> attrs);

  /// Row positions whose projection equals `values` (list order matters).
  const std::vector<size_t>& Lookup(const std::vector<Value>& values) const;

  /// Row positions matching the projection of `t` (a tuple over another
  /// schema) on `probe_attrs`; |probe_attrs| must equal the key arity.
  /// `bridge`, when given, must translate t's pool into the indexed pool.
  const std::vector<size_t>& LookupTuple(const Tuple& t,
                                         const std::vector<AttrId>& probe_attrs,
                                         PoolBridge* bridge = nullptr) const;

  const std::vector<AttrId>& key_attrs() const { return attrs_; }
  size_t num_keys() const { return map_.size(); }
  /// The pool the keys are interned in (the indexed relation's pool).
  const PoolPtr& pool() const { return pool_; }

 private:
  std::vector<AttrId> attrs_;
  PoolPtr pool_;
  std::unordered_map<IdKey, std::vector<size_t>, IdKeyHash> map_;
  static const std::vector<size_t> kEmpty;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_KEY_INDEX_H_
