/// \file key_index.h
/// \brief Hash index on a projection of a relation.

#ifndef CERTFIX_RELATIONAL_KEY_INDEX_H_
#define CERTFIX_RELATIONAL_KEY_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"

namespace certfix {

/// \brief Index mapping tm[Xm] keys to master tuple positions.
///
/// TransFix relies on constant-time master lookups ("a hash table that
/// stores tm[Xm] as a key", Sect. 5.1); one KeyIndex per distinct Xm list
/// is built by MasterIndex.
class KeyIndex {
 public:
  KeyIndex() = default;
  /// Builds the index over `rel` keyed by the projection on `attrs`.
  KeyIndex(const Relation& rel, std::vector<AttrId> attrs);

  /// Row positions whose projection equals `values` (list order matters).
  const std::vector<size_t>& Lookup(const std::vector<Value>& values) const;

  /// Row positions matching the projection of `t` (a tuple over another
  /// schema) on `probe_attrs`; |probe_attrs| must equal the key arity.
  const std::vector<size_t>& LookupTuple(
      const Tuple& t, const std::vector<AttrId>& probe_attrs) const;

  const std::vector<AttrId>& key_attrs() const { return attrs_; }
  size_t num_keys() const { return map_.size(); }

 private:
  std::vector<AttrId> attrs_;
  std::unordered_map<std::string, std::vector<size_t>> map_;
  static const std::vector<size_t> kEmpty;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_KEY_INDEX_H_
