#include "relational/multi_master.h"

#include <set>

namespace certfix {

Result<MultiMaster> MultiMaster::Combine(
    const std::vector<std::pair<std::string, const Relation*>>& sources) {
  if (sources.empty()) {
    return Status::InvalidArgument("no master relations to combine");
  }
  std::set<std::string> names;
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"id", DataType::kInt});
  for (const auto& [name, rel] : sources) {
    if (name.empty() || !names.insert(name).second) {
      return Status::InvalidArgument("duplicate or empty source name: " +
                                     name);
    }
    for (size_t a = 0; a < rel->schema()->num_attrs(); ++a) {
      attrs.push_back(Attribute{
          name + "." + rel->schema()->attr_name(static_cast<AttrId>(a)),
          rel->schema()->attr_type(static_cast<AttrId>(a))});
    }
  }
  if (attrs.size() > AttrSet::kMaxAttrs) {
    return Status::OutOfRange("combined master schema exceeds " +
                              std::to_string(AttrSet::kMaxAttrs) +
                              " attributes");
  }

  MultiMaster out;
  out.schema_ = Schema::Make("MultiMaster", std::move(attrs));
  out.relation_ = Relation(out.schema_);
  size_t offset = 1;
  for (size_t i = 0; i < sources.size(); ++i) {
    const Relation& rel = *sources[i].second;
    out.source_names_.push_back(sources[i].first);
    for (const Tuple& src : rel) {
      // Bound to the combined relation's pool so cells intern once.
      Tuple row = out.relation_.NewTuple();
      row.Set(0, Value::Int(static_cast<int64_t>(i)));
      for (size_t a = 0; a < src.size(); ++a) {
        row.Set(static_cast<AttrId>(offset + a), src.at(static_cast<AttrId>(a)));
      }
      Status st = out.relation_.Append(std::move(row));
      CERTFIX_RETURN_NOT_OK(st);
    }
    offset += rel.schema()->num_attrs();
  }
  return out;
}

Result<AttrId> MultiMaster::Resolve(const std::string& source_name,
                                    const std::string& attr) const {
  return schema_->IndexOf(source_name + "." + attr);
}

}  // namespace certfix
