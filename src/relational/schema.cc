#include "relational/schema.h"

#include <cassert>

namespace certfix {

Schema::Schema(std::string name, std::vector<Attribute> attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)) {
  assert(attrs_.size() <= AttrSet::kMaxAttrs);
  for (size_t i = 0; i < attrs_.size(); ++i) {
    index_.emplace(attrs_[i].name, static_cast<AttrId>(i));
  }
}

std::shared_ptr<Schema> Schema::Make(std::string name,
                                     const std::vector<std::string>& attrs) {
  std::vector<Attribute> list;
  list.reserve(attrs.size());
  for (const auto& a : attrs) list.push_back(Attribute{a, DataType::kString});
  return std::make_shared<Schema>(std::move(name), std::move(list));
}

std::shared_ptr<Schema> Schema::Make(std::string name,
                                     std::vector<Attribute> attrs) {
  return std::make_shared<Schema>(std::move(name), std::move(attrs));
}

Result<AttrId> Schema::IndexOf(const std::string& attr_name) const {
  auto it = index_.find(attr_name);
  if (it == index_.end()) {
    return Status::NotFound("schema " + name_ + " has no attribute '" +
                            attr_name + "'");
  }
  return it->second;
}

bool Schema::Has(const std::string& attr_name) const {
  return index_.count(attr_name) > 0;
}

Result<std::vector<AttrId>> Schema::Resolve(
    const std::vector<std::string>& names) const {
  std::vector<AttrId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) {
    CERTFIX_ASSIGN_OR_RETURN(AttrId id, IndexOf(n));
    ids.push_back(id);
  }
  return ids;
}

std::string Schema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ":";
    out += DataTypeName(attrs_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (name_ != other.name_ || attrs_.size() != other.attrs_.size()) {
    return false;
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].type != other.attrs_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace certfix
