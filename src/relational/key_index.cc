#include "relational/key_index.h"

namespace certfix {

const std::vector<size_t> KeyIndex::kEmpty;

KeyIndex::KeyIndex(const Relation& rel, std::vector<AttrId> attrs)
    : attrs_(std::move(attrs)) {
  for (size_t i = 0; i < rel.size(); ++i) {
    map_[ProjectKey(rel.at(i), attrs_)].push_back(i);
  }
}

const std::vector<size_t>& KeyIndex::Lookup(
    const std::vector<Value>& values) const {
  auto it = map_.find(ValuesKey(values));
  return it == map_.end() ? kEmpty : it->second;
}

const std::vector<size_t>& KeyIndex::LookupTuple(
    const Tuple& t, const std::vector<AttrId>& probe_attrs) const {
  auto it = map_.find(ProjectKey(t, probe_attrs));
  return it == map_.end() ? kEmpty : it->second;
}

}  // namespace certfix
