#include "relational/key_index.h"

namespace certfix {

const std::vector<size_t> KeyIndex::kEmpty;

KeyIndex::KeyIndex(const Relation& rel, std::vector<AttrId> attrs)
    : attrs_(std::move(attrs)), pool_(rel.pool()) {
  std::vector<const IdColumn*> cols;
  cols.reserve(attrs_.size());
  for (AttrId a : attrs_) cols.push_back(&rel.Column(a));
  IdKey key(attrs_.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    for (size_t k = 0; k < cols.size(); ++k) key[k] = (*cols[k])[i];
    map_[key].push_back(i);
  }
}

const std::vector<size_t>& KeyIndex::Lookup(
    const std::vector<Value>& values) const {
  if (pool_ == nullptr) return kEmpty;  // default-constructed index
  IdKey key(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    ValueId id = pool_->Find(values[k]);
    if (id == kInvalidValueId) return kEmpty;
    key[k] = id;
  }
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

const std::vector<size_t>& KeyIndex::LookupTuple(
    const Tuple& t, const std::vector<AttrId>& probe_attrs,
    PoolBridge* bridge) const {
  if (pool_ == nullptr) return kEmpty;  // default-constructed index
  // Probes run in tight saturation loops; a thread-local scratch key
  // keeps its capacity across calls so no probe allocates.
  thread_local IdKey key;
  if (!ProjectIds(t, probe_attrs, pool_.get(), bridge, &key)) return kEmpty;
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

}  // namespace certfix
