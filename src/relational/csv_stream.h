/// \file csv_stream.h
/// \brief Incremental CSV reading for the streaming repair engine (and,
/// since the batch loaders are built on it, for ReadCsv as well).
///
/// Unlike the line-oriented ParseCsvLine, CsvRecordReader consumes one
/// *logical record* at a time directly from the input stream, so RFC-4180
/// quoted fields may contain delimiters, quotes, CR, and record
/// separators (embedded newlines). CRLF and LF line endings are both
/// accepted; a CR inside a quoted field is preserved. Memory is bounded
/// by the size of one record — the reader never materializes the input.

#ifndef CERTFIX_RELATIONAL_CSV_STREAM_H_
#define CERTFIX_RELATIONAL_CSV_STREAM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/result.h"

namespace certfix {

/// \brief Pull-based reader of logical CSV records.
class CsvRecordReader {
 public:
  /// `in` must outlive the reader. Blank lines (outside quotes) are
  /// skipped, matching the historical ReadCsv behavior.
  explicit CsvRecordReader(std::istream& in) : in_(&in) {}

  CsvRecordReader(const CsvRecordReader&) = delete;
  CsvRecordReader& operator=(const CsvRecordReader&) = delete;

  /// Reads the next record into `*fields` (cleared first). Returns true
  /// when a record was read, false at clean end of input; ParseError on
  /// malformed quoting (e.g. a quote opened but never closed).
  Result<bool> Next(std::vector<std::string>* fields);

  /// Physical line number (1-based) where the last returned record
  /// started — for error messages over multi-line records.
  size_t record_line() const { return record_line_; }

 private:
  std::istream* in_;
  size_t line_ = 1;         ///< current physical line
  size_t record_line_ = 0;  ///< first line of the last record
};

/// \brief Schema-checked tuple source: the ingest side of the streaming
/// engine. Validates the header against the schema on the first Next()
/// call and then yields one field vector per record, ready for
/// StreamRepairEngine::PushStrings.
class CsvTupleSource {
 public:
  /// `in` must outlive the source.
  CsvTupleSource(SchemaPtr schema, std::istream& in)
      : schema_(std::move(schema)), reader_(in) {}

  /// Reads the next data record. Returns true on success, false at end
  /// of input; fails on a bad header, malformed quoting, or an arity
  /// mismatch (all tagged with the record's starting line).
  Result<bool> Next(std::vector<std::string>* fields);

  const SchemaPtr& schema() const { return schema_; }

  /// Starting line of the last record (see CsvRecordReader).
  size_t record_line() const { return reader_.record_line(); }

 private:
  SchemaPtr schema_;
  CsvRecordReader reader_;
  bool header_checked_ = false;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_CSV_STREAM_H_
