/// \file value.h
/// \brief Dynamically typed cell value: null, int64, double, or string.

#ifndef CERTFIX_RELATIONAL_VALUE_H_
#define CERTFIX_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "relational/data_type.h"

namespace certfix {

/// \brief A single attribute value.
///
/// Null represents a missing cell (e.g. t2[str, zip] in Fig. 1a of the
/// paper). Equality is by type and content; null equals only null. Ordering
/// is defined for use in sorted containers: null < int < double < string,
/// then by content.
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(Null{}) {}
  /// Constructs an integer value.
  static Value Int(int64_t v) { return Value(Rep(v)); }
  /// Constructs a double value.
  static Value Double(double v) { return Value(Rep(v)); }
  /// Constructs a string value.
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }
  /// Constructs the null value (alias of default construction).
  static Value Null_() { return Value(); }

  bool is_null() const { return std::holds_alternative<Null>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// Renders the value; null renders as "<null>".
  std::string ToString() const;

  /// Parses `text` as the given type. Empty text (or "<null>") yields null.
  static Value Parse(const std::string& text, DataType type);

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  using Rep = std::variant<Null, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_VALUE_H_
