/// \file multi_master.h
/// \brief Combining several master relations into one, per Sect. 2,
/// Remark (3): "given master schemas Rm1, ..., Rmk, there exists a single
/// master schema Rm such that each instance Dm of Rm characterizes an
/// instance of (Dm1, ..., Dmk); Rm has a special attribute id such that
/// sigma_{id=i}(Rm) yields Dmi".
///
/// The combined schema is (id, src1.a1, ..., srck.an): every source
/// attribute is prefixed by its relation name, and rows from source i
/// carry id = i with nulls outside their own attribute block. Editing
/// rules against source i reference the prefixed attribute names and
/// should carry the pattern cell enforced by SourceCondition (the id
/// match is established through the rule's key, so rules typically add
/// the id attribute to Xm via a constant column or rely on null
/// mismatches; the helper exposes both the id attribute and per-source
/// attribute resolution).

#ifndef CERTFIX_RELATIONAL_MULTI_MASTER_H_
#define CERTFIX_RELATIONAL_MULTI_MASTER_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/result.h"

namespace certfix {

/// \brief A combined multi-master view.
class MultiMaster {
 public:
  /// Builds the combined schema and relation from named sources. Source
  /// names must be distinct and non-empty; the total attribute count
  /// (1 + sum of source arities) must fit AttrSet::kMaxAttrs.
  static Result<MultiMaster> Combine(
      const std::vector<std::pair<std::string, const Relation*>>& sources);

  const SchemaPtr& schema() const { return schema_; }
  const Relation& relation() const { return relation_; }
  /// The discriminating id attribute (always position 0).
  AttrId id_attr() const { return 0; }
  /// The id value tagging rows of source `i`.
  Value SourceId(size_t i) const { return Value::Int(static_cast<int64_t>(i)); }

  /// Resolves `attr` of source `source_name` in the combined schema.
  Result<AttrId> Resolve(const std::string& source_name,
                         const std::string& attr) const;

  size_t num_sources() const { return source_names_.size(); }
  const std::string& source_name(size_t i) const { return source_names_[i]; }

 private:
  SchemaPtr schema_;
  Relation relation_;
  std::vector<std::string> source_names_;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_MULTI_MASTER_H_
