/// \file csv.h
/// \brief Minimal CSV reader/writer for relations (RFC-4180 quoting).
///
/// The batch loaders below are built on the incremental record reader of
/// csv_stream.h, so quoted fields may contain delimiters and embedded
/// newlines, and CRLF input is accepted. ParseCsvLine/FormatCsvLine stay
/// as the single-record string-level primitives.

#ifndef CERTFIX_RELATIONAL_CSV_H_
#define CERTFIX_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace certfix {

/// Parses one CSV line into fields, honoring double-quote quoting.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Renders fields as one CSV line, quoting where needed.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads a relation from CSV text. The first line must be a header whose
/// column names match the schema's attribute names (order included).
Result<Relation> ReadCsv(SchemaPtr schema, std::istream& in);
Result<Relation> ReadCsvFile(SchemaPtr schema, const std::string& path);

/// Reads a relation inferring the schema from the header line (all
/// attributes typed as strings). `name` becomes the schema name.
Result<Relation> ReadCsvInferSchema(const std::string& name,
                                    std::istream& in);
Result<Relation> ReadCsvFileInferSchema(const std::string& name,
                                        const std::string& path);

/// Writes the relation with a header line.
Status WriteCsv(const Relation& rel, std::ostream& out);
Status WriteCsvFile(const Relation& rel, const std::string& path);

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_CSV_H_
