/// \file value_pool.h
/// \brief Interned-value dictionary: every distinct Value maps to a dense
/// ValueId, so the hot layers (master-index probes, saturation premise
/// checks, certain-region row validation) compare integers instead of
/// heap-allocated strings.
///
/// Layering: each Relation owns one ValuePool shared by all its rows (and,
/// via shared_ptr, by tuples materialized from it and by relations copied
/// from it). Two values drawn from the same pool are equal iff their ids
/// are equal; values from different pools are compared by content, or
/// translated id-to-id through a PoolBridge.
///
/// Threading contract (see docs/ARCHITECTURE.md "Storage layer"): a pool
/// is NOT internally synchronized for writes. The engine keeps interning
/// single-writer — master pools are immutable after load and shared
/// read-only by all BatchRepair shards, while each repair shard interns
/// into its own local pool and results are merged on one thread. Any
/// number of concurrent readers (value / Find / size) are safe as long as
/// no thread interns; interned values live in a deque, so references
/// returned by value() are stable for the lifetime of the pool even
/// across later interning.

#ifndef CERTFIX_RELATIONAL_VALUE_POOL_H_
#define CERTFIX_RELATIONAL_VALUE_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "util/status.h"

namespace certfix {

/// Dense handle of an interned value within one ValuePool.
using ValueId = uint32_t;

/// Id of the null value; every pool reserves slot 0 for it.
inline constexpr ValueId kNullValueId = 0;
/// Returned by lookups when a value is absent from the pool.
inline constexpr ValueId kInvalidValueId = static_cast<ValueId>(-1);

/// \brief Append-only dictionary Value <-> ValueId.
class ValuePool {
 public:
  ValuePool() { values_.emplace_back(); }  // slot 0 = null

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Id of `v`, interning it if new. Null always maps to kNullValueId.
  ValueId Intern(const Value& v) {
    if (v.is_null()) return kNullValueId;
    size_t h = v.Hash();
    auto range = map_.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (values_[it->second] == v) return it->second;
    }
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(v);
    map_.emplace(h, id);
    return id;
  }

  /// Id of `v` if present, kInvalidValueId otherwise. Never interns, so it
  /// is safe on pools being read concurrently.
  ValueId Find(const Value& v) const {
    if (v.is_null()) return kNullValueId;
    auto range = map_.equal_range(v.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      if (values_[it->second] == v) return it->second;
    }
    return kInvalidValueId;
  }

  /// The value behind `id`. The reference is stable for the pool's
  /// lifetime (values live in a deque and are never erased).
  const Value& value(ValueId id) const { return values_[id]; }

  /// Number of ids in use (the null slot included).
  size_t size() const { return values_.size(); }

 private:
  std::deque<Value> values_;
  // Each value is stored exactly once (in values_); the lookup structure
  // maps value hashes to ids and compares through the deque, so the
  // dictionary does not keep a second copy of every string. Same-hash
  // collisions are a short per-hash chain.
  std::unordered_multimap<size_t, ValueId> map_;
};

using PoolPtr = std::shared_ptr<ValuePool>;

/// \brief Serialization hook: rebuilds a pool's dictionary in dense id
/// order when a columnar snapshot is loaded (storage/columnar.cc decodes
/// the values; this appends them). Lives here — not in the storage layer —
/// because pool writes are confined to src/relational (the single-writer
/// contract above), and because id assignment is the invariant mapped
/// columns depend on: the snapshot stores raw ids, so value k of the
/// dictionary section MUST intern to id k.
class PoolDictionaryBuilder {
 public:
  explicit PoolDictionaryBuilder(PoolPtr pool) : pool_(std::move(pool)) {}

  /// Appends the next dictionary value; fails if it does not land on
  /// `expected` (a duplicate or out-of-order entry — a corrupt or
  /// hand-edited dictionary section).
  Status Append(const Value& v, ValueId expected) {
    ValueId got = pool_->Intern(v);
    if (got != expected) {
      return Status::ParseError(
          "dictionary entry " + std::to_string(expected) +
          " interned to id " + std::to_string(got) +
          " (duplicate or out-of-order value)");
    }
    return Status::OK();
  }

 private:
  PoolPtr pool_;
};

/// Key type used by id-keyed hash indexes (KeyIndex, MasterIndex).
using IdKey = std::vector<ValueId>;

struct IdKeyHash {
  size_t operator()(const IdKey& key) const {
    // FNV-1a over the id words.
    size_t h = 1469598103934665603ULL;
    for (ValueId id : key) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// \brief Memoized id translation from one pool into another.
///
/// Hot probe loops (saturation rounds over one tuple) translate the same
/// handful of ids over and over; the bridge hashes each distinct source
/// value at most once and answers repeats with an array lookup. When both
/// ends are the same pool the translation is the identity and costs
/// nothing. Not internally synchronized — use one bridge per thread.
class PoolBridge {
 public:
  PoolBridge(const ValuePool* from, const ValuePool* to)
      : from_(from), to_(to) {}

  /// True if this bridge translates `from` ids into `to` ids.
  bool Covers(const ValuePool* from, const ValuePool* to) const {
    return from_ == from && to_ == to;
  }

  /// The `to`-pool id of `from`-pool value `from_id`, kInvalidValueId if
  /// the target pool does not contain the value.
  ValueId Translate(ValueId from_id) {
    if (from_ == to_) return from_id;
    if (from_id == kNullValueId) return kNullValueId;
    if (from_id >= cache_.size()) cache_.resize(from_->size(), kUnresolved);
    ValueId& slot = cache_[from_id];
    if (slot == kUnresolved) slot = to_->Find(from_->value(from_id));
    return slot;
  }

 private:
  static constexpr ValueId kUnresolved = static_cast<ValueId>(-2);
  const ValuePool* from_;
  const ValuePool* to_;
  std::vector<ValueId> cache_;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_VALUE_POOL_H_
