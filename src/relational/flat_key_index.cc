#include "relational/flat_key_index.h"

#include <cassert>

namespace certfix {
namespace {

// Control-word tag bytes. Occupied tags carry 7 hash bits so a probe
// rejects almost all foreign slots without touching key memory.
constexpr uint8_t kEmptyTag = 0x00;
constexpr uint8_t kTombTag = 0x01;
constexpr uint64_t kLowBytes = 0x0101010101010101ULL;
constexpr uint64_t kHighBits = 0x8080808080808080ULL;

inline uint8_t OccupiedTag(uint64_t hash) {
  return static_cast<uint8_t>(0x80u | (hash >> 57));
}

// High bit of every byte of `x` that equals zero. Exact for all byte
// positions: the per-byte add (x&0x7f)+0x7f never carries across bytes,
// unlike the classic (x - kLowBytes) borrow trick.
inline uint64_t ZeroBytes(uint64_t x) {
  constexpr uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

// High bit of every byte of `word` equal to `tag`.
inline uint64_t MatchBytes(uint64_t word, uint8_t tag) {
  return ZeroBytes(word ^ (kLowBytes * static_cast<uint64_t>(tag)));
}

inline uint8_t TagAt(uint64_t word, size_t slot_in_bucket) {
  return static_cast<uint8_t>(word >> (8 * slot_in_bucket));
}

inline void SetTag(uint64_t* word, size_t slot_in_bucket, uint8_t tag) {
  const size_t shift = 8 * slot_in_bucket;
  *word = (*word & ~(0xFFULL << shift))
          | (static_cast<uint64_t>(tag) << shift);
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void FlatIdTable::Reset(size_t arity, size_t expected_keys) {
  arity_ = arity;
  live_ = 0;
  used_ = 0;
  // Size for the 7/8 load cap with one-bucket minimum.
  const size_t min_slots = expected_keys + expected_keys / 7 + 1;
  const size_t buckets =
      NextPow2((min_slots + kSlotsPerBucket - 1) / kSlotsPerBucket);
  tags_.assign(buckets, 0);
  slot_keys_.assign(buckets * kSlotsPerBucket * SlotStride(), 0);
  payloads_.assign(buckets * kSlotsPerBucket, kNotFound);
  arena_.clear();
}

uint64_t FlatIdTable::Hash(const ValueId* key) const {
  // FNV-1a over the ids (the IdKeyHash recipe), then a murmur-style
  // finalizer: the table takes bucket bits from the bottom and tag bits
  // from the top of the same hash, so both ends must be well mixed.
  uint64_t h = 1469598103934665603ULL;
  for (size_t k = 0; k < arity_; ++k) {
    h ^= key[k];
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void FlatIdTable::Prefetch(uint64_t hash) const {
  if (tags_.empty()) return;
  const size_t bucket = hash & (tags_.size() - 1);
  __builtin_prefetch(&tags_[bucket]);
  __builtin_prefetch(&slot_keys_[bucket * kSlotsPerBucket * SlotStride()]);
  __builtin_prefetch(&payloads_[bucket * kSlotsPerBucket]);
}

const ValueId* FlatIdTable::SlotKey(size_t slot) const {
  if (arity_ <= kInlineArity) return &slot_keys_[slot * SlotStride()];
  return &arena_[static_cast<size_t>(slot_keys_[slot]) * arity_];
}

bool FlatIdTable::KeyEquals(size_t slot, const ValueId* key) const {
  const ValueId* stored = SlotKey(slot);
  for (size_t k = 0; k < arity_; ++k) {
    if (stored[k] != key[k]) return false;
  }
  return true;
}

void FlatIdTable::PlaceKey(size_t slot, const ValueId* key, bool copy_ids) {
  if (arity_ <= kInlineArity) {
    ValueId* dst = &slot_keys_[slot * SlotStride()];
    for (size_t k = 0; k < arity_; ++k) dst[k] = key[k];
  } else if (copy_ids) {
    slot_keys_[slot] = static_cast<ValueId>(arena_.size() / arity_);
    arena_.insert(arena_.end(), key, key + arity_);
  }
  // !copy_ids with a long key: caller pre-set the arena offset (rehash).
}

uint32_t FlatIdTable::FindHashed(uint64_t hash, const ValueId* key) const {
  if (tags_.empty()) return kNotFound;
  const size_t mask = tags_.size() - 1;
  const uint64_t want = kLowBytes * OccupiedTag(hash);
  size_t bucket = hash & mask;
  for (size_t step = 1;; bucket = (bucket + step++) & mask) {
    const uint64_t word = tags_[bucket];
    uint64_t match = ZeroBytes(word ^ want);
    while (match != 0) {
      const size_t s = static_cast<size_t>(__builtin_ctzll(match)) >> 3;
      const size_t slot = bucket * kSlotsPerBucket + s;
      if (KeyEquals(slot, key)) return payloads_[slot];
      match &= match - 1;
    }
    // An empty slot anywhere in the bucket means the key was never
    // displaced past it — absent. Tombstones do not stop the probe.
    if (MatchBytes(word, kEmptyTag) != 0) return kNotFound;
  }
}

uint32_t FlatIdTable::InsertOrGet(const ValueId* key, uint32_t fresh_payload) {
  assert(fresh_payload != kNotFound);
  if (tags_.empty()) Reset(arity_, kSlotsPerBucket);
  if ((used_ + 1) * 8 > tags_.size() * kSlotsPerBucket * 7) {
    Rehash(live_ + 1);
  }
  const uint64_t hash = Hash(key);
  const uint8_t tag = OccupiedTag(hash);
  const size_t mask = tags_.size() - 1;
  size_t bucket = hash & mask;
  size_t reuse_slot = static_cast<size_t>(-1);  // first tombstone seen
  for (size_t step = 1;; bucket = (bucket + step++) & mask) {
    const uint64_t word = tags_[bucket];
    uint64_t match = MatchBytes(word, tag);
    while (match != 0) {
      const size_t s = static_cast<size_t>(__builtin_ctzll(match)) >> 3;
      const size_t slot = bucket * kSlotsPerBucket + s;
      if (KeyEquals(slot, key)) return payloads_[slot];
      match &= match - 1;
    }
    if (reuse_slot == static_cast<size_t>(-1)) {
      const uint64_t tomb = MatchBytes(word, kTombTag);
      if (tomb != 0) {
        const size_t s = static_cast<size_t>(__builtin_ctzll(tomb)) >> 3;
        reuse_slot = bucket * kSlotsPerBucket + s;
      }
    }
    const uint64_t empty = MatchBytes(word, kEmptyTag);
    if (empty != 0) {
      size_t slot;
      if (reuse_slot != static_cast<size_t>(-1)) {
        slot = reuse_slot;  // recycle the tombstone; used_ unchanged
      } else {
        const size_t s = static_cast<size_t>(__builtin_ctzll(empty)) >> 3;
        slot = bucket * kSlotsPerBucket + s;
        ++used_;
      }
      SetTag(&tags_[slot / kSlotsPerBucket], slot % kSlotsPerBucket, tag);
      PlaceKey(slot, key, /*copy_ids=*/true);
      payloads_[slot] = fresh_payload;
      ++live_;
      return fresh_payload;
    }
  }
}

bool FlatIdTable::Erase(const ValueId* key) {
  if (tags_.empty()) return false;
  const uint64_t hash = Hash(key);
  const uint64_t want = kLowBytes * OccupiedTag(hash);
  const size_t mask = tags_.size() - 1;
  size_t bucket = hash & mask;
  for (size_t step = 1;; bucket = (bucket + step++) & mask) {
    const uint64_t word = tags_[bucket];
    uint64_t match = ZeroBytes(word ^ want);
    while (match != 0) {
      const size_t s = static_cast<size_t>(__builtin_ctzll(match)) >> 3;
      const size_t slot = bucket * kSlotsPerBucket + s;
      if (KeyEquals(slot, key)) {
        SetTag(&tags_[bucket], s, kTombTag);
        payloads_[slot] = kNotFound;
        --live_;  // used_ stays: the tombstone still lengthens probes
        return true;
      }
      match &= match - 1;
    }
    if (MatchBytes(word, kEmptyTag) != 0) return false;
  }
}

void FlatIdTable::Rehash(size_t min_live) {
  FlatIdTable bigger;
  bigger.arity_ = arity_;
  // Doubling the *live* count (not used_) purges tombstone pressure
  // without growing a mostly-dead table.
  bigger.Reset(arity_, min_live * 2);
  bigger.arena_ = std::move(arena_);
  for (size_t bucket = 0; bucket < tags_.size(); ++bucket) {
    const uint64_t word = tags_[bucket];
    for (size_t s = 0; s < kSlotsPerBucket; ++s) {
      const uint8_t tag = TagAt(word, s);
      if (tag == kEmptyTag || tag == kTombTag) continue;
      const size_t slot = bucket * kSlotsPerBucket + s;
      const ValueId* key = arity_ <= kInlineArity
                               ? &slot_keys_[slot * SlotStride()]
                               : &bigger.arena_[static_cast<size_t>(
                                                    slot_keys_[slot]) *
                                                arity_];
      const uint64_t hash = bigger.Hash(key);
      const size_t mask = bigger.tags_.size() - 1;
      size_t b = hash & mask;
      for (size_t step = 1;; b = (b + step++) & mask) {
        const uint64_t empty = MatchBytes(bigger.tags_[b], kEmptyTag);
        if (empty == 0) continue;
        const size_t ns = static_cast<size_t>(__builtin_ctzll(empty)) >> 3;
        const size_t nslot = b * kSlotsPerBucket + ns;
        SetTag(&bigger.tags_[b], ns, OccupiedTag(hash));
        if (arity_ <= kInlineArity) {
          bigger.PlaceKey(nslot, key, /*copy_ids=*/true);
        } else {
          bigger.slot_keys_[nslot] = slot_keys_[slot];  // same arena run
        }
        bigger.payloads_[nslot] = payloads_[slot];
        break;
      }
    }
  }
  bigger.live_ = live_;
  bigger.used_ = live_;
  *this = std::move(bigger);
}

FlatKeyIndex::FlatKeyIndex(const Relation& rel, std::vector<AttrId> attrs)
    : attrs_(std::move(attrs)), pool_(rel.pool()) {
  std::vector<const IdColumn*> cols;
  cols.reserve(attrs_.size());
  for (AttrId a : attrs_) cols.push_back(&rel.Column(a));
  table_.Reset(attrs_.size(), rel.size());

  // Pass 1: assign a dense ordinal per distinct key and count its rows.
  IdKey key(attrs_.size());
  std::vector<uint32_t> row_ordinal(rel.size());
  std::vector<size_t> counts;
  for (size_t i = 0; i < rel.size(); ++i) {
    for (size_t k = 0; k < cols.size(); ++k) key[k] = (*cols[k])[i];
    const uint32_t fresh = static_cast<uint32_t>(counts.size());
    const uint32_t ordinal = table_.InsertOrGet(key.data(), fresh);
    if (ordinal == fresh) counts.push_back(0);
    ++counts[ordinal];
    row_ordinal[i] = ordinal;
  }

  // Pass 2: prefix-sum the counts into arena offsets, then scatter rows
  // in ascending order so each key's postings match the push_back order
  // of the KeyIndex map path.
  offsets_.assign(counts.size() + 1, 0);
  for (size_t k = 0; k < counts.size(); ++k) {
    offsets_[k + 1] = offsets_[k] + counts[k];
  }
  postings_.resize(rel.size());
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t i = 0; i < rel.size(); ++i) {
    postings_[cursor[row_ordinal[i]]++] = i;
  }
}

RowSpan FlatKeyIndex::Lookup(const std::vector<Value>& values) const {
  if (pool_ == nullptr) return RowSpan();  // default-constructed index
  IdKey key(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    ValueId id = pool_->Find(values[k]);
    if (id == kInvalidValueId) return RowSpan();
    key[k] = id;
  }
  const uint32_t payload = table_.Find(key.data());
  return payload == FlatIdTable::kNotFound ? RowSpan() : Rows(payload);
}

RowSpan FlatKeyIndex::LookupTuple(const Tuple& t,
                                  const std::vector<AttrId>& probe_attrs,
                                  PoolBridge* bridge) const {
  if (pool_ == nullptr) return RowSpan();  // default-constructed index
  // Probes run in tight saturation loops; a thread-local scratch key
  // keeps its capacity across calls so no probe allocates.
  thread_local IdKey key;
  if (!ProjectIds(t, probe_attrs, pool_.get(), bridge, &key)) {
    return RowSpan();
  }
  const uint32_t payload = table_.Find(key.data());
  return payload == FlatIdTable::kNotFound ? RowSpan() : Rows(payload);
}

size_t ProbeBatch::Add(const Tuple& t, const std::vector<AttrId>& probe_attrs,
                       PoolBridge* bridge) {
  const size_t arity = index_->table().arity();
  thread_local IdKey scratch;
  if (index_->pool() == nullptr ||
      !ProjectIds(t, probe_attrs, index_->pool().get(), bridge, &scratch)) {
    hashes_.push_back(kMissHash);
    keys_.resize(keys_.size() + arity, kInvalidValueId);
    return hashes_.size() - 1;
  }
  const uint64_t hash = index_->table().Hash(scratch.data());
  index_->table().Prefetch(hash);
  hashes_.push_back(hash);
  keys_.insert(keys_.end(), scratch.begin(), scratch.end());
  return hashes_.size() - 1;
}

RowSpan ProbeBatch::Resolve(size_t i) const {
  if (hashes_[i] == kMissHash) return RowSpan();
  const size_t arity = index_->table().arity();
  const uint32_t payload =
      index_->table().FindHashed(hashes_[i], keys_.data() + i * arity);
  return payload == FlatIdTable::kNotFound ? RowSpan() : index_->Rows(payload);
}

}  // namespace certfix
