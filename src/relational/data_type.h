/// \file data_type.h
/// \brief Attribute data types for the relational substrate.

#ifndef CERTFIX_RELATIONAL_DATA_TYPE_H_
#define CERTFIX_RELATIONAL_DATA_TYPE_H_

namespace certfix {

/// Column type of an attribute. The paper's data are strings and integers;
/// doubles appear in scores (HOSP sAvg/Score).
enum class DataType {
  kString = 0,
  kInt = 1,
  kDouble = 2,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kString: return "string";
    case DataType::kInt: return "int";
    case DataType::kDouble: return "double";
  }
  return "?";
}

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_DATA_TYPE_H_
