#include "relational/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace certfix {

namespace {
// Variant alternative index used for cross-type ordering and hashing.
template <typename Rep>
size_t AltIndex(const Rep& rep) {
  return rep.index();
}
}  // namespace

bool Value::operator<(const Value& other) const {
  if (rep_.index() != other.rep_.index()) {
    return rep_.index() < other.rep_.index();
  }
  if (is_int()) return as_int() < other.as_int();
  if (is_double()) return as_double() < other.as_double();
  if (is_string()) return as_string() < other.as_string();
  return false;  // both null
}

std::string Value::ToString() const {
  if (is_null()) return "<null>";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    // Shortest representation that parses back to the exact same double
    // (Parse(ToString(v)) == v — snapshots and golden files depend on
    // it). 17 significant digits always round-trip; most values need 15.
    char buf[64];
    double d = as_double();
    for (int precision = 15; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
      if (std::strtod(buf, nullptr) == d) break;
    }
    return buf;
  }
  return as_string();
}

Value Value::Parse(const std::string& text, DataType type) {
  if (text.empty() || text == "<null>") return Value();
  switch (type) {
    case DataType::kInt:
      if (IsInteger(text)) {
        errno = 0;
        int64_t v = std::strtoll(text.c_str(), nullptr, 10);
        // Out-of-range digit strings would otherwise clamp to
        // LLONG_MAX/MIN and enter the pool as wrong-but-plausible data.
        if (errno == ERANGE) return Value();
        return Value::Int(v);
      }
      return Value();
    case DataType::kDouble:
      if (IsDouble(text)) {
        errno = 0;
        double v = std::strtod(text.c_str(), nullptr);
        // Reject overflow (±HUGE_VAL); keep gradual underflow — a
        // subnormal result is still the nearest representable value.
        if (errno == ERANGE && std::abs(v) == HUGE_VAL) return Value();
        return Value::Double(v);
      }
      return Value();
    case DataType::kString:
      return Value::Str(text);
  }
  return Value();
}

size_t Value::Hash() const {
  size_t seed = rep_.index() * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  if (is_int()) {
    h = std::hash<int64_t>()(as_int());
  } else if (is_double()) {
    h = std::hash<double>()(as_double());
  } else if (is_string()) {
    h = std::hash<std::string>()(as_string());
  }
  return seed ^ (h + 0x9e3779b9 + (seed << 6) + (seed >> 2));
}

}  // namespace certfix
