/// \file tuple.h
/// \brief A tuple of values bound to a schema.

#ifndef CERTFIX_RELATIONAL_TUPLE_H_
#define CERTFIX_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"

namespace certfix {

/// \brief One row of a relation.
///
/// Tuples are value-semantic; copying a tuple copies its cells (the schema
/// is shared). Cells are addressed by AttrId.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(SchemaPtr schema)
      : schema_(std::move(schema)), values_(schema_->num_attrs()) {}
  Tuple(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  /// Builds a tuple from string renderings, parsed per attribute type.
  static Result<Tuple> FromStrings(SchemaPtr schema,
                                   const std::vector<std::string>& fields);

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return values_.size(); }

  const Value& at(AttrId id) const { return values_[id]; }
  Value& at(AttrId id) { return values_[id]; }
  const Value& operator[](AttrId id) const { return values_[id]; }
  Value& operator[](AttrId id) { return values_[id]; }

  void Set(AttrId id, Value v) { values_[id] = std::move(v); }

  /// Projection t[X] in list order.
  std::vector<Value> Project(const std::vector<AttrId>& attrs) const;

  /// True if t[X] agrees with other[Y] position-wise (|X| must equal |Y|).
  bool AgreesOn(const std::vector<AttrId>& x, const Tuple& other,
                const std::vector<AttrId>& y) const;

  /// Number of attributes whose values differ (schemas assumed compatible).
  size_t DiffCount(const Tuple& other) const;
  /// Attribute ids where values differ.
  std::vector<AttrId> DiffAttrs(const Tuple& other) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

/// Serializes a projection into a flat hashable key ("v1\x1fv2...").
/// Hash-map friendly; values render unambiguously because the unit
/// separator cannot appear in parsed CSV fields.
std::string ProjectKey(const Tuple& t, const std::vector<AttrId>& attrs);

/// Serializes an explicit value list into the same key format.
std::string ValuesKey(const std::vector<Value>& values);

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_TUPLE_H_
