/// \file tuple.h
/// \brief A tuple of interned values bound to a schema.

#ifndef CERTFIX_RELATIONAL_TUPLE_H_
#define CERTFIX_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "relational/value_pool.h"
#include "util/result.h"

namespace certfix {

/// \brief One row of a relation, stored as ValueIds into a ValuePool.
///
/// Tuples are value-semantic; copying a tuple copies its cell ids (the
/// schema and the pool are shared). Cells are addressed by AttrId. The
/// string-facing accessors (at / Set / Project / ToString) are a thin
/// compatibility shim over the interned representation: at() resolves an
/// id through the pool, Set() interns. Rows materialized from a Relation
/// share that relation's pool, so copying them around moves 4-byte ids,
/// not strings; standalone tuples (FromStrings, the value-list
/// constructor) intern into a private pool created on first use.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(SchemaPtr schema)
      : schema_(std::move(schema)), ids_(schema_->num_attrs(), kNullValueId) {}
  Tuple(SchemaPtr schema, std::vector<Value> values);
  /// An all-null tuple whose future cells intern into `pool`.
  Tuple(SchemaPtr schema, PoolPtr pool)
      : schema_(std::move(schema)),
        pool_(std::move(pool)),
        ids_(schema_->num_attrs(), kNullValueId) {}
  /// Adopts pre-interned ids (the fast path used by Relation row views).
  Tuple(SchemaPtr schema, PoolPtr pool, std::vector<ValueId> ids)
      : schema_(std::move(schema)),
        pool_(std::move(pool)),
        ids_(std::move(ids)) {}

  /// Builds a tuple from string renderings, parsed per attribute type.
  static Result<Tuple> FromStrings(SchemaPtr schema,
                                   const std::vector<std::string>& fields);

  const SchemaPtr& schema() const { return schema_; }
  const PoolPtr& pool() const { return pool_; }
  size_t size() const { return ids_.size(); }

  /// The value of one cell. The reference points into the pool and stays
  /// valid for the pool's lifetime (even across later Set calls).
  const Value& at(AttrId id) const;
  const Value& operator[](AttrId id) const { return at(id); }

  /// The interned id of one cell (pool-local; kNullValueId for null).
  ValueId id_at(AttrId id) const { return ids_[id]; }

  /// Sets one cell, interning the value. Lvalue-qualified so that calls on
  /// temporaries (e.g. rel.at(i).Set(...), which would silently mutate a
  /// discarded row view) fail to compile — use Relation::SetCell instead.
  void Set(AttrId id, Value v) &;

  /// A copy of this tuple whose cells are interned into `pool` (used by
  /// BatchRepair shards to keep interning thread-local).
  Tuple RebasedTo(const PoolPtr& pool) const;

  /// Projection t[X] in list order.
  std::vector<Value> Project(const std::vector<AttrId>& attrs) const;

  /// True if t[X] agrees with other[Y] position-wise (|X| must equal |Y|).
  bool AgreesOn(const std::vector<AttrId>& x, const Tuple& other,
                const std::vector<AttrId>& y) const;

  /// Number of attributes whose values differ (schemas assumed compatible).
  size_t DiffCount(const Tuple& other) const;
  /// Attribute ids where values differ.
  std::vector<AttrId> DiffAttrs(const Tuple& other) const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  void EnsurePool();

  SchemaPtr schema_;
  PoolPtr pool_;
  std::vector<ValueId> ids_;
};

/// Unit separator delimiting fields of the string key forms below.
inline constexpr char kKeyUnitSep = '\x1f';

/// Serializes a projection into a flat hashable key ("v1\x1fv2...").
/// Hash-map friendly; values render unambiguously because the unit
/// separator cannot appear in parsed CSV fields. (The engine's own indexes
/// key on IdKey instead; this string form remains for CFD grouping and
/// diagnostics.)
std::string ProjectKey(const Tuple& t, const std::vector<AttrId>& attrs);

/// Projects t[attrs] into `target`-pool ids via Find (or `bridge` when it
/// covers the pools involved). Returns false — "no row can match" — when
/// some projected value is absent from the target pool.
bool ProjectIds(const Tuple& t, const std::vector<AttrId>& attrs,
                const ValuePool* target, PoolBridge* bridge, IdKey* out);

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_TUPLE_H_
