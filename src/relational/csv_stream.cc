#include "relational/csv_stream.h"

#include <istream>
#include <streambuf>

#include "util/string_util.h"

namespace certfix {

Result<bool> CsvRecordReader::Next(std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  bool any_content = false;  // saw a field char, separator, or quote
  record_line_ = line_;
  // Read straight off the streambuf: one virtual call per character
  // instead of istream::get()'s per-call sentry — this reader underlies
  // every CSV load in the codebase, so the per-byte cost matters.
  std::streambuf* in = in_->rdbuf();
  for (;;) {
    int ci = in->sbumpc();
    if (ci == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return Status::ParseError("line " + std::to_string(record_line_) +
                                  ": unterminated quoted field");
      }
      if (!any_content) return false;  // clean end of input
      fields->push_back(std::move(cur));
      return true;
    }
    char c = static_cast<char>(ci);
    if (in_quotes) {
      if (c == '"') {
        if (in->sgetc() == '"') {
          cur += '"';
          in->sbumpc();
        } else {
          in_quotes = false;
        }
      } else {
        // Everything else — delimiters, CR, record separators — is
        // literal inside quotes.
        if (c == '\n') ++line_;
        cur += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cur.empty()) {
          return Status::ParseError(
              "line " + std::to_string(line_) +
              ": unexpected quote mid-field");
        }
        in_quotes = true;
        any_content = true;
        break;
      case ',':
        fields->push_back(std::move(cur));
        cur.clear();
        any_content = true;
        break;
      case '\r':
        // CRLF (or CR at end of input) ends the record like LF does; a
        // bare CR mid-line is tolerated and dropped, matching the
        // historical line parser.
        if (in->sgetc() != '\n') break;
        in->sbumpc();
        [[fallthrough]];
      case '\n':
        ++line_;
        if (!any_content && cur.empty() && fields->empty()) {
          // Blank line: skip and keep scanning for a record.
          record_line_ = line_;
          break;
        }
        fields->push_back(std::move(cur));
        return true;
      default:
        cur += c;
        any_content = true;
        break;
    }
  }
}

Result<bool> CsvTupleSource::Next(std::vector<std::string>* fields) {
  if (!header_checked_) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, reader_.Next(fields));
    if (!got) {
      return Status::ParseError("empty CSV input: missing header");
    }
    if (fields->size() != schema_->num_attrs()) {
      return Status::ParseError(
          "CSV header arity " + std::to_string(fields->size()) +
          " != schema arity " + std::to_string(schema_->num_attrs()));
    }
    for (size_t i = 0; i < fields->size(); ++i) {
      if (std::string(Trim((*fields)[i])) !=
          schema_->attr_name(static_cast<AttrId>(i))) {
        return Status::ParseError(
            "CSV header column " + std::to_string(i) + " is '" +
            (*fields)[i] + "', expected '" +
            schema_->attr_name(static_cast<AttrId>(i)) + "'");
      }
    }
    header_checked_ = true;
  }
  CERTFIX_ASSIGN_OR_RETURN(bool got, reader_.Next(fields));
  if (!got) return false;
  if (fields->size() != schema_->num_attrs()) {
    return Status::ParseError(
        "line " + std::to_string(reader_.record_line()) + ": field count " +
        std::to_string(fields->size()) + " does not match schema arity " +
        std::to_string(schema_->num_attrs()));
  }
  return true;
}

}  // namespace certfix
