#include "relational/relation.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace certfix {

Tuple Relation::at(size_t i) const {
  std::vector<ValueId> ids(cols_.size());
  for (size_t a = 0; a < cols_.size(); ++a) ids[a] = cols_[a][i];
  return Tuple(schema_, pool_, std::move(ids));
}

void Relation::SetCell(size_t row, AttrId attr, Value v) {
  ValueId id = pool_->Intern(std::move(v));
  if (cols_[attr][row] != id) {
    cols_[attr].Set(row, id);
    BumpVersion(row);
  }
}

void Relation::SetRow(size_t row, const Tuple& t) {
  UpdateRow(row, t);
}

AttrSet Relation::UpdateRow(size_t row, const Tuple& t) {
  AttrSet changed;
  if (t.pool() == pool_) {
    for (size_t a = 0; a < cols_.size(); ++a) {
      ValueId id = t.id_at(static_cast<AttrId>(a));
      if (cols_[a][row] != id) {
        cols_[a].Set(row, id);
        changed.Add(static_cast<AttrId>(a));
      }
    }
  } else {
    for (size_t a = 0; a < cols_.size(); ++a) {
      const Value& v = t.at(static_cast<AttrId>(a));
      if (Cell(row, static_cast<AttrId>(a)) != v) {
        cols_[a].Set(row, pool_->Intern(v));
        changed.Add(static_cast<AttrId>(a));
      }
    }
  }
  if (!changed.Empty()) BumpVersion(row);
  return changed;
}

void Relation::TrackRowVersions() {
  if (track_versions_) return;
  track_versions_ = true;
  versions_.assign(num_rows_, 1);
}

Status Relation::Append(const Tuple& t) {
  if (t.schema().get() != schema_.get() && !t.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("tuple schema does not match relation " +
                                   schema_->name());
  }
  if (t.pool() == pool_) {
    for (size_t a = 0; a < cols_.size(); ++a) {
      cols_[a].PushBack(t.id_at(static_cast<AttrId>(a)));
    }
  } else {
    for (size_t a = 0; a < cols_.size(); ++a) {
      cols_[a].PushBack(pool_->Intern(t.at(static_cast<AttrId>(a))));
    }
  }
  if (track_versions_) versions_.push_back(1);
  ++num_rows_;
  return Status::OK();
}

Status Relation::AppendStrings(const std::vector<std::string>& fields) {
  if (fields.size() != schema_->num_attrs()) {
    return Status::InvalidArgument(
        "field count " + std::to_string(fields.size()) +
        " does not match schema arity " +
        std::to_string(schema_->num_attrs()));
  }
  for (size_t a = 0; a < fields.size(); ++a) {
    AttrId attr = static_cast<AttrId>(a);
    cols_[a].PushBack(
        pool_->Intern(Value::Parse(fields[a], schema_->attr_type(attr))));
  }
  if (track_versions_) versions_.push_back(1);
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Relation::DistinctValues(AttrId attr) const {
  std::unordered_set<ValueId> seen;
  std::vector<Value> out;
  for (ValueId id : cols_[attr]) {
    if (seen.insert(id).second) out.push_back(pool_->value(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Value> Relation::ActiveDomain() const {
  std::unordered_set<ValueId> seen;
  std::vector<Value> out;
  for (const auto& col : cols_) {
    for (ValueId id : col) {
      if (seen.insert(id).second) out.push_back(pool_->value(id));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Relation::ClearAndReleasePool() {
  Clear();
  if (pool_ != nullptr && pool_.use_count() == 1) {
    pool_ = std::make_shared<ValuePool>();
  }
}

std::string ProjectKey(const Relation& rel, size_t row,
                       const std::vector<AttrId>& attrs) {
  std::string key;
  for (AttrId a : attrs) {
    key += rel.Cell(row, a).ToString();
    key += kKeyUnitSep;
  }
  return key;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_->ToString() << " [" << num_rows_ << " rows]\n";
  for (size_t i = 0; i < num_rows_ && i < max_rows; ++i) {
    os << "  " << at(i).ToString() << "\n";
  }
  if (num_rows_ > max_rows) os << "  ...\n";
  return os.str();
}

}  // namespace certfix
