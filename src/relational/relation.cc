#include "relational/relation.h"

#include <set>
#include <sstream>
#include <unordered_set>

namespace certfix {

Status Relation::Append(Tuple t) {
  if (t.schema().get() != schema_.get() && !t.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("tuple schema does not match relation " +
                                   schema_->name());
  }
  tuples_.push_back(std::move(t));
  return Status::OK();
}

Status Relation::AppendStrings(const std::vector<std::string>& fields) {
  CERTFIX_ASSIGN_OR_RETURN(Tuple t, Tuple::FromStrings(schema_, fields));
  tuples_.push_back(std::move(t));
  return Status::OK();
}

std::vector<Value> Relation::DistinctValues(AttrId attr) const {
  std::set<Value> seen;
  for (const Tuple& t : tuples_) seen.insert(t.at(attr));
  return std::vector<Value>(seen.begin(), seen.end());
}

std::vector<Value> Relation::ActiveDomain() const {
  std::set<Value> seen;
  for (const Tuple& t : tuples_) {
    for (size_t i = 0; i < t.size(); ++i) seen.insert(t.at(static_cast<AttrId>(i)));
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_->ToString() << " [" << tuples_.size() << " rows]\n";
  for (size_t i = 0; i < tuples_.size() && i < max_rows; ++i) {
    os << "  " << tuples_[i].ToString() << "\n";
  }
  if (tuples_.size() > max_rows) os << "  ...\n";
  return os.str();
}

}  // namespace certfix
