/// \file schema.h
/// \brief Relation schema: an ordered list of named, typed attributes.

#ifndef CERTFIX_RELATIONAL_SCHEMA_H_
#define CERTFIX_RELATIONAL_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/attr_set.h"
#include "relational/data_type.h"
#include "util/result.h"
#include "util/status.h"

namespace certfix {

/// \brief A named attribute with a data type.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
};

/// \brief Immutable schema shared by tuples via shared_ptr.
///
/// The input schema R and the master schema Rm of the paper are both
/// instances of this class; attribute positions (AttrId) index tuples.
class Schema {
 public:
  Schema(std::string name, std::vector<Attribute> attrs);

  /// Builder convenience: all-string attributes from names.
  static std::shared_ptr<Schema> Make(std::string name,
                                      const std::vector<std::string>& attrs);
  static std::shared_ptr<Schema> Make(std::string name,
                                      std::vector<Attribute> attrs);

  const std::string& name() const { return name_; }
  size_t num_attrs() const { return attrs_.size(); }
  const Attribute& attr(AttrId id) const { return attrs_[id]; }
  const std::string& attr_name(AttrId id) const { return attrs_[id].name; }
  DataType attr_type(AttrId id) const { return attrs_[id].type; }

  /// Looks up an attribute position by name.
  Result<AttrId> IndexOf(const std::string& attr_name) const;
  /// True if the schema has an attribute of that name.
  bool Has(const std::string& attr_name) const;

  /// Resolves a list of names to ids; fails on the first unknown name.
  Result<std::vector<AttrId>> Resolve(
      const std::vector<std::string>& names) const;

  /// Set of all attribute ids.
  AttrSet AllAttrs() const {
    return AttrSet::AllUpTo(static_cast<AttrId>(attrs_.size()));
  }

  /// "R(fn, ln, AC, ...)" rendering.
  std::string ToString() const;

  /// Structural equality (name, attribute names and types).
  bool Equals(const Schema& other) const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, AttrId> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_SCHEMA_H_
