/// \file attr_set.h
/// \brief Compact attribute set over schemas with at most 64 attributes.

#ifndef CERTFIX_RELATIONAL_ATTR_SET_H_
#define CERTFIX_RELATIONAL_ATTR_SET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <vector>

namespace certfix {

/// Attribute position within a schema.
using AttrId = uint32_t;

/// \brief Bitset of attribute ids (schemas in this library have <= 64
/// attributes; HOSP has 19, DBLP 12, the paper's supplier example 10).
///
/// Used pervasively for region attribute lists Z, rule lhs/rhs sets, and
/// the validated-set bookkeeping in TransFix and the saturation engine.
class AttrSet {
 public:
  static constexpr AttrId kMaxAttrs = 64;

  AttrSet() : bits_(0) {}
  AttrSet(std::initializer_list<AttrId> ids) : bits_(0) {
    for (AttrId id : ids) Add(id);
  }
  static AttrSet FromVector(const std::vector<AttrId>& ids) {
    AttrSet s;
    for (AttrId id : ids) s.Add(id);
    return s;
  }
  /// Set {0, 1, ..., n-1}.
  static AttrSet AllUpTo(AttrId n) {
    assert(n <= kMaxAttrs);
    AttrSet s;
    s.bits_ = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
    return s;
  }

  void Add(AttrId id) {
    assert(id < kMaxAttrs);
    bits_ |= (1ULL << id);
  }
  void Remove(AttrId id) {
    assert(id < kMaxAttrs);
    bits_ &= ~(1ULL << id);
  }
  bool Contains(AttrId id) const {
    assert(id < kMaxAttrs);
    return (bits_ >> id) & 1;
  }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }

  AttrSet Union(const AttrSet& o) const { return AttrSet(bits_ | o.bits_); }
  AttrSet Intersect(const AttrSet& o) const { return AttrSet(bits_ & o.bits_); }
  AttrSet Minus(const AttrSet& o) const { return AttrSet(bits_ & ~o.bits_); }
  bool SubsetOf(const AttrSet& o) const { return (bits_ & ~o.bits_) == 0; }
  bool Intersects(const AttrSet& o) const { return (bits_ & o.bits_) != 0; }

  bool operator==(const AttrSet& o) const { return bits_ == o.bits_; }
  bool operator!=(const AttrSet& o) const { return bits_ != o.bits_; }
  bool operator<(const AttrSet& o) const { return bits_ < o.bits_; }

  /// Ascending list of member ids.
  std::vector<AttrId> ToVector() const {
    std::vector<AttrId> out;
    uint64_t b = bits_;
    while (b != 0) {
      AttrId id = static_cast<AttrId>(__builtin_ctzll(b));
      out.push_back(id);
      b &= b - 1;
    }
    return out;
  }

  uint64_t bits() const { return bits_; }

 private:
  explicit AttrSet(uint64_t bits) : bits_(bits) {}
  uint64_t bits_;
};

struct AttrSetHash {
  size_t operator()(const AttrSet& s) const {
    return std::hash<uint64_t>()(s.bits());
  }
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_ATTR_SET_H_
