/// \file flat_key_index.h
/// \brief Cache-conscious open-addressing index over interned IdKeys.
///
/// The node-based std::unordered_map behind KeyIndex costs one pointer
/// chase plus a heap node per probe — the dominant cost of the repair
/// hot path once values are interned (PR 3). This file is the flat
/// replacement the engines default to:
///
///  * FlatIdTable — an open-addressing hash table over fixed-arity
///    ValueId keys. Slots are grouped eight to a cache-line-sized
///    bucket with a one-byte tag per slot packed into a single uint64
///    control word, so a probe inspects one control word (SWAR byte
///    match) and touches key memory only on a tag hit. Short keys
///    (arity <= 4) are stored inline in the slot array; longer keys
///    live in a contiguous arena the slot points into. Deletion is by
///    tombstone; the table resizes at 7/8 occupancy.
///
///  * FlatKeyIndex — the KeyIndex contract (Lookup / LookupTuple /
///    PoolBridge translation) rebuilt on a FlatIdTable, with all
///    postings in one contiguous arena instead of a std::vector per
///    key. Lookups return a RowSpan view into that arena; per-key row
///    order matches KeyIndex (ascending row position), so the two are
///    drop-in interchangeable and A/B-diffable byte-for-byte.
///
///  * ProbeBatch — software pipelining for chunked ingest: stage the
///    keys for a block of tuples (hash + prefetch the bucket control
///    word), then resolve them once the lines are in flight.

#ifndef CERTFIX_RELATIONAL_FLAT_KEY_INDEX_H_
#define CERTFIX_RELATIONAL_FLAT_KEY_INDEX_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace certfix {

/// \brief Non-owning view of a run of row positions.
///
/// Lookup answers are runs inside the postings arena (or a caller's
/// vector — the converting constructor keeps KeyIndex-based call sites
/// source-compatible). Valid only while the underlying storage lives.
class RowSpan {
 public:
  RowSpan() = default;
  RowSpan(const size_t* data, size_t size) : data_(data), size_(size) {}
  /* implicit */ RowSpan(const std::vector<size_t>& rows)
      : data_(rows.data()), size_(rows.size()) {}

  const size_t* begin() const { return data_; }
  const size_t* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t operator[](size_t i) const { return data_[i]; }

 private:
  const size_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Open-addressing hash table: fixed-arity ValueId key -> uint32.
///
/// The payload is an opaque uint32 chosen by the caller (a postings
/// ordinal, a summary ordinal, a memo slot). kNotFound is reserved.
/// Not thread-safe for writes; concurrent reads are safe once built.
class FlatIdTable {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;
  static constexpr size_t kSlotsPerBucket = 8;
  /// Keys up to this arity are stored inline in the slot array.
  static constexpr size_t kInlineArity = 4;

  FlatIdTable() = default;
  explicit FlatIdTable(size_t arity, size_t expected_keys = 0) {
    Reset(arity, expected_keys);
  }

  /// Drops all entries (and the key arena) and re-keys the table on
  /// `arity` ids, pre-sizing for `expected_keys` live keys.
  void Reset(size_t arity, size_t expected_keys = 0);

  /// Hash of `key` (arity() ids). Exposed so batched callers can hash
  /// once, prefetch, and later resolve via FindHashed.
  uint64_t Hash(const ValueId* key) const;

  /// Prefetches the control word + slots of the home bucket for `hash`.
  void Prefetch(uint64_t hash) const;

  /// Payload stored under `key`, or kNotFound.
  uint32_t Find(const ValueId* key) const { return FindHashed(Hash(key), key); }
  uint32_t FindHashed(uint64_t hash, const ValueId* key) const;

  /// Payload already stored under `key` if present; otherwise inserts
  /// `fresh_payload` and returns it. `fresh_payload` must not be
  /// kNotFound.
  uint32_t InsertOrGet(const ValueId* key, uint32_t fresh_payload);

  /// Tombstones `key`. Returns false when the key is absent. Arena
  /// storage of erased long keys is reclaimed only by Reset.
  bool Erase(const ValueId* key);

  size_t size() const { return live_; }
  size_t arity() const { return arity_; }
  size_t num_buckets() const { return tags_.size(); }

 private:
  size_t SlotStride() const {
    // Arity 0 (a key over no attributes) still needs one slot word so
    // slot indexing stays well-formed; the ids are never read.
    return (arity_ == 0 || arity_ > kInlineArity) ? 1 : arity_;
  }
  const ValueId* SlotKey(size_t slot) const;
  void PlaceKey(size_t slot, const ValueId* key, bool copy_ids);
  bool KeyEquals(size_t slot, const ValueId* key) const;
  void Rehash(size_t min_live);

  size_t arity_ = 0;
  size_t live_ = 0;  ///< occupied slots
  size_t used_ = 0;  ///< occupied + tombstoned slots (drives resize)
  std::vector<uint64_t> tags_;      ///< one control word per bucket
  std::vector<ValueId> slot_keys_;  ///< inline ids, or arena offsets
  std::vector<uint32_t> payloads_;  ///< one per slot
  std::vector<ValueId> arena_;      ///< long-key storage, arity_ each
};

/// \brief KeyIndex contract on FlatIdTable storage (see file comment).
class FlatKeyIndex {
 public:
  FlatKeyIndex() = default;
  /// Builds the index over `rel` keyed by the projection on `attrs`.
  FlatKeyIndex(const Relation& rel, std::vector<AttrId> attrs);

  /// Row positions whose projection equals `values` (list order matters).
  RowSpan Lookup(const std::vector<Value>& values) const;

  /// Row positions matching the projection of `t` (a tuple over another
  /// schema) on `probe_attrs`; |probe_attrs| must equal the key arity.
  /// `bridge`, when given, must translate t's pool into the indexed pool.
  RowSpan LookupTuple(const Tuple& t, const std::vector<AttrId>& probe_attrs,
                      PoolBridge* bridge = nullptr) const;

  const std::vector<AttrId>& key_attrs() const { return attrs_; }
  size_t num_keys() const { return table_.size(); }
  /// The pool the keys are interned in (the indexed relation's pool).
  const PoolPtr& pool() const { return pool_; }
  /// The underlying table — for ProbeBatch and bucket prefetching.
  const FlatIdTable& table() const { return table_; }

  /// Postings run of a payload returned by table() lookups.
  RowSpan Rows(uint32_t payload) const {
    return RowSpan(postings_.data() + offsets_[payload],
                   offsets_[payload + 1] - offsets_[payload]);
  }

 private:
  std::vector<AttrId> attrs_;
  PoolPtr pool_;
  FlatIdTable table_;
  std::vector<size_t> offsets_;   ///< per payload, +1 sentinel
  std::vector<size_t> postings_;  ///< all rows, grouped by key
};

/// \brief Staged probes against one FlatKeyIndex (software pipelining).
///
/// Usage per block: Clear(); Add(...) for every tuple in the block
/// (hashes the key and prefetches its bucket); then Resolve(i) in any
/// order once the block is staged. Single-threaded, reusable.
class ProbeBatch {
 public:
  explicit ProbeBatch(const FlatKeyIndex* index) : index_(index) {}

  void Clear() {
    hashes_.clear();
    keys_.clear();
  }

  /// Stages the probe for `t` projected on `probe_attrs` and returns its
  /// position in the batch. A projection that does not translate into
  /// the indexed pool stages a guaranteed-miss entry.
  size_t Add(const Tuple& t, const std::vector<AttrId>& probe_attrs,
             PoolBridge* bridge = nullptr);

  /// Resolves staged probe `i` to its row postings.
  RowSpan Resolve(size_t i) const;

  size_t size() const { return hashes_.size(); }

 private:
  static constexpr uint64_t kMissHash = ~0ULL;  ///< untranslatable probe
  const FlatKeyIndex* index_;
  std::vector<uint64_t> hashes_;
  std::vector<ValueId> keys_;  ///< arity-strided staged keys
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_FLAT_KEY_INDEX_H_
