/// \file relation.h
/// \brief In-memory relation: a schema plus dictionary-encoded columns.

#ifndef CERTFIX_RELATIONAL_RELATION_H_
#define CERTFIX_RELATIONAL_RELATION_H_

#include <iterator>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "util/result.h"

namespace certfix {

/// \brief A bag of tuples over one schema. Master relations Dm and input
/// batches D are both Relation instances.
///
/// Storage is columnar: one vector of ValueIds per attribute, all ids
/// interned in the relation's ValuePool. Row access (at / iteration)
/// materializes a Tuple view that shares the pool — copying such a view
/// copies 4-byte ids, never strings. Copying a Relation copies the column
/// vectors and shares the pool (pools are append-only dictionaries, so
/// sharing is safe; see value_pool.h for the threading contract).
class Relation {
 public:
  Relation() = default;
  explicit Relation(SchemaPtr schema)
      : Relation(std::move(schema), std::make_shared<ValuePool>()) {}
  /// A relation interning into an existing (shared) pool.
  Relation(SchemaPtr schema, PoolPtr pool)
      : schema_(std::move(schema)),
        pool_(std::move(pool)),
        cols_(schema_->num_attrs()) {}

  const SchemaPtr& schema() const { return schema_; }
  const PoolPtr& pool() const { return pool_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Materializes row `i` as a Tuple sharing this relation's pool.
  Tuple at(size_t i) const;

  /// One cell, resolved through the pool. The reference is stable for the
  /// pool's lifetime.
  const Value& Cell(size_t row, AttrId attr) const {
    return pool_->value(cols_[attr][row]);
  }
  /// One cell's interned id (pool-local).
  ValueId CellId(size_t row, AttrId attr) const { return cols_[attr][row]; }

  /// Overwrites one cell, interning the value.
  void SetCell(size_t row, AttrId attr, Value v);

  /// Overwrites row `row` with `t`'s cells. Same-pool tuples copy ids;
  /// cross-pool tuples re-intern only the cells that actually differ.
  void SetRow(size_t row, const Tuple& t);

  /// Cell-level dirty tracking: overwrites row `row` with `t`'s cells and
  /// returns the set of attributes whose value actually changed. Unchanged
  /// cells keep their interned ids untouched (columns are reused), so an
  /// upsert that repeats the current row is a guaranteed no-op — the
  /// incremental engine skips re-repair on an empty mask. Bumps the row
  /// version iff the mask is non-empty.
  AttrSet UpdateRow(size_t row, const Tuple& t);

  /// Versioned rows (opt-in): after TrackRowVersions(), every row carries
  /// a version counter starting at 1, bumped by any mutation that changes
  /// one of its cells (SetCell, SetRow, UpdateRow). row_version returns 0
  /// while tracking is off. Gives snapshot caches and diagnostics a cheap
  /// changed-since check without diffing cells; off by default so
  /// relations that never ask pay nothing.
  void TrackRowVersions();
  bool tracking_row_versions() const { return track_versions_; }
  uint64_t row_version(size_t row) const {
    return track_versions_ ? versions_[row] : 0;
  }

  /// Appends a tuple; fails if the tuple's schema differs.
  Status Append(const Tuple& t);
  /// Appends parsing from strings (interns directly, no temporary tuple).
  Status AppendStrings(const std::vector<std::string>& fields);

  /// An all-null tuple bound to this relation's schema and pool (so that
  /// bulk loaders intern straight into the relation's dictionary).
  Tuple NewTuple() const { return Tuple(schema_, pool_); }

  void Reserve(size_t n) {
    for (auto& col : cols_) col.reserve(n);
  }
  /// Drops all rows. The append-only pool keeps previously interned
  /// values (cheap, and outstanding row views stay valid); call
  /// ClearAndReleasePool to also reclaim the dictionary when reusing one
  /// Relation across many batches.
  void Clear() {
    for (auto& col : cols_) col.clear();
    versions_.clear();
    num_rows_ = 0;
  }

  /// The id column of one attribute (index builders scan this directly).
  const std::vector<ValueId>& Column(AttrId attr) const { return cols_[attr]; }

  /// Distinct values of one attribute (the attribute's active domain),
  /// ascending. Deduplication is by id, one comparison word per row.
  std::vector<Value> DistinctValues(AttrId attr) const;

  /// All constants appearing anywhere in the relation, ascending.
  std::vector<Value> ActiveDomain() const;

  /// First `n` rows rendered as a table (for examples and debugging).
  std::string ToString(size_t max_rows = 10) const;

  /// Input iterator over materialized row views.
  class RowIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = Tuple;

    RowIterator(const Relation* rel, size_t i) : rel_(rel), i_(i) {}
    Tuple operator*() const { return rel_->at(i_); }
    RowIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const RowIterator& o) const { return i_ == o.i_; }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    const Relation* rel_;
    size_t i_;
  };

  RowIterator begin() const { return RowIterator(this, 0); }
  RowIterator end() const { return RowIterator(this, num_rows_); }

  /// Clears rows; when nothing else shares the pool, the dictionary is
  /// reset too so reuse cycles do not accumulate dead values. (A shared
  /// pool — other relations or outstanding row views — is kept as is.)
  void ClearAndReleasePool();

 private:
  void BumpVersion(size_t row) {
    if (track_versions_) ++versions_[row];
  }

  SchemaPtr schema_;
  PoolPtr pool_;
  std::vector<std::vector<ValueId>> cols_;  // cols_[attr][row]
  size_t num_rows_ = 0;
  bool track_versions_ = false;
  std::vector<uint64_t> versions_;  // per row, maintained when tracking
};

/// ProjectKey over a stored row without materializing a Tuple (same key
/// format as ProjectKey(const Tuple&, ...) in tuple.h).
std::string ProjectKey(const Relation& rel, size_t row,
                       const std::vector<AttrId>& attrs);

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_RELATION_H_
