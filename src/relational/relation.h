/// \file relation.h
/// \brief In-memory relation: a schema plus a vector of tuples.

#ifndef CERTFIX_RELATIONAL_RELATION_H_
#define CERTFIX_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/tuple.h"
#include "util/result.h"

namespace certfix {

/// \brief A bag of tuples over one schema. Master relations Dm and input
/// batches D are both Relation instances.
class Relation {
 public:
  Relation() = default;
  explicit Relation(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& at(size_t i) const { return tuples_[i]; }
  Tuple& at(size_t i) { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple; fails if the tuple's schema differs.
  Status Append(Tuple t);
  /// Appends parsing from strings.
  Status AppendStrings(const std::vector<std::string>& fields);

  void Reserve(size_t n) { tuples_.reserve(n); }
  void Clear() { tuples_.clear(); }

  /// Distinct values of one attribute (the attribute's active domain).
  std::vector<Value> DistinctValues(AttrId attr) const;

  /// All constants appearing anywhere in the relation.
  std::vector<Value> ActiveDomain() const;

  /// First `n` rows rendered as a table (for examples and debugging).
  std::string ToString(size_t max_rows = 10) const;

  std::vector<Tuple>::iterator begin() { return tuples_.begin(); }
  std::vector<Tuple>::iterator end() { return tuples_.end(); }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

 private:
  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_RELATION_H_
