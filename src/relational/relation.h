/// \file relation.h
/// \brief In-memory relation: a schema plus dictionary-encoded columns.

#ifndef CERTFIX_RELATIONAL_RELATION_H_
#define CERTFIX_RELATIONAL_RELATION_H_

#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "relational/tuple.h"
#include "util/result.h"

namespace certfix {

/// \brief One attribute's id column: either an owned vector or a borrowed
/// span into a read-only backing (a memory-mapped snapshot section).
///
/// The storage layer loads master relations out-of-core by handing each
/// column a pointer into the mapped file plus a shared handle that keeps
/// the mapping alive. Reads are identical either way; the first mutation
/// (Set / PushBack) promotes a borrowed column to an owned copy, so the
/// Relation API keeps its value semantics and index builders never see a
/// column change representation underneath them mid-scan (the engines
/// mutate only from the single caller thread).
class IdColumn {
 public:
  IdColumn() = default;
  /// Borrows `size` ids at `data`; `backing` keeps the bytes alive (and
  /// must remain immutable for its lifetime).
  IdColumn(const ValueId* data, size_t size,
           std::shared_ptr<const void> backing)
      : data_(data), size_(size), backing_(std::move(backing)) {}

  IdColumn(const IdColumn& o) { *this = o; }
  IdColumn& operator=(const IdColumn& o) {
    if (this == &o) return *this;
    owned_ = o.owned_;
    backing_ = o.backing_;
    if (backing_ != nullptr) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      Sync();
    }
    return *this;
  }
  IdColumn(IdColumn&& o) noexcept { *this = std::move(o); }
  IdColumn& operator=(IdColumn&& o) noexcept {
    if (this == &o) return *this;
    owned_ = std::move(o.owned_);
    backing_ = std::move(o.backing_);
    if (backing_ != nullptr) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      Sync();
    }
    o.owned_.clear();
    o.backing_.reset();
    o.Sync();
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ValueId operator[](size_t i) const { return data_[i]; }
  const ValueId* data() const { return data_; }
  const ValueId* begin() const { return data_; }
  const ValueId* end() const { return data_ + size_; }
  /// True while the column still reads from a borrowed (mapped) backing.
  bool mapped() const { return backing_ != nullptr; }

  void Set(size_t i, ValueId id) {
    Promote();
    owned_[i] = id;
  }
  void PushBack(ValueId id) {
    Promote();
    owned_.push_back(id);
    Sync();
  }
  void Reserve(size_t n) {
    if (backing_ != nullptr) return;  // promotion re-allocates anyway
    owned_.reserve(n);
    Sync();
  }
  void Clear() {
    owned_.clear();
    backing_.reset();
    Sync();
  }

 private:
  void Promote() {
    if (backing_ == nullptr) return;
    owned_.assign(data_, data_ + size_);
    backing_.reset();
    Sync();
  }
  void Sync() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  std::vector<ValueId> owned_;
  const ValueId* data_ = nullptr;  // always valid: owned_ or the backing
  size_t size_ = 0;
  std::shared_ptr<const void> backing_;
};

/// \brief A bag of tuples over one schema. Master relations Dm and input
/// batches D are both Relation instances.
///
/// Storage is columnar: one vector of ValueIds per attribute, all ids
/// interned in the relation's ValuePool. Row access (at / iteration)
/// materializes a Tuple view that shares the pool — copying such a view
/// copies 4-byte ids, never strings. Copying a Relation copies the column
/// vectors and shares the pool (pools are append-only dictionaries, so
/// sharing is safe; see value_pool.h for the threading contract).
class Relation {
 public:
  Relation() = default;
  explicit Relation(SchemaPtr schema)
      : Relation(std::move(schema), std::make_shared<ValuePool>()) {}
  /// A relation interning into an existing (shared) pool.
  Relation(SchemaPtr schema, PoolPtr pool)
      : schema_(std::move(schema)),
        pool_(std::move(pool)),
        cols_(schema_->num_attrs()) {}
  /// Adopts pre-built columns (the snapshot loader's entry point: columns
  /// may borrow mapped spans, ids must be valid in `pool`). All columns
  /// must have exactly `num_rows` ids.
  Relation(SchemaPtr schema, PoolPtr pool, std::vector<IdColumn> cols,
           size_t num_rows)
      : schema_(std::move(schema)),
        pool_(std::move(pool)),
        cols_(std::move(cols)),
        num_rows_(num_rows) {}

  const SchemaPtr& schema() const { return schema_; }
  const PoolPtr& pool() const { return pool_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Materializes row `i` as a Tuple sharing this relation's pool.
  Tuple at(size_t i) const;

  /// One cell, resolved through the pool. The reference is stable for the
  /// pool's lifetime.
  const Value& Cell(size_t row, AttrId attr) const {
    return pool_->value(cols_[attr][row]);
  }
  /// One cell's interned id (pool-local).
  ValueId CellId(size_t row, AttrId attr) const { return cols_[attr][row]; }

  /// Overwrites one cell, interning the value.
  void SetCell(size_t row, AttrId attr, Value v);

  /// Overwrites row `row` with `t`'s cells. Same-pool tuples copy ids;
  /// cross-pool tuples re-intern only the cells that actually differ.
  void SetRow(size_t row, const Tuple& t);

  /// Cell-level dirty tracking: overwrites row `row` with `t`'s cells and
  /// returns the set of attributes whose value actually changed. Unchanged
  /// cells keep their interned ids untouched (columns are reused), so an
  /// upsert that repeats the current row is a guaranteed no-op — the
  /// incremental engine skips re-repair on an empty mask. Bumps the row
  /// version iff the mask is non-empty.
  AttrSet UpdateRow(size_t row, const Tuple& t);

  /// Versioned rows (opt-in): after TrackRowVersions(), every row carries
  /// a version counter starting at 1, bumped by any mutation that changes
  /// one of its cells (SetCell, SetRow, UpdateRow). row_version returns 0
  /// while tracking is off. Gives snapshot caches and diagnostics a cheap
  /// changed-since check without diffing cells; off by default so
  /// relations that never ask pay nothing.
  void TrackRowVersions();
  bool tracking_row_versions() const { return track_versions_; }
  uint64_t row_version(size_t row) const {
    return track_versions_ ? versions_[row] : 0;
  }

  /// Appends a tuple; fails if the tuple's schema differs.
  Status Append(const Tuple& t);
  /// Appends parsing from strings (interns directly, no temporary tuple).
  Status AppendStrings(const std::vector<std::string>& fields);

  /// An all-null tuple bound to this relation's schema and pool (so that
  /// bulk loaders intern straight into the relation's dictionary).
  Tuple NewTuple() const { return Tuple(schema_, pool_); }

  void Reserve(size_t n) {
    for (auto& col : cols_) col.Reserve(n);
  }
  /// Drops all rows. The append-only pool keeps previously interned
  /// values (cheap, and outstanding row views stay valid); call
  /// ClearAndReleasePool to also reclaim the dictionary when reusing one
  /// Relation across many batches.
  void Clear() {
    for (auto& col : cols_) col.Clear();
    versions_.clear();
    num_rows_ = 0;
  }

  /// The id column of one attribute (index builders scan this directly).
  const IdColumn& Column(AttrId attr) const { return cols_[attr]; }
  /// Number of columns still reading from a mapped backing (diagnostics).
  size_t mapped_columns() const {
    size_t n = 0;
    for (const auto& col : cols_) n += col.mapped() ? 1 : 0;
    return n;
  }

  /// Distinct values of one attribute (the attribute's active domain),
  /// ascending. Deduplication is by id, one comparison word per row.
  std::vector<Value> DistinctValues(AttrId attr) const;

  /// All constants appearing anywhere in the relation, ascending.
  std::vector<Value> ActiveDomain() const;

  /// First `n` rows rendered as a table (for examples and debugging).
  std::string ToString(size_t max_rows = 10) const;

  /// Input iterator over materialized row views.
  class RowIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = Tuple;

    RowIterator(const Relation* rel, size_t i) : rel_(rel), i_(i) {}
    Tuple operator*() const { return rel_->at(i_); }
    RowIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const RowIterator& o) const { return i_ == o.i_; }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    const Relation* rel_;
    size_t i_;
  };

  RowIterator begin() const { return RowIterator(this, 0); }
  RowIterator end() const { return RowIterator(this, num_rows_); }

  /// Clears rows; when nothing else shares the pool, the dictionary is
  /// reset too so reuse cycles do not accumulate dead values. (A shared
  /// pool — other relations or outstanding row views — is kept as is.)
  void ClearAndReleasePool();

 private:
  void BumpVersion(size_t row) {
    if (track_versions_) ++versions_[row];
  }

  SchemaPtr schema_;
  PoolPtr pool_;
  std::vector<IdColumn> cols_;  // cols_[attr][row]
  size_t num_rows_ = 0;
  bool track_versions_ = false;
  std::vector<uint64_t> versions_;  // per row, maintained when tracking
};

/// ProjectKey over a stored row without materializing a Tuple (same key
/// format as ProjectKey(const Tuple&, ...) in tuple.h).
std::string ProjectKey(const Relation& rel, size_t row,
                       const std::vector<AttrId>& attrs);

}  // namespace certfix

#endif  // CERTFIX_RELATIONAL_RELATION_H_
