#include "storage/io_util.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace certfix {
namespace storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  const uint8_t* q = *p;
  while (q < end && shift < 70) {
    uint8_t byte = *q++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed on " + path);
  return bytes;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("write", tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

Result<std::shared_ptr<MappedFile>> MappedFile::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Errno("mmap", path);
    }
    data = static_cast<const uint8_t*>(addr);
  }
  ::close(fd);  // the mapping survives the fd
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace storage
}  // namespace certfix
