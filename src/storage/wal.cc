#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/io_util.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace certfix {
namespace storage {

namespace {

constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderSize = 16;
/// Frames longer than this are treated as a torn length field, not a
/// record (deltas are rows, not blobs).
constexpr uint32_t kMaxPayload = 1u << 30;

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

std::string EncodeDelta(const Delta& delta) {
  std::string payload;
  payload.push_back(static_cast<char>(delta.kind));
  PutVarint(&payload, delta.row);
  PutVarint(&payload, delta.fields.size());
  for (const std::string& f : delta.fields) {
    PutVarint(&payload, f.size());
    payload.append(f);
  }
  return payload;
}

Status DecodeDelta(const uint8_t* p, size_t len, Delta* delta,
                   const std::string& path) {
  const uint8_t* end = p + len;
  auto bad = [&path](const std::string& what) {
    return Status::ParseError("wal " + path + ": CRC-valid record failed to "
                              "parse (" + what + ")");
  };
  if (p >= end) return bad("empty payload");
  uint8_t kind = *p++;
  if (kind > static_cast<uint8_t>(DeltaKind::kMasterDelete)) {
    return bad("kind " + std::to_string(kind));
  }
  delta->kind = static_cast<DeltaKind>(kind);
  uint64_t row = 0;
  uint64_t nfields = 0;
  if (!GetVarint(&p, end, &row)) return bad("row varint");
  if (!GetVarint(&p, end, &nfields)) return bad("field count varint");
  if (nfields > len) return bad("field count exceeds payload");
  delta->row = row;
  delta->fields.clear();
  delta->fields.reserve(nfields);
  for (uint64_t i = 0; i < nfields; ++i) {
    uint64_t flen = 0;
    if (!GetVarint(&p, end, &flen)) return bad("field length varint");
    if (flen > static_cast<uint64_t>(end - p)) return bad("field overrun");
    delta->fields.emplace_back(reinterpret_cast<const char*>(p),
                               static_cast<size_t>(flen));
    p += flen;
  }
  if (p != end) return bad("trailing payload bytes");
  return Status::OK();
}

std::string WalHeader() {
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutU32(&header, kWalVersion);
  PutU32(&header, Crc32(header.data(), header.size()));
  return header;
}

Status CheckHeader(const std::string& bytes, const std::string& path) {
  if (bytes.size() < kWalHeaderSize) {
    return Status::ParseError("wal " + path + ": short header");
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::ParseError("wal " + path + ": bad magic");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  if (ReadU32(p + 12) != Crc32(p, 12)) {
    return Status::ParseError("wal " + path + ": header CRC mismatch");
  }
  if (ReadU32(p + 8) != kWalVersion) {
    return Status::ParseError("wal " + path + ": unsupported version");
  }
  return Status::OK();
}

/// Walks the frames of `bytes`, filling `scan`. The prefix up to
/// tail_offset is intact (length + CRC both check out); everything after
/// is the torn/corrupt tail.
void ScanFrames(const std::string& bytes, WalScan* scan) {
  const uint8_t* base = reinterpret_cast<const uint8_t*>(bytes.data());
  uint64_t pos = kWalHeaderSize;
  scan->boundaries.push_back(pos);
  while (pos + 8 <= bytes.size()) {
    uint32_t len = ReadU32(base + pos);
    uint32_t crc = ReadU32(base + pos + 4);
    if (len > kMaxPayload || pos + 8 + len > bytes.size()) break;
    if (Crc32(base + pos + 8, len) != crc) break;
    pos += 8 + len;
    scan->boundaries.push_back(pos);
  }
  scan->tail_offset = pos;
  scan->discarded_bytes = bytes.size() - pos;
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// CSV codec behind the shared DeltaSource interface, owning its stream.
class FileDeltaLogSource : public DeltaSource {
 public:
  FileDeltaLogSource(SchemaPtr schema, SchemaPtr master_schema,
                     const std::string& path)
      : in_(path),
        source_(std::move(schema), std::move(master_schema), in_) {}

  Result<bool> Next(Delta* delta) override { return source_.Next(delta); }

 private:
  std::ifstream in_;
  DeltaLogSource source_;
};

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     Options options) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open", path);
  std::string header = WalHeader();
  Status st = WriteAll(fd, header.data(), header.size(), path);
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync", path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, kWalHeaderSize, options));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, Options options, uint64_t* valid_records) {
  WalScan scan;
  CERTFIX_ASSIGN_OR_RETURN(scan, ScanWal(path));
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open", path);
  // Drop the torn tail so the next append starts on a record boundary —
  // otherwise the dead bytes would shadow every future record.
  if (scan.discarded_bytes > 0 &&
      ::ftruncate(fd, static_cast<off_t>(scan.tail_offset)) != 0) {
    ::close(fd);
    return Errno("ftruncate", path);
  }
  if (::lseek(fd, static_cast<off_t>(scan.tail_offset), SEEK_SET) < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  if (valid_records != nullptr) *valid_records = scan.boundaries.size() - 1;
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, scan.tail_offset, options));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const Delta& delta) {
  CERTFIX_SPAN("wal.append");
  telemetry::ScopedLatency latency(CERTFIX_TL_HISTOGRAM("wal.append_ns"));
  std::string payload = EncodeDelta(delta);
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  CERTFIX_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size(), "wal"));
  offset_ += frame.size();
  ++records_;
  CERTFIX_TL_COUNTER("wal.appends")->Increment();
  CERTFIX_TL_COUNTER("wal.append_bytes")->Add(frame.size());
  if (options_.sync_every_append) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync", "wal");
  CERTFIX_TL_COUNTER("wal.fsyncs")->Increment();
  return Status::OK();
}

Result<WalScan> ScanWal(const std::string& path) {
  std::string bytes;
  CERTFIX_ASSIGN_OR_RETURN(bytes, ReadFileBytes(path));
  CERTFIX_RETURN_IF_ERROR(CheckHeader(bytes, path));
  WalScan scan;
  ScanFrames(bytes, &scan);
  return scan;
}

Result<std::unique_ptr<WalReader>> WalReader::Open(const std::string& path) {
  std::string bytes;
  CERTFIX_ASSIGN_OR_RETURN(bytes, ReadFileBytes(path));
  CERTFIX_RETURN_IF_ERROR(CheckHeader(bytes, path));
  std::unique_ptr<WalReader> reader(
      new WalReader(std::move(bytes), path));
  WalScan scan;
  ScanFrames(reader->bytes_, &scan);
  reader->pos_ = kWalHeaderSize;
  reader->tail_offset_ = scan.tail_offset;
  reader->discarded_ = scan.discarded_bytes;
  if (reader->discarded_ > 0) {
    CERTFIX_TL_COUNTER("wal.truncated_tails")->Increment();
    CERTFIX_TL_COUNTER("wal.discarded_bytes")->Add(reader->discarded_);
  }
  return reader;
}

Result<bool> WalReader::Next(Delta* delta) {
  if (done_ || pos_ >= tail_offset_) {
    done_ = true;
    return false;
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(bytes_.data());
  uint32_t len = ReadU32(base + pos_);
  CERTFIX_RETURN_IF_ERROR(
      DecodeDelta(base + pos_ + 8, len, delta, path_));
  pos_ += 8 + len;
  ++records_;
  CERTFIX_TL_COUNTER("wal.replayed_records")->Increment();
  return true;
}

Result<std::unique_ptr<DeltaSource>> OpenDeltaLog(SchemaPtr schema,
                                                  SchemaPtr master_schema,
                                                  const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return Status::NotFound("cannot open delta log: " + path);
  char magic[sizeof(kWalMagic)] = {};
  probe.read(magic, sizeof(magic));
  bool is_wal = probe.gcount() == sizeof(magic) &&
                std::memcmp(magic, kWalMagic, sizeof(magic)) == 0;
  probe.close();
  if (is_wal) {
    std::unique_ptr<WalReader> reader;
    CERTFIX_ASSIGN_OR_RETURN(reader, WalReader::Open(path));
    return std::unique_ptr<DeltaSource>(std::move(reader));
  }
  return std::unique_ptr<DeltaSource>(std::make_unique<FileDeltaLogSource>(
      std::move(schema), std::move(master_schema), path));
}

}  // namespace storage
}  // namespace certfix
