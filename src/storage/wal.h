/// \file wal.h
/// \brief Crash-safe write-ahead delta log. Every accepted mutation is
/// appended and fsynced here BEFORE it is applied to the engine (the
/// SQLite discipline: append, sync, apply), so recovery = snapshot load +
/// WAL replay reproduces the engine state byte-for-byte.
///
/// On-disk layout (little-endian):
///
/// ```
/// header (16 bytes): magic "CFXWAL1\n", version u32 (=1),
///                    crc u32 over the first 12 bytes
/// record*: payload_len u32, payload_crc u32, payload bytes
/// payload: kind u8 (DeltaKind), row varint, nfields varint,
///          then per field varint length + bytes
/// ```
///
/// Tail discipline: a crash can leave a torn final record (short frame or
/// CRC mismatch). Readers stop cleanly at the first bad frame and report
/// the discarded byte count — the prefix up to there is exactly the set
/// of mutations that were durably applied. A CRC-valid payload that does
/// not parse is NOT a torn tail; it fails loudly (format bug or
/// deliberate tampering, never a crash artifact).
///
/// The CSV delta-log text format (stream/delta_source.h) remains readable
/// as a second codec: OpenDeltaLog sniffs the magic and returns either a
/// WalReader or a DeltaLogSource over the same DeltaSource interface.

#ifndef CERTFIX_STORAGE_WAL_H_
#define CERTFIX_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "stream/delta_source.h"
#include "util/result.h"

namespace certfix {
namespace storage {

/// Leading bytes of a binary WAL file (also the codec-sniff key).
inline constexpr char kWalMagic[8] = {'C', 'F', 'X', 'W', 'A', 'L', '1',
                                      '\n'};

struct WalWriterOptions {
  /// fsync after every Append. Off batches syncs into explicit Sync()
  /// calls — faster, but deltas since the last sync may be lost on
  /// crash (they were never acknowledged as durable).
  bool sync_every_append = true;
};

/// \brief Appender. Not thread-safe (the delta stream is single-caller,
/// same contract as DeltaRepairEngine).
class WalWriter {
 public:
  using Options = WalWriterOptions;

  /// Creates a fresh WAL (truncating any existing file), writes and
  /// syncs the header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   Options options = {});
  /// Opens an existing WAL for append: scans it, truncates any torn tail
  /// (so the next record lands on a clean boundary), and positions at
  /// the end. `*valid_records`, if given, receives the intact count.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, Options options = {},
      uint64_t* valid_records = nullptr);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record; with sync_every_append the record is durable
  /// when this returns. Telemetry: wal.appends / wal.append_bytes /
  /// wal.append_ns / wal.fsyncs.
  Status Append(const Delta& delta);
  /// fsyncs outstanding appends.
  Status Sync();

  uint64_t records_appended() const { return records_; }
  /// Current end offset (== file size while the writer is open).
  uint64_t tail_offset() const { return offset_; }

 private:
  WalWriter(int fd, uint64_t offset, Options options)
      : fd_(fd), offset_(offset), options_(options) {}
  int fd_;
  uint64_t offset_;
  uint64_t records_ = 0;
  Options options_;
};

/// \brief Replays a WAL as a DeltaSource. Next() returns false at the
/// clean end of the intact prefix; torn tails are discarded silently
/// (check discarded_bytes / tail_offset afterwards).
class WalReader : public DeltaSource {
 public:
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  Result<bool> Next(Delta* delta) override;

  uint64_t records_read() const { return records_; }
  /// Offset of the first byte after the last intact record.
  uint64_t tail_offset() const { return tail_offset_; }
  /// Bytes after tail_offset (a torn or corrupt tail; 0 when clean).
  uint64_t discarded_bytes() const { return discarded_; }

 private:
  WalReader(std::string bytes, std::string path)
      : bytes_(std::move(bytes)), path_(std::move(path)) {}
  std::string bytes_;
  std::string path_;
  uint64_t pos_ = 0;
  uint64_t tail_offset_ = 0;
  uint64_t records_ = 0;
  uint64_t discarded_ = 0;
  bool done_ = false;
};

/// \brief Structural scan (tests and tools): record boundaries of the
/// intact prefix, the clean tail offset, and discarded tail bytes.
struct WalScan {
  /// boundaries[i] = offset where record i starts; a final entry marks
  /// the clean end, so boundaries.size() == intact records + 1.
  std::vector<uint64_t> boundaries;
  uint64_t tail_offset = 0;
  uint64_t discarded_bytes = 0;
};
Result<WalScan> ScanWal(const std::string& path);

/// \brief Codec sniff: opens `path` as a binary WAL (magic match) or as
/// the CSV delta-log text format, behind one DeltaSource. The returned
/// source owns its underlying stream.
Result<std::unique_ptr<DeltaSource>> OpenDeltaLog(SchemaPtr schema,
                                                  SchemaPtr master_schema,
                                                  const std::string& path);

}  // namespace storage
}  // namespace certfix

#endif  // CERTFIX_STORAGE_WAL_H_
