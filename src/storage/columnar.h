/// \file columnar.h
/// \brief Persistent columnar snapshot of a Relation (the master store of
/// ROADMAP item 2): a dictionary page serializing the ValuePool plus one
/// block of dense uint32 ValueIds per attribute, all little-endian,
/// versioned and CRC-checked per section.
///
/// File layout (offsets in bytes; every integer little-endian):
///
/// ```
/// header (44 bytes):
///   0  magic "CFXSNAP1"
///   8  version        u32   (currently 1)
///   12 num_attrs      u32
///   16 num_rows       u64
///   24 dict_entries   u32   (pool size, null slot 0 included)
///   28 flags          u32   (bit 0: writer had compression enabled)
///   32 footer_off     u64
///   40 header_crc     u32   (CRC32 of bytes [0, 40))
/// sections, back to back (2 + num_attrs of them):
///   schema    relation name + per-attr name/type (varint strings, u8 type)
///   dict      values for ids 1..dict_entries-1 in id order:
///             tag u8 (1 int / 2 double / 3 string),
///             int: zigzag varint; double: 8-byte IEEE754 LE bit pattern;
///             string: varint length + bytes
///   column*N  encoding u8 (0 raw / 1 delta-varint), then
///             raw: zero padding to 4-byte file alignment, then
///                  num_rows * 4 bytes of u32 ids (mmap-able in place)
///             delta-varint: num_rows varints of zigzag(id[i] - id[i-1])
/// footer:
///   section_count u32, then per section offset u64 / length u64 / crc u32,
///   then footer_crc u32 over the footer bytes before it
/// ```
///
/// The writer replaces the file atomically (tmp + rename + dir fsync), so
/// a crash mid-write never exposes a torn snapshot. The reader verifies
/// every CRC before trusting a byte; raw column blocks are 4-byte aligned
/// so loads beyond the RAM budget borrow the mapped bytes directly
/// (IdColumn's borrowed mode) instead of materializing them.

#ifndef CERTFIX_STORAGE_COLUMNAR_H_
#define CERTFIX_STORAGE_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace certfix {
namespace storage {

struct ColumnarWriteOptions {
  /// Per column, keep the smaller of raw u32 and zigzag-delta varint.
  /// Off forces raw blocks everywhere — required when the file will be
  /// read back under a tight RAM budget (only raw blocks can stay
  /// mapped).
  bool compress = true;
};

struct ColumnarReadOptions {
  /// Materialization budget: columns are copied into owned vectors until
  /// their cumulative raw size exceeds this, after which raw blocks stay
  /// memory-mapped (out-of-core; the page cache decides residency).
  /// Compressed blocks always materialize — varints have no random
  /// access. Default: everything in RAM, as before this layer existed.
  size_t mmap_budget_bytes = static_cast<size_t>(-1);
};

/// What a load actually did, for telemetry and the out-of-core tests.
struct ColumnarLoadInfo {
  size_t mapped_columns = 0;       ///< columns left borrowing the mmap
  uint64_t file_bytes = 0;         ///< on-disk size
  uint64_t materialized_bytes = 0; ///< bytes copied into owned columns
};

/// Serializes `rel` (schema, dictionary, id columns) to `path`,
/// atomically. Records `snapshot.bytes` / `snapshot.writes` telemetry.
Status WriteColumnar(const Relation& rel, const std::string& path,
                     const ColumnarWriteOptions& options = {});

/// Loads a snapshot written by WriteColumnar. The returned Relation owns
/// a fresh pool rebuilt from the dictionary page; raw columns past the
/// RAM budget borrow the file mapping (kept alive by the columns
/// themselves). Any CRC or structural mismatch fails loudly — a snapshot
/// is never silently half-read.
Result<Relation> ReadColumnar(const std::string& path,
                              const ColumnarReadOptions& options = {},
                              ColumnarLoadInfo* info = nullptr);

}  // namespace storage
}  // namespace certfix

#endif  // CERTFIX_STORAGE_COLUMNAR_H_
