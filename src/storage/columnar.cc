#include "storage/columnar.h"

#include <cstring>

#include "storage/io_util.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace certfix {
namespace storage {

namespace {

constexpr char kMagic[8] = {'C', 'F', 'X', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 44;  // magic..footer_off (40) + crc (4)
constexpr uint32_t kFlagCompress = 1;

constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

constexpr uint8_t kEncodingRaw = 0;
constexpr uint8_t kEncodingDeltaVarint = 1;

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::ParseError("snapshot " + path + ": " + what);
}

struct Section {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

void AppendString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool ReadString(const uint8_t** p, const uint8_t* end, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(p, end, &len)) return false;
  if (len > static_cast<uint64_t>(end - *p)) return false;
  s->assign(reinterpret_cast<const char*>(*p), static_cast<size_t>(len));
  *p += len;
  return true;
}

std::string EncodeSchema(const Schema& schema) {
  std::string out;
  AppendString(&out, schema.name());
  for (AttrId a = 0; a < static_cast<AttrId>(schema.num_attrs()); ++a) {
    AppendString(&out, schema.attr_name(a));
    out.push_back(static_cast<char>(schema.attr_type(a)));
  }
  return out;
}

std::string EncodeDict(const ValuePool& pool) {
  std::string out;
  for (ValueId id = 1; id < static_cast<ValueId>(pool.size()); ++id) {
    const Value& v = pool.value(id);
    if (v.is_int()) {
      out.push_back(static_cast<char>(kTagInt));
      PutVarint(&out, ZigzagEncode(v.as_int()));
    } else if (v.is_double()) {
      out.push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      double d = v.as_double();
      static_assert(sizeof(bits) == sizeof(double), "IEEE754 doubles");
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(&out, bits);
    } else {
      // Interned values are never null (slot 0 is the only null).
      out.push_back(static_cast<char>(kTagString));
      AppendString(&out, v.as_string());
    }
  }
  return out;
}

/// Column block bytes given the encoding; `base` is the file offset the
/// section will start at (raw payloads pad to 4-byte file alignment).
std::string EncodeColumn(const IdColumn& col, uint8_t encoding,
                         uint64_t base) {
  std::string out;
  out.push_back(static_cast<char>(encoding));
  if (encoding == kEncodingRaw) {
    while ((base + out.size()) % 4 != 0) out.push_back('\0');
    for (ValueId id : col) PutU32(&out, id);
  } else {
    int64_t prev = 0;
    for (ValueId id : col) {
      PutVarint(&out, ZigzagEncode(static_cast<int64_t>(id) - prev));
      prev = static_cast<int64_t>(id);
    }
  }
  return out;
}

}  // namespace

Status WriteColumnar(const Relation& rel, const std::string& path,
                     const ColumnarWriteOptions& options) {
  CERTFIX_SPAN("snapshot.write");
  const Schema& schema = *rel.schema();
  const ValuePool& pool = *rel.pool();

  std::string file(kHeaderSize, '\0');
  std::vector<Section> sections;
  auto append_section = [&](const std::string& bytes) {
    Section s;
    s.offset = file.size();
    s.length = bytes.size();
    s.crc = Crc32(bytes.data(), bytes.size());
    file += bytes;
    sections.push_back(s);
  };

  append_section(EncodeSchema(schema));
  append_section(EncodeDict(pool));
  for (AttrId a = 0; a < static_cast<AttrId>(schema.num_attrs()); ++a) {
    const IdColumn& col = rel.Column(a);
    std::string raw = EncodeColumn(col, kEncodingRaw, file.size());
    if (options.compress) {
      std::string packed = EncodeColumn(col, kEncodingDeltaVarint, file.size());
      append_section(packed.size() < raw.size() ? packed : raw);
    } else {
      append_section(raw);
    }
  }

  uint64_t footer_off = file.size();
  std::string footer;
  PutU32(&footer, static_cast<uint32_t>(sections.size()));
  for (const Section& s : sections) {
    PutU64(&footer, s.offset);
    PutU64(&footer, s.length);
    PutU32(&footer, s.crc);
  }
  PutU32(&footer, Crc32(footer.data(), footer.size()));
  file += footer;

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU32(&header, static_cast<uint32_t>(schema.num_attrs()));
  PutU64(&header, rel.size());
  PutU32(&header, static_cast<uint32_t>(pool.size()));
  PutU32(&header, options.compress ? kFlagCompress : 0);
  PutU64(&header, footer_off);
  PutU32(&header, Crc32(header.data(), header.size()));
  std::memcpy(&file[0], header.data(), kHeaderSize);

  CERTFIX_RETURN_IF_ERROR(WriteFileAtomic(path, file));
  telemetry::Registry::Global()->GetCounter("snapshot.writes")->Increment();
  telemetry::Registry::Global()->GetCounter("snapshot.bytes")
      ->Add(file.size());
  return Status::OK();
}

Result<Relation> ReadColumnar(const std::string& path,
                              const ColumnarReadOptions& options,
                              ColumnarLoadInfo* info) {
  CERTFIX_SPAN("snapshot.read");
  std::shared_ptr<MappedFile> map;
  CERTFIX_ASSIGN_OR_RETURN(map, MappedFile::Map(path));
  const uint8_t* base = map->data();
  const size_t file_size = map->size();
  if (file_size < kHeaderSize) return Corrupt(path, "short header");
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (ReadU32(base + kHeaderSize - 4) != Crc32(base, kHeaderSize - 4)) {
    return Corrupt(path, "header CRC mismatch");
  }
  uint32_t version = ReadU32(base + 8);
  if (version != kVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(version));
  }
  const uint32_t num_attrs = ReadU32(base + 12);
  const uint64_t num_rows = ReadU64(base + 16);
  const uint32_t dict_entries = ReadU32(base + 24);
  const uint64_t footer_off = ReadU64(base + 32);
  if (dict_entries == 0) return Corrupt(path, "empty dictionary");

  // Footer: section table, itself CRC'd.
  const uint64_t section_count = 2 + static_cast<uint64_t>(num_attrs);
  const uint64_t footer_len = 4 + section_count * 20 + 4;
  if (footer_off < kHeaderSize || footer_off + footer_len != file_size) {
    return Corrupt(path, "footer out of bounds");
  }
  const uint8_t* footer = base + footer_off;
  if (ReadU32(footer + footer_len - 4) != Crc32(footer, footer_len - 4)) {
    return Corrupt(path, "footer CRC mismatch");
  }
  if (ReadU32(footer) != section_count) {
    return Corrupt(path, "section count mismatch");
  }
  std::vector<Section> sections(section_count);
  for (uint64_t i = 0; i < section_count; ++i) {
    const uint8_t* e = footer + 4 + i * 20;
    sections[i].offset = ReadU64(e);
    sections[i].length = ReadU64(e + 8);
    sections[i].crc = ReadU32(e + 16);
    if (sections[i].offset < kHeaderSize || sections[i].length > footer_off ||
        sections[i].offset + sections[i].length > footer_off) {
      return Corrupt(path, "section " + std::to_string(i) + " out of bounds");
    }
    const uint8_t* data = base + sections[i].offset;
    if (Crc32(data, sections[i].length) != sections[i].crc) {
      return Corrupt(path, "section " + std::to_string(i) + " CRC mismatch");
    }
  }

  // Schema section.
  const uint8_t* p = base + sections[0].offset;
  const uint8_t* end = p + sections[0].length;
  std::string rel_name;
  if (!ReadString(&p, end, &rel_name)) return Corrupt(path, "schema name");
  std::vector<Attribute> attrs(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    if (!ReadString(&p, end, &attrs[a].name) || p >= end) {
      return Corrupt(path, "schema attribute " + std::to_string(a));
    }
    uint8_t type = *p++;
    if (type > 2) return Corrupt(path, "bad attribute type");
    attrs[a].type = static_cast<DataType>(type);
  }
  if (p != end) return Corrupt(path, "trailing schema bytes");
  SchemaPtr schema = Schema::Make(rel_name, std::move(attrs));

  // Dictionary section: rebuild the pool in id order.
  PoolPtr pool = std::make_shared<ValuePool>();
  PoolDictionaryBuilder builder(pool);
  p = base + sections[1].offset;
  end = p + sections[1].length;
  for (ValueId id = 1; id < dict_entries; ++id) {
    if (p >= end) return Corrupt(path, "truncated dictionary");
    uint8_t tag = *p++;
    Value v;
    if (tag == kTagInt) {
      uint64_t z = 0;
      if (!GetVarint(&p, end, &z)) return Corrupt(path, "dict int varint");
      v = Value::Int(ZigzagDecode(z));
    } else if (tag == kTagDouble) {
      if (end - p < 8) return Corrupt(path, "truncated dict double");
      uint64_t bits = ReadU64(p);
      p += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      v = Value::Double(d);
    } else if (tag == kTagString) {
      std::string s;
      if (!ReadString(&p, end, &s)) return Corrupt(path, "dict string");
      v = Value::Str(std::move(s));
    } else {
      return Corrupt(path, "bad dict tag " + std::to_string(tag));
    }
    CERTFIX_RETURN_IF_ERROR(builder.Append(v, id));
  }
  if (p != end) return Corrupt(path, "trailing dictionary bytes");

  // Column sections: materialize within the RAM budget, borrow the
  // mapping beyond it (raw blocks only — varints have no random access).
  ColumnarLoadInfo load;
  load.file_bytes = file_size;
  std::vector<IdColumn> cols;
  cols.reserve(num_attrs);
  const bool can_borrow = HostIsLittleEndian();
  uint64_t materialized = 0;
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const Section& s = sections[2 + a];
    if (s.length < 1) return Corrupt(path, "empty column section");
    const uint8_t* cp = base + s.offset;
    const uint8_t* cend = cp + s.length;
    uint8_t encoding = *cp++;
    if (encoding == kEncodingRaw) {
      while ((static_cast<uint64_t>(cp - base)) % 4 != 0) {
        if (cp >= cend || *cp != 0) return Corrupt(path, "bad raw padding");
        ++cp;
      }
      if (static_cast<uint64_t>(cend - cp) != num_rows * 4) {
        return Corrupt(path, "raw column size mismatch");
      }
      const ValueId* ids = reinterpret_cast<const ValueId*>(cp);
      for (uint64_t i = 0; i < num_rows; ++i) {
        if (ReadU32(cp + i * 4) >= dict_entries) {
          return Corrupt(path, "id out of dictionary range");
        }
      }
      bool materialize =
          !can_borrow || materialized + num_rows * 4 <= options.mmap_budget_bytes;
      if (materialize) {
        IdColumn col;
        col.Reserve(num_rows);
        for (uint64_t i = 0; i < num_rows; ++i) col.PushBack(ReadU32(cp + i * 4));
        materialized += num_rows * 4;
        cols.push_back(std::move(col));
      } else {
        ++load.mapped_columns;
        cols.emplace_back(ids, num_rows, map);
      }
    } else if (encoding == kEncodingDeltaVarint) {
      IdColumn col;
      col.Reserve(num_rows);
      int64_t prev = 0;
      for (uint64_t i = 0; i < num_rows; ++i) {
        uint64_t z = 0;
        if (!GetVarint(&cp, cend, &z)) {
          return Corrupt(path, "truncated column varints");
        }
        int64_t id = prev + ZigzagDecode(z);
        if (id < 0 || id >= static_cast<int64_t>(dict_entries)) {
          return Corrupt(path, "id out of dictionary range");
        }
        col.PushBack(static_cast<ValueId>(id));
        prev = id;
      }
      if (cp != cend) return Corrupt(path, "trailing column bytes");
      materialized += num_rows * 4;
      cols.push_back(std::move(col));
    } else {
      return Corrupt(path, "bad column encoding");
    }
  }
  load.materialized_bytes = materialized;
  CERTFIX_TL_GAUGE("snapshot.mapped_columns")->Add(
      static_cast<int64_t>(load.mapped_columns));
  telemetry::Registry::Global()->GetCounter("snapshot.reads")->Increment();
  if (info != nullptr) *info = load;
  return Relation(std::move(schema), std::move(pool), std::move(cols),
                  num_rows);
}

}  // namespace storage
}  // namespace certfix
