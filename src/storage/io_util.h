/// \file io_util.h
/// \brief Byte-level primitives shared by the persistent storage layer:
/// CRC32, varint/zigzag coding, little-endian field access, atomic file
/// replacement, and read-only memory mapping.
///
/// Everything here is deliberately format-agnostic — the columnar
/// snapshot (storage/columnar.h) and the write-ahead log (storage/wal.h)
/// compose these primitives into their on-disk layouts. All multi-byte
/// integers in those formats are little-endian regardless of host order,
/// so the helpers below serialize byte-by-byte.

#ifndef CERTFIX_STORAGE_IO_UTIL_H_
#define CERTFIX_STORAGE_IO_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"

namespace certfix {
namespace storage {

/// CRC-32 (IEEE 802.3 polynomial, same as zlib's crc32) over `len` bytes.
/// Chainable: pass a previous result as `seed` to extend the checksum.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Zigzag mapping so small-magnitude signed deltas get short varints.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// LEB128 unsigned varint append (1..10 bytes).
void PutVarint(std::string* out, uint64_t v);
/// Reads one varint at `*p`, advancing it; false on truncation or a
/// varint longer than 10 bytes. `end` is one past the last readable byte.
bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* v);

/// Fixed-width little-endian appends.
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// Fixed-width little-endian reads (caller guarantees 4/8 readable bytes).
uint32_t ReadU32(const uint8_t* p);
uint64_t ReadU64(const uint8_t* p);

/// Whole-file read into a string (binary, no size limit checks beyond
/// what the filesystem enforces).
Result<std::string> ReadFileBytes(const std::string& path);

/// Durable whole-file replace: writes to `path.tmp`, fsyncs, renames over
/// `path`, then fsyncs the parent directory so the rename itself is
/// durable. The visible file is always either the old or the new bytes.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// fsync on a directory fd, making a preceding rename/creat in it durable.
Status FsyncDir(const std::string& dir);

/// \brief Read-only mmap of a whole file. The mapping lives as long as
/// the object; borrowers (mapped columns) keep it alive through the
/// shared_ptr returned by Map, so a Relation can outlive the loader that
/// opened the file.
class MappedFile {
 public:
  /// Maps `path` read-only. An empty file maps to (nullptr, 0).
  static Result<std::shared_ptr<MappedFile>> Map(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  const uint8_t* data_;
  size_t size_;
};

}  // namespace storage
}  // namespace certfix

#endif  // CERTFIX_STORAGE_IO_UTIL_H_
