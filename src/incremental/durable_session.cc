#include "incremental/durable_session.h"

#include <filesystem>
#include <string_view>
#include <utility>
#include <vector>

#include "rules/rule_parser.h"
#include "storage/io_util.h"
#include "util/string_util.h"

namespace certfix {

namespace {

constexpr char kManifestLine[] = "certfix-durable v1";

std::string ManifestText(uint64_t id) {
  return std::string(kManifestLine) + "\nsnapshot " + std::to_string(id) +
         "\n";
}

Result<uint64_t> ParseManifest(const std::string& text,
                               const std::string& dir) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.size() < 2 || Trim(lines[0]) != kManifestLine) {
    return Status::ParseError("unrecognized MANIFEST in " + dir);
  }
  std::string_view snap = Trim(lines[1]);
  if (!StartsWith(snap, "snapshot ")) {
    return Status::ParseError("MANIFEST missing 'snapshot <N>' in " + dir);
  }
  size_t id = 0;
  if (!ParseSizeStrict(Trim(snap.substr(9)), &id)) {
    return Status::ParseError("bad snapshot id in MANIFEST: " +
                              std::string(snap));
  }
  return static_cast<uint64_t>(id);
}

}  // namespace

Result<std::unique_ptr<DurableSession>> DurableSession::Create(
    const std::string& dir, const RuleSet& rules, const Relation& master,
    const Relation& input, AttrSet trusted, DurableOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create session dir " + dir + ": " +
                            ec.message());
  }
  if (Exists(dir)) {
    return Status::AlreadyExists("durable session already present in " + dir);
  }

  std::unique_ptr<DurableSession> session(new DurableSession());
  session->dir_ = dir;
  session->options_ = options;
  session->rules_ = std::make_unique<RuleSet>(rules);
  session->trusted_ = trusted;
  session->engine_ = std::make_unique<DeltaRepairEngine>(
      *session->rules_, master, trusted, options.engine);
  CERTFIX_RETURN_IF_ERROR(session->engine_->Load(input));

  // Rules and the trusted set are immutable for the session's lifetime;
  // persist them once so Open() needs nothing but the directory.
  CERTFIX_RETURN_IF_ERROR(storage::WriteFileAtomic(
      dir + "/rules.rules", RulesToDsl(*session->rules_)));
  std::string trusted_text;
  for (AttrId id : trusted.ToVector()) {
    if (!trusted_text.empty()) trusted_text += ",";
    trusted_text += session->rules_->r_schema()->attr_name(id);
  }
  trusted_text += "\n";
  CERTFIX_RETURN_IF_ERROR(
      storage::WriteFileAtomic(dir + "/trusted", trusted_text));

  CERTFIX_RETURN_IF_ERROR(session->CommitGeneration(0));
  return session;
}

Result<std::unique_ptr<DurableSession>> DurableSession::Open(
    const std::string& dir, DurableOptions options) {
  CERTFIX_ASSIGN_OR_RETURN(std::string manifest,
                           storage::ReadFileBytes(dir + "/MANIFEST"));
  CERTFIX_ASSIGN_OR_RETURN(uint64_t id, ParseManifest(manifest, dir));

  std::unique_ptr<DurableSession> session(new DurableSession());
  session->dir_ = dir;
  session->options_ = options;
  session->snapshot_id_ = id;

  storage::ColumnarReadOptions master_opts;
  master_opts.mmap_budget_bytes = options.mmap_budget_bytes;
  storage::ColumnarLoadInfo info;
  CERTFIX_ASSIGN_OR_RETURN(
      Relation master,
      storage::ReadColumnar(session->SnapshotPath(id, "master"), master_opts,
                            &info));
  CERTFIX_ASSIGN_OR_RETURN(
      Relation input,
      storage::ReadColumnar(session->SnapshotPath(id, "input")));

  CERTFIX_ASSIGN_OR_RETURN(std::string rules_text,
                           storage::ReadFileBytes(dir + "/rules.rules"));
  CERTFIX_ASSIGN_OR_RETURN(
      RuleSet rules, ParseRules(rules_text, input.schema(), master.schema()));
  session->rules_ = std::make_unique<RuleSet>(std::move(rules));

  CERTFIX_ASSIGN_OR_RETURN(std::string trusted_text,
                           storage::ReadFileBytes(dir + "/trusted"));
  for (const std::string& name : Split(std::string(Trim(trusted_text)), ',')) {
    std::string_view trimmed = Trim(name);
    if (trimmed.empty()) continue;
    CERTFIX_ASSIGN_OR_RETURN(AttrId attr,
                             input.schema()->IndexOf(std::string(trimmed)));
    session->trusted_.Add(attr);
  }

  // Adopt the master by move: columns past the mmap budget stay mapped
  // until (if ever) a master delta promotes them to owned storage.
  session->engine_ = std::make_unique<DeltaRepairEngine>(
      *session->rules_, std::move(master), session->trusted_, options.engine);
  CERTFIX_RETURN_IF_ERROR(session->engine_->Load(input));

  CERTFIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::WalReader> reader,
                           storage::WalReader::Open(session->WalPath(id)));
  Delta delta;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, reader->Next(&delta));
    if (!got) break;
    // A delta the engine rejected at runtime was a deterministic no-op and
    // re-rejects identically here (see the file comment in the header).
    (void)session->engine_->Apply(delta);
  }
  session->recovery_.snapshot_id = id;
  session->recovery_.replayed_records = reader->records_read();
  session->recovery_.discarded_bytes = reader->discarded_bytes();
  session->recovery_.mapped_columns = info.mapped_columns;

  // Reopen for append: truncates the torn tail (if any) so the next
  // accepted delta lands on a clean record boundary.
  uint64_t valid_records = 0;
  storage::WalWriterOptions wal_opts;
  wal_opts.sync_every_append = options.sync_every_append;
  CERTFIX_ASSIGN_OR_RETURN(
      session->wal_, storage::WalWriter::OpenForAppend(
                         session->WalPath(id), wal_opts, &valid_records));
  session->records_since_snapshot_ = valid_records;
  return session;
}

bool DurableSession::Exists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir + "/MANIFEST", ec);
}

DurableSession::~DurableSession() {
  if (wal_ != nullptr) (void)wal_->Sync();
}

Status DurableSession::Apply(const Delta& delta) {
  // Append + fsync BEFORE touching the engine: a delta acknowledged to
  // the caller is always recoverable.
  CERTFIX_RETURN_IF_ERROR(wal_->Append(delta));
  ++records_since_snapshot_;
  Status verdict = engine_->Apply(delta);
  if (options_.snapshot_every > 0 &&
      records_since_snapshot_ >= options_.snapshot_every) {
    CERTFIX_RETURN_IF_ERROR(WriteSnapshot());
  }
  return verdict;
}

Status DurableSession::ApplyAll(DeltaSource* source) {
  Delta delta;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, source->Next(&delta));
    if (!got) return Status::OK();
    CERTFIX_RETURN_IF_ERROR(Apply(delta));
  }
}

Status DurableSession::WriteSnapshot() {
  uint64_t old = snapshot_id_;
  CERTFIX_RETURN_IF_ERROR(CommitGeneration(old + 1));
  // Past the manifest commit point: the old generation is dead weight.
  std::error_code ec;
  std::filesystem::remove(SnapshotPath(old, "master"), ec);
  std::filesystem::remove(SnapshotPath(old, "input"), ec);
  std::filesystem::remove(WalPath(old), ec);
  return Status::OK();
}

Status DurableSession::CommitGeneration(uint64_t id) {
  engine_->Flush();
  storage::ColumnarWriteOptions write_opts;
  write_opts.compress = options_.compress_snapshots;
  CERTFIX_RETURN_IF_ERROR(storage::WriteColumnar(
      engine_->master(), SnapshotPath(id, "master"), write_opts));
  Relation input = engine_->SnapshotInput();
  CERTFIX_RETURN_IF_ERROR(
      storage::WriteColumnar(input, SnapshotPath(id, "input"), write_opts));
  // Fresh empty WAL before the manifest flips: a reader at generation
  // `id` must never find the snapshot without its WAL. Replacing wal_
  // also closes the previous generation's descriptor.
  storage::WalWriterOptions wal_opts;
  wal_opts.sync_every_append = options_.sync_every_append;
  CERTFIX_ASSIGN_OR_RETURN(wal_,
                           storage::WalWriter::Create(WalPath(id), wal_opts));
  // Commit point: atomic rename inside WriteFileAtomic.
  CERTFIX_RETURN_IF_ERROR(
      storage::WriteFileAtomic(dir_ + "/MANIFEST", ManifestText(id)));
  snapshot_id_ = id;
  records_since_snapshot_ = 0;
  return Status::OK();
}

std::string DurableSession::SnapshotPath(uint64_t id,
                                         const char* which) const {
  return dir_ + "/snapshot-" + std::to_string(id) + "." + which + ".col";
}

std::string DurableSession::WalPath(uint64_t id) const {
  return dir_ + "/wal-" + std::to_string(id) + ".log";
}

}  // namespace certfix
