#include "incremental/delta_repair.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "core/repair_memo.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

namespace certfix {

namespace {
/// Jobs staged per probe block (see batch_repair.cc): one PopBatch hands
/// a worker up to this many tuples whose memo and master-index buckets
/// are prefetched together before any repair runs.
constexpr size_t kProbeBlock = 32;
}  // namespace

DeltaMetrics::DeltaMetrics() {
  telemetry::Registry* reg = telemetry::Registry::Global();
  deltas_applied = reg->GetCounter("delta.deltas_applied");
  tuples_repaired = reg->GetCounter("delta.tuples_repaired");
  tuples_invalidated = reg->GetCounter("delta.tuples_invalidated");
  master_rebuilds = reg->GetCounter("delta.master_rebuilds");
  noop_updates = reg->GetCounter("delta.noop_updates");
  memo_hits = reg->GetCounter("delta.memo_hits");
  memo_misses = reg->GetCounter("delta.memo_misses");
  pool_recycles = reg->GetCounter("delta.pool_recycles");
  fully_covered = reg->GetGauge("delta.fully_covered");
  partial = reg->GetGauge("delta.partial");
  untouched = reg->GetGauge("delta.untouched");
  conflicting = reg->GetGauge("delta.conflicting");
  cells_changed = reg->GetGauge("delta.cells_changed");
  max_reorder_global = reg->GetMaxGauge("delta.max_reorder");
  baseline.deltas_applied = deltas_applied->Value();
  baseline.tuples_repaired = tuples_repaired->Value();
  baseline.tuples_invalidated = tuples_invalidated->Value();
  baseline.master_rebuilds = master_rebuilds->Value();
  baseline.noop_updates = noop_updates->Value();
  baseline.memo_hits = memo_hits->Value();
  baseline.memo_misses = memo_misses->Value();
  baseline.pool_recycles = pool_recycles->Value();
  baseline.fully_covered = static_cast<uint64_t>(fully_covered->Value());
  baseline.partial = static_cast<uint64_t>(partial->Value());
  baseline.untouched = static_cast<uint64_t>(untouched->Value());
  baseline.conflicting = static_cast<uint64_t>(conflicting->Value());
  baseline.cells_changed = static_cast<uint64_t>(cells_changed->Value());
}

DeltaRepairStats DeltaMetrics::Snapshot(uint64_t rows) const {
  DeltaRepairStats s;
  s.deltas_applied = deltas_applied->Value() - baseline.deltas_applied;
  s.tuples_repaired = tuples_repaired->Value() - baseline.tuples_repaired;
  s.tuples_invalidated =
      tuples_invalidated->Value() - baseline.tuples_invalidated;
  s.master_rebuilds = master_rebuilds->Value() - baseline.master_rebuilds;
  s.noop_updates = noop_updates->Value() - baseline.noop_updates;
  s.rows = rows;
  s.fully_covered =
      static_cast<uint64_t>(fully_covered->Value()) - baseline.fully_covered;
  s.partial = static_cast<uint64_t>(partial->Value()) - baseline.partial;
  s.untouched =
      static_cast<uint64_t>(untouched->Value()) - baseline.untouched;
  s.conflicting =
      static_cast<uint64_t>(conflicting->Value()) - baseline.conflicting;
  s.cells_changed =
      static_cast<uint64_t>(cells_changed->Value()) - baseline.cells_changed;
  s.memo_hits = memo_hits->Value() - baseline.memo_hits;
  s.memo_misses = memo_misses->Value() - baseline.memo_misses;
  s.max_reorder = max_reorder.Value();
  s.pool_recycles = pool_recycles->Value() - baseline.pool_recycles;
  return s;
}

namespace {
/// Private master copy for the copying constructor: the engine mutates
/// its master on kMaster* deltas, and the single-writer pool contract
/// forbids sharing the caller's pool for that.
Relation CopyToPrivatePool(const Relation& master) {
  Relation copy(master.schema());
  copy.Reserve(master.size());
  for (size_t i = 0; i < master.size(); ++i) {
    (void)copy.Append(master.at(i));  // same schema by construction
  }
  return copy;
}
}  // namespace

DeltaRepairEngine::DeltaRepairEngine(const RuleSet& rules,
                                     const Relation& master, AttrSet trusted,
                                     DeltaRepairOptions options)
    : DeltaRepairEngine(rules, CopyToPrivatePool(master), trusted, options) {}

DeltaRepairEngine::DeltaRepairEngine(const RuleSet& rules, Relation&& master,
                                     AttrSet trusted,
                                     DeltaRepairOptions options)
    : rules_(&rules),
      schema_(rules.r_schema()),
      master_schema_(rules.rm_schema()),
      trusted_(trusted),
      all_(rules.r_schema()->AllAttrs()),
      options_(options),
      graph_(rules),
      summary_(graph_, trusted),
      master_(std::move(master)),
      input_(schema_),
      repaired_(schema_) {
  index_ = std::make_unique<MasterIndex>(*rules_, master_, options_.index_kind);
  sat_ = std::make_unique<Saturator>(*rules_, master_, *index_);

  // The analyze_first gate runs before any worker exists: a strict
  // rejection leaves the engine inert with the verdict in
  // precheck_status_ — every mutator returns it via CheckLive.
  precheck_status_ = GateRuleset(*sat_, trusted_, options_.analyze_first,
                                 "DeltaRepairEngine");
  if (!precheck_status_.ok()) return;

  size_t shards = options_.num_shards == 0 ? DefaultParallelism()
                                           : options_.num_shards;
  shards = std::min(shards, std::max<size_t>(16, 2 * DefaultParallelism()));
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (shards > 1) {
    window_ = static_cast<uint64_t>(shards) * options_.queue_capacity;
    queues_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      queues_.push_back(
          std::make_unique<BoundedQueue<Job>>(options_.queue_capacity));
    }
    workers_.reserve(shards);
    try {
      for (size_t s = 0; s < shards; ++s) {
        workers_.emplace_back([this, s] { WorkerLoop(s); });
      }
    } catch (const std::system_error&) {
      // Thread-resource exhaustion mid-spawn (same stance as the stream
      // engine): run with the workers that did start, or fall back to the
      // inline path when none did.
      queues_.resize(workers_.size());
      window_ = static_cast<uint64_t>(queues_.size()) * options_.queue_capacity;
    }
  }
}

DeltaRepairEngine::~DeltaRepairEngine() {
  for (auto& q : queues_) q->Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t DeltaRepairEngine::num_shards() const {
  return queues_.empty() ? 1 : queues_.size();
}

Status DeltaRepairEngine::CheckLive() {
  if (!precheck_status_.ok()) return precheck_status_;
  std::lock_guard<std::mutex> lock(merge_mutex_);
  if (failed_) {
    return Status::Internal(
        "delta engine worker failed; Flush() rethrows the cause");
  }
  return Status::OK();
}

Status DeltaRepairEngine::MasterSchemaCheck(const Tuple& t) const {
  if (t.schema().get() != master_schema_.get() &&
      !t.schema()->Equals(*master_schema_)) {
    return Status::InvalidArgument(
        "tuple schema does not match master schema " + master_schema_->name());
  }
  return Status::OK();
}

Status DeltaRepairEngine::InputSchemaCheck(const Tuple& t) const {
  if (t.schema().get() != schema_.get() && !t.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("tuple schema does not match relation " +
                                   schema_->name());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Pipeline

bool DeltaRepairEngine::Admit(uint64_t* seq) {
  if (workers_.empty()) {
    *seq = next_seq_++;
    return true;
  }
  std::unique_lock<std::mutex> lock(merge_mutex_);
  if (in_flight_ >= window_) {
    progress_.wait(lock, [this] { return in_flight_ < window_ || failed_; });
  }
  if (failed_) return false;
  *seq = next_seq_++;
  ++in_flight_;
  return true;
}

Status DeltaRepairEngine::EnqueueRepair(uint32_t slot) {
  CERTFIX_SPAN("delta.ingest");
  metrics_.tuples_repaired->Increment();
  Job job;
  job.slot = slot;
  job.epoch = sat_epoch_;
  job.sat = sat_.get();
  job.flush = memo_flush_head_;
  job.values.reserve(schema_->num_attrs());
  for (size_t a = 0; a < schema_->num_attrs(); ++a) {
    job.values.push_back(input_.Cell(slot, static_cast<AttrId>(a)));
  }
  if (!Admit(&job.seq)) {
    return Status::Internal("delta engine worker failed");
  }
  if (workers_.empty()) {
    RepairInline(job);
    return Status::OK();
  }
  if (!queues_[slot % queues_.size()]->Push(std::move(job))) {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    --in_flight_;
    return Status::Internal("delta engine worker failed");
  }
  return Status::OK();
}

void DeltaRepairEngine::ApplyMemoFlush(RepairMemo* memo,
                                       const MemoFlush* head,
                                       uint64_t last_epoch) {
  if (memo->entries() == 0) return;  // nothing cached, nothing stale
  // Collect the nodes published since this repair context last ran. The
  // chain is newest-first; epochs are consecutive, so completeness means
  // the oldest collected node is exactly last_epoch + 1.
  std::vector<const MemoFlush*> nodes;
  for (const MemoFlush* n = head; n != nullptr && n->epoch > last_epoch;
       n = n->prev.get()) {
    nodes.push_back(n);
  }
  if (nodes.empty() || nodes.back()->epoch != last_epoch + 1) {
    // The depth cap cut the chain before it reached us: some invalidation
    // is unrecoverable, so drop everything rather than risk a stale hit.
    memo->Clear();
    return;
  }
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    memo->FlushProbes((*it)->hashes);
  }
}

void DeltaRepairEngine::RepairInline(const Job& job) {
  CERTFIX_SPAN("delta.shard_repair");
  if (options_.use_memo && local_memo_ == nullptr) {
    local_memo_ = std::make_unique<RepairMemo>(*rules_, trusted_);
  }
  if (local_pool_ == nullptr) local_pool_ = std::make_shared<ValuePool>();
  if (local_epoch_ != job.epoch || local_bridge_ == nullptr) {
    // Master rebuilt: the pool (and the memo keyed on its ids) survive;
    // only the bridge cache and the flushed memo entries go. The caller
    // thread runs this, so reading memo_flush_head_ directly is safe.
    local_bridge_ = std::make_unique<PoolBridge>(
        local_pool_.get(), job.sat->index().pool().get());
    if (local_memo_ != nullptr) {
      ApplyMemoFlush(local_memo_.get(), memo_flush_head_.get(), local_epoch_);
    }
    local_epoch_ = job.epoch;
  }
  if (local_pool_->size() > options_.pool_recycle_values) {
    local_pool_ = std::make_shared<ValuePool>();
    local_bridge_ = std::make_unique<PoolBridge>(
        local_pool_.get(), job.sat->index().pool().get());
    if (local_memo_ != nullptr) local_memo_->Clear();
    metrics_.pool_recycles->Increment();
  }
  Tuple row(schema_, local_pool_);
  for (size_t a = 0; a < job.values.size(); ++a) {
    row.Set(static_cast<AttrId>(a), job.values[a]);
  }
  ProbeLog probes;
  const uint64_t hits_before =
      local_memo_ != nullptr ? local_memo_->hits() : 0;
  TupleRepair r = RepairOneTuple(*job.sat, row, trusted_, all_,
                                 local_bridge_.get(), &probes,
                                 local_memo_.get());
  Done done;
  done.seq = job.seq;
  done.slot = job.slot;
  done.report = r.report;
  done.probes = std::move(probes.hashes);
  if (local_memo_ != nullptr) {
    done.memo = local_memo_->hits() > hits_before ? 1 : 0;
  }
  const Tuple& emit = r.report.conflicting() ? row : r.fixed;
  done.fixed.reserve(schema_->num_attrs());
  for (size_t a = 0; a < schema_->num_attrs(); ++a) {
    done.fixed.push_back(emit.at(static_cast<AttrId>(a)));
  }
  std::lock_guard<std::mutex> lock(merge_mutex_);
  ApplyResult(done);
  ++next_apply_;
}

void DeltaRepairEngine::WorkerLoop(size_t shard) {
  try {
    PoolPtr pool = std::make_shared<ValuePool>();
    std::unique_ptr<PoolBridge> bridge;
    std::unique_ptr<RepairMemo> memo;
    if (options_.use_memo) {
      memo = std::make_unique<RepairMemo>(*rules_, trusted_);
    }
    uint64_t epoch = ~0ULL;
    std::vector<size_t> first_round;
    std::vector<Job> batch;
    std::vector<Tuple> rows;
    batch.reserve(kProbeBlock);
    rows.reserve(kProbeBlock);
    while (queues_[shard]->PopBatch(&batch, kProbeBlock) > 0) {
      CERTFIX_SPAN("delta.shard_repair");
      // Master deltas drain the pipeline before the epoch advances, so a
      // ring never holds jobs of two epochs at once — one check covers
      // the whole batch.
      const Saturator& sat = *batch.front().sat;
      if (epoch != batch.front().epoch || bridge == nullptr) {
        // New epoch = the master (and its pool) changed under a rebuild
        // barrier; the ring's mutex published the new saturator. The
        // shard pool (and the memo keyed on its ids) survive — only the
        // bridge cache and the flushed memo entries go.
        bridge = std::make_unique<PoolBridge>(pool.get(),
                                              sat.index().pool().get());
        if (memo != nullptr) {
          ApplyMemoFlush(memo.get(), batch.front().flush.get(), epoch);
        }
        epoch = batch.front().epoch;
        first_round = sat.FirstRoundProbeRules(trusted_);
      }
      // The recycle check runs once per batch, before any row is built:
      // a mid-batch reset would mix pools within one staged block.
      if (pool->size() > options_.pool_recycle_values) {
        pool = std::make_shared<ValuePool>();
        bridge = std::make_unique<PoolBridge>(pool.get(),
                                              sat.index().pool().get());
        if (memo != nullptr) memo->Clear();
        metrics_.pool_recycles->Increment();
      }
      // Stage: materialize the batch's rows, prefetching each row's memo
      // bucket and round-1 value-summary buckets...
      for (Job& job : batch) {
        Tuple row(schema_, pool);
        for (size_t a = 0; a < job.values.size(); ++a) {
          row.Set(static_cast<AttrId>(a), std::move(job.values[a]));
        }
        if (memo != nullptr) memo->Prefetch(row);
        sat.index().PrefetchRhsProbes(row, first_round, bridge.get());
        rows.push_back(std::move(row));
      }
      // ...then resolve: repair in seq order while lines are in flight.
      for (size_t j = 0; j < rows.size(); ++j) {
        const Tuple& row = rows[j];
        ProbeLog probes;
        const uint64_t hits_before = memo != nullptr ? memo->hits() : 0;
        TupleRepair r = RepairOneTuple(sat, row, trusted_, all_,
                                       bridge.get(), &probes, memo.get());
        Done done;
        done.seq = batch[j].seq;
        done.slot = batch[j].slot;
        done.report = r.report;
        done.probes = std::move(probes.hashes);
        if (memo != nullptr) {
          done.memo = memo->hits() > hits_before ? 1 : 0;
        }
        // Results cross the merge boundary as owned Values (conflicting
        // rows re-emit their input), exactly like the stream engine's
        // records.
        const Tuple& emit = r.report.conflicting() ? row : r.fixed;
        done.fixed.reserve(schema_->num_attrs());
        for (size_t a = 0; a < schema_->num_attrs(); ++a) {
          done.fixed.push_back(emit.at(static_cast<AttrId>(a)));
        }
        ApplyOrdered(std::move(done));
      }
      batch.clear();
      rows.clear();
    }
  } catch (...) {
    Fail(std::current_exception());
  }
}

void DeltaRepairEngine::ApplyOrdered(Done done) {
  CERTFIX_SPAN("delta.merge");
  std::unique_lock<std::mutex> lock(merge_mutex_);
  pending_.emplace(done.seq, std::move(done));
  metrics_.NoteReorderDepth(pending_.size());
  uint64_t applied = 0;
  while (!pending_.empty() && pending_.begin()->first == next_apply_) {
    Done d = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ApplyResult(d);
    ++next_apply_;
    ++applied;
  }
  if (applied > 0) {
    in_flight_ -= applied;
    progress_.notify_all();
  }
}

void DeltaRepairEngine::AddClass(uint8_t cls, int delta) {
  switch (static_cast<FixClass>(cls)) {
    case FixClass::kFullyCovered:
      metrics_.fully_covered->Add(delta);
      break;
    case FixClass::kPartial:
      metrics_.partial->Add(delta);
      break;
    case FixClass::kUntouched:
      metrics_.untouched->Add(delta);
      break;
    case FixClass::kConflicting:
      metrics_.conflicting->Add(delta);
      break;
  }
}

void DeltaRepairEngine::UnregisterProbes(uint32_t slot) {
  for (uint64_t h : slot_probes_[slot]) {
    auto it = probe_to_slots_.find(h);
    if (it == probe_to_slots_.end()) continue;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
    if (v.empty()) probe_to_slots_.erase(it);
  }
  slot_probes_[slot].clear();
}

void DeltaRepairEngine::ApplyResult(Done& d) {
  uint32_t slot = d.slot;
  // Memo tallies count every finished repair, even one whose slot died
  // in flight — they measure saturation work saved, not live state.
  if (d.memo == 1) metrics_.memo_hits->Increment();
  if (d.memo == 0) metrics_.memo_misses->Increment();
  if (slot_class_[slot] == kDeadClass) {
    return;  // deleted while the repair was in flight
  }
  UnregisterProbes(slot);
  std::sort(d.probes.begin(), d.probes.end());
  d.probes.erase(std::unique(d.probes.begin(), d.probes.end()),
                 d.probes.end());
  for (uint64_t h : d.probes) probe_to_slots_[h].push_back(slot);
  slot_probes_[slot] = std::move(d.probes);

  for (size_t a = 0; a < d.fixed.size(); ++a) {
    AttrId attr = static_cast<AttrId>(a);
    if (repaired_.Cell(slot, attr) != d.fixed[a]) {
      repaired_.SetCell(slot, attr, std::move(d.fixed[a]));
    }
  }

  if (slot_class_[slot] != kPendingClass) AddClass(slot_class_[slot], -1);
  slot_class_[slot] = static_cast<uint8_t>(d.report.kind);
  AddClass(slot_class_[slot], +1);
  metrics_.cells_changed->Add(static_cast<int64_t>(d.report.cells_changed) -
                              slot_cells_[slot]);
  slot_cells_[slot] = static_cast<uint32_t>(d.report.cells_changed);
}

void DeltaRepairEngine::Fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    if (!first_error_) first_error_ = error;
    failed_ = true;
  }
  progress_.notify_all();
  for (auto& q : queues_) q->Close();
}

void DeltaRepairEngine::DrainPipeline() {
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(merge_mutex_);
    progress_.wait(lock, [this] { return in_flight_ == 0 || failed_; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void DeltaRepairEngine::Flush() {
  Status st = EnsureIndexFresh();  // may enqueue invalidated re-repairs
  DrainPipeline();
  if (!st.ok()) {
    throw std::runtime_error(st.ToString());
  }
}

// ---------------------------------------------------------------------------
// Input deltas

Status DeltaRepairEngine::EnsureIndexFresh() {
  if (!index_stale_) return Status::OK();
  CERTFIX_SPAN("delta.rebuild");
  // A master delta staled the index. The pipeline is already quiescent
  // (master mutations drain it), so no worker can be probing the old one.
  index_ = std::make_unique<MasterIndex>(*rules_, master_, options_.index_kind);
  sat_ = std::make_unique<Saturator>(*rules_, master_, *index_);
  ++sat_epoch_;
  metrics_.master_rebuilds->Increment();
  index_stale_ = false;
  if (options_.use_memo) {
    // Publish this epoch's memo invalidation. A node exists for every
    // epoch — even an empty one — so a worker can prove its flush chain
    // is gapless down to the epoch it last saw.
    auto node = std::make_shared<MemoFlush>();
    node->epoch = sat_epoch_;
    node->hashes = std::move(pending_memo_flush_);
    pending_memo_flush_.clear();
    node->prev = memo_flush_head_;
    memo_flush_head_ = std::move(node);
    // Cap the chain. The cut mutates a node others may hold refs to, but
    // the pipeline is quiescent here (master deltas drained it) and no
    // worker dereferences its chain outside batch start, so nothing
    // races; workers cut off simply Clear() when they next run.
    MemoFlush* n = memo_flush_head_.get();
    for (size_t depth = 1; n->prev != nullptr; ++depth) {
      if (depth >= kMaxFlushChain) {
        n->prev.reset();
        break;
      }
      n = n->prev.get();
    }
  }
  std::vector<uint32_t> dirty(dirty_slots_.begin(), dirty_slots_.end());
  dirty_slots_.clear();
  metrics_.tuples_invalidated->Add(dirty.size());
  for (uint32_t slot : dirty) {
    CERTFIX_RETURN_IF_ERROR(EnqueueRepair(slot));
  }
  return Status::OK();
}

Status DeltaRepairEngine::Insert(const Tuple& t) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  CERTFIX_RETURN_IF_ERROR(EnsureIndexFresh());
  uint32_t slot = static_cast<uint32_t>(input_.size());
  CERTFIX_RETURN_IF_ERROR(input_.Append(t));
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    // Placeholder: input values until the job lands.
    repaired_.Append(t);  // contract-lint: allow(status-discard) schema-checked on entry
    slot_probes_.emplace_back();
    slot_class_.push_back(kPendingClass);
    slot_cells_.push_back(0);
  }
  order_.push_back(slot);
  metrics_.deltas_applied->Increment();
  return EnqueueRepair(slot);
}

Status DeltaRepairEngine::Update(size_t pos, const Tuple& t) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  if (pos >= order_.size()) {
    return Status::InvalidArgument("update position " + std::to_string(pos) +
                                   " out of range (rows: " +
                                   std::to_string(order_.size()) + ")");
  }
  // Unlike Insert (where Relation::Append validates), UpdateRow indexes
  // the tuple by this schema's attrs unchecked — validate here.
  CERTFIX_RETURN_IF_ERROR(InputSchemaCheck(t));
  CERTFIX_RETURN_IF_ERROR(EnsureIndexFresh());
  uint32_t slot = order_[pos];
  AttrSet changed = input_.UpdateRow(slot, t);
  metrics_.deltas_applied->Increment();
  if (changed.Empty()) {
    // Cell-level dirty tracking: the row is byte-identical, its repair is
    // still exact — nothing to invalidate.
    metrics_.noop_updates->Increment();
    return Status::OK();
  }
  return EnqueueRepair(slot);
}

Status DeltaRepairEngine::Delete(size_t pos) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  if (pos >= order_.size()) {
    return Status::InvalidArgument("delete position " + std::to_string(pos) +
                                   " out of range (rows: " +
                                   std::to_string(order_.size()) + ")");
  }
  uint32_t slot = order_[pos];
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
  dirty_slots_.erase(slot);
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    UnregisterProbes(slot);
    if (slot_class_[slot] != kPendingClass) AddClass(slot_class_[slot], -1);
    metrics_.cells_changed->Add(-static_cast<int64_t>(slot_cells_[slot]));
    slot_cells_[slot] = 0;
    slot_class_[slot] = kDeadClass;
  }
  metrics_.deltas_applied->Increment();
  return Status::OK();
}

Status DeltaRepairEngine::Load(const Relation& input) {
  for (size_t i = 0; i < input.size(); ++i) {
    CERTFIX_RETURN_IF_ERROR(Insert(input.at(i)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Master deltas

void DeltaRepairEngine::InvalidateMasterRow(
    size_t row, const std::vector<size_t>& rule_idxs) {
  for (size_t i : rule_idxs) {
    uint64_t h = MasterProbeKeyHash(i, master_, row, rules_->at(i).lhsm());
    // Every affected hash joins the next epoch's memo flush, whether or
    // not a live slot depends on it right now: shard memos also hold
    // entries for rows since deleted or updated, and for rows on rings
    // this thread knows nothing about.
    if (options_.use_memo) pending_memo_flush_.push_back(h);
    auto it = probe_to_slots_.find(h);
    if (it == probe_to_slots_.end()) continue;
    for (uint32_t slot : it->second) {
      if (slot_class_[slot] != kDeadClass) dirty_slots_.insert(slot);
    }
  }
}

Status DeltaRepairEngine::MasterInsert(const Tuple& t) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  CERTFIX_RETURN_IF_ERROR(MasterSchemaCheck(t));
  DrainPipeline();
  CERTFIX_RETURN_IF_ERROR(master_.Append(t));
  {
    // A new master row can answer any rule's probe for its key.
    std::lock_guard<std::mutex> lock(merge_mutex_);
    std::vector<size_t> every(rules_->size());
    for (size_t i = 0; i < every.size(); ++i) every[i] = i;
    InvalidateMasterRow(master_.size() - 1, every);
  }
  index_stale_ = true;
  metrics_.deltas_applied->Increment();
  return Status::OK();
}

Status DeltaRepairEngine::MasterUpdate(size_t pos, const Tuple& t) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  CERTFIX_RETURN_IF_ERROR(MasterSchemaCheck(t));
  if (pos >= master_.size()) {
    return Status::InvalidArgument(
        "master update position " + std::to_string(pos) +
        " out of range (rows: " + std::to_string(master_.size()) + ")");
  }
  // The changed mask only *reads* master_ cells (workers never write the
  // master), so a self-identical upsert is detected and skipped without
  // paying the drain barrier. Mutating master_ below does require
  // quiescence: interning into its pool would race worker probes.
  AttrSet changed;
  for (size_t a = 0; a < master_schema_->num_attrs(); ++a) {
    AttrId attr = static_cast<AttrId>(a);
    if (master_.Cell(pos, attr) != t.at(attr)) changed.Add(attr);
  }
  metrics_.deltas_applied->Increment();
  if (changed.Empty()) {
    metrics_.noop_updates->Increment();
    return Status::OK();
  }
  DrainPipeline();
  // Only rules whose master side reads a changed attribute can answer
  // differently — and only for the row's old or new key. The summary's
  // precomputed per-attribute rule lists front the graph walk here.
  std::vector<size_t> affected = summary_.RulesReadingMasterAttrs(changed);
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    InvalidateMasterRow(pos, affected);  // old projections
  }
  master_.UpdateRow(pos, t);
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    InvalidateMasterRow(pos, affected);  // new projections
  }
  if (!affected.empty()) index_stale_ = true;
  return Status::OK();
}

Status DeltaRepairEngine::MasterDelete(size_t pos) {
  CERTFIX_RETURN_IF_ERROR(CheckLive());
  if (pos >= master_.size()) {
    return Status::InvalidArgument(
        "master delete position " + std::to_string(pos) +
        " out of range (rows: " + std::to_string(master_.size()) + ")");
  }
  DrainPipeline();
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    std::vector<size_t> every(rules_->size());
    for (size_t i = 0; i < every.size(); ++i) every[i] = i;
    InvalidateMasterRow(pos, every);
  }
  // Relations have no erase; rebuild the master without the row. The
  // MasterIndex rebuild right after is O(|Dm|) anyway. Old index/saturator
  // reference the dropped relation — destroy them before it goes away.
  index_.reset();
  sat_.reset();
  Relation next(master_schema_);
  next.Reserve(master_.size() - 1);
  for (size_t i = 0; i < master_.size(); ++i) {
    if (i != pos) next.Append(master_.at(i));
  }
  master_ = std::move(next);
  index_stale_ = true;
  metrics_.deltas_applied->Increment();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parse-level entry points

Status DeltaRepairEngine::Apply(const Delta& delta) {
  switch (delta.kind) {
    case DeltaKind::kInsert: {
      CERTFIX_ASSIGN_OR_RETURN(Tuple t,
                               Tuple::FromStrings(schema_, delta.fields));
      return Insert(t);
    }
    case DeltaKind::kUpdate: {
      CERTFIX_ASSIGN_OR_RETURN(Tuple t,
                               Tuple::FromStrings(schema_, delta.fields));
      return Update(delta.row, t);
    }
    case DeltaKind::kDelete:
      return Delete(delta.row);
    case DeltaKind::kMasterInsert: {
      CERTFIX_ASSIGN_OR_RETURN(
          Tuple t, Tuple::FromStrings(master_schema_, delta.fields));
      return MasterInsert(t);
    }
    case DeltaKind::kMasterUpdate: {
      CERTFIX_ASSIGN_OR_RETURN(
          Tuple t, Tuple::FromStrings(master_schema_, delta.fields));
      return MasterUpdate(delta.row, t);
    }
    case DeltaKind::kMasterDelete:
      return MasterDelete(delta.row);
  }
  return Status::InvalidArgument("unknown delta kind");
}

Status DeltaRepairEngine::ApplyAll(DeltaSource* source) {
  Delta delta;
  for (;;) {
    CERTFIX_ASSIGN_OR_RETURN(bool got, source->Next(&delta));
    if (!got) return Status::OK();
    CERTFIX_RETURN_IF_ERROR(Apply(delta));
  }
}

// ---------------------------------------------------------------------------
// Reads

Relation DeltaRepairEngine::SnapshotRepaired() {
  Flush();
  CERTFIX_SPAN("delta.sink");
  Relation out(schema_);
  out.Reserve(order_.size());
  for (uint32_t slot : order_) out.Append(repaired_.at(slot));
  return out;
}

Relation DeltaRepairEngine::SnapshotInput() {
  Flush();
  Relation out(schema_);
  out.Reserve(order_.size());
  for (uint32_t slot : order_) out.Append(input_.at(slot));
  return out;
}

std::vector<size_t> DeltaRepairEngine::ConflictPositions() {
  Flush();
  std::vector<size_t> out;
  for (size_t pos = 0; pos < order_.size(); ++pos) {
    if (slot_class_[order_[pos]] ==
        static_cast<uint8_t>(FixClass::kConflicting)) {
      out.push_back(pos);
    }
  }
  return out;
}

DeltaRepairStats DeltaRepairEngine::stats() {
  Flush();
  return metrics_.Snapshot(order_.size());
}

}  // namespace certfix
