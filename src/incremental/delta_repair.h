/// \file delta_repair.h
/// \brief Update-aware incremental repair engine: maintains a repaired
/// relation under a mutation stream (inserts, updates, deletes, and
/// master-data upserts), re-running RepairOneTuple only on the invalidated
/// region instead of the whole relation.
///
/// Correctness contract (the oracle tests/delta_differential_test.cc
/// hammers): after any delta sequence, SnapshotRepaired() is byte-identical
/// (under WriteCsv) to BatchRepair run from scratch over the final input
/// and final master data, at any shard count.
///
/// Why incremental repair is exact here: a tuple's repair is a
/// deterministic function of the tuple, the trusted set Z, Sigma, and the
/// answers to the master-index probes the saturation issues — tuples never
/// read each other. Hence:
///
///  * Insert/Update/Delete of an input tuple invalidates exactly that
///    tuple (an update that changes no cell invalidates nothing — cell
///    level dirty tracking via Relation::UpdateRow).
///  * A master upsert can only change the answers of probes whose key
///    matches the touched master row's old or new (Xm, Bm) projection, for
///    rules whose master side reads a changed attribute
///    (DependencyGraph::RulesReadingMasterAttrs). Every repair records its
///    probe set as (rule, key) hashes (ProbeLog, fix_state.h); the engine
///    keeps the reverse map hash -> tuples, so a master delta re-repairs
///    exactly the tuples that depended on an affected probe — hash
///    collisions over-invalidate (sound), never under-invalidate.
///
/// Pipeline: mutations ride the same machinery as the streaming engine —
/// repair jobs are admitted with a sequence number, routed over bounded
/// rings (BoundedQueue, backpressure) to shard workers running
/// RepairOneTuple with shard-local pools, and results are applied to the
/// maintained state strictly in seq order under one merge lock, so the
/// maintained relation, all counters, and the probe index are
/// byte-identical at any worker count. Master deltas are barriers: the
/// engine drains in-flight jobs, mutates the master, and rebuilds the
/// MasterIndex/Saturator lazily before the next repair (consecutive master
/// deltas share one rebuild).
///
/// Memory: deleted rows leave tombstoned slots in the backing store (live
/// order is an indirection vector); a long-lived engine under heavy churn
/// grows with total inserts, not live rows. Shard pools recycle as in the
/// streaming engine.
///
/// Threading contract for callers: all public methods must be called from
/// one thread (the mutation stream is inherently ordered). Shard workers
/// are internal.

#ifndef CERTFIX_INCREMENTAL_DELTA_REPAIR_H_
#define CERTFIX_INCREMENTAL_DELTA_REPAIR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/analyze_mode.h"
#include "analysis/rule_summary.h"
#include "core/dependency_graph.h"
#include "core/master_index.h"
#include "core/repair_tuple.h"
#include "stream/bounded_queue.h"
#include "stream/delta_source.h"
#include "telemetry/metrics.h"

namespace certfix {

class RepairMemo;

/// \brief Execution knobs, mirroring StreamOptions.
struct DeltaRepairOptions {
  /// Shard-worker count. 1 = inline sequential repair (the differential
  /// reference); 0 = one per hardware thread.
  size_t num_shards = 1;
  /// Slots per shard ring; also sizes the in-flight admission window.
  size_t queue_capacity = 256;
  /// Recycle a shard's ValuePool once it exceeds this many values.
  size_t pool_recycle_values = 1u << 16;
  /// Ruleset analysis at construction (analysis/analyzer.h): warn logs
  /// every diagnostic and proceeds; strict refuses the session — every
  /// mutator returns the Inconsistent verdict (conflict witness included).
  AnalyzeMode analyze_first = AnalyzeMode::kOff;
  /// Per-shard repair memoization (core/repair_memo.h). Unlike the batch
  /// and stream engines, the memo here survives master rebuilds: a
  /// rebuild flushes exactly the entries whose recorded probes a master
  /// delta could have re-answered (the same hash machinery that drives
  /// slot invalidation), so hot entries keep paying off across epochs.
  /// Output-invisible; hit/miss tallies surface in DeltaRepairStats.
  bool use_memo = true;
  /// Master-index implementation for every internal build and rebuild.
  /// kMap keeps the legacy std::unordered_map path alive as the A/B
  /// oracle for the flat table (tests/scenario_corpus_test.cc).
  IndexKind index_kind = IndexKind::kFlat;
};

/// \brief Counters. The live-state fields (rows..cells_changed) mirror
/// BatchRepairResult over the currently maintained relation; the activity
/// fields measure how much work the mutation stream actually caused.
struct DeltaRepairStats {
  uint64_t deltas_applied = 0;     ///< mutations accepted
  uint64_t tuples_repaired = 0;    ///< RepairOneTuple runs (incl. loads)
  uint64_t tuples_invalidated = 0; ///< re-repairs forced by master deltas
  uint64_t master_rebuilds = 0;    ///< MasterIndex/Saturator rebuilds
  uint64_t noop_updates = 0;       ///< updates/upserts changing no cell
  uint64_t rows = 0;               ///< live rows
  uint64_t fully_covered = 0;
  uint64_t partial = 0;
  uint64_t untouched = 0;
  uint64_t conflicting = 0;
  uint64_t cells_changed = 0;      ///< live input-vs-repaired cell diffs
  uint64_t memo_hits = 0;          ///< repairs replayed from a shard memo
  uint64_t memo_misses = 0;        ///< repairs computed (and memoized)
  uint64_t max_reorder = 0;        ///< high-water mark of the reorder buffer
  uint64_t pool_recycles = 0;      ///< shard pools reset (bounded memory)
};

/// \brief Registry-backed view of the delta engine's counters
/// (telemetry/metrics.h), mirroring StreamMetrics: increments land on
/// the process-wide `delta.*` instruments, and Snapshot() subtracts the
/// values captured at construction so each engine instance reports its
/// own activity. Slot-class populations and cells_changed are signed
/// gauges (deletes and reclassifications decrement them); max_reorder
/// is a per-instance MaxGauge mirrored into the registry's monotone
/// `delta.max_reorder`.
struct DeltaMetrics {
  DeltaMetrics();

  void NoteReorderDepth(uint64_t depth) {
    max_reorder.Note(depth);
    max_reorder_global->Note(depth);
  }

  /// Current registry values minus the construction baseline; `rows`
  /// is supplied by the engine (order_.size() is not a counter).
  DeltaRepairStats Snapshot(uint64_t rows) const;

  telemetry::Counter* deltas_applied;
  telemetry::Counter* tuples_repaired;
  telemetry::Counter* tuples_invalidated;
  telemetry::Counter* master_rebuilds;
  telemetry::Counter* noop_updates;
  telemetry::Counter* memo_hits;
  telemetry::Counter* memo_misses;
  telemetry::Counter* pool_recycles;
  telemetry::Gauge* fully_covered;
  telemetry::Gauge* partial;
  telemetry::Gauge* untouched;
  telemetry::Gauge* conflicting;
  telemetry::Gauge* cells_changed;
  telemetry::MaxGauge* max_reorder_global;
  telemetry::MaxGauge max_reorder;  ///< this engine's own high-water mark
  DeltaRepairStats baseline;        ///< registry values at construction
};

/// \brief Long-lived engine owning the repaired relation plus its
/// KeyIndex/MasterIndex state.
class DeltaRepairEngine {
 public:
  /// `rules` must outlive the engine. `master` is copied into an
  /// engine-private pool (the engine mutates its master on kMaster*
  /// deltas). Every maintained tuple trusts its cells on `trusted`.
  DeltaRepairEngine(const RuleSet& rules, const Relation& master,
                    AttrSet trusted, DeltaRepairOptions options = {});
  /// Adopting overload: takes ownership of `master` without copying it.
  /// The relation (and its pool) must be private to the engine from here
  /// on — this is how a memory-mapped snapshot master stays out-of-core
  /// instead of being materialized row by row (storage/columnar.h; the
  /// copy-on-write IdColumn promotes only the columns master deltas
  /// actually touch).
  DeltaRepairEngine(const RuleSet& rules, Relation&& master, AttrSet trusted,
                    DeltaRepairOptions options = {});
  ~DeltaRepairEngine();

  DeltaRepairEngine(const DeltaRepairEngine&) = delete;
  DeltaRepairEngine& operator=(const DeltaRepairEngine&) = delete;

  /// Bulk-inserts every row of `input` (the initial repair rides the same
  /// sharded pipeline, so loading is parallel at num_shards > 1).
  Status Load(const Relation& input);

  /// Applies one delta; field vectors are parsed against the input or
  /// master schema (same typing as CSV loading).
  Status Apply(const Delta& delta);
  /// Applies every delta `source` yields.
  Status ApplyAll(DeltaSource* source);

  Status Insert(const Tuple& t);
  Status Update(size_t pos, const Tuple& t);  ///< pos: 0-based live position
  Status Delete(size_t pos);
  Status MasterInsert(const Tuple& t);
  Status MasterUpdate(size_t pos, const Tuple& t);
  Status MasterDelete(size_t pos);

  /// Drains the pipeline and applies any pending invalidation, so reads
  /// below observe every mutation. Rethrows the first worker error.
  void Flush();

  /// Live row count (cheap; no flush).
  size_t size() const { return order_.size(); }
  const SchemaPtr& schema() const { return schema_; }
  /// The maintained master. Strictly read-only: interning into its pool
  /// (e.g. constructing a delta tuple with `Tuple(schema, master().pool())`)
  /// races the shard workers probing it — build delta tuples in their own
  /// pool instead.
  const Relation& master() const { return master_; }
  size_t num_shards() const;

  /// The maintained repaired relation, compacted to live rows in order
  /// (flushes first). Byte-identical under WriteCsv to the from-scratch
  /// BatchRepair oracle.
  Relation SnapshotRepaired();
  /// The maintained (unrepaired) input — what the oracle repairs.
  Relation SnapshotInput();
  /// Live positions whose last repair conflicted, ascending — mirrors
  /// BatchRepairResult::conflict_rows (flushes first).
  std::vector<size_t> ConflictPositions();
  /// Counter snapshot (flushes first so live-state fields are exact).
  DeltaRepairStats stats();

  /// The analyze_first verdict from construction. OK unless the options
  /// asked for strict analysis and the ruleset was rejected, in which
  /// case every mutator returns this status (witness in the message).
  const Status& precheck_status() const { return precheck_status_; }

  /// Precomputed per-rule reachability/fan-out shared with the
  /// master-delta invalidation path (analysis/rule_summary.h).
  const RuleSetSummary& summary() const { return summary_; }

 private:
  // Slot classification: FixClass values 0..3, plus pending (enqueued,
  // not yet applied) and dead (deleted).
  static constexpr uint8_t kPendingClass = 4;
  static constexpr uint8_t kDeadClass = 5;

  /// One master-rebuild epoch's memo invalidation: the probe hashes a
  /// master delta could have re-answered, linked to the previous epoch's
  /// node. Workers flush lazily — a worker that skipped epochs (its ring
  /// was idle) walks the chain from the job's head down to the epoch it
  /// last saw and applies every node on the way; if the chain was capped
  /// before reaching it, the worker drops its whole memo (sound, never
  /// stale). Nodes are immutable after publication; prev is cut only at
  /// the depth cap, under pipeline quiescence.
  struct MemoFlush {
    uint64_t epoch = 0;
    std::vector<uint64_t> hashes;
    std::shared_ptr<MemoFlush> prev;
  };
  /// Epochs are consecutive (every rebuild appends one node), so a chain
  /// of this depth serves workers up to this many epochs behind; older
  /// ones Clear(). Bounds chain memory under master-heavy churn.
  static constexpr size_t kMaxFlushChain = 32;

  /// One repair job riding a shard ring. Carries the saturator pointer and
  /// its epoch so workers rebuild their pool bridge exactly when a master
  /// rebuild happened (the queue's mutex publishes the new saturator).
  struct Job {
    uint64_t seq = 0;
    uint32_t slot = 0;
    uint64_t epoch = 0;
    const Saturator* sat = nullptr;
    std::shared_ptr<MemoFlush> flush;  ///< chain head at enqueue
    std::vector<Value> values;
  };
  /// One repair result waiting in the reorder buffer.
  struct Done {
    uint64_t seq = 0;
    uint32_t slot = 0;
    std::vector<Value> fixed;
    FixReport report;
    std::vector<uint64_t> probes;
    int8_t memo = -1;  ///< -1 memo off, 0 miss, 1 replayed
  };

  Status CheckLive();
  /// Applies every flush-chain node with epoch > last_epoch to `memo`
  /// (oldest first); clears the memo outright when the chain no longer
  /// reaches last_epoch + 1. No-op on an empty memo.
  static void ApplyMemoFlush(RepairMemo* memo, const MemoFlush* head,
                             uint64_t last_epoch);
  /// Rebuilds MasterIndex/Saturator if a master delta staled them, then
  /// enqueues re-repairs for the invalidated slots.
  Status EnsureIndexFresh();
  Status EnqueueRepair(uint32_t slot);
  void RepairInline(const Job& job);
  bool Admit(uint64_t* seq);
  void WorkerLoop(size_t shard);
  void ApplyOrdered(Done done);
  /// Applies one seq-ordered result to the maintained state. Caller holds
  /// merge_mutex_.
  void ApplyResult(Done& done);
  void UnregisterProbes(uint32_t slot);
  /// Marks every live slot that probed `row`'s key under one of
  /// `rule_idxs` dirty. Caller holds merge_mutex_.
  void InvalidateMasterRow(size_t row, const std::vector<size_t>& rule_idxs);
  /// Drains the pipeline (in_flight == 0); rethrows worker errors.
  void DrainPipeline();
  void Fail(std::exception_ptr error);
  void AddClass(uint8_t cls, int delta);
  Status MasterSchemaCheck(const Tuple& t) const;
  Status InputSchemaCheck(const Tuple& t) const;

  const RuleSet* rules_;
  SchemaPtr schema_;
  SchemaPtr master_schema_;
  AttrSet trusted_;
  AttrSet all_;
  DeltaRepairOptions options_;
  DependencyGraph graph_;
  RuleSetSummary summary_;  ///< fronts graph_ on the invalidation path
  Status precheck_status_;  ///< strict analyze_first verdict

  Relation master_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<Saturator> sat_;
  uint64_t sat_epoch_ = 0;
  bool index_stale_ = false;

  /// Slot stores: append-only; order_ holds the live slots in visible
  /// order. input_ is written by the caller thread only; repaired_ and the
  /// probe/class bookkeeping below are written under merge_mutex_ (workers
  /// apply results there).
  Relation input_;
  Relation repaired_;
  std::vector<uint32_t> order_;
  std::set<uint32_t> dirty_slots_;  ///< pending master invalidation

  std::vector<std::vector<uint64_t>> slot_probes_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> probe_to_slots_;
  std::vector<uint8_t> slot_class_;
  std::vector<uint32_t> slot_cells_;  ///< per-slot cells_changed

  // Sequential-path repair state (num_shards == 1).
  PoolPtr local_pool_;
  std::unique_ptr<PoolBridge> local_bridge_;
  std::unique_ptr<RepairMemo> local_memo_;
  uint64_t local_epoch_ = ~0ULL;

  /// Memo-invalidation state, written by the caller thread only:
  /// pending_memo_flush_ gathers probe hashes as master deltas land and
  /// becomes the next epoch's MemoFlush node at the rebuild.
  std::vector<uint64_t> pending_memo_flush_;
  std::shared_ptr<MemoFlush> memo_flush_head_;

  std::vector<std::unique_ptr<BoundedQueue<Job>>> queues_;
  std::vector<std::thread> workers_;

  std::mutex merge_mutex_;
  std::condition_variable progress_;  ///< window opens / pipeline drains
  std::map<uint64_t, Done> pending_;
  uint64_t next_seq_ = 0;
  uint64_t next_apply_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t window_ = 0;
  bool failed_ = false;
  std::exception_ptr first_error_;

  DeltaMetrics metrics_;
};

}  // namespace certfix

#endif  // CERTFIX_INCREMENTAL_DELTA_REPAIR_H_
