/// \file durable_session.h
/// \brief Crash-safe persistence for DeltaRepairEngine: periodic columnar
/// snapshots (storage/columnar.h) plus a write-ahead delta log
/// (storage/wal.h), so engine state survives a process kill at any byte.
///
/// State directory layout:
///
/// ```
/// MANIFEST                 "certfix-durable v1\nsnapshot <N>\n"
/// rules.rules              ruleset DSL (rule_parser.h round-trip)
/// trusted                  comma-separated trusted attribute names
/// snapshot-<N>.master.col  columnar master relation
/// snapshot-<N>.input.col   columnar UNREPAIRED input relation
/// wal-<N>.log              deltas accepted since snapshot N
/// ```
///
/// Crash-consistency protocol:
///
///  * Apply: append to wal-<N>, fsync, only then apply to the engine —
///    a delta the caller saw accepted is always recoverable; a torn
///    final record is one the caller never saw acknowledged and is
///    discarded by per-record CRC on replay.
///  * Snapshot rotation (WriteSnapshot): write snapshot-(N+1).{master,
///    input}.col and an empty wal-(N+1) first (each atomically), then
///    atomically rewrite MANIFEST to point at N+1 — the manifest rename
///    is the commit point; a crash on either side recovers from a
///    complete generation. Old generation files are deleted best-effort
///    after the commit.
///  * Recovery (Open): read MANIFEST, load both snapshots, rebuild the
///    engine (the master is adopted move-in, so columns past the RAM
///    budget stay memory-mapped), Load() the input, replay wal-<N>.
///
/// Why replay is exact: engine state is a deterministic function of
/// (master, input order, delta sequence) — the oracle contract of
/// delta_repair.h. The snapshot stores the unrepaired input, Load()
/// re-repairs it deterministically, and replayed deltas land in the
/// original order. Deltas the engine rejected (bad position, arity) were
/// deterministic no-ops the first time and re-reject identically on
/// replay, so logging before validation is safe.

#ifndef CERTFIX_INCREMENTAL_DURABLE_SESSION_H_
#define CERTFIX_INCREMENTAL_DURABLE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "incremental/delta_repair.h"
#include "storage/columnar.h"
#include "storage/wal.h"

namespace certfix {

struct DurableOptions {
  /// Engine knobs (shards, memo, index) used by the in-memory engine.
  DeltaRepairOptions engine;
  /// Auto-rotate the snapshot after this many WAL appends; 0 = only on
  /// explicit WriteSnapshot() (the WAL then grows without bound).
  size_t snapshot_every = 0;
  /// fsync per append (see WalWriterOptions). Off trades durability of
  /// the most recent deltas for throughput.
  bool sync_every_append = true;
  /// Per-column raw-vs-varint choice when writing snapshots. Must be off
  /// for masters meant to load out-of-core (only raw blocks stay
  /// mapped).
  bool compress_snapshots = true;
  /// RAM budget for loading the master snapshot; columns beyond it stay
  /// memory-mapped (storage/columnar.h). The input snapshot always
  /// materializes — the engine rebuilds its own slot store from it.
  size_t mmap_budget_bytes = static_cast<size_t>(-1);
};

/// What recovery found (Open fills this; Create leaves it zeroed).
struct RecoveryInfo {
  uint64_t snapshot_id = 0;        ///< generation the manifest committed
  uint64_t replayed_records = 0;   ///< intact WAL records re-applied
  uint64_t discarded_bytes = 0;    ///< torn/corrupt WAL tail dropped
  size_t mapped_columns = 0;       ///< master columns left on the mmap
};

/// \brief Owns a DeltaRepairEngine plus its durability machinery. Same
/// single-caller-thread contract as the engine itself.
class DurableSession {
 public:
  /// Initializes `dir` (created if missing, must not already hold a
  /// session) with snapshot generation 0 of (master, input) and an empty
  /// WAL, persisting the ruleset and trusted set alongside.
  static Result<std::unique_ptr<DurableSession>> Create(
      const std::string& dir, const RuleSet& rules, const Relation& master,
      const Relation& input, AttrSet trusted, DurableOptions options = {});

  /// Recovers from an existing session directory: snapshot load + WAL
  /// replay per the protocol above. Rules and the trusted set are read
  /// back from the directory, so recovery needs nothing but `dir`.
  static Result<std::unique_ptr<DurableSession>> Open(
      const std::string& dir, DurableOptions options = {});

  /// True if `dir` holds a committed session (a MANIFEST).
  static bool Exists(const std::string& dir);

  DurableSession(const DurableSession&) = delete;
  DurableSession& operator=(const DurableSession&) = delete;
  ~DurableSession();

  /// WAL-append + fsync, then engine apply (and auto-rotation when
  /// snapshot_every is hit). The engine's verdict is returned; rejected
  /// deltas stay in the WAL harmlessly (see file comment).
  Status Apply(const Delta& delta);
  /// Applies every delta `source` yields, stopping on source errors.
  Status ApplyAll(DeltaSource* source);

  /// Rotates to a fresh snapshot generation (manifest commit), emptying
  /// the WAL. Telemetry: snapshot.bytes / snapshot.writes.
  Status WriteSnapshot();

  DeltaRepairEngine& engine() { return *engine_; }
  const RuleSet& rules() const { return *rules_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  uint64_t records_since_snapshot() const { return records_since_snapshot_; }
  uint64_t snapshot_id() const { return snapshot_id_; }
  const std::string& dir() const { return dir_; }

 private:
  DurableSession() = default;

  /// Writes generation `id` (both snapshots + fresh WAL), then commits
  /// it by atomically rewriting MANIFEST. Resets records_since_snapshot_.
  Status CommitGeneration(uint64_t id);
  std::string SnapshotPath(uint64_t id, const char* which) const;
  std::string WalPath(uint64_t id) const;

  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<RuleSet> rules_;  ///< owned; the engine borrows it
  AttrSet trusted_;
  std::unique_ptr<DeltaRepairEngine> engine_;
  std::unique_ptr<storage::WalWriter> wal_;
  uint64_t snapshot_id_ = 0;
  uint64_t records_since_snapshot_ = 0;
  RecoveryInfo recovery_;
};

}  // namespace certfix

#endif  // CERTFIX_INCREMENTAL_DURABLE_SESSION_H_
