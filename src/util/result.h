/// \file result.h
/// \brief Result<T>: a value or a Status, in the style of arrow::Result.

#ifndef CERTFIX_UTIL_RESULT_H_
#define CERTFIX_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace certfix {

/// \brief Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Move the value into `out` or return the error status.
  Status Value(T* out) && {
    if (!ok()) return status_;
    *out = std::move(*value_);
    return Status::OK();
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagate a non-OK Status out of the current function.
#define CERTFIX_RETURN_IF_ERROR(expr)                              \
  do {                                                             \
    ::certfix::Status CERTFIX_CONCAT_(_st_, __LINE__) = (expr);    \
    if (!CERTFIX_CONCAT_(_st_, __LINE__).ok())                     \
      return CERTFIX_CONCAT_(_st_, __LINE__);                      \
  } while (0)

/// Assign the value of a Result expression to `lhs` or propagate the error.
#define CERTFIX_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto CERTFIX_CONCAT_(_res_, __LINE__) = (rexpr);             \
  if (!CERTFIX_CONCAT_(_res_, __LINE__).ok())                  \
    return CERTFIX_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(CERTFIX_CONCAT_(_res_, __LINE__)).ValueOrDie()
#define CERTFIX_CONCAT_(a, b) CERTFIX_CONCAT_IMPL_(a, b)
#define CERTFIX_CONCAT_IMPL_(a, b) a##b

}  // namespace certfix

#endif  // CERTFIX_UTIL_RESULT_H_
