#include "util/thread_pool.h"

#include <algorithm>

namespace certfix {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  try {
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (const std::system_error&) {
    // Thread-resource exhaustion mid-spawn: with at least one worker the
    // pool is functional, just narrower; the destructor joins what was
    // spawned. With none there is nothing to clean up — propagate.
    if (workers_.empty()) throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveChunkSize(size_t n, size_t num_threads, size_t chunk_size) {
  if (chunk_size > 0) return chunk_size;
  size_t threads = num_threads == 0 ? DefaultParallelism() : num_threads;
  if (threads <= 1 || n <= threads) return std::max<size_t>(1, n);
  return (n + threads - 1) / threads;
}

size_t NumChunks(size_t n, size_t num_threads, size_t chunk_size) {
  if (n == 0) return 0;
  size_t size = ResolveChunkSize(n, num_threads, chunk_size);
  return (n + size - 1) / size;
}

void ParallelFor(size_t n, size_t num_threads, size_t chunk_size,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  size_t threads = num_threads == 0 ? DefaultParallelism() : num_threads;
  size_t size = ResolveChunkSize(n, num_threads, chunk_size);
  size_t chunks = (n + size - 1) / size;
  if (threads <= 1 || chunks <= 1) {
    for (size_t k = 0; k < chunks; ++k) {
      body(k, k * size, std::min((k + 1) * size, n));
    }
    return;
  }
  // Worker cap: oversubscription beyond the hardware is allowed (the
  // differential tests rely on running >1 worker per core) but bounded,
  // so an absurd num_threads cannot exhaust OS threads. The chunk layout
  // above depends only on (n, num_threads, chunk_size), so capping the
  // pool never changes results.
  size_t cap = std::max<size_t>(16, 2 * DefaultParallelism());
  ThreadPool pool(std::min({threads, chunks, cap}));
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&body, k, size, n] {
      body(k, k * size, std::min((k + 1) * size, n));
    });
  }
  pool.Wait();
}

}  // namespace certfix
