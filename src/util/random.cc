#include "util/random.h"

#include <cassert>

namespace certfix {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
}

std::string Rng::AlphaString(size_t len) {
  std::string s(len, 'a');
  for (char& c : s) c = static_cast<char>('a' + Uniform(0, 25));
  return s;
}

std::string Rng::DigitString(size_t len) {
  std::string s(len, '0');
  for (char& c : s) c = static_cast<char>('0' + Uniform(0, 9));
  return s;
}

}  // namespace certfix
