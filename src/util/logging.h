/// \file logging.h
/// \brief Minimal leveled logger; off by default, enabled via env or API.
/// Thread-safe: each call formats its whole line (timestamp + thread id
/// prefix included) into one buffer and writes it under a mutex, so
/// concurrent shard workers never interleave within a line.

#ifndef CERTFIX_UTIL_LOGGING_H_
#define CERTFIX_UTIL_LOGGING_H_

#include <iosfwd>
#include <sstream>
#include <string>

namespace certfix {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Initialized from the
/// CERTFIX_LOG env var ("debug"/"info"/"warn"/"error", default off).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Redirects log output (nullptr restores stderr). The sink must outlive
/// all logging; swap it only while no other thread logs — meant for
/// tests capturing output, not live rerouting.
void SetLogSink(std::ostream* sink);

/// Emit one log line: `[certfix LEVEL 2026-08-08 12:00:00.000 tN] msg`.
/// Safe to call from any thread; lines never interleave.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace internal

#define CERTFIX_LOG(level)                                      \
  if (::certfix::LogLevel::level >= ::certfix::GetLogLevel())   \
  ::certfix::internal::LogStream(::certfix::LogLevel::level)

}  // namespace certfix

#endif  // CERTFIX_UTIL_LOGGING_H_
