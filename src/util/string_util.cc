#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace certfix {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool IsInteger(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool ParseSizeStrict(std::string_view s, size_t* out) {
  if (s.empty()) return false;
  size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    size_t digit = static_cast<size_t>(c - '0');
    if (v > (SIZE_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool IsDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace certfix
