/// \file status.h
/// \brief Lightweight Status type for error handling without exceptions,
/// following the Arrow/RocksDB idiom used throughout this library.

#ifndef CERTFIX_UTIL_STATUS_H_
#define CERTFIX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace certfix {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kInconsistent,   ///< Editing rules + master data conflict (Sect. 4.1).
  kNotCovered,     ///< Region fails to cover all attributes (Sect. 4.1).
  kUnsupported,
  kInternal,
};

/// \brief Result of an operation: either OK or a code with a message.
///
/// Status is cheap to copy in the OK case (no allocation) and is used as the
/// return type of every fallible operation in the library.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status NotCovered(std::string msg) {
    return Status(StatusCode::kNotCovered, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad attribute".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kInconsistent: return "Inconsistent";
      case StatusCode::kNotCovered: return "NotCovered";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagate a non-OK Status to the caller.
#define CERTFIX_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::certfix::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace certfix

#endif  // CERTFIX_UTIL_STATUS_H_
