/// \file thread_pool.h
/// \brief Fixed-size worker pool and a chunked parallel-for on top of it.
///
/// The pool is the primitive behind the parallel batch-repair engine (and
/// future sharded subsystems): a fixed number of workers pull closures
/// from one queue, and Wait() blocks until every submitted task has
/// finished, so one pool can serve many Submit/Wait waves. ParallelFor is
/// the one-shot convenience on top: it spins up a pool for a single
/// statically chunked loop — no work stealing — which keeps the
/// chunk -> worker mapping deterministic and cheap.

#ifndef CERTFIX_UTIL_THREAD_POOL_H_
#define CERTFIX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace certfix {

/// \brief Fixed worker count, one shared FIFO task queue.
///
/// The first exception a task throws is captured and rethrown from the
/// next Wait() (after all tasks of the wave have drained), so a failing
/// shard surfaces exactly like it would on the sequential path instead of
/// silently yielding partial results; subsequent exceptions of the same
/// wave are dropped.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then
  /// rethrows the first exception any task of the wave threw (if any).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;  ///< signals workers
  std::condition_variable all_done_;    ///< signals Wait()
  size_t in_flight_ = 0;                ///< queued + running tasks
  std::exception_ptr first_error_;      ///< first task failure of the wave
  bool stop_ = false;
};

/// Worker count to use when the caller passes 0: the hardware concurrency,
/// or 1 when it is unknown.
size_t DefaultParallelism();

/// \brief Runs `body(chunk_index, begin, end)` over static contiguous
/// chunks of [0, n).
///
/// Chunks are `[k*chunk_size, min((k+1)*chunk_size, n))` for
/// k = 0 .. NumChunks(n, chunk_size)-1, so results indexed by chunk can be
/// merged in a deterministic order regardless of execution interleaving.
/// With `num_threads <= 1` (after resolving 0 via DefaultParallelism) or a
/// single chunk, everything runs inline on the calling thread and no pool
/// is created. `chunk_size == 0` divides [0, n) evenly over the workers.
/// `body` must be safe to call concurrently on disjoint chunks. The pool's
/// worker count is capped at max(16, 2x hardware threads) — the chunk
/// layout is already fixed by the arguments, so the cap never changes
/// results. If any chunk throws, the first exception propagates to the
/// caller after the round drains.
void ParallelFor(size_t n, size_t num_threads, size_t chunk_size,
                 const std::function<void(size_t chunk_index, size_t begin,
                                          size_t end)>& body);

/// The chunk size ParallelFor will actually use (resolves chunk_size == 0
/// to an even split over the workers). Always >= 1.
size_t ResolveChunkSize(size_t n, size_t num_threads, size_t chunk_size);

/// Number of chunks ParallelFor will produce: ceil(n / resolved size).
size_t NumChunks(size_t n, size_t num_threads, size_t chunk_size);

}  // namespace certfix

#endif  // CERTFIX_UTIL_THREAD_POOL_H_
