#include "util/logging.h"

#include <cstdlib>
#include <iostream>

#include "util/string_util.h"

namespace certfix {

namespace {
LogLevel InitLevel() {
  const char* env = std::getenv("CERTFIX_LOG");
  if (env == nullptr) return LogLevel::kOff;
  std::string v = ToLower(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}
LogLevel g_level = InitLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::cerr << "[certfix " << LevelName(level) << "] " << msg << "\n";
}

}  // namespace certfix
