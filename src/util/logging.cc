#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

#include "util/string_util.h"

namespace certfix {

namespace {
LogLevel InitLevel() {
  const char* env = std::getenv("CERTFIX_LOG");
  if (env == nullptr) return LogLevel::kOff;
  std::string v = ToLower(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}
std::atomic<int> g_level{static_cast<int>(InitLevel())};

std::mutex g_sink_mutex;                 // serializes line writes
std::ostream* g_sink = nullptr;          // nullptr = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Small dense thread ids (t1, t2, ...) in first-log order: stable within
/// a process and far more readable than pthread handles.
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// UTC wall-clock "YYYY-MM-DD HH:MM:SS.mmm".
void AppendTimestamp(std::string* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  *out += buf;
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel()) return;
  // The full line is built before any I/O so the sink sees exactly one
  // write (plus flush) per message — no interleaving mid-line even if
  // the sink's streambuf writes through unbuffered.
  std::string line;
  line.reserve(msg.size() + 48);
  line += "[certfix ";
  line += LevelName(level);
  line += ' ';
  AppendTimestamp(&line);
  line += " t";
  line += std::to_string(ThisThreadId());
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
}

}  // namespace certfix
