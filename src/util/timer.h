/// \file timer.h
/// \brief Wall-clock stopwatch used by the benchmark harnesses.

#ifndef CERTFIX_UTIL_TIMER_H_
#define CERTFIX_UTIL_TIMER_H_

#include <chrono>

namespace certfix {

/// \brief Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace certfix

#endif  // CERTFIX_UTIL_TIMER_H_
