/// \file random.h
/// \brief Deterministic PRNG wrapper used by generators and heuristics.

#ifndef CERTFIX_UTIL_RANDOM_H_
#define CERTFIX_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace certfix {

/// \brief Seeded Mersenne-Twister with convenience draws.
///
/// All stochastic components (dirty-data generator, randomized region
/// search) take an Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p.
  bool Bernoulli(double p);

  /// Uniform index in [0, n); n must be > 0.
  size_t Index(size_t n);

  /// Random lower-case ASCII string of length `len`.
  std::string AlphaString(size_t len);

  /// Random digits string of length `len`.
  std::string DigitString(size_t len);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace certfix

#endif  // CERTFIX_UTIL_RANDOM_H_
