/// \file edit_distance.h
/// \brief Levenshtein distance, used by the IncRep cost model [Cong+ 07].

#ifndef CERTFIX_UTIL_EDIT_DISTANCE_H_
#define CERTFIX_UTIL_EDIT_DISTANCE_H_

#include <string_view>

namespace certfix {

/// Classic Levenshtein distance (unit insert/delete/substitute costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized distance in [0,1]: EditDistance / max(|a|,|b|); 0 when both
/// strings are empty. This is the dis(v,v') metric of the IncRep cost model.
double NormalizedEditDistance(std::string_view a, std::string_view b);

}  // namespace certfix

#endif  // CERTFIX_UTIL_EDIT_DISTANCE_H_
