#include "util/edit_distance.h"

#include <algorithm>
#include <vector>

namespace certfix {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program: row[j] = distance(a[0..i), b[0..j)).
  std::vector<size_t> row(a.size() + 1);
  for (size_t j = 0; j <= a.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= b.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= a.size(); ++j) {
      size_t cur = row[j];
      size_t sub = prev_diag + (a[j - 1] == b[i - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) / static_cast<double>(m);
}

}  // namespace certfix
