/// \file string_util.h
/// \brief Small string helpers shared across modules.

#ifndef CERTFIX_UTIL_STRING_UTIL_H_
#define CERTFIX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace certfix {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Remove ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string ToLower(std::string_view s);

/// True if `s` parses as a (signed) decimal integer.
bool IsInteger(std::string_view s);

/// Strict non-negative decimal parse: ASCII digits only — no sign, no
/// surrounding whitespace (which strtoul silently accepts), no trailing
/// bytes — and rejects values that overflow size_t. Row positions in
/// delta logs and CLI size flags go through this.
bool ParseSizeStrict(std::string_view s, size_t* out);

/// True if `s` parses as a floating point literal.
bool IsDouble(std::string_view s);

}  // namespace certfix

#endif  // CERTFIX_UTIL_STRING_UTIL_H_
