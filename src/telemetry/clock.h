/// \file clock.h
/// \brief Monotonic nanosecond clock with an injectable fake for
/// deterministic output.
///
/// All telemetry timing flows through NowNanos() so one switch turns
/// every duration and span timestamp into 0: `--metrics-deterministic`
/// on the CLI (or the CERTFIX_FAKE_CLOCK env var) pins metrics JSON and
/// trace files byte-for-byte for golden tests, while counters — which
/// never consult the clock — stay exact.

#ifndef CERTFIX_TELEMETRY_CLOCK_H_
#define CERTFIX_TELEMETRY_CLOCK_H_

#include <cstdint>

namespace certfix {
namespace telemetry {

/// Nanoseconds on the process steady clock, or 0 under the fake clock.
uint64_t NowNanos();

/// True when timing is faked (every NowNanos() returns 0). Initialized
/// from the CERTFIX_FAKE_CLOCK env var (any non-empty value).
bool UsingFakeClock();
void SetFakeClock(bool fake);

/// RAII fake-clock override for CLI commands and tests; restores the
/// previous setting on destruction.
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(bool fake);
  ~ScopedFakeClock();
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

 private:
  bool prev_;
};

}  // namespace telemetry
}  // namespace certfix

#endif  // CERTFIX_TELEMETRY_CLOCK_H_
