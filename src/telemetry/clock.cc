#include "telemetry/clock.h"

#include <atomic>
#include <chrono>
#include <cstdlib>

namespace certfix {
namespace telemetry {

namespace {
bool InitFake() {
  const char* env = std::getenv("CERTFIX_FAKE_CLOCK");
  return env != nullptr && env[0] != '\0';
}
std::atomic<bool> g_fake{InitFake()};
}  // namespace

uint64_t NowNanos() {
  if (g_fake.load(std::memory_order_relaxed)) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool UsingFakeClock() { return g_fake.load(std::memory_order_relaxed); }

void SetFakeClock(bool fake) {
  g_fake.store(fake, std::memory_order_relaxed);
}

ScopedFakeClock::ScopedFakeClock(bool fake) : prev_(UsingFakeClock()) {
  SetFakeClock(fake);
}

ScopedFakeClock::~ScopedFakeClock() { SetFakeClock(prev_); }

}  // namespace telemetry
}  // namespace certfix
