#include "telemetry/metrics.h"

#include <cmath>
#include <sstream>

namespace certfix {
namespace telemetry {

size_t ThreadStripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

size_t Histogram::BucketOf(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);
  const int m = 63 - __builtin_clzll(v);
  const size_t sub = static_cast<size_t>((v >> (m - 2)) & 3);
  return static_cast<size_t>(4 * (m - 1)) + sub;
}

uint64_t Histogram::BucketUpper(size_t idx) {
  if (idx < 4) return idx;
  const int m = static_cast<int>(idx / 4) + 1;
  const uint64_t sub = idx % 4;
  const uint64_t width = uint64_t{1} << (m - 2);
  const uint64_t lower = (4 + sub) << (m - 2);
  return lower + (width - 1);
}

namespace {
/// Nearest-rank percentile over folded buckets, clamped to the observed
/// max so a sparse top bucket cannot report past the largest sample.
uint64_t PercentileFromBuckets(const std::array<uint64_t, Histogram::kBuckets>&
                                   buckets,
                               uint64_t count, uint64_t max, double q) {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cum = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const uint64_t upper = Histogram::BucketUpper(i);
      return upper < max ? upper : max;
    }
  }
  return max;
}
}  // namespace

HistogramSnapshot Histogram::Snap() const {
  std::array<uint64_t, kBuckets> folded{};
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      const uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      folded[i] += n;
      snap.count += n;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    const uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > snap.max) snap.max = m;
  }
  snap.p50 = PercentileFromBuckets(folded, snap.count, snap.max, 0.50);
  snap.p90 = PercentileFromBuckets(folded, snap.count, snap.max, 0.90);
  snap.p99 = PercentileFromBuckets(folded, snap.count, snap.max, 0.99);
  return snap;
}

namespace {
Registry* DefaultRegistry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return r;
}
std::atomic<Registry*> g_global{nullptr};
std::atomic<uint64_t> g_generation{0};
std::atomic<bool> g_enabled{true};

template <typename T>
T* GetOrCreate(std::mutex& mu, std::map<std::string, std::unique_ptr<T>>& map,
               const std::string& name) {
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<T>& slot = map[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return slot.get();
}
}  // namespace

Counter* Registry::GetCounter(const std::string& name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge* Registry::GetGauge(const std::string& name) {
  return GetOrCreate(mu_, gauges_, name);
}

MaxGauge* Registry::GetMaxGauge(const std::string& name) {
  return GetOrCreate(mu_, max_gauges_, name);
}

Histogram* Registry::GetHistogram(const std::string& name) {
  return GetOrCreate(mu_, histograms_, name);
}

Registry* Registry::Global() {
  Registry* r = g_global.load(std::memory_order_seq_cst);
  return r != nullptr ? r : DefaultRegistry();
}

Registry* Registry::SetGlobal(Registry* r) {
  // Pointer first, generation second: a handle that observes the new
  // generation is then guaranteed to also observe the new pointer
  // (metrics.h, internal::Handle).
  Registry* prev = g_global.exchange(r, std::memory_order_seq_cst);
  g_generation.fetch_add(1, std::memory_order_seq_cst);
  return prev;
}

uint64_t Registry::Generation() {
  return g_generation.load(std::memory_order_seq_cst);
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n";
  auto section = [&out](const char* title, auto& map, auto&& emit,
                        bool last) {
    out << "  \"" << title << "\": {";
    bool first = true;
    for (const auto& [name, instrument] : map) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
      emit(*instrument);
      first = false;
    }
    out << (first ? "}" : "\n  }") << (last ? "\n" : ",\n");
  };
  section("counters", counters_,
          [&out](const Counter& c) { out << c.Value(); }, false);
  section("gauges", gauges_, [&out](const Gauge& g) { out << g.Value(); },
          false);
  section("histograms", histograms_,
          [&out](const Histogram& h) {
            const HistogramSnapshot s = h.Snap();
            out << "{\"count\": " << s.count << ", \"max\": " << s.max
                << ", \"p50\": " << s.p50 << ", \"p90\": " << s.p90
                << ", \"p99\": " << s.p99 << ", \"sum\": " << s.sum << "}";
          },
          false);
  section("max_gauges", max_gauges_,
          [&out](const MaxGauge& m) { out << m.Value(); }, true);
  out << "}\n";
  return out.str();
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace telemetry
}  // namespace certfix
