/// \file trace.h
/// \brief Lightweight span tracer: RAII scopes recorded into per-thread
/// ring buffers, exported as Chrome / Perfetto trace-event JSON.
///
/// Off by default: CERTFIX_SPAN costs one relaxed load when tracing is
/// disabled. When enabled (CLI `--trace-out`), a span records a begin
/// ("B") event at construction and an end ("E") event at destruction —
/// name pointer, steady-clock nanoseconds, nothing else — into a
/// preallocated per-thread buffer; no locks, no allocation on the hot
/// path.
///
/// B/E pairing is guaranteed by a reservation scheme: a span records
/// its B only if the buffer has room for both the B and its future E
/// (the E slot is reserved at B time), so a full buffer drops whole
/// spans — counted in dropped() — never half of one. ExportJson() skips
/// still-open spans, so the exported stream is always well-formed.
///
/// Span names must be string literals (the tracer stores the pointer).
///
/// Enable() resets all buffers and must not race live spans: call it
/// before the traced engines spawn workers, export after they join.

#ifndef CERTFIX_TELEMETRY_TRACE_H_
#define CERTFIX_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace certfix {
namespace telemetry {

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 15;  ///< events/thread

  static Tracer& Global();

  /// Clears all thread buffers and starts recording. `capacity` is the
  /// per-thread event budget (a span consumes two events).
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ({"traceEvents": [...]}): one B and one E
  /// per completed span, timestamps in microseconds, tid = registration
  /// order of the recording thread. Loadable in Perfetto or
  /// chrome://tracing.
  std::string ExportJson();

  /// Spans not recorded because a thread buffer was full.
  uint64_t dropped();

 private:
  friend class Span;

  struct Event {
    const char* name;
    uint64_t ts_ns;
    char phase;  // 'B' or 'E'
  };
  struct ThreadLog {
    ThreadLog(uint32_t tid_in, size_t capacity) : tid(tid_in) {
      events.resize(capacity);
    }
    const uint32_t tid;
    std::vector<Event> events;
    /// Published event count: stored with release by the owning thread,
    /// loaded with acquire by ExportJson, so a concurrent export sees
    /// only fully written events.
    std::atomic<size_t> size{0};
    size_t reserved = 0;   ///< E slots owed by open spans (owner only)
    uint64_t dropped = 0;  ///< whole spans skipped for space (owner only)
  };

  /// The calling thread's log for the current Enable() generation,
  /// registering a fresh one if needed.
  ThreadLog* CurrentThreadLog();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{0};
  std::mutex mu_;  ///< guards logs_ and capacity_
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  size_t capacity_ = kDefaultCapacity;
};

/// \brief RAII span: records B on construction, E on destruction, into
/// the global tracer. `name` must be a string literal.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer::ThreadLog* log_;  ///< non-null iff the B event was recorded
  const char* name_;
};

#define CERTFIX_SPAN_CONCAT2(a, b) a##b
#define CERTFIX_SPAN_CONCAT(a, b) CERTFIX_SPAN_CONCAT2(a, b)
/// Traces the enclosing scope under `name` (a string literal).
#define CERTFIX_SPAN(name) \
  ::certfix::telemetry::Span CERTFIX_SPAN_CONCAT(certfix_span_, __LINE__)(name)

}  // namespace telemetry
}  // namespace certfix

#endif  // CERTFIX_TELEMETRY_TRACE_H_
