/// \file metrics.h
/// \brief Process-wide metrics registry: named counters, gauges,
/// max-gauges, and log-linear latency histograms.
///
/// Hot-path cost model (docs/ARCHITECTURE.md "Telemetry layer"):
///
///   * Counter::Add / Gauge::Add — one relaxed fetch_add on a
///     per-thread-striped, cache-line-padded slot. No locks, no false
///     sharing between worker threads; totals are folded (summed across
///     stripes) only when a snapshot is taken.
///   * Histogram::Record — one relaxed fetch_add into a log-linear
///     bucket (4 sub-buckets per power of two, <= 25% overestimate at
///     the reported percentile) plus a relaxed sum add and a CAS max,
///     again on a per-thread-striped shard.
///   * MaxGauge::Note — a single relaxed CAS-max; the shared home of
///     the idiom StreamMetrics and the delta engine used to duplicate.
///   * ScopedLatency — two steady_clock reads around the scope when
///     telemetry is enabled; nothing at all under `--no-telemetry`.
///
/// Registration (Registry::Get*) takes a mutex and is meant for
/// construction time; hot paths hold pointers. Free functions without a
/// natural home for a handle use the CERTFIX_TL_* macros, which cache
/// the pointer in a thread_local revalidated against the registry
/// generation — one relaxed load per call once warm.
///
/// Registry::Global() is swappable (ScopedRegistry) so each CLI command
/// and each bench scenario snapshots only its own run even when many
/// run inside one process (cli_test drives RunCli in-process).
///
/// ToJson() output is deterministic: names sorted (std::map order),
/// integer-only values, fixed field order — golden-pinnable once the
/// fake clock (telemetry/clock.h) zeroes every duration.

#ifndef CERTFIX_TELEMETRY_METRICS_H_
#define CERTFIX_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "telemetry/clock.h"

namespace certfix {
namespace telemetry {

/// Stripe count for counters/gauges and histogram shards. Worker counts
/// in this repo are single-digit; 8 stripes keeps collisions rare
/// without bloating fold cost.
constexpr size_t kStripes = 8;

/// Stable per-thread stripe slot in [0, kStripes), assigned round-robin
/// on first use.
size_t ThreadStripeIndex();

namespace internal {
struct alignas(64) PaddedCount {
  std::atomic<uint64_t> v{0};
};
struct alignas(64) PaddedSigned {
  std::atomic<int64_t> v{0};
};
}  // namespace internal

/// \brief Monotone counter, striped per thread. Value() folds exactly
/// once all writers have quiesced (engines join workers before
/// snapshotting).
class Counter {
 public:
  void Add(uint64_t n) {
    stripes_[ThreadStripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedCount, kStripes> stripes_;
};

/// \brief Signed additive gauge (level, not rate): slot-class
/// populations, live rows — anything that goes up and down.
class Gauge {
 public:
  void Add(int64_t n) {
    stripes_[ThreadStripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedSigned, kStripes> stripes_;
};

/// \brief High-water mark: lock-free CAS-max, readable any time.
class MaxGauge {
 public:
  void Note(uint64_t v) {
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> max_{0};
};

/// \brief Point-in-time histogram summary (integer nanoseconds).
/// Percentiles are nearest-rank over the log-linear buckets, reported
/// as the bucket upper bound clamped to the observed max: never below
/// the true sample, never more than 25% above it (exact for values
/// < 4).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// \brief Log-linear latency histogram: 4 sub-buckets per power of two
/// (HdrHistogram-style), fixed 256-bucket layout covering the full
/// uint64 range, striped per thread.
class Histogram {
 public:
  static constexpr size_t kBuckets = 256;

  /// Bucket index for a value: v < 4 maps to bucket v exactly; above
  /// that, bucket 4*(m-1) + sub where m = floor(log2 v) and sub is the
  /// 2-bit mantissa below the leading bit. Max index is 251.
  static size_t BucketOf(uint64_t v);
  /// Inclusive upper bound of a bucket (the reported representative).
  static uint64_t BucketUpper(size_t idx);

  void Record(uint64_t v) {
    Shard& s = shards_[ThreadStripeIndex()];
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = s.max.load(std::memory_order_relaxed);
    while (v > seen && !s.max.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Shard, kStripes> shards_;
};

/// \brief Named-instrument registry. Get* registers on first use and
/// returns a stable pointer (instruments live as long as the registry);
/// both take a mutex — resolve handles at construction time, not on hot
/// paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  MaxGauge* GetMaxGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Deterministic JSON snapshot: four name-sorted sections (counters,
  /// gauges, histograms, max_gauges), integer values only, trailing
  /// newline. Two calls with no writes in between are byte-identical.
  std::string ToJson() const;

  /// The process-global registry (a leaked default until SetGlobal).
  static Registry* Global();
  /// Installs `r` (nullptr restores the default); returns the previous
  /// override. Bumps Generation() so CERTFIX_TL_* caches re-resolve.
  static Registry* SetGlobal(Registry* r);
  /// Monotone swap count, used to invalidate cached handles.
  static uint64_t Generation();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<MaxGauge>> max_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief RAII fresh-registry scope: installs its own registry as
/// Global() for its lifetime. Everything constructed inside the scope
/// (engines, cached handles) must not outlive it.
class ScopedRegistry {
 public:
  ScopedRegistry() : prev_(Registry::SetGlobal(&registry_)) {}
  ~ScopedRegistry() { Registry::SetGlobal(prev_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  Registry& registry() { return registry_; }

 private:
  Registry registry_;
  Registry* prev_;
};

/// Master switch for clock-touching instrumentation (ScopedLatency,
/// spans). Counters and gauges are NOT gated: CLI summaries and engine
/// snapshots are built on them and must stay exact either way. Default
/// on; `--no-telemetry` turns it off.
bool Enabled();
void SetEnabled(bool on);

/// RAII enable/disable override; restores the previous setting.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnabled() { SetEnabled(prev_); }
  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool prev_;
};

/// \brief Records the wall-clock duration of a scope into a histogram.
/// Measures the full scope — for BoundedQueue this includes lock
/// acquisition, so push/pop wait histograms reflect real caller-visible
/// latency, not just the blocked branch. No-op when telemetry is
/// disabled or `h` is null.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* h)
      : h_(Enabled() ? h : nullptr), start_(h_ != nullptr ? NowNanos() : 0) {}
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Record(NowNanos() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  uint64_t start_;
};

namespace internal {
/// Thread-local instrument cache for call sites with no object to hang
/// a handle on (free functions, templates). Revalidated against
/// Registry::Generation(): SetGlobal stores the pointer before bumping
/// the generation, and Get loads the generation before the pointer, so
/// a matching generation implies the cached pointer targets the live
/// registry (never a freed one reincarnated at the same address).
template <typename T, T* (Registry::*GetFn)(const std::string&)>
struct Handle {
  uint64_t gen = ~uint64_t{0};
  T* instrument = nullptr;
  T* Get(const char* name) {
    uint64_t g = Registry::Generation();
    if (g != gen) {
      instrument = (Registry::Global()->*GetFn)(name);
      gen = g;
    }
    return instrument;
  }
};
using CounterHandle = Handle<Counter, &Registry::GetCounter>;
using GaugeHandle = Handle<Gauge, &Registry::GetGauge>;
using HistogramHandle = Handle<Histogram, &Registry::GetHistogram>;
}  // namespace internal

/// Per-call-site, per-thread cached instrument lookup: `name` must be a
/// string literal (the handle keeps the pointer).
#define CERTFIX_TL_COUNTER(name)                                       \
  ([]() -> ::certfix::telemetry::Counter* {                            \
    thread_local ::certfix::telemetry::internal::CounterHandle handle; \
    return handle.Get(name);                                           \
  }())

#define CERTFIX_TL_GAUGE(name)                                        \
  ([]() -> ::certfix::telemetry::Gauge* {                             \
    thread_local ::certfix::telemetry::internal::GaugeHandle handle;  \
    return handle.Get(name);                                          \
  }())

#define CERTFIX_TL_HISTOGRAM(name)                                       \
  ([]() -> ::certfix::telemetry::Histogram* {                            \
    thread_local ::certfix::telemetry::internal::HistogramHandle handle; \
    return handle.Get(name);                                             \
  }())

}  // namespace telemetry
}  // namespace certfix

#endif  // CERTFIX_TELEMETRY_METRICS_H_
