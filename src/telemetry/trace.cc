#include "telemetry/trace.h"

#include <iomanip>
#include <sstream>

#include "telemetry/clock.h"

namespace certfix {
namespace telemetry {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.clear();
  capacity_ = capacity;
  // Bump the generation before turning recording on: threads holding a
  // cached log from a previous run re-register before their next span.
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

Tracer::ThreadLog* Tracer::CurrentThreadLog() {
  // The shared_ptr keeps a superseded log alive until this thread
  // re-registers, so a stale cache can never dangle.
  struct Cache {
    uint64_t gen = ~uint64_t{0};
    std::shared_ptr<ThreadLog> log;
  };
  thread_local Cache cache;
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.gen != gen || cache.log == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto log = std::make_shared<ThreadLog>(
        static_cast<uint32_t>(logs_.size() + 1), capacity_);
    logs_.push_back(log);
    cache.log = std::move(log);
    cache.gen = gen;
  }
  return cache.log.get();
}

uint64_t Tracer::dropped() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& log : logs_) total += log->dropped;
  return total;
}

std::string Tracer::ExportJson() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& log : logs) {
    const size_t n = log->size.load(std::memory_order_acquire);
    // Spans still open at export time have a B but no E yet; mark their
    // B events and skip them so the emitted stream is well-formed.
    std::vector<char> skip(n, 0);
    std::vector<size_t> open;
    for (size_t i = 0; i < n; ++i) {
      if (log->events[i].phase == 'B') {
        open.push_back(i);
      } else if (!open.empty()) {
        open.pop_back();
      }
    }
    for (size_t i : open) skip[i] = 1;
    for (size_t i = 0; i < n; ++i) {
      if (skip[i] != 0) continue;
      const Event& e = log->events[i];
      out << (first ? "" : ",\n") << "  {\"name\": \"" << e.name
          << "\", \"cat\": \"certfix\", \"ph\": \"" << e.phase
          << "\", \"ts\": " << e.ts_ns / 1000 << '.' << std::setw(3)
          << std::setfill('0') << e.ts_ns % 1000 << std::setfill(' ')
          << ", \"pid\": 1, \"tid\": " << log->tid << "}";
      first = false;
    }
  }
  out << "\n]}\n";
  return out.str();
}

Span::Span(const char* name) : log_(nullptr), name_(name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  Tracer::ThreadLog* log = tracer.CurrentThreadLog();
  const size_t size = log->size.load(std::memory_order_relaxed);
  // Room for this B *and* its future E, plus every E already owed to
  // open outer spans — a full buffer drops whole spans, never half.
  if (size + log->reserved + 2 > log->events.size()) {
    ++log->dropped;
    return;
  }
  log->events[size] = {name, NowNanos(), 'B'};
  log->size.store(size + 1, std::memory_order_release);
  ++log->reserved;
  log_ = log;
}

Span::~Span() {
  if (log_ == nullptr) return;
  const size_t size = log_->size.load(std::memory_order_relaxed);
  log_->events[size] = {name_, NowNanos(), 'E'};
  log_->size.store(size + 1, std::memory_order_release);
  --log_->reserved;
}

}  // namespace telemetry
}  // namespace certfix
