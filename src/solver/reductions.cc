#include "solver/reductions.h"

#include <cassert>

namespace certfix {

namespace {
Value V0() { return Value::Int(0); }
Value V1() { return Value::Int(1); }
}  // namespace

ConsistencyInstance Reduce3SatToConsistency(const CnfFormula& formula) {
  int m = formula.num_vars;
  int n = static_cast<int>(formula.clauses.size());
  assert(m + n + 3 <= static_cast<int>(AttrSet::kMaxAttrs));

  // R(A, X1..Xm, C1..Cn, V, B); Rm(Y0, Y1, A, V, B); integer attributes.
  std::vector<Attribute> r_attrs;
  r_attrs.push_back({"A", DataType::kInt});
  for (int i = 1; i <= m; ++i) {
    r_attrs.push_back({"X" + std::to_string(i), DataType::kInt});
  }
  for (int j = 1; j <= n; ++j) {
    r_attrs.push_back({"C" + std::to_string(j), DataType::kInt});
  }
  r_attrs.push_back({"V", DataType::kInt});
  r_attrs.push_back({"B", DataType::kInt});
  SchemaPtr r = Schema::Make("R3sat", r_attrs);
  SchemaPtr rm = Schema::Make(
      "Rm3sat", std::vector<Attribute>{{"Y0", DataType::kInt},
                                       {"Y1", DataType::kInt},
                                       {"A", DataType::kInt},
                                       {"V", DataType::kInt},
                                       {"B", DataType::kInt}});

  ConsistencyInstance inst;
  inst.r = r;
  inst.rm = rm;
  inst.dm = Relation(rm);
  // tm1 = (0,1,1,1,1), tm2 = (0,1,1,1,0), tm3 = (0,1,1,0,1).
  Status st = inst.dm.AppendStrings({"0", "1", "1", "1", "1"});
  st = inst.dm.AppendStrings({"0", "1", "1", "1", "0"});
  st = inst.dm.AppendStrings({"0", "1", "1", "1", "0"});  // placeholder
  (void)st;
  // Replace the third row properly: (0,1,1,0,1).
  inst.dm.SetCell(2, 3, V0());
  inst.dm.SetCell(2, 4, V1());

  auto attr = [&](const std::string& name) {
    Result<AttrId> id = r->IndexOf(name);
    assert(id.ok());
    return *id;
  };
  AttrId a_attr = attr("A");
  AttrId v_attr = attr("V");
  AttrId b_attr = attr("B");
  AttrId y0 = 0;
  AttrId y1 = 1;
  AttrId ma = 2;
  AttrId mv = 3;
  AttrId mb = 4;

  inst.rules = RuleSet(r, rm);
  // Sigma_j: eight rules per clause, one per assignment of the clause's
  // three variables; the target master column is Y0 when the assignment
  // falsifies the clause and Y1 otherwise.
  for (int j = 0; j < n; ++j) {
    const Clause& clause = formula.clauses[static_cast<size_t>(j)];
    AttrId cj = attr("C" + std::to_string(j + 1));
    std::vector<AttrId> xp;
    for (Literal lit : clause) {
      xp.push_back(attr("X" + std::to_string(std::abs(lit))));
    }
    for (int bits = 0; bits < 8; ++bits) {
      PatternTuple tp(r);
      bool clause_true = false;
      for (int i = 0; i < 3; ++i) {
        bool bit = (bits >> i) & 1;
        tp.SetConst(xp[static_cast<size_t>(i)], bit ? V1() : V0());
        Literal lit = clause[static_cast<size_t>(i)];
        if ((lit > 0) == bit) clause_true = true;
      }
      AttrId target_m = clause_true ? y1 : y0;
      Result<EditingRule> rule = EditingRule::Make(
          "c" + std::to_string(j + 1) + "_" + std::to_string(bits), r, rm,
          {a_attr}, {ma}, cj, target_m, std::move(tp));
      assert(rule.ok());
      st = inst.rules.Add(std::move(rule).ValueOrDie());
      assert(st.ok());
    }
  }
  // Sigma_{C,V}: V := Y0 when some C_j = 0; V := Y1 when all C_j = 1.
  for (int j = 0; j < n; ++j) {
    PatternTuple tp(r);
    tp.SetConst(attr("C" + std::to_string(j + 1)), V0());
    Result<EditingRule> rule =
        EditingRule::Make("v_from_c" + std::to_string(j + 1), r, rm,
                          {a_attr}, {ma}, v_attr, y0, std::move(tp));
    assert(rule.ok());
    st = inst.rules.Add(std::move(rule).ValueOrDie());
  }
  {
    PatternTuple tp(r);
    for (int j = 0; j < n; ++j) {
      tp.SetConst(attr("C" + std::to_string(j + 1)), V1());
    }
    Result<EditingRule> rule = EditingRule::Make(
        "v_all_true", r, rm, {a_attr}, {ma}, v_attr, y1, std::move(tp));
    assert(rule.ok());
    st = inst.rules.Add(std::move(rule).ValueOrDie());
  }
  // Sigma_{V,B}: ((V, V) -> (B, B), ()).
  {
    Result<EditingRule> rule = EditingRule::Make(
        "b_from_v", r, rm, {v_attr}, {mv}, b_attr, mb, PatternTuple(r));
    assert(rule.ok());
    st = inst.rules.Add(std::move(rule).ValueOrDie());
  }

  // Region: Z = (A, X1..Xm), tc = (1, _, ..., _).
  std::vector<AttrId> z;
  z.push_back(a_attr);
  for (int i = 1; i <= m; ++i) z.push_back(attr("X" + std::to_string(i)));
  inst.region = Region::Of(r, z);
  PatternTuple tc(r);
  tc.SetConst(a_attr, V1());
  st = inst.region.AddRow(std::move(tc));
  assert(st.ok());
  return inst;
}

ZInstance Reduce3SatToZProblems(const CnfFormula& formula) {
  int m = formula.num_vars;
  int n = static_cast<int>(formula.clauses.size());
  assert(m + n + 1 <= static_cast<int>(AttrSet::kMaxAttrs));

  // R(X1..Xm, C1..Cn, V); Rm(B1, B2, B3, C, V1, V0).
  std::vector<Attribute> r_attrs;
  for (int i = 1; i <= m; ++i) {
    r_attrs.push_back({"X" + std::to_string(i), DataType::kInt});
  }
  for (int j = 1; j <= n; ++j) {
    r_attrs.push_back({"C" + std::to_string(j), DataType::kInt});
  }
  r_attrs.push_back({"V", DataType::kInt});
  SchemaPtr r = Schema::Make("Rz", r_attrs);
  SchemaPtr rm = Schema::Make(
      "Rmz", std::vector<Attribute>{{"B1", DataType::kInt},
                                    {"B2", DataType::kInt},
                                    {"B3", DataType::kInt},
                                    {"C", DataType::kInt},
                                    {"V1", DataType::kInt},
                                    {"V0", DataType::kInt}});

  ZInstance inst;
  inst.r = r;
  inst.rm = rm;
  inst.dm = Relation(rm);
  // Eight master rows enumerating (B1,B2,B3) with (C,V1,V0) = (1,1,0).
  for (int bits = 0; bits < 8; ++bits) {
    Status st = inst.dm.AppendStrings(
        {std::to_string(bits & 1), std::to_string((bits >> 1) & 1),
         std::to_string((bits >> 2) & 1), "1", "1", "0"});
    assert(st.ok());
    (void)st;
  }

  auto attr = [&](const std::string& name) {
    Result<AttrId> id = r->IndexOf(name);
    assert(id.ok());
    return *id;
  };
  AttrId mv1 = 4;
  AttrId mv0 = 5;
  AttrId mc = 3;
  AttrId v_attr = attr("V");

  inst.rules = RuleSet(r, rm);
  for (int j = 0; j < n; ++j) {
    const Clause& clause = formula.clauses[static_cast<size_t>(j)];
    AttrId cj = attr("C" + std::to_string(j + 1));
    std::vector<AttrId> x;
    for (Literal lit : clause) {
      x.push_back(attr("X" + std::to_string(std::abs(lit))));
    }
    std::vector<AttrId> xm = {0, 1, 2};  // B1, B2, B3
    // phi_{j,1}: (X.. | B..) -> (Cj | C).
    Result<EditingRule> r1 =
        EditingRule::Make("z_c" + std::to_string(j + 1), r, rm, x, xm, cj,
                          mc, PatternTuple(r));
    assert(r1.ok());
    Status st = inst.rules.Add(std::move(r1).ValueOrDie());
    // phi_{j,2}: (X.. | B..) -> (V | V1).
    Result<EditingRule> r2 =
        EditingRule::Make("z_v1_" + std::to_string(j + 1), r, rm, x, xm,
                          v_attr, mv1, PatternTuple(r));
    assert(r2.ok());
    st = inst.rules.Add(std::move(r2).ValueOrDie());
    // phi_{j,3}: (X.. | B..) -> (V | V0) under the falsifying pattern.
    PatternTuple tp(r);
    for (size_t i = 0; i < 3; ++i) {
      Literal lit = clause[i];
      // The only assignment making the clause false sets each literal
      // false: positive literal -> 0, negative literal -> 1.
      tp.SetConst(x[i], lit > 0 ? V0() : V1());
    }
    Result<EditingRule> r3 =
        EditingRule::Make("z_v0_" + std::to_string(j + 1), r, rm, x, xm,
                          v_attr, mv0, std::move(tp));
    assert(r3.ok());
    st = inst.rules.Add(std::move(r3).ValueOrDie());
    (void)st;
  }
  for (int i = 1; i <= m; ++i) {
    inst.z.push_back(attr("X" + std::to_string(i)));
  }
  return inst;
}

std::vector<size_t> GreedySetCover(const SetCoverInstance& sc) {
  std::vector<size_t> cover;
  std::vector<bool> covered(sc.universe, false);
  size_t remaining = sc.universe;
  while (remaining > 0) {
    size_t best = sc.sets.size();
    size_t best_gain = 0;
    for (size_t s = 0; s < sc.sets.size(); ++s) {
      size_t gain = 0;
      for (size_t x : sc.sets[s]) {
        if (!covered[x]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    if (best == sc.sets.size()) break;  // uncoverable
    cover.push_back(best);
    for (size_t x : sc.sets[best]) {
      if (!covered[x]) {
        covered[x] = true;
        --remaining;
      }
    }
  }
  return cover;
}

size_t MinSetCoverSize(const SetCoverInstance& sc) {
  assert(sc.sets.size() <= 20);
  size_t best = sc.sets.size() + 1;
  size_t total = 1ULL << sc.sets.size();
  for (size_t mask = 0; mask < total; ++mask) {
    std::vector<bool> covered(sc.universe, false);
    size_t count = 0;
    for (size_t s = 0; s < sc.sets.size(); ++s) {
      if ((mask >> s) & 1) {
        ++count;
        for (size_t x : sc.sets[s]) covered[x] = true;
      }
    }
    if (count >= best) continue;
    bool all = true;
    for (bool c : covered) all &= c;
    if (all) best = count;
  }
  return best;
}

ZInstance ReduceSetCoverToZMinimum(const SetCoverInstance& sc) {
  size_t h = sc.sets.size();
  size_t n = sc.universe;
  // R(C1..Ch, X_{1,1}..X_{1,h+1}, ..., X_{n,1}..X_{n,h+1}); Rm(B1, B2).
  assert(h + n * (h + 1) <= AttrSet::kMaxAttrs);
  std::vector<Attribute> r_attrs;
  for (size_t j = 1; j <= h; ++j) {
    r_attrs.push_back({"C" + std::to_string(j), DataType::kInt});
  }
  for (size_t i = 1; i <= n; ++i) {
    for (size_t l = 1; l <= h + 1; ++l) {
      r_attrs.push_back(
          {"X" + std::to_string(i) + "_" + std::to_string(l),
           DataType::kInt});
    }
  }
  SchemaPtr r = Schema::Make("Rsc", r_attrs);
  SchemaPtr rm = Schema::Make(
      "Rmsc", std::vector<Attribute>{{"B1", DataType::kInt},
                                     {"B2", DataType::kInt}});
  ZInstance inst;
  inst.r = r;
  inst.rm = rm;
  inst.dm = Relation(rm);
  Status st = inst.dm.AppendStrings({"1", "1"});
  assert(st.ok());

  auto cattr = [&](size_t j) {
    return static_cast<AttrId>(j - 1);  // C_j is attribute j-1
  };
  auto xattr = [&](size_t i, size_t l) {
    return static_cast<AttrId>(h + (i - 1) * (h + 1) + (l - 1));
  };

  inst.rules = RuleSet(r, rm);
  for (size_t j = 1; j <= h; ++j) {
    const std::vector<size_t>& members = sc.sets[j - 1];
    // For each element x_i in C_j: h+1 rules (C_j | B1) -> (X_{i,l} | B2).
    for (size_t x : members) {
      size_t i = x + 1;
      for (size_t l = 1; l <= h + 1; ++l) {
        Result<EditingRule> rule = EditingRule::Make(
            "sc_c" + std::to_string(j) + "_x" + std::to_string(i) + "_" +
                std::to_string(l),
            r, rm, {cattr(j)}, {0}, xattr(i, l), 1, PatternTuple(r));
        assert(rule.ok());
        st = inst.rules.Add(std::move(rule).ValueOrDie());
      }
    }
    // phi_{j,2}: all copies of C_j's elements -> C_j, pinning C_j as rhs.
    std::vector<AttrId> lhs;
    std::vector<AttrId> lhsm;
    for (size_t x : members) {
      size_t i = x + 1;
      for (size_t l = 1; l <= h + 1; ++l) {
        lhs.push_back(xattr(i, l));
        lhsm.push_back(0);  // B1 repeated (as in the paper's reduction)
      }
    }
    if (lhs.empty()) continue;  // empty set contributes no back rule
    Result<EditingRule> rule = EditingRule::Make(
        "sc_back" + std::to_string(j), r, rm, lhs, lhsm, cattr(j), 1,
        PatternTuple(r));
    assert(rule.ok());
    st = inst.rules.Add(std::move(rule).ValueOrDie());
    (void)st;
  }
  return inst;  // inst.z unused for the minimization problem
}

}  // namespace certfix
