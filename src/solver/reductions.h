/// \file reductions.h
/// \brief The complexity reductions of Sect. 4, implemented as instance
/// generators and used as cross-validating oracles in the test suite.
///
///  * 3SAT -> consistency (proof of Theorem 1): the instance is consistent
///    relative to (Z, Tc) iff the formula is UNsatisfiable.
///  * 3SAT -> Z-validating / Z-counting (proofs of Theorems 6 and 9): a
///    non-empty certain tableau exists iff the formula is satisfiable, and
///    the number of valid pattern tuples equals the model count.
///  * Set cover -> Z-minimum (proof of Theorem 12): a certain region with
///    |Z| <= K exists iff a cover of size K exists.

#ifndef CERTFIX_SOLVER_REDUCTIONS_H_
#define CERTFIX_SOLVER_REDUCTIONS_H_

#include "core/region.h"
#include "relational/relation.h"
#include "rules/rule_set.h"
#include "solver/sat.h"

namespace certfix {

/// \brief A generated consistency-problem instance (Theorem 1 shape).
struct ConsistencyInstance {
  SchemaPtr r;
  SchemaPtr rm;
  Relation dm;
  RuleSet rules;
  Region region;  ///< (Z, Tc) with Z = (A, X1..Xm), tc = (1, _, ..., _)
};

/// Builds the Theorem 1 instance for `formula` (needs m + n + 3 <= 64
/// attributes on R).
ConsistencyInstance Reduce3SatToConsistency(const CnfFormula& formula);

/// \brief A generated Z-problem instance (Theorem 6 shape).
struct ZInstance {
  SchemaPtr r;
  SchemaPtr rm;
  Relation dm;
  RuleSet rules;
  std::vector<AttrId> z;  ///< Z = (X1, ..., Xm)
};

/// Builds the Theorem 6/9 instance for `formula` (m + n + 1 attributes).
ZInstance Reduce3SatToZProblems(const CnfFormula& formula);

/// \brief A set-cover instance: universe {0..universe-1} and subsets.
struct SetCoverInstance {
  size_t universe = 0;
  std::vector<std::vector<size_t>> sets;
};

/// Greedy set-cover (for generating test expectations).
std::vector<size_t> GreedySetCover(const SetCoverInstance& sc);
/// Exact minimum cover size by subset enumeration (|sets| <= 20).
size_t MinSetCoverSize(const SetCoverInstance& sc);

/// Builds the Theorem 12 instance: R has h + n*(h+1) attributes, Rm(B1,B2),
/// Dm = {(1,1)}; a certain region with |Z| <= K exists iff a cover of size
/// <= K exists.
ZInstance ReduceSetCoverToZMinimum(const SetCoverInstance& sc);

}  // namespace certfix

#endif  // CERTFIX_SOLVER_REDUCTIONS_H_
