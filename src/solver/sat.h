/// \file sat.h
/// \brief Small CNF/3SAT toolkit: a DPLL solver and a model counter.
///
/// Used to cross-validate the intractability reductions of Sect. 4: a
/// random 3SAT instance is solved here and, independently, translated into
/// a consistency / Z-counting instance (reductions.h); the two answers
/// must agree (property tests in tests/reductions_test.cc).

#ifndef CERTFIX_SOLVER_SAT_H_
#define CERTFIX_SOLVER_SAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/random.h"

namespace certfix {

/// A literal: +v for variable v, -v for its negation (v >= 1).
using Literal = int;
/// A clause: disjunction of literals.
using Clause = std::vector<Literal>;

/// \brief A CNF formula over variables 1..num_vars.
struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// True iff the assignment (index v-1 holds var v) satisfies the formula.
  bool Satisfied(const std::vector<bool>& assignment) const;

  /// "(x1 v !x2 v x3) ^ ..." rendering.
  std::string ToString() const;
};

/// Uniformly random 3-CNF with exactly three distinct variables per clause.
CnfFormula RandomThreeSat(int num_vars, int num_clauses, Rng* rng);

/// \brief Iterative DPLL with unit propagation and pure-literal rule.
class DpllSolver {
 public:
  /// A satisfying assignment, or nullopt if unsatisfiable.
  std::optional<std::vector<bool>> Solve(const CnfFormula& formula);

  /// Number of satisfying assignments (exhaustive; num_vars <= 24).
  static uint64_t CountModels(const CnfFormula& formula);

 private:
  // Assignment state: -1 unset, 0 false, 1 true.
  bool Dpll(const CnfFormula& formula, std::vector<int>* assign);
  static bool UnitPropagate(const CnfFormula& formula,
                            std::vector<int>* assign, bool* conflict);
};

}  // namespace certfix

#endif  // CERTFIX_SOLVER_SAT_H_
