#include "solver/sat.h"

#include <cassert>
#include <cmath>

namespace certfix {

bool CnfFormula::Satisfied(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses) {
    bool sat = false;
    for (Literal lit : clause) {
      int v = std::abs(lit) - 1;
      bool val = assignment[static_cast<size_t>(v)];
      if ((lit > 0 && val) || (lit < 0 && !val)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out += " ^ ";
    out += "(";
    for (size_t i = 0; i < clauses[c].size(); ++i) {
      if (i > 0) out += " v ";
      Literal lit = clauses[c][i];
      if (lit < 0) out += "!";
      out += "x" + std::to_string(std::abs(lit));
    }
    out += ")";
  }
  return out;
}

CnfFormula RandomThreeSat(int num_vars, int num_clauses, Rng* rng) {
  assert(num_vars >= 3);
  CnfFormula f;
  f.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    // Three distinct variables, random polarity.
    std::vector<int> vars;
    while (vars.size() < 3) {
      int v = static_cast<int>(rng->Uniform(1, num_vars));
      bool dup = false;
      for (int u : vars) dup |= (u == v);
      if (!dup) vars.push_back(v);
    }
    Clause clause;
    for (int v : vars) clause.push_back(rng->Bernoulli(0.5) ? v : -v);
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

bool DpllSolver::UnitPropagate(const CnfFormula& formula,
                               std::vector<int>* assign, bool* conflict) {
  *conflict = false;
  bool changed = false;
  bool fixpoint = false;
  while (!fixpoint) {
    fixpoint = true;
    for (const Clause& clause : formula.clauses) {
      int unassigned = 0;
      Literal unit = 0;
      bool sat = false;
      for (Literal lit : clause) {
        int v = std::abs(lit) - 1;
        int val = (*assign)[static_cast<size_t>(v)];
        if (val < 0) {
          ++unassigned;
          unit = lit;
        } else if ((lit > 0) == (val == 1)) {
          sat = true;
          break;
        }
      }
      if (sat) continue;
      if (unassigned == 0) {
        *conflict = true;
        return changed;
      }
      if (unassigned == 1) {
        (*assign)[static_cast<size_t>(std::abs(unit) - 1)] = unit > 0 ? 1 : 0;
        changed = true;
        fixpoint = false;
      }
    }
  }
  return changed;
}

bool DpllSolver::Dpll(const CnfFormula& formula, std::vector<int>* assign) {
  bool conflict = false;
  std::vector<int> saved = *assign;
  UnitPropagate(formula, assign, &conflict);
  if (conflict) {
    *assign = saved;
    return false;
  }
  // Pick the first unassigned variable.
  int branch = -1;
  for (size_t v = 0; v < assign->size(); ++v) {
    if ((*assign)[v] < 0) {
      branch = static_cast<int>(v);
      break;
    }
  }
  if (branch < 0) return true;  // fully assigned, no conflict
  for (int value : {1, 0}) {
    std::vector<int> child = *assign;
    child[static_cast<size_t>(branch)] = value;
    if (Dpll(formula, &child)) {
      *assign = child;
      return true;
    }
  }
  *assign = saved;
  return false;
}

std::optional<std::vector<bool>> DpllSolver::Solve(
    const CnfFormula& formula) {
  std::vector<int> assign(static_cast<size_t>(formula.num_vars), -1);
  if (!Dpll(formula, &assign)) return std::nullopt;
  std::vector<bool> out(assign.size());
  for (size_t v = 0; v < assign.size(); ++v) {
    out[v] = assign[v] == 1;  // unassigned-after-success means free: false
  }
  assert(formula.Satisfied(out));
  return out;
}

uint64_t DpllSolver::CountModels(const CnfFormula& formula) {
  assert(formula.num_vars <= 24);
  uint64_t count = 0;
  uint64_t total = 1ULL << formula.num_vars;
  std::vector<bool> assign(static_cast<size_t>(formula.num_vars));
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int v = 0; v < formula.num_vars; ++v) {
      assign[static_cast<size_t>(v)] = (mask >> v) & 1;
    }
    if (formula.Satisfied(assign)) ++count;
  }
  return count;
}

}  // namespace certfix
