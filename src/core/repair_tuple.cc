#include "core/repair_tuple.h"

namespace certfix {

TupleRepair RepairOneTuple(const Saturator& sat, const Tuple& row,
                           AttrSet trusted, AttrSet all,
                           PoolBridge* bridge, ProbeLog* probes) {
  SaturationResult fix = sat.CheckUniqueFix(row, trusted, bridge, probes);
  TupleRepair out;
  if (!fix.unique) {
    // No copy of the input here: a conflicting tuple is left unchanged,
    // and every caller still holds `row`.
    out.report.kind = FixClass::kConflicting;
    out.report.covered = trusted;
    return out;
  }
  out.report.cells_changed = row.DiffCount(fix.fixed);
  out.report.covered = fix.covered;
  if (fix.covered == all) {
    out.report.kind = FixClass::kFullyCovered;
  } else if (fix.covered != trusted) {
    out.report.kind = FixClass::kPartial;
  } else {
    out.report.kind = FixClass::kUntouched;
  }
  out.fixed = std::move(fix.fixed);
  return out;
}

}  // namespace certfix
