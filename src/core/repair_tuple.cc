#include "core/repair_tuple.h"

#include "core/repair_memo.h"
#include "telemetry/metrics.h"

namespace certfix {

TupleRepair RepairOneTuple(const Saturator& sat, const Tuple& row,
                           AttrSet trusted, AttrSet all,
                           PoolBridge* bridge, ProbeLog* probes,
                           RepairMemo* memo) {
  // Per-tuple latency across every engine, memo-hit path included.
  telemetry::ScopedLatency latency(CERTFIX_TL_HISTOGRAM("repair_tuple_ns"));
  if (memo != nullptr) {
    if (const RepairMemo::Entry* entry = memo->Find(row)) {
      if (probes != nullptr) {
        probes->hashes.insert(probes->hashes.end(), entry->probes.begin(),
                              entry->probes.end());
      }
      return memo->Replay(*entry, row);
    }
  }
  // A memoized repair must carry its probe set even when the caller
  // doesn't track probes, so invalidation by probe hash stays possible.
  ProbeLog local_probes;
  ProbeLog* plog = probes;
  if (plog == nullptr && memo != nullptr) plog = &local_probes;

  SaturationResult fix = sat.CheckUniqueFix(row, trusted, bridge, plog);
  TupleRepair out;
  if (!fix.unique) {
    // No copy of the input here: a conflicting tuple is left unchanged,
    // and every caller still holds `row`.
    out.report.kind = FixClass::kConflicting;
    out.report.covered = trusted;
    if (memo != nullptr) memo->Insert(row, out, plog);
    return out;
  }
  out.report.cells_changed = row.DiffCount(fix.fixed);
  out.report.covered = fix.covered;
  if (fix.covered == all) {
    out.report.kind = FixClass::kFullyCovered;
  } else if (fix.covered != trusted) {
    out.report.kind = FixClass::kPartial;
  } else {
    out.report.kind = FixClass::kUntouched;
  }
  out.fixed = std::move(fix.fixed);
  if (memo != nullptr) memo->Insert(row, out, plog);
  return out;
}

}  // namespace certfix
