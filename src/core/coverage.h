/// \file coverage.h
/// \brief The coverage problem (Sect. 4.1): is (Z, Tc) a certain region for
/// (Sigma, Dm), i.e. does every marked tuple get a certain fix?

#ifndef CERTFIX_CORE_COVERAGE_H_
#define CERTFIX_CORE_COVERAGE_H_

#include "core/consistency.h"

namespace certfix {

/// \brief Certain-region decision: consistency plus full attribute
/// coverage (Theorem 2 / Theorem 4 (III)).
class CoverageChecker {
 public:
  explicit CoverageChecker(const Saturator& sat) : checker_(sat) {}

  /// True iff (Z, Tc) is a certain region for (Sigma, Dm).
  Result<bool> IsCertainRegion(const Region& region,
                               size_t max_instances = 100000) const;

  /// Per-row report: consistency, coverage, and missed attributes.
  Result<ConsistencyReport> CheckRow(const Region& region,
                                     const PatternTuple& row,
                                     size_t max_instances = 100000) const {
    return checker_.CheckRow(region, row, max_instances);
  }

 private:
  ConsistencyChecker checker_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_COVERAGE_H_
