#include "core/region.h"

namespace certfix {

Status Region::AddRow(PatternTuple row) {
  if (!row.attrs().SubsetOf(z_set_)) {
    return Status::InvalidArgument(
        "pattern row constrains attributes outside Z");
  }
  // Pad attributes of Z missing from the row with explicit wildcards so a
  // row always mentions exactly Z.
  for (AttrId a : z_) {
    if (!row.Has(a)) row.SetWildcard(a);
  }
  tc_.Add(std::move(row));
  return Status::OK();
}

Region Region::Extend(const EditingRule& rule) const {
  if (z_set_.Contains(rule.rhs())) return *this;
  std::vector<AttrId> z2 = z_;
  z2.push_back(rule.rhs());
  Tableau tc2(tc_.schema());
  for (const PatternTuple& row : tc_.rows()) {
    PatternTuple r2 = row;
    r2.SetWildcard(rule.rhs());
    tc2.Add(std::move(r2));
  }
  return Region(std::move(z2), std::move(tc2));
}

std::string Region::ToString() const {
  std::string out = "Z = {";
  const SchemaPtr& schema = tc_.schema();
  for (size_t i = 0; i < z_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema ? schema->attr_name(z_[i]) : std::to_string(z_[i]);
  }
  out += "}, Tc = " + tc_.ToString();
  return out;
}

}  // namespace certfix
