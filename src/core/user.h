/// \file user.h
/// \brief User oracles for the interactive framework (Sect. 5/6).

#ifndef CERTFIX_CORE_USER_H_
#define CERTFIX_CORE_USER_H_

#include "relational/attr_set.h"
#include "relational/tuple.h"

namespace certfix {

/// \brief The user side of the CertainFix interaction (Fig. 2): given a
/// suggested attribute set, the user asserts some attributes correct —
/// supplying their correct values where the entered ones were wrong.
class UserOracle {
 public:
  virtual ~UserOracle() = default;

  /// `suggested` is the engine's recommendation; `validated` the already
  /// assured attributes. The oracle writes correct values into *t for the
  /// attributes it asserts and returns that set (possibly != suggested).
  virtual AttrSet Assert(const AttrSet& suggested, const AttrSet& validated,
                         Tuple* t) = 0;
};

/// \brief Simulated user holding the ground-truth tuple; asserts exactly
/// the suggested attributes with their true values (the paper's Sect. 6
/// simulation: "user feedback was simulated by providing the correct
/// values of the given suggestions").
class GroundTruthUser : public UserOracle {
 public:
  explicit GroundTruthUser(Tuple truth) : truth_(std::move(truth)) {}

  AttrSet Assert(const AttrSet& suggested, const AttrSet& validated,
                 Tuple* t) override {
    AttrSet asserted = suggested.Minus(validated);
    for (AttrId a : asserted.ToVector()) t->Set(a, truth_.at(a));
    return asserted;
  }

  const Tuple& truth() const { return truth_; }

 private:
  Tuple truth_;
};

/// \brief A more cautious simulated user who asserts at most `cap`
/// attributes per round (stress-tests multi-round convergence).
class ReluctantUser : public UserOracle {
 public:
  ReluctantUser(Tuple truth, size_t cap) : truth_(std::move(truth)), cap_(cap) {}

  AttrSet Assert(const AttrSet& suggested, const AttrSet& validated,
                 Tuple* t) override {
    AttrSet asserted;
    size_t n = 0;
    for (AttrId a : suggested.Minus(validated).ToVector()) {
      if (n++ >= cap_) break;
      t->Set(a, truth_.at(a));
      asserted.Add(a);
    }
    return asserted;
  }

 private:
  Tuple truth_;
  size_t cap_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_USER_H_
