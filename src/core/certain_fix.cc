#include "core/certain_fix.h"

namespace certfix {

CertainFixEngine::CertainFixEngine(RuleSet rules, const Relation& dm,
                                   CertainFixOptions options)
    : rules_(std::move(rules)), dm_(&dm), options_(options) {
  index_ = std::make_unique<MasterIndex>(rules_, *dm_);
  graph_ = std::make_unique<DependencyGraph>(rules_);
  sat_ = std::make_unique<Saturator>(rules_, *dm_, *index_);
  transfix_ = std::make_unique<TransFix>(rules_, *dm_, *graph_, *index_);
  suggester_ = std::make_unique<Suggester>(rules_, *dm_, index_.get());

  RegionFinder finder(*sat_);
  regions_ = finder.ComputeCertainRegions(options_.region);
  if (regions_.empty()) {
    // Degenerate fallback: the all-attribute region is trivially certain.
    const SchemaPtr& schema = rules_.r_schema();
    Region all = Region::Of(schema, schema->AllAttrs().ToVector());
    PatternTuple row(schema);
    Status st = all.AddRow(row);
    (void)st;
    regions_.push_back(RankedRegion{std::move(all), 0.0});
  }
}

FixOutcome CertainFixEngine::Fix(const Tuple& input, UserOracle* user) {
  FixOutcome outcome;
  outcome.fixed = input;
  AttrSet all = rules_.r_schema()->AllAttrs();

  // Line 1: the first suggestion is the Z of a precomputed certain region.
  AttrSet suggestion =
      initial_region(initial_pick_).region.z_set();
  // Line 2: Z' starts empty.
  AttrSet validated;
  SuggestionCache::Cursor cursor = cache_.Root();

  for (size_t round = 0; round < options_.max_rounds; ++round) {
    RoundRecord record;
    record.suggested = suggestion;

    // Lines 4-5: the user asserts a set S of attributes (with values).
    AttrSet asserted = user->Assert(suggestion, validated, &outcome.fixed);
    record.asserted = asserted;
    outcome.user_asserted = outcome.user_asserted.Union(asserted);

    Timer timer;
    // Line 6: validate — does t[Z' + S] lead to a unique fix?
    AttrSet base = validated.Union(asserted);
    SaturationResult check = sat_->CheckUniqueFix(outcome.fixed, base);
    if (!check.unique) {
      // Conflict: with a truthful oracle this indicates inconsistency of
      // (Sigma, Dm) w.r.t. the asserted region; surface it.
      outcome.conflict = true;
      record.seconds = timer.Seconds();
      record.after = outcome.fixed;
      record.auto_changed = outcome.auto_fixed;
      outcome.rounds.push_back(record);
      break;
    }

    // Line 7: TransFix extends Z' with the entailed fixes.
    TransFixResult fixed = transfix_->Run(outcome.fixed, base);
    record.auto_fixed = fixed.steps.size();
    for (const FixMove& step : fixed.steps) {
      outcome.auto_fixed.Add(step.attr);
    }
    outcome.fixed = std::move(fixed.tuple);
    validated = fixed.validated;

    // Line 8: done when Z' covers R.
    if (validated == all) {
      outcome.completed = true;
      record.seconds = timer.Seconds();
      record.after = outcome.fixed;
      record.auto_changed = outcome.auto_fixed;
      outcome.rounds.push_back(record);
      break;
    }

    // Line 9: compute the next suggestion (Suggest or cached Suggest+).
    // Zero automatic progress on a non-trivial assertion means the tuple
    // is beyond the reach of (Sigma, Dm) — e.g. it matches no master
    // tuple. Further master-guided suggestions would peel one dependency
    // layer per round without any rule ever firing, so ask the user for
    // everything remaining instead (the trivial region (R, {t}) is always
    // certain).
    if (record.auto_fixed == 0 && !asserted.Empty()) {
      suggestion = all.Minus(validated);
      record.seconds = timer.Seconds();
      record.after = outcome.fixed;
      record.auto_changed = outcome.auto_fixed;
      outcome.rounds.push_back(record);
      continue;
    }
    if (options_.use_cache) {
      auto still_valid = [&](const AttrSet& s) {
        return suggester_->IsSuggestion(outcome.fixed, validated, s);
      };
      std::optional<AttrSet> hit = cache_.Lookup(&cursor, still_valid);
      if (hit.has_value()) {
        suggestion = hit->Minus(validated);
        record.cache_hit = true;
      } else {
        AttrSet s = suggester_->Suggest(outcome.fixed, validated);
        cache_.Insert(&cursor, s);
        suggestion = s;
      }
    } else {
      suggestion = suggester_->Suggest(outcome.fixed, validated);
    }
    if (suggestion.Empty()) suggestion = all.Minus(validated);
    record.seconds = timer.Seconds();
    record.after = outcome.fixed;
    record.auto_changed = outcome.auto_fixed;
    outcome.rounds.push_back(record);
  }
  outcome.validated = validated;
  return outcome;
}

}  // namespace certfix
