/// \file suggestion_cache.h
/// \brief BDD-style cache of previously computed suggestions, enabling
/// Suggest+ / CertainFix+ (Sect. 5.2, Figs. 7-8).
///
/// The cache is a DAG of nodes, each holding one suggestion S. A *level*
/// is a false-branch chain: checking resumes at the level head; a node
/// whose suggestion still applies is a hit (the true branch leads to the
/// next level); exhausting the chain is a miss, and the newly computed
/// suggestion is appended to the chain.

#ifndef CERTFIX_CORE_SUGGESTION_CACHE_H_
#define CERTFIX_CORE_SUGGESTION_CACHE_H_

#include <functional>
#include <optional>

#include "relational/attr_set.h"

namespace certfix {

/// \brief The suggestion DAG.
class SuggestionCache {
 public:
  /// A cursor identifies a level: the root level (parent == -1) or the
  /// true-branch level of a node.
  struct Cursor {
    int parent = -1;
  };

  /// Cache hit/miss counters.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t checks = 0;  ///< node predicate evaluations performed
  };

  Cursor Root() const { return Cursor{-1}; }

  /// Walks the cursor's level; the first node whose suggestion satisfies
  /// `still_valid` is a hit: the cursor advances to its true branch and the
  /// suggestion is returned. Otherwise nullopt (cursor unchanged).
  std::optional<AttrSet> Lookup(
      Cursor* cursor, const std::function<bool(const AttrSet&)>& still_valid);

  /// Appends a freshly computed suggestion to the cursor's level and
  /// advances the cursor to the new node's true branch.
  void Insert(Cursor* cursor, AttrSet suggestion);

  size_t num_nodes() const { return nodes_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Drops all nodes (e.g. after Sigma or Dm changes).
  void Clear();

 private:
  struct Node {
    AttrSet suggestion;
    int true_head = -1;   ///< head of the next level on hit
    int false_next = -1;  ///< next node in this level's chain
  };

  // Slot holding the head index of the cursor's level.
  int* HeadSlot(const Cursor& cursor);

  std::vector<Node> nodes_;
  int root_head_ = -1;
  Stats stats_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_SUGGESTION_CACHE_H_
