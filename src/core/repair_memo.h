/// \file repair_memo.h
/// \brief Per-shard memoization of whole-tuple repair outcomes.
///
/// RepairOneTuple is a deterministic function of (Sigma, Dm, Z, t's
/// values on the rule-relevant attributes): the premise checks read
/// t[lhs], pattern matching reads the pattern attributes, proposals land
/// on rhs attributes (whose values then feed later rounds through those
/// same sets), and the final DiffCount can only differ on rhs attributes.
/// Every attribute outside that union is inert. So two tuples whose
/// projections on the relevant set are byte-identical repair identically
/// — and the skewed streams the scenario corpus models (zipf-skew,
/// hotset-shift, duplicate_rate) replay the same dirty patterns over and
/// over. RepairMemo caches the outcome keyed by that projection and
/// replays it for the price of a hash probe.
///
/// Keys are the *local pool's* ValueIds (pool interning makes id
/// equality value equality within one pool), so a memo is only valid for
/// rows backed by one pool and must be Clear()ed whenever its owner
/// recycles that pool.
///
/// Invalidation: each entry stores the ProbeLog hashes its repair
/// recorded. The delta engine flushes entries by probe hash when a
/// master delta touches the corresponding key (the same machinery that
/// re-repairs slots, fix_state.h) — collisions over-flush, never
/// under-flush. Engines running against an immutable master (batch,
/// stream) never flush.
///
/// Thread safety: none. One RepairMemo per shard worker, by design.

#ifndef CERTFIX_CORE_REPAIR_MEMO_H_
#define CERTFIX_CORE_REPAIR_MEMO_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fix_state.h"
#include "core/repair_tuple.h"
#include "relational/flat_key_index.h"
#include "rules/rule_set.h"

namespace certfix {

class RepairMemo {
 public:
  /// One memoized outcome: the report, the cells the fix changed (attr,
  /// value — values are plain, so replay works across pool generations
  /// of the target row), and the recorded master-probe dependency set.
  struct Entry {
    FixReport report;
    std::vector<std::pair<AttrId, Value>> changed;
    std::vector<uint64_t> probes;  ///< sorted, deduplicated
    IdKey key;                     ///< for table erase on flush
  };

  /// `trusted` is the Z every memoized repair ran under; `rules` defines
  /// the relevant attribute set.
  RepairMemo(const RuleSet& rules, AttrSet trusted);

  /// The cached entry for `row`'s relevant projection, or nullptr.
  /// Counts a hit or a miss.
  const Entry* Find(const Tuple& row);

  /// Prefetches the table bucket `row` will probe (stage half of the
  /// batched pipeline).
  void Prefetch(const Tuple& row) const;

  /// Records the outcome of repairing `row`. `probes`, when given, is
  /// the repair's ProbeLog (required for probe-hash invalidation; pass
  /// null only when the master is immutable for the memo's lifetime).
  void Insert(const Tuple& row, const TupleRepair& repair,
              const ProbeLog* probes);

  /// Rebuilds `repair` for `row` from a cached entry.
  TupleRepair Replay(const Entry& entry, const Tuple& row) const;

  /// Drops every entry whose recorded probes intersect `hashes`.
  void FlushProbes(const std::vector<uint64_t>& hashes);

  /// Drops everything (pool recycle, missed invalidation window).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t flushed() const { return flushed_; }
  size_t entries() const { return live_entries_; }
  const std::vector<AttrId>& relevant_attrs() const { return relevant_; }

 private:
  void ProjectKey(const Tuple& row, IdKey* out) const;
  void EraseEntry(uint32_t slot);

  // Entries self-limit: past kMaxEntries the memo clears wholesale
  // (deterministic, and cheap next to the repairs it saved).
  static constexpr size_t kMaxEntries = 1u << 16;

  std::vector<AttrId> relevant_;
  AttrSet trusted_;
  FlatIdTable table_;            ///< relevant projection -> entries_ slot
  std::vector<Entry> entries_;   ///< slot-addressed; free slots recycled
  std::vector<uint32_t> free_slots_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> probe_to_entries_;
  size_t live_entries_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t flushed_ = 0;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_REPAIR_MEMO_H_
