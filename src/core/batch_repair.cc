#include "core/batch_repair.h"

namespace certfix {

BatchRepairResult BatchRepair::Repair(const Relation& data,
                                      AttrSet trusted) const {
  BatchRepairResult result;
  result.repaired = data;
  AttrSet all = sat_->rules().r_schema()->AllAttrs();
  for (size_t i = 0; i < data.size(); ++i) {
    SaturationResult fix = sat_->CheckUniqueFix(data.at(i), trusted);
    if (!fix.unique) {
      ++result.tuples_conflicting;
      result.conflict_rows.push_back(i);
      continue;
    }
    size_t changed = data.at(i).DiffCount(fix.fixed);
    result.cells_changed += changed;
    if (fix.covered == all) {
      ++result.tuples_fully_covered;
    } else if (fix.covered != trusted) {
      ++result.tuples_partial;
    } else {
      ++result.tuples_untouched;
    }
    result.repaired.at(i) = std::move(fix.fixed);
  }
  return result;
}

}  // namespace certfix
