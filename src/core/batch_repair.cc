#include "core/batch_repair.h"

#include "util/thread_pool.h"

namespace certfix {

void BatchRepair::RepairRange(const Relation& data, AttrSet trusted,
                              AttrSet all, size_t begin, size_t end,
                              Relation* repaired,
                              ShardCounters* counters) const {
  for (size_t i = begin; i < end; ++i) {
    SaturationResult fix = sat_->CheckUniqueFix(data.at(i), trusted);
    if (!fix.unique) {
      ++counters->conflicting;
      counters->conflict_rows.push_back(i);
      continue;
    }
    counters->cells_changed += data.at(i).DiffCount(fix.fixed);
    if (fix.covered == all) {
      ++counters->fully_covered;
    } else if (fix.covered != trusted) {
      ++counters->partial;
    } else {
      ++counters->untouched;
    }
    repaired->at(i) = std::move(fix.fixed);
  }
}

BatchRepairResult BatchRepair::Repair(const Relation& data,
                                      AttrSet trusted) const {
  BatchRepairResult result;
  result.repaired = data;
  AttrSet all = sat_->rules().r_schema()->AllAttrs();

  size_t threads = options_.num_threads == 0 ? DefaultParallelism()
                                             : options_.num_threads;
  if (threads <= 1) {
    // Sequential reference path: the original tuple-at-a-time loop.
    ShardCounters counters;
    RepairRange(data, trusted, all, 0, data.size(), &result.repaired,
                &counters);
    result.tuples_fully_covered = counters.fully_covered;
    result.tuples_partial = counters.partial;
    result.tuples_untouched = counters.untouched;
    result.tuples_conflicting = counters.conflicting;
    result.cells_changed = counters.cells_changed;
    result.conflict_rows = std::move(counters.conflict_rows);
    return result;
  }

  // Partition -> repair-shard -> deterministic merge. Shards are
  // contiguous row ranges; workers write disjoint rows of `repaired` and
  // their own counter slot, so no synchronization beyond the pool's own
  // is needed. Merging in shard order makes counters and conflict_rows
  // independent of scheduling.
  size_t n = data.size();
  std::vector<ShardCounters> shards(
      NumChunks(n, threads, options_.chunk_size));
  ParallelFor(n, threads, options_.chunk_size,
              [&](size_t chunk, size_t begin, size_t end) {
                RepairRange(data, trusted, all, begin, end, &result.repaired,
                            &shards[chunk]);
              });
  for (const ShardCounters& s : shards) {
    result.tuples_fully_covered += s.fully_covered;
    result.tuples_partial += s.partial;
    result.tuples_untouched += s.untouched;
    result.tuples_conflicting += s.conflicting;
    result.cells_changed += s.cells_changed;
    result.conflict_rows.insert(result.conflict_rows.end(),
                                s.conflict_rows.begin(),
                                s.conflict_rows.end());
  }
  return result;
}

}  // namespace certfix
