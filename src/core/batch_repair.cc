#include "core/batch_repair.h"

#include <memory>

#include "analysis/analyzer.h"
#include "core/repair_memo.h"
#include "core/repair_tuple.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

namespace certfix {

namespace {
/// Rows staged per probe block: enough independent probes in flight to
/// cover DRAM latency, small enough to stay within L1 and the prefetch
/// queues.
constexpr size_t kProbeBlock = 32;
}  // namespace

void BatchRepair::RepairRange(const Relation& data, AttrSet trusted,
                              AttrSet all, size_t begin, size_t end,
                              const PoolPtr& local_pool,
                              ShardResult* out) const {
  CERTFIX_SPAN("batch.shard_repair");
  // One bridge for the whole range: every row's cells live in the same
  // pool (the shard-local one, or the input's on the sequential path), so
  // each distinct value is hashed into master-pool id space once.
  const PoolPtr& probe_pool = local_pool != nullptr ? local_pool : data.pool();
  PoolBridge bridge(probe_pool.get(), sat_->index().pool().get());
  std::unique_ptr<RepairMemo> memo;
  if (options_.use_memo) {
    memo = std::make_unique<RepairMemo>(sat_->rules(), trusted);
  }
  const std::vector<size_t> first_round = sat_->FirstRoundProbeRules(trusted);
  std::vector<Tuple> rows;
  rows.reserve(kProbeBlock);
  for (size_t base = begin; base < end; base += kProbeBlock) {
    const size_t n = std::min(kProbeBlock, end - base);
    rows.clear();
    // Stage: materialize the block's rows and push their memo buckets and
    // round-1 value-summary buckets into the cache...
    for (size_t j = 0; j < n; ++j) {
      Tuple row = local_pool != nullptr
                      ? data.at(base + j).RebasedTo(local_pool)
                      : data.at(base + j);
      if (memo != nullptr) memo->Prefetch(row);
      sat_->index().PrefetchRhsProbes(row, first_round, &bridge);
      rows.push_back(std::move(row));
    }
    // ...then resolve: repair in row order while the lines are in flight.
    for (size_t j = 0; j < n; ++j) {
      const size_t i = base + j;
      TupleRepair r = RepairOneTuple(*sat_, rows[j], trusted, all, &bridge,
                                     nullptr, memo.get());
      switch (r.report.kind) {
        case FixClass::kConflicting:
          ++out->conflicting;
          out->conflict_rows.push_back(i);
          continue;
        case FixClass::kFullyCovered:
          ++out->fully_covered;
          break;
        case FixClass::kPartial:
          ++out->partial;
          break;
        case FixClass::kUntouched:
          ++out->untouched;
          break;
      }
      out->cells_changed += r.report.cells_changed;
      if (r.report.cells_changed > 0) {
        out->changed.emplace_back(i, std::move(r.fixed));
      }
    }
  }
  if (memo != nullptr) {
    out->memo_hits = memo->hits();
    out->memo_misses = memo->misses();
  }
}

BatchRepairResult BatchRepair::Repair(const Relation& data,
                                      AttrSet trusted) const {
  BatchRepairResult result;
  result.repaired = data;
  AttrSet all = sat_->rules().r_schema()->AllAttrs();

  size_t threads = options_.num_threads == 0 ? DefaultParallelism()
                                             : options_.num_threads;
  std::vector<ShardResult> shards;
  if (threads <= 1) {
    // Sequential reference path: the original tuple-at-a-time loop, no
    // rebasing (rows keep interning into the shared input pool).
    shards.resize(1);
    RepairRange(data, trusted, all, 0, data.size(), nullptr, &shards[0]);
  } else {
    // Partition -> repair-shard -> deterministic merge. Shards are
    // contiguous row ranges; each worker interns into its own local pool
    // and fills its own ShardResult slot, so no pool is written
    // concurrently. Merging in shard order makes the output, counters,
    // and conflict_rows independent of scheduling.
    shards.resize(NumChunks(data.size(), threads, options_.chunk_size));
    ParallelFor(data.size(), threads, options_.chunk_size,
                [&](size_t chunk, size_t begin, size_t end) {
                  PoolPtr local = std::make_shared<ValuePool>();
                  RepairRange(data, trusted, all, begin, end, local,
                              &shards[chunk]);
                });
  }
  CERTFIX_SPAN("batch.merge");
  for (ShardResult& s : shards) {
    result.tuples_fully_covered += s.fully_covered;
    result.tuples_partial += s.partial;
    result.tuples_untouched += s.untouched;
    result.tuples_conflicting += s.conflicting;
    result.cells_changed += s.cells_changed;
    result.memo_hits += s.memo_hits;
    result.memo_misses += s.memo_misses;
    result.conflict_rows.insert(result.conflict_rows.end(),
                                s.conflict_rows.begin(),
                                s.conflict_rows.end());
    // SetRow re-interns only cells that differ, so shard-local ids merge
    // into the output pool at cost proportional to the repair size.
    for (const auto& [row, fixed] : s.changed) {
      result.repaired.SetRow(row, fixed);
    }
  }
  // Fold run totals into the registry so `--metrics-json` mirrors the
  // result struct without threading a handle through the shard workers.
  telemetry::Registry* reg = telemetry::Registry::Global();
  reg->GetCounter("batch.rows")->Add(data.size());
  reg->GetCounter("batch.fully_covered")->Add(result.tuples_fully_covered);
  reg->GetCounter("batch.partial")->Add(result.tuples_partial);
  reg->GetCounter("batch.untouched")->Add(result.tuples_untouched);
  reg->GetCounter("batch.conflicting")->Add(result.tuples_conflicting);
  reg->GetCounter("batch.cells_changed")->Add(result.cells_changed);
  reg->GetCounter("batch.memo_hits")->Add(result.memo_hits);
  reg->GetCounter("batch.memo_misses")->Add(result.memo_misses);
  return result;
}

Result<BatchRepairResult> BatchRepair::RepairChecked(const Relation& data,
                                                     AttrSet trusted) const {
  CERTFIX_RETURN_IF_ERROR(
      GateRuleset(*sat_, trusted, options_.analyze_first, "BatchRepair"));
  return Repair(data, trusted);
}

}  // namespace certfix
