#include "core/zproblems.h"

#include <algorithm>
#include <functional>

namespace certfix {

AttrSet ZProblems::Closure(AttrSet z) const {
  const RuleSet& rules = sat_->rules();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EditingRule& rule : rules) {
      if (z.Contains(rule.rhs())) continue;
      if (rule.premise_set().SubsetOf(z)) {
        z.Add(rule.rhs());
        changed = true;
      }
    }
  }
  return z;
}

AttrSet ZProblems::ForcedAttrs() const {
  const RuleSet& rules = sat_->rules();
  AttrSet all = rules.r_schema()->AllAttrs();
  AttrSet mentioned = rules.MentionedAttrs();
  AttrSet rhs = rules.RhsUnion();
  // Attributes no rule can ever fix must be validated by the user.
  return all.Minus(mentioned).Union(all.Intersect(mentioned).Minus(rhs));
}

Status ZProblems::ForEachCandidate(
    const std::vector<AttrId>& z, const ZOptions& opts,
    const std::function<bool(const PatternTuple&)>& fn) const {
  const RuleSet& rules = sat_->rules();
  const SchemaPtr& schema = rules.r_schema();
  AttrSet mentioned = rules.MentionedAttrs();
  std::set<Value> dom = ActiveDomain(rules, sat_->master());

  // Cell alternatives per Z attribute: wildcard for unmentioned attributes
  // (normalization (1) of Sect. 4.2); constants from dom plus one fresh
  // "variable" value, optionally negated, for mentioned ones (Prop 8).
  std::vector<AttrId> enum_attrs;
  std::vector<std::vector<PatternValue>> alts;
  size_t total = 1;
  size_t fresh_ordinal = 0;
  for (AttrId a : z) {
    if (!mentioned.Contains(a)) continue;  // stays wildcard
    std::vector<PatternValue> cell;
    for (const Value& v : dom) {
      cell.push_back(PatternValue::Const(v));
      if (opts.use_negations) cell.push_back(PatternValue::NegConst(v));
    }
    Value fresh = FreshValue(schema->attr_type(a), fresh_ordinal++, dom);
    cell.push_back(PatternValue::Const(fresh));
    if (cell.empty()) cell.push_back(PatternValue::Wildcard());
    if (total > opts.max_patterns / cell.size() + 1) {
      return Status::OutOfRange("Z-problem enumeration exceeds budget of " +
                                std::to_string(opts.max_patterns));
    }
    total *= cell.size();
    enum_attrs.push_back(a);
    alts.push_back(std::move(cell));
  }
  if (total > opts.max_patterns) {
    return Status::OutOfRange("Z-problem enumeration exceeds budget of " +
                              std::to_string(opts.max_patterns));
  }

  std::vector<size_t> pos(enum_attrs.size(), 0);
  while (true) {
    PatternTuple tc(schema);
    for (AttrId a : z) tc.SetWildcard(a);
    for (size_t i = 0; i < enum_attrs.size(); ++i) {
      tc.Set(enum_attrs[i], alts[i][pos[i]]);
    }
    if (!fn(tc)) return Status::OK();
    size_t i = 0;
    for (; i < pos.size(); ++i) {
      if (++pos[i] < alts[i].size()) break;
      pos[i] = 0;
    }
    if (i == pos.size()) break;
    if (pos.empty()) break;
  }
  return Status::OK();
}

Result<std::optional<PatternTuple>> ZProblems::Validate(
    const std::vector<AttrId>& z, const ZOptions& opts) const {
  // Quick necessary condition: the schema-level closure must cover R.
  if (Closure(AttrSet::FromVector(z)) !=
      sat_->rules().r_schema()->AllAttrs()) {
    return std::optional<PatternTuple>();
  }
  CoverageChecker coverage(*sat_);
  std::optional<PatternTuple> found;
  Status pending = Status::OK();
  Status st = ForEachCandidate(z, opts, [&](const PatternTuple& tc) {
    Region region = Region::Of(sat_->rules().r_schema(), z);
    Status add = region.AddRow(tc);
    if (!add.ok()) return true;  // skip malformed candidate
    Result<bool> ok = coverage.IsCertainRegion(region, opts.max_instances);
    if (!ok.ok()) {
      pending = ok.status();
      return false;
    }
    if (*ok) {
      found = tc;
      return false;
    }
    return true;
  });
  CERTFIX_RETURN_NOT_OK(st);
  CERTFIX_RETURN_NOT_OK(pending);
  return found;
}

Result<size_t> ZProblems::Count(const std::vector<AttrId>& z,
                                const ZOptions& opts) const {
  if (Closure(AttrSet::FromVector(z)) !=
      sat_->rules().r_schema()->AllAttrs()) {
    return static_cast<size_t>(0);
  }
  CoverageChecker coverage(*sat_);
  size_t count = 0;
  Status pending = Status::OK();
  Status st = ForEachCandidate(z, opts, [&](const PatternTuple& tc) {
    Region region = Region::Of(sat_->rules().r_schema(), z);
    Status add = region.AddRow(tc);
    if (!add.ok()) return true;
    Result<bool> ok = coverage.IsCertainRegion(region, opts.max_instances);
    if (!ok.ok()) {
      pending = ok.status();
      return false;
    }
    if (*ok) ++count;
    return true;
  });
  CERTFIX_RETURN_NOT_OK(st);
  CERTFIX_RETURN_NOT_OK(pending);
  return count;
}

Result<std::optional<std::vector<AttrId>>> ZProblems::MinimumExact(
    size_t k, const ZOptions& opts) const {
  const SchemaPtr& schema = sat_->rules().r_schema();
  AttrSet forced = ForcedAttrs();
  AttrSet optional_set = schema->AllAttrs().Minus(forced);
  std::vector<AttrId> optional = optional_set.ToVector();
  size_t base = static_cast<size_t>(forced.Count());
  if (base > k) return std::optional<std::vector<AttrId>>();
  if (optional.size() > 20) {
    return Status::OutOfRange("too many optional attributes for exact search");
  }
  // Enumerate optional subsets by increasing size.
  for (size_t extra = 0; base + extra <= k && extra <= optional.size();
       ++extra) {
    std::vector<bool> mask(optional.size(), false);
    std::fill(mask.end() - static_cast<long>(extra), mask.end(), true);
    do {
      std::vector<AttrId> z = forced.ToVector();
      for (size_t i = 0; i < optional.size(); ++i) {
        if (mask[i]) z.push_back(optional[i]);
      }
      std::sort(z.begin(), z.end());
      CERTFIX_ASSIGN_OR_RETURN(std::optional<PatternTuple> tc,
                               Validate(z, opts));
      if (tc.has_value()) return std::optional<std::vector<AttrId>>(z);
    } while (std::next_permutation(mask.begin(), mask.end()));
  }
  return std::optional<std::vector<AttrId>>();
}

std::vector<AttrId> ZProblems::MinimumGreedy() const {
  const SchemaPtr& schema = sat_->rules().r_schema();
  AttrSet all = schema->AllAttrs();
  AttrSet z = ForcedAttrs();
  // Greedy: add the attribute whose addition grows the closure most.
  while (Closure(z) != all) {
    AttrId best = AttrSet::kMaxAttrs;
    int best_gain = -1;
    for (AttrId a = 0; a < schema->num_attrs(); ++a) {
      if (z.Contains(a)) continue;
      AttrSet z2 = z;
      z2.Add(a);
      int gain = Closure(z2).Count();
      if (gain > best_gain) {
        best_gain = gain;
        best = a;
      }
    }
    if (best == AttrSet::kMaxAttrs) break;
    z.Add(best);
  }
  // Local minimization: drop redundant attributes (keep forced ones).
  AttrSet forced = ForcedAttrs();
  for (AttrId a : z.ToVector()) {
    if (forced.Contains(a)) continue;
    AttrSet z2 = z;
    z2.Remove(a);
    if (Closure(z2) == all) z = z2;
  }
  return z.ToVector();
}

}  // namespace certfix
