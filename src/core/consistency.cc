#include "core/consistency.h"

namespace certfix {

Result<bool> ConsistencyChecker::IsConsistent(const Region& region,
                                              size_t max_instances) const {
  for (const PatternTuple& row : region.tableau().rows()) {
    CERTFIX_ASSIGN_OR_RETURN(ConsistencyReport rep,
                             CheckRow(region, row, max_instances));
    if (!rep.consistent) return false;
  }
  return true;
}

Result<ConsistencyReport> ConsistencyChecker::CheckRow(
    const Region& region, const PatternTuple& row,
    size_t max_instances) const {
  ConsistencyReport report;
  CERTFIX_ASSIGN_OR_RETURN(
      std::vector<Tuple> probes,
      InstantiateRow(sat_->rules(), sat_->master(), region.z(), row,
                     max_instances, &sat_->Dom()));
  AttrSet all = sat_->rules().r_schema()->AllAttrs();
  for (const Tuple& probe : probes) {
    SaturationResult r = sat_->CheckUniqueFix(probe, region.z_set());
    if (!r.unique) {
      report.consistent = false;
      report.conflicts.insert(report.conflicts.end(), r.conflicts.begin(),
                              r.conflicts.end());
    }
    if (r.covered != all) {
      report.covers_all = false;
      report.uncovered = report.uncovered.Union(all.Minus(r.covered));
    }
  }
  return report;
}

}  // namespace certfix
