#include "core/exhaustive.h"

namespace certfix {

std::set<Value> ActiveDomain(const RuleSet& rules, const Relation& dm) {
  std::set<Value> dom;
  // Columnar scan: each distinct id is resolved to its value once.
  for (const Value& v : dm.ActiveDomain()) dom.insert(v);
  for (const Value& v : rules.PatternConstants()) dom.insert(v);
  return dom;
}

Value FreshValue(DataType type, size_t ordinal, const std::set<Value>& dom) {
  switch (type) {
    case DataType::kInt: {
      int64_t v = 1000000007 + static_cast<int64_t>(ordinal);
      while (dom.count(Value::Int(v)) > 0) ++v;
      return Value::Int(v);
    }
    case DataType::kDouble: {
      double v = 1e15 + static_cast<double>(ordinal);
      while (dom.count(Value::Double(v)) > 0) v += 1.0;
      return Value::Double(v);
    }
    case DataType::kString: {
      size_t n = ordinal;
      while (true) {
        Value v = Value::Str("<fresh#" + std::to_string(n) + ">");
        if (dom.count(v) == 0) return v;
        ++n;
      }
    }
  }
  return Value();
}

Result<std::vector<Tuple>> InstantiateRow(const RuleSet& rules,
                                          const Relation& dm,
                                          const std::vector<AttrId>& z,
                                          const PatternTuple& row,
                                          size_t max_instances,
                                          const std::set<Value>* dom_hint) {
  const SchemaPtr& schema = rules.r_schema();
  std::set<Value> dom_local;
  if (dom_hint == nullptr) {
    dom_local = ActiveDomain(rules, dm);
  }
  const std::set<Value>& dom = dom_hint != nullptr ? *dom_hint : dom_local;
  AttrSet mentioned = rules.MentionedAttrs();
  AttrSet z_set = AttrSet::FromVector(z);

  // Per-attribute candidate lists; the cross product is the instantiation.
  std::vector<std::vector<Value>> candidates(schema->num_attrs());
  size_t fresh_ordinal = 0;
  size_t total = 1;
  for (AttrId a = 0; a < schema->num_attrs(); ++a) {
    DataType type = schema->attr_type(a);
    std::vector<Value>& cand = candidates[a];
    if (!z_set.Contains(a)) {
      // Unvalidated: initial value is never read by the semantics.
      cand.push_back(FreshValue(type, fresh_ordinal++, dom));
      continue;
    }
    PatternValue pv = row.Get(a);
    if (pv.is_const()) {
      cand.push_back(pv.value());
    } else if (!mentioned.Contains(a)) {
      // Value cannot influence any rule; one representative suffices.
      Value fresh = FreshValue(type, fresh_ordinal++, dom);
      if (pv.is_neg_const() && fresh == pv.value()) {
        fresh = FreshValue(type, fresh_ordinal++, dom);
      }
      cand.push_back(fresh);
    } else {
      for (const Value& v : dom) {
        if (pv.Matches(v)) cand.push_back(v);
      }
      Value fresh = FreshValue(type, fresh_ordinal++, dom);
      if (pv.Matches(fresh)) cand.push_back(fresh);
    }
    if (cand.empty()) return std::vector<Tuple>{};  // unsatisfiable row
    if (total > max_instances / cand.size() + 1) {
      return Status::OutOfRange("instantiation would exceed limit of " +
                                std::to_string(max_instances));
    }
    total *= cand.size();
  }
  if (total > max_instances) {
    return Status::OutOfRange("instantiation would exceed limit of " +
                              std::to_string(max_instances));
  }

  std::vector<Tuple> out;
  out.reserve(total);
  std::vector<size_t> pos(schema->num_attrs(), 0);
  while (true) {
    Tuple t(schema);
    for (AttrId a = 0; a < schema->num_attrs(); ++a) {
      t.Set(a, candidates[a][pos[a]]);
    }
    out.push_back(std::move(t));
    // Odometer increment.
    size_t i = 0;
    for (; i < pos.size(); ++i) {
      if (++pos[i] < candidates[i].size()) break;
      pos[i] = 0;
    }
    if (i == pos.size()) break;
  }
  return out;
}

namespace {

Result<bool> ExhaustiveCheck(const Saturator& sat, const Region& region,
                             size_t max_instances, bool require_certain) {
  AttrSet z_set = region.z_set();
  for (const PatternTuple& row : region.tableau().rows()) {
    CERTFIX_ASSIGN_OR_RETURN(
        std::vector<Tuple> probes,
        InstantiateRow(sat.rules(), sat.master(), region.z(), row,
                       max_instances));
    for (const Tuple& t : probes) {
      SaturationResult r = sat.CheckUniqueFix(t, z_set);
      if (!r.unique) return false;
      if (require_certain &&
          r.covered != sat.rules().r_schema()->AllAttrs()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> ExhaustiveConsistent(const Saturator& sat, const Region& region,
                                  size_t max_instances) {
  return ExhaustiveCheck(sat, region, max_instances, /*require_certain=*/false);
}

Result<bool> ExhaustiveCertainRegion(const Saturator& sat,
                                     const Region& region,
                                     size_t max_instances) {
  return ExhaustiveCheck(sat, region, max_instances, /*require_certain=*/true);
}

}  // namespace certfix
