#include "core/cregion.h"

#include <algorithm>
#include <set>

namespace certfix {

std::optional<PatternTuple> BuildRowForMaster(const RuleSet& rules,
                                              const std::vector<AttrId>& z,
                                              const Tuple& tm,
                                              const Tuple* anchor,
                                              AttrSet anchor_attrs) {
  const SchemaPtr& schema = rules.r_schema();
  AttrSet z_set = AttrSet::FromVector(z);

  PatternTuple base(schema);
  for (AttrId a : z) base.SetWildcard(a);
  if (anchor != nullptr) {
    for (AttrId a : anchor_attrs.Intersect(z_set).ToVector()) {
      PatternTuple cell(schema);
      cell.SetConst(a, anchor->at(a));
      if (!base.MergeFrom(cell)) return std::nullopt;
    }
  }

  // Replay a closure derivation, merging the cells each used rule imposes
  // on the Z attributes. Rules whose cells conflict with the row so far
  // are skipped (they would fire with a different master tuple, e.g. the
  // a2-to-a1 homepage rules of the DBLP workload); because different rule
  // orders skip different rules, all rotations of the rule order are
  // tried until one derivation covers R.
  size_t n = rules.size();
  for (size_t start = 0; start < std::max<size_t>(n, 1); ++start) {
    PatternTuple row = base;
    AttrSet closure = z_set;
    std::vector<bool> skipped(n, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t j = 0; j < n; ++j) {
        size_t idx = (start + j) % n;
        if (skipped[idx]) continue;
        const EditingRule& rule = rules.at(idx);
        if (closure.Contains(rule.rhs())) continue;
        if (!rule.premise_set().SubsetOf(closure)) continue;
        // Master-side pattern screen: for pattern attributes that are
        // also key attributes, tm must satisfy the pattern (otherwise
        // this rule cannot fire with tm).
        bool master_ok = true;
        for (size_t p = 0; p < rule.lhs().size(); ++p) {
          PatternValue pv = rule.pattern().Get(rule.lhs()[p]);
          if (!pv.is_wildcard() && !pv.Matches(tm.at(rule.lhsm()[p]))) {
            master_ok = false;
            break;
          }
        }
        if (!master_ok) {
          skipped[idx] = true;
          continue;
        }

        PatternTuple cells(schema);
        for (const auto& [attr, pv] : rule.pattern().cells()) {
          if (z_set.Contains(attr) && !pv.is_wildcard()) cells.Set(attr, pv);
        }
        for (size_t p = 0; p < rule.lhs().size(); ++p) {
          if (z_set.Contains(rule.lhs()[p])) {
            cells.SetConst(rule.lhs()[p], tm.at(rule.lhsm()[p]));
          }
        }
        PatternTuple merged = row;
        if (!merged.MergeFrom(cells)) {
          // Conflicts are permanent: the cells depend only on tm and the
          // row can only gain constraints.
          skipped[idx] = true;
          continue;
        }
        row = std::move(merged);
        closure.Add(rule.rhs());
        changed = true;
      }
    }
    if (closure == schema->AllAttrs()) return row;
  }
  return std::nullopt;
}

AttrSet RegionFinder::Closure(AttrSet z) const {
  const RuleSet& rules = sat_->rules();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EditingRule& rule : rules) {
      if (z.Contains(rule.rhs())) continue;
      if (rule.premise_set().SubsetOf(z)) {
        z.Add(rule.rhs());
        changed = true;
      }
    }
  }
  return z;
}

std::vector<AttrId> RegionFinder::CompCRegionZ(
    const CRegionOptions& opts) const {
  const SchemaPtr& schema = sat_->rules().r_schema();
  AttrSet all = schema->AllAttrs();
  Rng rng(opts.seed);
  AttrSet best = all;
  for (size_t trial = 0; trial < std::max<size_t>(opts.trials, 1); ++trial) {
    std::vector<AttrId> order = all.ToVector();
    rng.Shuffle(&order);
    AttrSet z = all;
    for (AttrId a : order) {
      AttrSet z2 = z;
      z2.Remove(a);
      if (Closure(z2) == all) z = z2;
    }
    if (z.Count() < best.Count()) best = z;
  }
  return best.ToVector();
}

std::vector<AttrId> RegionFinder::GRegionZ() const {
  const RuleSet& rules = sat_->rules();
  const SchemaPtr& schema = rules.r_schema();
  AttrSet all = schema->AllAttrs();
  AttrSet z;        // chosen attributes (validated by the user)
  AttrSet covered;  // z plus attributes directly fixed from z

  auto direct_gain = [&](AttrId a) {
    AttrSet z2 = z;
    z2.Add(a);
    int gain = 0;
    AttrSet gained;
    for (const EditingRule& rule : rules) {
      if (covered.Contains(rule.rhs()) || z2.Contains(rule.rhs())) continue;
      if (gained.Contains(rule.rhs())) continue;
      if (rule.premise_set().SubsetOf(z2)) {
        gained.Add(rule.rhs());
        ++gain;
      }
    }
    return gain;
  };

  while (covered.Union(z) != all) {
    AttrId best = AttrSet::kMaxAttrs;
    int best_gain = 0;
    for (AttrId a = 0; a < schema->num_attrs(); ++a) {
      if (z.Contains(a)) continue;
      int gain = direct_gain(a);
      if (gain > best_gain) {
        best_gain = gain;
        best = a;
      }
    }
    if (best == AttrSet::kMaxAttrs) {
      // Zero-gain fallback: the attribute occurring most often in premises
      // of rules whose rhs is still uncovered; if none helps, validate all
      // remaining uncovered attributes directly.
      std::vector<int> freq(schema->num_attrs(), 0);
      for (const EditingRule& rule : rules) {
        if (covered.Contains(rule.rhs()) || z.Contains(rule.rhs())) continue;
        for (AttrId a : rule.premise_set().ToVector()) {
          if (!z.Contains(a)) ++freq[a];
        }
      }
      int best_freq = 0;
      for (AttrId a = 0; a < schema->num_attrs(); ++a) {
        if (!z.Contains(a) && freq[a] > best_freq) {
          best_freq = freq[a];
          best = a;
        }
      }
      if (best == AttrSet::kMaxAttrs) {
        z = z.Union(all.Minus(covered));
        break;
      }
    }
    z.Add(best);
    // Recompute the directly covered set from z.
    covered = z;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const EditingRule& rule : rules) {
        // One-step only: premises must be user-validated attributes.
        if (!covered.Contains(rule.rhs()) &&
            rule.premise_set().SubsetOf(z)) {
          covered.Add(rule.rhs());
          changed = true;
        }
      }
    }
  }
  return z.ToVector();
}

Region RegionFinder::BuildRegion(const std::vector<AttrId>& z,
                                 const CRegionOptions& opts,
                                 double* coverage_out) const {
  const RuleSet& rules = sat_->rules();
  const Relation& dm = sat_->master();
  Region region = Region::Of(rules.r_schema(), z);
  CoverageChecker coverage(*sat_);

  size_t sample = std::min(opts.sample_masters, dm.size());
  size_t valid = 0;
  std::set<std::string> dedup;
  size_t stride = dm.size() == 0 ? 1 : std::max<size_t>(1, dm.size() / std::max<size_t>(sample, 1));
  size_t inspected = 0;
  for (size_t m = 0; m < dm.size() && inspected < sample; m += stride) {
    ++inspected;
    std::optional<PatternTuple> row = BuildRowForMaster(rules, z, dm.at(m));
    if (!row.has_value()) continue;
    // Validate with the concrete checker; skip duplicates.
    std::string key = row->ToString();
    if (dedup.count(key) > 0) {
      ++valid;
      continue;
    }
    Region probe = Region::Of(rules.r_schema(), z);
    if (!probe.AddRow(*row).ok()) continue;
    Result<bool> ok = coverage.IsCertainRegion(probe);
    if (ok.ok() && *ok) {
      ++valid;
      dedup.insert(key);
      if (region.tableau().size() < opts.max_rows) {
        Status st = region.AddRow(*row);
        (void)st;
      }
    }
  }
  if (coverage_out != nullptr) {
    *coverage_out =
        inspected == 0 ? 0.0
                       : static_cast<double>(valid) / static_cast<double>(inspected);
  }
  return region;
}

std::vector<RankedRegion> RegionFinder::ComputeCertainRegions(
    const CRegionOptions& opts) const {
  const SchemaPtr& schema = sat_->rules().r_schema();
  Rng rng(opts.seed);
  AttrSet all = schema->AllAttrs();

  // Candidate Z lists: randomized minimization restarts plus the greedy
  // baseline's pick, deduplicated.
  std::set<AttrSet> candidates;
  for (size_t trial = 0; trial < std::max<size_t>(opts.trials, 1); ++trial) {
    std::vector<AttrId> order = all.ToVector();
    rng.Shuffle(&order);
    AttrSet z = all;
    for (AttrId a : order) {
      AttrSet z2 = z;
      z2.Remove(a);
      if (Closure(z2) == all) z = z2;
    }
    candidates.insert(z);
  }
  candidates.insert(AttrSet::FromVector(GRegionZ()));

  std::vector<RankedRegion> out;
  for (const AttrSet& z_set : candidates) {
    std::vector<AttrId> z = z_set.ToVector();
    double master_coverage = 0.0;
    Region region = BuildRegion(z, opts, &master_coverage);
    if (region.tableau().empty()) continue;
    double quality =
        master_coverage -
        opts.size_penalty * static_cast<double>(z.size()) /
            static_cast<double>(schema->num_attrs());
    out.push_back(RankedRegion{std::move(region), quality});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedRegion& a, const RankedRegion& b) {
              if (a.quality != b.quality) return a.quality > b.quality;
              return a.region.z().size() < b.region.z().size();
            });
  return out;
}

}  // namespace certfix
