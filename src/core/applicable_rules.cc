#include "core/applicable_rules.h"

namespace certfix {

const std::vector<size_t>& PartialMasterIndexCache::Lookup(
    const std::vector<AttrId>& master_attrs, const Tuple& t,
    const std::vector<AttrId>& r_attrs) {
  if (master_attrs.empty()) {
    if (!all_rows_ready_) {
      all_rows_.resize(dm_->size());
      for (size_t i = 0; i < dm_->size(); ++i) all_rows_[i] = i;
      all_rows_ready_ = true;
    }
    return all_rows_;
  }
  auto it = cache_.find(master_attrs);
  if (it == cache_.end()) {
    it = cache_
             .emplace(master_attrs,
                      std::make_unique<KeyIndex>(*dm_, master_attrs))
             .first;
  }
  return it->second->LookupTuple(t, r_attrs);
}

ApplicableRules DeriveApplicableRules(const RuleSet& sigma,
                                      const Relation& dm,
                                      PartialMasterIndexCache* cache,
                                      const Tuple& t, AttrSet z) {
  ApplicableRules out;
  out.rules = RuleSet(sigma.r_schema(), sigma.rm_schema());
  for (size_t i = 0; i < sigma.size(); ++i) {
    const EditingRule& rule = sigma.at(i);
    // (a) The rule must not overwrite a validated attribute.
    if (z.Contains(rule.rhs())) continue;
    // (b) The pattern restricted to validated attributes must match t.
    if (!rule.pattern().MatchesOn(t, z)) continue;
    // (c) Some master tuple must agree with t on the validated part of X
    // and match the pattern cells translated to the master side.
    std::vector<AttrId> r_key;
    std::vector<AttrId> m_key;
    for (size_t p = 0; p < rule.lhs().size(); ++p) {
      if (z.Contains(rule.lhs()[p])) {
        r_key.push_back(rule.lhs()[p]);
        m_key.push_back(rule.lhsm()[p]);
      }
    }
    const std::vector<size_t>& candidates = cache->Lookup(m_key, t, r_key);
    bool has_master = false;
    for (size_t m : candidates) {
      bool match = true;
      for (size_t p = 0; p < rule.lhs().size(); ++p) {
        AttrId a = rule.lhs()[p];
        PatternValue pv = rule.pattern().Get(a);
        if (!pv.is_wildcard() && !pv.Matches(dm.Cell(m, rule.lhsm()[p]))) {
          match = false;
          break;
        }
      }
      if (match) {
        has_master = true;
        break;
      }
    }
    if (!has_master) continue;

    // Build phi+: extend the pattern with the validated lhs attributes,
    // pinned to t's values (refinement (i)-(ii) of Sect. 5.2).
    PatternTuple tp = rule.pattern();
    for (AttrId a : r_key) tp.SetConst(a, t.at(a));
    // Also pin validated pattern attributes to t's concrete values.
    for (const auto& [attr, pv] : rule.pattern().cells()) {
      (void)pv;
      if (z.Contains(attr)) tp.SetConst(attr, t.at(attr));
    }
    Result<EditingRule> refined = EditingRule::Make(
        rule.name() + "+", sigma.r_schema(), sigma.rm_schema(), rule.lhs(),
        rule.lhsm(), rule.rhs(), rule.rhsm(), std::move(tp));
    if (!refined.ok()) continue;  // cannot happen: same shape as source
    Status st = out.rules.Add(std::move(refined).ValueOrDie());
    (void)st;
    out.origin.push_back(i);
  }
  return out;
}

}  // namespace certfix
