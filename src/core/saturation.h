/// \file saturation.h
/// \brief Batch saturation engine: computes fixes, covered sets, and exact
/// unique-fix decisions (the PTIME algorithm behind Theorem 4).
///
/// Semantics recap (Sect. 3): starting from a validated set Z0, a move
/// (phi, tm) may fire when premise(phi) is validated and rhs(phi) is not;
/// firing validates rhs(phi) with tm[Bm]. Enabling depends only on
/// validated values and is monotone, so (a) a full batch saturation reaches
/// the maximal covered set, and (b) the fix is unique iff for every
/// attribute B, the *B-excluded* saturation (never validating B) proposes
/// at most one distinct value for B. Any move that actually fires targeting
/// B has B-independent premises, which makes (b) exact. See DESIGN.md 2.1.

#ifndef CERTFIX_CORE_SATURATION_H_
#define CERTFIX_CORE_SATURATION_H_

#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/fix_state.h"
#include "core/master_index.h"

namespace certfix {

/// \brief Two moves proposing distinct values for one attribute.
struct FixConflict {
  AttrId attr = 0;
  Value value_a;
  Value value_b;
  size_t rule_a = 0;
  size_t rule_b = 0;
  std::string ToString(const SchemaPtr& schema) const;
};

/// \brief Outcome of saturating a tuple.
struct SaturationResult {
  Tuple fixed;                       ///< Tuple after all applied moves.
  AttrSet covered;                   ///< Z0 plus every attribute fixed.
  bool unique = true;                ///< No conflicting proposals found.
  std::vector<FixMove> steps;        ///< Moves applied, in round order.
  std::vector<FixConflict> conflicts;

  /// Certain fix: unique and covering all of R (Sect. 3).
  bool CertainOver(const SchemaPtr& schema) const {
    return unique && covered == schema->AllAttrs();
  }
};

/// \brief Saturation engine bound to (Sigma, Dm) plus its hash indexes.
///
/// Thread safety: a fully constructed Saturator is safe for concurrent
/// use — Saturate / SaturateExcluding / CheckUniqueFix keep all mutable
/// state on the stack, the referenced RuleSet / Relation / MasterIndex
/// are never written, and the one lazily initialized member (the Dom()
/// cache) is guarded by a mutex — with ONE storage-layer caveat: applying
/// a move interns the fixed value into the *input tuple's* ValuePool,
/// which is not synchronized (value_pool.h). Concurrent saturations are
/// therefore safe only when each thread's input tuples use a
/// thread-owned pool — the parallel BatchRepair rebases every shard's
/// rows into a shard-local pool for exactly this reason. Saturating
/// tuples of one shared relation from multiple threads without rebasing
/// is a data race. (Single-threaded callers are unaffected, though note
/// that saturating rel.at(i) may append fix values to rel's pool — an
/// append-only, content-invisible mutation.) SetDomHint must not race
/// with readers.
class Saturator {
 public:
  Saturator(const RuleSet& rules, const Relation& dm,
            const MasterIndex& index)
      : rules_(&rules), dm_(&dm), index_(&index) {}

  /// Full saturation: applies rounds of enabled moves until fixpoint.
  /// Detects same-round conflicts only; `unique` is a *necessary* check
  /// here, the complete check is CheckUniqueFix below.
  SaturationResult Saturate(const Tuple& t, AttrSet z0) const;

  /// Saturation that never validates `excluded`; all values proposed for
  /// `excluded` across the run are appended to `proposals` (deduplicated).
  SaturationResult SaturateExcluding(const Tuple& t, AttrSet z0,
                                     AttrId excluded,
                                     std::vector<Value>* proposals) const;

  /// Exact unique-fix decision (and the fix itself when unique): full
  /// saturation plus one excluded saturation per covered target attribute.
  /// Mirrors the consistency algorithm in the proof of Theorem 4.
  /// `bridge`, when given, must translate t's pool into the master pool;
  /// long-lived callers (BatchRepair shards) pass one bridge across many
  /// rows so each distinct input value is hashed once per shard, not once
  /// per row. Null builds a per-call bridge. `probes`, when given, records
  /// every master-index probe across the full and excluded runs — the
  /// dependency set the incremental engine invalidates on (fix_state.h).
  SaturationResult CheckUniqueFix(const Tuple& t, AttrSet z0,
                                  PoolBridge* bridge = nullptr,
                                  ProbeLog* probes = nullptr) const;

  const RuleSet& rules() const { return *rules_; }
  const Relation& master() const { return *dm_; }
  const MasterIndex& index() const { return *index_; }

  /// Rules whose premises `z0` already validates (and with a non-empty
  /// lhs): exactly the rules round 1 of every saturation from `z0`
  /// probes the master for. Engines hand this list to
  /// MasterIndex::PrefetchRhsProbes when staging a block of tuples.
  std::vector<size_t> FirstRoundProbeRules(AttrSet z0) const;

  /// Active domain of (Sigma, Dm), computed once and cached. A hint set
  /// via SetDomHint (e.g. by Suggest, which creates short-lived saturators
  /// over refined rule sets) takes precedence; any superset of the true
  /// active domain is sound for fresh-value generation.
  const std::set<Value>& Dom() const;
  void SetDomHint(const std::set<Value>* dom) { dom_hint_ = dom; }

 private:
  // Shared round loop; excluded < 0 disables exclusion. `bridge` is the
  // caller-owned id translation from t's pool into the master pool, reused
  // across the rounds (and, for CheckUniqueFix, across the per-attribute
  // excluded runs) so each distinct input value is hashed at most once.
  // `probes`, when non-null, records a ProbeKeyHash for every RhsValues
  // call this run performs.
  SaturationResult Run(const Tuple& t, AttrSet z0, int excluded,
                       std::vector<Value>* proposals, PoolBridge* bridge,
                       ProbeLog* probes = nullptr) const;

  const RuleSet* rules_;
  const Relation* dm_;
  const MasterIndex* index_;
  const std::set<Value>* dom_hint_ = nullptr;
  mutable std::mutex dom_mutex_;  ///< guards dom_cache_ initialization
  mutable std::optional<std::set<Value>> dom_cache_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_SATURATION_H_
