#include "core/user.h"

namespace certfix {

// UserOracle implementations are header-only; this translation unit anchors
// the vtable for the interface.

}  // namespace certfix
