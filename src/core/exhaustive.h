/// \file exhaustive.h
/// \brief Active-domain machinery and enumeration-based exact checkers.
///
/// These mirror the (co)NP algorithms in the proofs of Theorems 1, 2 and 6:
/// instantiate pattern rows over the active domain of (Sigma, Dm) plus one
/// fresh constant per attribute, and decide each instantiation with the
/// concrete PTIME checker. Exponential in the number of non-constant cells
/// on rule-mentioned attributes; intended for tests, small rule sets, and
/// the fixed-Sigma PTIME cases (Props 8, 11, 15).

#ifndef CERTFIX_CORE_EXHAUSTIVE_H_
#define CERTFIX_CORE_EXHAUSTIVE_H_

#include <set>
#include <vector>

#include "core/region.h"
#include "core/saturation.h"
#include "util/result.h"

namespace certfix {

/// dom: all constants in Dm and in the patterns of Sigma (proof of Thm 1).
std::set<Value> ActiveDomain(const RuleSet& rules, const Relation& dm);

/// A value of the attribute's type guaranteed not to be in `dom`;
/// successive `ordinal`s give distinct fresh values.
Value FreshValue(DataType type, size_t ordinal, const std::set<Value>& dom);

/// Instantiates one pattern row into concrete probe tuples over schema R:
///   - constant cells keep their constant;
///   - wildcard / negated cells on attributes *not mentioned* in Sigma are
///     bound to a single fresh value (their value cannot influence rules);
///   - wildcard cells on mentioned attributes range over dom + one fresh;
///   - negated cells on mentioned attributes range over the same minus the
///     negated constant;
///   - attributes outside Z are bound to one fresh value each (they are
///     unvalidated, so their initial value is never read).
/// Fails if the expansion would exceed `max_instances`. `dom_hint`, when
/// given, replaces the O(|Dm|) active-domain computation (any superset of
/// the true active domain is sound).
Result<std::vector<Tuple>> InstantiateRow(const RuleSet& rules,
                                          const Relation& dm,
                                          const std::vector<AttrId>& z,
                                          const PatternTuple& row,
                                          size_t max_instances = 100000,
                                          const std::set<Value>* dom_hint =
                                              nullptr);

/// Exact consistency of (Sigma, Dm) relative to (Z, Tc): every marked tuple
/// has a unique fix. Enumerates instantiations (general tableaux allowed).
Result<bool> ExhaustiveConsistent(const Saturator& sat, const Region& region,
                                  size_t max_instances = 100000);

/// Exact certain-region test: every marked tuple has a *certain* fix.
Result<bool> ExhaustiveCertainRegion(const Saturator& sat,
                                     const Region& region,
                                     size_t max_instances = 100000);

}  // namespace certfix

#endif  // CERTFIX_CORE_EXHAUSTIVE_H_
