#include "core/suggestion_cache.h"

namespace certfix {

int* SuggestionCache::HeadSlot(const Cursor& cursor) {
  if (cursor.parent < 0) return &root_head_;
  return &nodes_[static_cast<size_t>(cursor.parent)].true_head;
}

std::optional<AttrSet> SuggestionCache::Lookup(
    Cursor* cursor, const std::function<bool(const AttrSet&)>& still_valid) {
  int node = *HeadSlot(*cursor);
  while (node >= 0) {
    ++stats_.checks;
    const AttrSet& s = nodes_[static_cast<size_t>(node)].suggestion;
    if (still_valid(s)) {
      ++stats_.hits;
      cursor->parent = node;
      return s;
    }
    node = nodes_[static_cast<size_t>(node)].false_next;
  }
  ++stats_.misses;
  return std::nullopt;
}

void SuggestionCache::Insert(Cursor* cursor, AttrSet suggestion) {
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{suggestion, -1, -1});
  int* slot = HeadSlot(*cursor);
  if (*slot < 0) {
    *slot = id;
  } else {
    int node = *slot;
    while (nodes_[static_cast<size_t>(node)].false_next >= 0) {
      node = nodes_[static_cast<size_t>(node)].false_next;
    }
    nodes_[static_cast<size_t>(node)].false_next = id;
  }
  cursor->parent = id;
}

void SuggestionCache::Clear() {
  nodes_.clear();
  root_head_ = -1;
}

}  // namespace certfix
