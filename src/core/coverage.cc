#include "core/coverage.h"

namespace certfix {

Result<bool> CoverageChecker::IsCertainRegion(const Region& region,
                                              size_t max_instances) const {
  if (region.tableau().empty()) return false;  // no marked tuples => vacuous
  for (const PatternTuple& row : region.tableau().rows()) {
    CERTFIX_ASSIGN_OR_RETURN(ConsistencyReport rep,
                             checker_.CheckRow(region, row, max_instances));
    if (!rep.consistent || !rep.covers_all) return false;
  }
  return true;
}

}  // namespace certfix
