#include "core/master_index.h"

#include <memory>
#include <unordered_set>

#include "telemetry/metrics.h"

namespace certfix {

const MasterIndex::RhsSummary MasterIndex::kEmptySummary;

namespace {

/// Dedups (value-id, row) pairs into a summary. Summaries are almost
/// always tiny (1 distinct Bm value per key in consistent master data),
/// so membership starts as a linear scan over the summary itself and
/// upgrades to a hash set only past kLinearMax — high-cardinality Bm
/// columns (e.g. an all-rows summary over a unique column) would
/// otherwise make index build quadratic.
class DistinctAdder {
 public:
  void Add(MasterIndex::RhsSummary* summary, const Value& v, ValueId id,
           size_t row) {
    if (seen_ == nullptr) {
      for (const MasterIndex::RhsValue& existing : *summary) {
        if (existing.id == id) return;
      }
      summary->push_back(MasterIndex::RhsValue{v, id, row});
      if (summary->size() > kLinearMax) {
        seen_ = std::make_unique<std::unordered_set<ValueId>>();
        for (const MasterIndex::RhsValue& existing : *summary) {
          seen_->insert(existing.id);
        }
      }
      return;
    }
    if (seen_->insert(id).second) {
      summary->push_back(MasterIndex::RhsValue{v, id, row});
    }
  }

 private:
  static constexpr size_t kLinearMax = 16;
  std::unique_ptr<std::unordered_set<ValueId>> seen_;
};

}  // namespace

std::shared_ptr<MasterIndex::ValueIndex> MasterIndex::BuildValueIndex(
    const Relation& dm, const std::vector<AttrId>& xm, AttrId bm,
    IndexKind kind) {
  auto vi = std::make_shared<ValueIndex>();
  const IdColumn& bm_col = dm.Column(bm);
  std::vector<const IdColumn*> key_cols;
  key_cols.reserve(xm.size());
  for (AttrId a : xm) key_cols.push_back(&dm.Column(a));
  IdKey key(xm.size());
  DistinctAdder all_rows_adder;
  std::vector<DistinctAdder> adders;  // flat path, parallel to summaries
  if (kind == IndexKind::kFlat && !xm.empty()) {
    vi->table.Reset(xm.size(), dm.size());
  }
  std::unordered_map<IdKey, DistinctAdder, IdKeyHash>
      map_adders;  // contract-lint: allow(idkey-map) kMap build-side dedup
  for (size_t row = 0; row < dm.size(); ++row) {
    ValueId vid = bm_col[row];
    const Value& v = dm.pool()->value(vid);
    if (xm.empty()) {
      all_rows_adder.Add(&vi->all_rows_summary, v, vid, row);
      continue;
    }
    for (size_t k = 0; k < key_cols.size(); ++k) key[k] = (*key_cols[k])[row];
    if (kind == IndexKind::kFlat) {
      const uint32_t fresh = static_cast<uint32_t>(vi->summaries.size());
      const uint32_t slot = vi->table.InsertOrGet(key.data(), fresh);
      if (slot == fresh) {
        vi->summaries.emplace_back();
        adders.emplace_back();
      }
      adders[slot].Add(&vi->summaries[slot], v, vid, row);
    } else {
      map_adders[key].Add(&vi->map[key], v, vid, row);
    }
  }
  return vi;
}

void MasterIndex::Build(const RuleSet& rules, const MasterIndex* share) {
  rule_to_index_.reserve(rules.size());
  rule_to_value_.reserve(rules.size());
  probe_.reserve(rules.size());
  for (const EditingRule& rule : rules) {
    probe_.push_back(rule.lhs());

    // Row index (keyed by Xm), shared across rules with the same Xm.
    if (rule.lhsm().empty()) {
      rule_to_index_.push_back(-1);
    } else {
      auto it = key_ids_.find(rule.lhsm());
      if (it == key_ids_.end()) {
        const size_t count = kind_ == IndexKind::kFlat ? flat_indexes_.size()
                                                       : indexes_.size();
        int id = -1;
        if (share != nullptr) {
          auto sit = share->key_ids_.find(rule.lhsm());
          if (sit != share->key_ids_.end()) {
            id = static_cast<int>(count);
            if (kind_ == IndexKind::kFlat) {
              flat_indexes_.push_back(
                  share->flat_indexes_[static_cast<size_t>(sit->second)]);
            } else {
              indexes_.push_back(
                  share->indexes_[static_cast<size_t>(sit->second)]);
            }
          }
        }
        if (id < 0) {
          id = static_cast<int>(count);
          if (kind_ == IndexKind::kFlat) {
            flat_indexes_.push_back(
                std::make_shared<FlatKeyIndex>(*dm_, rule.lhsm()));
          } else {
            indexes_.push_back(std::make_shared<KeyIndex>(*dm_, rule.lhsm()));
          }
        }
        it = key_ids_.emplace(rule.lhsm(), id).first;
      }
      rule_to_index_.push_back(it->second);
    }

    // Value summary (keyed by (Xm, Bm)).
    std::pair<std::vector<AttrId>, AttrId> vkey{rule.lhsm(), rule.rhsm()};
    auto vit = value_ids_.find(vkey);
    if (vit == value_ids_.end()) {
      int id = -1;
      if (share != nullptr) {
        auto sit = share->value_ids_.find(vkey);
        if (sit != share->value_ids_.end()) {
          id = static_cast<int>(value_indexes_.size());
          value_indexes_.push_back(
              share->value_indexes_[static_cast<size_t>(sit->second)]);
        }
      }
      if (id < 0) {
        id = static_cast<int>(value_indexes_.size());
        value_indexes_.push_back(
            BuildValueIndex(*dm_, rule.lhsm(), rule.rhsm(), kind_));
      }
      vit = value_ids_.emplace(std::move(vkey), id).first;
    }
    rule_to_value_.push_back(vit->second);
  }
  // The full-row list is only needed by empty-X rules (reductions); build
  // it on demand rather than per index construction.
  bool any_empty = false;
  for (int idx : rule_to_index_) any_empty |= (idx < 0);
  if (any_empty) {
    all_rows_.resize(dm_->size());
    for (size_t i = 0; i < dm_->size(); ++i) all_rows_[i] = i;
  }
}

MasterIndex::MasterIndex(const RuleSet& rules, const Relation& dm,
                         IndexKind kind)
    : dm_(&dm), kind_(kind) {
  Build(rules, nullptr);
}

MasterIndex::MasterIndex(const RuleSet& rules, const Relation& dm,
                         const MasterIndex& share_from)
    : dm_(&dm), kind_(share_from.kind_) {
  Build(rules, &share_from);
}

RowSpan MasterIndex::Candidates(size_t rule_idx, const Tuple& t,
                                PoolBridge* bridge) const {
  int idx = rule_to_index_[rule_idx];
  if (idx < 0) return RowSpan(all_rows_);
  if (kind_ == IndexKind::kFlat) {
    return flat_indexes_[static_cast<size_t>(idx)]->LookupTuple(
        t, probe_[rule_idx], bridge);
  }
  return RowSpan(indexes_[static_cast<size_t>(idx)]->LookupTuple(
      t, probe_[rule_idx], bridge));
}

const MasterIndex::RhsSummary& MasterIndex::RhsValues(
    size_t rule_idx, const Tuple& t, PoolBridge* bridge) const {
  const ValueIndex& vi =
      *value_indexes_[static_cast<size_t>(rule_to_value_[rule_idx])];
  if (probe_[rule_idx].empty()) return vi.all_rows_summary;
  thread_local IdKey key;  // reused across probes, no per-probe allocation
  if (!ProjectIds(t, probe_[rule_idx], dm_->pool().get(), bridge, &key)) {
    return kEmptySummary;
  }
  if (kind_ == IndexKind::kFlat) {
    const uint32_t slot = vi.table.Find(key.data());
    return slot == FlatIdTable::kNotFound ? kEmptySummary : vi.summaries[slot];
  }
  auto it = vi.map.find(key);
  return it == vi.map.end() ? kEmptySummary : it->second;
}

void MasterIndex::PrefetchRhsProbes(const Tuple& t,
                                    const std::vector<size_t>& rule_idxs,
                                    PoolBridge* bridge) const {
  if (kind_ != IndexKind::kFlat) return;
  // One probe batch = all round-1 probes staged for a single tuple.
  telemetry::ScopedLatency latency(
      CERTFIX_TL_HISTOGRAM("master_probe_batch_ns"));
  thread_local IdKey key;
  for (size_t rule_idx : rule_idxs) {
    if (probe_[rule_idx].empty()) continue;
    const ValueIndex& vi =
        *value_indexes_[static_cast<size_t>(rule_to_value_[rule_idx])];
    if (!ProjectIds(t, probe_[rule_idx], dm_->pool().get(), bridge, &key)) {
      continue;
    }
    vi.table.Prefetch(vi.table.Hash(key.data()));
  }
}

}  // namespace certfix
