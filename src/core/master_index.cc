#include "core/master_index.h"

namespace certfix {

const MasterIndex::RhsSummary MasterIndex::kEmptySummary;

namespace {

void AddDistinct(MasterIndex::RhsSummary* summary, const Value& v,
                 size_t row) {
  for (const auto& [existing, rep] : *summary) {
    (void)rep;
    if (existing == v) return;
  }
  summary->emplace_back(v, row);
}

}  // namespace

std::shared_ptr<MasterIndex::ValueIndex> MasterIndex::BuildValueIndex(
    const Relation& dm, const std::vector<AttrId>& xm, AttrId bm) {
  auto vi = std::make_shared<ValueIndex>();
  for (size_t row = 0; row < dm.size(); ++row) {
    const Value& v = dm.at(row).at(bm);
    if (xm.empty()) {
      AddDistinct(&vi->all_rows_summary, v, row);
    } else {
      AddDistinct(&vi->map[ProjectKey(dm.at(row), xm)], v, row);
    }
  }
  return vi;
}

void MasterIndex::Build(const RuleSet& rules, const MasterIndex* share) {
  rule_to_index_.reserve(rules.size());
  rule_to_value_.reserve(rules.size());
  probe_.reserve(rules.size());
  for (const EditingRule& rule : rules) {
    probe_.push_back(rule.lhs());

    // Row index (keyed by Xm), shared across rules with the same Xm.
    if (rule.lhsm().empty()) {
      rule_to_index_.push_back(-1);
    } else {
      auto it = key_ids_.find(rule.lhsm());
      if (it == key_ids_.end()) {
        int id = -1;
        if (share != nullptr) {
          auto sit = share->key_ids_.find(rule.lhsm());
          if (sit != share->key_ids_.end()) {
            id = static_cast<int>(indexes_.size());
            indexes_.push_back(share->indexes_[static_cast<size_t>(sit->second)]);
          }
        }
        if (id < 0) {
          id = static_cast<int>(indexes_.size());
          indexes_.push_back(std::make_shared<KeyIndex>(*dm_, rule.lhsm()));
        }
        it = key_ids_.emplace(rule.lhsm(), id).first;
      }
      rule_to_index_.push_back(it->second);
    }

    // Value summary (keyed by (Xm, Bm)).
    std::pair<std::vector<AttrId>, AttrId> vkey{rule.lhsm(), rule.rhsm()};
    auto vit = value_ids_.find(vkey);
    if (vit == value_ids_.end()) {
      int id = -1;
      if (share != nullptr) {
        auto sit = share->value_ids_.find(vkey);
        if (sit != share->value_ids_.end()) {
          id = static_cast<int>(value_indexes_.size());
          value_indexes_.push_back(
              share->value_indexes_[static_cast<size_t>(sit->second)]);
        }
      }
      if (id < 0) {
        id = static_cast<int>(value_indexes_.size());
        value_indexes_.push_back(
            BuildValueIndex(*dm_, rule.lhsm(), rule.rhsm()));
      }
      vit = value_ids_.emplace(std::move(vkey), id).first;
    }
    rule_to_value_.push_back(vit->second);
  }
  // The full-row list is only needed by empty-X rules (reductions); build
  // it on demand rather than per index construction.
  bool any_empty = false;
  for (int idx : rule_to_index_) any_empty |= (idx < 0);
  if (any_empty) {
    all_rows_.resize(dm_->size());
    for (size_t i = 0; i < dm_->size(); ++i) all_rows_[i] = i;
  }
}

MasterIndex::MasterIndex(const RuleSet& rules, const Relation& dm)
    : dm_(&dm) {
  Build(rules, nullptr);
}

MasterIndex::MasterIndex(const RuleSet& rules, const Relation& dm,
                         const MasterIndex& share_from)
    : dm_(&dm) {
  Build(rules, &share_from);
}

const std::vector<size_t>& MasterIndex::Candidates(size_t rule_idx,
                                                   const Tuple& t) const {
  int idx = rule_to_index_[rule_idx];
  if (idx < 0) return all_rows_;
  return indexes_[static_cast<size_t>(idx)]->LookupTuple(t,
                                                         probe_[rule_idx]);
}

const MasterIndex::RhsSummary& MasterIndex::RhsValues(size_t rule_idx,
                                                      const Tuple& t) const {
  const ValueIndex& vi =
      *value_indexes_[static_cast<size_t>(rule_to_value_[rule_idx])];
  if (probe_[rule_idx].empty()) return vi.all_rows_summary;
  auto it = vi.map.find(ProjectKey(t, probe_[rule_idx]));
  return it == vi.map.end() ? kEmptySummary : it->second;
}

}  // namespace certfix
