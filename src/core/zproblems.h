/// \file zproblems.h
/// \brief The Z-validating, Z-counting, and Z-minimum problems (Sect. 4.2).
///
/// All three are intractable in general (NP-complete / #P-complete /
/// log-inapproximable; Thms 6, 9, 12, 17) but PTIME for a fixed Sigma
/// (Props 8, 11, 15). The exact solvers here enumerate candidate pattern
/// tuples over the active domain exactly as those proofs do, bounded by an
/// explicit budget; the greedy Z-minimum heuristic serves large rule sets.

#ifndef CERTFIX_CORE_ZPROBLEMS_H_
#define CERTFIX_CORE_ZPROBLEMS_H_

#include <optional>

#include "core/coverage.h"
#include "core/saturation.h"
#include "util/result.h"

namespace certfix {

/// \brief Options bounding the exact enumerations.
struct ZOptions {
  size_t max_patterns = 200000;    ///< candidate pattern tuples inspected
  size_t max_instances = 100000;   ///< per-pattern instantiation bound
  bool use_negations = true;       ///< enumerate `c̄` cells too (Prop 8)
};

/// \brief Solvers for the certain-region derivation problems.
class ZProblems {
 public:
  explicit ZProblems(const Saturator& sat) : sat_(&sat) {}

  /// Z-validating: is there a non-empty Tc making (Z, Tc) certain? If yes,
  /// returns one witness pattern tuple.
  Result<std::optional<PatternTuple>> Validate(const std::vector<AttrId>& z,
                                               const ZOptions& opts = {}) const;

  /// Z-counting: the number of distinct pattern tuples tc (normalized per
  /// Sect. 4.2: wildcards outside Sigma, constants from dom plus one
  /// variable) such that (Z, {tc}) is a certain region.
  Result<size_t> Count(const std::vector<AttrId>& z,
                       const ZOptions& opts = {}) const;

  /// Z-minimum, exact: smallest |Z| <= k admitting a certain region, found
  /// by subset enumeration over the rule-mentioned attributes (unmentioned
  /// attributes are always forced into Z). Returns the Z list, or nullopt.
  Result<std::optional<std::vector<AttrId>>> MinimumExact(
      size_t k, const ZOptions& opts = {}) const;

  /// Z-minimum, greedy heuristic (set-cover style; cf. Thm 17's
  /// inapproximability — no quality guarantee). Always returns a Z whose
  /// schema-level closure covers R; the caller validates certainty.
  std::vector<AttrId> MinimumGreedy() const;

  /// Schema-level forward closure of Z under Sigma: repeatedly add rhs of
  /// rules whose premises are in the closure (master data ignored).
  AttrSet Closure(AttrSet z) const;

  /// Attributes that must belong to every certain-region Z: those not
  /// mentioned in Sigma plus those never appearing as any rule's rhs.
  AttrSet ForcedAttrs() const;

 private:
  // Enumerates candidate patterns over Z; invokes fn(tc) per candidate and
  // stops early when fn returns false.
  Status ForEachCandidate(
      const std::vector<AttrId>& z, const ZOptions& opts,
      const std::function<bool(const PatternTuple&)>& fn) const;

  const Saturator* sat_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_ZPROBLEMS_H_
