/// \file cregion.h
/// \brief Certain-region derivation: the CompCRegion heuristic of [20] and
/// the GRegion greedy baseline of Sect. 6 (Exp-1(1)).
///
/// CompCRegion here is a reconstruction (the original is only sketched in
/// the paper): candidate attribute lists Z come from randomized backward
/// minimization of the schema-level closure, tableaux are materialized per
/// master tuple and validated with the concrete certainty checker, and
/// regions are ranked by a quality metric (master coverage, penalized by
/// |Z|). See DESIGN.md 2.2.

#ifndef CERTFIX_CORE_CREGION_H_
#define CERTFIX_CORE_CREGION_H_

#include <optional>

#include "core/coverage.h"
#include "core/region.h"
#include "core/saturation.h"
#include "util/random.h"

namespace certfix {

/// \brief Tuning knobs for region derivation.
struct CRegionOptions {
  size_t trials = 24;          ///< randomized minimization restarts
  size_t max_rows = 64;        ///< tableau rows materialized per region
  size_t sample_masters = 64;  ///< masters sampled for the quality metric
  double size_penalty = 0.05;  ///< quality penalty per Z attribute
  uint64_t seed = 7;
};

/// \brief Builds one tableau row for Z anchored at a master tuple tm:
/// pattern constants come from the used rules' patterns, key values from
/// tm via the lhs->lhsm correspondence, wildcards elsewhere. Returns
/// nullopt when cells conflict or a used rule's master-side pattern
/// rejects tm. If `anchor` is given, its values are pinned first for the
/// attributes in `anchor_attrs` (used for tuple-specific suggestions).
std::optional<PatternTuple> BuildRowForMaster(
    const RuleSet& rules, const std::vector<AttrId>& z, const Tuple& tm,
    const Tuple* anchor = nullptr, AttrSet anchor_attrs = AttrSet());

/// \brief Region derivation engine.
class RegionFinder {
 public:
  explicit RegionFinder(const Saturator& sat) : sat_(&sat) {}

  /// CompCRegion: ranked certain regions, best quality first. Every
  /// returned region has a non-empty validated tableau.
  std::vector<RankedRegion> ComputeCertainRegions(
      const CRegionOptions& opts = {}) const;

  /// The Z list CompCRegion would pick (smallest closure-minimal Z found
  /// over randomized restarts).
  std::vector<AttrId> CompCRegionZ(const CRegionOptions& opts = {}) const;

  /// GRegion: greedy baseline — at each stage pick the attribute that
  /// directly fixes the most uncovered attributes (one-step gains from the
  /// validated set only; zero-gain fallback picks the attribute occurring
  /// most often in premises of rules with uncovered rhs; attributes no
  /// rule can fix are appended).
  std::vector<AttrId> GRegionZ() const;

  /// Materializes and validates a tableau for Z (rows from up to
  /// `opts.max_rows` master tuples); also returns the fraction of sampled
  /// masters that yielded a valid row via `coverage_out`.
  Region BuildRegion(const std::vector<AttrId>& z, const CRegionOptions& opts,
                     double* coverage_out = nullptr) const;

  /// Schema-level closure under Sigma (shared with ZProblems).
  AttrSet Closure(AttrSet z) const;

 private:
  const Saturator* sat_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_CREGION_H_
