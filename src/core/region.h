/// \file region.h
/// \brief Regions (Z, Tc) and region extension ext(Z, Tc, phi) (Sect. 3).

#ifndef CERTFIX_CORE_REGION_H_
#define CERTFIX_CORE_REGION_H_

#include <string>
#include <vector>

#include "pattern/tableau.h"
#include "rules/editing_rule.h"

namespace certfix {

/// \brief A region (Z, Tc): a list Z of distinct attributes of R and a
/// pattern tableau over Z.
///
/// A tuple t is *marked* by the region if it matches some pattern row; to
/// apply rules w.r.t. the region, t[Z] must be assured correct (Sect. 3).
class Region {
 public:
  Region() = default;
  Region(std::vector<AttrId> z, Tableau tc)
      : z_(std::move(z)), z_set_(AttrSet::FromVector(z_)), tc_(std::move(tc)) {}

  /// Region with attribute list Z and an empty tableau to be filled.
  static Region Of(const SchemaPtr& schema, std::vector<AttrId> z) {
    return Region(std::move(z), Tableau(schema));
  }

  const std::vector<AttrId>& z() const { return z_; }
  AttrSet z_set() const { return z_set_; }
  const Tableau& tableau() const { return tc_; }
  Tableau* mutable_tableau() { return &tc_; }

  /// Adds a pattern row; cells outside Z are rejected.
  Status AddRow(PatternTuple row);

  /// True if t matches some pattern row (t is marked by the region).
  bool Marks(const Tuple& t) const { return tc_.Marks(t); }

  /// ext(Z, Tc, phi): extends Z with rhs(phi) and pads every row with a
  /// wildcard on it (Sect. 3). No-op if rhs(phi) is already in Z.
  Region Extend(const EditingRule& rule) const;

  std::string ToString() const;

 private:
  std::vector<AttrId> z_;
  AttrSet z_set_;
  Tableau tc_;
};

/// \brief A region with the quality score assigned by CompCRegion
/// (Sect. 5/6; larger is better).
struct RankedRegion {
  Region region;
  double quality = 0.0;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_REGION_H_
